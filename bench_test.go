package canvassing

// Benchmark harness: one benchmark per table and figure of the paper
// (E1–E12), plus ablation benches for the design choices DESIGN.md calls
// out. Analysis benches share a single pre-built study so they measure
// the experiment computation, not the crawl; the crawl itself is
// measured by BenchmarkControlCrawl and the ablations.

import (
	"crypto/sha256"
	"sync"
	"testing"

	"canvassing/internal/blocklist"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/imaging"
	"canvassing/internal/obs"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/stats"
	"canvassing/internal/web"
)

var (
	benchOnce  sync.Once
	benchStudy *Study
)

// benchSetup builds one shared study at 2% scale (400+400 sites).
func benchSetup(b *testing.B) *Study {
	b.Helper()
	benchOnce.Do(func() {
		benchStudy = Run(Options{Seed: 3, Scale: 0.02, WithAdblock: true, WithM1: true})
	})
	return benchStudy
}

func BenchmarkE1Prevalence(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var fp int
	for i := 0; i < b.N; i++ {
		r := s.Prevalence()
		fp = r.Rows[0].FPSites
	}
	b.ReportMetric(float64(fp), "fp-sites")
}

func BenchmarkE2Figure1(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var rows int
	for i := 0; i < b.N; i++ {
		r := s.Figure1(50)
		rows = len(r.Rows)
	}
	b.ReportMetric(float64(rows), "canvas-groups")
}

func BenchmarkE3Reach(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var unique int
	for i := 0; i < b.N; i++ {
		r := s.Reach()
		unique = r.UniquePopular
	}
	b.ReportMetric(float64(unique), "unique-canvases")
}

func BenchmarkE4Table1(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var attributed int
	for i := 0; i < b.N; i++ {
		r := s.Table1()
		attributed = r.AttributedPop
	}
	b.ReportMetric(float64(attributed), "attributed-sites")
}

func BenchmarkE5Table2(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var blocked int
	for i := 0; i < b.N; i++ {
		r, err := s.Table2()
		if err != nil {
			b.Fatal(err)
		}
		blocked = r.Rows[0].CanvasesPop - r.Rows[1].CanvasesPop
	}
	b.ReportMetric(float64(blocked), "canvases-blocked")
}

func BenchmarkE6Table4(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var any int
	for i := 0; i < b.N; i++ {
		r := s.Table4()
		any = r.Counts["Any"][0]
	}
	b.ReportMetric(float64(any), "any-list-canvases")
}

func BenchmarkE7Evasion(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var firstParty int
	for i := 0; i < b.N; i++ {
		r := s.Evasion()
		firstParty = r.Rows[0].FirstPartySites
	}
	b.ReportMetric(float64(firstParty), "first-party-sites")
}

func BenchmarkE8Randomization(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var checking int
	for i := 0; i < b.N; i++ {
		// Sample size 5 keeps the defense re-crawls proportionate for a
		// benchmark loop.
		r := s.Randomization(5)
		checking = r.CheckingPop
	}
	b.ReportMetric(float64(checking), "checking-sites")
}

func BenchmarkE9CrossMachine(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var diff int
	for i := 0; i < b.N; i++ {
		r, err := s.CrossMachine()
		if err != nil {
			b.Fatal(err)
		}
		diff = r.BytesDifferEvents
	}
	b.ReportMetric(float64(diff), "byte-diff-events")
}

func BenchmarkE10Filters(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var yield float64
	for i := 0; i < b.N; i++ {
		r := s.Filters()
		st := r.PerCohort[web.Popular]
		yield = st.FingerprintableFraction()
	}
	b.ReportMetric(yield*100, "yield-pct")
}

func BenchmarkE11Table3(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Table3()
	}
}

func BenchmarkE12RuleContext(b *testing.B) {
	s := benchSetup(b)
	b.ResetTimer()
	var rules int
	for i := 0; i < b.N; i++ {
		r := s.RuleContext()
		rules = r.DocumentOnlyRules
	}
	b.ReportMetric(float64(rules), "document-rules")
}

// --- end-to-end and ablation benches ---------------------------------------

// BenchmarkControlCrawl measures a full control crawl of a 1% web.
func BenchmarkControlCrawl(b *testing.B) {
	w := web.Generate(web.Config{Seed: 5, Scale: 0.01, TrancoMax: 1_000_000})
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	cfg := crawler.DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crawler.Crawl(w, sites, cfg)
	}
}

// BenchmarkCrawlWithTelemetry is BenchmarkControlCrawl with the obs
// registry attached — the instrumented path must stay within ~5% of
// the bare path (see DESIGN.md §5).
func BenchmarkCrawlWithTelemetry(b *testing.B) {
	w := web.Generate(web.Config{Seed: 5, Scale: 0.01, TrancoMax: 1_000_000})
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	cfg := crawler.DefaultConfig()
	cfg.Telemetry = obs.NewTelemetry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crawler.Crawl(w, sites, cfg)
	}
	b.ReportMetric(float64(cfg.Telemetry.Metrics.Counter("crawl.visits.ok").Value())/float64(b.N), "pages-ok")
}

// BenchmarkCrawlWithEvents is BenchmarkCrawlWithTelemetry plus an
// ad-blocker extension, so the evidence event log receives
// blocklist.match events on the hot path. A nil event sink must keep
// BenchmarkControlCrawl allocation-free; this bench bounds the cost
// when the sink is live.
func BenchmarkCrawlWithEvents(b *testing.B) {
	w := web.Generate(web.Config{Seed: 5, Scale: 0.01, TrancoMax: 1_000_000})
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	cfg := crawler.DefaultConfig()
	cfg.Telemetry = obs.NewTelemetry()
	cfg.Condition = "bench"
	cfg.Extension = newUBO(blocklist.NewStandardListsWithTrackers(5, longtailTrackerCoverage()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		crawler.Crawl(w, sites, cfg)
	}
	b.ReportMetric(float64(cfg.Telemetry.Events.Total())/float64(b.N), "events")
}

// BenchmarkAblationParseCache compares crawling with and without the
// shared script parse cache.
func BenchmarkAblationParseCache(b *testing.B) {
	w := web.Generate(web.Config{Seed: 5, Scale: 0.01, TrancoMax: 1_000_000})
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	for _, disabled := range []bool{false, true} {
		name := "cached"
		if disabled {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			cfg := crawler.DefaultConfig()
			cfg.DisableParseCache = disabled
			for i := 0; i < b.N; i++ {
				crawler.Crawl(w, sites, cfg)
			}
		})
	}
}

// BenchmarkAblationRenderCache compares crawling with and without the
// content-addressed toDataURL encode cache.
func BenchmarkAblationRenderCache(b *testing.B) {
	w := web.Generate(web.Config{Seed: 5, Scale: 0.01, TrancoMax: 1_000_000})
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	cfg := crawler.DefaultConfig()
	for _, enabled := range []bool{true, false} {
		name := "cached"
		if !enabled {
			name = "uncached"
		}
		b.Run(name, func(b *testing.B) {
			prev := imaging.SetEncodeCacheEnabled(enabled)
			defer imaging.SetEncodeCacheEnabled(prev)
			for i := 0; i < b.N; i++ {
				crawler.Crawl(w, sites, cfg)
			}
		})
	}
}

// BenchmarkAblationCrawlWorkers sweeps the crawler worker-pool width.
func BenchmarkAblationCrawlWorkers(b *testing.B) {
	w := web.Generate(web.Config{Seed: 5, Scale: 0.01, TrancoMax: 1_000_000})
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	for _, workers := range []int{1, 4, 16} {
		b.Run(map[int]string{1: "w1", 4: "w4", 16: "w16"}[workers], func(b *testing.B) {
			cfg := crawler.DefaultConfig()
			cfg.Workers = workers
			for i := 0; i < b.N; i++ {
				crawler.Crawl(w, sites, cfg)
			}
		})
	}
}

// BenchmarkAblationHashing compares the canvas identity function used by
// clustering: SHA-256 over the data URL (collision-proof, what we ship)
// vs 64-bit FNV-1a (faster, collision risk at web scale).
func BenchmarkAblationHashing(b *testing.B) {
	s := benchSetup(b)
	var urls []string
	for i := range s.Sites {
		for _, c := range s.Sites[i].All {
			urls = append(urls, c.DataURL)
		}
	}
	if len(urls) == 0 {
		b.Fatal("no canvases")
	}
	b.Run("sha256", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, u := range urls {
				_ = sha256.Sum256([]byte(u))
			}
		}
	})
	b.Run("fnv64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, u := range urls {
				_ = stats.HashString(u)
			}
		}
	})
	b.Run("sha256-via-detect", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, u := range urls {
				_ = detect.HashDataURL(u)
			}
		}
	})
}

// BenchmarkAblationBlocklistScan measures full-list matching for a hit
// near the front, a hit after the filler rules, and a complete miss —
// the cost profile that would motivate a compiled matcher.
func BenchmarkAblationBlocklistScan(b *testing.B) {
	lists := blocklist.NewStandardListsWithTrackers(3, longtailTrackerCoverage())
	reqs := map[string]blocklist.Request{
		"early-hit": {URL: "https://bank.com/akam/13/abc", Type: blocklist.TypeScript, ThirdParty: true},
		"late-hit":  {URL: "https://" + web.ActorHost(7) + "/beacon.js", Type: blocklist.TypeScript, ThirdParty: true},
		"miss":      {URL: "https://plain-site.example/js/app.js", Type: blocklist.TypeScript, ThirdParty: true},
	}
	for name, req := range reqs {
		req := req
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				lists.EasyList.Match(req)
				lists.EasyPrivacy.Match(req)
			}
		})
	}
}

// BenchmarkFullStudyTiny measures the entire pipeline end to end on the
// smallest meaningful web.
func BenchmarkFullStudyTiny(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Run(Options{Seed: uint64(i) + 1, Scale: 0.005})
	}
}

// BenchmarkVisitSpanOverhead measures what per-visit span trees cost
// the crawl: the same control crawl with the exemplar reservoir off
// and on. The delta is the price of building a tree per visit and
// offering it to the reservoir from the committer.
func BenchmarkVisitSpanOverhead(b *testing.B) {
	for _, traced := range []bool{false, true} {
		name := "off"
		if traced {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				s := New(Options{Seed: 3, Scale: 0.02, Workers: 4, TraceVisits: traced})
				s.RunControl()
			}
		})
	}
}

// BenchmarkCriticalPath measures the tracescope analyzer over a forest
// the size of a fully-loaded reservoir (every condition at the default
// slow+head bounds).
func BenchmarkCriticalPath(b *testing.B) {
	r := tracez.NewReservoir(3, 0, 0)
	for _, cond := range []string{"control", "abp", "ubo"} {
		for i := 0; i < 400; i++ {
			vb := tracez.NewVisit(cond, web.ActorHost(i), i+1, i)
			conn := vb.Open(vb.Root(), "connect")
			conn.Cost = int64(1 + i%3)
			vb.Close(conn)
			sc := vb.Open(vb.Root(), "script")
			for _, ph := range []string{"fetch", "parse", "exec"} {
				sp := vb.Open(sc, ph)
				sp.Cost = int64(512 + 97*i)
				vb.Close(sp)
			}
			vb.Close(sc)
			r.Offer(vb.Finish("ok"))
		}
	}
	var forest []*tracez.Span
	for _, ce := range r.Snapshot() {
		for _, vt := range append(ce.Slow, ce.Head...) {
			forest = append(forest, vt.Root)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep := tracez.Analyze(forest)
		if rep.Roots != len(forest) {
			b.Fatal("analyzer lost roots")
		}
	}
}
