package dom

import (
	"strings"
	"testing"

	"canvassing/internal/canvas"
	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
)

func newVM(t *testing.T) (*jsvm.Interp, *Document) {
	t.Helper()
	in := jsvm.New(jsvm.Options{RandSeed: 1})
	doc := NewDocument(machine.Intel(), "example.com")
	doc.Install(in)
	return in, doc
}

func mustRun(t *testing.T, in *jsvm.Interp, src string) jsvm.Value {
	t.Helper()
	v, err := in.RunSource(src)
	if err != nil {
		t.Fatalf("script failed: %v", err)
	}
	return v
}

func TestCreateCanvasAndDraw(t *testing.T) {
	in, doc := newVM(t)
	src := `
	var c = document.createElement('canvas');
	c.width = 200;
	c.height = 50;
	var ctx = c.getContext('2d');
	ctx.fillStyle = '#ff6600';
	ctx.fillRect(10, 10, 50, 20);
	c.toDataURL()`
	v := mustRun(t, in, src)
	if !strings.HasPrefix(v.Str(), "data:image/png;base64,") {
		t.Fatalf("toDataURL: %.40s", v.Str())
	}
	if len(doc.Canvases) != 1 {
		t.Fatalf("canvas count = %d", len(doc.Canvases))
	}
	el := doc.Canvases[0]
	if el.Image().W != 200 || el.Image().H != 50 {
		t.Fatal("size attributes")
	}
	px := el.Image().At(20, 15)
	if px.R != 255 || px.G != 102 {
		t.Fatalf("painted pixel: %v", px)
	}
}

func TestFingerprintScriptEndToEnd(t *testing.T) {
	// A condensed version of the FingerprintJS canvas source.
	src := `
	function canvasFingerprint() {
		var canvas = document.createElement('canvas');
		canvas.width = 240;
		canvas.height = 60;
		var ctx = canvas.getContext('2d');
		ctx.textBaseline = 'alphabetic';
		ctx.fillStyle = '#f60';
		ctx.fillRect(100, 1, 62, 20);
		ctx.fillStyle = '#069';
		ctx.font = '11pt Arial';
		ctx.fillText('Cwm fjordbank glyphs vext quiz', 2, 15);
		ctx.fillStyle = 'rgba(102, 204, 0, 0.2)';
		ctx.font = '18pt Arial';
		ctx.fillText('Cwm fjordbank glyphs vext quiz', 4, 45);
		return canvas.toDataURL();
	}
	canvasFingerprint()`
	in1, _ := newVM(t)
	in2, _ := newVM(t)
	a := mustRun(t, in1, src).Str()
	b := mustRun(t, in2, src).Str()
	if a != b {
		t.Fatal("fingerprint must be deterministic across page loads")
	}
	// Different machine → different canvas.
	in3 := jsvm.New(jsvm.Options{})
	doc3 := NewDocument(machine.AppleM1(), "example.com")
	doc3.Install(in3)
	c := mustRun(t, in3, src).Str()
	if c == a {
		t.Fatal("different machine must produce a different canvas")
	}
}

func TestTracerSeesScriptActivity(t *testing.T) {
	in := jsvm.New(jsvm.Options{})
	doc := NewDocument(machine.Intel(), "example.com")
	var traced []string
	doc.Tracer = canvas.TracerFunc(func(iface, member string, args []string, ret string) {
		traced = append(traced, iface+"."+member)
	})
	doc.Install(in)
	mustRun(t, in, `
	var c = document.createElement('canvas');
	var ctx = c.getContext('2d');
	ctx.fillText('x', 0, 10);
	c.toDataURL()`)
	joined := strings.Join(traced, " ")
	for _, want := range []string{"HTMLCanvasElement.getContext", "CanvasRenderingContext2D.fillText", "HTMLCanvasElement.toDataURL"} {
		if !strings.Contains(joined, want) {
			t.Fatalf("missing %s in trace: %v", want, traced)
		}
	}
}

func TestGetImageDataFromScript(t *testing.T) {
	in, _ := newVM(t)
	src := `
	var c = document.createElement('canvas');
	c.width = 4; c.height = 4;
	var ctx = c.getContext('2d');
	ctx.fillStyle = '#ff0000';
	ctx.fillRect(0, 0, 4, 4);
	var d = ctx.getImageData(0, 0, 2, 2);
	d.data[0] + ',' + d.data[3] + ',' + d.data.length`
	v := mustRun(t, in, src)
	if v.Str() != "255,255,16" {
		t.Fatalf("image data: %s", v.Str())
	}
}

func TestPixelHashLoop(t *testing.T) {
	// Scripts commonly hash pixel data in a loop.
	in, _ := newVM(t)
	src := `
	var c = document.createElement('canvas');
	c.width = 8; c.height = 8;
	var ctx = c.getContext('2d');
	ctx.fillStyle = '#123456';
	ctx.fillRect(0, 0, 8, 8);
	var d = ctx.getImageData(0, 0, 8, 8).data;
	var hash = 0;
	for (var i = 0; i < d.length; i++) {
		hash = ((hash << 5) - hash + d[i]) & 0x7fffffff;
	}
	hash`
	v1 := mustRun(t, in, src)
	in2, _ := newVM(t)
	v2 := mustRun(t, in2, src)
	if v1.Num() != v2.Num() {
		t.Fatal("pixel hash must be stable")
	}
	if v1.Num() == 0 {
		t.Fatal("hash should be nonzero for painted canvas")
	}
}

func TestGradientFromScript(t *testing.T) {
	in, doc := newVM(t)
	mustRun(t, in, `
	var c = document.createElement('canvas');
	var ctx = c.getContext('2d');
	var g = ctx.createLinearGradient(0, 0, 300, 0);
	g.addColorStop(0, '#000000');
	g.addColorStop(1, '#ffffff');
	ctx.fillStyle = g;
	ctx.fillRect(0, 0, 300, 150);`)
	img := doc.Canvases[0].Image()
	if img.At(5, 75).R >= img.At(295, 75).R {
		t.Fatal("gradient should brighten leftright")
	}
}

func TestNavigatorAndWindow(t *testing.T) {
	in, _ := newVM(t)
	v := mustRun(t, in, `navigator.userAgent`)
	if !strings.Contains(v.Str(), "CanvassingCrawler") {
		t.Fatalf("userAgent: %s", v.Str())
	}
	if v := mustRun(t, in, `navigator.webdriver`); v.Bool() {
		t.Fatal("webdriver must be masked")
	}
	if v := mustRun(t, in, `window.location.hostname`); v.Str() != "example.com" {
		t.Fatalf("hostname: %s", v.Str())
	}
	if v := mustRun(t, in, `screen.width * screen.height`); v.Num() != 1920*1080 {
		t.Fatal("screen dims")
	}
}

func TestDocumentDomain(t *testing.T) {
	in, _ := newVM(t)
	if v := mustRun(t, in, `document.domain`); v.Str() != "example.com" {
		t.Fatalf("domain: %s", v.Str())
	}
}

func TestNonCanvasElement(t *testing.T) {
	in, doc := newVM(t)
	v := mustRun(t, in, `
	var d = document.createElement('div');
	d.id = 'x';
	document.body.appendChild(d);
	d.tagName`)
	if v.Str() != "div" {
		t.Fatalf("tagName: %s", v.Str())
	}
	if len(doc.Canvases) != 0 {
		t.Fatal("div should not create canvases")
	}
}

func TestGetElementById(t *testing.T) {
	in, doc := newVM(t)
	el := jsvm.String("sentinel")
	doc.RegisterByID("target", el)
	if v := mustRun(t, in, `document.getElementById('target')`); v.Str() != "sentinel" {
		t.Fatal("getElementById")
	}
	if v := mustRun(t, in, `document.getElementById('missing') === null`); !v.Bool() {
		t.Fatal("missing id should be null")
	}
}

func TestMeasureTextFromScript(t *testing.T) {
	in, _ := newVM(t)
	v := mustRun(t, in, `
	var ctx = document.createElement('canvas').getContext('2d');
	ctx.font = '16px Arial';
	ctx.measureText('mmmm').width > ctx.measureText('iiii').width`)
	if !v.Bool() {
		t.Fatal("measureText should reflect glyph widths")
	}
}

func TestShadowPropertiesFromScript(t *testing.T) {
	in, doc := newVM(t)
	mustRun(t, in, `
	var c = document.createElement('canvas');
	var ctx = c.getContext('2d');
	ctx.shadowColor = '#0000ff';
	ctx.shadowOffsetX = 12;
	ctx.shadowOffsetY = 12;
	ctx.fillStyle = '#ff0000';
	ctx.fillRect(40, 40, 30, 30);`)
	img := doc.Canvases[0].Image()
	foundShadow := false
	for y := 65; y < 85 && !foundShadow; y++ {
		for x := 65; x < 85; x++ {
			if px := img.At(x, y); px.B > 100 && px.R < 100 {
				foundShadow = true
				break
			}
		}
	}
	if !foundShadow {
		t.Fatal("shadow should paint")
	}
}

func TestWebGLContextFromScript(t *testing.T) {
	in, _ := newVM(t)
	// GPU strings come from the machine profile.
	v := mustRun(t, in, `
	var gl = document.createElement('canvas').getContext('webgl');
	gl.getParameter(gl.UNMASKED_RENDERER_WEBGL)`)
	if !strings.Contains(v.Str(), "Intel") {
		t.Fatalf("unmasked renderer: %q", v.Str())
	}
	if v := mustRun(t, in, `
	var gl2 = document.createElement('canvas').getContext('experimental-webgl');
	gl2.getSupportedExtensions().length > 3`); !v.Bool() {
		t.Fatal("extensions list")
	}
	if v := mustRun(t, in, `'' + document.createElement('canvas').getContext('webgl')`); v.Str() != "[object WebGLRenderingContext]" {
		t.Fatalf("toString: %s", v.Str())
	}
	// Unsupported kinds still yield null.
	if v := mustRun(t, in, `document.createElement('canvas').getContext('webgl2') === null`); !v.Bool() {
		t.Fatal("webgl2 unavailable")
	}
}

func TestWebGLSceneFingerprint(t *testing.T) {
	scene := `
	var c = document.createElement('canvas');
	c.width = 64; c.height = 48;
	var gl = c.getContext('webgl');
	var vs = gl.createShader(gl.VERTEX_SHADER);
	gl.shaderSource(vs, 'attribute vec2 p; void main(){gl_Position=vec4(p,0,1);}');
	gl.compileShader(vs);
	var prog = gl.createProgram();
	gl.attachShader(prog, vs);
	gl.linkProgram(prog);
	gl.useProgram(prog);
	var buf = gl.createBuffer();
	gl.bindBuffer(gl.ARRAY_BUFFER, buf);
	gl.bufferData(gl.ARRAY_BUFFER, [-0.7, -0.6, 0.8, -0.5, 0.0, 0.72], gl.STATIC_DRAW);
	gl.vertexAttribPointer(0, 2, 0, false, 0, 0);
	gl.enableVertexAttribArray(0);
	gl.clearColor(0.1, 0.1, 0.1, 1.0);
	gl.clear(gl.COLOR_BUFFER_BIT);
	gl.drawArrays(gl.TRIANGLES, 0, 3);
	c.toDataURL()`
	render := func(prof *machine.Profile) string {
		in := jsvm.New(jsvm.Options{RandSeed: 1})
		doc := NewDocument(prof, "gl.example")
		doc.Install(in)
		v, err := in.RunSource(scene)
		if err != nil {
			t.Fatal(err)
		}
		return v.Str()
	}
	intel1 := render(machine.Intel())
	intel2 := render(machine.Intel())
	if intel1 != intel2 {
		t.Fatal("WebGL scene must be deterministic per machine")
	}
	if m1 := render(machine.AppleM1()); m1 == intel1 {
		t.Fatal("WebGL scene must differ across machines")
	}
	if !strings.HasPrefix(intel1, "data:image/png;base64,") {
		t.Fatal("scene extraction")
	}
}

func TestCanvasToString(t *testing.T) {
	in, _ := newVM(t)
	if v := mustRun(t, in, `'' + document.createElement('canvas')`); v.Str() != "[object HTMLCanvasElement]" {
		t.Fatalf("toString: %s", v.Str())
	}
}

func TestLineDashFromScript(t *testing.T) {
	in, doc := newVM(t)
	mustRun(t, in, `
	var c = document.createElement('canvas');
	var ctx = c.getContext('2d');
	ctx.setLineDash([10, 10]);
	ctx.lineDashOffset = 0;
	ctx.strokeStyle = '#f00';
	ctx.lineWidth = 4;
	ctx.beginPath();
	ctx.moveTo(0, 75);
	ctx.lineTo(300, 75);
	ctx.stroke();`)
	img := doc.Canvases[0].Image()
	if img.At(5, 75).A == 0 || img.At(15, 75).A != 0 {
		t.Fatal("dashes should alternate")
	}
	if v := mustRun(t, in, `
	var c2 = document.createElement('canvas');
	var x2 = c2.getContext('2d');
	x2.setLineDash([4, 2]);
	x2.getLineDash().join(',')`); v.Str() != "4,2" {
		t.Fatalf("getLineDash: %s", v.Str())
	}
}

func TestArcToAndIsPointInPathFromScript(t *testing.T) {
	in, _ := newVM(t)
	v := mustRun(t, in, `
	var c = document.createElement('canvas');
	var ctx = c.getContext('2d');
	ctx.beginPath();
	ctx.moveTo(20, 20);
	ctx.arcTo(150, 20, 150, 70, 30);
	ctx.lineTo(150, 120);
	ctx.lineTo(20, 120);
	ctx.closePath();
	ctx.isPointInPath(80, 70) + ':' + ctx.isPointInPath(5, 5)`)
	if v.Str() != "true:false" {
		t.Fatalf("isPointInPath via script: %s", v.Str())
	}
}

func TestSetTimeoutQueuesUntilSettle(t *testing.T) {
	in, doc := newVM(t)
	// setTimeout must not run the callback synchronously...
	if v := mustRun(t, in, `var hit = 0; window.setTimeout(function(){ hit = 1; }, 0); hit`); v.Num() != 0 {
		t.Fatal("setTimeout callback must not run synchronously")
	}
	// ...but the queued callback runs deterministically at page-settle.
	if ran := doc.Loop.RunTimers(nil); ran != 1 {
		t.Fatalf("drain ran %d callbacks, want 1", ran)
	}
	if v := mustRun(t, in, `hit`); v.Num() != 1 {
		t.Fatal("queued callback must run at settle drain")
	}
}

func TestTimerIDsUniqueAndClearable(t *testing.T) {
	in, doc := newVM(t)
	// Ids are unique and monotonically increasing (the old stub
	// returned a constant 0 for every registration).
	v := mustRun(t, in, `
	var a = window.setTimeout(function(){}, 0);
	var b = window.setTimeout(function(){}, 5);
	var c = window.setInterval(function(){}, 10);
	(a < b) + ':' + (b < c) + ':' + a`)
	if v.Str() != "true:true:1" {
		t.Fatalf("timer ids: %s", v.Str())
	}
	// clearTimeout actually cancels.
	mustRun(t, in, `
	var fired = 0;
	var id = window.setTimeout(function(){ fired = 1; }, 0);
	window.clearTimeout(id);
	window.clearInterval(c);`)
	doc.Loop.RunTimers(nil)
	if v := mustRun(t, in, `fired`); v.Num() != 0 {
		t.Fatal("cleared timer must not fire")
	}
}

func TestTimersDrainInDelayOrder(t *testing.T) {
	in, doc := newVM(t)
	mustRun(t, in, `
	var order = '';
	window.setTimeout(function(){ order += 'b'; }, 50);
	window.setTimeout(function(){ order += 'a'; }, 10);
	window.setTimeout(function(){ order += 'c'; }, 50);`)
	doc.Loop.RunTimers(nil)
	if v := mustRun(t, in, `order`); v.Str() != "abc" {
		t.Fatalf("drain order %q, want abc ((delay, id) order)", v.Str())
	}
}

func TestIntervalTicksBounded(t *testing.T) {
	in, doc := newVM(t)
	mustRun(t, in, `var ticks = 0; window.setInterval(function(){ ticks++; }, 10);`)
	doc.Loop.RunTimers(nil)
	if v := mustRun(t, in, `ticks`); v.Num() != maxIntervalTicks {
		t.Fatalf("interval ticks = %v, want %d", v.Num(), maxIntervalTicks)
	}
}

func TestTimerChainBudget(t *testing.T) {
	in, doc := newVM(t)
	// A self-rescheduling chain must stop at the drain budget, not spin.
	mustRun(t, in, `
	var n = 0;
	function again() { n++; window.setTimeout(again, 1); }
	window.setTimeout(again, 1);`)
	ran := doc.Loop.RunTimers(nil)
	if ran != drainBudget {
		t.Fatalf("chain ran %d callbacks, want drain budget %d", ran, drainBudget)
	}
}

func TestAddRemoveDispatch(t *testing.T) {
	in, doc := newVM(t)
	// add → remove → dispatch on every host kind: the removed handler
	// must not fire, the surviving ones must, in registration order.
	mustRun(t, in, `
	var log = '';
	function gone() { log += 'X'; }
	document.addEventListener('click', function(){ log += 'd'; });
	document.addEventListener('click', gone);
	document.removeEventListener('click', gone);
	window.addEventListener('click', function(){ log += 'w'; });
	var div = document.createElement('div');
	div.addEventListener('click', function(){ log += 'e'; });
	var c = document.createElement('canvas');
	c.addEventListener('click', function(){ log += 'c'; });`)
	if got := len(doc.Loop.Handlers()); got != 4 {
		t.Fatalf("live handlers = %d, want 4 after remove", got)
	}
	ran := doc.Loop.Dispatch("click", nil)
	if ran != 4 {
		t.Fatalf("dispatch ran %d handlers, want 4", ran)
	}
	if v := mustRun(t, in, `log`); v.Str() != "dwec" {
		t.Fatalf("dispatch order %q, want dwec (registration order, no removed handler)", v.Str())
	}
	// Unrelated event types stay quiet.
	if ran := doc.Loop.Dispatch("scroll", nil); ran != 0 {
		t.Fatalf("scroll dispatch ran %d handlers, want 0", ran)
	}
}

func TestDispatchEventObject(t *testing.T) {
	in, doc := newVM(t)
	mustRun(t, in, `
	var seen = '';
	window.addEventListener('click', function(ev){ seen = ev.type + ':' + ev.isTrusted; });`)
	doc.Loop.Dispatch("click", nil)
	if v := mustRun(t, in, `seen`); v.Str() != "click:true" {
		t.Fatalf("event object: %s", v.Str())
	}
}

func TestRequestIdleCallback(t *testing.T) {
	in, doc := newVM(t)
	mustRun(t, in, `
	var idle = '';
	var id = window.requestIdleCallback(function(d){ idle = 'ran:' + (d.timeRemaining() > 0); });
	var dead = window.requestIdleCallback(function(){ idle = 'wrong'; });
	window.cancelIdleCallback(dead);`)
	if ran := doc.Loop.RunIdle(nil); ran != 1 {
		t.Fatalf("idle drain ran %d, want 1", ran)
	}
	if v := mustRun(t, in, `idle`); v.Str() != "ran:true" {
		t.Fatalf("idle callback: %s", v.Str())
	}
}

func TestHandlerOwnerAttribution(t *testing.T) {
	in, doc := newVM(t)
	doc.SetScriptOwner("https://vendor.example/fp.js")
	mustRun(t, in, `window.addEventListener('click', function(){});
	window.setTimeout(function(){}, 0);`)
	doc.SetScriptOwner("")
	var owners []string
	doc.Loop.Dispatch("click", func(owner string) { owners = append(owners, owner) })
	doc.Loop.RunTimers(func(owner string) { owners = append(owners, owner) })
	if len(owners) != 2 || owners[0] != "https://vendor.example/fp.js" || owners[1] != owners[0] {
		t.Fatalf("owner attribution: %v", owners)
	}
}

func TestDeferredFingerprintOnlyUnderDispatch(t *testing.T) {
	// The end-to-end shape of the bug this PR fixes: a vendor script
	// that defers canvas extraction behind a click handler is invisible
	// to a load-time-only crawl and visible once the event fires.
	in, doc := newVM(t)
	mustRun(t, in, `
	window.addEventListener('click', function(){
		var c = document.createElement('canvas');
		c.width = 64; c.height = 16;
		var ctx = c.getContext('2d');
		ctx.fillText('deferred', 2, 12);
		c.toDataURL();
	});`)
	if len(doc.Canvases) != 0 {
		t.Fatal("no canvas before dispatch")
	}
	doc.Loop.Dispatch("click", nil)
	if len(doc.Canvases) != 1 {
		t.Fatalf("canvas count after dispatch = %d, want 1", len(doc.Canvases))
	}
}
