package dom

import (
	"fmt"
	"testing"

	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
)

// benchLoop builds a document whose loop carries n click handlers and
// n armed one-shot timers.
func benchLoop(b *testing.B, n int) (*jsvm.Interp, *Document) {
	b.Helper()
	in := jsvm.New(jsvm.Options{RandSeed: 1})
	doc := NewDocument(machine.Intel(), "bench.example")
	doc.Install(in)
	var src string
	for i := 0; i < n; i++ {
		src += fmt.Sprintf("window.addEventListener('click', function() { var x%d = %d; });\n", i, i)
		src += fmt.Sprintf("window.setTimeout(function() { var t%d = %d; }, %d);\n", i, i, 10*i)
	}
	if _, err := in.RunSource(src); err != nil {
		b.Fatal(err)
	}
	return in, doc
}

func BenchmarkLoopDispatch(b *testing.B) {
	_, doc := benchLoop(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := doc.Loop.Dispatch("click", nil); got != 32 {
			b.Fatalf("dispatch ran %d handlers, want 32", got)
		}
	}
}

func BenchmarkLoopTimerDrain(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		_, doc := benchLoop(b, 32)
		b.StartTimer()
		if got := doc.Loop.RunTimers(nil); got != 32 {
			b.Fatalf("drain ran %d timers, want 32", got)
		}
	}
}

func BenchmarkLoopRegister(b *testing.B) {
	in := jsvm.New(jsvm.Options{RandSeed: 1})
	doc := NewDocument(machine.Intel(), "bench.example")
	doc.Install(in)
	if _, err := in.RunSource(`window.__h = function() { return 1; };`); err != nil {
		b.Fatal(err)
	}
	src := `window.addEventListener('click', window.__h); window.removeEventListener('click', window.__h);`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := in.RunSource(src); err != nil {
			b.Fatal(err)
		}
	}
}
