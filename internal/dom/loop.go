// The event loop. Real pages defer work behind event handlers, timers
// and idle callbacks; vendor scripts increasingly hide fingerprinting
// there too ("Beyond the Crawl", Annamalai & De Cristofaro). The stubs
// this file replaces silently dropped every callback, so deferred
// fingerprinting was invisible to the whole pipeline.
//
// The loop is deterministic by construction: handlers dispatch in
// registration order, timers drain in (delay, id) order with ids
// assigned monotonically, and idle callbacks drain in id order. No
// wall clock is consulted anywhere — "time" is the virtual delay the
// script asked for, so two runs of the same page produce the same
// callback schedule on any machine at any worker width.
package dom

import (
	"canvassing/internal/jsvm"
)

// drainBudget bounds the number of callbacks a single drain will run.
// Self-rescheduling timer chains (setTimeout from inside a timer
// callback) and interval timers would otherwise spin forever; the
// budget cuts them off at the same point in every run.
const drainBudget = 256

// maxIntervalTicks is how many times a setInterval callback fires per
// drain before the loop retires it. Real intervals fire unboundedly;
// three ticks is enough to observe periodic behaviour without letting
// one interval eat the whole drain budget.
const maxIntervalTicks = 3

// Handler is one addEventListener registration.
type Handler struct {
	// ID is the registration sequence number, unique per page.
	ID int
	// Target names the host the listener was attached to:
	// "window", "document", "element:<tag>" or "canvas".
	Target string
	// Type is the event type ("click", "scroll", "focus", ...).
	Type string
	// Owner is the URL of the script that registered the handler,
	// for extraction attribution when the handler later fires.
	Owner string

	fn      jsvm.Value
	removed bool
}

type timer struct {
	id       int
	delay    float64 // virtual milliseconds; cumulative for intervals
	period   float64 // > 0 for setInterval
	ticks    int     // interval firings so far
	owner    string
	fn       jsvm.Value
	canceled bool
}

type idleCallback struct {
	id       int
	owner    string
	fn       jsvm.Value
	canceled bool
}

// Loop is the per-page deterministic event loop: the handler registry,
// timer queue and idle-callback queue behind window/document/element
// natives.
type Loop struct {
	in *jsvm.Interp

	handlers   []*Handler
	nextHID    int
	timers     []*timer
	nextTID    int
	idles      []*idleCallback
	nextIdle   int
	owner      string
	dispatches int
}

// NewLoop returns an empty loop. The interpreter is attached later by
// Document.Install because the document is built before the VM.
func NewLoop() *Loop { return &Loop{} }

// SetOwner records the URL of the script currently executing, so
// registrations made while it runs are attributed to it.
func (l *Loop) SetOwner(url string) { l.owner = url }

// AddListener registers fn for events of the given type on target and
// returns the registration. Non-callable values are ignored, as in a
// real browser.
func (l *Loop) AddListener(target, typ string, fn jsvm.Value) *Handler {
	if !fn.IsCallable() {
		return nil
	}
	l.nextHID++
	h := &Handler{ID: l.nextHID, Target: target, Type: typ, Owner: l.owner, fn: fn}
	l.handlers = append(l.handlers, h)
	return h
}

// RemoveListener unregisters the first live handler on target whose
// type matches and whose function is the same object (===), mirroring
// removeEventListener semantics.
func (l *Loop) RemoveListener(target, typ string, fn jsvm.Value) {
	for _, h := range l.handlers {
		if !h.removed && h.Target == target && h.Type == typ && jsvm.StrictEquals(h.fn, fn) {
			h.removed = true
			return
		}
	}
}

// Handlers returns the live registrations, in registration order.
func (l *Loop) Handlers() []*Handler {
	out := make([]*Handler, 0, len(l.handlers))
	for _, h := range l.handlers {
		if !h.removed {
			out = append(out, h)
		}
	}
	return out
}

// SetTimeout queues fn after delay virtual milliseconds and returns the
// timer id (unique, monotonically increasing from 1).
func (l *Loop) SetTimeout(fn jsvm.Value, delay float64) int {
	return l.addTimer(fn, delay, 0)
}

// SetInterval queues fn every period virtual milliseconds and returns
// the timer id. Ids share the setTimeout sequence, as in browsers.
func (l *Loop) SetInterval(fn jsvm.Value, period float64) int {
	if period < 1 {
		period = 1
	}
	return l.addTimer(fn, period, period)
}

func (l *Loop) addTimer(fn jsvm.Value, delay, period float64) int {
	l.nextTID++
	id := l.nextTID
	if fn.IsCallable() {
		if delay < 0 {
			delay = 0
		}
		l.timers = append(l.timers, &timer{id: id, delay: delay, period: period, owner: l.owner, fn: fn})
	}
	return id
}

// ClearTimer cancels a pending setTimeout or setInterval by id.
func (l *Loop) ClearTimer(id int) {
	for _, t := range l.timers {
		if t.id == id {
			t.canceled = true
		}
	}
}

// RequestIdle queues fn for the idle phase and returns its id.
func (l *Loop) RequestIdle(fn jsvm.Value) int {
	l.nextIdle++
	id := l.nextIdle
	if fn.IsCallable() {
		l.idles = append(l.idles, &idleCallback{id: id, owner: l.owner, fn: fn})
	}
	return id
}

// CancelIdle cancels a pending idle callback by id.
func (l *Loop) CancelIdle(id int) {
	for _, ic := range l.idles {
		if ic.id == id {
			ic.canceled = true
		}
	}
}

// PendingTimers reports how many timers are queued (canceled included
// until the next drain discards them).
func (l *Loop) PendingTimers() int {
	n := 0
	for _, t := range l.timers {
		if !t.canceled {
			n++
		}
	}
	return n
}

// PendingIdles reports how many idle callbacks are queued.
func (l *Loop) PendingIdles() int {
	n := 0
	for _, ic := range l.idles {
		if !ic.canceled {
			n++
		}
	}
	return n
}

// Dispatch fires every live handler for the event type, in registration
// order, and returns how many callbacks ran. before, if non-nil, runs
// ahead of each callback with the owning script's URL so the caller can
// attribute canvas activity the handler triggers. Callback errors are
// swallowed: one broken handler must not mute the rest of the page.
func (l *Loop) Dispatch(typ string, before func(owner string)) int {
	if l.in == nil {
		return 0
	}
	// Snapshot: handlers registered by a callback fire on the next
	// dispatch of this type, not this one (matches browser semantics
	// for listeners added during dispatch of the same event).
	snapshot := l.Handlers()
	ran := 0
	for _, h := range snapshot {
		if h.removed || h.Type != typ {
			continue
		}
		if before != nil {
			before(h.Owner)
		}
		l.invoke(h.fn, h.Owner, l.eventValue(typ))
		ran++
	}
	return ran
}

// RunTimers drains the timer queue in (delay, id) order until it is
// empty or the drain budget is spent, and returns how many callbacks
// ran. Timers scheduled by a running callback join the same drain.
// Intervals fire up to maxIntervalTicks times, their virtual deadline
// advancing by the period each tick.
func (l *Loop) RunTimers(before func(owner string)) int {
	if l.in == nil {
		return 0
	}
	ran := 0
	for ran < drainBudget {
		t := l.takeNextTimer()
		if t == nil {
			break
		}
		if before != nil {
			before(t.owner)
		}
		l.invoke(t.fn, t.owner, jsvm.Undefined())
		ran++
		if t.period > 0 {
			t.ticks++
			if t.ticks < maxIntervalTicks {
				t.canceled = false
				t.delay += t.period
				l.timers = append(l.timers, t)
			}
		}
	}
	return ran
}

// takeNextTimer removes and returns the live timer with the smallest
// (delay, id), or nil when the queue is empty.
func (l *Loop) takeNextTimer() *timer {
	best := -1
	for i, t := range l.timers {
		if t.canceled {
			continue
		}
		if best < 0 || t.delay < l.timers[best].delay ||
			(t.delay == l.timers[best].delay && t.id < l.timers[best].id) {
			best = i
		}
	}
	if best < 0 {
		l.timers = l.timers[:0]
		return nil
	}
	t := l.timers[best]
	l.timers = append(l.timers[:best:best], l.timers[best+1:]...)
	t.canceled = true // so ClearTimer on a fired one-shot is a no-op
	return t
}

// RunIdle drains the idle-callback queue in id order and returns how
// many callbacks ran. Idle callbacks queued by a running callback join
// the same drain, budget permitting.
func (l *Loop) RunIdle(before func(owner string)) int {
	if l.in == nil {
		return 0
	}
	ran := 0
	for ran < drainBudget {
		var next *idleCallback
		for _, ic := range l.idles {
			if !ic.canceled && (next == nil || ic.id < next.id) {
				next = ic
			}
		}
		if next == nil {
			l.idles = l.idles[:0]
			break
		}
		next.canceled = true
		if before != nil {
			before(next.owner)
		}
		// requestIdleCallback hands the callback an IdleDeadline.
		deadline := jsvm.NewObject()
		deadline.Object().Props["didTimeout"] = jsvm.Boolean(false)
		deadline.Object().Props["timeRemaining"] = jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			return jsvm.Number(50), nil
		})
		l.invoke(next.fn, next.owner, deadline)
		ran++
	}
	return ran
}

// eventValue builds the Event object handed to listeners.
func (l *Loop) eventValue(typ string) jsvm.Value {
	l.dispatches++
	ev := jsvm.NewObject()
	p := ev.Object().Props
	p["type"] = jsvm.String(typ)
	p["isTrusted"] = jsvm.Boolean(true)
	// A deterministic stand-in for the DOMHighResTimeStamp.
	p["timeStamp"] = jsvm.Number(float64(l.dispatches) * 16)
	p["preventDefault"] = jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
		return jsvm.Undefined(), nil
	})
	p["stopPropagation"] = jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
		return jsvm.Undefined(), nil
	})
	return ev
}

func (l *Loop) invoke(fn jsvm.Value, owner string, arg jsvm.Value) {
	prev := l.owner
	l.owner = owner
	defer func() { l.owner = prev }()
	var args []jsvm.Value
	if !arg.IsUndefined() {
		args = []jsvm.Value{arg}
	}
	// Errors (including step-budget exhaustion) are deliberately
	// dropped: the drain keeps going so one pathological callback
	// cannot hide the others, and the failure point is identical in
	// every run because the schedule is.
	l.in.CallValue(fn, jsvm.Undefined(), args) //nolint:errcheck
}

// listenerNatives returns addEventListener/removeEventListener natives
// bound to one target name; shared by every host type.
func listenerNatives(l *Loop, target string, name string) (jsvm.Value, bool) {
	switch name {
	case "addEventListener":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) >= 2 {
				l.AddListener(target, args[0].Str(), args[1])
			}
			return jsvm.Undefined(), nil
		}), true
	case "removeEventListener":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) >= 2 {
				l.RemoveListener(target, args[0].Str(), args[1])
			}
			return jsvm.Undefined(), nil
		}), true
	}
	return jsvm.Undefined(), false
}
