// Package dom exposes a minimal HTML document object model to scripts
// running in the jsvm: document.createElement("canvas"), canvas elements,
// 2D contexts, navigator, and ImageData — everything a canvas
// fingerprinting script touches.
//
// Every host object forwards Canvas API activity to the canvas package,
// whose Tracer hook is how the crawler observes scripts, mirroring the
// paper's instrumentation of CanvasRenderingContext2D and
// HTMLCanvasElement in a real browser.
package dom

import (
	"fmt"

	"canvassing/internal/canvas"
	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
)

// Document is the per-page DOM root.
type Document struct {
	// Profile is the machine the page renders on.
	Profile *machine.Profile
	// Tracer observes Canvas API calls on every canvas in the page.
	Tracer canvas.Tracer
	// ExtractHook is installed on every created canvas (randomization
	// defenses).
	ExtractHook canvas.ExtractHook
	// Domain is the page's hostname, exposed as document.domain.
	Domain string
	// Canvases collects every canvas element created by page scripts,
	// in creation order.
	Canvases []*canvas.Element
	// Loop is the page's deterministic event loop: the handler
	// registry and timer/idle queues behind addEventListener,
	// setTimeout/setInterval and requestIdleCallback.
	Loop *Loop

	byID map[string]jsvm.Value
}

// NewDocument returns an empty document rendered on the given profile.
func NewDocument(profile *machine.Profile, domain string) *Document {
	return &Document{Profile: profile, Domain: domain, Loop: NewLoop(), byID: map[string]jsvm.Value{}}
}

// Install binds document, navigator and window into the interpreter's
// global scope and attaches the event loop to the VM so queued
// callbacks can re-enter it.
func (d *Document) Install(in *jsvm.Interp) {
	d.Loop.in = in
	in.SetGlobal("document", jsvm.NewHost(&documentHost{doc: d}))
	in.SetGlobal("navigator", jsvm.NewHost(&navigatorHost{doc: d}))
	in.SetGlobal("window", jsvm.NewHost(&windowHost{doc: d}))
	in.SetGlobal("screen", jsvm.NewHost(&screenHost{}))
}

// SetScriptOwner records the URL of the script about to execute, so
// handlers and timers it registers are attributed back to it when they
// fire later.
func (d *Document) SetScriptOwner(url string) { d.Loop.SetOwner(url) }

// --- document -------------------------------------------------------------

type documentHost struct {
	doc *Document
}

func (h *documentHost) HostGet(name string) (jsvm.Value, bool) {
	switch name {
	case "createElement":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			tag := ""
			if len(args) > 0 {
				tag = args[0].Str()
			}
			return h.doc.createElement(tag), nil
		}), true
	case "getElementById":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) == 0 {
				return jsvm.Null(), nil
			}
			if v, ok := h.doc.byID[args[0].Str()]; ok {
				return v, nil
			}
			return jsvm.Null(), nil
		}), true
	case "body":
		return jsvm.NewHost(&genericElementHost{tag: "body", doc: h.doc}), true
	case "domain":
		return jsvm.String(h.doc.Domain), true
	case "addEventListener", "removeEventListener":
		return listenerNatives(h.doc.Loop, "document", name)
	case "__string__":
		return jsvm.String("[object HTMLDocument]"), true
	}
	return jsvm.Undefined(), false
}

func (h *documentHost) HostSet(name string, v jsvm.Value) bool {
	// document.title and friends are accepted and ignored.
	return true
}

func (d *Document) createElement(tag string) jsvm.Value {
	switch tag {
	case "canvas", "CANVAS":
		el := canvas.New(d.Profile)
		el.SetTracer(d.Tracer)
		if d.ExtractHook != nil {
			el.SetExtractHook(d.ExtractHook)
		}
		d.Canvases = append(d.Canvases, el)
		return jsvm.NewHost(&CanvasHost{doc: d, El: el})
	default:
		return jsvm.NewHost(&genericElementHost{tag: tag, doc: d})
	}
}

// RegisterByID makes an element reachable via document.getElementById.
func (d *Document) RegisterByID(id string, v jsvm.Value) { d.byID[id] = v }

// --- generic elements -------------------------------------------------------

type genericElementHost struct {
	tag   string
	doc   *Document
	props map[string]jsvm.Value
}

func (h *genericElementHost) HostGet(name string) (jsvm.Value, bool) {
	switch name {
	case "tagName":
		return jsvm.String(h.tag), true
	case "style":
		return jsvm.NewObject(), true
	case "addEventListener", "removeEventListener":
		return listenerNatives(h.doc.Loop, "element:"+h.tag, name)
	case "appendChild", "removeChild", "setAttribute", "remove":
		return noopNative(), true
	case "__string__":
		return jsvm.String("[object HTMLElement]"), true
	}
	if h.props != nil {
		if v, ok := h.props[name]; ok {
			return v, true
		}
	}
	return jsvm.Undefined(), false
}

func (h *genericElementHost) HostSet(name string, v jsvm.Value) bool {
	if h.props == nil {
		h.props = map[string]jsvm.Value{}
	}
	h.props[name] = v
	return true
}

func noopNative() jsvm.Value {
	return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
		return jsvm.Undefined(), nil
	})
}

// --- canvas element -----------------------------------------------------------

// CanvasHost exposes an HTMLCanvasElement to scripts.
type CanvasHost struct {
	doc *Document
	El  *canvas.Element
	ctx *ctxHost
}

// HostGet implements jsvm.HostObject.
func (h *CanvasHost) HostGet(name string) (jsvm.Value, bool) {
	switch name {
	case "width":
		return jsvm.Number(float64(h.El.Width())), true
	case "height":
		return jsvm.Number(float64(h.El.Height())), true
	case "getContext":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			kind := ""
			if len(args) > 0 {
				kind = args[0].Str()
			}
			if kind == "webgl" || kind == "experimental-webgl" {
				return jsvm.NewHost(&webglHost{gl: h.El.GetWebGL()}), nil
			}
			ctx := h.El.GetContext(kind)
			if ctx == nil {
				return jsvm.Null(), nil
			}
			if h.ctx == nil {
				h.ctx = &ctxHost{ctx: ctx, canvasVal: jsvm.NewHost(h)}
			}
			return jsvm.NewHost(h.ctx), nil
		}), true
	case "toDataURL":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			format := ""
			quality := -1.0
			if len(args) > 0 {
				format = args[0].Str()
			}
			if len(args) > 1 && args[1].Kind() == jsvm.KindNumber {
				quality = args[1].Num()
			}
			return jsvm.String(h.El.ToDataURL(format, quality)), nil
		}), true
	case "style":
		return jsvm.NewObject(), true
	case "addEventListener", "removeEventListener":
		return listenerNatives(h.doc.Loop, "canvas", name)
	case "setAttribute", "remove":
		return noopNative(), true
	case "__string__":
		return jsvm.String("[object HTMLCanvasElement]"), true
	}
	return jsvm.Undefined(), false
}

// HostSet implements jsvm.HostObject.
func (h *CanvasHost) HostSet(name string, v jsvm.Value) bool {
	switch name {
	case "width":
		h.El.SetWidth(int(v.Num()))
		return true
	case "height":
		h.El.SetHeight(int(v.Num()))
		return true
	}
	return true // other attributes accepted and ignored
}

// --- 2D context ------------------------------------------------------------------

type ctxHost struct {
	ctx       *canvas.Context2D
	canvasVal jsvm.Value
	// shadow properties are set individually in the API but applied as a
	// unit to the context.
	shadowColor    string
	shadowOX       float64
	shadowOY       float64
	shadowBlur     float64
	fillStyleVal   jsvm.Value
	strokeStyleVal jsvm.Value
}

func (h *ctxHost) HostGet(name string) (jsvm.Value, bool) {
	switch name {
	case "canvas":
		return h.canvasVal, true
	case "fillStyle":
		if !h.fillStyleVal.IsUndefined() {
			return h.fillStyleVal, true
		}
		return jsvm.String(h.ctx.FillStyle()), true
	case "strokeStyle":
		if !h.strokeStyleVal.IsUndefined() {
			return h.strokeStyleVal, true
		}
		return jsvm.String("#000000"), true
	case "font":
		return jsvm.String(h.ctx.Font()), true
	case "globalCompositeOperation":
		return jsvm.String(h.ctx.GlobalCompositeOperation()), true
	case "measureText":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			text := ""
			if len(args) > 0 {
				text = args[0].Str()
			}
			m := h.ctx.MeasureText(text)
			out := jsvm.NewObject()
			out.Object().Props["width"] = jsvm.Number(m.Width)
			return out, nil
		}), true
	case "getImageData":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) < 4 {
				return jsvm.Undefined(), fmt.Errorf("dom: getImageData needs 4 arguments")
			}
			d := h.ctx.GetImageData(int(args[0].Num()), int(args[1].Num()), int(args[2].Num()), int(args[3].Num()))
			return jsvm.NewHost(&imageDataHost{data: d}), nil
		}), true
	case "putImageData":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) < 3 {
				return jsvm.Undefined(), nil
			}
			if idh, ok := args[0].Host().(*imageDataHost); ok {
				h.ctx.PutImageData(idh.data, int(args[1].Num()), int(args[2].Num()))
			}
			return jsvm.Undefined(), nil
		}), true
	case "createImageData":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			w, hh := 0, 0
			if len(args) > 1 {
				w, hh = int(args[0].Num()), int(args[1].Num())
			}
			return jsvm.NewHost(&imageDataHost{data: h.ctx.CreateImageData(w, hh)}), nil
		}), true
	case "createLinearGradient":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) < 4 {
				return jsvm.Undefined(), fmt.Errorf("dom: createLinearGradient needs 4 arguments")
			}
			g := h.ctx.CreateLinearGradient(args[0].Num(), args[1].Num(), args[2].Num(), args[3].Num())
			return jsvm.NewHost(&gradientHost{g: g}), nil
		}), true
	case "createRadialGradient":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) < 6 {
				return jsvm.Undefined(), fmt.Errorf("dom: createRadialGradient needs 6 arguments")
			}
			g := h.ctx.CreateRadialGradient(args[0].Num(), args[1].Num(), args[2].Num(), args[3].Num(), args[4].Num(), args[5].Num())
			return jsvm.NewHost(&gradientHost{g: g}), nil
		}), true
	case "drawImage":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) < 3 {
				return jsvm.Undefined(), nil
			}
			if ch, ok := args[0].Host().(*CanvasHost); ok {
				h.ctx.DrawImage(ch.El, args[1].Num(), args[2].Num())
			}
			return jsvm.Undefined(), nil
		}), true
	case "__string__":
		return jsvm.String("[object CanvasRenderingContext2D]"), true
	}
	if fn, ok := h.methodFor(name); ok {
		return fn, true
	}
	return jsvm.Undefined(), false
}

// methodFor returns void drawing methods as native functions.
func (h *ctxHost) methodFor(name string) (jsvm.Value, bool) {
	num := func(args []jsvm.Value, i int) float64 {
		if i < len(args) {
			return args[i].Num()
		}
		return 0
	}
	mk := func(f func(args []jsvm.Value)) jsvm.Value {
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			f(args)
			return jsvm.Undefined(), nil
		})
	}
	switch name {
	case "fillRect":
		return mk(func(a []jsvm.Value) { h.ctx.FillRect(num(a, 0), num(a, 1), num(a, 2), num(a, 3)) }), true
	case "strokeRect":
		return mk(func(a []jsvm.Value) { h.ctx.StrokeRect(num(a, 0), num(a, 1), num(a, 2), num(a, 3)) }), true
	case "clearRect":
		return mk(func(a []jsvm.Value) { h.ctx.ClearRect(num(a, 0), num(a, 1), num(a, 2), num(a, 3)) }), true
	case "fillText":
		return mk(func(a []jsvm.Value) {
			if len(a) >= 3 {
				h.ctx.FillText(a[0].Str(), a[1].Num(), a[2].Num())
			}
		}), true
	case "strokeText":
		return mk(func(a []jsvm.Value) {
			if len(a) >= 3 {
				h.ctx.StrokeText(a[0].Str(), a[1].Num(), a[2].Num())
			}
		}), true
	case "beginPath":
		return mk(func(a []jsvm.Value) { h.ctx.BeginPath() }), true
	case "closePath":
		return mk(func(a []jsvm.Value) { h.ctx.ClosePath() }), true
	case "moveTo":
		return mk(func(a []jsvm.Value) { h.ctx.MoveTo(num(a, 0), num(a, 1)) }), true
	case "lineTo":
		return mk(func(a []jsvm.Value) { h.ctx.LineTo(num(a, 0), num(a, 1)) }), true
	case "quadraticCurveTo":
		return mk(func(a []jsvm.Value) { h.ctx.QuadraticCurveTo(num(a, 0), num(a, 1), num(a, 2), num(a, 3)) }), true
	case "bezierCurveTo":
		return mk(func(a []jsvm.Value) {
			h.ctx.BezierCurveTo(num(a, 0), num(a, 1), num(a, 2), num(a, 3), num(a, 4), num(a, 5))
		}), true
	case "arc":
		return mk(func(a []jsvm.Value) {
			ccw := len(a) > 5 && a[5].Bool()
			h.ctx.Arc(num(a, 0), num(a, 1), num(a, 2), num(a, 3), num(a, 4), ccw)
		}), true
	case "arcTo":
		return mk(func(a []jsvm.Value) {
			h.ctx.ArcTo(num(a, 0), num(a, 1), num(a, 2), num(a, 3), num(a, 4))
		}), true
	case "setLineDash":
		return mk(func(a []jsvm.Value) {
			if len(a) == 0 || !a[0].IsArray() {
				return
			}
			elems := a[0].Object().Elems
			segs := make([]float64, len(elems))
			for i, e := range elems {
				segs[i] = e.Num()
			}
			h.ctx.SetLineDash(segs)
		}), true
	case "getLineDash":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			segs := h.ctx.GetLineDash()
			out := make([]jsvm.Value, len(segs))
			for i, s := range segs {
				out[i] = jsvm.Number(s)
			}
			return jsvm.NewArray(out...), nil
		}), true
	case "isPointInPath":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) < 2 {
				return jsvm.Boolean(false), nil
			}
			rule := ""
			if len(args) > 2 {
				rule = args[2].Str()
			}
			return jsvm.Boolean(h.ctx.IsPointInPath(args[0].Num(), args[1].Num(), rule)), nil
		}), true
	case "ellipse":
		return mk(func(a []jsvm.Value) {
			ccw := len(a) > 7 && a[7].Bool()
			h.ctx.Ellipse(num(a, 0), num(a, 1), num(a, 2), num(a, 3), num(a, 4), num(a, 5), num(a, 6), ccw)
		}), true
	case "rect":
		return mk(func(a []jsvm.Value) { h.ctx.Rect(num(a, 0), num(a, 1), num(a, 2), num(a, 3)) }), true
	case "fill":
		return mk(func(a []jsvm.Value) {
			rule := ""
			if len(a) > 0 {
				rule = a[0].Str()
			}
			h.ctx.Fill(rule)
		}), true
	case "stroke":
		return mk(func(a []jsvm.Value) { h.ctx.Stroke() }), true
	case "clip":
		return mk(func(a []jsvm.Value) { h.ctx.Clip() }), true
	case "save":
		return mk(func(a []jsvm.Value) { h.ctx.Save() }), true
	case "restore":
		return mk(func(a []jsvm.Value) { h.ctx.Restore() }), true
	case "translate":
		return mk(func(a []jsvm.Value) { h.ctx.Translate(num(a, 0), num(a, 1)) }), true
	case "scale":
		return mk(func(a []jsvm.Value) { h.ctx.Scale(num(a, 0), num(a, 1)) }), true
	case "rotate":
		return mk(func(a []jsvm.Value) { h.ctx.Rotate(num(a, 0)) }), true
	case "transform":
		return mk(func(a []jsvm.Value) {
			h.ctx.Transform(num(a, 0), num(a, 1), num(a, 2), num(a, 3), num(a, 4), num(a, 5))
		}), true
	case "setTransform":
		return mk(func(a []jsvm.Value) {
			h.ctx.SetTransform(num(a, 0), num(a, 1), num(a, 2), num(a, 3), num(a, 4), num(a, 5))
		}), true
	case "resetTransform":
		return mk(func(a []jsvm.Value) { h.ctx.ResetTransform() }), true
	}
	return jsvm.Undefined(), false
}

func (h *ctxHost) HostSet(name string, v jsvm.Value) bool {
	switch name {
	case "fillStyle":
		if gh, ok := v.Host().(*gradientHost); ok {
			h.ctx.SetFillGradient(gh.g.Paint())
			h.fillStyleVal = v
		} else {
			h.ctx.SetFillStyle(v.Str())
			h.fillStyleVal = jsvm.Undefined()
		}
	case "strokeStyle":
		if gh, ok := v.Host().(*gradientHost); ok {
			h.ctx.SetStrokeGradient(gh.g.Paint())
			h.strokeStyleVal = v
		} else {
			h.ctx.SetStrokeStyle(v.Str())
			h.strokeStyleVal = jsvm.Undefined()
		}
	case "font":
		h.ctx.SetFont(v.Str())
	case "textAlign":
		h.ctx.SetTextAlign(v.Str())
	case "textBaseline":
		h.ctx.SetTextBaseline(v.Str())
	case "lineWidth":
		h.ctx.SetLineWidth(v.Num())
	case "lineCap":
		h.ctx.SetLineCap(v.Str())
	case "lineJoin":
		h.ctx.SetLineJoin(v.Str())
	case "miterLimit":
		h.ctx.SetMiterLimit(v.Num())
	case "globalAlpha":
		h.ctx.SetGlobalAlpha(v.Num())
	case "globalCompositeOperation":
		h.ctx.SetGlobalCompositeOperation(v.Str())
	case "lineDashOffset":
		h.ctx.SetLineDashOffset(v.Num())
	case "shadowColor":
		h.shadowColor = v.Str()
		h.applyShadow()
	case "shadowOffsetX":
		h.shadowOX = v.Num()
		h.applyShadow()
	case "shadowOffsetY":
		h.shadowOY = v.Num()
		h.applyShadow()
	case "shadowBlur":
		h.shadowBlur = v.Num()
		h.applyShadow()
	}
	return true
}

func (h *ctxHost) applyShadow() {
	color := h.shadowColor
	if color == "" {
		color = "rgba(0,0,0,0)"
	}
	h.ctx.SetShadow(color, h.shadowOX, h.shadowOY, h.shadowBlur)
}

// --- gradient -------------------------------------------------------------------

type gradientHost struct {
	g *canvas.Gradient
}

func (h *gradientHost) HostGet(name string) (jsvm.Value, bool) {
	if name == "addColorStop" {
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) >= 2 {
				h.g.AddColorStop(args[0].Num(), args[1].Str())
			}
			return jsvm.Undefined(), nil
		}), true
	}
	if name == "__string__" {
		return jsvm.String("[object CanvasGradient]"), true
	}
	return jsvm.Undefined(), false
}

func (h *gradientHost) HostSet(name string, v jsvm.Value) bool { return false }

// --- ImageData --------------------------------------------------------------------

type imageDataHost struct {
	data *canvas.ImageData
}

func (h *imageDataHost) HostGet(name string) (jsvm.Value, bool) {
	switch name {
	case "width":
		return jsvm.Number(float64(h.data.W)), true
	case "height":
		return jsvm.Number(float64(h.data.H)), true
	case "data":
		return jsvm.NewHost(&pixelArrayHost{pix: h.data.Pix}), true
	case "__string__":
		return jsvm.String("[object ImageData]"), true
	}
	return jsvm.Undefined(), false
}

func (h *imageDataHost) HostSet(name string, v jsvm.Value) bool { return false }

// pixelArrayHost exposes the Uint8ClampedArray-ish pixel buffer with
// numeric indexing and length.
type pixelArrayHost struct {
	pix []uint8
}

func (h *pixelArrayHost) HostGet(name string) (jsvm.Value, bool) {
	if name == "length" {
		return jsvm.Number(float64(len(h.pix))), true
	}
	if idx, ok := parseIndex(name); ok && idx < len(h.pix) {
		return jsvm.Number(float64(h.pix[idx])), true
	}
	return jsvm.Undefined(), false
}

func (h *pixelArrayHost) HostSet(name string, v jsvm.Value) bool {
	if idx, ok := parseIndex(name); ok && idx < len(h.pix) {
		n := int(v.Num())
		if n < 0 {
			n = 0
		}
		if n > 255 {
			n = 255
		}
		h.pix[idx] = uint8(n)
		return true
	}
	return false
}

func parseIndex(s string) (int, bool) {
	if s == "" {
		return 0, false
	}
	n := 0
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < '0' || c > '9' {
			return 0, false
		}
		n = n*10 + int(c-'0')
		if n > 1<<30 {
			return 0, false
		}
	}
	return n, true
}

// --- navigator / window / screen ------------------------------------------------------

type navigatorHost struct {
	doc *Document
}

func (h *navigatorHost) HostGet(name string) (jsvm.Value, bool) {
	switch name {
	case "userAgent":
		return jsvm.String(h.doc.Profile.UserAgent()), true
	case "platform":
		return jsvm.String(h.doc.Profile.OS), true
	case "language":
		return jsvm.String("en-US"), true
	case "languages":
		return jsvm.NewArray(jsvm.String("en-US"), jsvm.String("en")), true
	case "hardwareConcurrency":
		return jsvm.Number(8), true
	case "webdriver":
		// The crawler masks automation, as Tracker Radar Collector does.
		return jsvm.Boolean(false), true
	case "__string__":
		return jsvm.String("[object Navigator]"), true
	}
	return jsvm.Undefined(), false
}

func (h *navigatorHost) HostSet(name string, v jsvm.Value) bool { return false }

type windowHost struct {
	doc   *Document
	props map[string]jsvm.Value
}

func (h *windowHost) HostGet(name string) (jsvm.Value, bool) {
	if h.props != nil {
		if v, ok := h.props[name]; ok {
			return v, true
		}
	}
	switch name {
	case "innerWidth":
		return jsvm.Number(1920), true
	case "innerHeight":
		return jsvm.Number(1080), true
	case "devicePixelRatio":
		return jsvm.Number(1), true
	case "addEventListener", "removeEventListener":
		return listenerNatives(h.doc.Loop, "window", name)
	case "setTimeout", "setInterval":
		// Callbacks are queued, not run: the crawler drains the loop
		// deterministically at page-settle. Ids are unique and
		// monotonically increasing, as scripts expect.
		interval := name == "setInterval"
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			var fn jsvm.Value
			delay := 0.0
			if len(args) > 0 {
				fn = args[0]
			}
			if len(args) > 1 {
				delay = args[1].Num()
			}
			if interval {
				return jsvm.Number(float64(h.doc.Loop.SetInterval(fn, delay))), nil
			}
			return jsvm.Number(float64(h.doc.Loop.SetTimeout(fn, delay))), nil
		}), true
	case "clearTimeout", "clearInterval":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) > 0 {
				h.doc.Loop.ClearTimer(int(args[0].Num()))
			}
			return jsvm.Undefined(), nil
		}), true
	case "requestIdleCallback":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			var fn jsvm.Value
			if len(args) > 0 {
				fn = args[0]
			}
			return jsvm.Number(float64(h.doc.Loop.RequestIdle(fn))), nil
		}), true
	case "cancelIdleCallback":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) > 0 {
				h.doc.Loop.CancelIdle(int(args[0].Num()))
			}
			return jsvm.Undefined(), nil
		}), true
	case "location":
		loc := jsvm.NewObject()
		loc.Object().Props["hostname"] = jsvm.String(h.doc.Domain)
		loc.Object().Props["href"] = jsvm.String("https://" + h.doc.Domain + "/")
		return loc, true
	case "__string__":
		return jsvm.String("[object Window]"), true
	}
	return jsvm.Undefined(), false
}

func (h *windowHost) HostSet(name string, v jsvm.Value) bool {
	if h.props == nil {
		h.props = map[string]jsvm.Value{}
	}
	h.props[name] = v
	return true
}

type screenHost struct{}

func (h *screenHost) HostGet(name string) (jsvm.Value, bool) {
	switch name {
	case "width":
		return jsvm.Number(1920), true
	case "height":
		return jsvm.Number(1080), true
	case "colorDepth", "pixelDepth":
		return jsvm.Number(24), true
	}
	return jsvm.Undefined(), false
}

func (h *screenHost) HostSet(name string, v jsvm.Value) bool { return false }
