package dom

import (
	"canvassing/internal/canvas"
	"canvassing/internal/jsvm"
)

// webglHost exposes the WebGL-lite context to scripts: GL constants as
// properties, the fingerprint-relevant getters, and the fixed-pipeline
// drawing subset.
type webglHost struct {
	gl *canvas.WebGLContext
}

// glConstants maps the property names scripts use to enum values.
var glConstants = map[string]int{
	"VENDOR":                   canvas.GLVendor,
	"RENDERER":                 canvas.GLRenderer,
	"VERSION":                  canvas.GLVersion,
	"SHADING_LANGUAGE_VERSION": canvas.GLShadingLanguage,
	"UNMASKED_VENDOR_WEBGL":    canvas.GLUnmaskedVendorWebGL,
	"UNMASKED_RENDERER_WEBGL":  canvas.GLUnmaskedRendererWebGL,
	"MAX_TEXTURE_SIZE":         canvas.GLMaxTextureSize,
	"COLOR_BUFFER_BIT":         canvas.GLColorBufferBit,
	"DEPTH_BUFFER_BIT":         canvas.GLDepthBufferBit,
	"TRIANGLES":                canvas.GLTriangles,
	"TRIANGLE_STRIP":           canvas.GLTriangleStrip,
	"VERTEX_SHADER":            canvas.GLVertexShader,
	"FRAGMENT_SHADER":          canvas.GLFragmentShader,
	"ARRAY_BUFFER":             canvas.GLArrayBuffer,
	"STATIC_DRAW":              0x88E4,
}

// noopMembers are pipeline calls the fixed renderer accepts and ignores.
var noopMembers = map[string]bool{
	"shaderSource": true, "compileShader": true, "attachShader": true,
	"linkProgram": true, "useProgram": true, "bindBuffer": true,
	"enableVertexAttribArray": true, "viewport": true, "enable": true,
	"disable": true, "depthFunc": true, "getExtension": true,
}

func (h *webglHost) HostGet(name string) (jsvm.Value, bool) {
	if c, ok := glConstants[name]; ok {
		return jsvm.Number(float64(c)), true
	}
	switch name {
	case "getParameter":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) == 0 {
				return jsvm.Null(), nil
			}
			return jsvm.String(h.gl.GetParameter(int(args[0].Num()))), nil
		}), true
	case "getSupportedExtensions":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			exts := h.gl.GetSupportedExtensions()
			out := make([]jsvm.Value, len(exts))
			for i, e := range exts {
				out[i] = jsvm.String(e)
			}
			return jsvm.NewArray(out...), nil
		}), true
	case "clearColor":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) >= 4 {
				h.gl.ClearColor(args[0].Num(), args[1].Num(), args[2].Num(), args[3].Num())
			}
			return jsvm.Undefined(), nil
		}), true
	case "clear":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) > 0 {
				h.gl.Clear(int(args[0].Num()))
			}
			return jsvm.Undefined(), nil
		}), true
	case "createShader", "createProgram", "createBuffer":
		kind := name[len("create"):]
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			return jsvm.Number(float64(h.gl.CreateHandle(kind))), nil
		}), true
	case "bufferData":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			// gl.bufferData(target, data, usage): data is a plain array
			// in this corpus (no typed arrays in the VM).
			if len(args) >= 2 && args[1].IsArray() {
				elems := args[1].Object().Elems
				data := make([]float64, len(elems))
				for i, e := range elems {
					data[i] = e.Num()
				}
				h.gl.BufferData(data)
			}
			return jsvm.Undefined(), nil
		}), true
	case "vertexAttribPointer":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) >= 2 {
				h.gl.SetVertexSize(int(args[1].Num()))
			}
			h.gl.NoopCall("vertexAttribPointer")
			return jsvm.Undefined(), nil
		}), true
	case "drawArrays":
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			if len(args) >= 3 {
				h.gl.DrawArrays(int(args[0].Num()), int(args[1].Num()), int(args[2].Num()))
			}
			return jsvm.Undefined(), nil
		}), true
	case "__string__":
		return jsvm.String("[object WebGLRenderingContext]"), true
	}
	if noopMembers[name] {
		return jsvm.NewNative(func(this jsvm.Value, args []jsvm.Value) (jsvm.Value, error) {
			h.gl.NoopCall(name)
			return jsvm.Undefined(), nil
		}), true
	}
	return jsvm.Undefined(), false
}

func (h *webglHost) HostSet(name string, v jsvm.Value) bool { return false }
