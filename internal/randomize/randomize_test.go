package randomize

import (
	"testing"

	"canvassing/internal/canvas"
	"canvassing/internal/machine"
)

// renderOnce draws a test canvas with the hook installed and extracts it.
func renderOnce(hook canvas.ExtractHook) string {
	e := canvas.New(machine.Intel())
	e.SetExtractHook(hook)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#f60")
	ctx.FillRect(10, 10, 100, 50)
	ctx.SetFont("14px Arial")
	ctx.SetFillStyle("#069")
	ctx.FillText("probe", 12, 40)
	return e.ToDataURL("", 0)
}

func TestPerRenderNoiseDiffers(t *testing.T) {
	d := NewDefense(PerRender, 1)
	hook := d.Hook()
	a := renderOnce(hook)
	b := renderOnce(hook)
	if a == b {
		t.Fatal("per-render noise must change every extraction")
	}
}

func TestPerSessionNoiseStable(t *testing.T) {
	d := NewDefense(PerSession, 1)
	hook := d.Hook()
	a := renderOnce(hook)
	b := renderOnce(hook)
	if a != b {
		t.Fatal("per-session noise must repeat for identical canvases")
	}
	// But it still poisons the fingerprint vs no defense.
	clean := renderOnce(nil)
	if a == clean {
		t.Fatal("session noise should still change the canvas")
	}
	// And different sessions poison differently.
	d2 := NewDefense(PerSession, 2)
	if renderOnce(d2.Hook()) == a {
		t.Fatal("different session seeds must differ")
	}
}

func TestDetectRandomization(t *testing.T) {
	perRender := NewDefense(PerRender, 9).Hook()
	if !DetectRandomization(func() string { return renderOnce(perRender) }) {
		t.Fatal("Algorithm 1 must detect per-render noise")
	}
	perSession := NewDefense(PerSession, 9).Hook()
	if DetectRandomization(func() string { return renderOnce(perSession) }) {
		t.Fatal("Algorithm 1 cannot detect per-session noise (footnote 7)")
	}
	if DetectRandomization(func() string { return renderOnce(nil) }) {
		t.Fatal("no defense, no detection")
	}
}

func TestNoiseLeavesTransparentPixelsClean(t *testing.T) {
	e := canvas.New(machine.Intel())
	d := NewDefense(PerRender, 3)
	e.SetExtractHook(d.Hook())
	// Empty canvas: everything transparent, nothing to noise.
	a := e.ToDataURL("", 0)
	b := e.ToDataURL("", 0)
	if a != b {
		t.Fatal("noise must only apply to drawn pixels")
	}
}

func TestNoiseDoesNotMutateBacking(t *testing.T) {
	e := canvas.New(machine.Intel())
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#123456")
	ctx.FillRect(0, 0, 50, 50)
	before := e.Image().Clone()
	d := NewDefense(PerRender, 5)
	e.SetExtractHook(d.Hook())
	_ = e.ToDataURL("", 0)
	if !e.Image().Equal(before) {
		t.Fatal("defense must not mutate the canvas bitmap")
	}
}

func TestModeString(t *testing.T) {
	if PerRender.String() != "per-render" || PerSession.String() != "per-session" {
		t.Fatal("mode names")
	}
	if NewDefense(PerSession, 0).Mode() != PerSession {
		t.Fatal("mode accessor")
	}
}

func TestPageHookSchedulingInvariant(t *testing.T) {
	// Per-render noise from a page-scoped hook must be a pure function
	// of (seed, domain, render ordinal) — re-deriving the hook, or
	// interleaving renders for other domains in between, cannot change
	// what a given page sees. This is what keeps traced visit costs
	// width- and run-invariant under a defense (global-counter hooks
	// hand out noise in worker-scheduling order).
	d := NewDefense(PerRender, 7)
	solo := []string{}
	h := d.PageHook("a.example")
	solo = append(solo, renderOnce(h), renderOnce(h))

	// Same domain, fresh hook, with another domain's renders racing in
	// program order between ours.
	d2 := NewDefense(PerRender, 7)
	ha := d2.PageHook("a.example")
	hb := d2.PageHook("b.example")
	interleaved := []string{renderOnce(ha)}
	renderOnce(hb)
	interleaved = append(interleaved, renderOnce(ha))
	renderOnce(hb)

	for i := range solo {
		if solo[i] != interleaved[i] {
			t.Fatalf("render %d for a.example depends on other pages' schedule", i)
		}
	}
	if solo[0] == solo[1] {
		t.Fatal("page-scoped per-render noise must still change every extraction")
	}
	if renderOnce(d2.PageHook("b.example")) == solo[0] {
		t.Fatal("different domains must draw different noise")
	}
}

func TestPageHookPerSessionDelegates(t *testing.T) {
	d := NewDefense(PerSession, 3)
	a := renderOnce(d.PageHook("a.example"))
	b := renderOnce(d.PageHook("b.example"))
	if a != b {
		t.Fatal("per-session noise is content-keyed; page scoping must not change it")
	}
}
