// Package randomize implements canvas-randomization defenses (§5.3):
// browser or extension features that add noise to extracted canvas
// pixels, and the analysis of the fingerprinters' counter-measure — the
// double-render inconsistency check of Algorithm 1.
//
// Two noise disciplines exist in the wild and they differ in exactly the
// property the check probes:
//
//   - per-render noise (e.g. the Canvas Fingerprint Defender extension):
//     every extraction gets fresh noise, so rendering the same canvas
//     twice yields different bytes and the fingerprinter detects the
//     defense (and discards the canvas);
//   - per-session noise (e.g. Firefox): one noise pattern per site per
//     session, so repeated renderings agree and the check passes — the
//     fingerprint is poisoned but stable, and the fingerprinter cannot
//     tell (footnote 7).
package randomize

import (
	"fmt"
	"sync"
	"sync/atomic"

	"canvassing/internal/canvas"
	"canvassing/internal/obs/event"
	"canvassing/internal/raster"
	"canvassing/internal/stats"
)

// Mode selects the noise discipline.
type Mode uint8

// Noise disciplines.
const (
	// PerRender draws fresh noise for every extraction.
	PerRender Mode = iota
	// PerSession derives noise from the session seed and canvas content,
	// so identical canvases extract identically within a session.
	PerSession
)

// String names the mode.
func (m Mode) String() string {
	if m == PerSession {
		return "per-session"
	}
	return "per-render"
}

// Defense is a canvas-randomization implementation.
type Defense struct {
	mode Mode
	// Amplitude is the ± pixel-value perturbation (default 1, matching
	// the subtle noise real defenses inject).
	Amplitude int
	seed      uint64
	counter   atomic.Uint64
	mu        sync.Mutex
}

// NewDefense returns a defense with the given discipline.
func NewDefense(mode Mode, seed uint64) *Defense {
	return &Defense{mode: mode, Amplitude: 1, seed: seed}
}

// Mode returns the noise discipline.
func (d *Defense) Mode() Mode { return d.mode }

// Hook returns the canvas extraction hook implementing the defense.
func (d *Defense) Hook() canvas.ExtractHook {
	return func(img *raster.Image) *raster.Image {
		var noiseSeed uint64
		switch d.mode {
		case PerSession:
			// Stable per canvas content: same pixels → same noise.
			noiseSeed = d.seed ^ stats.HashBytes(img.Pix) ^ uint64(img.W)<<32 ^ uint64(img.H)
		default:
			noiseSeed = d.seed ^ d.counter.Add(1)
		}
		return addNoise(img, noiseSeed, d.Amplitude)
	}
}

// PageHook returns an extraction hook scoped to one page visit. The
// per-render discipline draws noise from (seed, domain, render ordinal
// within the page) rather than the process-global counter Hook uses,
// so the noise a visit sees — and everything downstream of it, like
// interpreter step counts feeding traced visit cost — is a pure
// function of the page, independent of worker scheduling. Per-session
// noise is already content-keyed and needs no scoping.
func (d *Defense) PageHook(domain string) canvas.ExtractHook {
	if d.mode == PerSession {
		return d.Hook()
	}
	base := d.seed ^ stats.HashString("defense-page:"+domain)
	var renders uint64
	return func(img *raster.Image) *raster.Image {
		renders++
		return addNoise(img, base^renders, d.Amplitude)
	}
}

// addNoise perturbs ~1/16 of pixels' low bits deterministically from seed.
func addNoise(img *raster.Image, seed uint64, amplitude int) *raster.Image {
	out := img.Clone()
	rng := stats.NewRNG(seed)
	for i := 0; i < len(out.Pix); i += 4 {
		// Noise only where something was drawn; fully transparent pixels
		// stay clean (as real farbling implementations behave).
		if out.Pix[i+3] == 0 {
			continue
		}
		r := rng.Uint64()
		if r%16 != 0 {
			continue
		}
		ch := int(r>>8) % 3
		delta := int(r>>16)%(2*amplitude+1) - amplitude
		v := int(out.Pix[i+ch]) + delta
		if v < 0 {
			v = 0
		}
		if v > 255 {
			v = 255
		}
		out.Pix[i+ch] = uint8(v)
	}
	return out
}

// DetectRandomization runs Algorithm 1 outside a fingerprinting script:
// render twice via the render function and compare. It reports whether a
// randomization defense is detectable.
func DetectRandomization(render func() string) bool {
	return render() != render()
}

// CheckInconsistency applies Algorithm 1 to a site's extraction stream:
// it reports true when the site extracted at least one pair of canvases
// but no two extractions agreed — the signature of a per-render
// randomization defense. Each verdict is recorded to sink (nil
// disables) under the crawl condition label, with the defense mode as
// evidence so a run diff can separate per-render from per-session
// outcomes.
func CheckInconsistency(sink *event.Sink, crawl, site, mode string, dataURLs []string) bool {
	counts := map[string]int{}
	hasPair := false
	for _, u := range dataURLs {
		counts[u]++
		if counts[u] >= 2 {
			hasPair = true
		}
	}
	detected := !hasPair && len(dataURLs) >= 2
	if sink != nil {
		verdict := "consistent"
		if detected {
			verdict = "randomized"
		} else if len(dataURLs) < 2 {
			verdict = "no-pair"
		}
		sink.Record(event.Event{
			Kind:     event.RandomizeVerdict,
			Crawl:    crawl,
			Site:     site,
			Verdict:  verdict,
			Evidence: mode,
			Detail:   fmt.Sprintf("%d extractions, %d distinct", len(dataURLs), len(counts)),
		})
	}
	return detected
}
