package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	tab := NewTable("Title", "name", "count")
	tab.AddRow("a", 1)
	tab.AddRow("longer-name", 12345)
	out := tab.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "Title" {
		t.Fatalf("title line: %q", lines[0])
	}
	// Header, separator and both rows share the same width.
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[2], "---") {
		t.Fatalf("separator: %q", lines[2])
	}
	if !strings.Contains(lines[4], "longer-name") || !strings.Contains(lines[4], "12345") {
		t.Fatalf("row: %q", lines[4])
	}
	// Column starts align between header and rows.
	idxHeader := strings.Index(lines[1], "count")
	idxRow := strings.Index(lines[4], "12345")
	if idxHeader != idxRow {
		t.Fatalf("misaligned columns: %d vs %d", idxHeader, idxRow)
	}
}

func TestTableFloatFormatting(t *testing.T) {
	tab := NewTable("", "v")
	tab.AddRow(3.14159)
	if !strings.Contains(tab.String(), "3.1") || strings.Contains(tab.String(), "3.14159") {
		t.Fatalf("float should render with one decimal: %q", tab.String())
	}
}

func TestBar(t *testing.T) {
	if Bar(5, 10, 10) != "#####" {
		t.Fatalf("half bar: %q", Bar(5, 10, 10))
	}
	if Bar(20, 10, 10) != "##########" {
		t.Fatal("clamped bar")
	}
	if Bar(1, 0, 10) != "" {
		t.Fatal("zero max")
	}
	if Bar(-1, 10, 10) != "" {
		t.Fatal("negative value")
	}
}

func TestPct(t *testing.T) {
	if Pct(1, 8) != "12.5%" {
		t.Fatalf("pct: %q", Pct(1, 8))
	}
	if Pct(3, 0) != "-" {
		t.Fatal("zero denominator")
	}
	if Pct(0, 5) != "0.0%" {
		t.Fatal("zero numerator")
	}
}

func TestPaperVsMeasured(t *testing.T) {
	line := PaperVsMeasured("metric", "10%", "11%")
	if !strings.Contains(line, "paper: 10%") || !strings.Contains(line, "measured: 11%") {
		t.Fatalf("line: %q", line)
	}
}
