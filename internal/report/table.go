// Package report renders experiment results as aligned text tables and
// simple ASCII bar charts, for terminal output and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"
	"unicode/utf8"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	rows    [][]string
}

// NewTable returns a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{Title: title, Headers: headers}
}

// AddRow appends a row; values are stringified with %v.
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprint(v)
		}
	}
	t.rows = append(t.rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = utf8.RuneCountInString(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if w := utf8.RuneCountInString(c); i < len(widths) && w > widths[i] {
				widths[i] = w
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		sb.WriteString(t.Title)
		sb.WriteByte('\n')
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(pad(c, widths[i]))
		}
		sb.WriteByte('\n')
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

// pad right-pads to w columns, counting runes (durations like "278µs"
// contain multi-byte characters).
func pad(s string, w int) string {
	n := utf8.RuneCountInString(s)
	if n >= w {
		return s
	}
	return s + strings.Repeat(" ", w-n)
}

// Bar renders one horizontal ASCII bar scaled to maxValue over width
// characters.
func Bar(value, maxValue float64, width int) string {
	if maxValue <= 0 || value < 0 {
		return ""
	}
	n := int(value / maxValue * float64(width))
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// Pct formats a ratio as "12.7%". Zero denominators render as "-".
func Pct(num, den int) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// PaperVsMeasured renders one comparison line for EXPERIMENTS.md.
func PaperVsMeasured(metric, paper, measured string) string {
	return fmt.Sprintf("  %-52s paper: %-14s measured: %s", metric, paper, measured)
}
