package analysis

import (
	"testing"

	"canvassing/internal/detect"
)

// TestCacheSeed pins Seed's contract: seeded verdicts answer lookups
// without compute, move no counters, and lose ties to whatever entry
// is already present (matching GetOrCompute's singleflight answer).
func TestCacheSeed(t *testing.T) {
	c := NewCache(nil)
	key := detect.MemoKey{Hash: "h1", Anim: false}
	want := detect.Verdict{Fingerprintable: true, W: 240, H: 60, Format: "image/png"}
	c.Seed(key, want)
	if c.Hits() != 0 || c.Misses() != 0 {
		t.Fatalf("Seed moved counters: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	got := c.GetOrCompute(key, func() detect.Verdict {
		t.Fatal("seeded key must not compute")
		return detect.Verdict{}
	})
	if got != want {
		t.Fatalf("got %+v, want %+v", got, want)
	}
	// The lookup of the seeded key counts as a hit, like any cached key.
	if c.Hits() != 1 || c.Misses() != 0 {
		t.Fatalf("lookup counters: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	// Seeding an existing key is a no-op: first verdict wins.
	c.Seed(key, detect.Verdict{})
	if got := c.Warm(key, func() detect.Verdict { return detect.Verdict{} }); got != want {
		t.Fatalf("re-seed overwrote: %+v", got)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Seeding after a computed entry also loses the tie.
	key2 := detect.MemoKey{Hash: "h2", Anim: true}
	computed := detect.Verdict{Exclude: detect.AnimationScript}
	c.GetOrCompute(key2, func() detect.Verdict { return computed })
	c.Seed(key2, want)
	if got := c.Warm(key2, func() detect.Verdict { return detect.Verdict{} }); got != computed {
		t.Fatalf("Seed overwrote computed entry: %+v", got)
	}
}
