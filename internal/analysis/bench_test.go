package analysis

import (
	"sync"
	"testing"

	"canvassing/internal/crawler"
	"canvassing/internal/web"
)

// benchFixture crawls a Scale-0.2 web once (8k pages — large enough
// that per-page classification, not pool setup, dominates) and shares
// the pages across every benchmark. The acceptance target for this
// suite is BenchmarkAnalyzeParallel8 ≥ 2× BenchmarkAnalyzeSerial on
// an 8-core runner; on fewer cores the widths converge.
var benchFixture struct {
	once  sync.Once
	pages []*crawler.PageResult
}

func benchPages(b *testing.B) []*crawler.PageResult {
	benchFixture.once.Do(func() {
		w := web.Generate(web.Config{Seed: 1, Scale: 0.2, TrancoMax: 1_000_000})
		sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
		cfg := crawler.DefaultConfig()
		cfg.Workers = 8
		cfg.Seed = 1
		benchFixture.pages = crawler.Crawl(w, sites, cfg).Pages
	})
	return benchFixture.pages
}

// benchAnalyze measures raw classification fan-out at one width: no
// memo cache, no event sink, so the timed work is exactly the per-page
// detect pass plus the pool machinery.
func benchAnalyze(b *testing.B, workers int) {
	pages := benchPages(b)
	ex := NewExecutor(workers, nil, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.AnalyzeAll(pages, nil, "bench")
	}
	b.ReportMetric(float64(len(pages)*b.N)/b.Elapsed().Seconds(), "pages/s")
}

func BenchmarkAnalyzeSerial(b *testing.B)    { benchAnalyze(b, 1) }
func BenchmarkAnalyzeParallel2(b *testing.B) { benchAnalyze(b, 2) }
func BenchmarkAnalyzeParallel8(b *testing.B) { benchAnalyze(b, 8) }

// BenchmarkAnalyzeCacheCold measures the first-cohort cost with
// memoization on: every iteration starts an empty cache, so each
// distinct canvas payload is classified once and duplicate payloads
// hit the fresh entries.
func BenchmarkAnalyzeCacheCold(b *testing.B) {
	pages := benchPages(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex := NewExecutor(1, NewCache(nil), nil)
		ex.AnalyzeAll(pages, nil, "bench")
	}
	b.ReportMetric(float64(len(pages)*b.N)/b.Elapsed().Seconds(), "pages/s")
}

// BenchmarkAnalyzeCacheWarm measures the re-analysis cost the memo
// cache exists for (the ABP/UBO/M1 passes): the cache is pre-warmed
// outside the timer, so every lookup in the timed region is a hit.
func BenchmarkAnalyzeCacheWarm(b *testing.B) {
	pages := benchPages(b)
	ex := NewExecutor(1, NewCache(nil), nil)
	ex.AnalyzeAll(pages, nil, "warmup")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ex.AnalyzeAll(pages, nil, "bench")
	}
	b.ReportMetric(float64(len(pages)*b.N)/b.Elapsed().Seconds(), "pages/s")
}
