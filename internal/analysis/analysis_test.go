package analysis

import (
	"fmt"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"canvassing/internal/canvas"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/machine"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

// dataURL renders a w×h canvas — distinct dimensions give distinct
// payloads and therefore distinct memo keys.
func dataURL(w, h int) string {
	e := canvas.New(machine.Intel())
	e.SetWidth(w)
	e.SetHeight(h)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#a1b2c3")
	ctx.FillRect(0, 0, float64(w), float64(h))
	return e.ToDataURL("", 0)
}

// testPages builds n synthetic crawled pages. Every page extracts one
// canvas shared across the whole set (the "popular fingerprinting
// script" case the memo cache exists for), one of a handful of
// rotating payloads, and every third page adds a unique payload plus
// an animation-script extraction.
func testPages(n int) []*crawler.PageResult {
	shared := dataURL(200, 60)
	rotating := []string{dataURL(100, 40), dataURL(120, 40), dataURL(140, 40), dataURL(160, 40)}
	pages := make([]*crawler.PageResult, n)
	for i := 0; i < n; i++ {
		p := &crawler.PageResult{
			Domain: fmt.Sprintf("site%04d.example", i),
			Rank:   i + 1,
			Cohort: web.Popular,
			OK:     true,
			ScriptMethods: map[string]map[string]bool{
				"https://cdn.example/anim.js": {"save": true, "restore": true},
			},
		}
		p.Extractions = append(p.Extractions,
			crawler.Extraction{ScriptURL: "https://cdn.example/fp.js", DataURL: shared},
			crawler.Extraction{ScriptURL: "https://cdn.example/fp2.js", DataURL: rotating[i%len(rotating)]},
		)
		if i%3 == 0 {
			p.Extractions = append(p.Extractions,
				crawler.Extraction{ScriptURL: "https://cdn.example/unique.js", DataURL: dataURL(30+i, 30)},
				crawler.Extraction{ScriptURL: "https://cdn.example/anim.js", DataURL: shared},
			)
		}
		pages[i] = p
	}
	return pages
}

// TestParallelMatchesSerial is the package-level half of the
// determinism oracle: for several widths, the executor's results AND
// its merged event log must equal a serial detect.AnalyzeAllEvents
// run, event for event including sequence numbers.
func TestParallelMatchesSerial(t *testing.T) {
	pages := testPages(101)
	serialSink := event.NewSink(0)
	want := detect.AnalyzeAllEvents(pages, serialSink, "control")
	wantEvents := serialSink.Events()
	if len(wantEvents) == 0 {
		t.Fatal("fixture produced no events")
	}
	for _, workers := range []int{1, 2, 8, 32} {
		for _, withCache := range []bool{false, true} {
			var cache *Cache
			if withCache {
				cache = NewCache(nil)
			}
			sink := event.NewSink(0)
			ex := NewExecutor(workers, cache, nil)
			got := ex.AnalyzeAll(pages, sink, "control")
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d cache=%v: results differ from serial", workers, withCache)
			}
			if !reflect.DeepEqual(sink.Events(), wantEvents) {
				t.Fatalf("workers=%d cache=%v: merged event log differs from serial", workers, withCache)
			}
		}
	}
}

// TestCacheCountersDeterministic pins the singleflight accounting:
// hit/miss totals depend only on the key multiset, never on worker
// width or scheduling.
func TestCacheCountersDeterministic(t *testing.T) {
	pages := testPages(90)
	distinct := map[detect.MemoKey]bool{}
	lookups := 0
	for _, p := range pages {
		anim := map[string]bool{}
		for url, m := range p.ScriptMethods {
			if m["save"] {
				anim[url] = true
			}
		}
		for _, e := range p.Extractions {
			distinct[detect.MemoKey{Hash: detect.HashDataURL(e.DataURL), Anim: anim[e.ScriptURL]}] = true
			lookups++
		}
	}
	for _, workers := range []int{1, 2, 8, 32} {
		cache := NewCache(obs.NewRegistry())
		ex := NewExecutor(workers, cache, nil)
		ex.AnalyzeAll(pages, nil, "control")
		if got, want := cache.Misses(), int64(len(distinct)); got != want {
			t.Fatalf("workers=%d: misses=%d, want %d (distinct keys)", workers, got, want)
		}
		if got, want := cache.Hits(), int64(lookups-len(distinct)); got != want {
			t.Fatalf("workers=%d: hits=%d, want %d", workers, got, want)
		}
		if cache.Len() != len(distinct) {
			t.Fatalf("workers=%d: cache len=%d, want %d", workers, cache.Len(), len(distinct))
		}
	}
}

// TestCacheCountersInRegistry checks the obs wiring: the counters land
// in the registry snapshot under the documented names.
func TestCacheCountersInRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	cache := NewCache(reg)
	ex := NewExecutor(4, cache, nil)
	ex.AnalyzeAll(testPages(20), nil, "control")
	snap := reg.Snapshot()
	if snap.Counters["analysis.cache.misses"] == 0 {
		t.Fatal("analysis.cache.misses not in registry")
	}
	if snap.Counters["analysis.cache.hits"] == 0 {
		t.Fatal("analysis.cache.hits not in registry")
	}
	if snap.Counters["analysis.cache.hits"] != cache.Hits() {
		t.Fatal("registry and cache disagree")
	}
}

// TestCacheSingleflight hammers one key from many goroutines: compute
// must run exactly once, everyone must see its verdict, and the
// counters must read 1 miss / N-1 hits.
func TestCacheSingleflight(t *testing.T) {
	cache := NewCache(nil)
	key := detect.MemoKey{Hash: "deadbeef", Anim: false}
	var computes atomic.Int64
	const goroutines = 64
	var wg sync.WaitGroup
	results := make([]detect.Verdict, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = cache.GetOrCompute(key, func() detect.Verdict {
				computes.Add(1)
				return detect.Verdict{Fingerprintable: true, W: 42, H: 42}
			})
		}(i)
	}
	wg.Wait()
	if computes.Load() != 1 {
		t.Fatalf("compute ran %d times", computes.Load())
	}
	for i, v := range results {
		if !v.Fingerprintable || v.W != 42 {
			t.Fatalf("goroutine %d saw wrong verdict: %+v", i, v)
		}
	}
	if cache.Misses() != 1 || cache.Hits() != goroutines-1 {
		t.Fatalf("counters: %d misses / %d hits, want 1 / %d", cache.Misses(), cache.Hits(), goroutines-1)
	}
}

// TestRunStats checks the per-condition breakdown the telemetry report
// renders.
func TestRunStats(t *testing.T) {
	ex := NewExecutor(2, NewCache(nil), nil)
	pages := testPages(10)
	ex.AnalyzeAll(pages, nil, "control")
	ex.AnalyzeAll(pages, nil, "abp")
	runs := ex.Runs()
	if len(runs) != 2 || runs[0].Crawl != "control" || runs[1].Crawl != "abp" {
		t.Fatalf("runs = %+v", runs)
	}
	if runs[0].Pages != 10 || runs[0].Canvases == 0 || runs[0].Shards == 0 {
		t.Fatalf("run stats empty: %+v", runs[0])
	}
	if runs[0].Workers != 2 {
		t.Fatalf("workers = %d", runs[0].Workers)
	}
}

// TestEmptyAndTinyInputs exercises the shard-sizing edges: zero pages,
// one page, fewer pages than workers.
func TestEmptyAndTinyInputs(t *testing.T) {
	ex := NewExecutor(8, NewCache(nil), nil)
	if got := ex.AnalyzeAll(nil, event.NewSink(0), "control"); len(got) != 0 {
		t.Fatalf("nil pages → %d results", len(got))
	}
	for _, n := range []int{1, 3, 7} {
		pages := testPages(n)
		sink := event.NewSink(0)
		got := ex.AnalyzeAll(pages, sink, "control")
		want := detect.AnalyzeAllEvents(pages, nil, "control")
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("n=%d: results differ from serial", n)
		}
	}
}
