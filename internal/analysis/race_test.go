package analysis

import (
	"reflect"
	"sync"
	"testing"

	"canvassing/internal/detect"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
)

// TestConcurrentCohortAnalysesRace mirrors the study's worst case for
// the race detector: several cohort analyses running at once on wide
// executors, all sharing one memo cache and one registry (the study
// itself serializes cohorts, but the cache and executor must not
// depend on that). Every cohort's merged event log must still match a
// serial run, and the shared counters must still add up.
func TestConcurrentCohortAnalysesRace(t *testing.T) {
	pages := testPages(60)
	want := detect.AnalyzeAllEvents(pages, nil, "")
	wantEvents := func(cond string) []event.Event {
		s := event.NewSink(0)
		detect.AnalyzeAllEvents(pages, s, cond)
		return s.Events()
	}

	reg := obs.NewRegistry()
	cache := NewCache(reg)
	conds := []string{"control", "abp", "ubo", "m1", "inner", "demo"}
	var wg sync.WaitGroup
	type res struct {
		sites  []detect.SiteCanvases
		events []event.Event
	}
	results := make([]res, len(conds))
	for i, cond := range conds {
		wg.Add(1)
		go func(i int, cond string) {
			defer wg.Done()
			ex := NewExecutor(8, cache, nil)
			sink := event.NewSink(0)
			sites := ex.AnalyzeAll(pages, sink, cond)
			results[i] = res{sites: sites, events: sink.Events()}
		}(i, cond)
	}
	wg.Wait()

	for i, cond := range conds {
		if !reflect.DeepEqual(results[i].sites, want) {
			t.Fatalf("cond %s: results differ from serial", cond)
		}
		if !reflect.DeepEqual(results[i].events, wantEvents(cond)) {
			t.Fatalf("cond %s: event log differs from serial", cond)
		}
	}
	// Shared-cache accounting: misses = distinct keys (computed once
	// across ALL cohorts), hits = total lookups - misses.
	lookups := 0
	for _, p := range pages {
		lookups += len(p.Extractions)
	}
	lookups *= len(conds)
	if int64(cache.Len()) != cache.Misses() {
		t.Fatalf("cache len %d != misses %d", cache.Len(), cache.Misses())
	}
	if cache.Hits()+cache.Misses() != int64(lookups) {
		t.Fatalf("hits+misses = %d, want %d lookups", cache.Hits()+cache.Misses(), lookups)
	}
	snap := reg.Snapshot()
	if snap.Counters["analysis.cache.hits"] != cache.Hits() || snap.Counters["analysis.cache.misses"] != cache.Misses() {
		t.Fatal("registry counters out of sync with cache")
	}
}

// TestCacheStressRace pounds the cache itself: many goroutines, a
// small hot key set, interleaved with cold keys.
func TestCacheStressRace(t *testing.T) {
	cache := NewCache(nil)
	keys := make([]detect.MemoKey, 32)
	for i := range keys {
		keys[i] = detect.MemoKey{Hash: dataURL(20+i, 20), Anim: i%2 == 0}
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 400; i++ {
				k := keys[(g*7+i)%len(keys)]
				v := cache.GetOrCompute(k, func() detect.Verdict {
					return detect.Verdict{W: len(k.Hash), Fingerprintable: !k.Anim}
				})
				if v.W != len(k.Hash) || v.Fingerprintable == k.Anim {
					t.Errorf("wrong verdict for key %v: %+v", k, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if cache.Misses() != int64(len(keys)) {
		t.Fatalf("misses = %d, want %d", cache.Misses(), len(keys))
	}
	if cache.Hits() != int64(16*400-len(keys)) {
		t.Fatalf("hits = %d, want %d", cache.Hits(), 16*400-len(keys))
	}
}
