// Package analysis is the parallel half of the post-crawl pipeline: a
// sharded executor that fans detect.AnalyzePageEvents out over a
// bounded worker pool while keeping every externally visible artifact
// — the evidence event log, the metrics counters, and therefore the
// serialized run bundle — byte-identical to the serial pipeline.
//
// The determinism recipe has two halves:
//
//  1. Event ordering. Pages are cut into contiguous shards. Each
//     worker records its shard's classification events into a private,
//     unsynchronized event.Buffer (no Seq stamping), and after the
//     pool drains, the shards are replayed into the shared sink in
//     shard index order — i.e. original page order. Sequence numbers
//     are stamped at replay time, so the merged log is byte-equal to
//     one recorded serially, for any worker width.
//
//  2. Counter accounting. The memo cache counts a miss only on the
//     lookup that wins the map insert for a key and a hit on every
//     other lookup, so hits/misses depend only on the multiset of
//     keys, not on scheduling (see Cache).
//
// What is parallelized is only the pure per-page classification work;
// everything order-sensitive happens on the calling goroutine.
package analysis

import (
	"fmt"
	"sync"

	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/obs/tracez"
)

// shardsPerWorker oversizes the shard count relative to the pool so a
// shard with unusually heavy pages doesn't leave the other workers
// idle at the tail of a run.
const shardsPerWorker = 4

// RunStats describes one AnalyzeAll invocation — the per-condition
// breakdown TelemetryReport renders.
type RunStats struct {
	// Crawl is the condition label ("control", "abp", ...).
	Crawl string
	// Pages, Canvases: input size and classified extraction count.
	Pages    int
	Canvases int
	// Shards and Workers describe the fan-out used.
	Shards  int
	Workers int
}

// Executor fans page classification over a bounded worker pool. One
// executor is shared by every analysis a study runs, so the memo
// cache carries verdicts across conditions. The zero worker count
// selects 8, matching the crawler's default pool width.
type Executor struct {
	workers int
	cache   *Cache
	tel     *obs.Telemetry
	visits  *tracez.Reservoir

	mu   sync.Mutex
	runs []RunStats
}

// NewExecutor returns an executor with the given pool width. cache
// may be nil (memoization disabled); tel may be nil (no spans or
// metrics).
func NewExecutor(workers int, cache *Cache, tel *obs.Telemetry) *Executor {
	if workers <= 0 {
		workers = 8
	}
	// Note: the pool width is deliberately NOT exported as a metrics
	// gauge (and not recorded in bundle manifests) — bundles must be
	// byte-identical across widths, so nothing width-dependent may
	// reach a serialized artifact.
	return &Executor{workers: workers, cache: cache, tel: tel}
}

// Workers returns the pool width.
func (ex *Executor) Workers() int { return ex.workers }

// Cache returns the executor's memo cache (nil if disabled).
func (ex *Executor) Cache() *Cache { return ex.cache }

// SetVisits points the executor at the study's exemplar reservoir:
// each AnalyzeAll then offers one per-shard batch span (kind "batch",
// condition "analyze.<crawl>"). Batch exemplars describe the actual
// shard fan-out — a function of the worker count — so the reservoir
// excludes them from its deterministic selection key. Replay never
// records batches, mirroring its no-telemetry contract.
func (ex *Executor) SetVisits(r *tracez.Reservoir) { ex.visits = r }

// Runs returns the per-invocation stats in call order.
func (ex *Executor) Runs() []RunStats {
	ex.mu.Lock()
	defer ex.mu.Unlock()
	out := make([]RunStats, len(ex.runs))
	copy(out, ex.runs)
	return out
}

// AnalyzeAll classifies every page of a crawl on the worker pool and
// returns results in page order. Evidence events are buffered per
// shard and merged into sink in page order afterwards, so the sink's
// contents are identical to a serial detect.AnalyzeAllEvents call.
// sink may be nil to disable provenance.
func (ex *Executor) AnalyzeAll(pages []*crawler.PageResult, sink event.Recorder, crawl string) []detect.SiteCanvases {
	return ex.run(pages, sink, crawl, false)
}

// Replay re-derives one crawl's analysis results without touching any
// externally visible telemetry: no evidence events, no analysis.*
// counters, no memo-cache hit/miss movement. It exists for checkpoint
// resume — the replayed analysis was already counted before the
// checkpoint was written, so the restored registry and event sink
// must be left exactly as loaded. The memo cache IS warmed (via
// Cache.Warm), because later, non-replayed analyses count their hits
// against whatever the cache contains, and an uninterrupted run would
// have it populated.
func (ex *Executor) Replay(pages []*crawler.PageResult, crawl string) []detect.SiteCanvases {
	return ex.run(pages, nil, crawl, true)
}

func (ex *Executor) run(pages []*crawler.PageResult, sink event.Recorder, crawl string, silent bool) []detect.SiteCanvases {
	n := len(pages)
	out := make([]detect.SiteCanvases, n)
	workers := ex.workers
	if workers > n {
		workers = n
	}
	if workers < 1 {
		workers = 1
	}
	shardSize := (n + workers*shardsPerWorker - 1) / (workers * shardsPerWorker)
	if shardSize < 1 {
		shardSize = 1
	}
	numShards := 0
	if n > 0 {
		numShards = (n + shardSize - 1) / shardSize
	}

	var sp *obs.Span
	if ex.tel != nil {
		label := crawl
		if label == "" {
			label = "unlabeled"
		}
		sp = ex.tel.Tracer.Start("analyze."+label,
			"pages", fmt.Sprint(n), "workers", fmt.Sprint(workers), "shards", fmt.Sprint(numShards))
	}

	bufs := make([]event.Buffer, numShards)
	// batches collects one span tree per shard when exemplar capture is
	// on; workers fill their own slots, and the offers happen after the
	// pool drains, in shard order — the executor's commit point.
	var batches []*tracez.VisitTrace
	if ex.visits != nil && !silent {
		batches = make([]*tracez.VisitTrace, numShards)
	}
	condLabel := crawl
	if condLabel == "" {
		condLabel = "unlabeled"
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for si := range jobs {
				var rec event.Recorder
				if sink != nil {
					rec = &bufs[si]
				}
				lo := si * shardSize
				hi := lo + shardSize
				if hi > n {
					hi = n
				}
				var bb *tracez.Builder
				if batches != nil {
					bb = tracez.NewBatch("analyze."+condLabel, fmt.Sprintf("shard-%04d", si), si)
					bb.Root().SetLabel("pages", fmt.Sprint(hi-lo))
					bb.Root().SetLabel("range", fmt.Sprintf("%d-%d", lo, hi))
				}
				shardCanvases := 0
				for i := lo; i < hi; i++ {
					out[i] = detect.AnalyzePageMemo(pages[i], rec, crawl, ex.memo(silent))
					shardCanvases += len(out[i].All)
				}
				if bb != nil {
					// Classified canvases are the shard's deterministic
					// cost measure (pages alone would make every shard
					// equal-cost).
					bb.Root().Cost = int64(shardCanvases)
					batches[si] = bb.Finish("ok")
				}
			}
		}()
	}
	for si := 0; si < numShards; si++ {
		jobs <- si
	}
	close(jobs)
	wg.Wait()

	// Deterministic merge: replay shard buffers in page order on the
	// calling goroutine. Seq is stamped here, inside the sink.
	if sink != nil {
		for si := range bufs {
			bufs[si].Drain(sink)
		}
	}
	for _, bt := range batches {
		if bt != nil {
			ex.visits.Offer(bt)
		}
	}

	canvases := 0
	for i := range out {
		canvases += len(out[i].All)
	}
	if ex.tel != nil && !silent {
		ex.tel.Metrics.Counter("analysis.pages").Add(int64(n))
		ex.tel.Metrics.Counter("analysis.canvases").Add(int64(canvases))
	}
	if sp != nil {
		sp.End()
	}
	if ex.tel != nil && !silent {
		ex.tel.Status.RecordAnalysis(crawl, n, canvases, numShards, workers)
	}

	ex.mu.Lock()
	ex.runs = append(ex.runs, RunStats{
		Crawl: crawl, Pages: n, Canvases: canvases, Shards: numShards, Workers: workers,
	})
	ex.mu.Unlock()
	return out
}

// memo adapts the possibly-nil *Cache to the detect.Memo interface
// without handing detect a typed-nil interface value. Silent callers
// get the counter-free warming adapter.
func (ex *Executor) memo(silent bool) detect.Memo {
	if ex.cache == nil {
		return nil
	}
	if silent {
		return warmMemo{ex.cache}
	}
	return ex.cache
}

// warmMemo is the replay adapter: lookups populate and reuse the cache
// but never move its hit/miss counters.
type warmMemo struct{ c *Cache }

func (w warmMemo) GetOrCompute(key detect.MemoKey, compute func() detect.Verdict) detect.Verdict {
	return w.c.Warm(key, compute)
}
