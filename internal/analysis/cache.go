package analysis

import (
	"sync"

	"canvassing/internal/detect"
	"canvassing/internal/obs"
	"canvassing/internal/stats"
)

// cacheShards bounds lock contention: keys are spread over independent
// mutexes by hash, so a wide executor rarely queues on one lock.
const cacheShards = 64

// Cache is a content-addressed, singleflight classification memo: one
// detect.Verdict per (canvas hash, animation flag). The first lookup
// of a key computes under its own entry (concurrent lookups of the
// same key block on the entry's ready channel instead of recomputing),
// so across the control/ABP/UBO/M1 re-analyses every distinct canvas
// payload is classified exactly once.
//
// The hit/miss counters are deterministic by construction regardless
// of goroutine scheduling: exactly one lookup per distinct key — the
// one that wins the map insert — counts as a miss, and every other
// lookup (whether it waited for the compute or found it finished)
// counts as a hit. Total misses therefore equal the number of
// distinct keys and total hits equal lookups minus distinct keys, for
// any worker width including 1.
type Cache struct {
	hits   *obs.Counter
	misses *obs.Counter
	shards [cacheShards]cacheShard
}

type cacheShard struct {
	mu sync.Mutex
	m  map[detect.MemoKey]*cacheEntry
}

type cacheEntry struct {
	ready chan struct{}
	v     detect.Verdict
}

// NewCache returns an empty cache. When reg is non-nil the counters
// are registered as "analysis.cache.hits"/"analysis.cache.misses";
// otherwise they stay private to the cache.
func NewCache(reg *obs.Registry) *Cache {
	c := &Cache{hits: &obs.Counter{}, misses: &obs.Counter{}}
	if reg != nil {
		c.hits = reg.Counter("analysis.cache.hits")
		c.misses = reg.Counter("analysis.cache.misses")
	}
	for i := range c.shards {
		c.shards[i].m = map[detect.MemoKey]*cacheEntry{}
	}
	return c
}

// GetOrCompute implements detect.Memo with singleflight semantics.
func (c *Cache) GetOrCompute(key detect.MemoKey, compute func() detect.Verdict) detect.Verdict {
	return c.lookup(key, compute, true)
}

// Warm is GetOrCompute without counter movement: it populates and
// reuses the cache but records neither hits nor misses. Checkpoint
// resume replays pre-checkpoint analyses through it — their lookups
// were already counted in the restored registry, and warming must not
// count them twice.
func (c *Cache) Warm(key detect.MemoKey, compute func() detect.Verdict) detect.Verdict {
	return c.lookup(key, compute, false)
}

// Seed inserts a precomputed verdict without moving the counters or
// running any compute — the verdict-service path, which rebuilds the
// memo from a bundle's detect.classify events instead of from
// payloads. Seeding a key that is already present is a no-op (the
// first verdict wins, matching GetOrCompute's singleflight answer).
func (c *Cache) Seed(key detect.MemoKey, v detect.Verdict) {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if _, ok := sh.m[key]; ok {
		return
	}
	e := &cacheEntry{ready: make(chan struct{}), v: v}
	close(e.ready)
	sh.m[key] = e
}

func (c *Cache) lookup(key detect.MemoKey, compute func() detect.Verdict, count bool) detect.Verdict {
	sh := &c.shards[shardOf(key)]
	sh.mu.Lock()
	e, ok := sh.m[key]
	if !ok {
		e = &cacheEntry{ready: make(chan struct{})}
		sh.m[key] = e
		sh.mu.Unlock()
		if count {
			c.misses.Inc()
		}
		e.v = compute()
		close(e.ready)
		return e.v
	}
	sh.mu.Unlock()
	if count {
		c.hits.Inc()
	}
	<-e.ready
	return e.v
}

// Hits returns the number of lookups served from the cache.
func (c *Cache) Hits() int64 { return c.hits.Value() }

// Misses returns the number of lookups that computed (= distinct keys).
func (c *Cache) Misses() int64 { return c.misses.Value() }

// Len returns the number of cached verdicts.
func (c *Cache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		n += len(sh.m)
		sh.mu.Unlock()
	}
	return n
}

// shardOf spreads keys over the shard mutexes.
func shardOf(key detect.MemoKey) uint64 {
	h := stats.HashString(key.Hash)
	if key.Anim {
		h = ^h
	}
	return h % cacheShards
}
