// Package machine models the hardware/software rendering stack a crawl
// runs on: GPU, operating system, display gamma, anti-aliasing behavior
// and subpixel text positioning.
//
// This is the substitution for real rendering diversity (§3.1 of the
// paper): canvas fingerprints exist because the same Canvas API calls
// produce subtly different pixels on different machines. A Profile
// deterministically perturbs the rasterizer's anti-aliasing coverage and
// the text layer's subpixel placement, so that:
//
//   - the same draw-command stream on the same Profile always yields
//     byte-identical pixels (fingerprints are stable), and
//   - the same stream on a different Profile yields different pixels
//     (fingerprints are discriminating), while
//   - cross-site grouping is invariant: if two sites produce identical
//     canvases on one machine, they do on every machine, which is exactly
//     the validation the paper ran with an Intel desktop and an M1 laptop.
package machine

import (
	"fmt"
	"math"
	"sync"

	"canvassing/internal/stats"
)

// Profile describes one rendering stack.
type Profile struct {
	// Name is a human-readable identifier, e.g. "intel-ubuntu".
	Name string
	// GPU and OS are the strings a navigator/WebGL probe would reveal.
	GPU string
	OS  string
	// Gamma bends anti-aliasing coverage (display gamma + driver LUTs).
	// 1.0 is linear; real stacks are roughly 0.8–1.3.
	Gamma float64
	// AAStrength scales how much partial coverage survives rounding;
	// models differing MSAA/greyscale-AA implementations.
	AAStrength float64
	// SubpixelJitter is the maximum magnitude, in pixels, of
	// deterministic per-glyph placement offsets (font hinting engines
	// shift glyph outlines by sub-pixel amounts that differ per stack).
	SubpixelJitter float64
	// Seed decorrelates the deterministic jitter across profiles.
	Seed uint64

	lutOnce sync.Once
	lut     *[256]uint8
}

// Intel returns the profile of the paper's primary crawl machine
// (Intel running Ubuntu 22.04).
func Intel() *Profile {
	return &Profile{
		Name:           "intel-ubuntu",
		GPU:            "Mesa Intel(R) UHD Graphics 630",
		OS:             "Linux x86_64",
		Gamma:          1.0,
		AAStrength:     1.0,
		SubpixelJitter: 0.08,
		Seed:           0x1A7E1,
	}
}

// AppleM1 returns the profile of the validation crawl machine
// (Apple-silicon laptop).
func AppleM1() *Profile {
	return &Profile{
		Name:           "apple-m1",
		GPU:            "Apple M1",
		OS:             "macOS arm64",
		Gamma:          1.12,
		AAStrength:     0.94,
		SubpixelJitter: 0.11,
		Seed:           0xA99E1,
	}
}

// Profiles returns the built-in profile set.
func Profiles() []*Profile { return []*Profile{Intel(), AppleM1()} }

// Synthetic derives an arbitrary additional profile from a label, for
// experiments that want a population of machines.
func Synthetic(label string) *Profile {
	h := stats.HashString("machine:" + label)
	return &Profile{
		Name:           label,
		GPU:            fmt.Sprintf("SyntheticGPU-%04x", h&0xFFFF),
		OS:             fmt.Sprintf("SynthOS %d.%d", (h>>16)&7+1, (h>>20)&9),
		Gamma:          0.85 + float64((h>>24)&0xFF)/512.0, // 0.85..1.35
		AAStrength:     0.85 + float64((h>>32)&0xFF)/850.0, // 0.85..1.15
		SubpixelJitter: 0.04 + float64((h>>40)&0x3F)/640.0, // 0.04..0.14
		Seed:           h,
	}
}

// CoverageLUT returns the 256-entry anti-aliasing coverage remap for this
// profile. The LUT is monotone with fixed endpoints (0→0, 255→255), so
// fully-covered and fully-empty pixels are identical across machines and
// only anti-aliased edge pixels differ — matching how real rasterizers
// disagree at glyph and shape edges but not in solid interiors.
// The table is computed once per profile; it sits on the rasterizer's
// hot path.
func (p *Profile) CoverageLUT() *[256]uint8 {
	p.lutOnce.Do(func() { p.lut = p.computeCoverageLUT() })
	return p.lut
}

func (p *Profile) computeCoverageLUT() *[256]uint8 {
	var lut [256]uint8
	inv := 1 / p.Gamma
	for i := 1; i < 255; i++ {
		v := math.Pow(float64(i)/255, inv) * 255 * p.AAStrength
		// Tiny per-profile dither in the low bits, stable per index.
		d := float64(stats.HashString(fmt.Sprintf("%d:%d", p.Seed, i))%3) - 1
		v += d
		if v < 1 {
			v = 1 // monotone floor: nonzero coverage stays nonzero
		}
		if v > 255 {
			v = 255
		}
		lut[i] = uint8(v)
	}
	lut[0] = 0
	lut[255] = 255
	// Enforce monotonicity after dithering.
	for i := 1; i < 256; i++ {
		if lut[i] < lut[i-1] {
			lut[i] = lut[i-1]
		}
	}
	return &lut
}

// GlyphOffset returns the deterministic subpixel offset this machine
// applies when placing glyph r at horizontal pen position penX. Real
// hinting engines decide placement from the glyph and its position; the
// hash makes that decision stable per (machine, glyph, position).
func (p *Profile) GlyphOffset(r rune, penX float64) (dx, dy float64) {
	q := int64(penX * 4) // quantize position to quarter pixels
	h := stats.HashString(fmt.Sprintf("%d:%d:%d", p.Seed, r, q))
	dx = (float64(h&0xFF)/255 - 0.5) * 2 * p.SubpixelJitter
	dy = (float64((h>>8)&0xFF)/255 - 0.5) * 2 * p.SubpixelJitter
	return dx, dy
}

// UserAgent returns the User-Agent string the crawler presents when
// running on this profile.
func (p *Profile) UserAgent() string {
	return fmt.Sprintf("Mozilla/5.0 (%s) CanvassingCrawler/1.0 GPU/%s", p.OS, p.GPU)
}
