package machine

import (
	"testing"
	"testing/quick"
)

func TestBuiltinProfilesDiffer(t *testing.T) {
	a, b := Intel(), AppleM1()
	if a.Name == b.Name || a.Seed == b.Seed {
		t.Fatal("built-in profiles must be distinct")
	}
	la, lb := a.CoverageLUT(), b.CoverageLUT()
	diff := 0
	for i := range la {
		if la[i] != lb[i] {
			diff++
		}
	}
	if diff < 32 {
		t.Fatalf("profiles should produce substantially different LUTs, got %d diffs", diff)
	}
}

func TestCoverageLUTEndpoints(t *testing.T) {
	for _, p := range Profiles() {
		lut := p.CoverageLUT()
		if lut[0] != 0 {
			t.Fatalf("%s: LUT[0] = %d, want 0", p.Name, lut[0])
		}
		if lut[255] != 255 {
			t.Fatalf("%s: LUT[255] = %d, want 255", p.Name, lut[255])
		}
	}
}

func TestCoverageLUTMonotone(t *testing.T) {
	for _, p := range append(Profiles(), Synthetic("x1"), Synthetic("x2")) {
		lut := p.CoverageLUT()
		for i := 1; i < 256; i++ {
			if lut[i] < lut[i-1] {
				t.Fatalf("%s: LUT not monotone at %d", p.Name, i)
			}
		}
	}
}

func TestCoverageLUTNonzeroPreserved(t *testing.T) {
	for _, p := range Profiles() {
		lut := p.CoverageLUT()
		for i := 1; i < 256; i++ {
			if lut[i] == 0 {
				t.Fatalf("%s: nonzero coverage %d mapped to zero", p.Name, i)
			}
		}
	}
}

func TestCoverageLUTDeterministic(t *testing.T) {
	p := Intel()
	a, b := p.CoverageLUT(), p.CoverageLUT()
	if *a != *b {
		t.Fatal("LUT must be deterministic")
	}
}

func TestGlyphOffsetDeterministic(t *testing.T) {
	p := Intel()
	dx1, dy1 := p.GlyphOffset('a', 10.25)
	dx2, dy2 := p.GlyphOffset('a', 10.25)
	if dx1 != dx2 || dy1 != dy2 {
		t.Fatal("glyph offset must be deterministic")
	}
	dx3, _ := p.GlyphOffset('b', 10.25)
	dx4, _ := p.GlyphOffset('a', 50.0)
	if dx1 == dx3 && dx1 == dx4 {
		t.Fatal("offset should depend on rune and position")
	}
}

func TestGlyphOffsetBounded(t *testing.T) {
	f := func(r rune, x float64) bool {
		if x != x || x > 1e12 || x < -1e12 { // NaN / huge
			return true
		}
		p := AppleM1()
		dx, dy := p.GlyphOffset(r, x)
		lim := p.SubpixelJitter + 1e-12
		return dx >= -lim && dx <= lim && dy >= -lim && dy <= lim
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGlyphOffsetDiffersAcrossMachines(t *testing.T) {
	i, m := Intel(), AppleM1()
	same := 0
	for _, r := range "Canvassing" {
		dxi, dyi := i.GlyphOffset(r, 12)
		dxm, dym := m.GlyphOffset(r, 12)
		if dxi == dxm && dyi == dym {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("machines should disagree on glyph placement, %d/10 same", same)
	}
}

func TestSyntheticStable(t *testing.T) {
	a := Synthetic("lab-42")
	b := Synthetic("lab-42")
	if *a != *b {
		t.Fatal("synthetic profile must be a pure function of its label")
	}
	c := Synthetic("lab-43")
	if a.Seed == c.Seed {
		t.Fatal("labels must decorrelate")
	}
	if a.Gamma < 0.8 || a.Gamma > 1.4 || a.AAStrength < 0.8 || a.AAStrength > 1.2 {
		t.Fatalf("synthetic parameters out of range: %+v", a)
	}
}

func TestUserAgentMentionsStack(t *testing.T) {
	ua := Intel().UserAgent()
	if ua == "" || ua == AppleM1().UserAgent() {
		t.Fatal("user agents should identify the stack")
	}
}
