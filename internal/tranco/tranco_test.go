package tranco

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"canvassing/internal/stats"
)

func sample(t *testing.T) *List {
	t.Helper()
	l, err := New([]Entry{
		{3, "c.com"}, {1, "a.com"}, {2, "b.com"}, {10, "j.com"},
	})
	if err != nil {
		t.Fatal(err)
	}
	return l
}

func TestNewSortsAndIndexes(t *testing.T) {
	l := sample(t)
	if l.Len() != 4 {
		t.Fatal("len")
	}
	if l.Entries()[0].Domain != "a.com" || l.Entries()[3].Rank != 10 {
		t.Fatalf("order: %+v", l.Entries())
	}
	if d, ok := l.Domain(2); !ok || d != "b.com" {
		t.Fatal("lookup")
	}
	if _, ok := l.Domain(99); ok {
		t.Fatal("missing rank")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New([]Entry{{0, "x.com"}}); err == nil {
		t.Fatal("zero rank")
	}
	if _, err := New([]Entry{{1, ""}}); err == nil {
		t.Fatal("empty domain")
	}
	if _, err := New([]Entry{{1, "a.com"}, {1, "b.com"}}); err == nil {
		t.Fatal("duplicate rank")
	}
}

func TestTop(t *testing.T) {
	l := sample(t)
	top := l.Top(2)
	if len(top) != 2 || top[1].Domain != "b.com" {
		t.Fatalf("top: %+v", top)
	}
	if len(l.Top(100)) != 4 {
		t.Fatal("oversized top")
	}
}

func TestSampleRange(t *testing.T) {
	var entries []Entry
	for i := 1; i <= 1000; i++ {
		entries = append(entries, Entry{i, "site.example"})
	}
	l, _ := New(entries)
	rng := stats.NewRNG(1)
	got := l.SampleRange(rng, 100, 500, 50)
	if len(got) != 50 {
		t.Fatalf("sample size: %d", len(got))
	}
	seen := map[int]bool{}
	for i, e := range got {
		if e.Rank <= 100 || e.Rank > 500 {
			t.Fatalf("rank %d out of range", e.Rank)
		}
		if seen[e.Rank] {
			t.Fatal("duplicate in sample")
		}
		seen[e.Rank] = true
		if i > 0 && got[i-1].Rank > e.Rank {
			t.Fatal("sample not sorted")
		}
	}
}

func TestCSVRoundtrip(t *testing.T) {
	l := sample(t)
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "1,a.com\n2,b.com\n") {
		t.Fatalf("csv: %q", buf.String())
	}
	back, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != l.Len() {
		t.Fatal("roundtrip length")
	}
	for i, e := range back.Entries() {
		if e != l.Entries()[i] {
			t.Fatalf("entry %d: %+v vs %+v", i, e, l.Entries()[i])
		}
	}
}

func TestReadCSVTolerance(t *testing.T) {
	in := "# Tranco list\n\n1,a.com\n  2 , b.com \n"
	l, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("len: %d", l.Len())
	}
	if d, _ := l.Domain(2); d != "b.com" {
		t.Fatalf("trimmed domain: %q", d)
	}
}

func TestReadCSVErrors(t *testing.T) {
	for _, bad := range []string{"nocomma\n", "x,a.com\n", "1,a.com\n1,b.com\n"} {
		if _, err := ReadCSV(strings.NewReader(bad)); err == nil {
			t.Fatalf("%q should fail", bad)
		}
	}
}

// Property: CSV roundtrip preserves any valid list.
func TestCSVRoundtripProperty(t *testing.T) {
	f := func(ranks []uint16) bool {
		seen := map[int]bool{}
		var entries []Entry
		for _, r := range ranks {
			rank := int(r) + 1
			if seen[rank] {
				continue
			}
			seen[rank] = true
			entries = append(entries, Entry{rank, "d.example"})
		}
		l, err := New(entries)
		if err != nil {
			return false
		}
		var buf bytes.Buffer
		if err := l.WriteCSV(&buf); err != nil {
			return false
		}
		back, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return back.Len() == l.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
