// Package tranco reads and writes Tranco-format ranking lists — the CSV
// "rank,domain" format of the research-oriented top-sites ranking the
// paper samples from (§3). The synthetic web exports its ranking in this
// format so external tooling (and curious humans) can treat the generated
// world exactly like a real crawl target list.
package tranco

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"canvassing/internal/stats"
)

// Entry is one ranked domain.
type Entry struct {
	Rank   int
	Domain string
}

// List is a Tranco-style ranking, ordered by rank ascending.
type List struct {
	entries []Entry
	byRank  map[int]string
}

// New builds a list from entries; they are sorted and validated.
func New(entries []Entry) (*List, error) {
	l := &List{byRank: map[int]string{}}
	for _, e := range entries {
		if e.Rank <= 0 {
			return nil, fmt.Errorf("tranco: invalid rank %d", e.Rank)
		}
		if e.Domain == "" {
			return nil, fmt.Errorf("tranco: empty domain at rank %d", e.Rank)
		}
		if prev, dup := l.byRank[e.Rank]; dup {
			return nil, fmt.Errorf("tranco: duplicate rank %d (%s, %s)", e.Rank, prev, e.Domain)
		}
		l.byRank[e.Rank] = e.Domain
		l.entries = append(l.entries, e)
	}
	sort.Slice(l.entries, func(i, j int) bool { return l.entries[i].Rank < l.entries[j].Rank })
	return l, nil
}

// Len returns the number of entries.
func (l *List) Len() int { return len(l.entries) }

// Entries returns the ranking in ascending rank order (do not mutate).
func (l *List) Entries() []Entry { return l.entries }

// Domain returns the domain at a rank, if present.
func (l *List) Domain(rank int) (string, bool) {
	d, ok := l.byRank[rank]
	return d, ok
}

// Top returns the first n entries (fewer if the list is shorter).
func (l *List) Top(n int) []Entry {
	if n > len(l.entries) {
		n = len(l.entries)
	}
	return l.entries[:n]
}

// SampleRange draws n distinct entries with rank in (after, upTo],
// pseudo-randomly with rng — the paper's tail-cohort sampling (ranks
// 20k+1..1M).
func (l *List) SampleRange(rng *stats.RNG, after, upTo, n int) []Entry {
	var pool []Entry
	for _, e := range l.entries {
		if e.Rank > after && e.Rank <= upTo {
			pool = append(pool, e)
		}
	}
	picked := stats.Sample(rng, pool, n)
	sort.Slice(picked, func(i, j int) bool { return picked[i].Rank < picked[j].Rank })
	return picked
}

// WriteCSV emits the canonical "rank,domain" lines.
func (l *List) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, e := range l.entries {
		if _, err := fmt.Fprintf(bw, "%d,%s\n", e.Rank, e.Domain); err != nil {
			return fmt.Errorf("tranco: %w", err)
		}
	}
	return bw.Flush()
}

// ReadCSV parses "rank,domain" lines; blank lines and "#" comments are
// skipped.
func ReadCSV(r io.Reader) (*List, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), 16*1024*1024)
	var entries []Entry
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rankStr, domain, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("tranco: line %d: missing comma", lineNo)
		}
		rank, err := strconv.Atoi(strings.TrimSpace(rankStr))
		if err != nil {
			return nil, fmt.Errorf("tranco: line %d: bad rank %q", lineNo, rankStr)
		}
		entries = append(entries, Entry{Rank: rank, Domain: strings.TrimSpace(domain)})
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("tranco: %w", err)
	}
	return New(entries)
}
