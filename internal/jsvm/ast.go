package jsvm

// Node is any AST node. Statements and expressions are separate interface
// families so the evaluator can't confuse them.
type Node interface{ node() }

// Stmt is a statement node.
type Stmt interface {
	Node
	stmt()
}

// Expr is an expression node.
type Expr interface {
	Node
	expr()
}

// Program is a parsed script.
type Program struct {
	Body []Stmt
}

// --- statements ---

// VarDecl declares one or more variables ("var"/"let"/"const").
type VarDecl struct {
	Names  []string
	Inits  []Expr // nil entries mean undefined
	IsFunc bool   // true when produced from a function declaration
}

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct{ X Expr }

// IfStmt is if/else.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// ForStmt is the classic three-clause for loop.
type ForStmt struct {
	Init Stmt // may be nil (VarDecl or ExprStmt)
	Cond Expr // may be nil (treated as true)
	Post Expr // may be nil
	Body Stmt
}

// WhileStmt is while (and do/while when Do is set).
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Do   bool
}

// ReturnStmt returns from the enclosing function.
type ReturnStmt struct{ X Expr } // X may be nil

// BreakStmt breaks the innermost loop.
type BreakStmt struct{}

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{}

// ThrowStmt raises a runtime error carrying the value's string form.
type ThrowStmt struct{ X Expr }

// BlockStmt is a braced statement list with its own lexical scope.
type BlockStmt struct{ Body []Stmt }

// TryStmt is try/catch/finally. HasCatch/HasFinally distinguish empty
// clauses from absent ones.
type TryStmt struct {
	Body       []Stmt
	CatchParam string // "" when the catch clause binds no parameter
	Catch      []Stmt
	HasCatch   bool
	Finally    []Stmt
	HasFinally bool
}

func (*VarDecl) node()      {}
func (*ExprStmt) node()     {}
func (*IfStmt) node()       {}
func (*ForStmt) node()      {}
func (*WhileStmt) node()    {}
func (*ReturnStmt) node()   {}
func (*BreakStmt) node()    {}
func (*ContinueStmt) node() {}
func (*ThrowStmt) node()    {}
func (*BlockStmt) node()    {}
func (*TryStmt) node()      {}

func (*VarDecl) stmt()      {}
func (*ExprStmt) stmt()     {}
func (*IfStmt) stmt()       {}
func (*ForStmt) stmt()      {}
func (*WhileStmt) stmt()    {}
func (*ReturnStmt) stmt()   {}
func (*BreakStmt) stmt()    {}
func (*ContinueStmt) stmt() {}
func (*ThrowStmt) stmt()    {}
func (*BlockStmt) stmt()    {}
func (*TryStmt) stmt()      {}

// --- expressions ---

// NumberLit is a numeric literal.
type NumberLit struct{ Value float64 }

// StringLit is a string literal.
type StringLit struct{ Value string }

// BoolLit is true/false.
type BoolLit struct{ Value bool }

// NullLit is null.
type NullLit struct{}

// UndefinedLit is undefined.
type UndefinedLit struct{}

// Ident references a variable.
type Ident struct{ Name string }

// ArrayLit is [a, b, c].
type ArrayLit struct{ Elems []Expr }

// ObjectLit is {k: v, ...}.
type ObjectLit struct {
	Keys   []string
	Values []Expr
}

// FuncLit is a function expression or the desugared form of a function
// declaration and arrow function.
type FuncLit struct {
	Name   string // optional
	Params []string
	Body   []Stmt
}

// Unary is prefix !x, -x, +x, typeof x, ++x, --x.
type Unary struct {
	Op string
	X  Expr
}

// Postfix is x++ / x--.
type Postfix struct {
	Op string
	X  Expr
}

// Binary is any infix arithmetic/comparison/logical operator.
type Binary struct {
	Op   string
	L, R Expr
}

// Assign is x = v and compound assignments; Target must be an Ident,
// Member or Index expression.
type Assign struct {
	Op     string // "=", "+=", ...
	Target Expr
	Value  Expr
}

// Cond is the ternary operator.
type Cond struct {
	Test, Then, Else Expr
}

// Member is x.name.
type Member struct {
	X    Expr
	Name string
}

// Index is x[i].
type Index struct {
	X, I Expr
}

// Call is f(args) or obj.m(args).
type Call struct {
	Fn   Expr
	Args []Expr
}

// New is new F(args).
type NewExpr struct {
	Fn   Expr
	Args []Expr
}

func (*NumberLit) node()    {}
func (*StringLit) node()    {}
func (*BoolLit) node()      {}
func (*NullLit) node()      {}
func (*UndefinedLit) node() {}
func (*Ident) node()        {}
func (*ArrayLit) node()     {}
func (*ObjectLit) node()    {}
func (*FuncLit) node()      {}
func (*Unary) node()        {}
func (*Postfix) node()      {}
func (*Binary) node()       {}
func (*Assign) node()       {}
func (*Cond) node()         {}
func (*Member) node()       {}
func (*Index) node()        {}
func (*Call) node()         {}
func (*NewExpr) node()      {}

func (*NumberLit) expr()    {}
func (*StringLit) expr()    {}
func (*BoolLit) expr()      {}
func (*NullLit) expr()      {}
func (*UndefinedLit) expr() {}
func (*Ident) expr()        {}
func (*ArrayLit) expr()     {}
func (*ObjectLit) expr()    {}
func (*FuncLit) expr()      {}
func (*Unary) expr()        {}
func (*Postfix) expr()      {}
func (*Binary) expr()       {}
func (*Assign) expr()       {}
func (*Cond) expr()         {}
func (*Member) expr()       {}
func (*Index) expr()        {}
func (*Call) expr()         {}
func (*NewExpr) expr()      {}
