// Package jsvm implements a small JavaScript-like language: lexer, parser
// and tree-walking interpreter with host-object bindings.
//
// Fingerprinting scripts in this repository are real source text executed
// by this VM against DOM/canvas host objects, exactly so that the crawler
// can intercept Canvas API calls *with script attribution* and so that
// evasion techniques (bundling a vendor script into first-party
// JavaScript) are literal source-level operations, as they are on the Web.
//
// The dialect covers the subset production fingerprinting scripts use:
// var/let/const, functions and closures, if/else, for, while, arrays,
// object literals, property access, new, arithmetic/logical operators,
// string methods, Math, and JSON.stringify. It is deliberately not a full
// ECMAScript implementation.
package jsvm

import (
	"fmt"
	"strings"
)

// tokenKind classifies lexical tokens.
type tokenKind uint8

const (
	tEOF tokenKind = iota
	tIdent
	tNumber
	tString
	tPunct
	tKeyword
)

var keywords = map[string]bool{
	"var": true, "let": true, "const": true, "function": true,
	"return": true, "if": true, "else": true, "for": true, "while": true,
	"break": true, "continue": true, "new": true, "typeof": true,
	"true": true, "false": true, "null": true, "undefined": true,
	"throw": true, "in": true, "of": true, "do": true,
	"try": true, "catch": true, "finally": true,
}

// token is one lexical token with its source position (for errors).
type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

func (t token) String() string {
	if t.kind == tEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

// SyntaxError describes a lexing or parsing failure.
type SyntaxError struct {
	Line, Col int
	Msg       string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("jsvm: syntax error at %d:%d: %s", e.Line, e.Col, e.Msg)
}

// multi-char punctuators, longest first so maximal munch works.
var punctuators = []string{
	"===", "!==", "<<=", ">>=",
	"==", "!=", "<=", ">=", "&&", "||", "++", "--",
	"+=", "-=", "*=", "/=", "%=", "=>", "<<", ">>", "&=", "|=",
	"+", "-", "*", "/", "%", "=", "<", ">", "!", "?", ":",
	"(", ")", "{", "}", "[", "]", ";", ",", ".", "&", "|", "^", "~",
}

// lex tokenizes src, stripping // and /* */ comments.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)

	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
			i++
		}
	}

	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '/' && i+1 < n && src[i+1] == '/':
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case c == '/' && i+1 < n && src[i+1] == '*':
			startLine, startCol := line, col
			advance(2)
			closed := false
			for i+1 < n {
				if src[i] == '*' && src[i+1] == '/' {
					advance(2)
					closed = true
					break
				}
				advance(1)
			}
			if !closed {
				return nil, &SyntaxError{startLine, startCol, "unterminated block comment"}
			}
		case c == '"' || c == '\'':
			startLine, startCol := line, col
			quote := c
			advance(1)
			var sb strings.Builder
			closed := false
			for i < n {
				ch := src[i]
				if ch == '\\' && i+1 < n {
					esc := src[i+1]
					advance(2)
					switch esc {
					case 'n':
						sb.WriteByte('\n')
					case 't':
						sb.WriteByte('\t')
					case 'r':
						sb.WriteByte('\r')
					case '\\':
						sb.WriteByte('\\')
					case '\'':
						sb.WriteByte('\'')
					case '"':
						sb.WriteByte('"')
					case '0':
						sb.WriteByte(0)
					case 'u':
						// \uXXXX escape
						if i+4 <= n {
							var r rune
							ok := true
							for k := 0; k < 4; k++ {
								r <<= 4
								d := src[i+k]
								switch {
								case d >= '0' && d <= '9':
									r |= rune(d - '0')
								case d >= 'a' && d <= 'f':
									r |= rune(d-'a') + 10
								case d >= 'A' && d <= 'F':
									r |= rune(d-'A') + 10
								default:
									ok = false
								}
							}
							if ok {
								sb.WriteRune(r)
								advance(4)
							} else {
								sb.WriteByte('u')
							}
						} else {
							sb.WriteByte('u')
						}
					default:
						sb.WriteByte(esc)
					}
					continue
				}
				if ch == quote {
					advance(1)
					closed = true
					break
				}
				if ch == '\n' {
					return nil, &SyntaxError{startLine, startCol, "unterminated string"}
				}
				sb.WriteByte(ch)
				advance(1)
			}
			if !closed {
				return nil, &SyntaxError{startLine, startCol, "unterminated string"}
			}
			toks = append(toks, token{tString, sb.String(), startLine, startCol})
		case c >= '0' && c <= '9' || (c == '.' && i+1 < n && src[i+1] >= '0' && src[i+1] <= '9'):
			startLine, startCol := line, col
			j := i
			if c == '0' && i+1 < n && (src[i+1] == 'x' || src[i+1] == 'X') {
				j = i + 2
				for j < n && isHexDigit(src[j]) {
					j++
				}
			} else {
				seenDot, seenExp := false, false
				for j < n {
					d := src[j]
					if d >= '0' && d <= '9' {
						j++
					} else if d == '.' && !seenDot && !seenExp {
						seenDot = true
						j++
					} else if (d == 'e' || d == 'E') && !seenExp {
						seenExp = true
						j++
						if j < n && (src[j] == '+' || src[j] == '-') {
							j++
						}
					} else {
						break
					}
				}
			}
			text := src[i:j]
			advance(j - i)
			toks = append(toks, token{tNumber, text, startLine, startCol})
		case isIdentStart(c):
			startLine, startCol := line, col
			j := i
			for j < n && isIdentPart(src[j]) {
				j++
			}
			text := src[i:j]
			advance(j - i)
			kind := tIdent
			if keywords[text] {
				kind = tKeyword
			}
			toks = append(toks, token{kind, text, startLine, startCol})
		default:
			matched := false
			for _, p := range punctuators {
				if strings.HasPrefix(src[i:], p) {
					toks = append(toks, token{tPunct, p, line, col})
					advance(len(p))
					matched = true
					break
				}
			}
			if !matched {
				return nil, &SyntaxError{line, col, fmt.Sprintf("unexpected character %q", c)}
			}
		}
	}
	toks = append(toks, token{tEOF, "", line, col})
	return toks, nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '$' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || c >= '0' && c <= '9'
}

func isHexDigit(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}
