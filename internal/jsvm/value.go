package jsvm

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Kind enumerates runtime value kinds.
type Kind uint8

// Value kinds.
const (
	KindUndefined Kind = iota
	KindNull
	KindBool
	KindNumber
	KindString
	KindObject
)

// NativeFunc is a Go function callable from scripts.
type NativeFunc func(this Value, args []Value) (Value, error)

// HostObject lets a Go object participate as a script object: property
// reads (which may return bound native methods) and property writes.
type HostObject interface {
	// HostGet returns the property value and whether it exists.
	HostGet(name string) (Value, bool)
	// HostSet assigns a property, reporting whether the write was
	// accepted.
	HostSet(name string, v Value) bool
}

// Object is the heap form of arrays, plain objects, functions and host
// object wrappers.
type Object struct {
	Props   map[string]Value
	Elems   []Value
	IsArray bool
	Fn      *FuncLit
	Env     *Scope
	Native  NativeFunc
	Host    HostObject
}

// Value is a script value. The zero Value is undefined.
type Value struct {
	kind Kind
	num  float64
	str  string
	b    bool
	obj  *Object
}

// Undefined returns the undefined value.
func Undefined() Value { return Value{} }

// Null returns the null value.
func Null() Value { return Value{kind: KindNull} }

// Boolean wraps a Go bool.
func Boolean(b bool) Value { return Value{kind: KindBool, b: b} }

// Number wraps a float64.
func Number(f float64) Value { return Value{kind: KindNumber, num: f} }

// String wraps a Go string.
func String(s string) Value { return Value{kind: KindString, str: s} }

// NewObject returns an empty plain object.
func NewObject() Value {
	return Value{kind: KindObject, obj: &Object{Props: map[string]Value{}}}
}

// NewArray returns an array value holding elems.
func NewArray(elems ...Value) Value {
	return Value{kind: KindObject, obj: &Object{IsArray: true, Elems: elems}}
}

// NewNative wraps a Go function as a callable value.
func NewNative(fn NativeFunc) Value {
	return Value{kind: KindObject, obj: &Object{Native: fn}}
}

// NewHost wraps a HostObject.
func NewHost(h HostObject) Value {
	return Value{kind: KindObject, obj: &Object{Host: h}}
}

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports kind == undefined.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsNullish reports undefined or null.
func (v Value) IsNullish() bool { return v.kind == KindUndefined || v.kind == KindNull }

// IsCallable reports whether Call can invoke the value.
func (v Value) IsCallable() bool {
	return v.kind == KindObject && (v.obj.Fn != nil || v.obj.Native != nil)
}

// IsArray reports whether the value is an array object.
func (v Value) IsArray() bool { return v.kind == KindObject && v.obj.IsArray }

// Host returns the wrapped HostObject, or nil.
func (v Value) Host() HostObject {
	if v.kind == KindObject {
		return v.obj.Host
	}
	return nil
}

// Object returns the underlying heap object, or nil for primitives.
func (v Value) Object() *Object {
	if v.kind == KindObject {
		return v.obj
	}
	return nil
}

// Bool converts per JS truthiness.
func (v Value) Bool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNumber:
		return v.num != 0 && !math.IsNaN(v.num)
	case KindString:
		return v.str != ""
	case KindObject:
		return true
	}
	return false
}

// Num converts per JS ToNumber.
func (v Value) Num() float64 {
	switch v.kind {
	case KindNumber:
		return v.num
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	case KindString:
		s := strings.TrimSpace(v.str)
		if s == "" {
			return 0
		}
		if f, err := strconv.ParseFloat(s, 64); err == nil {
			return f
		}
		return math.NaN()
	case KindNull:
		return 0
	}
	return math.NaN()
}

// Str converts per JS ToString.
func (v Value) Str() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindNumber:
		return formatNumber(v.num)
	case KindString:
		return v.str
	case KindObject:
		switch {
		case v.obj.IsArray:
			parts := make([]string, len(v.obj.Elems))
			for i, e := range v.obj.Elems {
				if !e.IsNullish() {
					parts[i] = e.Str()
				}
			}
			return strings.Join(parts, ",")
		case v.obj.Fn != nil || v.obj.Native != nil:
			return "function () { [code] }"
		case v.obj.Host != nil:
			if s, ok := v.obj.Host.HostGet("__string__"); ok {
				return s.Str()
			}
			return "[object Object]"
		default:
			return "[object Object]"
		}
	}
	return ""
}

// formatNumber renders numbers the way JavaScript does: integers without
// a decimal point, NaN/Infinity by name.
func formatNumber(f float64) string {
	switch {
	case math.IsNaN(f):
		return "NaN"
	case math.IsInf(f, 1):
		return "Infinity"
	case math.IsInf(f, -1):
		return "-Infinity"
	case f == math.Trunc(f) && math.Abs(f) < 1e21:
		return strconv.FormatFloat(f, 'f', -1, 64)
	default:
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
}

// TypeOf implements the typeof operator.
func (v Value) TypeOf() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "object"
	case KindBool:
		return "boolean"
	case KindNumber:
		return "number"
	case KindString:
		return "string"
	case KindObject:
		if v.IsCallable() {
			return "function"
		}
		return "object"
	}
	return "undefined"
}

// StrictEquals implements ===.
func StrictEquals(a, b Value) bool {
	if a.kind != b.kind {
		return false
	}
	switch a.kind {
	case KindUndefined, KindNull:
		return true
	case KindBool:
		return a.b == b.b
	case KindNumber:
		return a.num == b.num // NaN !== NaN falls out naturally
	case KindString:
		return a.str == b.str
	case KindObject:
		return a.obj == b.obj
	}
	return false
}

// LooseEquals implements == with the coercions scripts actually rely on.
func LooseEquals(a, b Value) bool {
	if a.kind == b.kind {
		return StrictEquals(a, b)
	}
	if a.IsNullish() && b.IsNullish() {
		return true
	}
	if a.IsNullish() != b.IsNullish() {
		return false
	}
	// Number/string/bool cross-kind: compare as numbers.
	return a.Num() == b.Num()
}

// JSONStringify implements JSON.stringify for the supported value kinds.
// Functions and host objects serialize as null (close enough to JS, which
// drops/nulls them depending on position).
func JSONStringify(v Value) string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindNull:
		return "null"
	case KindBool, KindNumber:
		return v.Str()
	case KindString:
		return strconv.Quote(v.str)
	case KindObject:
		if v.IsCallable() || v.obj.Host != nil {
			return "null"
		}
		if v.obj.IsArray {
			parts := make([]string, len(v.obj.Elems))
			for i, e := range v.obj.Elems {
				s := JSONStringify(e)
				if s == "undefined" {
					s = "null"
				}
				parts[i] = s
			}
			return "[" + strings.Join(parts, ",") + "]"
		}
		keys := make([]string, 0, len(v.obj.Props))
		for k := range v.obj.Props {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		var sb strings.Builder
		sb.WriteByte('{')
		first := true
		for _, k := range keys {
			s := JSONStringify(v.obj.Props[k])
			if s == "undefined" {
				continue
			}
			if !first {
				sb.WriteByte(',')
			}
			first = false
			fmt.Fprintf(&sb, "%s:%s", strconv.Quote(k), s)
		}
		sb.WriteByte('}')
		return sb.String()
	}
	return "null"
}
