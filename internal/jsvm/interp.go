package jsvm

import (
	"errors"
	"fmt"
	"math"
	"strings"
)

// Scope is a lexical environment frame.
type Scope struct {
	vars   map[string]Value
	parent *Scope
}

// NewScope returns a child scope of parent (parent may be nil).
func NewScope(parent *Scope) *Scope {
	return &Scope{vars: map[string]Value{}, parent: parent}
}

func (s *Scope) lookup(name string) (*Scope, bool) {
	for sc := s; sc != nil; sc = sc.parent {
		if _, ok := sc.vars[name]; ok {
			return sc, true
		}
	}
	return nil, false
}

// RuntimeError is a script-level failure (thrown value, type error, step
// limit, unknown identifier).
type RuntimeError struct {
	Msg string
}

func (e *RuntimeError) Error() string { return "jsvm: " + e.Msg }

func rtErrf(format string, args ...any) error {
	return &RuntimeError{Msg: fmt.Sprintf(format, args...)}
}

// control-flow sentinels
var (
	errBreak    = errors.New("jsvm: break outside loop")
	errContinue = errors.New("jsvm: continue outside loop")
)

type returnSignal struct{ v Value }

func (returnSignal) Error() string { return "jsvm: return outside function" }

// thrownSignal carries a value raised by `throw` until a try/catch
// handles it; escaping the program it becomes an uncaught RuntimeError.
type thrownSignal struct{ v Value }

func (t thrownSignal) Error() string { return "jsvm: uncaught: " + t.v.Str() }

// isControlFlow reports whether err is a loop/function control signal
// that try/catch must NOT intercept.
func isControlFlow(err error) bool {
	if err == errBreak || err == errContinue {
		return true
	}
	_, isReturn := err.(returnSignal)
	return isReturn
}

// Options configures an interpreter instance.
type Options struct {
	// MaxSteps bounds evaluation steps; <=0 selects the default of 5M.
	// The crawler relies on this to survive runaway scripts.
	MaxSteps int
	// RandSeed seeds Math.random for deterministic crawls.
	RandSeed uint64
}

// Interp executes programs against a global scope.
type Interp struct {
	globals  *Scope
	maxSteps int
	steps    int
	rands    uint64
	// ConsoleLog receives console.log lines (joined with spaces).
	ConsoleLog []string
}

// New returns an interpreter with standard builtins installed.
func New(opts Options) *Interp {
	if opts.MaxSteps <= 0 {
		opts.MaxSteps = 5_000_000
	}
	in := &Interp{
		globals:  NewScope(nil),
		maxSteps: opts.MaxSteps,
		rands:    opts.RandSeed ^ 0x9E3779B97F4A7C15,
	}
	installBuiltins(in)
	return in
}

// SetGlobal binds a global variable (host objects go here).
func (in *Interp) SetGlobal(name string, v Value) { in.globals.vars[name] = v }

// Global reads a global variable.
func (in *Interp) Global(name string) (Value, bool) {
	v, ok := in.globals.vars[name]
	return v, ok
}

// ResetSteps restores the full step budget (between page scripts).
func (in *Interp) ResetSteps() { in.steps = 0 }

// Steps reports the evaluation steps consumed since the last
// ResetSteps — the crawler's per-script budget telemetry.
func (in *Interp) Steps() int { return in.steps }

// MaxSteps reports the configured step budget.
func (in *Interp) MaxSteps() int { return in.maxSteps }

// RunSource parses and runs src, returning the value of the last
// expression statement.
func (in *Interp) RunSource(src string) (Value, error) {
	prog, err := Parse(src)
	if err != nil {
		return Undefined(), err
	}
	return in.Run(prog)
}

// Run executes a parsed program in the global scope.
func (in *Interp) Run(prog *Program) (Value, error) {
	var last Value
	for _, st := range prog.Body {
		v, err := in.execStmt(st, in.globals)
		if err != nil {
			if rs, ok := err.(returnSignal); ok {
				return rs.v, nil
			}
			return Undefined(), err
		}
		last = v
	}
	return last, nil
}

func (in *Interp) step() error {
	in.steps++
	if in.steps > in.maxSteps {
		return rtErrf("step limit exceeded (%d)", in.maxSteps)
	}
	return nil
}

// execStmt executes one statement; expression statements yield a value so
// Run can return the final one.
func (in *Interp) execStmt(st Stmt, sc *Scope) (Value, error) {
	if err := in.step(); err != nil {
		return Undefined(), err
	}
	switch s := st.(type) {
	case *VarDecl:
		for i, name := range s.Names {
			var v Value
			if s.Inits[i] != nil {
				var err error
				v, err = in.eval(s.Inits[i], sc)
				if err != nil {
					return Undefined(), err
				}
			}
			sc.vars[name] = v
		}
		return Undefined(), nil
	case *ExprStmt:
		return in.eval(s.X, sc)
	case *BlockStmt:
		inner := NewScope(sc)
		var last Value
		for _, st2 := range s.Body {
			v, err := in.execStmt(st2, inner)
			if err != nil {
				return Undefined(), err
			}
			last = v
		}
		return last, nil
	case *IfStmt:
		cond, err := in.eval(s.Cond, sc)
		if err != nil {
			return Undefined(), err
		}
		if cond.Bool() {
			return in.execStmt(s.Then, sc)
		}
		if s.Else != nil {
			return in.execStmt(s.Else, sc)
		}
		return Undefined(), nil
	case *ForStmt:
		loop := NewScope(sc)
		if s.Init != nil {
			if _, err := in.execStmt(s.Init, loop); err != nil {
				return Undefined(), err
			}
		}
		for {
			if s.Cond != nil {
				c, err := in.eval(s.Cond, loop)
				if err != nil {
					return Undefined(), err
				}
				if !c.Bool() {
					break
				}
			}
			if _, err := in.execStmt(s.Body, loop); err != nil {
				if err == errBreak {
					break
				}
				if err != errContinue {
					return Undefined(), err
				}
			}
			if s.Post != nil {
				if _, err := in.eval(s.Post, loop); err != nil {
					return Undefined(), err
				}
			}
			if err := in.step(); err != nil {
				return Undefined(), err
			}
		}
		return Undefined(), nil
	case *WhileStmt:
		first := s.Do
		for {
			if !first {
				c, err := in.eval(s.Cond, sc)
				if err != nil {
					return Undefined(), err
				}
				if !c.Bool() {
					break
				}
			}
			first = false
			if _, err := in.execStmt(s.Body, sc); err != nil {
				if err == errBreak {
					break
				}
				if err != errContinue {
					return Undefined(), err
				}
			}
			if err := in.step(); err != nil {
				return Undefined(), err
			}
		}
		return Undefined(), nil
	case *ReturnStmt:
		var v Value
		if s.X != nil {
			var err error
			v, err = in.eval(s.X, sc)
			if err != nil {
				return Undefined(), err
			}
		}
		return Undefined(), returnSignal{v}
	case *BreakStmt:
		return Undefined(), errBreak
	case *ContinueStmt:
		return Undefined(), errContinue
	case *ThrowStmt:
		v, err := in.eval(s.X, sc)
		if err != nil {
			return Undefined(), err
		}
		return Undefined(), thrownSignal{v}
	case *TryStmt:
		return in.execTry(s, sc)
	}
	return Undefined(), rtErrf("unknown statement %T", st)
}

// execTry implements try/catch/finally. Control-flow signals (break,
// continue, return) pass through uncaught; thrown values and runtime
// errors reach the catch clause as an Error-like object. The finally
// clause always runs, and its own failure or control flow wins.
func (in *Interp) execTry(s *TryStmt, sc *Scope) (Value, error) {
	runBody := func(body []Stmt, frame *Scope) error {
		for _, st := range body {
			if _, err := in.execStmt(st, frame); err != nil {
				return err
			}
		}
		return nil
	}
	err := runBody(s.Body, NewScope(sc))
	if err != nil && s.HasCatch && !isControlFlow(err) {
		frame := NewScope(sc)
		if s.CatchParam != "" {
			frame.vars[s.CatchParam] = errorValue(err)
		}
		err = runBody(s.Catch, frame)
	}
	if s.HasFinally {
		if ferr := runBody(s.Finally, NewScope(sc)); ferr != nil {
			return Undefined(), ferr
		}
	}
	return Undefined(), err
}

// errorValue converts a VM error to the value a catch clause binds: the
// thrown value itself, or an Error-like object for runtime errors.
func errorValue(err error) Value {
	if ts, ok := err.(thrownSignal); ok {
		return ts.v
	}
	obj := NewObject()
	obj.Object().Props["name"] = String("Error")
	obj.Object().Props["message"] = String(err.Error())
	return obj
}

// eval evaluates an expression.
func (in *Interp) eval(e Expr, sc *Scope) (Value, error) {
	if err := in.step(); err != nil {
		return Undefined(), err
	}
	switch x := e.(type) {
	case *preEvaluated:
		return x.v, nil
	case *NumberLit:
		return Number(x.Value), nil
	case *StringLit:
		return String(x.Value), nil
	case *BoolLit:
		return Boolean(x.Value), nil
	case *NullLit:
		return Null(), nil
	case *UndefinedLit:
		return Undefined(), nil
	case *Ident:
		if frame, ok := sc.lookup(x.Name); ok {
			return frame.vars[x.Name], nil
		}
		return Undefined(), rtErrf("%s is not defined", x.Name)
	case *ArrayLit:
		elems := make([]Value, len(x.Elems))
		for i, el := range x.Elems {
			v, err := in.eval(el, sc)
			if err != nil {
				return Undefined(), err
			}
			elems[i] = v
		}
		return NewArray(elems...), nil
	case *ObjectLit:
		obj := NewObject()
		for i, k := range x.Keys {
			v, err := in.eval(x.Values[i], sc)
			if err != nil {
				return Undefined(), err
			}
			obj.obj.Props[k] = v
		}
		return obj, nil
	case *FuncLit:
		return Value{kind: KindObject, obj: &Object{Fn: x, Env: sc}}, nil
	case *Unary:
		return in.evalUnary(x, sc)
	case *Postfix:
		old, err := in.eval(x.X, sc)
		if err != nil {
			return Undefined(), err
		}
		delta := 1.0
		if x.Op == "--" {
			delta = -1
		}
		if err := in.assignTo(x.X, Number(old.Num()+delta), sc); err != nil {
			return Undefined(), err
		}
		return Number(old.Num()), nil
	case *Binary:
		return in.evalBinary(x, sc)
	case *Assign:
		return in.evalAssign(x, sc)
	case *Cond:
		t, err := in.eval(x.Test, sc)
		if err != nil {
			return Undefined(), err
		}
		if t.Bool() {
			return in.eval(x.Then, sc)
		}
		return in.eval(x.Else, sc)
	case *Member:
		obj, err := in.eval(x.X, sc)
		if err != nil {
			return Undefined(), err
		}
		return in.getProp(obj, x.Name)
	case *Index:
		obj, err := in.eval(x.X, sc)
		if err != nil {
			return Undefined(), err
		}
		idx, err := in.eval(x.I, sc)
		if err != nil {
			return Undefined(), err
		}
		return in.getIndex(obj, idx)
	case *Call:
		return in.evalCall(x, sc)
	case *NewExpr:
		return in.evalNew(x, sc)
	}
	return Undefined(), rtErrf("unknown expression %T", e)
}

func (in *Interp) evalUnary(x *Unary, sc *Scope) (Value, error) {
	if x.Op == "typeof" {
		// typeof tolerates undefined identifiers.
		if id, ok := x.X.(*Ident); ok {
			if _, found := sc.lookup(id.Name); !found {
				return String("undefined"), nil
			}
		}
		v, err := in.eval(x.X, sc)
		if err != nil {
			return Undefined(), err
		}
		return String(v.TypeOf()), nil
	}
	if x.Op == "++" || x.Op == "--" {
		old, err := in.eval(x.X, sc)
		if err != nil {
			return Undefined(), err
		}
		delta := 1.0
		if x.Op == "--" {
			delta = -1
		}
		nv := Number(old.Num() + delta)
		if err := in.assignTo(x.X, nv, sc); err != nil {
			return Undefined(), err
		}
		return nv, nil
	}
	v, err := in.eval(x.X, sc)
	if err != nil {
		return Undefined(), err
	}
	switch x.Op {
	case "!":
		return Boolean(!v.Bool()), nil
	case "-":
		return Number(-v.Num()), nil
	case "+":
		return Number(v.Num()), nil
	case "~":
		return Number(float64(^toInt32(v.Num()))), nil
	}
	return Undefined(), rtErrf("unknown unary operator %q", x.Op)
}

func toInt32(f float64) int32 {
	if math.IsNaN(f) || math.IsInf(f, 0) {
		return 0
	}
	return int32(int64(f))
}

func (in *Interp) evalBinary(x *Binary, sc *Scope) (Value, error) {
	// Short-circuit operators evaluate lazily and yield operand values.
	switch x.Op {
	case "&&":
		l, err := in.eval(x.L, sc)
		if err != nil || !l.Bool() {
			return l, err
		}
		return in.eval(x.R, sc)
	case "||":
		l, err := in.eval(x.L, sc)
		if err != nil || l.Bool() {
			return l, err
		}
		return in.eval(x.R, sc)
	case ",":
		if _, err := in.eval(x.L, sc); err != nil {
			return Undefined(), err
		}
		return in.eval(x.R, sc)
	}
	l, err := in.eval(x.L, sc)
	if err != nil {
		return Undefined(), err
	}
	r, err := in.eval(x.R, sc)
	if err != nil {
		return Undefined(), err
	}
	switch x.Op {
	case "+":
		if l.Kind() == KindString || r.Kind() == KindString ||
			(l.Kind() == KindObject && !l.IsCallable()) || (r.Kind() == KindObject && !r.IsCallable()) {
			return String(l.Str() + r.Str()), nil
		}
		return Number(l.Num() + r.Num()), nil
	case "-":
		return Number(l.Num() - r.Num()), nil
	case "*":
		return Number(l.Num() * r.Num()), nil
	case "/":
		return Number(l.Num() / r.Num()), nil
	case "%":
		return Number(math.Mod(l.Num(), r.Num())), nil
	case "==":
		return Boolean(LooseEquals(l, r)), nil
	case "!=":
		return Boolean(!LooseEquals(l, r)), nil
	case "===":
		return Boolean(StrictEquals(l, r)), nil
	case "!==":
		return Boolean(!StrictEquals(l, r)), nil
	case "<", ">", "<=", ">=":
		if l.Kind() == KindString && r.Kind() == KindString {
			ls, rs := l.Str(), r.Str()
			switch x.Op {
			case "<":
				return Boolean(ls < rs), nil
			case ">":
				return Boolean(ls > rs), nil
			case "<=":
				return Boolean(ls <= rs), nil
			default:
				return Boolean(ls >= rs), nil
			}
		}
		ln, rn := l.Num(), r.Num()
		switch x.Op {
		case "<":
			return Boolean(ln < rn), nil
		case ">":
			return Boolean(ln > rn), nil
		case "<=":
			return Boolean(ln <= rn), nil
		default:
			return Boolean(ln >= rn), nil
		}
	case "&":
		return Number(float64(toInt32(l.Num()) & toInt32(r.Num()))), nil
	case "|":
		return Number(float64(toInt32(l.Num()) | toInt32(r.Num()))), nil
	case "^":
		return Number(float64(toInt32(l.Num()) ^ toInt32(r.Num()))), nil
	case "<<":
		return Number(float64(toInt32(l.Num()) << (uint32(toInt32(r.Num())) & 31))), nil
	case ">>":
		return Number(float64(toInt32(l.Num()) >> (uint32(toInt32(r.Num())) & 31))), nil
	case "in":
		if r.Kind() == KindObject && r.obj.Props != nil {
			_, ok := r.obj.Props[l.Str()]
			return Boolean(ok), nil
		}
		return Boolean(false), nil
	}
	return Undefined(), rtErrf("unknown operator %q", x.Op)
}

func (in *Interp) evalAssign(x *Assign, sc *Scope) (Value, error) {
	val, err := in.eval(x.Value, sc)
	if err != nil {
		return Undefined(), err
	}
	if x.Op != "=" {
		cur, err := in.eval(x.Target, sc)
		if err != nil {
			return Undefined(), err
		}
		op := strings.TrimSuffix(x.Op, "=")
		combined, err := in.evalBinary(&Binary{Op: op, L: litFor(cur), R: litFor(val)}, sc)
		if err != nil {
			return Undefined(), err
		}
		val = combined
	}
	if err := in.assignTo(x.Target, val, sc); err != nil {
		return Undefined(), err
	}
	return val, nil
}

// litFor wraps an already-computed value as a literal expression so that
// compound assignment can reuse evalBinary.
func litFor(v Value) Expr {
	switch v.Kind() {
	case KindNumber:
		return &NumberLit{Value: v.num}
	case KindString:
		return &StringLit{Value: v.str}
	case KindBool:
		return &BoolLit{Value: v.b}
	case KindNull:
		return &NullLit{}
	case KindObject:
		return &preEvaluated{v}
	}
	return &UndefinedLit{}
}

// preEvaluated smuggles an object value through evalBinary.
type preEvaluated struct{ v Value }

func (*preEvaluated) node() {}
func (*preEvaluated) expr() {}

func (in *Interp) assignTo(target Expr, val Value, sc *Scope) error {
	switch t := target.(type) {
	case *Ident:
		if frame, ok := sc.lookup(t.Name); ok {
			frame.vars[t.Name] = val
			return nil
		}
		// Implicit global, as in sloppy-mode JS.
		in.globals.vars[t.Name] = val
		return nil
	case *Member:
		obj, err := in.eval(t.X, sc)
		if err != nil {
			return err
		}
		return in.setProp(obj, t.Name, val)
	case *Index:
		obj, err := in.eval(t.X, sc)
		if err != nil {
			return err
		}
		idx, err := in.eval(t.I, sc)
		if err != nil {
			return err
		}
		return in.setIndex(obj, idx, val)
	}
	return rtErrf("invalid assignment target %T", target)
}

func (in *Interp) evalCall(x *Call, sc *Scope) (Value, error) {
	// Method call: bind `this`.
	var this Value
	var fn Value
	var err error
	switch callee := x.Fn.(type) {
	case *Member:
		this, err = in.eval(callee.X, sc)
		if err != nil {
			return Undefined(), err
		}
		fn, err = in.getProp(this, callee.Name)
		if err != nil {
			return Undefined(), err
		}
		if fn.IsUndefined() {
			return Undefined(), rtErrf("%s.%s is not a function", this.TypeOf(), callee.Name)
		}
	case *Index:
		this, err = in.eval(callee.X, sc)
		if err != nil {
			return Undefined(), err
		}
		idx, err := in.eval(callee.I, sc)
		if err != nil {
			return Undefined(), err
		}
		fn, err = in.getIndex(this, idx)
		if err != nil {
			return Undefined(), err
		}
	default:
		fn, err = in.eval(x.Fn, sc)
		if err != nil {
			return Undefined(), err
		}
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return Undefined(), err
		}
		args[i] = v
	}
	return in.CallValue(fn, this, args)
}

// CallValue invokes a callable value with an explicit this and arguments.
// Host callbacks (e.g. DOM event handlers) use it to re-enter the VM.
func (in *Interp) CallValue(fn Value, this Value, args []Value) (Value, error) {
	if !fn.IsCallable() {
		return Undefined(), rtErrf("value of type %s is not callable", fn.TypeOf())
	}
	if fn.obj.Native != nil {
		return fn.obj.Native(this, args)
	}
	frame := NewScope(fn.obj.Env)
	def := fn.obj.Fn
	for i, p := range def.Params {
		if i < len(args) {
			frame.vars[p] = args[i]
		} else {
			frame.vars[p] = Undefined()
		}
	}
	frame.vars["this"] = this
	argsArr := NewArray(args...)
	frame.vars["arguments"] = argsArr
	if def.Name != "" {
		frame.vars[def.Name] = fn
	}
	for _, st := range def.Body {
		if _, err := in.execStmt(st, frame); err != nil {
			if rs, ok := err.(returnSignal); ok {
				return rs.v, nil
			}
			return Undefined(), err
		}
	}
	return Undefined(), nil
}

func (in *Interp) evalNew(x *NewExpr, sc *Scope) (Value, error) {
	fn, err := in.eval(x.Fn, sc)
	if err != nil {
		return Undefined(), err
	}
	args := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := in.eval(a, sc)
		if err != nil {
			return Undefined(), err
		}
		args[i] = v
	}
	if !fn.IsCallable() {
		return Undefined(), rtErrf("constructor is not callable")
	}
	this := NewObject()
	ret, err := in.CallValue(fn, this, args)
	if err != nil {
		return Undefined(), err
	}
	if ret.Kind() == KindObject {
		return ret, nil
	}
	return this, nil
}
