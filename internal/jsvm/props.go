package jsvm

import (
	"math"
	"strings"
)

// getProp implements obj.name for every value kind, including primitive
// string/array methods and host-object dispatch.
func (in *Interp) getProp(v Value, name string) (Value, error) {
	switch v.kind {
	case KindString:
		return stringProp(v.str, name)
	case KindObject:
		o := v.obj
		switch {
		case o.Host != nil:
			if pv, ok := o.Host.HostGet(name); ok {
				return pv, nil
			}
			return Undefined(), nil
		case o.IsArray:
			if m := in.interpArrayMethod(name); m.IsCallable() {
				return m, nil
			}
			return arrayProp(v, name)
		default:
			if o.Props != nil {
				if pv, ok := o.Props[name]; ok {
					return pv, nil
				}
			}
			if name == "hasOwnProperty" {
				return NewNative(func(this Value, args []Value) (Value, error) {
					if len(args) == 0 || this.Object() == nil || this.Object().Props == nil {
						return Boolean(false), nil
					}
					_, ok := this.Object().Props[args[0].Str()]
					return Boolean(ok), nil
				}), nil
			}
			return Undefined(), nil
		}
	case KindNumber:
		if name == "toFixed" {
			return NewNative(func(this Value, args []Value) (Value, error) {
				digits := 0
				if len(args) > 0 {
					digits = int(args[0].Num())
				}
				if digits < 0 || digits > 20 {
					digits = 0
				}
				mult := math.Pow(10, float64(digits))
				r := math.Floor(this.Num()*mult+0.5) / mult
				s := formatNumber(r)
				if digits > 0 && !strings.Contains(s, ".") {
					s += "." + strings.Repeat("0", digits)
				}
				return String(s), nil
			}), nil
		}
		if name == "toString" {
			return NewNative(func(this Value, args []Value) (Value, error) {
				return String(this.Str()), nil
			}), nil
		}
		return Undefined(), nil
	case KindUndefined, KindNull:
		return Undefined(), rtErrf("cannot read property %q of %s", name, v.Str())
	}
	return Undefined(), nil
}

// getIndex implements obj[i].
func (in *Interp) getIndex(v Value, idx Value) (Value, error) {
	if v.kind == KindString && idx.Kind() == KindNumber {
		i := int(idx.Num())
		if i >= 0 && i < len(v.str) {
			return String(v.str[i : i+1]), nil
		}
		return Undefined(), nil
	}
	if v.kind == KindObject && v.obj.IsArray && idx.Kind() == KindNumber {
		i := int(idx.Num())
		if i >= 0 && i < len(v.obj.Elems) {
			return v.obj.Elems[i], nil
		}
		return Undefined(), nil
	}
	return in.getProp(v, idx.Str())
}

// setProp implements obj.name = val.
func (in *Interp) setProp(v Value, name string, val Value) error {
	if v.kind != KindObject {
		return rtErrf("cannot set property %q on %s", name, v.TypeOf())
	}
	o := v.obj
	if o.Host != nil {
		o.Host.HostSet(name, val) // hosts may silently reject, like DOM
		return nil
	}
	if o.IsArray && name == "length" {
		n := int(val.Num())
		if n < 0 {
			n = 0
		}
		for len(o.Elems) < n {
			o.Elems = append(o.Elems, Undefined())
		}
		o.Elems = o.Elems[:n]
		return nil
	}
	if o.Props == nil {
		o.Props = map[string]Value{}
	}
	o.Props[name] = val
	return nil
}

// setIndex implements obj[i] = val.
func (in *Interp) setIndex(v Value, idx Value, val Value) error {
	if v.kind == KindObject && v.obj.IsArray && idx.Kind() == KindNumber {
		i := int(idx.Num())
		if i < 0 {
			return rtErrf("negative array index")
		}
		for len(v.obj.Elems) <= i {
			v.obj.Elems = append(v.obj.Elems, Undefined())
		}
		v.obj.Elems[i] = val
		return nil
	}
	return in.setProp(v, idx.Str(), val)
}

// stringProp serves string properties and methods.
func stringProp(s, name string) (Value, error) {
	switch name {
	case "length":
		return Number(float64(len(s))), nil
	case "charCodeAt":
		return NewNative(func(this Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(args[0].Num())
			}
			str := this.Str()
			if i < 0 || i >= len(str) {
				return Number(math.NaN()), nil
			}
			return Number(float64(str[i])), nil
		}), nil
	case "charAt":
		return NewNative(func(this Value, args []Value) (Value, error) {
			i := 0
			if len(args) > 0 {
				i = int(args[0].Num())
			}
			str := this.Str()
			if i < 0 || i >= len(str) {
				return String(""), nil
			}
			return String(str[i : i+1]), nil
		}), nil
	case "indexOf":
		return NewNative(func(this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			return Number(float64(strings.Index(this.Str(), args[0].Str()))), nil
		}), nil
	case "lastIndexOf":
		return NewNative(func(this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(-1), nil
			}
			return Number(float64(strings.LastIndex(this.Str(), args[0].Str()))), nil
		}), nil
	case "includes":
		return NewNative(func(this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Boolean(false), nil
			}
			return Boolean(strings.Contains(this.Str(), args[0].Str())), nil
		}), nil
	case "startsWith":
		return NewNative(func(this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Boolean(false), nil
			}
			return Boolean(strings.HasPrefix(this.Str(), args[0].Str())), nil
		}), nil
	case "endsWith":
		return NewNative(func(this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Boolean(false), nil
			}
			return Boolean(strings.HasSuffix(this.Str(), args[0].Str())), nil
		}), nil
	case "slice", "substring":
		return NewNative(func(this Value, args []Value) (Value, error) {
			str := this.Str()
			start, end := 0, len(str)
			if len(args) > 0 {
				start = normIndex(int(args[0].Num()), len(str), name == "slice")
			}
			if len(args) > 1 && !args[1].IsUndefined() {
				end = normIndex(int(args[1].Num()), len(str), name == "slice")
			}
			if start > end {
				if name == "substring" {
					start, end = end, start
				} else {
					return String(""), nil
				}
			}
			return String(str[start:end]), nil
		}), nil
	case "toUpperCase":
		return NewNative(func(this Value, args []Value) (Value, error) {
			return String(strings.ToUpper(this.Str())), nil
		}), nil
	case "toLowerCase":
		return NewNative(func(this Value, args []Value) (Value, error) {
			return String(strings.ToLower(this.Str())), nil
		}), nil
	case "trim":
		return NewNative(func(this Value, args []Value) (Value, error) {
			return String(strings.TrimSpace(this.Str())), nil
		}), nil
	case "split":
		return NewNative(func(this Value, args []Value) (Value, error) {
			str := this.Str()
			if len(args) == 0 {
				return NewArray(String(str)), nil
			}
			parts := strings.Split(str, args[0].Str())
			out := make([]Value, len(parts))
			for i, p := range parts {
				out[i] = String(p)
			}
			return NewArray(out...), nil
		}), nil
	case "replace":
		return NewNative(func(this Value, args []Value) (Value, error) {
			if len(args) < 2 {
				return this, nil
			}
			return String(strings.Replace(this.Str(), args[0].Str(), args[1].Str(), 1)), nil
		}), nil
	case "repeat":
		return NewNative(func(this Value, args []Value) (Value, error) {
			n := 0
			if len(args) > 0 {
				n = int(args[0].Num())
			}
			if n < 0 || n > 1<<20 {
				return Undefined(), rtErrf("invalid repeat count")
			}
			return String(strings.Repeat(this.Str(), n)), nil
		}), nil
	case "concat":
		return NewNative(func(this Value, args []Value) (Value, error) {
			out := this.Str()
			for _, a := range args {
				out += a.Str()
			}
			return String(out), nil
		}), nil
	case "toString":
		return NewNative(func(this Value, args []Value) (Value, error) {
			return String(this.Str()), nil
		}), nil
	}
	return Undefined(), nil
}

func normIndex(i, n int, allowNegative bool) int {
	if i < 0 {
		if allowNegative {
			i += n
		}
		if i < 0 {
			i = 0
		}
	}
	if i > n {
		i = n
	}
	return i
}

// arrayProp serves array properties and methods.
func arrayProp(v Value, name string) (Value, error) {
	o := v.obj
	switch name {
	case "length":
		return Number(float64(len(o.Elems))), nil
	case "push":
		return NewNative(func(this Value, args []Value) (Value, error) {
			to := this.Object()
			if to == nil {
				return Undefined(), rtErrf("push on non-array")
			}
			to.Elems = append(to.Elems, args...)
			return Number(float64(len(to.Elems))), nil
		}), nil
	case "pop":
		return NewNative(func(this Value, args []Value) (Value, error) {
			to := this.Object()
			if to == nil || len(to.Elems) == 0 {
				return Undefined(), nil
			}
			last := to.Elems[len(to.Elems)-1]
			to.Elems = to.Elems[:len(to.Elems)-1]
			return last, nil
		}), nil
	case "join":
		return NewNative(func(this Value, args []Value) (Value, error) {
			sep := ","
			if len(args) > 0 {
				sep = args[0].Str()
			}
			to := this.Object()
			parts := make([]string, len(to.Elems))
			for i, e := range to.Elems {
				if !e.IsNullish() {
					parts[i] = e.Str()
				}
			}
			return String(strings.Join(parts, sep)), nil
		}), nil
	case "indexOf":
		return NewNative(func(this Value, args []Value) (Value, error) {
			to := this.Object()
			if len(args) > 0 {
				for i, e := range to.Elems {
					if StrictEquals(e, args[0]) {
						return Number(float64(i)), nil
					}
				}
			}
			return Number(-1), nil
		}), nil
	case "includes":
		return NewNative(func(this Value, args []Value) (Value, error) {
			to := this.Object()
			if len(args) > 0 {
				for _, e := range to.Elems {
					if StrictEquals(e, args[0]) {
						return Boolean(true), nil
					}
				}
			}
			return Boolean(false), nil
		}), nil
	case "slice":
		return NewNative(func(this Value, args []Value) (Value, error) {
			to := this.Object()
			start, end := 0, len(to.Elems)
			if len(args) > 0 {
				start = normIndex(int(args[0].Num()), len(to.Elems), true)
			}
			if len(args) > 1 && !args[1].IsUndefined() {
				end = normIndex(int(args[1].Num()), len(to.Elems), true)
			}
			if start > end {
				start = end
			}
			cp := make([]Value, end-start)
			copy(cp, to.Elems[start:end])
			return NewArray(cp...), nil
		}), nil
	case "concat":
		return NewNative(func(this Value, args []Value) (Value, error) {
			to := this.Object()
			out := make([]Value, len(to.Elems))
			copy(out, to.Elems)
			for _, a := range args {
				if a.IsArray() {
					out = append(out, a.Object().Elems...)
				} else {
					out = append(out, a)
				}
			}
			return NewArray(out...), nil
		}), nil
	case "reverse":
		return NewNative(func(this Value, args []Value) (Value, error) {
			to := this.Object()
			for i, j := 0, len(to.Elems)-1; i < j; i, j = i+1, j-1 {
				to.Elems[i], to.Elems[j] = to.Elems[j], to.Elems[i]
			}
			return this, nil
		}), nil
	}
	// forEach/map/filter need the interpreter; they are installed by
	// builtins via interpArrayMethod.
	return Undefined(), nil
}
