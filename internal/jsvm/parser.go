package jsvm

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse turns source text into a Program.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog := &Program{}
	for !p.at(tEOF, "") {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		prog.Body = append(prog.Body, st)
	}
	return prog, nil
}

type parser struct {
	toks []token
	pos  int
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) at(kind tokenKind, text string) bool {
	t := p.cur()
	return t.kind == kind && (text == "" || t.text == text)
}

func (p *parser) eat(kind tokenKind, text string) bool {
	if p.at(kind, text) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expect(kind tokenKind, text string) (token, error) {
	if p.at(kind, text) {
		return p.next(), nil
	}
	t := p.cur()
	return token{}, &SyntaxError{t.line, t.col, fmt.Sprintf("expected %q, found %s", text, t)}
}

func (p *parser) errHere(msg string) error {
	t := p.cur()
	return &SyntaxError{t.line, t.col, msg}
}

// --- statements ---

func (p *parser) statement() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tKeyword && (t.text == "var" || t.text == "let" || t.text == "const"):
		st, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		p.eat(tPunct, ";")
		return st, nil
	case t.kind == tKeyword && t.text == "function":
		return p.funcDecl()
	case t.kind == tKeyword && t.text == "if":
		return p.ifStmt()
	case t.kind == tKeyword && t.text == "for":
		return p.forStmt()
	case t.kind == tKeyword && t.text == "while":
		return p.whileStmt()
	case t.kind == tKeyword && t.text == "do":
		return p.doWhileStmt()
	case t.kind == tKeyword && t.text == "return":
		p.next()
		if p.eat(tPunct, ";") || p.at(tPunct, "}") {
			return &ReturnStmt{}, nil
		}
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.eat(tPunct, ";")
		return &ReturnStmt{X: x}, nil
	case t.kind == tKeyword && t.text == "break":
		p.next()
		p.eat(tPunct, ";")
		return &BreakStmt{}, nil
	case t.kind == tKeyword && t.text == "continue":
		p.next()
		p.eat(tPunct, ";")
		return &ContinueStmt{}, nil
	case t.kind == tKeyword && t.text == "try":
		return p.tryStmt()
	case t.kind == tKeyword && t.text == "throw":
		p.next()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.eat(tPunct, ";")
		return &ThrowStmt{X: x}, nil
	case t.kind == tPunct && t.text == "{":
		return p.block()
	case t.kind == tPunct && t.text == ";":
		p.next()
		return &BlockStmt{}, nil
	default:
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		p.eat(tPunct, ";")
		return &ExprStmt{X: x}, nil
	}
}

func (p *parser) varDecl() (*VarDecl, error) {
	p.next() // var/let/const
	decl := &VarDecl{}
	for {
		nameTok, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		decl.Names = append(decl.Names, nameTok.text)
		var init Expr
		if p.eat(tPunct, "=") {
			init, err = p.assignment()
			if err != nil {
				return nil, err
			}
		}
		decl.Inits = append(decl.Inits, init)
		if !p.eat(tPunct, ",") {
			break
		}
	}
	return decl, nil
}

func (p *parser) funcDecl() (Stmt, error) {
	p.next() // function
	nameTok, err := p.expect(tIdent, "")
	if err != nil {
		return nil, err
	}
	fn, err := p.funcRest(nameTok.text)
	if err != nil {
		return nil, err
	}
	return &VarDecl{Names: []string{nameTok.text}, Inits: []Expr{fn}, IsFunc: true}, nil
}

// funcRest parses "(params) { body }".
func (p *parser) funcRest(name string) (*FuncLit, error) {
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncLit{Name: name}
	for !p.at(tPunct, ")") {
		tok, err := p.expect(tIdent, "")
		if err != nil {
			return nil, err
		}
		fn.Params = append(fn.Params, tok.text)
		if !p.eat(tPunct, ",") {
			break
		}
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body.(*BlockStmt).Body
	return fn, nil
}

func (p *parser) block() (Stmt, error) {
	if _, err := p.expect(tPunct, "{"); err != nil {
		return nil, err
	}
	b := &BlockStmt{}
	for !p.at(tPunct, "}") && !p.at(tEOF, "") {
		st, err := p.statement()
		if err != nil {
			return nil, err
		}
		b.Body = append(b.Body, st)
	}
	if _, err := p.expect(tPunct, "}"); err != nil {
		return nil, err
	}
	return b, nil
}

func (p *parser) tryStmt() (Stmt, error) {
	p.next() // try
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	st := &TryStmt{Body: body.(*BlockStmt).Body}
	if p.at(tKeyword, "catch") {
		p.next()
		st.HasCatch = true
		if p.eat(tPunct, "(") {
			tok, err := p.expect(tIdent, "")
			if err != nil {
				return nil, err
			}
			st.CatchParam = tok.text
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
		}
		catch, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Catch = catch.(*BlockStmt).Body
	}
	if p.at(tKeyword, "finally") {
		p.next()
		st.HasFinally = true
		fin, err := p.block()
		if err != nil {
			return nil, err
		}
		st.Finally = fin.(*BlockStmt).Body
	}
	if !st.HasCatch && !st.HasFinally {
		return nil, p.errHere("try needs catch or finally")
	}
	return st, nil
}

func (p *parser) ifStmt() (Stmt, error) {
	p.next() // if
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	then, err := p.statement()
	if err != nil {
		return nil, err
	}
	st := &IfStmt{Cond: cond, Then: then}
	if p.at(tKeyword, "else") {
		p.next()
		st.Else, err = p.statement()
		if err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) forStmt() (Stmt, error) {
	p.next() // for
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	st := &ForStmt{}
	if !p.at(tPunct, ";") {
		if p.at(tKeyword, "var") || p.at(tKeyword, "let") || p.at(tKeyword, "const") {
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			st.Init = d
		} else {
			x, err := p.expression()
			if err != nil {
				return nil, err
			}
			st.Init = &ExprStmt{X: x}
		}
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tPunct, ";") {
		c, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Cond = c
	}
	if _, err := p.expect(tPunct, ";"); err != nil {
		return nil, err
	}
	if !p.at(tPunct, ")") {
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		st.Post = x
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	st.Body = body
	return st, nil
}

func (p *parser) whileStmt() (Stmt, error) {
	p.next() // while
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body}, nil
}

func (p *parser) doWhileStmt() (Stmt, error) {
	p.next() // do
	body, err := p.statement()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tKeyword, "while"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, "("); err != nil {
		return nil, err
	}
	cond, err := p.expression()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ")"); err != nil {
		return nil, err
	}
	p.eat(tPunct, ";")
	return &WhileStmt{Cond: cond, Body: body, Do: true}, nil
}

// --- expressions (precedence climbing) ---

func (p *parser) expression() (Expr, error) {
	x, err := p.assignment()
	if err != nil {
		return nil, err
	}
	// Comma operator: evaluate left, yield right.
	for p.at(tPunct, ",") {
		p.next()
		r, err := p.assignment()
		if err != nil {
			return nil, err
		}
		x = &Binary{Op: ",", L: x, R: r}
	}
	return x, nil
}

func (p *parser) assignment() (Expr, error) {
	// Arrow functions: ident => ... or (params) => ...
	if fn, ok, err := p.tryArrow(); err != nil {
		return nil, err
	} else if ok {
		return fn, nil
	}
	left, err := p.ternary()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "+=", "-=", "*=", "/=", "%="} {
		if p.at(tPunct, op) {
			switch left.(type) {
			case *Ident, *Member, *Index:
			default:
				return nil, p.errHere("invalid assignment target")
			}
			p.next()
			val, err := p.assignment()
			if err != nil {
				return nil, err
			}
			return &Assign{Op: op, Target: left, Value: val}, nil
		}
	}
	return left, nil
}

// tryArrow detects and parses arrow functions with bounded lookahead.
func (p *parser) tryArrow() (Expr, bool, error) {
	start := p.pos
	if p.at(tIdent, "") && p.toks[p.pos+1].kind == tPunct && p.toks[p.pos+1].text == "=>" {
		name := p.next().text
		p.next() // =>
		body, err := p.arrowBody()
		if err != nil {
			return nil, false, err
		}
		return &FuncLit{Params: []string{name}, Body: body}, true, nil
	}
	if p.at(tPunct, "(") {
		// Scan ahead for the matching ")" followed by "=>".
		depth := 0
		i := p.pos
		for ; i < len(p.toks); i++ {
			tt := p.toks[i]
			if tt.kind == tPunct && tt.text == "(" {
				depth++
			} else if tt.kind == tPunct && tt.text == ")" {
				depth--
				if depth == 0 {
					break
				}
			} else if tt.kind == tEOF {
				break
			}
		}
		if i+1 < len(p.toks) && p.toks[i+1].kind == tPunct && p.toks[i+1].text == "=>" {
			p.next() // (
			var params []string
			for !p.at(tPunct, ")") {
				tok, err := p.expect(tIdent, "")
				if err != nil {
					p.pos = start
					return nil, false, err
				}
				params = append(params, tok.text)
				if !p.eat(tPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, false, err
			}
			p.next() // =>
			body, err := p.arrowBody()
			if err != nil {
				return nil, false, err
			}
			return &FuncLit{Params: params, Body: body}, true, nil
		}
	}
	return nil, false, nil
}

func (p *parser) arrowBody() ([]Stmt, error) {
	if p.at(tPunct, "{") {
		b, err := p.block()
		if err != nil {
			return nil, err
		}
		return b.(*BlockStmt).Body, nil
	}
	x, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return []Stmt{&ReturnStmt{X: x}}, nil
}

func (p *parser) ternary() (Expr, error) {
	cond, err := p.binaryExpr(0)
	if err != nil {
		return nil, err
	}
	if !p.eat(tPunct, "?") {
		return cond, nil
	}
	then, err := p.assignment()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tPunct, ":"); err != nil {
		return nil, err
	}
	els, err := p.assignment()
	if err != nil {
		return nil, err
	}
	return &Cond{Test: cond, Then: then, Else: els}, nil
}

// binary operator precedence table, low to high.
var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"|":  3,
	"^":  4,
	"&":  5,
	"==": 6, "!=": 6, "===": 6, "!==": 6,
	"<": 7, ">": 7, "<=": 7, ">=": 7, "in": 7,
	"<<": 8, ">>": 8,
	"+": 9, "-": 9,
	"*": 10, "/": 10, "%": 10,
}

func (p *parser) binaryExpr(minPrec int) (Expr, error) {
	left, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		var op string
		if t.kind == tPunct {
			op = t.text
		} else if t.kind == tKeyword && t.text == "in" {
			op = "in"
		} else {
			return left, nil
		}
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return left, nil
		}
		p.next()
		right, err := p.binaryExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		left = &Binary{Op: op, L: left, R: right}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tPunct && (t.text == "!" || t.text == "-" || t.text == "+" || t.text == "~" || t.text == "++" || t.text == "--") {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: t.text, X: x}, nil
	}
	if t.kind == tKeyword && t.text == "typeof" {
		p.next()
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "typeof", X: x}, nil
	}
	if t.kind == tKeyword && t.text == "new" {
		p.next()
		callee, err := p.memberChain(nil)
		if err != nil {
			return nil, err
		}
		// Split a trailing call off the chain for the constructor args.
		if call, ok := callee.(*Call); ok {
			return p.postfixOps(&NewExpr{Fn: call.Fn, Args: call.Args})
		}
		return p.postfixOps(&NewExpr{Fn: callee})
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	x, err := p.memberChain(nil)
	if err != nil {
		return nil, err
	}
	return p.postfixOps(x)
}

func (p *parser) postfixOps(x Expr) (Expr, error) {
	for {
		t := p.cur()
		if t.kind == tPunct && (t.text == "++" || t.text == "--") {
			p.next()
			x = &Postfix{Op: t.text, X: x}
			continue
		}
		return x, nil
	}
}

// memberChain parses a primary expression followed by any sequence of
// member access, indexing, and calls.
func (p *parser) memberChain(base Expr) (Expr, error) {
	var x Expr
	var err error
	if base != nil {
		x = base
	} else {
		x, err = p.primary()
		if err != nil {
			return nil, err
		}
	}
	for {
		switch {
		case p.at(tPunct, "."):
			p.next()
			t := p.cur()
			if t.kind != tIdent && t.kind != tKeyword {
				return nil, p.errHere("expected property name after '.'")
			}
			p.next()
			x = &Member{X: x, Name: t.text}
		case p.at(tPunct, "["):
			p.next()
			idx, err := p.expression()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tPunct, "]"); err != nil {
				return nil, err
			}
			x = &Index{X: x, I: idx}
		case p.at(tPunct, "("):
			p.next()
			var args []Expr
			for !p.at(tPunct, ")") {
				a, err := p.assignment()
				if err != nil {
					return nil, err
				}
				args = append(args, a)
				if !p.eat(tPunct, ",") {
					break
				}
			}
			if _, err := p.expect(tPunct, ")"); err != nil {
				return nil, err
			}
			x = &Call{Fn: x, Args: args}
		default:
			return x, nil
		}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tNumber:
		p.next()
		var v float64
		var err error
		if strings.HasPrefix(t.text, "0x") || strings.HasPrefix(t.text, "0X") {
			var iv int64
			iv, err = strconv.ParseInt(t.text[2:], 16, 64)
			v = float64(iv)
		} else {
			v, err = strconv.ParseFloat(t.text, 64)
		}
		if err != nil {
			return nil, &SyntaxError{t.line, t.col, "bad number literal"}
		}
		return &NumberLit{Value: v}, nil
	case t.kind == tString:
		p.next()
		return &StringLit{Value: t.text}, nil
	case t.kind == tKeyword && (t.text == "true" || t.text == "false"):
		p.next()
		return &BoolLit{Value: t.text == "true"}, nil
	case t.kind == tKeyword && t.text == "null":
		p.next()
		return &NullLit{}, nil
	case t.kind == tKeyword && t.text == "undefined":
		p.next()
		return &UndefinedLit{}, nil
	case t.kind == tKeyword && t.text == "function":
		p.next()
		name := ""
		if p.at(tIdent, "") {
			name = p.next().text
		}
		return p.funcRest(name)
	case t.kind == tIdent:
		p.next()
		return &Ident{Name: t.text}, nil
	case t.kind == tPunct && t.text == "(":
		p.next()
		x, err := p.expression()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.kind == tPunct && t.text == "[":
		p.next()
		arr := &ArrayLit{}
		for !p.at(tPunct, "]") {
			e, err := p.assignment()
			if err != nil {
				return nil, err
			}
			arr.Elems = append(arr.Elems, e)
			if !p.eat(tPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tPunct, "]"); err != nil {
			return nil, err
		}
		return arr, nil
	case t.kind == tPunct && t.text == "{":
		p.next()
		obj := &ObjectLit{}
		for !p.at(tPunct, "}") {
			kt := p.cur()
			var key string
			switch kt.kind {
			case tIdent, tKeyword, tString, tNumber:
				key = kt.text
				p.next()
			default:
				return nil, p.errHere("expected object key")
			}
			if _, err := p.expect(tPunct, ":"); err != nil {
				return nil, err
			}
			v, err := p.assignment()
			if err != nil {
				return nil, err
			}
			obj.Keys = append(obj.Keys, key)
			obj.Values = append(obj.Values, v)
			if !p.eat(tPunct, ",") {
				break
			}
		}
		if _, err := p.expect(tPunct, "}"); err != nil {
			return nil, err
		}
		return obj, nil
	}
	return nil, &SyntaxError{t.line, t.col, fmt.Sprintf("unexpected token %s", t)}
}
