package jsvm

import (
	"strings"
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string) Value {
	t.Helper()
	in := New(Options{})
	v, err := in.RunSource(src)
	if err != nil {
		t.Fatalf("run %q: %v", src, err)
	}
	return v
}

func runErr(t *testing.T, src string) error {
	t.Helper()
	in := New(Options{})
	_, err := in.RunSource(src)
	if err == nil {
		t.Fatalf("expected error for %q", src)
	}
	return err
}

func TestArithmetic(t *testing.T) {
	cases := map[string]float64{
		"1 + 2":             3,
		"10 - 4":            6,
		"6 * 7":             42,
		"9 / 2":             4.5,
		"10 % 3":            1,
		"2 + 3 * 4":         14,
		"(2 + 3) * 4":       20,
		"-5 + 2":            -3,
		"1 + 2 * 3 - 4 / 2": 5,
		"0x10 + 1":          17,
		"1e3 + 0.5":         1000.5,
		"7 & 3":             3,
		"4 | 1":             5,
		"5 ^ 1":             4,
		"1 << 4":            16,
		"256 >> 4":          16,
		"~0":                -1,
	}
	for src, want := range cases {
		if got := run(t, src); got.Num() != want {
			t.Fatalf("%s = %v, want %v", src, got.Num(), want)
		}
	}
}

func TestStringOps(t *testing.T) {
	if got := run(t, `'abc' + 'def'`); got.Str() != "abcdef" {
		t.Fatalf("concat: %q", got.Str())
	}
	if got := run(t, `'n=' + 42`); got.Str() != "n=42" {
		t.Fatalf("mixed concat: %q", got.Str())
	}
	if got := run(t, `'hello'.length`); got.Num() != 5 {
		t.Fatal("length")
	}
	if got := run(t, `'hello'.charCodeAt(1)`); got.Num() != 101 {
		t.Fatal("charCodeAt")
	}
	if got := run(t, `'hello world'.indexOf('world')`); got.Num() != 6 {
		t.Fatal("indexOf")
	}
	if got := run(t, `'Hello'.toUpperCase()`); got.Str() != "HELLO" {
		t.Fatal("toUpperCase")
	}
	if got := run(t, `'abcdef'.slice(1, 3)`); got.Str() != "bc" {
		t.Fatal("slice")
	}
	if got := run(t, `'abcdef'.slice(-2)`); got.Str() != "ef" {
		t.Fatal("negative slice")
	}
	if got := run(t, `'a,b,c'.split(',').length`); got.Num() != 3 {
		t.Fatal("split")
	}
	if got := run(t, `'aaa'.replace('a', 'b')`); got.Str() != "baa" {
		t.Fatal("replace replaces first only")
	}
	if got := run(t, `'ab'.repeat(3)`); got.Str() != "ababab" {
		t.Fatal("repeat")
	}
	if got := run(t, `'abc'[1]`); got.Str() != "b" {
		t.Fatal("string index")
	}
}

func TestStringEscapes(t *testing.T) {
	if got := run(t, `"a\nb"`); got.Str() != "a\nb" {
		t.Fatal("newline escape")
	}
	if got := run(t, `"A"`); got.Str() != "A" {
		t.Fatal("unicode escape")
	}
	if got := run(t, `'it\'s'`); got.Str() != "it's" {
		t.Fatal("quote escape")
	}
}

func TestVariablesAndScope(t *testing.T) {
	if got := run(t, `var x = 5; x = x + 1; x`); got.Num() != 6 {
		t.Fatal("var")
	}
	if got := run(t, `let a = 1, b = 2; a + b`); got.Num() != 3 {
		t.Fatal("multi declarator")
	}
	// Block scoping for block-declared vars.
	if got := run(t, `var x = 1; { var x = 2; } x`); got.Num() != 1 {
		// Note: our dialect gives blocks their own scope even for var;
		// scripts in this corpus do not depend on hoisting.
		t.Fatal("block scope")
	}
	if err := runErr(t, `undefinedVariable + 1`); !strings.Contains(err.Error(), "not defined") {
		t.Fatalf("unknown ident: %v", err)
	}
}

func TestControlFlow(t *testing.T) {
	if got := run(t, `var x = 0; if (1 < 2) { x = 10; } else { x = 20; } x`); got.Num() != 10 {
		t.Fatal("if")
	}
	if got := run(t, `var s = 0; for (var i = 0; i < 5; i++) { s += i; } s`); got.Num() != 10 {
		t.Fatal("for")
	}
	if got := run(t, `var s = 0; var i = 0; while (i < 4) { s += 2; i++; } s`); got.Num() != 8 {
		t.Fatal("while")
	}
	if got := run(t, `var i = 0; do { i++; } while (i < 3); i`); got.Num() != 3 {
		t.Fatal("do-while")
	}
	if got := run(t, `var s = 0; for (var i = 0; i < 10; i++) { if (i === 5) break; s = i; } s`); got.Num() != 4 {
		t.Fatal("break")
	}
	if got := run(t, `var s = 0; for (var i = 0; i < 5; i++) { if (i % 2 === 0) continue; s += i; } s`); got.Num() != 4 {
		t.Fatal("continue")
	}
	if got := run(t, `1 < 2 ? 'yes' : 'no'`); got.Str() != "yes" {
		t.Fatal("ternary")
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	if got := run(t, `function add(a, b) { return a + b; } add(2, 3)`); got.Num() != 5 {
		t.Fatal("function declaration")
	}
	if got := run(t, `var f = function(x) { return x * 2; }; f(21)`); got.Num() != 42 {
		t.Fatal("function expression")
	}
	src := `
	function counter() {
		var n = 0;
		return function() { n = n + 1; return n; };
	}
	var c = counter();
	c(); c(); c()`
	if got := run(t, src); got.Num() != 3 {
		t.Fatal("closure state")
	}
	// Recursion.
	if got := run(t, `function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(10)`); got.Num() != 55 {
		t.Fatal("recursion")
	}
	// arguments object.
	if got := run(t, `function f() { return arguments.length; } f(1, 2, 3)`); got.Num() != 3 {
		t.Fatal("arguments")
	}
}

func TestArrowFunctions(t *testing.T) {
	if got := run(t, `var f = x => x + 1; f(41)`); got.Num() != 42 {
		t.Fatal("single-param arrow")
	}
	if got := run(t, `var f = (a, b) => a * b; f(6, 7)`); got.Num() != 42 {
		t.Fatal("multi-param arrow")
	}
	if got := run(t, `var f = () => { return 9; }; f()`); got.Num() != 9 {
		t.Fatal("block-body arrow")
	}
	if got := run(t, `[1,2,3].map(x => x * x).join('-')`); got.Str() != "1-4-9" {
		t.Fatal("arrow in map")
	}
}

func TestArrays(t *testing.T) {
	if got := run(t, `[1, 2, 3].length`); got.Num() != 3 {
		t.Fatal("array length")
	}
	if got := run(t, `var a = [1]; a.push(2, 3); a.length`); got.Num() != 3 {
		t.Fatal("push")
	}
	if got := run(t, `var a = [5, 6]; a[0] + a[1]`); got.Num() != 11 {
		t.Fatal("index")
	}
	if got := run(t, `var a = []; a[3] = 9; a.length`); got.Num() != 4 {
		t.Fatal("sparse assignment extends")
	}
	if got := run(t, `['a','b','c'].join('+')`); got.Str() != "a+b+c" {
		t.Fatal("join")
	}
	if got := run(t, `[1,2,3,2].indexOf(2)`); got.Num() != 1 {
		t.Fatal("indexOf")
	}
	if got := run(t, `[1,2,3].slice(1).join('')`); got.Str() != "23" {
		t.Fatal("slice")
	}
	if got := run(t, `[1,2].concat([3,4]).length`); got.Num() != 4 {
		t.Fatal("concat")
	}
	if got := run(t, `var s = 0; [1,2,3].forEach(function(x) { s += x; }); s`); got.Num() != 6 {
		t.Fatal("forEach")
	}
	if got := run(t, `[1,2,3,4].filter(function(x) { return x % 2 === 0; }).length`); got.Num() != 2 {
		t.Fatal("filter")
	}
	if got := run(t, `[1,2,3,4].reduce(function(a, b) { return a + b; }, 0)`); got.Num() != 10 {
		t.Fatal("reduce")
	}
	if got := run(t, `[3,1,2].reverse().join('')`); got.Str() != "213" {
		t.Fatal("reverse")
	}
	if got := run(t, `Array.isArray([1]) && !Array.isArray('x')`); !got.Bool() {
		t.Fatal("Array.isArray")
	}
}

func TestObjects(t *testing.T) {
	if got := run(t, `var o = {a: 1, b: 2}; o.a + o.b`); got.Num() != 3 {
		t.Fatal("object literal")
	}
	if got := run(t, `var o = {}; o.x = 5; o['y'] = 6; o.x + o.y`); got.Num() != 11 {
		t.Fatal("property assignment")
	}
	if got := run(t, `var o = {'key with space': 1}; o['key with space']`); got.Num() != 1 {
		t.Fatal("string key")
	}
	if got := run(t, `var o = {a: 1}; 'a' in o`); !got.Bool() {
		t.Fatal("in operator")
	}
	if got := run(t, `var o = {a: 1}; o.hasOwnProperty('a') && !o.hasOwnProperty('b')`); !got.Bool() {
		t.Fatal("hasOwnProperty")
	}
	if got := run(t, `Object.keys({b: 1, a: 2}).join(',')`); got.Str() != "a,b" {
		t.Fatal("Object.keys sorted")
	}
	// Methods with this.
	if got := run(t, `var o = {n: 7, get: function() { return this.n; }}; o.get()`); got.Num() != 7 {
		t.Fatal("this binding")
	}
}

func TestNewConstructor(t *testing.T) {
	src := `
	function Point(x, y) { this.x = x; this.y = y; }
	var p = new Point(3, 4);
	p.x + p.y`
	if got := run(t, src); got.Num() != 7 {
		t.Fatal("constructor")
	}
}

func TestEqualityAndTypeof(t *testing.T) {
	cases := map[string]bool{
		`1 === 1`:                            true,
		`1 === '1'`:                          false,
		`1 == '1'`:                           true,
		`null == undefined`:                  true,
		`null === undefined`:                 false,
		`NaN === NaN`:                        false,
		`'a' !== 'b'`:                        true,
		`typeof 1 === 'number'`:              true,
		`typeof 'x' === 'string'`:            true,
		`typeof undefined === 'undefined'`:   true,
		`typeof null === 'object'`:           true,
		`typeof {} === 'object'`:             true,
		`typeof function(){} === 'function'`: true,
		`typeof notDeclared === 'undefined'`: true,
	}
	for src, want := range cases {
		if got := run(t, src); got.Bool() != want {
			t.Fatalf("%s = %v, want %v", src, got.Bool(), want)
		}
	}
}

func TestLogicalOperators(t *testing.T) {
	if got := run(t, `0 || 'fallback'`); got.Str() != "fallback" {
		t.Fatal("|| yields operand")
	}
	if got := run(t, `1 && 'second'`); got.Str() != "second" {
		t.Fatal("&& yields operand")
	}
	// Short circuit must not evaluate RHS.
	if got := run(t, `var hit = 0; function boom() { hit = 1; return true; } false && boom(); hit`); got.Num() != 0 {
		t.Fatal("&& short circuit")
	}
	if got := run(t, `var hit = 0; function boom() { hit = 1; return true; } true || boom(); hit`); got.Num() != 0 {
		t.Fatal("|| short circuit")
	}
}

func TestIncrementsAndCompound(t *testing.T) {
	if got := run(t, `var i = 5; i++; i`); got.Num() != 6 {
		t.Fatal("postfix inc")
	}
	if got := run(t, `var i = 5; var j = i++; j`); got.Num() != 5 {
		t.Fatal("postfix yields old value")
	}
	if got := run(t, `var i = 5; var j = ++i; j`); got.Num() != 6 {
		t.Fatal("prefix yields new value")
	}
	if got := run(t, `var x = 10; x += 5; x -= 3; x *= 2; x /= 4; x`); got.Num() != 6 {
		t.Fatal("compound assign")
	}
	if got := run(t, `var s = 'a'; s += 'b'; s`); got.Str() != "ab" {
		t.Fatal("string +=")
	}
	if got := run(t, `var a = [0]; a[0] += 7; a[0]`); got.Num() != 7 {
		t.Fatal("indexed compound assign")
	}
}

func TestMathBuiltins(t *testing.T) {
	if got := run(t, `Math.floor(3.7)`); got.Num() != 3 {
		t.Fatal("floor")
	}
	if got := run(t, `Math.pow(2, 10)`); got.Num() != 1024 {
		t.Fatal("pow")
	}
	if got := run(t, `Math.max(1, 9, 4)`); got.Num() != 9 {
		t.Fatal("max")
	}
	if got := run(t, `Math.abs(-4)`); got.Num() != 4 {
		t.Fatal("abs")
	}
	if got := run(t, `Math.PI > 3.14 && Math.PI < 3.15`); !got.Bool() {
		t.Fatal("PI")
	}
	v := run(t, `Math.random()`)
	if v.Num() < 0 || v.Num() >= 1 {
		t.Fatal("random range")
	}
}

func TestMathRandomDeterministic(t *testing.T) {
	in1 := New(Options{RandSeed: 99})
	in2 := New(Options{RandSeed: 99})
	v1, err1 := in1.RunSource(`Math.random() + ':' + Math.random()`)
	v2, err2 := in2.RunSource(`Math.random() + ':' + Math.random()`)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if v1.Str() != v2.Str() {
		t.Fatal("seeded random must repeat")
	}
	in3 := New(Options{RandSeed: 100})
	v3, _ := in3.RunSource(`Math.random() + ':' + Math.random()`)
	if v3.Str() == v1.Str() {
		t.Fatal("different seeds should differ")
	}
}

func TestJSONStringify(t *testing.T) {
	if got := run(t, `JSON.stringify({b: 2, a: 'x'})`); got.Str() != `{"a":"x","b":2}` {
		t.Fatalf("object: %s", got.Str())
	}
	if got := run(t, `JSON.stringify([1, 'two', true, null])`); got.Str() != `[1,"two",true,null]` {
		t.Fatalf("array: %s", got.Str())
	}
	if got := run(t, `JSON.stringify('he"llo')`); got.Str() != `"he\"llo"` {
		t.Fatalf("escaping: %s", got.Str())
	}
}

func TestConversions(t *testing.T) {
	if got := run(t, `parseInt('42px')`); got.Num() != 42 {
		t.Fatal("parseInt prefix")
	}
	if got := run(t, `parseInt('ff', 16)`); got.Num() != 255 {
		t.Fatal("parseInt base")
	}
	if got := run(t, `parseInt('0x1A')`); got.Num() != 26 {
		t.Fatal("parseInt hex literal")
	}
	if got := run(t, `isNaN(parseInt('abc'))`); !got.Bool() {
		t.Fatal("parseInt NaN")
	}
	if got := run(t, `parseFloat('3.14abc')`); got.Num() != 3.14 {
		t.Fatal("parseFloat")
	}
	if got := run(t, `String(42)`); got.Str() != "42" {
		t.Fatal("String()")
	}
	if got := run(t, `Number('7.5')`); got.Num() != 7.5 {
		t.Fatal("Number()")
	}
	if got := run(t, `(3.14159).toFixed(2)`); got.Str() != "3.14" {
		t.Fatal("toFixed")
	}
}

func TestConsoleCapture(t *testing.T) {
	in := New(Options{})
	if _, err := in.RunSource(`console.log('hello', 42)`); err != nil {
		t.Fatal(err)
	}
	if len(in.ConsoleLog) != 1 || in.ConsoleLog[0] != "hello 42" {
		t.Fatalf("console: %v", in.ConsoleLog)
	}
}

func TestThrow(t *testing.T) {
	err := runErr(t, `throw 'boom'`)
	if !strings.Contains(err.Error(), "boom") {
		t.Fatalf("throw: %v", err)
	}
}

func TestTryCatch(t *testing.T) {
	if got := run(t, `var x = 0; try { throw 'boom'; x = 1; } catch (e) { x = 2; } x`); got.Num() != 2 {
		t.Fatal("catch should run, try tail skipped")
	}
	if got := run(t, `var m = ''; try { throw 'payload'; } catch (e) { m = e; } m`); got.Str() != "payload" {
		t.Fatalf("thrown value bound: %q", got.Str())
	}
	// Runtime errors become Error-like objects.
	if got := run(t, `var n = ''; try { null.deref; } catch (e) { n = e.name; } n`); got.Str() != "Error" {
		t.Fatalf("runtime error name: %q", got.Str())
	}
	if got := run(t, `var ok = 1; try { ok = 2; } catch (e) { ok = 3; } ok`); got.Num() != 2 {
		t.Fatal("no error: catch skipped")
	}
	// Parameterless catch.
	if got := run(t, `var y = 0; try { throw 1; } catch { y = 7; } y`); got.Num() != 7 {
		t.Fatal("parameterless catch")
	}
}

func TestTryFinally(t *testing.T) {
	if got := run(t, `var log = ''; try { log += 'a'; } finally { log += 'b'; } log`); got.Str() != "ab" {
		t.Fatal("finally after clean try")
	}
	if got := run(t, `var log = ''; try { try { throw 'x'; } finally { log += 'f'; } } catch (e) { log += 'c'; } log`); got.Str() != "fc" {
		t.Fatalf("finally runs before propagation: %q", got.Str())
	}
	// Uncaught after try/finally still errors.
	err := runErr(t, `try { throw 'oops'; } finally { var z = 1; }`)
	if !strings.Contains(err.Error(), "oops") {
		t.Fatalf("propagate after finally: %v", err)
	}
}

func TestTryDoesNotCatchControlFlow(t *testing.T) {
	// return inside try must return, not be swallowed by catch.
	src := `
	function f() {
		try { return 'ret'; } catch (e) { return 'caught'; }
	}
	f()`
	if got := run(t, src); got.Str() != "ret" {
		t.Fatalf("return through try: %q", got.Str())
	}
	// break inside try must break the loop.
	src2 := `
	var n = 0;
	for (var i = 0; i < 10; i++) {
		try { if (i === 3) break; } catch (e) { n = 99; }
		n = i;
	}
	n`
	if got := run(t, src2); got.Num() != 2 {
		t.Fatalf("break through try: %v", got.Num())
	}
}

func TestNestedTryCatchRethrow(t *testing.T) {
	src := `
	var trace = '';
	try {
		try {
			throw 'inner';
		} catch (e) {
			trace += 'c1:' + e + ';';
			throw 'outer';
		}
	} catch (e2) {
		trace += 'c2:' + e2;
	}
	trace`
	if got := run(t, src); got.Str() != "c1:inner;c2:outer" {
		t.Fatalf("rethrow: %q", got.Str())
	}
}

func TestTryParseErrors(t *testing.T) {
	if _, err := Parse(`try { }`); err == nil {
		t.Fatal("bare try must not parse")
	}
	if _, err := Parse(`try { } catch (`); err == nil {
		t.Fatal("broken catch must not parse")
	}
}

func TestStepLimit(t *testing.T) {
	in := New(Options{MaxSteps: 10_000})
	_, err := in.RunSource(`while (true) { var x = 1; }`)
	if err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Fatalf("runaway loop must hit step limit: %v", err)
	}
	// Budget reset allows new scripts to run.
	in.ResetSteps()
	if _, err := in.RunSource(`1 + 1`); err != nil {
		t.Fatalf("after reset: %v", err)
	}
}

func TestSyntaxErrors(t *testing.T) {
	for _, bad := range []string{
		`var = 5`,
		`function () {`,
		`if (x`,
		`'unterminated`,
		`/* unterminated`,
		`1 +`,
		`{a: }`,
		`@invalid`,
	} {
		if _, err := Parse(bad); err == nil {
			t.Fatalf("%q should not parse", bad)
		} else if _, ok := err.(*SyntaxError); !ok {
			t.Fatalf("%q: want SyntaxError, got %T", bad, err)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
	// line comment
	var x = 1; /* block
	comment */ var y = 2;
	x + y`
	if got := run(t, src); got.Num() != 3 {
		t.Fatal("comments")
	}
}

type testHost struct {
	props map[string]Value
	sets  map[string]Value
}

func (h *testHost) HostGet(name string) (Value, bool) {
	if name == "greet" {
		return NewNative(func(this Value, args []Value) (Value, error) {
			who := "world"
			if len(args) > 0 {
				who = args[0].Str()
			}
			return String("hello " + who), nil
		}), true
	}
	v, ok := h.props[name]
	return v, ok
}

func (h *testHost) HostSet(name string, v Value) bool {
	if h.sets == nil {
		h.sets = map[string]Value{}
	}
	h.sets[name] = v
	return true
}

func TestHostObject(t *testing.T) {
	in := New(Options{})
	h := &testHost{props: map[string]Value{"version": Number(7)}}
	in.SetGlobal("host", NewHost(h))
	v, err := in.RunSource(`host.greet('vm') + ' v' + host.version`)
	if err != nil {
		t.Fatal(err)
	}
	if v.Str() != "hello vm v7" {
		t.Fatalf("host interop: %q", v.Str())
	}
	if _, err := in.RunSource(`host.mode = 'fast'`); err != nil {
		t.Fatal(err)
	}
	if h.sets["mode"].Str() != "fast" {
		t.Fatal("host set")
	}
	// Missing property reads as undefined.
	v, err = in.RunSource(`typeof host.nope`)
	if err != nil || v.Str() != "undefined" {
		t.Fatalf("missing host prop: %v %v", v.Str(), err)
	}
}

func TestNullPropertyAccessErrors(t *testing.T) {
	if err := runErr(t, `var x = null; x.foo`); !strings.Contains(err.Error(), "cannot read") {
		t.Fatalf("null deref: %v", err)
	}
	runErr(t, `undefined.bar`)
}

func TestCommaOperator(t *testing.T) {
	if got := run(t, `var x = (1, 2, 3); x`); got.Num() != 3 {
		t.Fatal("comma")
	}
}

func TestNumberFormatting(t *testing.T) {
	if got := run(t, `'' + 42`); got.Str() != "42" {
		t.Fatal("int format")
	}
	if got := run(t, `'' + 4.5`); got.Str() != "4.5" {
		t.Fatal("float format")
	}
	if got := run(t, `'' + (0/0)`); got.Str() != "NaN" {
		t.Fatal("NaN format")
	}
	if got := run(t, `'' + (1/0)`); got.Str() != "Infinity" {
		t.Fatal("Infinity format")
	}
}

// Property: arithmetic on integers matches Go semantics.
func TestArithmeticProperty(t *testing.T) {
	in := New(Options{})
	f := func(a, b int16) bool {
		in.ResetSteps()
		src := "(" + Number(float64(a)).Str() + ") + (" + Number(float64(b)).Str() + ")"
		v, err := in.RunSource(src)
		return err == nil && v.Num() == float64(a)+float64(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: JSONStringify always emits balanced braces for plain objects.
func TestStringifyProperty(t *testing.T) {
	f := func(keys []string, nums []float64) bool {
		obj := NewObject()
		for i, k := range keys {
			v := 0.0
			if i < len(nums) {
				v = nums[i]
			}
			obj.Object().Props[k] = Number(v)
		}
		s := JSONStringify(obj)
		return strings.HasPrefix(s, "{") && strings.HasSuffix(s, "}")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkInterpFib(b *testing.B) {
	prog, err := Parse(`function fib(n) { if (n < 2) return n; return fib(n-1) + fib(n-2); } fib(15)`)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		in := New(Options{})
		if _, err := in.Run(prog); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkParse(b *testing.B) {
	src := `
	function fingerprint(doc) {
		var canvas = doc.createElement('canvas');
		canvas.width = 280; canvas.height = 60;
		var ctx = canvas.getContext('2d');
		ctx.textBaseline = 'alphabetic';
		ctx.fillStyle = '#f60';
		ctx.fillRect(125, 1, 62, 20);
		for (var i = 0; i < 3; i++) { ctx.fillText('test', 2 + i, 15); }
		return canvas.toDataURL();
	}`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}
