package jsvm

import (
	"math"
	"strconv"
	"strings"
)

// interpArrayMethod serves the array methods that must re-enter the
// interpreter to run user callbacks.
func (in *Interp) interpArrayMethod(name string) Value {
	switch name {
	case "forEach":
		return NewNative(func(this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || len(args) == 0 {
				return Undefined(), nil
			}
			for i, e := range o.Elems {
				if _, err := in.CallValue(args[0], Undefined(), []Value{e, Number(float64(i)), this}); err != nil {
					return Undefined(), err
				}
			}
			return Undefined(), nil
		})
	case "map":
		return NewNative(func(this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || len(args) == 0 {
				return NewArray(), nil
			}
			out := make([]Value, len(o.Elems))
			for i, e := range o.Elems {
				v, err := in.CallValue(args[0], Undefined(), []Value{e, Number(float64(i)), this})
				if err != nil {
					return Undefined(), err
				}
				out[i] = v
			}
			return NewArray(out...), nil
		})
	case "filter":
		return NewNative(func(this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || len(args) == 0 {
				return NewArray(), nil
			}
			var out []Value
			for i, e := range o.Elems {
				keep, err := in.CallValue(args[0], Undefined(), []Value{e, Number(float64(i)), this})
				if err != nil {
					return Undefined(), err
				}
				if keep.Bool() {
					out = append(out, e)
				}
			}
			return NewArray(out...), nil
		})
	case "reduce":
		return NewNative(func(this Value, args []Value) (Value, error) {
			o := this.Object()
			if o == nil || len(args) == 0 {
				return Undefined(), rtErrf("reduce needs a callback")
			}
			acc := Undefined()
			start := 0
			if len(args) > 1 {
				acc = args[1]
			} else {
				if len(o.Elems) == 0 {
					return Undefined(), rtErrf("reduce of empty array with no initial value")
				}
				acc = o.Elems[0]
				start = 1
			}
			for i := start; i < len(o.Elems); i++ {
				v, err := in.CallValue(args[0], Undefined(), []Value{acc, o.Elems[i], Number(float64(i)), this})
				if err != nil {
					return Undefined(), err
				}
				acc = v
			}
			return acc, nil
		})
	}
	return Undefined()
}

// nextRandom advances the deterministic Math.random stream (SplitMix64).
func (in *Interp) nextRandom() float64 {
	in.rands += 0x9E3779B97F4A7C15
	z := in.rands
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	z ^= z >> 31
	return float64(z>>11) / (1 << 53)
}

func installBuiltins(in *Interp) {
	// Math
	mathObj := NewObject()
	mp := mathObj.Object().Props
	mp["PI"] = Number(math.Pi)
	mp["E"] = Number(math.E)
	m1 := func(f func(float64) float64) Value {
		return NewNative(func(this Value, args []Value) (Value, error) {
			if len(args) == 0 {
				return Number(math.NaN()), nil
			}
			return Number(f(args[0].Num())), nil
		})
	}
	mp["floor"] = m1(math.Floor)
	mp["ceil"] = m1(math.Ceil)
	mp["round"] = m1(func(f float64) float64 { return math.Floor(f + 0.5) })
	mp["abs"] = m1(math.Abs)
	mp["sqrt"] = m1(math.Sqrt)
	mp["sin"] = m1(math.Sin)
	mp["cos"] = m1(math.Cos)
	mp["tan"] = m1(math.Tan)
	mp["atan"] = m1(math.Atan)
	mp["exp"] = m1(math.Exp)
	mp["log"] = m1(math.Log)
	mp["pow"] = NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Number(math.NaN()), nil
		}
		return Number(math.Pow(args[0].Num(), args[1].Num())), nil
	})
	mp["atan2"] = NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) < 2 {
			return Number(math.NaN()), nil
		}
		return Number(math.Atan2(args[0].Num(), args[1].Num())), nil
	})
	mp["max"] = NewNative(func(this Value, args []Value) (Value, error) {
		out := math.Inf(-1)
		for _, a := range args {
			out = math.Max(out, a.Num())
		}
		return Number(out), nil
	})
	mp["min"] = NewNative(func(this Value, args []Value) (Value, error) {
		out := math.Inf(1)
		for _, a := range args {
			out = math.Min(out, a.Num())
		}
		return Number(out), nil
	})
	mp["random"] = NewNative(func(this Value, args []Value) (Value, error) {
		return Number(in.nextRandom()), nil
	})
	in.SetGlobal("Math", mathObj)

	// JSON
	jsonObj := NewObject()
	jsonObj.Object().Props["stringify"] = NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String("undefined"), nil
		}
		return String(JSONStringify(args[0])), nil
	})
	in.SetGlobal("JSON", jsonObj)

	// Conversions and predicates.
	in.SetGlobal("String", NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return String(""), nil
		}
		return String(args[0].Str()), nil
	}))
	in.SetGlobal("Number", NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(0), nil
		}
		return Number(args[0].Num()), nil
	}))
	in.SetGlobal("Boolean", NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Boolean(false), nil
		}
		return Boolean(args[0].Bool()), nil
	}))
	in.SetGlobal("parseInt", NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		s := strings.TrimSpace(args[0].Str())
		base := 10
		if len(args) > 1 && args[1].Num() != 0 {
			base = int(args[1].Num())
		}
		if strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X") {
			s = s[2:]
			base = 16
		}
		// Consume the longest valid prefix, as parseInt does.
		end := 0
		if end < len(s) && (s[end] == '+' || s[end] == '-') {
			end++
		}
		for end < len(s) && digitVal(s[end]) < base {
			end++
		}
		if end == 0 || (end == 1 && (s[0] == '+' || s[0] == '-')) {
			return Number(math.NaN()), nil
		}
		iv, err := strconv.ParseInt(s[:end], base, 64)
		if err != nil {
			return Number(math.NaN()), nil
		}
		return Number(float64(iv)), nil
	}))
	in.SetGlobal("parseFloat", NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Number(math.NaN()), nil
		}
		s := strings.TrimSpace(args[0].Str())
		end := 0
		seenDot, seenDigit := false, false
		if end < len(s) && (s[end] == '+' || s[end] == '-') {
			end++
		}
		for end < len(s) {
			c := s[end]
			if c >= '0' && c <= '9' {
				seenDigit = true
				end++
			} else if c == '.' && !seenDot {
				seenDot = true
				end++
			} else {
				break
			}
		}
		if !seenDigit {
			return Number(math.NaN()), nil
		}
		f, err := strconv.ParseFloat(s[:end], 64)
		if err != nil {
			return Number(math.NaN()), nil
		}
		return Number(f), nil
	}))
	in.SetGlobal("isNaN", NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 {
			return Boolean(true), nil
		}
		return Boolean(math.IsNaN(args[0].Num())), nil
	}))
	in.SetGlobal("NaN", Number(math.NaN()))
	in.SetGlobal("Infinity", Number(math.Inf(1)))

	// Object.keys — enough of Object for the scripts in this corpus.
	objectNS := NewObject()
	objectNS.Object().Props["keys"] = NewNative(func(this Value, args []Value) (Value, error) {
		if len(args) == 0 || args[0].Object() == nil || args[0].Object().Props == nil {
			return NewArray(), nil
		}
		keys := make([]string, 0, len(args[0].Object().Props))
		for k := range args[0].Object().Props {
			keys = append(keys, k)
		}
		// Stable order for determinism.
		sortStrings(keys)
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = String(k)
		}
		return NewArray(out...), nil
	})
	in.SetGlobal("Object", objectNS)

	// Array.isArray
	arrayNS := NewObject()
	arrayNS.Object().Props["isArray"] = NewNative(func(this Value, args []Value) (Value, error) {
		return Boolean(len(args) > 0 && args[0].IsArray()), nil
	})
	in.SetGlobal("Array", arrayNS)

	// console.log → captured for tests and crawler diagnostics.
	consoleObj := NewObject()
	consoleObj.Object().Props["log"] = NewNative(func(this Value, args []Value) (Value, error) {
		parts := make([]string, len(args))
		for i, a := range args {
			parts[i] = a.Str()
		}
		in.ConsoleLog = append(in.ConsoleLog, strings.Join(parts, " "))
		return Undefined(), nil
	})
	consoleObj.Object().Props["error"] = consoleObj.Object().Props["log"]
	consoleObj.Object().Props["warn"] = consoleObj.Object().Props["log"]
	in.SetGlobal("console", consoleObj)
}

func digitVal(c byte) int {
	switch {
	case c >= '0' && c <= '9':
		return int(c - '0')
	case c >= 'a' && c <= 'z':
		return int(c-'a') + 10
	case c >= 'A' && c <= 'Z':
		return int(c-'A') + 10
	}
	return 99
}

// sortStrings is a tiny insertion sort to avoid importing sort for one
// hot-path-free call site.
func sortStrings(xs []string) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}
