package cluster

import (
	"fmt"
	"reflect"
	"sort"
	"testing"

	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

// fakeSite builds an analyzed site with the given fingerprintable hashes.
func fakeSite(domain string, cohort web.Cohort, hashes ...string) detect.SiteCanvases {
	s := detect.SiteCanvases{Domain: domain, Cohort: cohort, OK: true}
	for i, h := range hashes {
		s.All = append(s.All, detect.CanvasInfo{
			ScriptURL:       "https://" + domain + "/s.js",
			Hash:            h,
			Fingerprintable: true,
			DataURL:         "data:image/png;base64,x" + h,
			W:               100, H: 100,
		})
		_ = i
	}
	return s
}

func TestBuildGroups(t *testing.T) {
	sites := []detect.SiteCanvases{
		fakeSite("a.com", web.Popular, "h1", "h2"),
		fakeSite("b.com", web.Popular, "h1"),
		fakeSite("c.com", web.Tail, "h1"),
		fakeSite("d.com", web.Tail, "h3"),
	}
	cl := Build(sites)
	if len(cl.Groups) != 3 {
		t.Fatalf("groups = %d", len(cl.Groups))
	}
	g1 := cl.GroupByHash("h1")
	if g1.SiteCount(web.Popular) != 2 || g1.SiteCount(web.Tail) != 1 {
		t.Fatalf("h1 counts: %+v", g1.Sites)
	}
	if g1.TotalSites() != 3 || g1.Events != 3 {
		t.Fatalf("h1 totals: %d sites %d events", g1.TotalSites(), g1.Events)
	}
	// Sorted by popular count: h1 first.
	if cl.Groups[0].Hash != "h1" {
		t.Fatalf("sort order: %s", cl.Groups[0].Hash)
	}
	if got := cl.GroupsOfSite("a.com"); len(got) != 2 {
		t.Fatalf("a.com groups = %d", len(got))
	}
}

func TestEventsCountDuplicates(t *testing.T) {
	sites := []detect.SiteCanvases{
		fakeSite("a.com", web.Popular, "h1", "h1", "h1"),
	}
	cl := Build(sites)
	g := cl.GroupByHash("h1")
	if g.Events != 3 {
		t.Fatalf("events = %d", g.Events)
	}
	if g.SiteCount(web.Popular) != 1 {
		t.Fatal("same site counted once")
	}
}

func TestUniqueCanvases(t *testing.T) {
	sites := []detect.SiteCanvases{
		fakeSite("a.com", web.Popular, "h1", "h2"),
		fakeSite("b.com", web.Tail, "h2", "h3"),
	}
	cl := Build(sites)
	if cl.UniqueCanvases(web.Popular) != 2 {
		t.Fatal("popular unique")
	}
	if cl.UniqueCanvases(web.Tail) != 2 {
		t.Fatal("tail unique")
	}
}

func TestNonFingerprintableIgnored(t *testing.T) {
	s := detect.SiteCanvases{Domain: "x.com", Cohort: web.Popular, OK: true}
	s.All = append(s.All, detect.CanvasInfo{Hash: "h9", Fingerprintable: false, Exclude: detect.SmallCanvas})
	cl := Build([]detect.SiteCanvases{s})
	if len(cl.Groups) != 0 {
		t.Fatal("excluded canvases must not form groups")
	}
}

func TestFailedSitesIgnored(t *testing.T) {
	s := fakeSite("down.com", web.Popular, "h1")
	s.OK = false
	cl := Build([]detect.SiteCanvases{s})
	if len(cl.Groups) != 0 {
		t.Fatal("failed crawls must not contribute")
	}
}

func TestSitesCoveredByTop(t *testing.T) {
	sites := []detect.SiteCanvases{
		fakeSite("a.com", web.Popular, "big"),
		fakeSite("b.com", web.Popular, "big"),
		fakeSite("c.com", web.Popular, "big", "small"),
		fakeSite("d.com", web.Popular, "rare"),
	}
	cl := Build(sites)
	covered, total := cl.SitesCoveredByTop(1, web.Popular)
	if total != 4 || covered != 3 {
		t.Fatalf("top-1 coverage = %d/%d", covered, total)
	}
	covered, _ = cl.SitesCoveredByTop(10, web.Popular)
	if covered != 4 {
		t.Fatal("top-10 should cover all")
	}
}

func TestOverlap(t *testing.T) {
	sites := []detect.SiteCanvases{
		fakeSite("p1.com", web.Popular, "shared"),
		fakeSite("t1.com", web.Tail, "shared"),
		fakeSite("t2.com", web.Tail, "tailonly1"),
		fakeSite("t3.com", web.Tail, "tailonly1"),
		fakeSite("t4.com", web.Tail, "tailonly2"),
	}
	cl := Build(sites)
	st := cl.Overlap()
	if st.TailFPSites != 4 {
		t.Fatalf("tail fp sites = %d", st.TailFPSites)
	}
	if st.TailSharingWithTop != 1 {
		t.Fatalf("sharing = %d", st.TailSharingWithTop)
	}
	if st.LargestTailOnlyGroup != 2 || st.SecondTailOnlyGroup != 1 {
		t.Fatalf("tail-only sizes: %+v", st.TailOnlyGroupSizes)
	}
}

func TestPerSiteCounts(t *testing.T) {
	sites := []detect.SiteCanvases{
		fakeSite("a.com", web.Popular, "h1", "h2", "h3"),
		fakeSite("b.com", web.Popular, "h1"),
		fakeSite("c.com", web.Tail, "h1"),
		{Domain: "none.com", Cohort: web.Popular, OK: true},
	}
	counts := PerSiteCounts(sites, web.Popular)
	if len(counts) != 2 {
		t.Fatalf("fp sites = %d", len(counts))
	}
	sum := counts[0] + counts[1]
	if sum != 4 {
		t.Fatalf("events = %v", sum)
	}
}

func TestInconsistencyCheckStats(t *testing.T) {
	sites := []detect.SiteCanvases{
		fakeSite("double.com", web.Popular, "h1", "h1"),
		fakeSite("single.com", web.Popular, "h2"),
	}
	checking, total := InconsistencyCheckStats(sites, web.Popular)
	if total != 2 || checking != 1 {
		t.Fatalf("check stats = %d/%d", checking, total)
	}
}

func TestEndToEndClustering(t *testing.T) {
	w := web.Generate(web.Config{Seed: 41, Scale: 0.05, TrancoMax: 1_000_000})
	all := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	res := crawler.Crawl(w, all, crawler.DefaultConfig())
	sites := detect.AnalyzeAll(res.Pages)
	cl := Build(sites)

	if len(cl.Groups) == 0 {
		t.Fatal("no groups")
	}
	// The same vendor canvas on many sites must form one group: the top
	// group should span a meaningful share of fingerprinting sites.
	top := cl.Groups[0]
	if top.SiteCount(web.Popular) < 10 {
		t.Fatalf("top group too small: %d", top.SiteCount(web.Popular))
	}
	// Unique canvases should land near scale×(504, 288) — loose bounds.
	up, ut := cl.UniqueCanvases(web.Popular), cl.UniqueCanvases(web.Tail)
	if up < 10 || up > 80 {
		t.Fatalf("popular unique canvases = %d", up)
	}
	if ut < 8 || ut > 60 {
		t.Fatalf("tail unique canvases = %d", ut)
	}
	// Overlap: the great majority of tail fingerprinting sites share a
	// canvas with a popular site (paper: 91.4%).
	ov := cl.Overlap()
	if ov.TailFPSites == 0 {
		t.Fatal("no tail fp sites")
	}
	frac := float64(ov.TailSharingWithTop) / float64(ov.TailFPSites)
	if frac < 0.6 {
		t.Fatalf("tail overlap = %.2f, want high", frac)
	}
	// Double-render checks appear on a sizable share of fp sites (~45%).
	checking, total := InconsistencyCheckStats(sites, web.Popular)
	if total == 0 {
		t.Fatal("no fp sites")
	}
	cf := float64(checking) / float64(total)
	if cf < 0.2 || cf > 0.8 {
		t.Fatalf("inconsistency-check fraction = %.2f, want ~0.45", cf)
	}
}

// TestBuildDeterministicFinalization pins that group finalization no
// longer depends on map iteration order: groups tied on popular-site
// count must come out hash-sorted, and the cluster.assign event
// sequence must be identical across repeated builds of the same input.
// Before the sorted-hash-slice fix, build() walked cl.byHash directly
// and only the final tiebreak — not construction — kept order stable.
func TestBuildDeterministicFinalization(t *testing.T) {
	// 40 single-site groups: every group ties at one popular site, so
	// ordering rests entirely on the hash tiebreak.
	var sites []detect.SiteCanvases
	for i := 0; i < 40; i++ {
		sites = append(sites, fakeSite(fmt.Sprintf("s%02d.com", i), web.Popular, fmt.Sprintf("h%02d", 39-i)))
	}
	var refOrder []string
	var refEvents []event.Event
	for trial := 0; trial < 20; trial++ {
		sink := event.NewSink(0)
		cl := BuildEvents(sites, sink)
		var order []string
		for _, g := range cl.Groups {
			order = append(order, g.Hash)
		}
		if !sort.StringsAreSorted(order) {
			t.Fatalf("trial %d: tied groups not hash-sorted: %v", trial, order)
		}
		evs := sink.Events()
		if trial == 0 {
			refOrder, refEvents = order, evs
			continue
		}
		if !reflect.DeepEqual(order, refOrder) {
			t.Fatalf("trial %d: group order drifted:\n got %v\nwant %v", trial, order, refOrder)
		}
		if !reflect.DeepEqual(evs, refEvents) {
			t.Fatalf("trial %d: cluster.assign event sequence drifted", trial)
		}
	}
}
