// Package cluster implements the paper's central technique (§4.2):
// grouping identical test canvases across sites. Because rendering is
// deterministic per machine and the crawler visits every site with the
// same browser and machine, every site running a given fingerprinting
// script yields byte-identical toDataURL output — so grouping by canvas
// hash "fingerprints the fingerprinters".
package cluster

import (
	"sort"

	"canvassing/internal/detect"
	"canvassing/internal/obs/event"
	"canvassing/internal/web"
)

// Group is one set of identical fingerprintable canvases.
type Group struct {
	// Hash identifies the canvas bytes.
	Hash string
	// Sample is one representative canvas (script URL, dimensions...).
	Sample detect.CanvasInfo
	// Sites maps cohort → the distinct site domains the canvas appeared
	// on, sorted.
	Sites map[web.Cohort][]string
	// Events counts extraction events (≥ site count; double renders and
	// re-extractions inflate it).
	Events int
	// ScriptURLs are the distinct script URLs that produced this canvas,
	// sorted (attribution uses them).
	ScriptURLs []string
}

// SiteCount returns the number of distinct sites in a cohort.
func (g *Group) SiteCount(c web.Cohort) int { return len(g.Sites[c]) }

// TotalSites returns distinct sites across the crawl cohorts.
func (g *Group) TotalSites() int {
	return len(g.Sites[web.Popular]) + len(g.Sites[web.Tail])
}

// Clustering is the grouping result over a crawl.
type Clustering struct {
	// Groups sorted by popular-site count descending, ties by hash.
	Groups []*Group

	byHash   map[string]*Group
	bySite   map[string][]*Group
	siteInfo map[string]siteMeta
}

type siteMeta struct {
	cohort web.Cohort
	rank   int
}

// Build groups the fingerprintable canvases of the analyzed sites.
func Build(sites []detect.SiteCanvases) *Clustering {
	return BuildEvents(sites, nil)
}

// BuildEvents is Build with decision provenance: every (group, site)
// membership assignment is recorded to sink (nil disables), in group
// order, so a bundle diff can pinpoint which sites moved between
// canvas groups across runs.
func BuildEvents(sites []detect.SiteCanvases, sink *event.Sink) *Clustering {
	cl := build(sites)
	if sink != nil {
		for _, g := range cl.Groups {
			for _, cohort := range []web.Cohort{web.Popular, web.Tail, web.Demo} {
				for _, domain := range g.Sites[cohort] {
					sink.Record(event.Event{
						Kind:    event.ClusterAssign,
						Site:    domain,
						Subject: g.Hash,
						Verdict: "member",
						Detail:  cohort.String(),
					})
				}
			}
		}
	}
	return cl
}

func build(sites []detect.SiteCanvases) *Clustering {
	cl := &Clustering{
		byHash:   map[string]*Group{},
		bySite:   map[string][]*Group{},
		siteInfo: map[string]siteMeta{},
	}
	siteSeen := map[string]map[string]bool{} // hash -> site set
	scriptSeen := map[string]map[string]bool{}
	for i := range sites {
		s := &sites[i]
		if !s.OK {
			continue
		}
		cl.siteInfo[s.Domain] = siteMeta{cohort: s.Cohort, rank: s.Rank}
		for _, c := range s.All {
			if !c.Fingerprintable {
				continue
			}
			g := cl.byHash[c.Hash]
			if g == nil {
				g = &Group{
					Hash:   c.Hash,
					Sample: c,
					Sites:  map[web.Cohort][]string{},
				}
				cl.byHash[c.Hash] = g
				siteSeen[c.Hash] = map[string]bool{}
				scriptSeen[c.Hash] = map[string]bool{}
			}
			g.Events++
			if !siteSeen[c.Hash][s.Domain] {
				siteSeen[c.Hash][s.Domain] = true
				g.Sites[s.Cohort] = append(g.Sites[s.Cohort], s.Domain)
				cl.bySite[s.Domain] = append(cl.bySite[s.Domain], g)
			}
			if !scriptSeen[c.Hash][c.ScriptURL] {
				scriptSeen[c.Hash][c.ScriptURL] = true
				g.ScriptURLs = append(g.ScriptURLs, c.ScriptURL)
			}
		}
	}
	// Finalize groups over a sorted hash slice, not the byHash map:
	// map iteration order varies run to run, and although the final
	// sort below breaks most ties, determinism of the group slice must
	// hold by construction, not by the tiebreak happening to be total.
	hashes := make([]string, 0, len(cl.byHash))
	for h := range cl.byHash {
		hashes = append(hashes, h)
	}
	sort.Strings(hashes)
	for _, h := range hashes {
		g := cl.byHash[h]
		for _, cohort := range []web.Cohort{web.Popular, web.Tail, web.Demo} {
			sort.Strings(g.Sites[cohort])
		}
		sort.Strings(g.ScriptURLs)
		cl.Groups = append(cl.Groups, g)
	}
	sort.Slice(cl.Groups, func(i, j int) bool {
		a, b := cl.Groups[i], cl.Groups[j]
		if a.SiteCount(web.Popular) != b.SiteCount(web.Popular) {
			return a.SiteCount(web.Popular) > b.SiteCount(web.Popular)
		}
		return a.Hash < b.Hash
	})
	return cl
}

// GroupByHash returns the group for a canvas hash, or nil.
func (c *Clustering) GroupByHash(hash string) *Group { return c.byHash[hash] }

// GroupsOfSite returns the groups a site's canvases belong to.
func (c *Clustering) GroupsOfSite(domain string) []*Group { return c.bySite[domain] }

// UniqueCanvases counts distinct fingerprintable canvases that appeared
// in a cohort (the §4.2 504/288 numbers).
func (c *Clustering) UniqueCanvases(cohort web.Cohort) int {
	n := 0
	for _, g := range c.Groups {
		if g.SiteCount(cohort) > 0 {
			n++
		}
	}
	return n
}

// TopK returns the k groups with the highest popular-site counts
// (Figure 1's x-axis).
func (c *Clustering) TopK(k int) []*Group {
	if k > len(c.Groups) {
		k = len(c.Groups)
	}
	return c.Groups[:k]
}

// SitesCoveredByTop returns how many of the cohort's fingerprinting
// sites generate at least one of the top-k canvases (the "six
// most-frequent canvases account for 70.1%" measurement).
func (c *Clustering) SitesCoveredByTop(k int, cohort web.Cohort) (covered, total int) {
	top := map[string]bool{}
	for i, g := range c.Groups {
		if i >= k {
			break
		}
		top[g.Hash] = true
	}
	for domain, groups := range c.bySite {
		if c.siteInfo[domain].cohort != cohort {
			continue
		}
		total++
		for _, g := range groups {
			if top[g.Hash] {
				covered++
				break
			}
		}
	}
	return covered, total
}

// OverlapStats reports cross-cohort sharing (§4.2): the fraction of tail
// fingerprinting sites whose canvases include one also seen on a popular
// site, and the sizes of the largest tail-only groups.
type OverlapStats struct {
	TailFPSites          int
	TailSharingWithTop   int
	TailOnlyGroupSizes   []int // descending
	LargestTailOnlyGroup int
	SecondTailOnlyGroup  int
}

// Overlap computes cross-cohort overlap statistics.
func (c *Clustering) Overlap() OverlapStats {
	var st OverlapStats
	for domain, groups := range c.bySite {
		if c.siteInfo[domain].cohort != web.Tail {
			continue
		}
		st.TailFPSites++
		for _, g := range groups {
			if g.SiteCount(web.Popular) > 0 {
				st.TailSharingWithTop++
				break
			}
		}
	}
	for _, g := range c.Groups {
		if g.SiteCount(web.Tail) > 0 && g.SiteCount(web.Popular) == 0 {
			st.TailOnlyGroupSizes = append(st.TailOnlyGroupSizes, g.SiteCount(web.Tail))
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(st.TailOnlyGroupSizes)))
	if len(st.TailOnlyGroupSizes) > 0 {
		st.LargestTailOnlyGroup = st.TailOnlyGroupSizes[0]
	}
	if len(st.TailOnlyGroupSizes) > 1 {
		st.SecondTailOnlyGroup = st.TailOnlyGroupSizes[1]
	}
	return st
}

// PerSiteCounts returns, per fingerprinting site in the cohort, the
// number of fingerprintable extraction events (the §4.1 mean/median/max
// population). Pass the analyzed sites used to Build.
func PerSiteCounts(sites []detect.SiteCanvases, cohort web.Cohort) []float64 {
	var out []float64
	for i := range sites {
		s := &sites[i]
		if !s.OK || s.Cohort != cohort {
			continue
		}
		n := len(s.Fingerprintable())
		if n > 0 {
			out = append(out, float64(n))
		}
	}
	return out
}

// InconsistencyCheckStats reports, per cohort, how many fingerprinting
// sites extracted the same fingerprintable canvas at least twice — the
// §5.3 double-render randomization probe (45% in the paper).
func InconsistencyCheckStats(sites []detect.SiteCanvases, cohort web.Cohort) (checking, total int) {
	for i := range sites {
		s := &sites[i]
		if !s.OK || s.Cohort != cohort || !s.HasFingerprinting() {
			continue
		}
		total++
		counts := map[string]int{}
		for _, c := range s.Fingerprintable() {
			counts[c.Hash]++
		}
		for _, n := range counts {
			if n >= 2 {
				checking++
				break
			}
		}
	}
	return checking, total
}
