package attrib

import (
	"testing"

	"canvassing/internal/cluster"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/services"
	"canvassing/internal/web"
)

// pipeline runs web → crawl → detect → cluster → ground truth once for a
// given seed/scale and returns everything attribution needs.
func pipeline(t *testing.T, seed uint64, scale float64) (*web.Web, []detect.SiteCanvases, *cluster.Clustering, *GroundTruth) {
	t.Helper()
	w := web.Generate(web.Config{Seed: seed, Scale: scale, TrancoMax: 1_000_000})
	all := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	res := crawler.Crawl(w, all, crawler.DefaultConfig())
	sites := detect.AnalyzeAll(res.Pages)
	cl := cluster.Build(sites)
	gt := BuildGroundTruth(w, sites, crawler.DefaultConfig())
	return w, sites, cl, gt
}

func TestGroundTruthMethods(t *testing.T) {
	_, _, _, gt := pipeline(t, 51, 0.05)
	// Vendors with demos must be identified via demo crawls.
	for _, slug := range []string{"akamai", "fingerprintjs", "signifyd", "perimeterx", "sift", "shopify", "adscore", "insurads", "geetest"} {
		if gt.Methods[slug] != MethodDemo {
			t.Fatalf("%s method = %s, want demo", slug, gt.Methods[slug])
		}
		if len(gt.Hashes[slug]) == 0 {
			t.Fatalf("%s has no ground-truth hashes", slug)
		}
	}
	// Imperva is regexp-only.
	if gt.Methods["imperva"] != MethodRegexp {
		t.Fatalf("imperva method = %s", gt.Methods["imperva"])
	}
	if len(gt.Hashes["imperva"]) != 0 {
		t.Fatal("imperva cannot have grouping ground truth")
	}
	// mail.ru has no demo: known-customer confirmation.
	if gt.Methods["mailru"] != MethodCustomer {
		t.Fatalf("mailru method = %s, want known-customer", gt.Methods["mailru"])
	}
	if len(gt.Hashes["mailru"]) == 0 {
		t.Fatal("mailru needs customer-derived hashes")
	}
}

func TestAttributionRecoverTable1Shape(t *testing.T) {
	w, sites, cl, gt := pipeline(t, 51, 0.05)
	res := Attribute(cl, gt, sites)

	rowBySlug := map[string]Row{}
	for _, r := range res.Rows {
		rowBySlug[r.Slug] = r
	}
	// Compare measured counts against planted truth per vendor.
	truthCounts := map[string]map[web.Cohort]int{}
	for domain, deps := range w.Truth {
		site := w.SiteByDomain(domain)
		if site == nil || site.Cohort == web.Demo || !site.CrawlOK {
			continue
		}
		seen := map[string]bool{}
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.VendorSlug == "" || seen[d.VendorSlug] {
				continue
			}
			seen[d.VendorSlug] = true
			if truthCounts[d.VendorSlug] == nil {
				truthCounts[d.VendorSlug] = map[web.Cohort]int{}
			}
			truthCounts[d.VendorSlug][site.Cohort]++
		}
	}
	for slug, truth := range truthCounts {
		row := rowBySlug[slug]
		for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
			want := truth[cohort]
			got := row.Popular
			if cohort == web.Tail {
				got = row.Tail
			}
			// Attribution must recover planted deployments almost
			// exactly (small slack for multi-vendor interactions).
			if got < want-2 || got > want+2 {
				t.Errorf("%s %s: attributed %d, planted %d", slug, cohort, got, want)
			}
		}
	}
	// Attributed-site share near the paper's 73%/71%.
	for _, cohort := range []web.Cohort{web.Popular, web.Tail} {
		if res.FPSites[cohort] == 0 {
			t.Fatalf("no fp sites in %s", cohort)
		}
		frac := float64(res.AttributedSites[cohort]) / float64(res.FPSites[cohort])
		if frac < 0.5 || frac > 0.95 {
			t.Fatalf("%s attribution coverage = %.2f, want ~0.7", cohort, frac)
		}
	}
}

func TestImpervaViaRegexpOnly(t *testing.T) {
	w, sites, cl, gt := pipeline(t, 51, 0.05)
	res := Attribute(cl, gt, sites)
	row := Row{}
	for _, r := range res.Rows {
		if r.Slug == "imperva" {
			row = r
		}
	}
	// Planted Imperva sites (crawl-ok) must be recovered.
	planted := 0
	for domain, deps := range w.Truth {
		site := w.SiteByDomain(domain)
		if site == nil || !site.CrawlOK || site.Cohort == web.Demo {
			continue
		}
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.VendorSlug == "imperva" {
				planted++
				break
			}
		}
	}
	if planted == 0 {
		t.Skip("no imperva sites at this scale")
	}
	if got := row.Popular + row.Tail; got != planted {
		t.Fatalf("imperva attributed %d, planted %d", got, planted)
	}
}

func TestImpervaRegexp(t *testing.T) {
	yes := []string{
		"https://www.example.com/Advanced-Protection",
		"http://shop.example.org/Edge-Guard",
		"https://x.co/Sentry-Watch",
	}
	no := []string{
		"https://example.com/akam/13/abc123",
		"https://example.com/assets/app.js",
		"https://example.com/js/webp-check.js",
		"https://example.com/path/two-segments",
		"https://example.com/has9digit",
	}
	for _, u := range yes {
		if !impervaRe.MatchString(u) {
			t.Fatalf("regexp should match %s", u)
		}
	}
	for _, u := range no {
		if impervaRe.MatchString(u) {
			t.Fatalf("regexp should NOT match %s", u)
		}
	}
}

func TestFPJSTierBreakdown(t *testing.T) {
	w, sites, cl, gt := pipeline(t, 51, 0.05)
	res := Attribute(cl, gt, sites)
	// Planted commercial counts.
	wantCom := map[web.Cohort]int{}
	wantReb := map[string]int{}
	for domain, deps := range w.Truth {
		site := w.SiteByDomain(domain)
		if site == nil || !site.CrawlOK || site.Cohort == web.Demo {
			continue
		}
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.Commercial {
				wantCom[site.Cohort]++
			}
			if d.Rebrander != "" {
				wantReb[d.Rebrander]++
			}
		}
	}
	gotCom := res.FPJS.CommercialPopular + res.FPJS.CommercialTail
	planted := wantCom[web.Popular] + wantCom[web.Tail]
	if planted > 0 && gotCom == 0 {
		t.Fatalf("commercial tier not recovered: planted %d", planted)
	}
	// Commercial detection keys on fpnpmcdn URLs: CNAME/CDN-served
	// commercial deployments are not URL-identifiable, so got <= planted.
	if gotCom > planted {
		t.Fatalf("commercial overcount: %d > %d", gotCom, planted)
	}
	for slug, want := range wantReb {
		got := res.FPJS.Rebranders[slug][0] + res.FPJS.Rebranders[slug][1]
		if want > 0 && got == 0 {
			t.Errorf("rebrander %s not recovered (planted %d)", slug, want)
		}
	}
}

func TestSecurityFlagsInRows(t *testing.T) {
	_, sites, cl, gt := pipeline(t, 51, 0.03)
	res := Attribute(cl, gt, sites)
	if len(res.Rows) != len(services.Registry()) {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, r := range res.Rows {
		v := services.BySlug(r.Slug)
		if (v.Category == services.CategorySecurity) != r.Security {
			t.Fatalf("%s security flag mismatch", r.Slug)
		}
	}
}

func TestVendorForGroupPrecedence(t *testing.T) {
	gt := &GroundTruth{
		Hashes: map[string]map[string]bool{
			"akamai": {"h-akam": true},
		},
		Methods: map[string]Method{},
	}
	g := &cluster.Group{Hash: "h-akam", ScriptURLs: []string{"https://privacy-cs.mail.ru/top/counter.js"}}
	// Hash ground truth must beat the URL pattern.
	got, mech := vendorForGroup(g, gt)
	if got != "akamai" {
		t.Fatalf("precedence: %s", got)
	}
	if mech != MechDemoHash {
		t.Fatalf("hash-match mechanism: %s", mech)
	}
	g2 := &cluster.Group{Hash: "h-unknown", ScriptURLs: []string{"https://privacy-cs.mail.ru/top/counter.js"}}
	got, mech = vendorForGroup(g2, gt)
	if got != "mailru" {
		t.Fatalf("pattern fallback: %s", got)
	}
	if mech != MechURLPattern {
		t.Fatalf("pattern mechanism: %s", mech)
	}
	g3 := &cluster.Group{Hash: "h-none", ScriptURLs: []string{"https://nowhere.example/x.js"}}
	if got, _ = vendorForGroup(g3, gt); got != "" {
		t.Fatalf("unidentified: %s", got)
	}
}

func TestContainsHost(t *testing.T) {
	if !containsHost("https://cdn.mgid.com/uid/fp.js", "mgid.com") {
		t.Fatal("subdomain")
	}
	if !containsHost("https://mgid.com/uid/fp.js", "mgid.com") {
		t.Fatal("exact")
	}
	if containsHost("https://notmgid.com/x.js", "mgid.com") {
		t.Fatal("boundary")
	}
	if containsHost("garbage", "mgid.com") {
		t.Fatal("unparseable")
	}
}
