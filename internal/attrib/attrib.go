// Package attrib attributes canvas groups to fingerprinting vendors
// using the paper's A.3 methodology, in order of precedence:
//
//  1. Demo: crawl the vendor's public demo page and record the test
//     canvases it renders; identical canvases elsewhere are the vendor's.
//  2. Known customer: for vendors without a demo, find a customer site,
//     confirm with the script-pattern heuristic, and take the canvases
//     its matching script rendered.
//  3. Script pattern: attribute groups whose producing script URLs match
//     the vendor's Table 3 pattern.
//
// Imperva is the special case: its canvas is unique per customer site, so
// grouping cannot link its deployments; sites are attributed by the
// Table 3 regexp over script URLs instead.
package attrib

import (
	"fmt"
	"regexp"
	"sort"

	"canvassing/internal/cluster"
	"canvassing/internal/crawler"
	"canvassing/internal/detect"
	"canvassing/internal/netsim"
	"canvassing/internal/obs/event"
	"canvassing/internal/services"
	"canvassing/internal/web"
)

// Method records how a vendor's canvases were identified (Table 3).
type Method string

// Attribution methods in order of precedence.
const (
	MethodDemo     Method = "demo"
	MethodCustomer Method = "known-customer"
	MethodPattern  Method = "script-pattern"
	MethodRegexp   Method = "url-regexp"
	MethodNone     Method = "unidentified"
)

// impervaRe is the Table 3 caption regexp: a first-party script whose
// path is a single letters-and-hyphens segment.
var impervaRe = regexp.MustCompile(`^https?://(?:www\.)?[^/]+/([A-Za-z\-]+)$`)

// Attribution mechanisms as named in evidence events: which concrete
// linkage fired for a group or site, one level finer than Method (a
// vendor identified via its demo can still have individual groups
// linked by hash or by URL pattern).
const (
	MechDemoHash     = "demo-hash"
	MechCustomerHash = "known-customer-hash"
	MechURLPattern   = "url-pattern"
	MechURLRegexp    = "url-regexp"
)

// GroundTruth holds per-vendor canvas hashes and how they were obtained.
type GroundTruth struct {
	// Hashes maps vendor slug → set of test-canvas hashes.
	Hashes map[string]map[string]bool
	// Methods maps vendor slug → the method that produced its hashes.
	Methods map[string]Method
}

// BuildGroundTruth crawls vendor demo pages and, for vendors without a
// demo, locates a known customer in the main crawl (confirmed by script
// pattern) to learn each vendor's test canvases.
func BuildGroundTruth(w *web.Web, mainCrawl []detect.SiteCanvases, cfg crawler.Config) *GroundTruth {
	return BuildGroundTruthEvents(w, mainCrawl, cfg, nil)
}

// BuildGroundTruthEvents is BuildGroundTruth with decision provenance:
// the demo-crawl detection verdicts and one evidence event per vendor
// (which method produced its hashes, and how many) are recorded to
// sink (nil disables).
func BuildGroundTruthEvents(w *web.Web, mainCrawl []detect.SiteCanvases, cfg crawler.Config, sink *event.Sink) *GroundTruth {
	gt := &GroundTruth{
		Hashes:  map[string]map[string]bool{},
		Methods: map[string]Method{},
	}
	// Demo crawls.
	cfg.Condition = "demo"
	demoRes := crawler.Crawl(w, w.Demos, cfg)
	demoSites := detect.AnalyzeAllEvents(demoRes.Pages, sink, "demo")
	demoByDomain := map[string]*detect.SiteCanvases{}
	for i := range demoSites {
		demoByDomain[demoSites[i].Domain] = &demoSites[i]
	}
	for _, v := range services.Registry() {
		if v.PerSiteCanvas {
			gt.Methods[v.Slug] = MethodRegexp
			continue
		}
		if v.HasDemo {
			if ds, ok := demoByDomain[v.DemoDomain]; ok {
				set := map[string]bool{}
				for _, c := range ds.Fingerprintable() {
					set[c.Hash] = true
				}
				if len(set) > 0 {
					gt.Hashes[v.Slug] = set
					gt.Methods[v.Slug] = MethodDemo
					continue
				}
			}
		}
		// Known customer: find a crawled site whose extraction script
		// matches the vendor pattern; its matching canvases are ground
		// truth.
		if v.URLPattern != "" {
			set := map[string]bool{}
			for i := range mainCrawl {
				for _, c := range mainCrawl[i].Fingerprintable() {
					if v.MatchURL(c.ScriptURL) {
						set[c.Hash] = true
					}
				}
				if len(set) > 0 {
					break // one confirmed customer suffices
				}
			}
			if len(set) > 0 {
				gt.Hashes[v.Slug] = set
				gt.Methods[v.Slug] = MethodCustomer
				continue
			}
		}
		gt.Methods[v.Slug] = MethodNone
	}
	if sink != nil {
		for _, v := range services.Registry() {
			sink.Record(event.Event{
				Kind:     event.AttribEvidence,
				Subject:  v.Slug,
				Verdict:  string(gt.Methods[v.Slug]),
				Evidence: "ground-truth",
				Detail:   fmt.Sprintf("%d hashes", len(gt.Hashes[v.Slug])),
			})
		}
	}
	return gt
}

// Row is one Table 1 row.
type Row struct {
	Vendor   string
	Slug     string
	Security bool
	Method   Method
	// Sites per cohort attributed to this vendor.
	Popular, Tail int
}

// FPJSBreakdown details the FingerprintJS population (§4.3.1).
type FPJSBreakdown struct {
	CommercialPopular int
	CommercialTail    int
	// Rebranders maps rebrander slug → [popular, tail] site counts.
	Rebranders map[string][2]int
}

// Result is the attribution outcome.
type Result struct {
	Rows []Row
	// SiteVendors maps domain → attributed vendor slugs (sorted).
	SiteVendors map[string][]string
	// AttributedSites counts distinct attributed sites per cohort
	// (Table 1's "Total Sites" row).
	AttributedSites map[web.Cohort]int
	// FPSites counts fingerprinting sites per cohort (denominators).
	FPSites map[web.Cohort]int
	FPJS    FPJSBreakdown
}

// Attribute runs grouping-based attribution over a clustering plus the
// Imperva URL-regexp pass over the analyzed sites.
func Attribute(cl *cluster.Clustering, gt *GroundTruth, sites []detect.SiteCanvases) *Result {
	return AttributeEvents(cl, gt, sites, nil)
}

// AttributeEvents is Attribute with decision provenance: one evidence
// event per attributed canvas group (which mechanism linked it) and
// one per site-vendor attribution, recorded to sink (nil disables).
func AttributeEvents(cl *cluster.Clustering, gt *GroundTruth, sites []detect.SiteCanvases, sink *event.Sink) *Result {
	res := &Result{
		SiteVendors:     map[string][]string{},
		AttributedSites: map[web.Cohort]int{},
		FPSites:         map[web.Cohort]int{},
		FPJS:            FPJSBreakdown{Rebranders: map[string][2]int{}},
	}
	// Group → vendor via ground-truth hashes, then URL patterns.
	groupVendor := map[string]string{}
	groupMech := map[string]string{}
	for _, g := range cl.Groups {
		if slug, mech := vendorForGroup(g, gt); slug != "" {
			groupVendor[g.Hash] = slug
			groupMech[g.Hash] = mech
			if sink != nil {
				sink.Record(event.Event{
					Kind:     event.AttribEvidence,
					Subject:  g.Hash,
					Verdict:  slug,
					Evidence: mech,
					Detail:   fmt.Sprintf("%d sites", g.TotalSites()),
				})
			}
		}
	}
	// Per-site vendor sets.
	siteVendorSet := map[string]map[string]bool{}
	cohortOf := map[string]web.Cohort{}
	for i := range sites {
		s := &sites[i]
		if !s.OK || s.Cohort == web.Demo {
			continue
		}
		fp := s.Fingerprintable()
		if len(fp) == 0 {
			continue
		}
		res.FPSites[s.Cohort]++
		cohortOf[s.Domain] = s.Cohort
		set := map[string]bool{}
		mechOf := map[string]string{}
		for _, c := range fp {
			if slug, ok := groupVendor[c.Hash]; ok {
				set[slug] = true
				if mechOf[slug] == "" {
					mechOf[slug] = groupMech[c.Hash]
				}
			} else if impervaRe.MatchString(c.ScriptURL) {
				set["imperva"] = true
				mechOf["imperva"] = MechURLRegexp
			}
		}
		if len(set) > 0 {
			siteVendorSet[s.Domain] = set
			res.AttributedSites[s.Cohort]++
			if sink != nil {
				slugs := make([]string, 0, len(set))
				for slug := range set {
					slugs = append(slugs, slug)
				}
				sort.Strings(slugs)
				for _, slug := range slugs {
					sink.Record(event.Event{
						Kind:     event.AttribEvidence,
						Site:     s.Domain,
						Verdict:  slug,
						Evidence: mechOf[slug],
						Detail:   s.Cohort.String(),
					})
				}
			}
		}
	}
	// Rows in Table 1 order.
	counts := map[string]map[web.Cohort]int{}
	for domain, set := range siteVendorSet {
		var slugs []string
		for slug := range set {
			slugs = append(slugs, slug)
			if counts[slug] == nil {
				counts[slug] = map[web.Cohort]int{}
			}
			counts[slug][cohortOf[domain]]++
		}
		sort.Strings(slugs)
		res.SiteVendors[domain] = slugs
	}
	for _, v := range services.Registry() {
		res.Rows = append(res.Rows, Row{
			Vendor:   v.Name,
			Slug:     v.Slug,
			Security: v.Category == services.CategorySecurity,
			Method:   gt.Methods[v.Slug],
			Popular:  counts[v.Slug][web.Popular],
			Tail:     counts[v.Slug][web.Tail],
		})
	}
	attributeFPJSTiers(cl, gt, sites, res)
	return res
}

// vendorForGroup resolves one canvas group to a vendor slug ("" if
// unidentified) plus the mechanism that linked it: ground-truth hash
// match first (demo-hash or known-customer-hash depending on how the
// vendor's hashes were obtained), then script-URL pattern.
func vendorForGroup(g *cluster.Group, gt *GroundTruth) (slug, mechanism string) {
	for _, v := range services.Registry() {
		if gt.Hashes[v.Slug][g.Hash] {
			mech := MechDemoHash
			if gt.Methods[v.Slug] == MethodCustomer {
				mech = MechCustomerHash
			}
			return v.Slug, mech
		}
	}
	for _, v := range services.Registry() {
		if v.URLPattern == "" {
			continue
		}
		for _, u := range g.ScriptURLs {
			if v.MatchURL(u) {
				return v.Slug, MechURLPattern
			}
		}
	}
	return "", ""
}

// attributeFPJSTiers splits FingerprintJS-attributed sites into
// commercial customers (fpnpmcdn.net URLs / worker-proxied) and OSS
// rebranders (script served from a rebrander host).
func attributeFPJSTiers(cl *cluster.Clustering, gt *GroundTruth, sites []detect.SiteCanvases, res *Result) {
	fpjsHashes := gt.Hashes["fingerprintjs"]
	if len(fpjsHashes) == 0 {
		return
	}
	rebranders := services.Rebranders()
	for i := range sites {
		s := &sites[i]
		if !s.OK || s.Cohort == web.Demo {
			continue
		}
		commercial := false
		var rebrand string
		matched := false
		for _, c := range s.Fingerprintable() {
			if !fpjsHashes[c.Hash] {
				continue
			}
			matched = true
			if services.BySlug("fingerprintjs").MatchURL(c.ScriptURL) {
				commercial = true
			}
			for _, r := range rebranders {
				if containsHost(c.ScriptURL, r.ScriptHost) {
					rebrand = r.Slug
				}
			}
		}
		if !matched {
			continue
		}
		if commercial {
			if s.Cohort == web.Popular {
				res.FPJS.CommercialPopular++
			} else {
				res.FPJS.CommercialTail++
			}
		}
		if rebrand != "" {
			pair := res.FPJS.Rebranders[rebrand]
			if s.Cohort == web.Popular {
				pair[0]++
			} else {
				pair[1]++
			}
			res.FPJS.Rebranders[rebrand] = pair
		}
	}
}

// containsHost reports whether rawURL's hostname is host or one of its
// subdomains.
func containsHost(rawURL, host string) bool {
	u, err := netsim.ParseURL(rawURL)
	if err != nil || host == "" {
		return false
	}
	return u.Host == host || netsim.IsSubdomainOf(u.Host, host)
}
