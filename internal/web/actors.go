package web

import (
	"fmt"
	"strings"

	"canvassing/internal/stats"
)

// Longtail fingerprinting actors: the several hundred boutique scripts
// behind the unattributed ~27% of fingerprinting sites and most of the
// 504/288 unique canvases. Each actor renders a small set of canvases
// unique to it (but identical across its sites), optionally re-extracts
// them, and optionally performs the double-render randomization check.

// actorSpec describes one longtail actor's behavior.
type actorSpec struct {
	ID       int
	TailOnly bool
	// Canvases is how many distinct test canvases the script renders.
	Canvases int
	// Repeats re-extracts every canvas this many times (>=1).
	Repeats int
	// Check adds the Algorithm-1 double-render comparison on the first
	// canvas.
	Check bool
	// Host is the actor's own serving host (third-party mode).
	Host string
}

// ActorHost is the serving hostname of longtail actor id when deployed
// third-party. Exported so list generation can give crowdsourced lists
// realistic coverage of boutique trackers.
func ActorHost(id int) string {
	return fmt.Sprintf("cdn.trk%03d-metrics.net", id)
}

// LongtailActorIDs returns the id space of shared (non-tail-only)
// longtail actors.
func LongtailActorIDs() []int {
	ids := make([]int, longtailActors)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// newActorSpec derives a deterministic actor from its id.
func newActorSpec(id int, tailOnly bool) actorSpec {
	rng := stats.NewRNG(uint64(id)*2654435761 + 97).Fork("actor")
	spec := actorSpec{
		ID:       id,
		TailOnly: tailOnly,
		Host:     ActorHost(id),
	}
	switch {
	case tailOnly:
		spec.Canvases = 1
		if rng.Bool(0.2) {
			spec.Canvases = 2
		}
		spec.Repeats = 1
	default:
		w := rng.Float64()
		switch {
		case w < 0.15:
			spec.Canvases = 1
		case w < 0.40:
			spec.Canvases = 2
		case w < 0.70:
			spec.Canvases = 3
		case w < 0.90:
			spec.Canvases = 4
		default:
			spec.Canvases = 5
		}
		spec.Repeats = 1
		if rng.Bool(0.20) {
			spec.Repeats = 2
		}
	}
	spec.Check = rng.Bool(0.05)
	return spec
}

// Source renders the actor's script. The drawing is parameterized by the
// actor id and canvas index, so every (actor, index) pair yields a
// distinct canvas while remaining identical across sites.
func (a actorSpec) Source() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "/*! trk%03d beacon r%d */\n", a.ID, a.Canvases)
	sb.WriteString(`
function __ltHash(s) {
	var h = 5381;
	for (var i = 0; i < s.length; i++) { h = ((h << 5) + h + s.charCodeAt(i)) & 0x7fffffff; }
	return h;
}
`)
	h := stats.HashString(fmt.Sprintf("actor-%d", a.ID))
	fmt.Fprintf(&sb, `
function __ltRender(k) {
	var c = document.createElement('canvas');
	c.width = %d; c.height = %d;
	var x = c.getContext('2d');
	x.font = '%dpx Arial';
	x.fillStyle = '#%06x';
	x.fillText('trk%03d sample ' + k, 4, 18);
	x.strokeStyle = '#%06x';
	x.lineWidth = %d;
	x.beginPath();
	x.moveTo(5, 30);
	x.lineTo(%d + k * 7, 24);
	x.stroke();
	x.globalAlpha = 0.5;
	x.fillRect(%d, 6 + k * 2, 40, 9);
	return c.toDataURL();
}
`,
		160+int(h%120), 36+int((h>>8)%30),
		10+int((h>>16)%6),
		h&0xFFFFFF,
		a.ID,
		(h>>24)&0xFFFFFF,
		1+int((h>>12)%3),
		60+int((h>>20)%80),
		80+int((h>>28)%60),
	)
	fmt.Fprintf(&sb, "var __ltSig%d = 0;\n", a.ID)
	if a.Check {
		fmt.Fprintf(&sb, `
var __ltA = __ltRender(0);
var __ltB = __ltRender(0);
if (__ltA === __ltB) { __ltSig%d = __ltHash(__ltA); } else { __ltSig%d = 0; }
`, a.ID, a.ID)
	}
	fmt.Fprintf(&sb, `
for (var r = 0; r < %d; r++) {
	for (var k = 0; k < %d; k++) {
		__ltSig%d = (__ltSig%d * 31 + __ltHash(__ltRender(k))) & 0x7fffffff;
	}
}
window.__trk%03d = __ltSig%d;
`, a.Repeats, a.Canvases, a.ID, a.ID, a.ID, a.ID)
	return sb.String()
}
