package web

import (
	"strings"
	"testing"

	"canvassing/internal/jsvm"
	"canvassing/internal/services"
)

// smallWeb is a 5% scale web shared across tests (generation is pure).
func smallWeb(t *testing.T) *Web {
	t.Helper()
	return Generate(Config{Seed: 11, Scale: 0.05, TrancoMax: 1_000_000})
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(Config{Seed: 5, Scale: 0.02})
	b := Generate(Config{Seed: 5, Scale: 0.02})
	if len(a.Sites) != len(b.Sites) {
		t.Fatal("site counts differ")
	}
	for i := range a.Sites {
		if a.Sites[i].Domain != b.Sites[i].Domain ||
			a.Sites[i].CrawlOK != b.Sites[i].CrawlOK ||
			len(a.Sites[i].Scripts) != len(b.Sites[i].Scripts) {
			t.Fatalf("site %d differs", i)
		}
	}
	c := Generate(Config{Seed: 6, Scale: 0.02})
	diff := false
	for i := range a.Sites {
		if a.Sites[i].Domain != c.Sites[i].Domain {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different seeds should differ")
	}
}

func TestCohortSizes(t *testing.T) {
	w := smallWeb(t)
	pop := w.CohortSites(Popular)
	tail := w.CohortSites(Tail)
	if len(pop) != 1000 || len(tail) != 1000 {
		t.Fatalf("cohorts: %d/%d", len(pop), len(tail))
	}
	okPop, okTail := 0, 0
	for _, s := range pop {
		if s.CrawlOK {
			okPop++
		}
	}
	for _, s := range tail {
		if s.CrawlOK {
			okTail++
		}
	}
	// Crawl success ≈ 81.4% popular, 86.3% tail.
	if okPop < 780 || okPop > 850 {
		t.Fatalf("popular crawl-ok = %d", okPop)
	}
	if okTail < 830 || okTail > 900 {
		t.Fatalf("tail crawl-ok = %d", okTail)
	}
}

func TestTailRanksInRange(t *testing.T) {
	w := smallWeb(t)
	for _, s := range w.CohortSites(Tail) {
		if s.Rank <= 1000 || s.Rank > 1_000_000 {
			t.Fatalf("tail rank out of range: %d", s.Rank)
		}
	}
	for _, s := range w.CohortSites(Popular) {
		if s.Rank < 1 || s.Rank > 1000 {
			t.Fatalf("popular rank out of range: %d", s.Rank)
		}
	}
}

func TestFPSiteCounts(t *testing.T) {
	w := smallWeb(t)
	counts := map[Cohort]int{}
	for domain := range w.Truth {
		if s := w.SiteByDomain(domain); s != nil && s.Cohort != Demo {
			counts[s.Cohort]++
		}
	}
	// Targets at 5%: ~103 popular, ~86 tail.
	if counts[Popular] < 85 || counts[Popular] > 120 {
		t.Fatalf("popular FP sites = %d", counts[Popular])
	}
	if counts[Tail] < 70 || counts[Tail] > 100 {
		t.Fatalf("tail FP sites = %d", counts[Tail])
	}
}

func TestVendorTargetCounts(t *testing.T) {
	w := smallWeb(t)
	count := map[string]map[Cohort]int{}
	for domain, deps := range w.Truth {
		s := w.SiteByDomain(domain)
		if s == nil || s.Cohort == Demo {
			continue
		}
		seen := map[string]bool{}
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.VendorSlug == "" || seen[d.VendorSlug] {
				continue
			}
			seen[d.VendorSlug] = true
			if count[d.VendorSlug] == nil {
				count[d.VendorSlug] = map[Cohort]int{}
			}
			count[d.VendorSlug][s.Cohort]++
		}
	}
	// Scaled Table 1 targets at 5%: akamai 24/10, fpjs 23/15, shopify 2/23.
	check := func(slug string, cohort Cohort, lo, hi int) {
		got := count[slug][cohort]
		if got < lo || got > hi {
			t.Fatalf("%s %s = %d, want [%d,%d]", slug, cohort, got, lo, hi)
		}
	}
	check("akamai", Popular, 20, 29)
	check("akamai", Tail, 7, 14)
	check("fingerprintjs", Popular, 19, 28)
	check("fingerprintjs", Tail, 11, 19)
	check("shopify", Tail, 18, 28)
	check("mailru", Popular, 5, 18)
}

func TestMailRUOnRUSites(t *testing.T) {
	w := smallWeb(t)
	for domain, deps := range w.Truth {
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.VendorSlug == "mailru" && !strings.HasSuffix(domain, ".ru") {
				t.Fatalf("mail.ru planted on non-.ru site %s", domain)
			}
		}
	}
}

func TestAkamaiAlwaysFirstParty(t *testing.T) {
	w := smallWeb(t)
	for domain, deps := range w.Truth {
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.VendorSlug != "akamai" {
				continue
			}
			if !strings.Contains(d.ScriptURL, domain+"/akam/") {
				t.Fatalf("akamai script not same-origin: %s on %s", d.ScriptURL, domain)
			}
		}
	}
}

func TestImpervaPathShape(t *testing.T) {
	w := smallWeb(t)
	found := false
	for domain, deps := range w.Truth {
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.VendorSlug != "imperva" {
				continue
			}
			found = true
			// Path must be /Letters-And-Hyphens (the A.3 regexp).
			i := strings.Index(d.ScriptURL, domain+"/")
			if i < 0 {
				t.Fatalf("imperva not first-party: %s", d.ScriptURL)
			}
			path := d.ScriptURL[i+len(domain)+1:]
			for _, r := range path {
				if !(r >= 'A' && r <= 'Z' || r >= 'a' && r <= 'z' || r == '-') {
					t.Fatalf("imperva path %q has non-letter char", path)
				}
			}
		}
	}
	if !found {
		t.Fatal("no imperva deployments in small web")
	}
}

func TestScriptsAreFetchable(t *testing.T) {
	w := smallWeb(t)
	checked := 0
	for _, s := range w.Sites {
		for _, sc := range s.Scripts {
			if _, err := w.Store.Fetch(sc.URL); err != nil {
				t.Fatalf("script %s on %s not fetchable: %v", sc.URL, s.Domain, err)
			}
			checked++
		}
	}
	if checked == 0 {
		t.Fatal("no scripts at all")
	}
}

func TestScriptsParse(t *testing.T) {
	// Every hosted script must be valid jsvm source.
	w := Generate(Config{Seed: 3, Scale: 0.01})
	seen := map[string]bool{}
	for _, s := range append(w.Sites, w.Demos...) {
		for _, sc := range s.Scripts {
			key := sc.URL.String()
			if seen[key] {
				continue
			}
			seen[key] = true
			r, err := w.Store.Fetch(sc.URL)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := jsvm.Parse(r.Body); err != nil {
				t.Fatalf("script %s does not parse: %v", key, err)
			}
		}
	}
}

func TestCNAMECloakedDeployments(t *testing.T) {
	w := Generate(Config{Seed: 11, Scale: 0.2})
	cloaked := 0
	for domain, deps := range w.Truth {
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.Mode != services.ServeCNAME {
				continue
			}
			cloaked++
			alias := "metrics." + domain
			if !w.DNS.IsCloaked(alias) {
				t.Fatalf("CNAME deployment on %s lacks cloaking DNS", domain)
			}
			if !strings.Contains(d.ScriptURL, alias) {
				t.Fatalf("cloaked URL should use the alias: %s", d.ScriptURL)
			}
		}
	}
	if cloaked == 0 {
		t.Fatal("expected some CNAME-cloaked deployments at 20% scale")
	}
}

func TestFirstPartyBundlesContainVendorCode(t *testing.T) {
	w := smallWeb(t)
	foundBundle := false
	for domain, deps := range w.Truth {
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.Mode != services.ServeFirstParty || d.VendorSlug != "fingerprintjs" || d.Rebrander != "" {
				continue
			}
			u := scriptURL(domain, firstPartyBundlePath)
			r, err := w.Store.Fetch(u)
			if err != nil {
				t.Fatalf("bundle missing on %s: %v", domain, err)
			}
			if !strings.Contains(r.Body, "__appInit") {
				t.Fatal("bundle lacks the site's own code")
			}
			if !strings.Contains(r.Body, "FingerprintJS") {
				t.Fatal("bundle lacks the vendor library")
			}
			foundBundle = true
		}
	}
	if !foundBundle {
		t.Fatal("no first-party FingerprintJS bundles found")
	}
}

func TestDemoSites(t *testing.T) {
	w := smallWeb(t)
	if len(w.Demos) == 0 {
		t.Fatal("no demo sites")
	}
	demoVendors := map[string]bool{}
	for _, d := range w.Demos {
		if d.Cohort != Demo || !d.CrawlOK {
			t.Fatalf("demo site malformed: %+v", d)
		}
		for _, dep := range w.Truth[d.Domain] {
			demoVendors[dep.VendorSlug] = true
		}
	}
	for _, v := range services.Registry() {
		if v.HasDemo && !demoVendors[v.Slug] {
			t.Fatalf("vendor %s has demo but no demo site", v.Slug)
		}
		if !v.HasDemo && demoVendors[v.Slug] {
			t.Fatalf("vendor %s should not have a demo site", v.Slug)
		}
	}
}

func TestStressSitePresent(t *testing.T) {
	w := smallWeb(t)
	found := false
	for _, deps := range w.Truth {
		for _, d := range deps {
			if d.Inner {
				continue
			}
			if d.Longtail == 999999 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("stress site missing")
	}
}

func TestBenignOnlySites(t *testing.T) {
	w := smallWeb(t)
	benignOnly := 0
	for _, s := range w.CohortSites(Popular) {
		if !s.CrawlOK || w.Truth[s.Domain] != nil {
			continue
		}
		for _, sc := range s.Scripts {
			if strings.Contains(sc.URL.Path, "webp-check") || strings.Contains(sc.URL.Path, "small-canvas") {
				benignOnly++
				break
			}
		}
	}
	// Target: scaled(155) ≈ 8 at 5% scale.
	if benignOnly < 4 || benignOnly > 14 {
		t.Fatalf("benign-only popular sites = %d", benignOnly)
	}
}

func TestActorSpecDeterminism(t *testing.T) {
	a := newActorSpec(17, false)
	b := newActorSpec(17, false)
	if a != b {
		t.Fatal("actor spec must be deterministic")
	}
	if a.Source() != b.Source() {
		t.Fatal("actor source must be deterministic")
	}
	c := newActorSpec(18, false)
	if a.Source() == c.Source() {
		t.Fatal("different actors must have different scripts")
	}
}

func TestActorSpecTailOnly(t *testing.T) {
	a := newActorSpec(100001, true)
	if a.Canvases > 2 {
		t.Fatalf("tail-only actors draw at most 2 canvases, got %d", a.Canvases)
	}
	if a.Repeats != 1 {
		t.Fatal("tail-only actors do not repeat")
	}
}

func TestConfigScaling(t *testing.T) {
	cfg := Config{Scale: 0.1}
	if cfg.scaled(100) != 10 {
		t.Fatal("scaled")
	}
	if cfg.scaled(1) != 0 {
		t.Fatal("scaled rounds")
	}
	if cfg.scaledMin1(1) != 1 {
		t.Fatal("scaledMin1 floors at 1")
	}
}
