package web

import (
	"fmt"
	"sort"
	"strings"

	"canvassing/internal/netsim"
	"canvassing/internal/services"
	"canvassing/internal/stats"
)

// Generate builds the synthetic web for cfg. The same config always
// yields the same web, byte for byte.
func Generate(cfg Config) *Web {
	if cfg.Scale <= 0 {
		cfg.Scale = 1
	}
	if cfg.TrancoMax <= 0 {
		cfg.TrancoMax = 1_000_000
	}
	g := &generator{
		cfg: cfg,
		rng: stats.NewRNG(cfg.Seed).Fork("webgen"),
		web: &Web{
			Config:   cfg,
			DNS:      netsim.NewDNS(),
			Truth:    map[string][]TruthDeployment{},
			byDomain: map[string]*Site{},
		},
		bundles: map[string][]string{},
	}
	g.web.Store = netsim.NewStore(g.web.DNS)
	g.buildSites()
	g.plantVendors()
	g.plantLongtail()
	g.plantStressSite()
	g.plantInnerPages()
	g.plantBenign()
	g.plantDeferred()
	g.finalizeBundles()
	g.buildDemos()
	return g.web
}

type generator struct {
	cfg Config
	rng *stats.RNG
	web *Web

	popularOK []*Site // successfully crawlable popular sites
	tailOK    []*Site
	ruOK      map[Cohort][]*Site

	fpSites map[string]bool // domains that received any fingerprinting deployment

	// popularActors lists longtail actor ids deployed on popular sites,
	// so the tail cohort reuses the same actor population (§4.2's 91.4%
	// cross-cohort canvas overlap).
	popularActors []int

	// bundles accumulates first-party code per domain until finalize.
	bundles map[string][]string
}

// --- site construction -------------------------------------------------------

var tlds = []struct {
	tld    string
	weight float64
}{
	{"com", 0.58}, {"org", 0.07}, {"net", 0.06}, {"de", 0.045},
	{"io", 0.035}, {"co.uk", 0.03}, {"fr", 0.02}, {"jp", 0.02},
	{"com.br", 0.015}, {"nl", 0.015}, {"it", 0.015}, {"pl", 0.01},
	{"info", 0.01}, {"edu", 0.01}, {"gov", 0.005},
}

func (g *generator) pickTLD(cohort Cohort, rng *stats.RNG) string {
	ruFrac := ruFracPopular
	if cohort == Tail {
		ruFrac = ruFracTail
	}
	if rng.Bool(ruFrac) {
		return "ru"
	}
	weights := make([]float64, len(tlds))
	for i, t := range tlds {
		weights[i] = t.weight
	}
	return tlds[stats.WeightedChoice(rng, weights)].tld
}

func (g *generator) buildSites() {
	rng := g.rng.Fork("sites")
	p := g.cfg.scaledMin1(popularSites)
	t := g.cfg.scaledMin1(tailSites)
	pOK := g.cfg.scaledMin1(popularCrawlOK)
	tOK := g.cfg.scaledMin1(tailCrawlOK)
	if pOK > p {
		pOK = p
	}
	if tOK > t {
		tOK = t
	}

	for i := 0; i < p; i++ {
		rank := i + 1
		site := &Site{
			Domain: fmt.Sprintf("site-%06d.%s", rank, g.pickTLD(Popular, rng)),
			Rank:   rank,
			Cohort: Popular,
		}
		g.web.Sites = append(g.web.Sites, site)
	}
	// Tail ranks: distinct draws from (p, TrancoMax].
	seen := map[int]bool{}
	var tailRanks []int
	for len(tailRanks) < t {
		r := p + 1 + rng.Intn(g.cfg.TrancoMax-p)
		if !seen[r] {
			seen[r] = true
			tailRanks = append(tailRanks, r)
		}
	}
	sort.Ints(tailRanks)
	for _, rank := range tailRanks {
		site := &Site{
			Domain: fmt.Sprintf("site-%06d.%s", rank, g.pickTLD(Tail, rng)),
			Rank:   rank,
			Cohort: Tail,
		}
		g.web.Sites = append(g.web.Sites, site)
	}

	// Crawl success and consent banners.
	pop := g.web.CohortSites(Popular)
	tail := g.web.CohortSites(Tail)
	for _, s := range stats.Sample(rng, pop, pOK) {
		s.CrawlOK = true
	}
	for _, s := range stats.Sample(rng, tail, tOK) {
		s.CrawlOK = true
	}
	g.ruOK = map[Cohort][]*Site{}
	for _, s := range g.web.Sites {
		g.web.byDomain[s.Domain] = s
		if !s.CrawlOK {
			continue
		}
		s.ConsentBanner = rng.Bool(consentBannerFrac)
		if s.Cohort == Popular {
			g.popularOK = append(g.popularOK, s)
		} else {
			g.tailOK = append(g.tailOK, s)
		}
		if strings.HasSuffix(s.Domain, ".ru") {
			g.ruOK[s.Cohort] = append(g.ruOK[s.Cohort], s)
		}
	}
	g.fpSites = map[string]bool{}
}

// --- deployment plumbing ------------------------------------------------------

// hostBody publishes body and appends a script tag to the site.
func (g *generator) addScript(site *Site, u netsim.URL, body string, rng *stats.RNG) {
	if _, err := g.web.Store.Fetch(u); err != nil {
		g.web.Store.Host(u, "text/javascript", body)
	}
	ps := PageScript{URL: u}
	if rng != nil {
		ps.OnScroll = rng.Bool(onScrollFrac)
		if site.ConsentBanner {
			ps.NeedsConsent = rng.Bool(0.5)
		}
	}
	site.Scripts = append(site.Scripts, ps)
}

// bundleInto queues source into the site's first-party application bundle
// and ensures the bundle script tag exists.
func (g *generator) bundleInto(site *Site, source string) netsim.URL {
	u := scriptURL(site.Domain, firstPartyBundlePath)
	if _, ok := g.bundles[site.Domain]; !ok {
		g.bundles[site.Domain] = []string{genericSiteJS(site.Domain)}
		site.Scripts = append(site.Scripts, PageScript{URL: u})
	}
	g.bundles[site.Domain] = append(g.bundles[site.Domain], source)
	return u
}

func (g *generator) finalizeBundles() {
	for domain, parts := range g.bundles {
		u := scriptURL(domain, firstPartyBundlePath)
		g.web.Store.Host(u, "text/javascript", strings.Join(parts, "\n;\n"))
	}
}

// deployVendor places one vendor deployment on a site and records truth.
func (g *generator) deployVendor(site *Site, v *services.Vendor, mode services.ServingMode, rng *stats.RNG, truth TruthDeployment) {
	source := v.Source(services.ScriptParams{SiteDomain: site.Domain})
	var u netsim.URL
	switch {
	case v.Slug == "akamai":
		// Akamai's sensor is always same-origin under /akam/.
		h := stats.HashString("akam:" + site.Domain)
		u = scriptURL(site.Domain, fmt.Sprintf("/akam/13/%08x", h&0xFFFFFFFF))
		g.addScript(site, u, source, rng)
	case v.Slug == "imperva":
		// First-party, letters-and-hyphens path (the A.3 regexp shape).
		u = scriptURL(site.Domain, "/"+impervaPath(site.Domain))
		g.addScript(site, u, source, rng)
	default:
		u = g.placeByMode(site, v.Slug, v.ScriptHost, v.ScriptPath, mode, source, rng)
	}
	truth.Mode = mode
	truth.ScriptURL = u.String()
	g.recordDeployment(site, truth)
}

// placeByMode hosts source per the serving mode and returns the URL the
// page references.
func (g *generator) placeByMode(site *Site, slug, vendorHost, vendorPath string, mode services.ServingMode, source string, rng *stats.RNG) netsim.URL {
	switch mode {
	case services.ServeFirstParty:
		return g.bundleInto(site, source)
	case services.ServeSubdomain:
		u := scriptURL("fp."+site.Domain, "/"+slug+".js")
		g.addScript(site, u, source, rng)
		return u
	case services.ServeCNAME:
		alias := "metrics." + site.Domain
		canonical := fmt.Sprintf("%s.%s", siteLabel(site.Domain), vendorHost)
		g.web.DNS.AddCNAME(alias, canonical)
		g.web.Store.Host(scriptURL(canonical, "/sdk.js"), "text/javascript", source)
		u := scriptURL(alias, "/sdk.js")
		site.Scripts = append(site.Scripts, PageScript{URL: u})
		return u
	case services.ServeCDN:
		h := stats.HashString("cdn:" + slug)
		u := scriptURL(fmt.Sprintf("d%06x.cloudfront.net", h&0xFFFFFF), "/"+slug+"/fp.js")
		g.addScript(site, u, source, rng)
		return u
	default: // third-party
		u := scriptURL(vendorHost, vendorPath)
		g.addScript(site, u, source, rng)
		return u
	}
}

func (g *generator) recordDeployment(site *Site, truth TruthDeployment) {
	g.web.Truth[site.Domain] = append(g.web.Truth[site.Domain], truth)
	g.fpSites[site.Domain] = true
}

// siteLabel extracts the first DNS label of a domain for CNAME targets.
func siteLabel(domain string) string {
	if i := strings.IndexByte(domain, '.'); i > 0 {
		return domain[:i]
	}
	return domain
}

// impervaPath derives the site-specific letters-and-hyphens script path.
func impervaPath(domain string) string {
	h := stats.HashString("imperva:" + domain)
	words := []string{"Advanced", "Edge", "Shield", "Gate", "Guard", "Sentry", "Core", "Watch"}
	a := words[h%uint64(len(words))]
	b := words[(h>>8)%uint64(len(words))]
	if a == b {
		b = "Protection"
	}
	return a + "-" + b
}

// pickMode draws a serving mode from a weight table.
func pickMode(rng *stats.RNG, weights map[services.ServingMode]float64) services.ServingMode {
	modes := []services.ServingMode{
		services.ServeThirdParty, services.ServeFirstParty,
		services.ServeSubdomain, services.ServeCNAME, services.ServeCDN,
	}
	ws := make([]float64, len(modes))
	total := 0.0
	for i, m := range modes {
		ws[i] = weights[m]
		total += ws[i]
	}
	if total == 0 {
		return services.ServeThirdParty
	}
	return modes[stats.WeightedChoice(rng, ws)]
}

// --- named vendors -------------------------------------------------------------

func (g *generator) plantVendors() {
	rng := g.rng.Fork("vendors")
	for _, target := range table1Targets {
		v := services.BySlug(target.Slug)
		for _, cohort := range []Cohort{Popular, Tail} {
			count := g.cfg.scaled(target.Popular)
			pool := g.popularOK
			if cohort == Tail {
				count = g.cfg.scaled(target.Tail)
				pool = g.tailOK
			}
			if v.Slug == "mailru" {
				pool = g.ruOK[cohort]
			}
			if count > len(pool) {
				count = len(pool)
			}
			if count == 0 {
				continue
			}
			sites := stats.Sample(rng.Fork(v.Slug+cohort.String()), pool, count)
			if v.Slug == "fingerprintjs" {
				g.plantFPJS(sites, cohort, rng)
				continue
			}
			for i, site := range sites {
				mode := pickMode(rng, v.ServingWeights)
				// Keep at least one canonical third-party deployment per
				// vendor per cohort so the known-customer attribution
				// method (A.3) always has a confirmable customer.
				if i == 0 && v.ScriptHost != "" {
					mode = services.ServeThirdParty
				}
				g.deployVendor(site, v, mode, rng, TruthDeployment{
					VendorSlug: v.Slug, Longtail: -1,
				})
			}
		}
	}
}

// plantFPJS splits the FingerprintJS population into rebranders,
// commercial-tier customers and OSS bundlers (§4.3.1).
func (g *generator) plantFPJS(sites []*Site, cohort Cohort, rng *stats.RNG) {
	v := services.BySlug("fingerprintjs")
	idx := 0
	take := func(n int) []*Site {
		if idx+n > len(sites) {
			n = len(sites) - idx
		}
		out := sites[idx : idx+n]
		idx += n
		return out
	}
	// Rebranders.
	for _, rt := range rebranderTargets {
		count := g.cfg.scaled(rt.Popular)
		if cohort == Tail {
			count = g.cfg.scaled(rt.Tail)
		}
		reb := rebranderBySlug(rt.Slug)
		for _, site := range take(count) {
			u := scriptURL(reb.ScriptHost, "/uid/fp.js")
			g.addScript(site, u, services.RebranderSource(reb), rng)
			g.recordDeployment(site, TruthDeployment{
				VendorSlug: v.Slug, Rebrander: reb.Slug,
				Mode: services.ServeThirdParty, ScriptURL: u.String(), Longtail: -1,
			})
		}
	}
	// Commercial tier.
	commercialCount := g.cfg.scaled(fpjsCommercial.Popular)
	if cohort == Tail {
		commercialCount = g.cfg.scaled(fpjsCommercial.Tail)
	}
	commercialWeights := map[services.ServingMode]float64{
		services.ServeThirdParty: 0.5,
		services.ServeCDN:        0.3,
		services.ServeCNAME:      0.2,
	}
	for _, site := range take(commercialCount) {
		mode := pickMode(rng, commercialWeights)
		source := commercialFPJSSource(v)
		u := g.placeByMode(site, "fpjs-pro", v.ScriptHost, v.ScriptPath, mode, source, rng)
		g.recordDeployment(site, TruthDeployment{
			VendorSlug: v.Slug, Commercial: true, Mode: mode,
			ScriptURL: u.String(), Longtail: -1,
		})
	}
	// OSS bundlers.
	ossWeights := map[services.ServingMode]float64{
		services.ServeFirstParty: 0.84,
		services.ServeSubdomain:  0.08,
		services.ServeCDN:        0.08,
	}
	for _, site := range take(len(sites) - idx) {
		mode := pickMode(rng, ossWeights)
		source := v.Source(services.ScriptParams{SiteDomain: site.Domain})
		u := g.placeByMode(site, "fingerprintjs", v.ScriptHost, v.ScriptPath, mode, source, rng)
		g.recordDeployment(site, TruthDeployment{
			VendorSlug: v.Slug, Mode: mode, ScriptURL: u.String(), Longtail: -1,
		})
	}
}

// commercialFPJSSource extends the OSS canvas with the extra commercial
// surfaces (footnote 2: e.g. mathML), which is how the paper tells the
// tiers apart by script content.
func commercialFPJSSource(v *services.Vendor) string {
	return v.Source(services.ScriptParams{}) + `
// fpjs-pro extra surfaces
var __fpjsMathML = Math.atan2(1, 2) + Math.exp(0.5);
window.__fpjs_pro = (window.__fpjs_visitor | 0) ^ __fpHash('' + __fpjsMathML);
`
}

func rebranderBySlug(slug string) services.Rebrander {
	for _, r := range services.Rebranders() {
		if r.Slug == slug {
			return r
		}
	}
	panic("web: unknown rebrander " + slug)
}

// --- longtail actors -------------------------------------------------------------

func (g *generator) plantLongtail() {
	rng := g.rng.Fork("longtail")
	for _, cohort := range []Cohort{Popular, Tail} {
		pool := g.popularOK
		fpTarget := g.cfg.scaled(popularFPTargets)
		if cohort == Tail {
			pool = g.tailOK
			fpTarget = g.cfg.scaled(tailFPTargets)
		}
		var nonFP []*Site
		for _, s := range pool {
			if !g.fpSites[s.Domain] {
				nonFP = append(nonFP, s)
			}
		}
		needed := fpTarget - (countFP(g.fpSites, pool))
		if needed <= 0 {
			continue
		}
		if needed > len(nonFP) {
			needed = len(nonFP)
		}
		sites := stats.Sample(rng.Fork("lt-sites"+cohort.String()), nonFP, needed)
		g.assignActors(sites, cohort, rng)
	}
}

func countFP(fp map[string]bool, pool []*Site) int {
	n := 0
	for _, s := range pool {
		if fp[s.Domain] {
			n++
		}
	}
	return n
}

// headActorSites is the popular-cohort site count for the biggest
// longtail actors (the mid-section of Figure 1).
var headActorSites = []int{40, 28, 20, 15, 12, 10, 8, 8, 6, 6}

func (g *generator) assignActors(sites []*Site, cohort Cohort, rng *stats.RNG) {
	idx := 0
	take := func(n int) []*Site {
		if idx+n > len(sites) {
			n = len(sites) - idx
		}
		out := sites[idx : idx+n]
		idx += n
		return out
	}
	deployActor := func(spec actorSpec, ss []*Site) {
		for _, site := range ss {
			mode := pickMode(rng, longtailModeWeights[cohort])
			source := spec.Source()
			u := g.placeByMode(site, fmt.Sprintf("trk%03d", spec.ID), spec.Host, "/beacon.js", mode, source, rng)
			g.recordDeployment(site, TruthDeployment{
				VendorSlug: "", Mode: mode, ScriptURL: u.String(), Longtail: spec.ID,
			})
		}
	}

	if cohort == Popular {
		actorID := 0
		for _, n := range headActorSites {
			deployActor(newActorSpec(actorID, false), take(g.cfg.scaled(n)))
			g.popularActors = append(g.popularActors, actorID)
			actorID++
		}
		// Body: actors on 1–4 sites each.
		actorID = len(headActorSites)
		for idx < len(sites) {
			n := 1 + rng.Intn(4)
			deployActor(newActorSpec(actorID, false), take(n))
			g.popularActors = append(g.popularActors, actorID)
			actorID++
			if actorID >= longtailActors {
				actorID = len(headActorSites) // wrap, reusing body actors
			}
		}
		return
	}

	// Tail cohort: first the tail-only actors (largest group, then the
	// runner-up, then singletons — §4.2), then shared actors weighted
	// toward the popular head.
	tailOnlyBudget := g.cfg.scaled(136)
	if tailOnlyBudget > len(sites)/3 {
		tailOnlyBudget = len(sites) / 3
	}
	tailOnlyUsed := 0
	tailActorID := 100000 // disjoint id space for tail-only actors
	for i := 0; tailOnlyUsed < tailOnlyBudget; i++ {
		var n int
		switch i {
		case 0:
			n = g.cfg.scaled(15)
		case 1:
			n = g.cfg.scaled(3)
		default:
			n = 1
		}
		if n <= 0 {
			n = 1
		}
		if tailOnlyUsed+n > tailOnlyBudget {
			n = tailOnlyBudget - tailOnlyUsed
		}
		ss := take(n)
		if len(ss) == 0 {
			break
		}
		deployActor(newActorSpec(tailActorID+i, true), ss)
		tailOnlyUsed += len(ss)
		if i > tailOnlyActors*4 {
			break
		}
	}
	// Shared actors for the remainder, drawn from the actors actually
	// deployed on popular sites (head-weighted) so tail canvases overlap
	// with the popular cohort.
	for idx < len(sites) {
		var actorID int
		switch {
		case len(g.popularActors) == 0:
			actorID = rng.Intn(longtailActors)
		case rng.Bool(0.45) && len(g.popularActors) >= len(headActorSites):
			actorID = g.popularActors[rng.Intn(len(headActorSites))]
		default:
			actorID = g.popularActors[rng.Intn(len(g.popularActors))]
		}
		n := 1 + rng.Intn(4)
		deployActor(newActorSpec(actorID, false), take(n))
	}
}

// plantStressSite plants the single heaviest fingerprinting page
// (§4.1's 60-canvas maximum): an audit/aggregator page exercising many
// test canvases.
func (g *generator) plantStressSite() {
	rng := g.rng.Fork("stress")
	pool := g.popularOK
	var candidate *Site
	for _, s := range pool {
		if !g.fpSites[s.Domain] {
			candidate = s
			break
		}
	}
	if candidate == nil {
		return
	}
	spec := actorSpec{ID: 999999, Canvases: 20, Repeats: 3, Host: "cdn.fp-audit.net"}
	u := g.placeByMode(candidate, "fp-audit", spec.Host, "/audit.js", services.ServeThirdParty, spec.Source(), rng)
	g.recordDeployment(candidate, TruthDeployment{Mode: services.ServeThirdParty, ScriptURL: u.String(), Longtail: spec.ID})
}

// --- inner login pages ------------------------------------------------------------

// innerPageVendors are the security services that commonly fingerprint on
// authentication pages rather than homepages (the §3.2 limitation: a
// homepage-only crawl misses them).
var innerPageVendors = []string{"akamai", "perimeterx", "sift", "signifyd", "geetest", "aws-waf"}

// plantInnerPages gives a slice of sites a /login page carrying a
// security-vendor fingerprinting script that does NOT run on the
// homepage. These deployments are invisible to the paper-faithful crawl
// and surface only in the EX2 inner-page extension experiment.
func (g *generator) plantInnerPages() {
	rng := g.rng.Fork("inner")
	for _, cohort := range []Cohort{Popular, Tail} {
		pool := g.popularOK
		count := g.cfg.scaled(400)
		if cohort == Tail {
			pool = g.tailOK
			count = g.cfg.scaled(260)
		}
		if count > len(pool) {
			count = len(pool)
		}
		for _, site := range stats.Sample(rng.Fork("sites"+cohort.String()), pool, count) {
			slug := innerPageVendors[rng.Intn(len(innerPageVendors))]
			v := services.BySlug(slug)
			source := v.Source(services.ScriptParams{SiteDomain: site.Domain})
			var u netsim.URL
			mode := services.ServeThirdParty
			if slug == "akamai" {
				h := stats.HashString("akam-login:" + site.Domain)
				u = scriptURL(site.Domain, fmt.Sprintf("/akam/13/%08x", h&0xFFFFFFFF))
				mode = services.ServeFirstParty
			} else {
				u = scriptURL(v.ScriptHost, v.ScriptPath)
			}
			if _, err := g.web.Store.Fetch(u); err != nil {
				g.web.Store.Host(u, "text/javascript", source)
			}
			site.InnerScripts = append(site.InnerScripts, PageScript{URL: u})
			g.web.Truth[site.Domain] = append(g.web.Truth[site.Domain], TruthDeployment{
				VendorSlug: slug,
				Mode:       mode,
				ScriptURL:  u.String(),
				Longtail:   -1,
				Inner:      true,
			})
		}
	}
}

// --- deferred (interaction-gated) vendors -----------------------------------------

// plantDeferred deploys the interaction-gated vendors from
// services.Deferred() when Config.Interact is set. Sites without a
// load-time fingerprinter are preferred, so the crawl-vs-interaction
// experiment measures a clean prevalence delta: these are exactly the
// sites a load-time-only crawl undercounts. The step is a no-op with
// Interact off — the generated web, and therefore every downstream
// bundle byte, is unchanged.
func (g *generator) plantDeferred() {
	if !g.cfg.Interact {
		return
	}
	rng := g.rng.Fork("deferred")
	for _, target := range deferredTargets {
		v := services.DeferredBySlug(target.Slug)
		for _, cohort := range []Cohort{Popular, Tail} {
			count := g.cfg.scaled(target.Popular)
			pool := g.popularOK
			if cohort == Tail {
				count = g.cfg.scaled(target.Tail)
				pool = g.tailOK
			}
			var nonFP []*Site
			for _, s := range pool {
				if !g.fpSites[s.Domain] {
					nonFP = append(nonFP, s)
				}
			}
			if count > len(nonFP) {
				count = len(nonFP)
			}
			if count == 0 {
				continue
			}
			sites := stats.Sample(rng.Fork(v.Slug+cohort.String()), nonFP, count)
			for i, site := range sites {
				mode := pickMode(rng, v.ServingWeights)
				if i == 0 && v.ScriptHost != "" {
					// As with Table 1 vendors: one canonical third-party
					// deployment per cohort anchors URL attribution.
					mode = services.ServeThirdParty
				}
				g.deployVendor(site, v, mode, rng, TruthDeployment{
					VendorSlug: v.Slug, Longtail: -1, Deferred: true,
				})
			}
		}
	}
}

// --- benign canvas users --------------------------------------------------------

func (g *generator) plantBenign() {
	rng := g.rng.Fork("benign")
	type cohortPlan struct {
		cohort                             Cohort
		nonFPExtractors                    int
		webpFP, smallFP, emojiFP, editorFP int
		charts                             int
	}
	plans := []cohortPlan{
		{Popular, g.cfg.scaled(155), g.cfg.scaled(214), g.cfg.scaled(151), g.cfg.scaled(benignEmojiPopular), g.cfg.scaled(benignEditorPopular), g.cfg.scaled(benignChartPopular)},
		{Tail, g.cfg.scaled(138), g.cfg.scaled(197), g.cfg.scaled(135), g.cfg.scaled(benignEmojiTail), g.cfg.scaled(benignEditorTail), g.cfg.scaled(benignChartTail)},
	}
	for _, plan := range plans {
		pool := g.popularOK
		if plan.cohort == Tail {
			pool = g.tailOK
		}
		var fp, nonFP []*Site
		for _, s := range pool {
			if g.fpSites[s.Domain] {
				fp = append(fp, s)
			} else {
				nonFP = append(nonFP, s)
			}
		}
		// Fully-excluded sites: benign extraction, no fingerprinting.
		exSites := stats.Sample(rng.Fork("excl"+plan.cohort.String()), nonFP, plan.nonFPExtractors)
		for i, s := range exSites {
			kind := services.BenignWebP
			if i%5 >= 3 { // 40% small canvases, 60% webp probes
				kind = services.BenignSmall
			}
			g.addBenign(s, kind)
		}
		// Benign extractors co-located with fingerprinting.
		addTo := func(n int, kind services.BenignKind) {
			if n > len(fp) {
				n = len(fp)
			}
			for _, s := range stats.Sample(rng.Fork(string(kind)+plan.cohort.String()), fp, n) {
				g.addBenign(s, kind)
			}
		}
		addTo(plan.webpFP, services.BenignWebP)
		addTo(plan.smallFP, services.BenignSmall)
		addTo(plan.emojiFP, services.BenignEmoji)
		addTo(plan.editorFP, services.BenignEditor)
		// Charts extract nothing; they can land anywhere.
		for _, s := range stats.Sample(rng.Fork("charts"+plan.cohort.String()), pool, plan.charts) {
			g.addBenign(s, services.BenignChart)
		}
	}
}

func (g *generator) addBenign(site *Site, kind services.BenignKind) {
	u := scriptURL(site.Domain, "/js/"+string(kind)+".js")
	for _, sc := range site.Scripts {
		if sc.URL == u {
			return // one of each kind per site
		}
	}
	g.web.Store.Host(u, "text/javascript", services.BenignSource(kind))
	site.Scripts = append(site.Scripts, PageScript{URL: u})
}

// --- vendor demos ------------------------------------------------------------------

func (g *generator) buildDemos() {
	rng := g.rng.Fork("demos")
	for _, v := range services.Registry() {
		if !v.HasDemo {
			continue
		}
		site := &Site{
			Domain:  v.DemoDomain,
			Rank:    0,
			Cohort:  Demo,
			CrawlOK: true,
		}
		g.deployVendor(site, v, services.ServeThirdParty, rng, TruthDeployment{
			VendorSlug: v.Slug, Longtail: -1,
		})
		g.web.Demos = append(g.web.Demos, site)
		g.web.byDomain[site.Domain] = site
	}
}
