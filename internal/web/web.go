// Package web generates the synthetic Web the crawler visits: a Tranco
// ranking, popular and tail site cohorts, vendor deployments with
// realistic serving modes, benign canvas users, DNS records and hosted
// script bodies.
//
// Calibration targets (targets.go) come from the paper's reported
// marginals — Table 1 counts, §4.1 prevalence, §5.2 serving-mode
// fractions — but the generator only *plants* deployments; every number
// the experiments report is re-measured by the crawler/detector/clusterer
// pipeline from observed behavior. The generator's ground truth is kept
// only for validation tests.
package web

import (
	"fmt"

	"canvassing/internal/netsim"
	"canvassing/internal/services"
	"canvassing/internal/tranco"
)

// Cohort identifies the two crawl populations.
type Cohort uint8

// Cohorts from the paper's methodology (§3).
const (
	// Popular is the Tranco top-20k cohort.
	Popular Cohort = iota
	// Tail is the random sample of ranks 20k+1..1M.
	Tail
	// Demo marks vendor demo pages (attribution ground truth, §A.3).
	Demo
)

// String names the cohort.
func (c Cohort) String() string {
	switch c {
	case Popular:
		return "popular"
	case Tail:
		return "tail"
	case Demo:
		return "demo"
	}
	return "unknown"
}

// PageScript is one <script src=...> reference on a page.
type PageScript struct {
	// URL the browser requests.
	URL netsim.URL
	// OnScroll delays execution until the crawler's scroll simulation
	// (lazy-loaded tags).
	OnScroll bool
	// NeedsConsent gates execution behind the consent banner (CMP-gated
	// tag managers).
	NeedsConsent bool
}

// Site is one crawlable site.
type Site struct {
	// Domain is the site's registrable domain (or hostname).
	Domain string
	// Rank is the Tranco rank.
	Rank int
	// Cohort is the crawl population this site belongs to.
	Cohort Cohort
	// CrawlOK is false for sites that fail to crawl (unreachable,
	// hard bot-blocked, timeouts) — the paper successfully crawled
	// 16,276/20,000 popular and 17,260/20,000 tail sites.
	CrawlOK bool
	// ConsentBanner indicates a CMP banner the crawler must accept.
	ConsentBanner bool
	// Scripts are the homepage's script tags, in execution order.
	Scripts []PageScript
	// InnerScripts are script tags that only load on the site's inner
	// login page (/login). The paper's crawl never follows inner links
	// (§3.2 limitation); the EX2 extension experiment does.
	InnerScripts []PageScript
}

// TruthDeployment records what the generator planted on a site. It is
// exported for validation tests ONLY; the measurement pipeline never
// reads it.
type TruthDeployment struct {
	VendorSlug string
	Rebrander  string // rebrander slug if this is a rebranded FPJS
	Commercial bool   // FingerprintJS commercial tier
	Mode       services.ServingMode
	ScriptURL  string
	Longtail   int  // longtail actor id (-1 for named vendors)
	Inner      bool // deployed on the /login inner page only
	Deferred   bool // interaction-gated vendor (services.Deferred)
}

// Web is the generated world.
type Web struct {
	Config Config
	// Sites holds every cohort site (popular then tail); Demos holds
	// vendor demo pages.
	Sites []*Site
	Demos []*Site
	// Store hosts every script body; DNS carries the CNAME records.
	Store *netsim.Store
	DNS   *netsim.DNS
	// Truth maps domain → planted deployments (validation only).
	Truth map[string][]TruthDeployment

	byDomain map[string]*Site
}

// Ranking exports the generated world's site ranking as a Tranco-format
// list (both cohorts; demo pages are unranked and excluded).
func (w *Web) Ranking() *tranco.List {
	entries := make([]tranco.Entry, 0, len(w.Sites))
	for _, s := range w.Sites {
		entries = append(entries, tranco.Entry{Rank: s.Rank, Domain: s.Domain})
	}
	l, err := tranco.New(entries)
	if err != nil {
		// Generation guarantees distinct positive ranks; a failure here
		// is a generator bug worth crashing on.
		panic(err)
	}
	return l
}

// SiteByDomain returns the cohort or demo site with the given domain.
func (w *Web) SiteByDomain(domain string) *Site {
	return w.byDomain[domain]
}

// CohortSites returns the sites of one cohort.
func (w *Web) CohortSites(c Cohort) []*Site {
	var out []*Site
	for _, s := range w.Sites {
		if s.Cohort == c {
			out = append(out, s)
		}
	}
	return out
}

// scriptURL builds a URL on host with the given path.
func scriptURL(host, path string) netsim.URL {
	return netsim.URL{Scheme: "https", Host: host, Path: path}
}

// firstPartyBundlePath is where sites serve their bundled application JS.
const firstPartyBundlePath = "/assets/app.js"

// genericSiteJS returns the non-fingerprinting application code a site's
// bundle carries alongside any bundled vendor library.
func genericSiteJS(domain string) string {
	return fmt.Sprintf(`
// %s application bundle
var __app = { page: 'home', session: 0 };
function __appInit() {
	__app.session = Math.floor(Math.random() * 100000);
	var nav = document.createElement('nav');
	document.body.appendChild(nav);
	return __app.session;
}
__appInit();
`, domain)
}
