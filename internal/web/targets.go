package web

import "canvassing/internal/services"

// Calibration targets, taken from the paper's reported marginals. The
// generator plants deployments to land near these; the pipeline then
// re-measures them. All counts are absolute at Scale=1 (20k+20k sites)
// and scale linearly for smaller test webs.

// Config parameterizes web generation.
type Config struct {
	// Seed drives every random choice.
	Seed uint64
	// Scale shrinks the whole web proportionally: 1.0 is the paper's
	// 20k+20k crawl, 0.05 generates a 1k+1k web for tests.
	Scale float64
	// TrancoMax is the bottom of the ranking the tail is sampled from.
	TrancoMax int
	// Interact additionally plants the deferred-fingerprinting vendors
	// (services.Deferred()): scripts that fingerprint only after a
	// click, a scroll, or an idle period. Off (the default), the
	// generated web is byte-identical to builds that predate the
	// interaction engine.
	Interact bool
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig(seed uint64) Config {
	return Config{Seed: seed, Scale: 1.0, TrancoMax: 1_000_000}
}

// scaled returns max(0, round(n*scale)); floor 1 when n>0 and scale>0 is
// NOT applied — tiny webs legitimately drop rare vendors (GeeTest).
func (c Config) scaled(n int) int {
	v := int(float64(n)*c.Scale + 0.5)
	if v < 0 {
		return 0
	}
	return v
}

// scaledMin1 is scaled with a floor of 1, for structural counts.
func (c Config) scaledMin1(n int) int {
	v := c.scaled(n)
	if v < 1 {
		return 1
	}
	return v
}

const (
	// Cohort sizes and crawl success counts (§3.1, §4.1).
	popularSites     = 20000
	tailSites        = 20000
	popularCrawlOK   = 16276
	tailCrawlOK      = 17260
	popularFPTargets = 2067 // popular sites extracting ≥1 fingerprintable canvas
	tailFPTargets    = 1715

	// Unique-canvas targets (§4.2) are emergent: named vendors + Imperva
	// per-site canvases + the longtail actor population below.

	// Longtail fingerprinting actors: small self-hosted or boutique
	// scripts that make up the unattributed 27%/29% of fingerprinting
	// sites and the body of the 504/288 unique-canvas counts.
	longtailActors = 470
	// tailOnlyActors are longtail actors deployed exclusively on tail
	// sites (§4.2: largest tail-only canvas group 15 sites, next 3).
	tailOnlyActors = 40

	// Fraction of sites with consent banners and scroll-gated tags.
	consentBannerFrac = 0.34
	onScrollFrac      = 0.12

	// Benign canvas users (§3.2, A.2) among successfully-crawled sites.
	benignWebPPopular   = 306
	benignWebPTail      = 280
	benignSmallPopular  = 216
	benignSmallTail     = 190
	benignEmojiPopular  = 150
	benignEmojiTail     = 140
	benignEditorPopular = 420
	benignEditorTail    = 380
	benignChartPopular  = 800
	benignChartTail     = 700

	// TLD shares. RUFracPopular is set so mail.ru's 242 popular
	// deployments cover one third of .ru sites in the top 20k (§4.3.1).
	ruFracPopular = 0.0365
	ruFracTail    = 0.030
)

// vendorTarget is a Table 1 row: how many fingerprinting sites in each
// cohort deploy the vendor.
type vendorTarget struct {
	Slug    string
	Popular int
	Tail    int
}

// table1Targets mirrors Table 1 of the paper.
var table1Targets = []vendorTarget{
	{"akamai", 485, 205},
	{"fingerprintjs", 462, 298},
	{"mailru", 242, 173},
	{"fingerprintjs-legacy", 179, 90},
	{"imperva", 49, 13},
	{"aws-waf", 48, 14},
	{"insurads", 40, 1},
	{"signifyd", 39, 18},
	{"perimeterx", 35, 2},
	{"sift", 31, 8},
	{"shopify", 32, 457},
	{"adscore", 25, 30},
	{"geetest", 1, 0},
}

// rebranderTarget allocates part of the FingerprintJS population to
// ad-tech rebranders of the OSS library (§4.3.1).
type rebranderTarget struct {
	Slug    string
	Popular int
	Tail    int
}

var rebranderTargets = []rebranderTarget{
	{"aidata", 40, 10},
	{"adskeeper", 10, 6},
	{"trafficjunky", 7, 1},
	{"mgid", 23, 17},
	{"acint", 18, 29},
}

// fpjsCommercial is the number of FingerprintJS deployments on the paid
// tier (identifiable by fpnpmcdn.net URLs / extra surfaces).
var fpjsCommercial = vendorTarget{"fingerprintjs", 23, 10}

// deferredTargets are planted-site counts for the interaction-gated
// vendors (Config.Interact only). "Beyond the Crawl" measures roughly
// a 30% prevalence lift under interaction; these counts land our
// synthetic web in that neighbourhood relative to the load-time
// fingerprinting population.
var deferredTargets = []vendorTarget{
	{"datadome", 180, 80},
	{"moat", 220, 110},
	{"threatmetrix", 150, 60},
	{"forter", 110, 55},
}

// longtailModeWeights gives serving-mode weights for longtail actors per
// cohort. Less-popular sites overwhelmingly self-host homegrown
// fingerprinting (driving the tail's 52% first-party figure), while
// popular-site boutique deployments split across subdomain routing and
// vendor hosts (driving the 9.5% subdomain figure).
var longtailModeWeights = map[Cohort]map[services.ServingMode]float64{
	Popular: {
		services.ServeFirstParty: 0.20,
		services.ServeSubdomain:  0.34,
		services.ServeCDN:        0.03,
		services.ServeThirdParty: 0.43,
	},
	Tail: {
		services.ServeFirstParty: 0.82,
		services.ServeSubdomain:  0.06,
		services.ServeCDN:        0.03,
		services.ServeThirdParty: 0.09,
	},
}
