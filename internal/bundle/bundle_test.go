package bundle

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"canvassing/internal/checkpoint"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
)

// fixtureTelemetry builds a telemetry whose event log covers two crawl
// conditions and whose registry has a counter and a histogram.
func fixtureTelemetry() *obs.Telemetry {
	tel := obs.NewTelemetry()
	tel.Metrics.Counter("crawl.visits.ok").Add(7)
	tel.Metrics.Histogram("crawl.visit.seconds", obs.LatencyBuckets()).Observe(0.25)
	sp := tel.Tracer.Start("crawl")
	sp.End()
	for _, e := range []event.Event{
		{Kind: event.DetectClassify, Crawl: "control", Site: "a.com", Subject: "h1", Verdict: "fingerprintable"},
		{Kind: event.DetectClassify, Crawl: "control", Site: "b.com", Subject: "h2", Verdict: "fingerprintable"},
		{Kind: event.DetectClassify, Crawl: "abp", Site: "a.com", Subject: "h1", Verdict: "fingerprintable"},
		{Kind: event.BlocklistMatch, Crawl: "abp", Site: "b.com", Subject: "https://t.example/fp.js", Verdict: "blocked", Evidence: "||t.example^", Detail: "EasyList"},
		{Kind: event.AttribEvidence, Site: "a.com", Verdict: "acme", Evidence: "demo-hash"},
		{Kind: event.AttribEvidence, Site: "b.com", Verdict: "acme", Evidence: "url-pattern"},
	} {
		tel.Events.Record(e)
	}
	return tel
}

func TestWriteLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	tel := fixtureTelemetry()
	m := Manifest{Seed: 42, Scale: 0.05, Workers: 4, Notes: "test"}
	if err := Write(dir, m, tel); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{ManifestFile, MetricsFile, TraceFile, EventsFile} {
		if _, err := os.Stat(filepath.Join(dir, name)); err != nil {
			t.Fatalf("bundle file %s missing: %v", name, err)
		}
	}
	if err := WriteReport(dir, "report.txt", "hello"); err != nil {
		t.Fatal(err)
	}

	b, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Seed != 42 || b.Manifest.Scale != 0.05 || b.Manifest.Workers != 4 {
		t.Fatalf("manifest params lost: %+v", b.Manifest)
	}
	if b.Manifest.BundleSchema != SchemaVersion || b.Manifest.EventSchema != event.SchemaVersion {
		t.Fatalf("schema stamps wrong: %+v", b.Manifest)
	}
	if b.Manifest.GoVersion == "" {
		t.Fatal("go version not stamped")
	}
	if got := strings.Join(b.Manifest.Conditions, ","); got != "abp,control" {
		t.Fatalf("conditions = %q", got)
	}
	if b.Manifest.Events != 6 || len(b.Events) != 6 {
		t.Fatalf("events = %d/%d, want 6", b.Manifest.Events, len(b.Events))
	}
	if b.Metrics.Counters["crawl.visits.ok"] != 7 {
		t.Fatalf("metrics lost: %+v", b.Metrics.Counters)
	}
	if b.Metrics.Histograms["crawl.visit.seconds"].Count != 1 {
		t.Fatal("histogram snapshot lost")
	}
}

func TestLoadRejectsNewerSchema(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, Manifest{}, fixtureTelemetry()); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		t.Fatal(err)
	}
	hacked := strings.Replace(string(raw), `"bundle_schema": 1`, `"bundle_schema": 99`, 1)
	if hacked == string(raw) {
		t.Fatal("test setup: schema field not found")
	}
	if err := os.WriteFile(filepath.Join(dir, ManifestFile), []byte(hacked), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("newer bundle schema must be rejected, got %v", err)
	}
}

// TestLoadRejectsCheckpointedDir is the stale-verdict regression test:
// a directory holding a checkpoint.json sidecar belongs to an
// interrupted study, and Load must refuse it (serving half-finished
// artifacts silently gives wrong answers) while LoadPartial still
// opens it for deliberate inspection (cmd/runsdiff).
func TestLoadRejectsCheckpointedDir(t *testing.T) {
	dir := t.TempDir()
	if err := Write(dir, Manifest{Seed: 1}, fixtureTelemetry()); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, CheckpointSidecar), []byte(`{"schema":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(dir)
	if err == nil {
		t.Fatal("Load must reject a dir holding a checkpoint sidecar")
	}
	if !errors.Is(err, ErrCheckpointed) {
		t.Fatalf("error must wrap ErrCheckpointed, got %v", err)
	}
	if !strings.Contains(err.Error(), "resume") {
		t.Fatalf("error should tell the operator to resume the run, got %v", err)
	}
	if _, err := LoadPartial(dir); err != nil {
		t.Fatalf("LoadPartial must still open it: %v", err)
	}
	// Removing the sidecar makes the same dir loadable again.
	if err := os.Remove(filepath.Join(dir, CheckpointSidecar)); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err != nil {
		t.Fatalf("Load after sidecar removal: %v", err)
	}
}

// TestCheckpointSidecarNameAgrees pins the duplicated file-name
// constant to the one internal/checkpoint actually writes.
func TestCheckpointSidecarNameAgrees(t *testing.T) {
	if CheckpointSidecar != checkpoint.FileName {
		t.Fatalf("bundle.CheckpointSidecar = %q, checkpoint.FileName = %q", CheckpointSidecar, checkpoint.FileName)
	}
}

func TestDiffFlipsAndChanges(t *testing.T) {
	a := &Bundle{Events: []event.Event{
		{Kind: event.DetectClassify, Crawl: "control", Site: "a.com", Verdict: "fingerprintable"},
		{Kind: event.DetectClassify, Crawl: "control", Site: "b.com", Verdict: "fingerprintable"},
		{Kind: event.DetectClassify, Crawl: "control", Site: "c.com", Verdict: "excluded", Evidence: "small-canvas"},
		{Kind: event.AttribEvidence, Site: "a.com", Verdict: "acme", Evidence: "demo-hash"},
	}}
	a.Metrics.Counters = map[string]int64{"crawl.scripts.blocked": 0}
	b := &Bundle{Events: []event.Event{
		{Kind: event.DetectClassify, Crawl: "abp", Site: "b.com", Verdict: "fingerprintable"},
		{Kind: event.DetectClassify, Crawl: "abp", Site: "c.com", Verdict: "fingerprintable"},
		{Kind: event.AttribEvidence, Site: "a.com", Verdict: "acme", Evidence: "demo-hash"},
		{Kind: event.AttribEvidence, Site: "a.com", Verdict: "other", Evidence: "url-pattern"},
	}}
	b.Metrics.Counters = map[string]int64{"crawl.scripts.blocked": 12}

	d := Compute(a, b, "control", "abp")
	if d.FPSitesA != 2 || d.FPSitesB != 2 {
		t.Fatalf("fp sites = %d/%d, want 2/2", d.FPSitesA, d.FPSitesB)
	}
	// a.com lost, c.com gained; b.com stable.
	if d.Lost() != 1 || d.Gained() != 1 {
		t.Fatalf("flips = %d lost %d gained: %+v", d.Lost(), d.Gained(), d.Flips)
	}
	if d.Flips[0].Site != "a.com" || d.Flips[0].Direction != "lost" {
		t.Fatalf("flip order wrong: %+v", d.Flips)
	}
	// The flip identity: lost - gained == fpA - fpB.
	if d.Lost()-d.Gained() != d.FPSitesA-d.FPSitesB {
		t.Fatal("flip identity broken")
	}
	if len(d.AttribChanges) != 1 || d.AttribChanges[0].Site != "a.com" ||
		d.AttribChanges[0].Before != "acme" || d.AttribChanges[0].After != "acme+other" {
		t.Fatalf("attrib changes wrong: %+v", d.AttribChanges)
	}
	if len(d.CounterDeltas) != 1 || d.CounterDeltas[0].Name != "crawl.scripts.blocked" {
		t.Fatalf("counter deltas wrong: %+v", d.CounterDeltas)
	}

	text := d.Render()
	for _, want := range []string{"verdict flips", "lost", "a.com", "gained", "c.com", "attribution changes", "crawl.scripts.blocked"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestDiffHistogramRegressions(t *testing.T) {
	mk := func(mean float64) *Bundle {
		b := &Bundle{}
		b.Metrics.Histograms = map[string]obs.HistogramSnapshot{
			"crawl.visit.seconds": {Count: 10, Sum: mean * 10},
		}
		return b
	}
	d := Compute(mk(0.1), mk(0.2), "control", "control")
	if len(d.HistDeltas) != 1 || d.HistDeltas[0].RelPct != 100 {
		t.Fatalf("regression not flagged: %+v", d.HistDeltas)
	}
	d = Compute(mk(0.1), mk(0.11), "control", "control")
	if len(d.HistDeltas) != 0 {
		t.Fatalf("10%% drift must not be flagged: %+v", d.HistDeltas)
	}
}
