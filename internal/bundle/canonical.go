package bundle

import (
	"encoding/json"

	"canvassing/internal/obs"
)

// deterministicMetrics is the seed-reproducible projection of a
// metrics snapshot. encoding/json sorts map keys, so Marshal of this
// struct is canonical.
type deterministicMetrics struct {
	Counters        map[string]int64 `json:"counters"`
	Gauges          map[string]int64 `json:"gauges"`
	HistogramCounts map[string]int64 `json:"histogram_counts"`
}

// DeterministicMetrics renders the deterministic projection of a
// metrics snapshot: counters and gauges verbatim, histograms reduced
// to their observation counts. Histogram sums, extremes, and bucket
// fills carry wall-clock timings, which differ between any two runs —
// everything else in metrics.json is a pure function of the seed, and
// the determinism oracle compares exactly this projection.
//
// crawl.worker.utilization is the one exclusion: it measures the pool
// itself (one observation per worker, at worker exit), so its count is
// a property of scheduling, not of crawl content. Workers run ahead of
// the ordered committer, so whether their exit observations land
// before or after a given checkpoint cut is timing-dependent — under
// interrupt/resume the prefix pool's observations and the continuation
// pool's both count, inflating it by one pool width.
func DeterministicMetrics(s obs.Snapshot) []byte {
	d := deterministicMetrics{
		Counters:        s.Counters,
		Gauges:          s.Gauges,
		HistogramCounts: map[string]int64{},
	}
	for name, h := range s.Histograms {
		if name == "crawl.worker.utilization" {
			continue
		}
		d.HistogramCounts[name] = h.Count
	}
	b, err := json.MarshalIndent(d, "", "  ")
	if err != nil {
		// A map[string]int64 cannot fail to marshal.
		panic(err)
	}
	return b
}
