// Package bundle writes and loads run-artifact bundles: one directory
// per study run holding the manifest (seed, scale, schema versions),
// the metrics snapshot, the span trace, the evidence event log, and any
// rendered reports. A bundle is the durable, diffable record of a run —
// cmd/runsdiff loads two of them and explains what changed and why.
package bundle

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"

	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
)

// SchemaVersion is the bundle layout version, independent of the event
// wire schema (which travels in Manifest.EventSchema).
const SchemaVersion = 1

// Well-known file names inside a bundle directory.
const (
	ManifestFile = "manifest.json"
	MetricsFile  = "metrics.json"
	TraceFile    = "trace.jsonl"
	EventsFile   = "events.jsonl"
	// MetricsDeterministicFile is the seed-reproducible projection of
	// MetricsFile (see DeterministicMetrics). It exists so shell-level
	// comparisons — `cmp`, `make resume-smoke` — can assert determinism
	// without a Go loader to strip the wall-clock histogram fields.
	MetricsDeterministicFile = "metrics.deterministic.json"
)

// Manifest identifies a run: what produced the bundle and under which
// configuration, so two bundles can be compared meaningfully.
type Manifest struct {
	BundleSchema int     `json:"bundle_schema"`
	EventSchema  int     `json:"event_schema"`
	GoVersion    string  `json:"go_version"`
	Seed         uint64  `json:"seed"`
	Scale        float64 `json:"scale"`
	Workers      int     `json:"workers"`
	// Conditions lists the distinct crawl condition labels present in
	// the event log ("control", "abp", ...).
	Conditions []string `json:"conditions,omitempty"`
	// Events counts retained events; EventsTotal counts recorded ones
	// (they differ when the ring wrapped and dropped the oldest).
	Events        int    `json:"events"`
	EventsTotal   uint64 `json:"events_total"`
	EventsDropped uint64 `json:"events_dropped"`
	// Notes is free-form provenance ("cmd/repro -scale 0.1", ...).
	Notes string `json:"notes,omitempty"`
}

// Write creates dir and writes manifest.json, metrics.json,
// trace.jsonl, and events.jsonl from the run's telemetry. Schema
// versions, the go version, and the event-log tallies are stamped on
// the manifest automatically; the caller supplies the run parameters.
func Write(dir string, m Manifest, tel *obs.Telemetry) error {
	if tel == nil {
		return fmt.Errorf("bundle: nil telemetry")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	m.BundleSchema = SchemaVersion
	m.EventSchema = event.SchemaVersion
	m.GoVersion = runtime.Version()
	m.Conditions = tel.Events.Conditions()
	m.Events = tel.Events.Len()
	m.EventsTotal = tel.Events.Total()
	m.EventsDropped = tel.Events.Dropped()
	if err := writeJSON(filepath.Join(dir, ManifestFile), m); err != nil {
		return err
	}
	if err := writeWith(filepath.Join(dir, MetricsFile), tel.Metrics.WriteJSON); err != nil {
		return err
	}
	det := append(DeterministicMetrics(tel.Metrics.Snapshot()), '\n')
	if err := os.WriteFile(filepath.Join(dir, MetricsDeterministicFile), det, 0o644); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if err := writeWith(filepath.Join(dir, TraceFile), tel.Tracer.WriteJSONL); err != nil {
		return err
	}
	return writeWith(filepath.Join(dir, EventsFile), tel.Events.WriteJSONL)
}

// WriteReport adds a rendered report file to an existing bundle.
func WriteReport(dir, name, text string) error {
	if !strings.HasSuffix(text, "\n") {
		text += "\n"
	}
	if err := os.WriteFile(filepath.Join(dir, name), []byte(text), 0o644); err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	return nil
}

func writeJSON(path string, v any) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("bundle: %s: %w", path, err)
	}
	return nil
}

func writeWith(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	if err := write(f); err != nil {
		f.Close()
		return fmt.Errorf("bundle: %s: %w", path, err)
	}
	return f.Close()
}

// Bundle is a loaded run bundle.
type Bundle struct {
	Dir      string
	Manifest Manifest
	Metrics  obs.Snapshot
	Events   []event.Event
}

// CheckpointSidecar is the checkpoint file name internal/checkpoint
// maintains next to an interrupted study's artifacts. It is duplicated
// here (and pinned equal by a test) so the read path can reject
// half-finished bundles without bundle importing checkpoint.
const CheckpointSidecar = "checkpoint.json"

// ErrCheckpointed marks a Load rejected because the directory holds a
// checkpoint sidecar. Errors.Is-able so callers can branch on it.
var ErrCheckpointed = fmt.Errorf("directory holds a %s sidecar", CheckpointSidecar)

// Load reads a bundle directory. The manifest and event log are
// required; a missing metrics.json degrades to an empty snapshot so
// bundles from bare (untelemetered) runs still diff.
//
// A directory holding a checkpoint.json sidecar is rejected: the
// sidecar means the study that wrote it was interrupted mid-run, so
// any artifacts next to it reflect partial work — serving or diffing
// them silently gives stale verdicts. Resume the run (cmd/repro
// -resume) to completion first, or use LoadPartial to inspect the
// partial artifacts deliberately.
func Load(dir string) (*Bundle, error) {
	if _, err := os.Stat(filepath.Join(dir, CheckpointSidecar)); err == nil {
		return nil, fmt.Errorf("bundle: refusing to load %s: %w — the run was interrupted and these artifacts are partial; resume it to completion first (or load with LoadPartial to inspect anyway)", dir, ErrCheckpointed)
	}
	return LoadPartial(dir)
}

// LoadPartial is Load without the checkpoint-sidecar guard — for
// callers that knowingly inspect an interrupted run's artifacts
// (cmd/runsdiff warns and proceeds).
func LoadPartial(dir string) (*Bundle, error) {
	b := &Bundle{Dir: dir}
	mf, err := os.ReadFile(filepath.Join(dir, ManifestFile))
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	if err := json.Unmarshal(mf, &b.Manifest); err != nil {
		return nil, fmt.Errorf("bundle: %s: %w", ManifestFile, err)
	}
	if b.Manifest.BundleSchema > SchemaVersion {
		return nil, fmt.Errorf("bundle: %s has schema %d, this build reads <= %d",
			dir, b.Manifest.BundleSchema, SchemaVersion)
	}
	ef, err := os.Open(filepath.Join(dir, EventsFile))
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	defer ef.Close()
	if b.Events, err = event.ReadJSONL(ef); err != nil {
		return nil, fmt.Errorf("bundle: %s: %w", EventsFile, err)
	}
	if mx, err := os.ReadFile(filepath.Join(dir, MetricsFile)); err == nil {
		if err := json.Unmarshal(mx, &b.Metrics); err != nil {
			return nil, fmt.Errorf("bundle: %s: %w", MetricsFile, err)
		}
	}
	return b, nil
}

// FPSites returns the set of sites classified fingerprinting under the
// given crawl condition: any detect.classify event with a
// "fingerprintable" verdict marks its site.
func (b *Bundle) FPSites(cond string) map[string]bool {
	out := map[string]bool{}
	for i := range b.Events {
		e := &b.Events[i]
		if e.Kind == event.DetectClassify && e.Crawl == cond && e.Verdict == "fingerprintable" {
			out[e.Site] = true
		}
	}
	return out
}

// Attributions returns site → "+"-joined sorted vendor slugs from the
// attribution evidence events (site-level only; group- and
// ground-truth-level evidence carries no site).
func (b *Bundle) Attributions() map[string]string {
	sets := map[string]map[string]bool{}
	for i := range b.Events {
		e := &b.Events[i]
		if e.Kind != event.AttribEvidence || e.Site == "" {
			continue
		}
		if sets[e.Site] == nil {
			sets[e.Site] = map[string]bool{}
		}
		sets[e.Site][e.Verdict] = true
	}
	out := make(map[string]string, len(sets))
	for site, set := range sets {
		slugs := make([]string, 0, len(set))
		for s := range set {
			slugs = append(slugs, s)
		}
		sort.Strings(slugs)
		out[site] = strings.Join(slugs, "+")
	}
	return out
}

// VisitOutcomes tallies the visit.outcome events of one crawl condition
// by verdict ("ok", "degraded", "refused", ...). Empty for fault-free
// runs, which record no visit outcomes.
func (b *Bundle) VisitOutcomes(cond string) map[string]int {
	out := map[string]int{}
	for i := range b.Events {
		e := &b.Events[i]
		if e.Kind == event.VisitOutcome && e.Crawl == cond {
			out[e.Verdict]++
		}
	}
	return out
}

// VerdictFlip is one site whose fingerprinting verdict differs between
// the two compared conditions.
type VerdictFlip struct {
	Site string `json:"site"`
	// Direction is "lost" (fingerprinting in A, not in B) or "gained".
	Direction string `json:"direction"`
}

// AttribChange is one site whose attributed vendor set changed.
type AttribChange struct {
	Site   string `json:"site"`
	Before string `json:"before"`
	After  string `json:"after"`
}

// MetricDelta is one counter that moved between runs.
type MetricDelta struct {
	Name string `json:"name"`
	A    int64  `json:"a"`
	B    int64  `json:"b"`
}

// HistDelta compares one histogram's mean across runs.
type HistDelta struct {
	Name   string  `json:"name"`
	MeanA  float64 `json:"mean_a"`
	MeanB  float64 `json:"mean_b"`
	RelPct float64 `json:"rel_pct"`
}

// Diff is the comparison of two bundles under one condition each.
type Diff struct {
	CondA, CondB       string
	FPSitesA, FPSitesB int
	// Flips lists per-site verdict changes, lost first, sites sorted.
	Flips []VerdictFlip
	// AttribChanges lists per-site vendor-set changes.
	AttribChanges []AttribChange
	// CounterDeltas lists counters whose values differ.
	CounterDeltas []MetricDelta
	// HistDeltas lists histograms whose means moved by more than 25%
	// (candidate performance regressions).
	HistDeltas []HistDelta
	// OutcomeDeltas lists visit-outcome verdict counts that differ —
	// how fault injection (or a resilience change) shifted the crawl's
	// ok/degraded/failed mix between the runs.
	OutcomeDeltas []MetricDelta
}

// Compute diffs bundle a (condition condA) against bundle b (condition
// condB): per-site fingerprinting verdict flips, attribution changes,
// and metric movements.
func Compute(a, b *Bundle, condA, condB string) Diff {
	d := Diff{CondA: condA, CondB: condB}
	fpA, fpB := a.FPSites(condA), b.FPSites(condB)
	d.FPSitesA, d.FPSitesB = len(fpA), len(fpB)
	var lost, gained []string
	for site := range fpA {
		if !fpB[site] {
			lost = append(lost, site)
		}
	}
	for site := range fpB {
		if !fpA[site] {
			gained = append(gained, site)
		}
	}
	sort.Strings(lost)
	sort.Strings(gained)
	for _, s := range lost {
		d.Flips = append(d.Flips, VerdictFlip{Site: s, Direction: "lost"})
	}
	for _, s := range gained {
		d.Flips = append(d.Flips, VerdictFlip{Site: s, Direction: "gained"})
	}

	attrA, attrB := a.Attributions(), b.Attributions()
	sites := map[string]bool{}
	for s := range attrA {
		sites[s] = true
	}
	for s := range attrB {
		sites[s] = true
	}
	var changed []string
	for s := range sites {
		if attrA[s] != attrB[s] {
			changed = append(changed, s)
		}
	}
	sort.Strings(changed)
	for _, s := range changed {
		d.AttribChanges = append(d.AttribChanges, AttribChange{Site: s, Before: attrA[s], After: attrB[s]})
	}

	names := map[string]bool{}
	for n := range a.Metrics.Counters {
		names[n] = true
	}
	for n := range b.Metrics.Counters {
		names[n] = true
	}
	var cnames []string
	for n := range names {
		cnames = append(cnames, n)
	}
	sort.Strings(cnames)
	for _, n := range cnames {
		if va, vb := a.Metrics.Counters[n], b.Metrics.Counters[n]; va != vb {
			d.CounterDeltas = append(d.CounterDeltas, MetricDelta{Name: n, A: va, B: vb})
		}
	}
	var hnames []string
	for n := range a.Metrics.Histograms {
		if _, ok := b.Metrics.Histograms[n]; ok {
			hnames = append(hnames, n)
		}
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		ma, mb := a.Metrics.Histograms[n].Mean(), b.Metrics.Histograms[n].Mean()
		if ma == 0 {
			continue
		}
		rel := 100 * (mb - ma) / ma
		if math.Abs(rel) > 25 {
			d.HistDeltas = append(d.HistDeltas, HistDelta{Name: n, MeanA: ma, MeanB: mb, RelPct: rel})
		}
	}

	outA, outB := a.VisitOutcomes(condA), b.VisitOutcomes(condB)
	verdicts := map[string]bool{}
	for v := range outA {
		verdicts[v] = true
	}
	for v := range outB {
		verdicts[v] = true
	}
	var vnames []string
	for v := range verdicts {
		vnames = append(vnames, v)
	}
	sort.Strings(vnames)
	for _, v := range vnames {
		if va, vb := outA[v], outB[v]; va != vb {
			d.OutcomeDeltas = append(d.OutcomeDeltas, MetricDelta{Name: v, A: int64(va), B: int64(vb)})
		}
	}
	return d
}

// Lost and Gained count the verdict flips by direction. Their
// difference equals FPSitesA - FPSitesB by construction — the same
// identity Table 2's per-condition site counts obey, which is what
// makes the flip list an explanation of the prevalence delta rather
// than a separate estimate.
func (d Diff) Lost() int {
	n := 0
	for _, f := range d.Flips {
		if f.Direction == "lost" {
			n++
		}
	}
	return n
}

// Gained counts sites fingerprinting in B but not in A.
func (d Diff) Gained() int { return len(d.Flips) - d.Lost() }

// Render formats the diff as a terminal report.
func (d Diff) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Run diff — A:%s vs B:%s\n", d.CondA, d.CondB)
	fmt.Fprintf(&sb, "  fingerprinting sites: %d → %d (delta %+d)\n",
		d.FPSitesA, d.FPSitesB, d.FPSitesB-d.FPSitesA)
	fmt.Fprintf(&sb, "  verdict flips: %d lost, %d gained\n", d.Lost(), d.Gained())
	for _, f := range d.Flips {
		fmt.Fprintf(&sb, "    %-6s %s\n", f.Direction, f.Site)
	}
	if len(d.AttribChanges) == 0 {
		sb.WriteString("  attribution: unchanged\n")
	} else {
		fmt.Fprintf(&sb, "  attribution changes: %d sites\n", len(d.AttribChanges))
		for _, c := range d.AttribChanges {
			before, after := c.Before, c.After
			if before == "" {
				before = "-"
			}
			if after == "" {
				after = "-"
			}
			fmt.Fprintf(&sb, "    %s: %s → %s\n", c.Site, before, after)
		}
	}
	if len(d.CounterDeltas) == 0 {
		sb.WriteString("  counters: unchanged\n")
	} else {
		fmt.Fprintf(&sb, "  counter deltas: %d\n", len(d.CounterDeltas))
		for _, m := range d.CounterDeltas {
			fmt.Fprintf(&sb, "    %-32s %d → %d (%+d)\n", m.Name, m.A, m.B, m.B-m.A)
		}
	}
	if len(d.HistDeltas) > 0 {
		fmt.Fprintf(&sb, "  possible metric regressions (mean moved >25%%):\n")
		for _, h := range d.HistDeltas {
			fmt.Fprintf(&sb, "    %-32s mean %.6g → %.6g (%+.1f%%)\n", h.Name, h.MeanA, h.MeanB, h.RelPct)
		}
	}
	if len(d.OutcomeDeltas) > 0 {
		fmt.Fprintf(&sb, "  visit-outcome deltas:\n")
		for _, m := range d.OutcomeDeltas {
			fmt.Fprintf(&sb, "    %-32s %d → %d (%+d)\n", m.Name, m.A, m.B, m.B-m.A)
		}
	}
	return sb.String()
}

// RenderComparison is the full runsdiff report: one identifying header
// line per bundle followed by the diff. Pinned by a golden test, so
// cmd/runsdiff stays a thin shell around it.
func RenderComparison(a, b *Bundle, d Diff) string {
	var sb strings.Builder
	describe := func(label string, bl *Bundle) {
		m := bl.Manifest
		fmt.Fprintf(&sb, "%s: %s (seed %d, scale %g, %d events", label, bl.Dir, m.Seed, m.Scale, m.Events)
		if len(m.Conditions) > 0 {
			fmt.Fprintf(&sb, ", conditions %s", strings.Join(m.Conditions, "+"))
		}
		sb.WriteString(")\n")
	}
	describe("A", a)
	describe("B", b)
	sb.WriteByte('\n')
	sb.WriteString(d.Render())
	return sb.String()
}
