package bundle

import (
	"bytes"
	"strings"
	"testing"

	"canvassing/internal/obs"
)

// TestDeterministicMetricsProjection pins what the determinism oracle
// compares: counters and gauges survive verbatim, histograms are
// reduced to observation counts, and wall-clock payloads (sum, min,
// max, bucket fills) are dropped.
func TestDeterministicMetricsProjection(t *testing.T) {
	mk := func(sum float64) obs.Snapshot {
		reg := obs.NewRegistry()
		reg.Counter("c.a").Add(3)
		reg.Gauge("g.b").Set(7)
		h := reg.Histogram("h.lat", obs.LatencyBuckets())
		h.Observe(sum)
		h.Observe(sum / 2)
		return reg.Snapshot()
	}
	// Same observation counts, different observed values: the
	// projection must be identical.
	a := DeterministicMetrics(mk(0.5))
	b := DeterministicMetrics(mk(4.25))
	if !bytes.Equal(a, b) {
		t.Fatalf("projection leaked wall-clock payload:\n%s\nvs\n%s", a, b)
	}
	s := string(a)
	for _, want := range []string{`"c.a": 3`, `"g.b": 7`, `"h.lat": 2`} {
		if !strings.Contains(s, want) {
			t.Fatalf("projection missing %q:\n%s", want, s)
		}
	}
	for _, banned := range []string{"sum", "buckets", "min", "max"} {
		if strings.Contains(s, banned) {
			t.Fatalf("projection kept volatile field %q:\n%s", banned, s)
		}
	}
	// Different counts must differ.
	reg := obs.NewRegistry()
	reg.Counter("c.a").Add(4)
	if bytes.Equal(a, DeterministicMetrics(reg.Snapshot())) {
		t.Fatal("projection failed to distinguish different counters")
	}
}
