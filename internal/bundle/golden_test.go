package bundle

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
)

var update = flag.Bool("update", false, "regenerate the bundle fixtures and golden files")

// goldenTelemetry builds the deterministic run the golden fixtures pin.
// Variant "b" shifts the run the way a faulted re-crawl would: one site
// loses its fingerprinting verdict, attribution moves, counters and the
// virtual-latency histogram drift, and visit.outcome events appear.
func goldenTelemetry(variant string) *obs.Telemetry {
	tel := obs.NewTelemetry()
	c := tel.Metrics.Counter
	h := tel.Metrics.Histogram("crawl.visit.virtual.seconds", obs.LatencyBuckets())
	rec := func(e event.Event) { tel.Events.Record(e) }

	c("crawl.visits.ok").Add(96)
	rec(event.Event{Kind: event.DetectClassify, Crawl: "control", Site: "alpha.example", Subject: "h-alpha", Verdict: "fingerprintable"})
	rec(event.Event{Kind: event.DetectClassify, Crawl: "control", Site: "beta.example", Subject: "h-beta", Verdict: "fingerprintable"})
	rec(event.Event{Kind: event.AttribEvidence, Site: "alpha.example", Verdict: "acme", Evidence: "demo-hash"})
	h.Observe(0.4)
	h.Observe(0.4)

	switch variant {
	case "a":
		c("crawl.visits.failed").Add(4)
		rec(event.Event{Kind: event.DetectClassify, Crawl: "control", Site: "gamma.example", Subject: "h-gamma", Verdict: "fingerprintable"})
	case "b":
		c("crawl.visits.failed").Add(9)
		c("crawl.retry").Add(17)
		c("crawl.circuit-open").Add(3)
		rec(event.Event{Kind: event.DetectClassify, Crawl: "control", Site: "delta.example", Subject: "h-delta", Verdict: "fingerprintable"})
		rec(event.Event{Kind: event.AttribEvidence, Site: "beta.example", Verdict: "globex", Evidence: "url-pattern"})
		rec(event.Event{Kind: event.VisitOutcome, Crawl: "control", Site: "alpha.example", Verdict: "ok", Evidence: "none", Detail: "attempts=1"})
		rec(event.Event{Kind: event.VisitOutcome, Crawl: "control", Site: "beta.example", Verdict: "degraded", Evidence: "truncate", Detail: "attempts=1"})
		rec(event.Event{Kind: event.VisitOutcome, Crawl: "control", Site: "down.example", Verdict: "circuit-open", Evidence: "outage", Detail: "attempts=3"})
		h.Observe(2.5)
		h.Observe(4.0)
	}
	return tel
}

// TestRunsdiffGolden pins the full runsdiff text report — the
// RenderComparison output cmd/runsdiff prints — against committed
// bundle fixtures. Run with -update to regenerate both the fixtures
// and the golden file after an intentional format change.
func TestRunsdiffGolden(t *testing.T) {
	fixA := filepath.Join("testdata", "run_a")
	fixB := filepath.Join("testdata", "run_b")
	goldenPath := filepath.Join("testdata", "runsdiff.golden")

	if *update {
		if err := Write(fixA, Manifest{Seed: 1, Scale: 0.02, Workers: 1, Notes: "golden fixture A"}, goldenTelemetry("a")); err != nil {
			t.Fatal(err)
		}
		if err := Write(fixB, Manifest{Seed: 1, Scale: 0.02, Workers: 1, Notes: "golden fixture B"}, goldenTelemetry("b")); err != nil {
			t.Fatal(err)
		}
	}

	a, err := Load(fixA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Load(fixB)
	if err != nil {
		t.Fatal(err)
	}
	got := RenderComparison(a, b, Compute(a, b, "control", "control"))

	if *update {
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("runsdiff output drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\nRe-run with -update if the change is intentional.", got, want)
	}

	// The diff itself must surface each change class the fixtures plant.
	d := Compute(a, b, "control", "control")
	if d.Lost() != 1 || d.Gained() != 1 {
		t.Fatalf("flips = %d lost / %d gained, want 1/1", d.Lost(), d.Gained())
	}
	if len(d.AttribChanges) != 1 || d.AttribChanges[0].Site != "beta.example" {
		t.Fatalf("attrib changes = %+v", d.AttribChanges)
	}
	if len(d.CounterDeltas) == 0 || len(d.HistDeltas) == 0 || len(d.OutcomeDeltas) != 3 {
		t.Fatalf("deltas missing: counters=%d hists=%d outcomes=%d",
			len(d.CounterDeltas), len(d.HistDeltas), len(d.OutcomeDeltas))
	}
}
