package blocklist

import (
	"strings"
	"testing"
	"testing/quick"
)

func mustRule(t *testing.T, line string) *Rule {
	t.Helper()
	r, ok := ParseRule(line)
	if !ok {
		t.Fatalf("rule %q should parse", line)
	}
	return r
}

func scriptReq(url string) Request {
	return Request{URL: url, Type: TypeScript, ThirdParty: true}
}

func TestParseSkipsNonRules(t *testing.T) {
	for _, line := range []string{
		"", "   ", "! comment", "[Adblock Plus 2.0]",
		"example.com##.ad-banner", "example.com#@#.ok", "site.com#?#div",
	} {
		if _, ok := ParseRule(line); ok {
			t.Fatalf("%q should be skipped", line)
		}
	}
}

func TestPlainSubstringRule(t *testing.T) {
	r := mustRule(t, "/adserve/")
	if !r.Matches(scriptReq("https://cdn.example.com/adserve/unit.js")) {
		t.Fatal("substring should match")
	}
	if r.Matches(scriptReq("https://cdn.example.com/js/app.js")) {
		t.Fatal("should not match")
	}
}

func TestWildcardRule(t *testing.T) {
	r := mustRule(t, "/banner/*/img^")
	if !r.Matches(scriptReq("https://x.com/banner/123/img?x=1")) {
		t.Fatal("wildcard + separator should match")
	}
	if !r.Matches(scriptReq("https://x.com/banner/a/b/img")) {
		t.Fatal("separator at end-of-url should match")
	}
	if r.Matches(scriptReq("https://x.com/banner/123/imgfoo")) {
		t.Fatal("separator must not match a letter")
	}
}

func TestDomainAnchor(t *testing.T) {
	r := mustRule(t, "||mgid.com^")
	if !r.Matches(scriptReq("https://mgid.com/uid.js")) {
		t.Fatal("exact domain")
	}
	if !r.Matches(scriptReq("https://cdn.mgid.com/uid.js")) {
		t.Fatal("subdomain")
	}
	if r.Matches(scriptReq("https://notmgid.com/uid.js")) {
		t.Fatal("label boundary must hold")
	}
	if r.Matches(scriptReq("https://mgid.com.evil.net/uid.js")) {
		// "||mgid.com^" requires a separator after the match; the "."
		// of ".evil.net" is NOT a separator in ABP syntax.
		t.Fatal("dot is not a separator")
	}
}

func TestStartEndAnchors(t *testing.T) {
	r := mustRule(t, "|https://exact.com/fp.js|")
	if !r.Matches(scriptReq("https://exact.com/fp.js")) {
		t.Fatal("exact match")
	}
	if r.Matches(scriptReq("https://exact.com/fp.js?v=2")) {
		t.Fatal("end anchor should fail on suffix")
	}
	if r.Matches(scriptReq("https://pre.com/https://exact.com/fp.js")) {
		t.Fatal("start anchor should fail mid-url")
	}
}

func TestScriptTypeOption(t *testing.T) {
	r := mustRule(t, "||tracker.net^$script")
	if !r.Matches(Request{URL: "https://tracker.net/t.js", Type: TypeScript, ThirdParty: true}) {
		t.Fatal("script type")
	}
	if r.Matches(Request{URL: "https://tracker.net/t.js", Type: TypeImage, ThirdParty: true}) {
		t.Fatal("image should not match $script rule")
	}
}

func TestDocumentOnlyModifier(t *testing.T) {
	// The A.6 mgid rule: applies to documents, NOT scripts.
	r := mustRule(t, "||mgid.com^$document")
	if !r.DocumentOnly() {
		t.Fatal("should be flagged document-only")
	}
	if r.Matches(scriptReq("https://mgid.com/fp.js")) {
		t.Fatal("document-only rule must not match a script request")
	}
	if !r.Matches(Request{URL: "https://mgid.com/page", Type: TypeDocument, ThirdParty: true}) {
		t.Fatal("should match a document request")
	}
	if mustRule(t, "||x.com^$script,document").DocumentOnly() {
		t.Fatal("multi-type rules are not document-only")
	}
}

func TestThirdPartyOption(t *testing.T) {
	r := mustRule(t, "||fp.net^$third-party")
	if !r.Matches(Request{URL: "https://fp.net/a.js", Type: TypeScript, ThirdParty: true}) {
		t.Fatal("third-party context")
	}
	if r.Matches(Request{URL: "https://fp.net/a.js", Type: TypeScript, ThirdParty: false}) {
		t.Fatal("first-party context must not match $third-party")
	}
	inv := mustRule(t, "||fp.net^$~third-party")
	if inv.Matches(Request{URL: "https://fp.net/a.js", Type: TypeScript, ThirdParty: true}) {
		t.Fatal("~third-party excludes third-party loads")
	}
}

func TestDomainOption(t *testing.T) {
	r := mustRule(t, "/fp.js$script,domain=shop.com|~safe.shop.com")
	if !r.Matches(Request{URL: "https://cdn.net/fp.js", Type: TypeScript, PageHost: "www.shop.com", ThirdParty: true}) {
		t.Fatal("included domain")
	}
	if r.Matches(Request{URL: "https://cdn.net/fp.js", Type: TypeScript, PageHost: "other.com", ThirdParty: true}) {
		t.Fatal("non-listed page host")
	}
	if r.Matches(Request{URL: "https://cdn.net/fp.js", Type: TypeScript, PageHost: "safe.shop.com", ThirdParty: true}) {
		t.Fatal("excluded subdomain")
	}
}

func TestExceptionRules(t *testing.T) {
	l := ParseList("t", strings.Join([]string{
		"||ads.net^$script",
		"@@||ads.net/allowed.js$script",
	}, "\n"))
	if !l.ShouldBlock(scriptReq("https://ads.net/track.js")) {
		t.Fatal("should block")
	}
	if l.ShouldBlock(scriptReq("https://ads.net/allowed.js")) {
		t.Fatal("exception should win")
	}
	if l.Match(scriptReq("https://ads.net/allowed.js")) == nil {
		t.Fatal("raw Match ignores exceptions")
	}
}

func TestOptionsHeuristic(t *testing.T) {
	// A "$" inside the URL pattern must not be treated as options.
	r := mustRule(t, "/path$with$dollar")
	if !r.Matches(scriptReq("https://x.com/path$with$dollar")) {
		t.Fatal("dollar in pattern")
	}
	// Unknown option names do not look like an option list, so the "$"
	// text stays part of the pattern (adblockparser's conservative
	// behavior for odd lines).
	r2 := mustRule(t, "||x.com/a$fancy-new-option")
	if r2.Matches(scriptReq("https://x.com/a")) {
		t.Fatal("the $… text should be required literally")
	}
	if !r2.Matches(scriptReq("https://x.com/a$fancy-new-option")) {
		t.Fatal("literal match should work")
	}
}

func TestCaseInsensitivity(t *testing.T) {
	r := mustRule(t, "||Tracker.NET^$script")
	if !r.Matches(scriptReq("https://TRACKER.net/T.JS")) {
		t.Fatal("matching should be case-insensitive")
	}
}

func TestDomainList(t *testing.T) {
	d := ParseDomainList("Disconnect", "# header\nmail.ru\nfpnpmcdn.net\n")
	if d.Len() != 2 {
		t.Fatalf("len = %d", d.Len())
	}
	if !d.ContainsHost("privacy-cs.mail.ru") {
		t.Fatal("subdomain should match")
	}
	if !d.ContainsHost("mail.ru") {
		t.Fatal("exact")
	}
	if d.ContainsHost("gmail.ru") {
		t.Fatal("label boundary")
	}
	if d.ContainsHost("example.com") {
		t.Fatal("unlisted")
	}
}

func TestGeneratedLists(t *testing.T) {
	s := NewStandardLists(42)
	if s.EasyList.Len() < 800 {
		t.Fatalf("EasyList too small: %d", s.EasyList.Len())
	}
	if s.EasyPrivacy.Len() < 500 {
		t.Fatalf("EasyPrivacy too small: %d", s.EasyPrivacy.Len())
	}
	if s.Disconnect.Len() < 5 {
		t.Fatal("Disconnect too small")
	}
	// A.6: EasyList carries exactly 828 lone-$document rules.
	if got := s.EasyList.DocumentOnlyRuleCount(); got != 828 {
		t.Fatalf("document-only rules = %d, want 828", got)
	}
}

func TestGeneratedListsDeterministic(t *testing.T) {
	if GenerateEasyList(7) != GenerateEasyList(7) {
		t.Fatal("same seed must generate identical lists")
	}
	if GenerateEasyList(7) == GenerateEasyList(8) {
		t.Fatal("different seeds should differ")
	}
}

func TestCoverageOfKnownVendors(t *testing.T) {
	s := NewStandardLists(42)
	// mail.ru counter: EasyPrivacy + Disconnect, not EasyList.
	el, ep, disc := s.CoverageOf("https://privacy-cs.mail.ru/top/counter.js", "privacy-cs.mail.ru")
	if el || !ep || !disc {
		t.Fatalf("mail.ru coverage: el=%v ep=%v disc=%v", el, ep, disc)
	}
	// Akamai sensor: EasyList URL rule matches (footnote 5) when context
	// is ignored.
	el, ep, disc = s.CoverageOf("https://www.bank.com/akam/13/5ab2ec9e", "www.bank.com")
	if !el {
		t.Fatal("akamai path should be covered by EasyList")
	}
	if disc {
		t.Fatal("the customer's own host is not in Disconnect")
	}
	// mgid: the $document rule must NOT count for script coverage in
	// EasyList, but EasyPrivacy's script rule does.
	el, ep, disc = s.CoverageOf("https://mgid.com/uid.js", "mgid.com")
	if el {
		t.Fatal("mgid EasyList rule is document-only (A.6)")
	}
	if !ep || !disc {
		t.Fatal("mgid should be in EasyPrivacy and Disconnect")
	}
	// A first-party bundle on a random site: no coverage at all.
	el, ep, disc = s.CoverageOf("https://shop-0042.example.com/assets/app.js", "shop-0042.example.com")
	if el || ep || disc {
		t.Fatal("first-party bundles have no list coverage")
	}
}

func TestMgidPracticalGap(t *testing.T) {
	// E12 in miniature: a naive domain check says mgid is "in EasyList",
	// but the script request is not actually blocked.
	s := NewStandardLists(42)
	foundMgidRule := false
	for _, r := range s.EasyList.BlockRules() {
		if strings.Contains(r.Raw, "mgid.com") {
			foundMgidRule = true
		}
	}
	if !foundMgidRule {
		t.Fatal("EasyList must contain a mgid.com rule")
	}
	if s.EasyList.ShouldBlock(scriptReq("https://mgid.com/fp.js")) {
		t.Fatal("yet the script load must not be blocked")
	}
}

// Property: ParseRule never panics and Matches never panics for random
// rule text and URLs.
func TestParserRobustnessProperty(t *testing.T) {
	f := func(line, url string) bool {
		r, ok := ParseRule(line)
		if ok && r != nil {
			r.Matches(Request{URL: url, Type: TypeScript, ThirdParty: true})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 3000}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkListMatch(b *testing.B) {
	s := NewStandardLists(42)
	req := scriptReq("https://privacy-cs.mail.ru/top/counter.js")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EasyPrivacy.Match(req)
	}
}

func BenchmarkListMiss(b *testing.B) {
	s := NewStandardLists(42)
	req := scriptReq("https://benign-site.example.org/assets/main.js")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.EasyList.Match(req)
	}
}
