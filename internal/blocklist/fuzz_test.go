package blocklist

import (
	"strings"
	"testing"
)

// FuzzParseRule hammers the filter parser and matcher with arbitrary
// rule lines and URLs: neither may panic, and accepted rules must keep
// the parse-level invariants (Raw preservation, "@@" ⇒ Exception) the
// engine and the rule-provenance reports rely on.
func FuzzParseRule(f *testing.F) {
	for _, seed := range []string{
		"||tracker.example.com^",
		"||ads.example.com^$script,third-party",
		"|https://cdn.example.com/fp.js|",
		"@@||goodsite.com^$script",
		"/fingerprint/*/collect^|",
		"abc^|",
		"^^^",
		"$script",
		"||x^$domain=a.com|~b.a.com",
		"tracker$script,domain=",
		"! comment",
		"##.ad-banner",
		"@@",
		"*",
		"||",
		"|x|",
		"a$unknownopt",
		"||mgid.com^$document",
	} {
		f.Add(seed, "https://sub.tracker.example.com/fp/collect.js")
	}
	f.Fuzz(func(t *testing.T, line, rawURL string) {
		r, ok := ParseRule(line)
		if !ok {
			if r != nil {
				t.Fatalf("ParseRule(%q) returned a rule with ok=false", line)
			}
			return
		}
		if r.Raw != strings.TrimSpace(line) {
			t.Fatalf("ParseRule(%q).Raw = %q, want the trimmed line", line, r.Raw)
		}
		if r.Exception != strings.HasPrefix(r.Raw, "@@") {
			t.Fatalf("ParseRule(%q): Exception=%v disagrees with @@ prefix", line, r.Exception)
		}
		// Matching must be total: no panics for any rule/URL pair, and
		// a deterministic answer (same request twice, same verdict).
		for _, req := range []Request{
			{URL: rawURL, Type: TypeScript, PageHost: "news.example", ThirdParty: true},
			{URL: rawURL, Type: TypeDocument, PageHost: "tracker.example.com", ThirdParty: false},
			{URL: "https://sub.tracker.example.com/fp/collect.js", Type: TypeScript, PageHost: "a.b", ThirdParty: true},
			{URL: "", Type: TypeImage},
		} {
			if r.Matches(req) != r.Matches(req) {
				t.Fatalf("ParseRule(%q): Matches not deterministic for %+v", line, req)
			}
		}
	})
}
