package blocklist

import (
	"strings"
)

// List is a parsed filter list with ABP semantics: exception rules beat
// block rules.
type List struct {
	// Name identifies the list ("EasyList", "EasyPrivacy", ...).
	Name string

	block      []*Rule
	exceptions []*Rule
}

// ParseList parses a full list text, skipping comments and unsupported
// rule kinds.
func ParseList(name, text string) *List {
	l := &List{Name: name}
	for _, line := range strings.Split(text, "\n") {
		r, ok := ParseRule(line)
		if !ok {
			continue
		}
		if r.Exception {
			l.exceptions = append(l.exceptions, r)
		} else {
			l.block = append(l.block, r)
		}
	}
	return l
}

// Len returns the number of usable rules (block + exception).
func (l *List) Len() int { return len(l.block) + len(l.exceptions) }

// BlockRules returns the block rules (read-only use).
func (l *List) BlockRules() []*Rule { return l.block }

// Match returns the first block rule that applies to req, or nil. It is
// the raw "is this URL covered by the list" primitive the Table 4
// analysis uses (no exception processing, matching adblockparser's
// should_block on a single list with one rule set).
func (l *List) Match(req Request) *Rule {
	for _, r := range l.block {
		if r.Matches(req) {
			return r
		}
	}
	return nil
}

// ShouldBlock applies full ABP semantics: blocked if some block rule
// matches and no exception rule does.
func (l *List) ShouldBlock(req Request) bool {
	if l.Match(req) == nil {
		return false
	}
	for _, r := range l.exceptions {
		if r.Matches(req) {
			return false
		}
	}
	return true
}

// DocumentOnlyRuleCount counts rules that carry a lone $document modifier
// (the A.6 rule-design failure: EasyList had 828 such rules).
func (l *List) DocumentOnlyRuleCount() int {
	n := 0
	for _, r := range l.block {
		if r.DocumentOnly() {
			n++
		}
	}
	return n
}

// DomainList is the Disconnect-style tracker list: a set of registrable
// domains. Matching is purely domain-based (§5.1).
type DomainList struct {
	Name    string
	domains map[string]bool
}

// ParseDomainList parses one domain per line ("#" comments allowed).
func ParseDomainList(name, text string) *DomainList {
	d := &DomainList{Name: name, domains: map[string]bool{}}
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d.domains[strings.ToLower(line)] = true
	}
	return d
}

// Len returns the number of listed domains.
func (d *DomainList) Len() int { return len(d.domains) }

// ContainsHost reports whether host or any parent domain is listed.
func (d *DomainList) ContainsHost(host string) bool {
	host = strings.ToLower(host)
	for host != "" {
		if d.domains[host] {
			return true
		}
		i := strings.IndexByte(host, '.')
		if i < 0 {
			return false
		}
		host = host[i+1:]
	}
	return false
}
