package blocklist

import (
	"fmt"
	"strings"

	"canvassing/internal/stats"
)

// This file generates the synthetic EasyList / EasyPrivacy / Disconnect
// lists the experiments run against. The fingerprinting-relevant rules
// mirror what the paper observed in the real lists:
//
//   - EasyList carries a rule matching Akamai's sensor URL (footnote 5)
//     but marked third-party, so the always-first-party deployment is
//     never actually blocked;
//   - EasyList's only mgid.com rule carries the lone $document modifier
//     (Appendix A.6), making it useless against scripts;
//   - EasyPrivacy covers the tracker-ish hosts (mail.ru counter,
//     FingerprintJS commercial CDN, ad-tech rebranders);
//   - Disconnect is a plain domain list.
//
// Plus realistic filler: generic ad-path patterns and several hundred
// $document-modified rules (EasyList had 828 at the time of the study).

// TrackerHost marks a (longtail) tracker host for inclusion in the
// crowdsourced lists. Crowdsourced lists cover boutique trackers too —
// that coverage is a large share of Table 4's totals.
type TrackerHost struct {
	Host string
	EL   bool
	EP   bool
	Disc bool
}

// GenerateEasyList returns the synthetic EasyList text.
func GenerateEasyList(seed uint64) string {
	var sb strings.Builder
	sb.WriteString("[Adblock Plus 2.0]\n! Title: EasyList (synthetic)\n")
	// Fingerprinting-relevant rules.
	core := []string{
		"/akam/$script,third-party",
		"||mgid.com^$document",
		"||insurads.com^$script",
		"||adskeeper.com^$script,third-party",
		"||trafficjunky.net^",
		"||aidata.io^$document",
		"||fpnpmcdn.net^$script,third-party",
		"/fpjs-pro/$script,third-party",
		"! generic ad patterns",
		"/banner/*/img^",
		"/adserve/$script",
		"||ads.example-network.com^",
		"&ad_box_",
		"-advert-banner.",
	}
	for _, r := range core {
		sb.WriteString(r)
		sb.WriteByte('\n')
	}
	// Exception rules (ABP whitelist syntax).
	sb.WriteString("@@||example-paywall.com/ads.js$script\n")
	// Filler: 826 further $document rules, so with the mgid and aidata
	// rules above EasyList carries exactly the 828 lone-$document rules
	// the paper counts (A.6); plus some plain domain blocks.
	rng := stats.NewRNG(seed).Fork("easylist-filler")
	for i := 0; i < 826; i++ {
		sb.WriteString(fmt.Sprintf("||doc-rule-%04d.example^$document\n", rng.Intn(100000)))
	}
	for i := 0; i < 400; i++ {
		sb.WriteString(fmt.Sprintf("||ad-host-%04d.example^$third-party\n", rng.Intn(100000)))
	}
	return sb.String()
}

// GenerateEasyPrivacy returns the synthetic EasyPrivacy text.
func GenerateEasyPrivacy(seed uint64) string {
	var sb strings.Builder
	sb.WriteString("[Adblock Plus 2.0]\n! Title: EasyPrivacy (synthetic)\n")
	core := []string{
		"! fingerprinting-general section",
		"/fingerprintjs.$script",
		"||privacy-cs.mail.ru^",
		"||fpnpmcdn.net^$script",
		"||acint.net^$script",
		"||mgid.com^$script",
		"||adskeeper.com^",
		"||trafficjunky.net^$script",
		"||aidata.io^",
		"||insurads.com^",
		"||sift.com^$script,third-party",
		"||px-cloud.net^$third-party",
		"||adsco.re^",
		"! generic tracking patterns",
		"/tracking/pixel^",
		"/telemetry/$script",
		"||metrics.example-analytics.net^",
	}
	for _, r := range core {
		sb.WriteString(r)
		sb.WriteByte('\n')
	}
	rng := stats.NewRNG(seed).Fork("easyprivacy-filler")
	for i := 0; i < 600; i++ {
		sb.WriteString(fmt.Sprintf("||tracker-%04d.example^$third-party\n", rng.Intn(100000)))
	}
	return sb.String()
}

// GenerateDisconnect returns the synthetic Disconnect tracker-domain list.
func GenerateDisconnect() string {
	domains := []string{
		"# Disconnect tracker protection (synthetic)",
		"mail.ru",
		"fpnpmcdn.net",
		"mgid.com",
		"adskeeper.com",
		"trafficjunky.net",
		"aidata.io",
		"acint.net",
		"insurads.com",
		"adsco.re",
		"sift.com",
		"px-cloud.net",
	}
	return strings.Join(domains, "\n") + "\n"
}

// StandardLists bundles the three parsed lists for the analyses.
type StandardLists struct {
	EasyList    *List
	EasyPrivacy *List
	Disconnect  *DomainList
}

// NewStandardLists generates and parses all three lists.
func NewStandardLists(seed uint64) *StandardLists {
	return NewStandardListsWithTrackers(seed, nil)
}

// NewStandardListsWithTrackers generates the lists with additional
// tracker-host rules appended (the crowdsourced coverage of longtail
// fingerprinters).
func NewStandardListsWithTrackers(seed uint64, trackers []TrackerHost) *StandardLists {
	var elExtra, epExtra, discExtra strings.Builder
	for _, t := range trackers {
		if t.EL {
			fmt.Fprintf(&elExtra, "||%s^$script,third-party\n", t.Host)
		}
		if t.EP {
			fmt.Fprintf(&epExtra, "||%s^\n", t.Host)
		}
		if t.Disc {
			fmt.Fprintf(&discExtra, "%s\n", t.Host)
		}
	}
	return &StandardLists{
		EasyList:    ParseList("EasyList", GenerateEasyList(seed)+elExtra.String()),
		EasyPrivacy: ParseList("EasyPrivacy", GenerateEasyPrivacy(seed)+epExtra.String()),
		Disconnect:  ParseDomainList("Disconnect", GenerateDisconnect()+discExtra.String()),
	}
}

// CoverageOf reports which lists cover a script load. The Table 4
// methodology applies: EasyList/EasyPrivacy rules are evaluated against
// the URL with resource type script and *without* dynamic context
// (ThirdParty is assumed true so contextual modifiers do not suppress
// matches); Disconnect is a pure domain check on the script host.
func (s *StandardLists) CoverageOf(scriptURL, scriptHost string) (inEL, inEP, inDisc bool) {
	req := Request{URL: scriptURL, Type: TypeScript, ThirdParty: true}
	return s.EasyList.Match(req) != nil, s.EasyPrivacy.Match(req) != nil, s.Disconnect.ContainsHost(scriptHost)
}
