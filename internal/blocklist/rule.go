// Package blocklist implements an Adblock Plus filter-list engine — the
// equivalent of the adblockparser library the paper uses (§5.1) — plus
// the Disconnect domain list format, and generation of the synthetic
// EasyList/EasyPrivacy/Disconnect lists used by the experiments.
//
// Supported filter syntax: address-part patterns with "*" wildcards, the
// "^" separator placeholder, "||" domain anchors, "|" start/end anchors,
// "@@" exception rules, and the option modifiers that matter for this
// study ($script, $image, $document, $subdocument, $third-party,
// $~third-party, $domain=...). Element-hiding rules ("##") and comments
// ("!") are ignored, as adblockparser ignores them.
package blocklist

import (
	"strings"
)

// RequestType classifies the resource being requested.
type RequestType string

// Request types relevant to the study.
const (
	TypeScript      RequestType = "script"
	TypeDocument    RequestType = "document"
	TypeSubdocument RequestType = "subdocument"
	TypeImage       RequestType = "image"
	TypeOther       RequestType = "other"
)

// Request is one resource load to test against a list.
type Request struct {
	// URL of the resource.
	URL string
	// Type of the resource (script for fingerprinting-script checks).
	Type RequestType
	// PageHost is the host of the page making the request, used for
	// third-party determination.
	PageHost string
	// ThirdParty reports whether URL's host and PageHost belong to
	// different sites. The caller computes it (the engine does not
	// embed eTLD+1 policy).
	ThirdParty bool
}

// Rule is one parsed filter.
type Rule struct {
	// Raw is the original filter text.
	Raw string
	// Exception marks "@@" rules.
	Exception bool
	// pattern pieces (split on "*"), with anchoring flags.
	parts       []string
	anchorStart bool // "|" prefix: match at start of URL
	anchorEnd   bool // "|" suffix: match at end of URL
	domainAnch  bool // "||" prefix: match at a domain boundary
	// option modifiers
	typeMask   map[RequestType]bool // nil = all types
	thirdParty int8                 // 0 unset, +1 $third-party, -1 $~third-party
	domains    []string             // $domain= includes
	domainsNot []string             // $domain=~ excludes
	hasDocOnly bool                 // $document with no resource types
}

// ParseRule parses one filter line. It returns nil (and ok=false) for
// comments, element-hiding rules, and empty lines.
func ParseRule(line string) (*Rule, bool) {
	line = strings.TrimSpace(line)
	if line == "" || strings.HasPrefix(line, "!") || strings.HasPrefix(line, "[") {
		return nil, false
	}
	if strings.Contains(line, "##") || strings.Contains(line, "#@#") || strings.Contains(line, "#?#") {
		return nil, false // element hiding
	}
	r := &Rule{Raw: line}
	body := line
	if strings.HasPrefix(body, "@@") {
		r.Exception = true
		body = body[2:]
	}
	// Split off options at the last "$" (URLs may contain "$" rarely;
	// filter lists put options last).
	if i := strings.LastIndexByte(body, '$'); i >= 0 {
		opts := body[i+1:]
		// Heuristic, as in adblockparser: treat as options only if it
		// looks like a comma-separated option list.
		if looksLikeOptions(opts) {
			body = body[:i]
			if !r.applyOptions(opts) {
				return nil, false // unsupported critical option
			}
		}
	}
	if strings.HasPrefix(body, "||") {
		r.domainAnch = true
		body = body[2:]
	} else if strings.HasPrefix(body, "|") {
		r.anchorStart = true
		body = body[1:]
	}
	if strings.HasSuffix(body, "|") {
		r.anchorEnd = true
		body = body[:len(body)-1]
	}
	if body == "" {
		return nil, false
	}
	r.parts = strings.Split(body, "*")
	return r, true
}

var knownOptions = []string{
	"script", "image", "stylesheet", "object", "xmlhttprequest", "ping",
	"subdocument", "document", "websocket", "webrtc", "popup", "font",
	"media", "other", "third-party", "first-party", "match-case",
	"domain", "elemhide", "generichide", "genericblock",
}

func looksLikeOptions(s string) bool {
	if s == "" {
		return false
	}
	for _, opt := range strings.Split(s, ",") {
		opt = strings.TrimPrefix(strings.TrimSpace(opt), "~")
		if k, _, found := strings.Cut(opt, "="); found {
			opt = k
		}
		ok := false
		for _, known := range knownOptions {
			if opt == known {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// applyOptions parses the $option list; it reports false when the rule
// should be dropped entirely (an unsupported option semantics).
func (r *Rule) applyOptions(opts string) bool {
	docOnly := false
	sawType := false
	for _, opt := range strings.Split(opts, ",") {
		opt = strings.TrimSpace(opt)
		neg := strings.HasPrefix(opt, "~")
		if neg {
			opt = opt[1:]
		}
		switch {
		case opt == "third-party":
			if neg {
				r.thirdParty = -1
			} else {
				r.thirdParty = 1
			}
		case opt == "first-party":
			if neg {
				r.thirdParty = 1
			} else {
				r.thirdParty = -1
			}
		case strings.HasPrefix(opt, "domain="):
			for _, d := range strings.Split(opt[len("domain="):], "|") {
				d = strings.TrimSpace(d)
				if strings.HasPrefix(d, "~") {
					r.domainsNot = append(r.domainsNot, strings.ToLower(d[1:]))
				} else if d != "" {
					r.domains = append(r.domains, strings.ToLower(d))
				}
			}
		case opt == "match-case", opt == "elemhide", opt == "generichide", opt == "genericblock", opt == "popup":
			// Accepted and ignored.
		default:
			// Resource-type option.
			rt := RequestType(opt)
			switch rt {
			case TypeScript, TypeDocument, TypeSubdocument, TypeImage,
				"stylesheet", "object", "xmlhttprequest", "ping",
				"websocket", "webrtc", "font", "media", "other":
				if r.typeMask == nil {
					r.typeMask = map[RequestType]bool{}
				}
				sawType = true
				if neg {
					// Negated types: start from "all" semantics; we
					// approximate by marking everything except this
					// type. Rare in practice; treat as no-op mask.
					continue
				}
				r.typeMask[rt] = true
				if rt == TypeDocument {
					docOnly = true
				} else {
					docOnly = false
				}
			default:
				return false // unknown option: drop rule
			}
		}
	}
	r.hasDocOnly = docOnly && sawType && len(r.typeMask) == 1
	return true
}

// DocumentOnly reports whether the rule carries a lone $document modifier
// — the A.6 mis-scoping that makes a filter useless against scripts.
func (r *Rule) DocumentOnly() bool { return r.hasDocOnly }

// Matches reports whether the rule applies to req.
func (r *Rule) Matches(req Request) bool {
	// Option gating first (cheap).
	if r.typeMask != nil && !r.typeMask[req.Type] {
		return false
	}
	if r.thirdParty == 1 && !req.ThirdParty {
		return false
	}
	if r.thirdParty == -1 && req.ThirdParty {
		return false
	}
	if len(r.domains) > 0 && !hostMatchesAny(req.PageHost, r.domains) {
		return false
	}
	if len(r.domainsNot) > 0 && hostMatchesAny(req.PageHost, r.domainsNot) {
		return false
	}
	return r.matchPattern(strings.ToLower(req.URL))
}

func hostMatchesAny(host string, domains []string) bool {
	host = strings.ToLower(host)
	for _, d := range domains {
		if host == d || strings.HasSuffix(host, "."+d) {
			return true
		}
	}
	return false
}

// matchPattern runs the wildcard/anchor match against the URL.
func (r *Rule) matchPattern(url string) bool {
	if r.domainAnch {
		// "||example.com/x" matches at the start of a (sub)domain.
		return matchDomainAnchored(url, r.parts, r.anchorEnd)
	}
	pos := 0
	for i, part := range r.parts {
		part = strings.ToLower(part)
		if part == "" {
			continue
		}
		idx := indexFrom(url, part, pos, i == 0 && r.anchorStart)
		if idx < 0 {
			return false
		}
		if i == 0 && r.anchorStart && idx != 0 {
			return false
		}
		pos = idx + len(part)
	}
	if r.anchorEnd {
		last := lastNonEmpty(r.parts)
		if last == "" {
			return true
		}
		return matchesEnd(url, strings.ToLower(last))
	}
	return true
}

func lastNonEmpty(parts []string) string {
	for i := len(parts) - 1; i >= 0; i-- {
		if parts[i] != "" {
			return parts[i]
		}
	}
	return ""
}

// indexFrom finds part in url at/after pos honoring "^" separators.
func indexFrom(url, part string, pos int, anchored bool) int {
	if pos > len(url) {
		return -1
	}
	for i := pos; i+sepLen(part) <= len(url)+sepExtra(part); i++ {
		if anchored && i > pos {
			return -1
		}
		if sepMatch(url, i, part) {
			return i
		}
	}
	return -1
}

// sepLen is the minimum URL characters needed to match the part (a "^"
// may match the end of the URL, consuming nothing).
func sepLen(part string) int { return len(part) }

func sepExtra(part string) int {
	if strings.HasSuffix(part, "^") {
		return 1
	}
	return 0
}

// sepMatch tests part against url at offset i, treating '^' as the ABP
// separator class.
func sepMatch(url string, i int, part string) bool {
	for j := 0; j < len(part); j++ {
		pc := part[j]
		if pc == '^' {
			if i+j == len(url) {
				return j == len(part)-1 // '^' may match end-of-URL
			}
			if !isSeparator(url[i+j]) {
				return false
			}
			continue
		}
		if i+j >= len(url) || url[i+j] != pc {
			return false
		}
	}
	return true
}

// isSeparator implements the ABP separator class: anything that is not a
// letter, digit, or one of "_", "-", ".", "%".
func isSeparator(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return false
	case c == '_' || c == '-' || c == '.' || c == '%':
		return false
	}
	return true
}

func matchesEnd(url, last string) bool {
	if strings.HasSuffix(last, "^") {
		// "...^|" — separator then end; the '^' consumed end-of-url.
		return sepMatch(url, len(url)-len(last)+1, last) ||
			(len(url) >= len(last) && sepMatch(url, len(url)-len(last), last))
	}
	return strings.HasSuffix(url, last)
}

// matchDomainAnchored implements "||" semantics: the first pattern part
// must match starting at a hostname-label boundary within the URL's host.
func matchDomainAnchored(url string, parts []string, anchorEnd bool) bool {
	// Find the host section of the URL.
	rest := url
	if i := strings.Index(rest, "://"); i >= 0 {
		rest = rest[i+3:]
	}
	hostEnd := len(rest)
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' || rest[i] == '?' || rest[i] == ':' {
			hostEnd = i
			break
		}
	}
	first := strings.ToLower(parts[0])
	// Candidate start offsets: 0 or just after a '.' within the host.
	for start := 0; start <= hostEnd; start++ {
		if start != 0 && rest[start-1] != '.' {
			continue
		}
		if !sepMatch(rest, start, first) {
			continue
		}
		// Remaining parts match anywhere after.
		pos := start + len(first)
		ok := true
		for _, part := range parts[1:] {
			part = strings.ToLower(part)
			if part == "" {
				continue
			}
			idx := indexFrom(rest, part, pos, false)
			if idx < 0 {
				ok = false
				break
			}
			pos = idx + len(part)
		}
		if ok {
			if anchorEnd {
				last := lastNonEmpty(parts)
				return matchesEnd(rest, strings.ToLower(last))
			}
			return true
		}
	}
	return false
}
