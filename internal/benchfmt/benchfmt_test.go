package benchfmt

import (
	"path/filepath"
	"strings"
	"testing"
)

const sampleStream = `goos: linux
goarch: amd64
pkg: canvassing/internal/jsvm
cpu: Intel(R) Xeon(R) Processor
BenchmarkInterpFib 	       1	   2772384 ns/op
BenchmarkInterpFib-8 	       3	   2000000 ns/op	 512 B/op	       4 allocs/op
PASS
ok  	canvassing/internal/jsvm	0.1s
pkg: canvassing/internal/stats
BenchmarkRNGUint64 	       1	       333.0 ns/op
not a benchmark line
Benchmark 	garbage
`

func TestParse(t *testing.T) {
	results, err := Parse(strings.NewReader(sampleStream))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(results), results)
	}
	r := results[0]
	if r.Name != "BenchmarkInterpFib" || r.Package != "canvassing/internal/jsvm" ||
		r.Iterations != 1 || r.NsPerOp != 2772384 {
		t.Fatalf("first result = %+v", r)
	}
	if results[1].Metrics["B/op"] != 512 || results[1].Metrics["allocs/op"] != 4 {
		t.Fatalf("metrics = %+v", results[1].Metrics)
	}
	if results[2].Package != "canvassing/internal/stats" {
		t.Fatalf("pkg tracking broke: %+v", results[2])
	}
	if results[0].Key() == results[2].Key() {
		t.Fatal("keys must include the package")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	results, _ := Parse(strings.NewReader(sampleStream))
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteFile(path, results); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(results) {
		t.Fatalf("round trip length: %d vs %d", len(back), len(results))
	}
	for i := range back {
		if back[i].Name != results[i].Name || back[i].NsPerOp != results[i].NsPerOp ||
			back[i].Package != results[i].Package || back[i].Iterations != results[i].Iterations {
			t.Fatalf("round trip mismatch at %d: %+v vs %+v", i, back[i], results[i])
		}
	}
	if back[1].Metrics["B/op"] != 512 {
		t.Fatalf("metrics lost in round trip: %+v", back[1].Metrics)
	}
}

func TestCompareFlagsRegression(t *testing.T) {
	old := []Result{
		{Name: "BenchmarkSlow", Package: "p", NsPerOp: 1_000_000},
		{Name: "BenchmarkFast", Package: "p", NsPerOp: 500}, // under the noise floor
		{Name: "BenchmarkGone", Package: "p", NsPerOp: 2_000_000},
	}
	fresh := []Result{
		{Name: "BenchmarkSlow", Package: "p", NsPerOp: 6_000_000}, // +500% → regression
		{Name: "BenchmarkFast", Package: "p", NsPerOp: 50_000},    // +9900% but exempt
		{Name: "BenchmarkNew", Package: "p", NsPerOp: 100},
	}
	c := Compare(old, fresh, CompareOpts{ThresholdPct: 400, MinNs: 100_000})

	regs := c.Regressions()
	if len(regs) != 1 || regs[0].Key != "p.BenchmarkSlow" {
		t.Fatalf("regressions = %+v", regs)
	}
	if regs[0].Pct != 500 {
		t.Fatalf("pct = %v, want 500", regs[0].Pct)
	}
	if len(c.Missing) != 1 || c.Missing[0] != "p.BenchmarkGone" {
		t.Fatalf("missing = %v", c.Missing)
	}
	if len(c.Added) != 1 || c.Added[0] != "p.BenchmarkNew" {
		t.Fatalf("added = %v", c.Added)
	}
	// Deltas sorted worst-first; the exempt one is marked ungated.
	if c.Deltas[0].Key != "p.BenchmarkFast" || c.Deltas[0].Gated {
		t.Fatalf("worst delta = %+v (Fast should lead ungated)", c.Deltas[0])
	}
}

func TestCompareNoRegression(t *testing.T) {
	old := []Result{{Name: "B", NsPerOp: 1_000_000}}
	fresh := []Result{{Name: "B", NsPerOp: 1_100_000}}
	if regs := Compare(old, fresh, CompareOpts{}).Regressions(); len(regs) != 0 {
		t.Fatalf("+10%% flagged under the default gate: %+v", regs)
	}
}

// TestCompareSynthesized mirrors the `make bench-check` self-test: a
// 10x slowdown of every benchmark must trip the default gate as long
// as at least one baseline clears the noise floor.
func TestCompareSynthesized(t *testing.T) {
	old := []Result{
		{Name: "A", NsPerOp: 50_000},
		{Name: "B", NsPerOp: 2_000_000},
	}
	fresh := make([]Result, len(old))
	for i, r := range old {
		r.NsPerOp *= 10
		fresh[i] = r
	}
	regs := Compare(old, fresh, CompareOpts{}).Regressions()
	if len(regs) != 1 || regs[0].Key != "B" {
		t.Fatalf("synthesized regressions = %+v, want just B", regs)
	}
}

func TestCompareDefaults(t *testing.T) {
	o := CompareOpts{}.withDefaults()
	if o.ThresholdPct != DefaultThresholdPct || o.MinNs != DefaultMinNs {
		t.Fatalf("defaults = %+v", o)
	}
	// Explicit zero floor stays zero (gate everything).
	if (CompareOpts{MinNs: -1}).withDefaults().MinNs != 0 {
		t.Fatal("negative MinNs must clamp to 0")
	}
}
