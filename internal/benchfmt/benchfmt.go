// Package benchfmt is the shared model for benchmark snapshots: it
// parses `go test -bench` output into Results, reads and writes the
// dated BENCH_<date>.json files `make bench` produces, and compares
// two snapshots for regressions. cmd/benchjson (capture) and
// cmd/benchdiff (gate) are thin CLIs over this package.
package benchfmt

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	// Name is the full benchmark name including any -cpu suffix.
	Name string `json:"name"`
	// Package is the Go package the benchmark ran in (from the
	// preceding "pkg:" line; empty if none was seen).
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
	// Metrics holds the remaining "<value> <unit>" pairs: B/op,
	// allocs/op, and any b.ReportMetric custom units.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Key identifies a benchmark across snapshots (name alone can repeat
// between packages).
func (r Result) Key() string {
	if r.Package == "" {
		return r.Name
	}
	return r.Package + "." + r.Name
}

// ParseLine parses one "BenchmarkName-8  N  X ns/op [V unit]..." line;
// ok is false for non-benchmark lines.
func ParseLine(line, pkg string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Result{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: fields[0], Package: pkg, Iterations: iters}
	// The remainder is "<value> <unit>" pairs; ns/op first by convention
	// but don't rely on it.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}

// Parse reads a `go test -bench` stream, tracking "pkg:" lines so each
// Result carries its package.
func Parse(r io.Reader) ([]Result, error) {
	var results []Result
	pkg := ""
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 16<<20)
	for sc.Scan() {
		line := sc.Text()
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "pkg: "); ok {
			pkg = rest
			continue
		}
		if res, ok := ParseLine(line, pkg); ok {
			results = append(results, res)
		}
	}
	return results, sc.Err()
}

// ReadFile loads a JSON snapshot written by WriteFile / cmd/benchjson.
func ReadFile(path string) ([]Result, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var results []Result
	if err := json.Unmarshal(data, &results); err != nil {
		return nil, fmt.Errorf("benchfmt: %s: %w", path, err)
	}
	return results, nil
}

// WriteFile writes the snapshot as indented JSON.
func WriteFile(path string, results []Result) error {
	data, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// CompareOpts tunes the regression gate.
type CompareOpts struct {
	// ThresholdPct is the ns/op increase (percent) that counts as a
	// regression. `make bench` runs at -benchtime 1x, where a single
	// iteration carries scheduler and cache noise, so the default gate
	// is deliberately loose: DefaultThresholdPct.
	ThresholdPct float64
	// MinNs exempts benchmarks whose baseline ns/op is below this
	// floor — sub-100µs single-iteration timings are mostly noise.
	MinNs float64
}

// Defaults for CompareOpts, shared with cmd/benchdiff's flag help.
const (
	DefaultThresholdPct = 400
	DefaultMinNs        = 100_000
)

func (o CompareOpts) withDefaults() CompareOpts {
	if o.ThresholdPct <= 0 {
		o.ThresholdPct = DefaultThresholdPct
	}
	if o.MinNs < 0 {
		o.MinNs = 0
	} else if o.MinNs == 0 {
		o.MinNs = DefaultMinNs
	}
	return o
}

// Delta is one benchmark's old-vs-new comparison.
type Delta struct {
	Key    string
	OldNs  float64
	NewNs  float64
	// Pct is the ns/op change in percent (positive = slower).
	Pct float64
	// Gated reports the delta was eligible for the gate (baseline at or
	// above MinNs); Regression additionally means it breached the
	// threshold.
	Gated      bool
	Regression bool
}

// Comparison is the full result of comparing two snapshots.
type Comparison struct {
	Deltas []Delta
	// Missing lists benchmarks present in the baseline but absent from
	// the new snapshot (deleted or renamed — surfaced, not gated).
	Missing []string
	// Added lists benchmarks new in the fresh snapshot.
	Added []string
}

// Regressions returns the deltas that breached the gate.
func (c Comparison) Regressions() []Delta {
	var out []Delta
	for _, d := range c.Deltas {
		if d.Regression {
			out = append(out, d)
		}
	}
	return out
}

// Compare matches benchmarks by key and flags regressions per opts.
// Deltas come back sorted worst-first.
func Compare(old, fresh []Result, opts CompareOpts) Comparison {
	opts = opts.withDefaults()
	oldIdx := map[string]Result{}
	for _, r := range old {
		oldIdx[r.Key()] = r
	}
	var c Comparison
	seen := map[string]bool{}
	for _, nr := range fresh {
		key := nr.Key()
		seen[key] = true
		or, ok := oldIdx[key]
		if !ok {
			c.Added = append(c.Added, key)
			continue
		}
		d := Delta{Key: key, OldNs: or.NsPerOp, NewNs: nr.NsPerOp}
		if or.NsPerOp > 0 {
			d.Pct = 100 * (nr.NsPerOp - or.NsPerOp) / or.NsPerOp
		}
		d.Gated = or.NsPerOp >= opts.MinNs
		d.Regression = d.Gated && d.Pct > opts.ThresholdPct
		c.Deltas = append(c.Deltas, d)
	}
	for _, r := range old {
		if !seen[r.Key()] {
			c.Missing = append(c.Missing, r.Key())
		}
	}
	sort.Slice(c.Deltas, func(i, j int) bool {
		if c.Deltas[i].Pct != c.Deltas[j].Pct {
			return c.Deltas[i].Pct > c.Deltas[j].Pct
		}
		return c.Deltas[i].Key < c.Deltas[j].Key
	})
	sort.Strings(c.Missing)
	sort.Strings(c.Added)
	return c
}
