package obs

import (
	"context"
	"net"
	"net/http"
)

// Server is a started ops/debug HTTP server. Unlike the old
// fire-and-forget Serve, it exposes the bound address (so ":0" works
// in tests and callers can print a real URL) and graceful Shutdown,
// letting tests and long-running binaries own the listener lifecycle.
type Server struct {
	srv  *http.Server
	addr string
	errc chan error
}

// StartServer binds addr (":0" picks a free port), serves h in a
// background goroutine, and returns immediately. A failure to bind is
// returned synchronously; later serve errors arrive on Err.
func StartServer(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{
		srv:  &http.Server{Handler: h},
		addr: ln.Addr().String(),
		errc: make(chan error, 1),
	}
	go func() {
		if err := s.srv.Serve(ln); err != nil && err != http.ErrServerClosed {
			s.errc <- err
		}
		close(s.errc)
	}()
	return s, nil
}

// Addr returns the bound listen address (with the real port for ":0").
func (s *Server) Addr() string { return s.addr }

// URL returns the http:// base URL of the bound address.
func (s *Server) URL() string { return "http://" + s.addr }

// Err reports asynchronous serve failures. The channel closes when the
// serve loop exits (including after Shutdown).
func (s *Server) Err() <-chan error { return s.errc }

// Shutdown gracefully stops the server, waiting for in-flight
// requests up to ctx's deadline.
func (s *Server) Shutdown(ctx context.Context) error { return s.srv.Shutdown(ctx) }

// Close stops the server immediately.
func (s *Server) Close() error { return s.srv.Close() }

// Serve starts the debug mux on addr and returns the running server.
// Callers that previously ignored the error channel now get the bound
// address and a Shutdown lever; extras extend the endpoint surface
// (the ops subpackage passes the exposition/status routes here).
func Serve(addr string, tel *Telemetry, withPprof bool, extras ...Route) (*Server, error) {
	return StartServer(addr, NewMux(tel, withPprof, extras...))
}
