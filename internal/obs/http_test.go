package obs

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	tel := NewTelemetry()
	tel.Metrics.Counter("crawl.visits").Add(7)
	tel.Tracer.Start("crawl").End()
	mux := NewMux(tel, true)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/metrics")
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["crawl.visits"] != 7 {
		t.Fatalf("counter = %d, want 7", snap.Counters["crawl.visits"])
	}

	if body := get("/metrics.txt").Body.String(); !strings.Contains(body, "crawl.visits") {
		t.Fatalf("/metrics.txt missing counter:\n%s", body)
	}

	if body := get("/spans").Body.String(); !strings.Contains(body, `"crawl"`) {
		t.Fatalf("/spans missing span:\n%s", body)
	}

	if code := get("/debug/pprof/cmdline").Code; code != 200 {
		t.Fatalf("pprof cmdline status = %d", code)
	}
}

func TestMuxWithoutPprof(t *testing.T) {
	mux := NewMux(NewTelemetry(), false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 404 {
		t.Fatalf("pprof must be absent unless requested, got %d", rec.Code)
	}
}
