package obs

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestMuxEndpoints(t *testing.T) {
	tel := NewTelemetry()
	tel.Metrics.Counter("crawl.visits").Add(7)
	tel.Tracer.Start("crawl").End()
	mux := NewMux(tel, true)

	get := func(path string) *httptest.ResponseRecorder {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", path, nil))
		return rec
	}

	rec := get("/metrics")
	var snap Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &snap); err != nil {
		t.Fatalf("/metrics not JSON: %v", err)
	}
	if snap.Counters["crawl.visits"] != 7 {
		t.Fatalf("counter = %d, want 7", snap.Counters["crawl.visits"])
	}

	if body := get("/metrics.txt").Body.String(); !strings.Contains(body, "crawl.visits") {
		t.Fatalf("/metrics.txt missing counter:\n%s", body)
	}

	if body := get("/spans").Body.String(); !strings.Contains(body, `"crawl"`) {
		t.Fatalf("/spans missing span:\n%s", body)
	}

	if code := get("/debug/pprof/cmdline").Code; code != 200 {
		t.Fatalf("pprof cmdline status = %d", code)
	}
}

func TestMuxWithoutPprof(t *testing.T) {
	mux := NewMux(NewTelemetry(), false)
	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/pprof/cmdline", nil))
	if rec.Code != 404 {
		t.Fatalf("pprof must be absent unless requested, got %d", rec.Code)
	}
}

// TestIndexPage: "/" lists every registered endpoint (extras included)
// as text for probes and HTML for browsers; unknown paths still 404.
func TestIndexPage(t *testing.T) {
	extra := Route{Pattern: "/extra", Desc: "an extra route",
		Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {})}
	mux := NewMux(NewTelemetry(), true, extra)

	rec := httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/", nil))
	if rec.Code != 200 {
		t.Fatalf("index status = %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{"/metrics", "/spans", "/events", "/healthz", "/readyz", "/extra", "/debug/pprof/"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %s:\n%s", want, body)
		}
	}
	if strings.Contains(body, "<html>") {
		t.Fatal("plain request must get plain text")
	}

	req := httptest.NewRequest("GET", "/", nil)
	req.Header.Set("Accept", "text/html")
	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, req)
	if !strings.Contains(rec.Body.String(), "<html>") {
		t.Fatal("browser request must get HTML")
	}

	rec = httptest.NewRecorder()
	mux.ServeHTTP(rec, httptest.NewRequest("GET", "/nope", nil))
	if rec.Code != 404 {
		t.Fatalf("unknown path = %d, want 404", rec.Code)
	}
}

// TestReadyzFollowsStatus: the probe mirrors the status tracker.
func TestReadyzFollowsStatus(t *testing.T) {
	tel := NewTelemetry()
	mux := NewMux(tel, false)
	probe := func() int {
		rec := httptest.NewRecorder()
		mux.ServeHTTP(rec, httptest.NewRequest("GET", "/readyz", nil))
		return rec.Code
	}
	if probe() != 503 {
		t.Fatal("init must be 503")
	}
	tel.Status.MarkRunning()
	if probe() != 200 {
		t.Fatal("running must be 200")
	}
}
