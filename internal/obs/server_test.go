package obs

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

// TestStartServerZeroPort: ":0" binds a real port the caller can read
// back, and Shutdown stops the listener.
func TestStartServerZeroPort(t *testing.T) {
	tel := NewTelemetry()
	srv, err := Serve("127.0.0.1:0", tel, false)
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasSuffix(srv.Addr(), ":0") {
		t.Fatalf("Addr = %q, want a resolved port", srv.Addr())
	}
	res, err := http.Get(srv.URL() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	res.Body.Close()
	if res.StatusCode != 200 {
		t.Fatalf("healthz = %d", res.StatusCode)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// The serve loop must exit (Err closes) and the port must be free.
	select {
	case err, ok := <-srv.Err():
		if ok && err != nil {
			t.Fatalf("serve error: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("serve loop did not exit after Shutdown")
	}
	if _, err := http.Get(srv.URL() + "/healthz"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

// TestStartServerBindError: a bad address fails synchronously.
func TestStartServerBindError(t *testing.T) {
	if _, err := Serve("256.256.256.256:99999", NewTelemetry(), false); err == nil {
		t.Fatal("expected bind error")
	}
}
