package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock advances a deterministic amount on every read so span
// durations are predictable in tests.
func fakeClock(step time.Duration) func() time.Time {
	t0 := time.Unix(1_700_000_000, 0)
	n := 0
	return func() time.Time {
		n++
		return t0.Add(time.Duration(n) * step)
	}
}

func TestSpanHierarchyAndSummary(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(time.Millisecond)

	run := tr.Start("run")
	crawl := run.StartChild("crawl", "cohort", "popular")
	crawl.End()
	run.StartChild("detect").End()
	run.End()
	tr.Start("report").End()

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("records = %d, want 4", len(recs))
	}
	byName := map[string]SpanRecord{}
	for _, r := range recs {
		byName[r.Name] = r
	}
	if byName["crawl"].ParentID != byName["run"].ID {
		t.Fatal("crawl must nest under run")
	}
	if byName["report"].ParentID != 0 {
		t.Fatal("report must be a root span")
	}
	if byName["crawl"].Labels["cohort"] != "popular" {
		t.Fatal("labels lost")
	}

	phases := tr.PhaseSummary()
	if len(phases) != 2 || phases[0].Name != "run" || phases[1].Name != "report" {
		t.Fatalf("root phases wrong: %+v", phases)
	}
	kids := phases[0].Children
	if len(kids) != 2 || kids[0].Name != "crawl" || kids[1].Name != "detect" {
		t.Fatalf("children wrong: %+v", kids)
	}
	if phases[0].Total <= 0 {
		t.Fatal("phase duration must be positive")
	}
}

func TestSpanDoubleEnd(t *testing.T) {
	tr := NewTracer()
	sp := tr.Start("once")
	if d := sp.End(); d < 0 {
		t.Fatal("duration must be non-negative")
	}
	if d := sp.End(); d != 0 {
		t.Fatal("second End must be a no-op")
	}
	if len(tr.Records()) != 1 {
		t.Fatal("double End must not duplicate records")
	}
}

func TestPhaseSummaryAggregatesRepeats(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(time.Millisecond)
	for i := 0; i < 3; i++ {
		tr.Start("crawl").End()
	}
	phases := tr.PhaseSummary()
	if len(phases) != 1 || phases[0].Count != 3 {
		t.Fatalf("repeat phases must aggregate: %+v", phases)
	}
}

func TestWriteJSONL(t *testing.T) {
	tr := NewTracer()
	tr.Start("a").End()
	tr.Start("b", "k", "v").End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatalf("WriteJSONL: %v", err)
	}
	sc := bufio.NewScanner(&buf)
	lines := 0
	for sc.Scan() {
		var r SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("line %d: %v", lines, err)
		}
		lines++
	}
	if lines != 2 {
		t.Fatalf("lines = %d, want 2", lines)
	}
}

func TestActiveTracksUnendedSpans(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(time.Millisecond)
	leaked := tr.Start("leaky", "where", "crawl")
	done := tr.Start("done")
	done.End()

	act := tr.Active()
	if len(act) != 1 {
		t.Fatalf("active = %d spans, want 1: %+v", len(act), act)
	}
	if act[0].Name != "leaky" || act[0].Labels["where"] != "crawl" {
		t.Fatalf("active record wrong: %+v", act[0])
	}
	if act[0].Duration <= 0 {
		t.Fatal("active span must report elapsed time so far")
	}
	// A leaked span must not be in the finished records it would
	// otherwise silently vanish from.
	for _, r := range tr.Records() {
		if r.Name == "leaky" {
			t.Fatal("un-ended span leaked into Records")
		}
	}
	leaked.End()
	if len(tr.Active()) != 0 {
		t.Fatal("ended span still listed active")
	}
	if len(tr.Records()) != 2 {
		t.Fatalf("records = %d, want 2", len(tr.Records()))
	}
}

func TestRenderPhases(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(time.Millisecond)
	run := tr.Start("crawl.control")
	run.StartChild("visit").End()
	run.End()
	text := tr.RenderPhases()
	if !strings.Contains(text, "crawl.control") || !strings.Contains(text, "visit") {
		t.Fatalf("phases missing from render:\n%s", text)
	}
	if !strings.Contains(text, "%") {
		t.Fatalf("root share missing:\n%s", text)
	}
}
