package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
)

// CLI is the shared observability flag set every binary wires the same
// way: -metrics (print the snapshot / phase table), -trace (span JSONL
// export), -pprof (live debug endpoint), and -outdir (run-bundle
// directory). PR 1 duplicated this wiring per command; BindCLI is the
// single place it lives now.
type CLI struct {
	// Metrics requests the rendered metrics/phase report after the run.
	Metrics bool
	// Trace is the span-trace JSONL output path ("" = off).
	Trace string
	// Pprof is the live debug-endpoint address ("" = off).
	Pprof string
	// OutDir is the run-bundle output directory ("" = off).
	OutDir string
}

// BindCLI registers the shared observability flags on fs (use
// flag.CommandLine in main) and returns the destination struct.
func BindCLI(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Metrics, "metrics", false, "print the metrics snapshot and phase timings after the run")
	fs.StringVar(&c.Trace, "trace", "", "write the span trace as JSON lines to this path")
	fs.StringVar(&c.Pprof, "pprof", "", "serve live /metrics, /spans, /events, and /debug/pprof on this address during the run")
	fs.StringVar(&c.OutDir, "outdir", "", "write a run bundle (manifest, metrics, trace, events, reports) to this directory")
	return c
}

// StartPprof starts the live debug endpoint when -pprof was given,
// logging startup and failures to stderr.
func (c *CLI) StartPprof(tel *Telemetry) {
	if c.Pprof == "" {
		return
	}
	errc := Serve(c.Pprof, tel, true)
	go func() {
		if err := <-errc; err != nil {
			fmt.Fprintf(os.Stderr, "telemetry: debug server on %s failed: %v\n", c.Pprof, err)
		}
	}()
	fmt.Fprintf(os.Stderr, "telemetry: serving /metrics, /spans, /events, /debug/pprof on %s\n", c.Pprof)
}

// WriteTrace writes the span-trace export when -trace was given.
func (c *CLI) WriteTrace(tel *Telemetry) error {
	if c.Trace == "" {
		return nil
	}
	f, err := os.Create(c.Trace)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tel.Tracer.WriteJSONL(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "telemetry: wrote span trace to %s\n", c.Trace)
	return nil
}

// PrintMetrics renders the phase-timing listing and metrics snapshot
// to w when -metrics was given.
func (c *CLI) PrintMetrics(tel *Telemetry, w io.Writer) {
	if !c.Metrics {
		return
	}
	fmt.Fprintln(w, "\nPhase timings")
	fmt.Fprint(w, tel.Tracer.RenderPhases())
	fmt.Fprintln(w)
	fmt.Fprint(w, tel.Metrics.RenderText())
}
