package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"
)

// CLI is the shared observability flag set every binary wires the same
// way: -metrics (print the snapshot / phase table), -trace (span JSONL
// export), -pprof / -status (live ops-plane endpoint), -window (RED
// window width), and -outdir (run-bundle directory). PR 1 duplicated
// this wiring per command; BindCLI is the single place it lives now.
type CLI struct {
	// Metrics requests the rendered metrics/phase report after the run.
	Metrics bool
	// Trace is the span-trace JSONL output path ("" = off).
	Trace string
	// Pprof is the live ops-plane address WITH profiling endpoints
	// ("" = off).
	Pprof string
	// Status is the live ops-plane address without profiling
	// ("" = off). When both Status and Pprof are set, Pprof wins —
	// it is Status plus /debug/pprof.
	Status string
	// Window is the sliding window for the live RED views (/red and
	// the /statusz rates/ETA). Zero selects one minute.
	Window time.Duration
	// OutDir is the run-bundle output directory ("" = off).
	OutDir string
	// Tracez enables per-visit span-tree capture into the bounded
	// exemplar reservoir: served live at /tracez on the ops plane and
	// written as trace_exemplars.jsonl next to the bundle with
	// -outdir. Never changes bundle bytes.
	Tracez bool
	// AnalysisWorkers is the post-crawl analysis pool width (0 =
	// follow the crawler worker count). Any width yields the same
	// bundle bytes; the knob only trades wall-clock for cores.
	AnalysisWorkers int
}

// BindCLI registers the shared observability flags on fs (use
// flag.CommandLine in main) and returns the destination struct.
func BindCLI(fs *flag.FlagSet) *CLI {
	c := &CLI{}
	fs.BoolVar(&c.Metrics, "metrics", false, "print the metrics snapshot and phase timings after the run")
	fs.StringVar(&c.Trace, "trace", "", "write the span trace as JSON lines to this path")
	fs.StringVar(&c.Pprof, "pprof", "", "serve the live ops plane plus /debug/pprof on this address during the run")
	fs.StringVar(&c.Status, "status", "", "serve the live ops plane (/statusz, /healthz, /readyz, /metrics.prom, /red, ...) on this address during the run")
	fs.DurationVar(&c.Window, "window", 0, "sliding window for the live RED metric views (default 1m)")
	fs.StringVar(&c.OutDir, "outdir", "", "write a run bundle (manifest, metrics, trace, events, reports) to this directory")
	fs.BoolVar(&c.Tracez, "tracez", false, "capture per-visit span trees into the bounded exemplar reservoir (/tracez endpoint; trace_exemplars.jsonl with -outdir)")
	fs.IntVar(&c.AnalysisWorkers, "analysis-workers", 0, "analysis worker pool width (0 = same as crawler workers; output is identical at any width)")
	return c
}

// OpsAddr resolves the ops-plane serve address and whether profiling
// endpoints were requested ("" when no serving flag was given).
func (c *CLI) OpsAddr() (addr string, withPprof bool) {
	if c.Pprof != "" {
		return c.Pprof, true
	}
	return c.Status, false
}

// FaultCLI is the shared fault-injection flag set the crawling
// binaries bind alongside CLI: -faults (per-site fault probability),
// -retries, and -visit-timeout. It is a separate struct so
// analysis-only binaries don't advertise crawl knobs, and it carries
// plain values so obs stays dependency-free — callers build the
// netsim.FaultModel themselves.
type FaultCLI struct {
	// Rate is the fraction of sites given a deterministic fault plan
	// (0 disables injection entirely).
	Rate float64
	// Retries is the per-visit retry budget (0 = crawler default).
	Retries int
	// VisitTimeout is the virtual per-attempt deadline (0 = default).
	VisitTimeout time.Duration
}

// BindFaultCLI registers the fault-injection flags on fs and returns
// the destination struct.
func BindFaultCLI(fs *flag.FlagSet) *FaultCLI {
	c := &FaultCLI{}
	fs.Float64Var(&c.Rate, "faults", 0, "fraction of sites given a seeded fault plan (0 disables fault injection)")
	fs.IntVar(&c.Retries, "retries", 0, "visit retry budget under -faults (0 = default 3)")
	fs.DurationVar(&c.VisitTimeout, "visit-timeout", 0, "virtual per-attempt visit deadline under -faults (0 = default 5s)")
	return c
}

// WriteTrace writes the span-trace export when -trace was given.
func (c *CLI) WriteTrace(tel *Telemetry) error {
	if c.Trace == "" {
		return nil
	}
	f, err := os.Create(c.Trace)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tel.Tracer.WriteJSONL(f); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "telemetry: wrote span trace to %s\n", c.Trace)
	return nil
}

// PrintMetrics renders the phase-timing listing and metrics snapshot
// to w when -metrics was given.
func (c *CLI) PrintMetrics(tel *Telemetry, w io.Writer) {
	if !c.Metrics {
		return
	}
	fmt.Fprintln(w, "\nPhase timings")
	fmt.Fprint(w, tel.Tracer.RenderPhases())
	fmt.Fprintln(w)
	fmt.Fprint(w, tel.Metrics.RenderText())
}
