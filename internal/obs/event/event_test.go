package event

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"
)

// TestJSONLGolden pins the events.jsonl wire format. If this test
// fails because Event's JSON shape changed, bump SchemaVersion and
// update the golden lines together — downstream bundles identify the
// format by the "v" field.
func TestJSONLGolden(t *testing.T) {
	if SchemaVersion != 1 {
		t.Fatalf("SchemaVersion = %d; this golden pins v1 — write a new golden for the new schema", SchemaVersion)
	}
	s := NewSink(8)
	s.Record(Event{Kind: DetectClassify, Crawl: "control", Site: "a.example", Subject: "deadbeef", Verdict: "excluded", Evidence: "lossy-format", Detail: "script=https://t.example/fp.js 300x150 jpeg"})
	s.Record(Event{Kind: BlocklistMatch, Crawl: "abp", Site: "a.example", Subject: "https://t.example/fp.js", Verdict: "blocked", Evidence: "||t.example^$third-party", Detail: "EasyList"})
	s.Record(Event{Kind: ClusterAssign, Site: "a.example", Subject: "deadbeef", Verdict: "member", Detail: "popular"})
	s.Record(Event{Kind: AttribEvidence, Subject: "deadbeef", Verdict: "akamai", Evidence: "demo-hash"})
	s.Record(Event{Kind: RandomizeVerdict, Crawl: "defense-per-render", Site: "a.example", Verdict: "defense-detected", Evidence: "per-render"})

	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	golden := strings.Join([]string{
		`{"v":1,"seq":1,"kind":"detect.classify","crawl":"control","site":"a.example","subject":"deadbeef","verdict":"excluded","evidence":"lossy-format","detail":"script=https://t.example/fp.js 300x150 jpeg"}`,
		`{"v":1,"seq":2,"kind":"blocklist.match","crawl":"abp","site":"a.example","subject":"https://t.example/fp.js","verdict":"blocked","evidence":"||t.example^$third-party","detail":"EasyList"}`,
		`{"v":1,"seq":3,"kind":"cluster.assign","site":"a.example","subject":"deadbeef","verdict":"member","detail":"popular"}`,
		`{"v":1,"seq":4,"kind":"attrib.evidence","subject":"deadbeef","verdict":"akamai","evidence":"demo-hash"}`,
		`{"v":1,"seq":5,"kind":"randomize.verdict","crawl":"defense-per-render","site":"a.example","verdict":"defense-detected","evidence":"per-render"}`,
		``,
	}, "\n")
	if buf.String() != golden {
		t.Fatalf("events.jsonl schema drifted (bump SchemaVersion if intentional)\ngot:\n%s\nwant:\n%s", buf.String(), golden)
	}

	back, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 || back[1].Evidence != "||t.example^$third-party" || back[4].Kind != RandomizeVerdict {
		t.Fatalf("round trip mismatch: %+v", back)
	}
}

func TestReadJSONLRejectsNewerSchema(t *testing.T) {
	in := strings.NewReader(fmt.Sprintf(`{"v":%d,"seq":1,"kind":"detect.classify"}`, SchemaVersion+1))
	if _, err := ReadJSONL(in); err == nil {
		t.Fatal("want error for newer schema version")
	}
}

func TestRingOverwrite(t *testing.T) {
	s := NewSink(4)
	for i := 0; i < 10; i++ {
		s.Record(Event{Kind: DetectClassify, Site: fmt.Sprintf("s%d", i)})
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d, want 4", s.Len())
	}
	if s.Total() != 10 || s.Dropped() != 6 {
		t.Fatalf("Total/Dropped = %d/%d, want 10/6", s.Total(), s.Dropped())
	}
	evs := s.Events()
	for i, e := range evs {
		if want := uint64(7 + i); e.Seq != want {
			t.Fatalf("event %d has seq %d, want %d (oldest-first tail)", i, e.Seq, want)
		}
	}
}

func TestNilSinkIsInert(t *testing.T) {
	var s *Sink
	s.Record(Event{Kind: DetectClassify})
	if s.Len() != 0 || s.Total() != 0 || s.Dropped() != 0 || s.Events() != nil {
		t.Fatal("nil sink must be a no-op")
	}
}

func TestConditionsAndCounts(t *testing.T) {
	s := NewSink(16)
	s.Record(Event{Kind: DetectClassify, Crawl: "control"})
	s.Record(Event{Kind: DetectClassify, Crawl: "abp"})
	s.Record(Event{Kind: ClusterAssign})
	got := s.Conditions()
	if len(got) != 2 || got[0] != "abp" || got[1] != "control" {
		t.Fatalf("Conditions = %v", got)
	}
	if c := s.CountByKind(); c[DetectClassify] != 2 || c[ClusterAssign] != 1 {
		t.Fatalf("CountByKind = %v", c)
	}
}

// TestSinkRace hammers Record against every reader concurrently; run
// under -race (make check does).
func TestSinkRace(t *testing.T) {
	s := NewSink(256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				s.Record(Event{
					Kind:    DetectClassify,
					Crawl:   "control",
					Site:    fmt.Sprintf("site-%d-%d", w, i),
					Verdict: "fingerprintable",
				})
			}
		}(w)
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				_ = s.Events()
				_ = s.Len()
				_ = s.CountByKind()
				var buf bytes.Buffer
				_ = s.WriteJSONL(&buf)
			}
		}()
	}
	wg.Wait()
	if s.Total() != 16000 {
		t.Fatalf("Total = %d, want 16000", s.Total())
	}
	evs := s.Events()
	if len(evs) != 256 {
		t.Fatalf("retained %d, want 256", len(evs))
	}
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("events out of order at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

// TestSinkRestore pins the resume contract: capturing a sink's
// events/seq/dropped and restoring them into a fresh sink must make
// the continued log byte-identical to one recorded without the
// round trip.
func TestSinkRestore(t *testing.T) {
	record := func(s *Sink, from, to int) {
		for i := from; i < to; i++ {
			s.Record(Event{Kind: DetectClassify, Site: fmt.Sprintf("s%02d.example", i)})
		}
	}
	ref := NewSink(64)
	record(ref, 0, 10)

	half := NewSink(64)
	record(half, 0, 6)
	resumed := NewSink(64)
	resumed.Restore(half.Events(), half.Total(), half.Dropped())
	record(resumed, 6, 10)

	var a, b bytes.Buffer
	if err := ref.WriteJSONL(&a); err != nil {
		t.Fatal(err)
	}
	if err := resumed.WriteJSONL(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("restored-then-continued log differs:\n%s\nvs\n%s", a.String(), b.String())
	}
	if ref.Total() != resumed.Total() || ref.Dropped() != resumed.Dropped() {
		t.Fatal("seq/dropped state did not survive the round trip")
	}

	// Restoring more events than the ring holds keeps the newest tail
	// and counts the discarded prefix as dropped.
	small := NewSink(4)
	small.Restore(ref.Events(), ref.Total(), ref.Dropped())
	evs := small.Events()
	if len(evs) != 4 || evs[0].Seq != 7 || evs[3].Seq != 10 {
		t.Fatalf("overflow restore kept wrong window: %+v", evs)
	}
	if small.Dropped() != 6 {
		t.Fatalf("dropped = %d, want 6", small.Dropped())
	}
}
