// Package event is the decision-provenance half of the observability
// layer: a dependency-free, concurrency-safe, ring-buffered log of
// every load-bearing decision the pipeline makes. Where the metrics
// registry answers "how many canvases were fingerprintable", the event
// log answers "which canvas on which site, and which heuristic fired" —
// the per-script evidence trail that makes a detection pipeline
// auditable (Iqbal et al.; Durey et al.).
//
// Seven kinds of decision are recorded:
//
//   - detect.classify: one per extracted canvas, naming the failing
//     heuristic (or "fingerprintable");
//   - blocklist.match: one per extension-blocked script, naming the
//     list and the matching rule;
//   - cluster.assign: one per (canvas group, site) membership;
//   - attrib.evidence: ground-truth construction, group→vendor
//     resolution, and site→vendor attribution, each naming the
//     mechanism that fired (demo-hash / known-customer / url-pattern /
//     url-regexp);
//   - randomize.verdict: the Algorithm 1 double-render inconsistency
//     outcome per probed site;
//   - visit.outcome: how a fault-injected page visit ended (ok,
//     degraded, refused, timeout, circuit-open, unreachable) and under
//     which fault plan — recorded only by fault-injected crawls;
//   - interact.dispatch: one per user-behaviour action the interaction
//     engine drove on a page (click/scroll/focus/idle), with the
//     callback counts it triggered — recorded only by
//     interaction-enabled crawls.
//
// The wire format (one JSON object per line, schema-versioned via the
// "v" field) is pinned by a golden test; changing any field name or
// adding a field requires bumping SchemaVersion. A nil *Sink is inert:
// Record on nil is a no-op and callers guard event construction with a
// nil check, so the bare pipeline pays nothing.
package event

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// SchemaVersion is the events.jsonl wire-format version. Bump it
// whenever Event's JSON shape changes; the golden test in event_test.go
// enforces this.
const SchemaVersion = 1

// DefaultCapacity is the ring size NewSink uses for capacity <= 0:
// large enough to hold every decision of a paper-scale run's control
// analysis, small enough to bound memory on runaway inputs.
const DefaultCapacity = 1 << 19

// Kind classifies a decision event.
type Kind string

// Decision kinds.
const (
	// DetectClassify is a per-canvas fingerprintability verdict (§3.2).
	DetectClassify Kind = "detect.classify"
	// BlocklistMatch is an extension block decision with the rule that
	// matched (§5.1/§5.2).
	BlocklistMatch Kind = "blocklist.match"
	// ClusterAssign is one canvas-group membership (§4.2).
	ClusterAssign Kind = "cluster.assign"
	// AttribEvidence is one attribution decision: ground-truth method,
	// group→vendor, or site→vendor (A.3, Table 3).
	AttribEvidence Kind = "attrib.evidence"
	// RandomizeVerdict is an Algorithm 1 inconsistency-check outcome
	// (§5.3).
	RandomizeVerdict Kind = "randomize.verdict"
	// VisitOutcome is one fault-injected page visit's final state: the
	// verdict ("ok", "degraded", or a crawler.Fail* reason), the fault
	// kind as evidence, and the attempt count as detail.
	VisitOutcome Kind = "visit.outcome"
	// InteractDispatch is one interaction-engine action on a page: the
	// action kind as subject, the number of callbacks it ran as the
	// verdict, the site's behaviour profile as evidence, and the live
	// handler count as detail. Only interaction-enabled crawls record
	// these.
	InteractDispatch Kind = "interact.dispatch"
)

// Event is one recorded decision. Fields are flat strings (no maps) so
// recording never allocates beyond the ring slot.
type Event struct {
	// Schema is the wire-format version (SchemaVersion at write time).
	Schema int `json:"v"`
	// Seq is the sink-global record order, starting at 1.
	Seq uint64 `json:"seq"`
	// Kind classifies the decision.
	Kind Kind `json:"kind"`
	// Crawl is the crawl condition the decision belongs to ("control",
	// "abp", "ubo", "m1", "demo", ...); empty for condition-independent
	// analysis decisions (clustering, attribution).
	Crawl string `json:"crawl,omitempty"`
	// Site is the page domain the decision concerns.
	Site string `json:"site,omitempty"`
	// Subject identifies what was judged: a canvas hash, script URL,
	// group hash, or vendor slug.
	Subject string `json:"subject,omitempty"`
	// Verdict is the decision outcome ("fingerprintable", "excluded",
	// "blocked", "member", a vendor slug, ...).
	Verdict string `json:"verdict,omitempty"`
	// Evidence names what made the verdict fire: the failing heuristic,
	// the matching filter rule, or the attribution mechanism.
	Evidence string `json:"evidence,omitempty"`
	// Detail carries free-form amplifying context (script URL,
	// dimensions, list name, hash counts).
	Detail string `json:"detail,omitempty"`
}

// Recorder is the write half of an event log. *Sink implements it (a
// nil *Sink passed through the interface still no-ops on Record), and
// Buffer implements it for deferred, reordered replay — the parallel
// analysis executor records each shard into a private Buffer and
// drains the buffers into the shared Sink in deterministic page order.
type Recorder interface {
	Record(Event)
}

// Sink is a concurrency-safe ring buffer of events. Once the ring is
// full the oldest events are overwritten and counted as dropped, so a
// runaway workload degrades to a bounded tail of recent decisions
// instead of unbounded memory.
type Sink struct {
	mu      sync.Mutex
	buf     []Event // grows to cap, then wraps
	next    int     // overwrite index once full
	seq     uint64
	dropped uint64
}

// NewSink returns a sink holding up to capacity events
// (DefaultCapacity when capacity <= 0).
func NewSink(capacity int) *Sink {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Sink{buf: make([]Event, 0, capacity)}
}

// Record files one event, stamping its schema version and sequence
// number. Recording on a nil sink is a no-op.
func (s *Sink) Record(e Event) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.seq++
	e.Schema = SchemaVersion
	e.Seq = s.seq
	if len(s.buf) < cap(s.buf) {
		s.buf = append(s.buf, e)
	} else {
		s.buf[s.next] = e
		s.next = (s.next + 1) % len(s.buf)
		s.dropped++
	}
	s.mu.Unlock()
}

// Restore replaces the sink's contents with a previously captured
// event list and sequence state — the checkpoint half of crash
// recovery. The events keep the Schema and Seq they were recorded
// with; the next Record continues from seq, so a restored-then-
// continued log is byte-identical to one recorded in a single run.
// Restoring more events than the ring holds keeps only the newest
// ring-capacity tail (the same answer recording them live would give).
func (s *Sink) Restore(events []Event, seq, dropped uint64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	capacity := cap(s.buf)
	if overflow := len(events) - capacity; overflow > 0 {
		events = events[overflow:]
		dropped += uint64(overflow)
	}
	s.buf = s.buf[:0]
	s.buf = append(s.buf, events...)
	// If the restored list fills the ring exactly, the next Record
	// overwrites the oldest slot — which after Restore is index 0.
	s.next = 0
	s.seq = seq
	s.dropped = dropped
}

// Len returns the number of retained events.
func (s *Sink) Len() int {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.buf)
}

// Total returns the number of events ever recorded (retained + dropped).
func (s *Sink) Total() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.seq
}

// Dropped returns how many events the ring overwrote.
func (s *Sink) Dropped() uint64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Events returns a copy of the retained events in record order (oldest
// first).
func (s *Sink) Events() []Event {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.buf))
	if len(s.buf) == cap(s.buf) && cap(s.buf) > 0 {
		out = append(out, s.buf[s.next:]...)
		out = append(out, s.buf[:s.next]...)
	} else {
		out = append(out, s.buf...)
	}
	return out
}

// CountByKind tallies retained events per kind.
func (s *Sink) CountByKind() map[Kind]int {
	out := map[Kind]int{}
	for _, e := range s.Events() {
		out[e.Kind]++
	}
	return out
}

// Conditions returns the distinct non-empty crawl labels seen, sorted.
func (s *Sink) Conditions() []string {
	seen := map[string]bool{}
	for _, e := range s.Events() {
		if e.Crawl != "" {
			seen[e.Crawl] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// WriteJSONL writes one JSON object per retained event, oldest first —
// the events.jsonl bundle format.
func (s *Sink) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, e := range s.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return nil
}

// Buffer is a deliberately unsynchronized Recorder: it appends events
// to a slice without stamping Schema or Seq, so one goroutine can
// collect a shard's decisions privately and replay them into the
// shared Sink once ordering is decided. Stamping happens at Drain
// time, inside the Sink, which is what makes a buffered-then-merged
// event log byte-identical to one recorded serially.
type Buffer struct {
	events []Event
}

// Record appends one event. Not safe for concurrent use — each shard
// owns exactly one Buffer.
func (b *Buffer) Record(e Event) { b.events = append(b.events, e) }

// Len returns the number of buffered events.
func (b *Buffer) Len() int { return len(b.events) }

// Drain replays the buffered events into dst in record order and
// empties the buffer.
func (b *Buffer) Drain(dst Recorder) {
	for _, e := range b.events {
		dst.Record(e)
	}
	b.events = b.events[:0]
}

// ReadJSONL parses an events.jsonl stream. Events from a newer schema
// are rejected rather than misread.
func ReadJSONL(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 16<<20)
	line := 0
	for sc.Scan() {
		line++
		if len(sc.Bytes()) == 0 {
			continue
		}
		var e Event
		if err := json.Unmarshal(sc.Bytes(), &e); err != nil {
			return nil, fmt.Errorf("event: line %d: %w", line, err)
		}
		if e.Schema > SchemaVersion {
			return nil, fmt.Errorf("event: line %d: schema v%d is newer than supported v%d", line, e.Schema, SchemaVersion)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("event: %w", err)
	}
	return out, nil
}
