package window

import (
	"testing"
	"time"

	"canvassing/internal/obs"
)

func TestREDRatesAndRatios(t *testing.T) {
	r := obs.NewRegistry()
	v := New(r, 10*time.Second)
	t0 := time.Unix(1000, 0)
	v.SampleAt(t0)

	r.Counter("crawl.visits.ok").Add(90)
	r.Counter("crawl.visits.failed").Add(10)
	r.Counter("crawl.retry").Add(25)
	r.Counter("crawl.timeout").Add(5)
	r.Counter("crawl.visits.degraded").Add(4)
	r.Counter("crawl.parsecache.hits").Add(30)
	r.Counter("crawl.parsecache.misses").Add(10)
	v.SampleAt(t0.Add(10 * time.Second))

	red := v.RED()
	if red.Samples != 2 || red.SpanSeconds != 10 {
		t.Fatalf("samples=%d span=%v, want 2 / 10s", red.Samples, red.SpanSeconds)
	}
	if got := red.Rates["crawl.visits.ok"]; got != 9 {
		t.Fatalf("visits.ok rate = %v, want 9/s", got)
	}
	if got := red.Ratios["crawl.error_ratio"]; got != 0.10 {
		t.Fatalf("error ratio = %v, want 0.10", got)
	}
	if got := red.Ratios["crawl.retry_ratio"]; got != 0.25 {
		t.Fatalf("retry ratio = %v, want 0.25", got)
	}
	if got := red.Ratios["crawl.timeout_ratio"]; got != 0.05 {
		t.Fatalf("timeout ratio = %v, want 0.05", got)
	}
	if got := red.Ratios["crawl.degraded_ratio"]; got != 0.04 {
		t.Fatalf("degraded ratio = %v, want 0.04", got)
	}
	if got := red.Ratios["crawl.parsecache.hit_ratio"]; got != 0.75 {
		t.Fatalf("parse-cache hit ratio = %v, want 0.75", got)
	}
	if _, ok := red.Ratios["analysis.cache.hit_ratio"]; ok {
		t.Fatal("analysis cache ratio reported with no lookups in the window")
	}
	if got := v.VisitRate(); got != 10 {
		t.Fatalf("VisitRate = %v, want 10/s", got)
	}
}

// TestWindowedDurations checks that histogram percentiles cover ONLY
// the window: old observations outside the delta must not move p95.
func TestWindowedDurations(t *testing.T) {
	r := obs.NewRegistry()
	h := r.Histogram("crawl.visit.seconds", []float64{0.1, 0.5, 1, 5})
	// Pre-window history: a hundred slow observations.
	for i := 0; i < 100; i++ {
		h.Observe(4)
	}
	v := New(r, 10*time.Second)
	t0 := time.Unix(2000, 0)
	v.SampleAt(t0)

	// In-window: all fast.
	for i := 0; i < 50; i++ {
		h.Observe(0.05)
	}
	v.SampleAt(t0.Add(10 * time.Second))

	red := v.RED()
	d, ok := red.Durations["crawl.visit.seconds"]
	if !ok {
		t.Fatal("no windowed durations for crawl.visit.seconds")
	}
	if d.Count != 50 {
		t.Fatalf("windowed count = %d, want 50", d.Count)
	}
	if d.P95 > 0.1 {
		t.Fatalf("windowed p95 = %v; pre-window slow observations leaked in", d.P95)
	}
	if d.PerSec != 5 {
		t.Fatalf("per-sec = %v, want 5", d.PerSec)
	}
}

// TestPruning keeps one pre-edge sample so deltas span the full window.
func TestPruning(t *testing.T) {
	r := obs.NewRegistry()
	c := r.Counter("crawl.visits.ok")
	v := New(r, 10*time.Second)
	t0 := time.Unix(3000, 0)
	for i := 0; i <= 30; i++ { // 31 samples over 30s at 1s cadence
		c.Add(1)
		v.SampleAt(t0.Add(time.Duration(i) * time.Second))
	}
	v.mu.Lock()
	n := len(v.samples)
	v.mu.Unlock()
	// window 10s at 1s cadence → 11 in-window + 1 pre-edge baseline.
	if n > 12 {
		t.Fatalf("retained %d samples, want <= 12", n)
	}
	red := v.RED()
	if red.SpanSeconds < 10 {
		t.Fatalf("span %.1fs shorter than the window; baseline sample was pruned", red.SpanSeconds)
	}
}

func TestEmptyAndSingleSample(t *testing.T) {
	v := New(obs.NewRegistry(), time.Second)
	if red := v.RED(); red.Samples != 0 || red.Rates != nil {
		t.Fatalf("empty view RED = %+v", red)
	}
	v.SampleAt(time.Unix(1, 0))
	if red := v.RED(); red.Samples != 1 || red.SpanSeconds != 0 {
		t.Fatalf("single-sample RED = %+v", red)
	}
}

func TestDefaultWindow(t *testing.T) {
	if w := New(obs.NewRegistry(), 0).Window(); w != DefaultWindow {
		t.Fatalf("default window = %v", w)
	}
}

// TestStartStop exercises the background sampler lifecycle, including
// double Stop and Stop-without-Start.
func TestStartStop(t *testing.T) {
	r := obs.NewRegistry()
	v := New(r, time.Second)
	v.Start(5 * time.Millisecond)
	r.Counter("crawl.visits.ok").Add(1)
	deadline := time.After(2 * time.Second)
	for {
		if red := v.RED(); red.Samples >= 2 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("sampler never accumulated two samples")
		case <-time.After(5 * time.Millisecond):
		}
	}
	v.Stop()
	v.Stop() // idempotent

	unstarted := New(r, time.Second)
	unstarted.Stop() // must not hang
}

// TestHistogramCreatedMidWindow: a histogram absent from the old
// sample falls back to its full cumulative state.
func TestHistogramCreatedMidWindow(t *testing.T) {
	r := obs.NewRegistry()
	v := New(r, 10*time.Second)
	t0 := time.Unix(4000, 0)
	v.SampleAt(t0)
	h := r.Histogram("late.seconds", []float64{1})
	h.Observe(0.5)
	v.SampleAt(t0.Add(time.Second))
	d, ok := v.RED().Durations["late.seconds"]
	if !ok || d.Count != 1 {
		t.Fatalf("mid-window histogram: %+v ok=%v", d, ok)
	}
}
