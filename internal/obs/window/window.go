// Package window derives live RED metrics (Rate / Errors / Duration)
// from the deterministic obs registry by sampling its cumulative
// snapshots over a sliding wall-clock window.
//
// The registry itself is part of the run's deterministic artifact
// surface — bundles serialize it byte-for-byte, and the determinism
// oracle diffs it across worker widths. Rates, ratios, and windowed
// percentiles are inherently wall-clock quantities, so they must live
// OUTSIDE that surface. A View therefore only *reads* snapshots: it
// keeps a short ring of (time, Snapshot) samples and computes deltas
// between the oldest and newest, never writing anything back. Enabling
// or disabling a View cannot change a single bundle byte.
package window

import (
	"sync"
	"time"

	"canvassing/internal/obs"
)

// DefaultWindow is the sliding-window width used when a View is built
// with a non-positive window.
const DefaultWindow = time.Minute

// sample is one timestamped registry snapshot.
type sample struct {
	t time.Time
	s obs.Snapshot
}

// View computes sliding-window deltas over a registry. Safe for
// concurrent use; one background sampler plus any number of readers.
type View struct {
	src    func() obs.Snapshot
	window time.Duration

	mu      sync.Mutex
	samples []sample

	started  bool
	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// New builds a view over reg with the given window width (<=0 selects
// DefaultWindow). The view holds no samples until Sample or Start.
func New(reg *obs.Registry, window time.Duration) *View {
	return NewFunc(reg.Snapshot, window)
}

// NewFunc is New with an arbitrary snapshot source — the test seam,
// and the hook for wrapping sources that aren't a bare registry.
func NewFunc(src func() obs.Snapshot, window time.Duration) *View {
	if window <= 0 {
		window = DefaultWindow
	}
	return &View{
		src:    src,
		window: window,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
}

// Window reports the configured window width.
func (v *View) Window() time.Duration { return v.window }

// Sample takes one snapshot now. Exposed so tests (and callers without
// a background goroutine) can drive the clock themselves.
func (v *View) Sample() { v.SampleAt(time.Now()) }

// SampleAt records a snapshot stamped with the given time and prunes
// samples that have slid out of the window. One sample older than the
// window edge is retained so deltas always span at least the full
// window once enough history exists.
func (v *View) SampleAt(now time.Time) {
	snap := v.src()
	v.mu.Lock()
	defer v.mu.Unlock()
	v.samples = append(v.samples, sample{t: now, s: snap})
	edge := now.Add(-v.window)
	cut := 0
	for i, s := range v.samples {
		if !s.t.Before(edge) {
			break
		}
		cut = i // keep one pre-edge sample as the delta baseline
	}
	if cut > 0 {
		v.samples = append(v.samples[:0], v.samples[cut:]...)
	}
}

// Start launches a background sampler ticking at interval (<=0 picks
// window/30, clamped to [100ms, 2s]). Call Stop to halt it; Start may
// be called at most once per View.
func (v *View) Start(interval time.Duration) {
	v.mu.Lock()
	if v.started {
		v.mu.Unlock()
		return
	}
	v.started = true
	v.mu.Unlock()
	if interval <= 0 {
		interval = v.window / 30
		if interval < 100*time.Millisecond {
			interval = 100 * time.Millisecond
		}
		if interval > 2*time.Second {
			interval = 2 * time.Second
		}
	}
	go func() {
		defer close(v.done)
		tick := time.NewTicker(interval)
		defer tick.Stop()
		v.Sample()
		for {
			select {
			case <-v.stop:
				return
			case <-tick.C:
				v.Sample()
			}
		}
	}()
}

// Stop halts the background sampler and waits for it to exit. Safe to
// call multiple times, and a no-op if Start was never called.
func (v *View) Stop() {
	v.stopOnce.Do(func() { close(v.stop) })
	v.mu.Lock()
	started := v.started
	v.mu.Unlock()
	if started {
		<-v.done
	}
}

// DurationStats summarizes one latency histogram over the window.
type DurationStats struct {
	// Count is the number of observations inside the window.
	Count int64 `json:"count"`
	// PerSec is Count divided by the sampled span.
	PerSec float64 `json:"per_sec"`
	// Mean, P50, and P95 are computed from the windowed bucket deltas.
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P95  float64 `json:"p95"`
}

// Snapshot is one RED view over the sliding window. All quantities are
// deltas between the oldest and newest retained samples.
type Snapshot struct {
	// WindowSeconds is the configured window width.
	WindowSeconds float64 `json:"window_seconds"`
	// SpanSeconds is the actual elapsed time the deltas cover (shorter
	// than the window early in a run).
	SpanSeconds float64 `json:"span_seconds"`
	// Samples is the number of retained samples.
	Samples int `json:"samples"`
	// Rates maps counter name to per-second increase over the window.
	// Counters with zero delta are omitted.
	Rates map[string]float64 `json:"rates,omitempty"`
	// Ratios are named error/hit ratios derived from counter deltas
	// (retry ratio, timeout ratio, degraded ratio, cache hit rates).
	Ratios map[string]float64 `json:"ratios,omitempty"`
	// Durations maps histogram name to windowed latency stats.
	// Histograms with no window observations are omitted.
	Durations map[string]DurationStats `json:"durations,omitempty"`
}

// RED computes the current windowed view. With fewer than two samples
// (or zero elapsed span) it reports only the window configuration.
func (v *View) RED() Snapshot {
	v.mu.Lock()
	samples := v.samples
	var oldest, newest sample
	if n := len(samples); n > 0 {
		oldest, newest = samples[0], samples[n-1]
	}
	n := len(samples)
	v.mu.Unlock()

	out := Snapshot{WindowSeconds: v.window.Seconds(), Samples: n}
	if n < 2 {
		return out
	}
	span := newest.t.Sub(oldest.t).Seconds()
	if span <= 0 {
		return out
	}
	out.SpanSeconds = span

	deltas := map[string]int64{}
	out.Rates = map[string]float64{}
	for name, cur := range newest.s.Counters {
		d := cur - oldest.s.Counters[name]
		deltas[name] = d
		if d != 0 {
			out.Rates[name] = float64(d) / span
		}
	}
	out.Ratios = ratios(deltas)

	out.Durations = map[string]DurationStats{}
	for name, cur := range newest.s.Histograms {
		dh := histDelta(oldest.s.Histograms[name], cur)
		if dh.Count <= 0 {
			continue
		}
		out.Durations[name] = DurationStats{
			Count:  dh.Count,
			PerSec: float64(dh.Count) / span,
			Mean:   dh.Mean(),
			P50:    dh.Quantile(0.50),
			P95:    dh.Quantile(0.95),
		}
	}
	return out
}

// histDelta subtracts an earlier cumulative histogram snapshot from a
// later one, producing a histogram of just the window's observations.
// A bucket-layout mismatch (histogram created mid-window) falls back
// to the newer snapshot whole.
func histDelta(old, cur obs.HistogramSnapshot) obs.HistogramSnapshot {
	if len(old.Buckets) != len(cur.Buckets) {
		return cur
	}
	d := obs.HistogramSnapshot{
		Count:   cur.Count - old.Count,
		Sum:     cur.Sum - old.Sum,
		Buckets: make([]obs.BucketSnapshot, len(cur.Buckets)),
	}
	for i := range cur.Buckets {
		d.Buckets[i] = obs.BucketSnapshot{
			UpperBound: cur.Buckets[i].UpperBound,
			Count:      cur.Buckets[i].Count - old.Buckets[i].Count,
		}
	}
	return d
}

// ratios derives the named RED error/hit ratios from counter deltas.
// Each ratio appears only when its denominator is non-zero in the
// window, so an idle pipeline reports an empty map rather than NaNs.
func ratios(d map[string]int64) map[string]float64 {
	out := map[string]float64{}
	frac := func(name string, num, den int64) {
		if den > 0 {
			out[name] = float64(num) / float64(den)
		}
	}
	visits := d["crawl.visits.ok"] + d["crawl.visits.failed"]
	frac("crawl.error_ratio", d["crawl.visits.failed"], visits)
	frac("crawl.retry_ratio", d["crawl.retry"], visits)
	frac("crawl.timeout_ratio", d["crawl.timeout"], visits)
	frac("crawl.degraded_ratio", d["crawl.visits.degraded"], visits)
	frac("crawl.parsecache.hit_ratio", d["crawl.parsecache.hits"],
		d["crawl.parsecache.hits"]+d["crawl.parsecache.misses"])
	frac("analysis.cache.hit_ratio", d["analysis.cache.hits"],
		d["analysis.cache.hits"]+d["analysis.cache.misses"])
	if len(out) == 0 {
		return nil
	}
	return out
}

// VisitRate reports the windowed page visit rate (ok + failed, per
// second) — the /statusz ETA numerator.
func (v *View) VisitRate() float64 {
	red := v.RED()
	return red.Rates["crawl.visits.ok"] + red.Rates["crawl.visits.failed"]
}
