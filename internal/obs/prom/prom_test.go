package prom

import (
	"flag"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"canvassing/internal/obs"
)

var update = flag.Bool("update", false, "regenerate the exposition golden file")

// testRegistry builds a registry covering every family type the
// renderer handles, with dotted and dashed names that need sanitizing.
func testRegistry() *obs.Registry {
	r := obs.NewRegistry()
	r.Counter("crawl.visits.ok").Add(96)
	r.Counter("crawl.visits.failed").Add(4)
	r.Counter("crawl.circuit-open").Add(3)
	r.Gauge("crawl.workers").Set(8)
	h := r.Histogram("crawl.visit.seconds", []float64{0.1, 0.5, 1, 5})
	h.Observe(0.05)
	h.Observe(0.3)
	h.Observe(0.3)
	h.Observe(2)
	h.Observe(100) // overflow bucket
	return r
}

func TestSanitize(t *testing.T) {
	cases := map[string]string{
		"crawl.visits":       "crawl_visits",
		"crawl.circuit-open": "crawl_circuit_open",
		"jsvm.script.steps":  "jsvm_script_steps",
		"already_legal":      "already_legal",
		"with:colon":         "with:colon",
		"9starts.with.digit": "_9starts_with_digit",
		"":                   "_",
	}
	for in, want := range cases {
		if got := Sanitize(in); got != want {
			t.Errorf("Sanitize(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestExpositionGolden pins the rendered exposition byte-for-byte.
func TestExpositionGolden(t *testing.T) {
	got := Render(testRegistry().Snapshot())
	goldenPath := filepath.Join("testdata", "exposition.golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if string(got) != string(want) {
		t.Fatalf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s\nRe-run with -update if the change is intentional.", got, want)
	}
}

// TestExpositionParses validates the output against the text-format
// grammar with an independent line parser: TYPE lines declare each
// family before its samples, sample names belong to the declared
// family, values parse, histogram buckets are cumulative and end at
// +Inf with _count equal to the +Inf bucket.
func TestExpositionParses(t *testing.T) {
	text := string(Render(testRegistry().Snapshot()))
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition:\n%s\nerror: %v", text, err)
	}
}

func TestHistogramCumulative(t *testing.T) {
	text := string(Render(testRegistry().Snapshot()))
	var prev int64 = -1
	var inf int64 = -1
	var count int64 = -1
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "crawl_visit_seconds_bucket"):
			v, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
			if err != nil {
				t.Fatalf("bucket value: %v", err)
			}
			if v < prev {
				t.Fatalf("buckets not cumulative: %d after %d", v, prev)
			}
			prev = v
			if strings.Contains(line, `le="+Inf"`) {
				inf = v
			}
		case strings.HasPrefix(line, "crawl_visit_seconds_count"):
			count, _ = strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		}
	}
	if inf != 5 || count != 5 {
		t.Fatalf("+Inf bucket = %d, _count = %d, want both 5", inf, count)
	}
}

// TestCollision checks that two raw names sanitizing identically still
// produce distinct families.
func TestCollision(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("a.b").Add(1)
	r.Counter("a_b").Add(2)
	text := string(Render(r.Snapshot()))
	if !strings.Contains(text, "# TYPE a_b counter") || !strings.Contains(text, "# TYPE a_b_dup counter") {
		t.Fatalf("collision not disambiguated:\n%s", text)
	}
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("invalid exposition after collision: %v", err)
	}
}

func TestHandler(t *testing.T) {
	srv := httptest.NewServer(Handler(testRegistry()))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("Content-Type = %q", ct)
	}
}

func TestFormatFloatInf(t *testing.T) {
	// +Inf must render as the literal label value, never via FormatFloat.
	r := obs.NewRegistry()
	r.Histogram("h", []float64{1}).Observe(5)
	text := string(Render(r.Snapshot()))
	if strings.Contains(text, "+Inf+") || !strings.Contains(text, `le="+Inf"`) {
		t.Fatalf("overflow bucket rendering wrong:\n%s", text)
	}
	if s := formatFloat(math.Inf(1)); s != "+Inf" {
		t.Fatalf("formatFloat(+Inf) = %q", s)
	}
}
