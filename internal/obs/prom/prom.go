// Package prom renders an obs metrics registry in the Prometheus text
// exposition format (version 0.0.4) — the ops-plane contract that lets
// a standard Prometheus/VictoriaMetrics scraper watch a long crawl or
// the future verdict API without any custom tooling.
//
// The registry's dotted metric names are sanitized to the Prometheus
// grammar (`crawl.visits` → `crawl_visits`, `crawl.circuit-open` →
// `crawl_circuit_open`); histograms export cumulative `_bucket` series
// with `le` labels plus `_sum` and `_count`, exactly as a native
// Prometheus histogram would. Rendering reads one registry snapshot,
// so a scrape is internally consistent and never perturbs the metrics
// it reports.
package prom

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"canvassing/internal/obs"
)

// family is one named metric of one type, ready to render.
type family struct {
	name string // sanitized
	typ  string // "counter" | "gauge" | "histogram"
	render func(w io.Writer, name string) error
}

// Write renders the snapshot as Prometheus text exposition. Families
// are emitted in sorted (sanitized) name order, so output is
// deterministic for a given snapshot.
func Write(w io.Writer, s obs.Snapshot) error {
	var fams []family
	for name, v := range s.Counters {
		v := v
		fams = append(fams, family{name: Sanitize(name), typ: "counter",
			render: func(w io.Writer, n string) error {
				_, err := fmt.Fprintf(w, "%s %d\n", n, v)
				return err
			}})
	}
	for name, v := range s.Gauges {
		v := v
		fams = append(fams, family{name: Sanitize(name), typ: "gauge",
			render: func(w io.Writer, n string) error {
				_, err := fmt.Fprintf(w, "%s %d\n", n, v)
				return err
			}})
	}
	for name, h := range s.Histograms {
		h := h
		fams = append(fams, family{name: Sanitize(name), typ: "histogram",
			render: func(w io.Writer, n string) error { return writeHistogram(w, n, h) }})
	}
	sort.Slice(fams, func(i, j int) bool {
		if fams[i].name != fams[j].name {
			return fams[i].name < fams[j].name
		}
		return fams[i].typ < fams[j].typ
	})
	// Two raw names may sanitize to the same family name ("a.b" and
	// "a_b"). Exposition forbids duplicate families, so later ones get
	// a deterministic _dup suffix instead of silently colliding.
	seen := map[string]bool{}
	for _, f := range fams {
		name := f.name
		for seen[name] {
			name += "_dup"
		}
		seen[name] = true
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, f.typ); err != nil {
			return err
		}
		if err := f.render(w, name); err != nil {
			return err
		}
	}
	return nil
}

// writeHistogram emits the cumulative bucket series, sum, and count.
func writeHistogram(w io.Writer, name string, h obs.HistogramSnapshot) error {
	var cum int64
	for _, b := range h.Buckets {
		cum += b.Count
		le := "+Inf"
		if !math.IsInf(b.UpperBound, 1) {
			le = formatFloat(b.UpperBound)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_sum %s\n", name, formatFloat(h.Sum)); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count %d\n", name, h.Count)
	return err
}

// formatFloat renders a sample value the way Prometheus clients do:
// shortest round-trip representation.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Render returns the exposition as a byte slice.
func Render(s obs.Snapshot) []byte {
	var sb strings.Builder
	// strings.Builder never errors.
	_ = Write(&sb, s)
	return []byte(sb.String())
}

// Sanitize maps a registry metric name onto the Prometheus metric-name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*: every illegal rune becomes '_',
// and a leading digit gets a '_' prefix.
func Sanitize(name string) string {
	if name == "" {
		return "_"
	}
	var sb strings.Builder
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
			sb.WriteRune(r)
		case r >= '0' && r <= '9':
			if i == 0 {
				sb.WriteByte('_')
			}
			sb.WriteRune(r)
		default:
			sb.WriteByte('_')
		}
	}
	return sb.String()
}

// ValidateExposition checks text against the exposition grammar this
// package emits: every sample belongs to a family declared by a
// preceding # TYPE line, no family is declared twice, metric names
// match the Prometheus grammar, sample values parse, histogram bucket
// series are cumulative, terminate at le="+Inf", and agree with their
// _count. The test suites (and the live integration test against a
// running /metrics.prom) use it as an independent scrape check.
func ValidateExposition(text string) error {
	families := map[string]string{} // name → type
	bucketPrev := map[string]int64{}
	bucketInf := map[string]int64{}
	counts := map[string]int64{}
	var current string
	for i, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			parts := strings.Fields(rest)
			if len(parts) != 2 {
				return fmt.Errorf("line %d: malformed TYPE line %q", i+1, line)
			}
			name, typ := parts[0], parts[1]
			if !validName(name) {
				return fmt.Errorf("line %d: illegal metric name %q", i+1, name)
			}
			if _, dup := families[name]; dup {
				return fmt.Errorf("line %d: family %q declared twice", i+1, name)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return fmt.Errorf("line %d: unknown type %q", i+1, typ)
			}
			families[name] = typ
			current = name
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // comments are legal anywhere
		}
		sp := strings.LastIndex(line, " ")
		if sp < 0 {
			return fmt.Errorf("line %d: no sample value in %q", i+1, line)
		}
		series, value := line[:sp], line[sp+1:]
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: bad sample value %q: %w", i+1, value, err)
		}
		name := series
		var le string
		if b := strings.Index(series, "{"); b >= 0 {
			name = series[:b]
			labels := series[b:]
			if !strings.HasPrefix(labels, `{le="`) || !strings.HasSuffix(labels, `"}`) {
				return fmt.Errorf("line %d: unexpected label set %q", i+1, labels)
			}
			le = labels[len(`{le="`) : len(labels)-len(`"}`)]
		}
		base := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if trimmed, ok := strings.CutSuffix(name, suffix); ok && families[trimmed] == "histogram" {
				base = trimmed
				break
			}
		}
		if base != current {
			return fmt.Errorf("line %d: sample %q outside its family block (current %q)", i+1, name, current)
		}
		typ, ok := families[base]
		if !ok {
			return fmt.Errorf("line %d: sample %q has no TYPE declaration", i+1, name)
		}
		if typ == "histogram" {
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if le == "" {
					return fmt.Errorf("line %d: bucket without le label", i+1)
				}
				v, err := strconv.ParseInt(value, 10, 64)
				if err != nil {
					return fmt.Errorf("line %d: bucket count %q: %w", i+1, value, err)
				}
				if v < bucketPrev[base] {
					return fmt.Errorf("line %d: bucket series for %q not cumulative (%d after %d)", i+1, base, v, bucketPrev[base])
				}
				bucketPrev[base] = v
				if le == "+Inf" {
					bucketInf[base] = v
				}
			case strings.HasSuffix(name, "_count"):
				v, _ := strconv.ParseInt(value, 10, 64)
				counts[base] = v
			}
		}
	}
	for base, c := range counts {
		inf, ok := bucketInf[base]
		if !ok {
			return fmt.Errorf("histogram %q has no +Inf bucket", base)
		}
		if inf != c {
			return fmt.Errorf("histogram %q: +Inf bucket %d != _count %d", base, inf, c)
		}
	}
	return nil
}

// validName reports whether name matches [a-zA-Z_:][a-zA-Z0-9_:]*.
func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		legal := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(i > 0 && r >= '0' && r <= '9')
		if !legal {
			return false
		}
	}
	return true
}

// Handler serves the registry in exposition format — mount it at
// /metrics.prom.
func Handler(reg *obs.Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Write(w, reg.Snapshot())
	})
}
