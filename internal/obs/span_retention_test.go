package obs

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestTracerRetention pins the bounded-buffer regression surface: with
// SetRetention(n) the tracer keeps only the n most recent finished
// spans, counts the discards, and an oversized buffer is trimmed the
// moment the bound is applied.
func TestTracerRetention(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(time.Millisecond)
	tr.SetRetention(3)
	for i := 0; i < 10; i++ {
		tr.Start(fmt.Sprintf("phase-%02d", i)).End()
	}
	recs := tr.Records()
	if len(recs) != 3 {
		t.Fatalf("records = %d, want 3", len(recs))
	}
	for i, want := range []string{"phase-07", "phase-08", "phase-09"} {
		if recs[i].Name != want {
			t.Fatalf("record %d = %q, want %q (oldest must drop first)", i, recs[i].Name, want)
		}
	}
	if got := tr.DroppedSpans(); got != 7 {
		t.Fatalf("dropped = %d, want 7", got)
	}

	// Tightening the bound trims immediately.
	tr.SetRetention(1)
	if recs := tr.Records(); len(recs) != 1 || recs[0].Name != "phase-09" {
		t.Fatalf("after tighten: %+v", recs)
	}
	if got := tr.DroppedSpans(); got != 9 {
		t.Fatalf("dropped after tighten = %d, want 9", got)
	}

	// n <= 0 restores unbounded retention.
	tr.SetRetention(0)
	for i := 0; i < 5; i++ {
		tr.Start("more").End()
	}
	if got := len(tr.Records()); got != 6 {
		t.Fatalf("unbounded records = %d, want 6", got)
	}
	if got := tr.DroppedSpans(); got != 9 {
		t.Fatalf("dropped must not grow unbounded-mode: %d", got)
	}
}

// TestTracerDrain: Drain hands back the finished spans in end order and
// empties the buffer; in-flight spans survive and land in the next
// Drain.
func TestTracerDrain(t *testing.T) {
	tr := NewTracer()
	tr.now = fakeClock(time.Millisecond)
	open := tr.Start("still-open")
	tr.Start("a").End()
	tr.Start("b").End()

	got := tr.Drain()
	if len(got) != 2 || got[0].Name != "a" || got[1].Name != "b" {
		t.Fatalf("first drain = %+v", got)
	}
	if len(tr.Records()) != 0 {
		t.Fatal("drain must empty the finished buffer")
	}
	if len(tr.Active()) != 1 {
		t.Fatal("drain must not touch in-flight spans")
	}

	open.End()
	got = tr.Drain()
	if len(got) != 1 || got[0].Name != "still-open" {
		t.Fatalf("second drain = %+v", got)
	}
	if got := tr.Drain(); len(got) != 0 {
		t.Fatalf("drain of empty tracer = %+v", got)
	}
}

// churnObserver counts span lifecycle callbacks under its own lock, as
// the SpanObserver contract requires of implementations.
type churnObserver struct {
	mu                   sync.Mutex
	started, ended       int
	rootStart, rootEnded int
}

func (o *churnObserver) SpanStarted(name string, root bool) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.started++
	if root {
		o.rootStart++
	}
}

func (o *churnObserver) SpanEnded(name string, root bool, d time.Duration) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.ended++
	if root {
		o.rootEnded++
	}
}

// TestSpanObserverConcurrentChurn drives root and child spans from many
// goroutines at once — the shape of a crawl with per-worker phase spans
// — and checks every start saw a matching end with the root flag intact.
// Run under -race this also pins the "callbacks outside the tracer
// lock" discipline.
func TestSpanObserverConcurrentChurn(t *testing.T) {
	obsv := &churnObserver{}
	tr := NewTracer()
	tr.Observer = obsv
	tr.SetRetention(64) // churn far past the bound on purpose

	const workers = 8
	const perWorker = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				root := tr.Start(fmt.Sprintf("w%d", w))
				c1 := root.StartChild("child-a")
				c2 := root.StartChild("child-b")
				c2.End()
				c1.End()
				root.End()
			}
		}(w)
	}
	wg.Wait()

	wantTotal := workers * perWorker * 3
	wantRoots := workers * perWorker
	obsv.mu.Lock()
	defer obsv.mu.Unlock()
	if obsv.started != wantTotal || obsv.ended != wantTotal {
		t.Fatalf("observer saw %d starts / %d ends, want %d each", obsv.started, obsv.ended, wantTotal)
	}
	if obsv.rootStart != wantRoots || obsv.rootEnded != wantRoots {
		t.Fatalf("root callbacks %d/%d, want %d each", obsv.rootStart, obsv.rootEnded, wantRoots)
	}
	if len(tr.Active()) != 0 {
		t.Fatalf("active after churn = %d, want 0", len(tr.Active()))
	}
	if got := len(tr.Records()); got != 64 {
		t.Fatalf("retention bound violated: %d records, want 64", got)
	}
	if got := tr.DroppedSpans(); got != uint64(wantTotal-64) {
		t.Fatalf("dropped = %d, want %d", got, wantTotal-64)
	}
}
