// Package obs is the crawl telemetry layer: a dependency-free,
// concurrency-safe metrics registry (atomic counters, gauges, and
// fixed-bucket latency histograms), lightweight hierarchical span
// tracing with JSON-lines export, and snapshot/render APIs for
// terminal tables, JSON dumps, and live HTTP inspection.
//
// The paper's crawler ran for weeks over 40k sites; its §3.2
// limitations hinge on knowing what the crawler actually did
// (timeouts, blocked scripts, failed visits). Everything here exists
// so the reproduction pipeline is never blind in the same way: the
// crawler reports visit latency, queue wait, parse-cache
// effectiveness, and jsvm step budgets; the study wraps every phase
// in spans so a run ends with a phase-timing table.
//
// All types are safe for concurrent use. A nil *Telemetry disables
// instrumentation at the call sites that accept one; the registry and
// tracer themselves never need nil checks once constructed.
package obs

import "canvassing/internal/obs/event"

// Telemetry bundles the three halves of the observability layer: the
// metrics registry (counters, gauges, histograms), the span tracer
// (hierarchical phases), and the decision-event sink (per-canvas /
// per-script provenance). One Telemetry is shared by a whole pipeline
// run so every crawl and analysis phase accumulates into it.
type Telemetry struct {
	Metrics *Registry
	Tracer  *Tracer
	Events  *event.Sink
	// Status is the live run-progress tracker behind /healthz, /readyz,
	// and /statusz. It is deliberately NOT part of the registry: nothing
	// in it reaches a bundle or checkpoint, so the ops plane never
	// perturbs deterministic artifacts. Nil on bare Telemetry literals;
	// every consumer nil-checks (Status methods are nil-safe).
	Status *Status
}

// NewTelemetry returns an empty telemetry bundle. The tracer's root
// spans feed the status tracker's phase ledger automatically.
func NewTelemetry() *Telemetry {
	st := NewStatus()
	tr := NewTracer()
	tr.Observer = st
	return &Telemetry{Metrics: NewRegistry(), Tracer: tr, Events: event.NewSink(0), Status: st}
}
