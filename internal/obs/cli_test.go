package obs

import (
	"flag"
	"testing"
	"time"
)

// TestBindCLIDefaults: an empty command line leaves everything off.
func TestBindCLIDefaults(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLI(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Metrics || c.Trace != "" || c.Pprof != "" || c.Status != "" ||
		c.Window != 0 || c.OutDir != "" || c.AnalysisWorkers != 0 {
		t.Fatalf("defaults not zero: %+v", c)
	}
	if addr, pprof := c.OpsAddr(); addr != "" || pprof {
		t.Fatalf("OpsAddr with no flags = %q %v", addr, pprof)
	}
}

// TestBindCLIParses: every shared flag lands in its field.
func TestBindCLIParses(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLI(fs)
	err := fs.Parse([]string{
		"-metrics",
		"-trace", "spans.jsonl",
		"-status", "127.0.0.1:9000",
		"-window", "30s",
		"-outdir", "bundle",
		"-analysis-workers", "4",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !c.Metrics || c.Trace != "spans.jsonl" || c.Status != "127.0.0.1:9000" ||
		c.Window != 30*time.Second || c.OutDir != "bundle" || c.AnalysisWorkers != 4 {
		t.Fatalf("parsed = %+v", c)
	}
	if addr, pprof := c.OpsAddr(); addr != "127.0.0.1:9000" || pprof {
		t.Fatalf("OpsAddr under -status = %q pprof=%v", addr, pprof)
	}
}

// TestOpsAddrPprofWins: -pprof supersedes -status (it is the same
// plane plus /debug/pprof).
func TestOpsAddrPprofWins(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindCLI(fs)
	if err := fs.Parse([]string{"-status", ":9000", "-pprof", ":9001"}); err != nil {
		t.Fatal(err)
	}
	addr, pprof := c.OpsAddr()
	if addr != ":9001" || !pprof {
		t.Fatalf("OpsAddr = %q pprof=%v, want :9001 true", addr, pprof)
	}
}

func TestBindFaultCLI(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	c := BindFaultCLI(fs)
	if err := fs.Parse([]string{"-faults", "0.2", "-retries", "5", "-visit-timeout", "2s"}); err != nil {
		t.Fatal(err)
	}
	if c.Rate != 0.2 || c.Retries != 5 || c.VisitTimeout != 2*time.Second {
		t.Fatalf("parsed = %+v", c)
	}
}
