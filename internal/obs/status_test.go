package obs

import (
	"testing"
	"time"
)

func TestStatusLifecycle(t *testing.T) {
	s := NewStatus()
	if s.State() != StateInit || s.Ready() {
		t.Fatalf("fresh status: state=%q ready=%v", s.State(), s.Ready())
	}
	s.MarkRunning()
	if s.State() != StateRunning || !s.Ready() {
		t.Fatal("running must be ready")
	}
	s.MarkDone()
	if s.State() != StateDone || !s.Ready() {
		t.Fatal("done must stay ready")
	}
	s.MarkFailed()
	if s.State() != StateFailed || s.Ready() {
		t.Fatal("failed must not be ready")
	}
}

// TestStatusNilSafe: every method must no-op on a nil receiver so bare
// Telemetry literals (no Status) keep working.
func TestStatusNilSafe(t *testing.T) {
	var s *Status
	s.MarkRunning()
	s.MarkDone()
	s.MarkFailed()
	s.SpanStarted("x", true)
	s.SpanEnded("x", true, time.Second)
	s.CrawlProgress("control", 1, 2, false)
	s.RecordAnalysis("control", 1, 2, 3, 4)
	s.CheckpointWrite("dir", 1, false)
	if s.State() != StateInit || s.Ready() {
		t.Fatal("nil status must report init / not ready")
	}
	if _, ok := s.ActiveCrawl(); ok {
		t.Fatal("nil status has no active crawl")
	}
	if snap := s.Snapshot(); snap.State != StateInit {
		t.Fatalf("nil snapshot = %+v", snap)
	}
}

// TestPhaseLedgerViaTracer: root spans feed the ledger through the
// SpanObserver hook NewTelemetry installs; child spans do not.
func TestPhaseLedgerViaTracer(t *testing.T) {
	tel := NewTelemetry()
	root := tel.Tracer.Start("crawl")
	child := root.StartChild("visit")

	snap := tel.Status.Snapshot()
	if len(snap.Phases) != 1 || snap.Phases[0].Name != "crawl" || snap.Phases[0].State != "running" {
		t.Fatalf("phases mid-span = %+v", snap.Phases)
	}

	child.End()
	root.End()
	snap = tel.Status.Snapshot()
	if len(snap.Phases) != 1 {
		t.Fatalf("child span leaked into the ledger: %+v", snap.Phases)
	}
	p := snap.Phases[0]
	if p.State != "done" || p.Runs != 1 || p.Seconds < 0 {
		t.Fatalf("phase after end = %+v", p)
	}

	// Re-entrant phase: a second root span with the same name.
	tel.Tracer.Start("crawl").End()
	snap = tel.Status.Snapshot()
	if snap.Phases[0].Runs != 2 {
		t.Fatalf("re-entrant runs = %d, want 2", snap.Phases[0].Runs)
	}
}

func TestCrawlProgressAndActiveCrawl(t *testing.T) {
	s := NewStatus()
	s.CrawlProgress("control", 0, 100, false)
	s.CrawlProgress("control", 40, 100, false)
	s.CrawlProgress("abp", 0, 100, false)

	c, ok := s.ActiveCrawl()
	if !ok || c.Condition != "control" || c.Frontier != 40 {
		t.Fatalf("active crawl = %+v ok=%v", c, ok)
	}
	s.CrawlProgress("control", 100, 100, true)
	c, ok = s.ActiveCrawl()
	if !ok || c.Condition != "abp" {
		t.Fatalf("after control done, active = %+v ok=%v", c, ok)
	}
	s.CrawlProgress("abp", 100, 100, true)
	if _, ok := s.ActiveCrawl(); ok {
		t.Fatal("all crawls done but one still reported active")
	}

	snap := s.Snapshot()
	if len(snap.Crawls) != 2 || !snap.Crawls[0].Done || !snap.Crawls[1].Done {
		t.Fatalf("crawls = %+v", snap.Crawls)
	}
	// Empty condition is dropped, not registered.
	s.CrawlProgress("", 1, 2, false)
	if len(s.Snapshot().Crawls) != 2 {
		t.Fatal("empty condition must be ignored")
	}
}

func TestCheckpointAndAnalysisStatus(t *testing.T) {
	s := NewStatus()
	base := time.Unix(5000, 0)
	s.now = func() time.Time { return base }
	s.CheckpointWrite("/tmp/ckpt", 3, false)
	s.RecordAnalysis("control", 800, 120, 16, 8)

	snap := s.Snapshot()
	if snap.Checkpoint == nil || snap.Checkpoint.Writes != 3 || !snap.Checkpoint.LastWrite.Equal(base) {
		t.Fatalf("checkpoint = %+v", snap.Checkpoint)
	}
	if len(snap.Analyses) != 1 || snap.Analyses[0].Canvases != 120 {
		t.Fatalf("analyses = %+v", snap.Analyses)
	}
}
