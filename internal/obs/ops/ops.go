// Package ops assembles the production ops plane: it wires the obs
// debug mux together with the Prometheus exposition endpoint
// (internal/obs/prom), the sliding-window RED views
// (internal/obs/window), and the live /statusz run-status page fed by
// the obs.Status tracker.
//
// The split exists to keep import edges acyclic: obs knows nothing of
// prom or window (both import obs), so this package is where the three
// meet. Binaries call Start with their parsed obs.CLI and get the
// whole surface — or nothing, when no serving flag was given.
//
// Endpoints added on top of the obs mux:
//
//	/metrics.prom  registry in Prometheus text exposition format
//	/red           sliding-window RED view (rates, ratios, latencies)
//	/statusz       live run status: phases, frontier, ETA (JSON or HTML)
//	/tracez        trace analytics: critical path + slowest-visit exemplars
package ops

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"time"

	"canvassing/internal/obs"
	"canvassing/internal/obs/prom"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/obs/window"
)

// ActiveSpan is one currently-open tracer span as /statusz reports it.
type ActiveSpan struct {
	Name    string  `json:"name"`
	Seconds float64 `json:"seconds"`
}

// Statusz is the /statusz JSON payload: the status tracker's snapshot
// plus the wall-clock extras computed at serve time (windowed visit
// rate, ETA for the active crawl, open spans).
type Statusz struct {
	obs.StatusSnapshot
	// VisitRatePerSec is the windowed page visit rate (ok + failed).
	VisitRatePerSec float64 `json:"visit_rate_per_sec"`
	// ETACondition / ETASeconds estimate completion of the first
	// unfinished crawl from the windowed visit rate. Omitted when no
	// crawl is active or the rate is zero.
	ETACondition string  `json:"eta_condition,omitempty"`
	ETASeconds   float64 `json:"eta_seconds,omitempty"`
	// ActiveSpans lists currently-open tracer spans, outermost first.
	ActiveSpans []ActiveSpan `json:"active_spans,omitempty"`
}

// BuildStatusz assembles the payload from the telemetry bundle and
// windowed view (view may be nil: rate and ETA stay zero).
func BuildStatusz(tel *obs.Telemetry, view *window.View) Statusz {
	st := Statusz{StatusSnapshot: tel.Status.Snapshot()}
	if view != nil {
		st.VisitRatePerSec = view.VisitRate()
	}
	if crawl, ok := tel.Status.ActiveCrawl(); ok && st.VisitRatePerSec > 0 {
		st.ETACondition = crawl.Condition
		st.ETASeconds = float64(crawl.Total-crawl.Frontier) / st.VisitRatePerSec
	}
	for _, sp := range tel.Tracer.Active() {
		st.ActiveSpans = append(st.ActiveSpans, ActiveSpan{
			Name: sp.Name, Seconds: sp.Duration.Seconds(),
		})
	}
	return st
}

// Routes returns the ops-plane extras to layer onto the obs mux. The
// reservoir may be nil (visit tracing off): /tracez then answers 404.
func Routes(tel *obs.Telemetry, view *window.View, visits *tracez.Reservoir) []obs.Route {
	return []obs.Route{
		{Pattern: "/metrics.prom", Desc: "metrics registry (Prometheus text exposition)",
			Handler: prom.Handler(tel.Metrics)},
		{Pattern: "/red", Desc: "sliding-window RED view (rates, error ratios, latency percentiles)",
			Handler: redHandler(view)},
		{Pattern: "/statusz", Desc: "live run status: phases, crawl frontier, ETA (JSON; HTML for browsers)",
			Handler: statuszHandler(tel, view)},
		{Pattern: "/tracez", Desc: "trace analytics: critical path, phase attribution, slowest-visit exemplars (JSON; HTML for browsers)",
			Handler: tracez.Handler(tel, visits)},
	}
}

// NewMux builds the full ops-plane mux: every obs debug endpoint plus
// the exposition, RED, status, and trace-analytics routes.
func NewMux(tel *obs.Telemetry, withPprof bool, view *window.View, visits *tracez.Reservoir) *http.ServeMux {
	return obs.NewMux(tel, withPprof, Routes(tel, view, visits)...)
}

// redHandler serves the windowed RED snapshot as JSON. A nil view
// (sampler disabled) answers 404 so probes can tell it apart from an
// idle window.
func redHandler(view *window.View) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if view == nil {
			http.Error(w, "windowed view disabled", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, view.RED())
	})
}

// statuszHandler serves the live run status — JSON by default, a small
// HTML dashboard when the client asks for text/html.
func statuszHandler(tel *obs.Telemetry, view *window.View) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		st := BuildStatusz(tel, view)
		if obs.WantsHTML(r) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			writeStatuszHTML(w, st)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		writeJSON(w, st)
	})
}

func writeStatuszHTML(w http.ResponseWriter, st Statusz) {
	fmt.Fprint(w, "<!DOCTYPE html><html><head><title>canvassing /statusz</title></head><body>")
	fmt.Fprintf(w, "<h1>run status: %s</h1>", st.State)
	fmt.Fprintf(w, "<p>uptime %.1fs", st.UptimeSeconds)
	if st.VisitRatePerSec > 0 {
		fmt.Fprintf(w, " · %.1f visits/s", st.VisitRatePerSec)
	}
	if st.ETASeconds > 0 {
		fmt.Fprintf(w, " · ETA %s for %s",
			(time.Duration(st.ETASeconds * float64(time.Second))).Round(time.Second), st.ETACondition)
	}
	fmt.Fprint(w, "</p>")
	if len(st.Crawls) > 0 {
		fmt.Fprint(w, "<h2>crawls</h2><table border=1 cellpadding=4><tr><th>condition</th><th>frontier</th><th>total</th><th>done</th></tr>")
		for _, c := range st.Crawls {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%d</td><td>%v</td></tr>",
				c.Condition, c.Frontier, c.Total, c.Done)
		}
		fmt.Fprint(w, "</table>")
	}
	if len(st.Phases) > 0 {
		fmt.Fprint(w, "<h2>phases</h2><table border=1 cellpadding=4><tr><th>phase</th><th>state</th><th>runs</th><th>seconds</th></tr>")
		for _, p := range st.Phases {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%.3f</td></tr>",
				p.Name, p.State, p.Runs, p.Seconds)
		}
		fmt.Fprint(w, "</table>")
	}
	if len(st.ActiveSpans) > 0 {
		fmt.Fprint(w, "<h2>active spans</h2><ul>")
		for _, sp := range st.ActiveSpans {
			fmt.Fprintf(w, "<li><code>%s</code> %.3fs</li>", sp.Name, sp.Seconds)
		}
		fmt.Fprint(w, "</ul>")
	}
	if st.Checkpoint != nil {
		fmt.Fprintf(w, "<h2>checkpoint</h2><p>%s · %d writes</p>", st.Checkpoint.Dir, st.Checkpoint.Writes)
	}
	fmt.Fprint(w, "</body></html>")
}

// Plane is a running ops plane: the HTTP server plus its window
// sampler. All methods are nil-safe so callers can unconditionally
// defer Close after a Start that may decline to serve.
type Plane struct {
	Server *obs.Server
	View   *window.View
}

// Addr reports the bound listen address ("" for a nil plane).
func (p *Plane) Addr() string {
	if p == nil || p.Server == nil {
		return ""
	}
	return p.Server.Addr()
}

// URL reports the http:// base URL ("" for a nil plane).
func (p *Plane) URL() string {
	if p == nil || p.Server == nil {
		return ""
	}
	return p.Server.URL()
}

// Shutdown gracefully stops the server and sampler.
func (p *Plane) Shutdown(ctx context.Context) error {
	if p == nil {
		return nil
	}
	if p.View != nil {
		p.View.Stop()
	}
	if p.Server != nil {
		return p.Server.Shutdown(ctx)
	}
	return nil
}

// Close stops the server and sampler immediately.
func (p *Plane) Close() error {
	if p == nil {
		return nil
	}
	if p.View != nil {
		p.View.Stop()
	}
	if p.Server != nil {
		return p.Server.Close()
	}
	return nil
}

// Serve builds a windowed view over tel's registry, starts its
// sampler, and serves the full ops plane on addr (":0" picks a port).
// visits may be nil when the run captures no exemplars.
func Serve(addr string, tel *obs.Telemetry, withPprof bool, win time.Duration, visits *tracez.Reservoir) (*Plane, error) {
	view := window.New(tel.Metrics, win)
	srv, err := obs.StartServer(addr, NewMux(tel, withPprof, view, visits))
	if err != nil {
		return nil, err
	}
	view.Start(0)
	return &Plane{Server: srv, View: view}, nil
}

// Start serves the ops plane when the parsed CLI asked for one
// (-status or -pprof) and reports the bound address on stderr. With
// neither flag set it returns (nil, nil); the nil Plane's methods are
// all no-ops. visits feeds /tracez and may be nil.
func Start(cli *obs.CLI, tel *obs.Telemetry, visits *tracez.Reservoir) (*Plane, error) {
	addr, withPprof := cli.OpsAddr()
	if addr == "" {
		return nil, nil
	}
	p, err := Serve(addr, tel, withPprof, cli.Window, visits)
	if err != nil {
		return nil, err
	}
	label := "ops plane"
	if withPprof {
		label = "ops plane (with pprof)"
	}
	fmt.Fprintf(os.Stderr, "telemetry: serving %s on %s\n", label, p.URL())
	return p, nil
}

// writeJSON marshals v indented (map keys come out sorted, so the
// payload is stable for a given state).
func writeJSON(w http.ResponseWriter, v any) {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
