package ops

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"canvassing/internal/obs"
	"canvassing/internal/obs/prom"
	"canvassing/internal/obs/window"
)

// testPlane builds a telemetry bundle with some registry state, a
// manually-driven window view, and the full ops mux.
func testPlane(t *testing.T) (*obs.Telemetry, *window.View, *httptest.Server) {
	t.Helper()
	tel := obs.NewTelemetry()
	tel.Metrics.Counter("crawl.visits.ok").Add(90)
	tel.Metrics.Counter("crawl.visits.failed").Add(10)
	tel.Metrics.Histogram("crawl.visit.seconds", obs.LatencyBuckets()).Observe(0.2)
	view := window.New(tel.Metrics, 10*time.Second)
	srv := httptest.NewServer(NewMux(tel, false, view, nil))
	t.Cleanup(srv.Close)
	return tel, view, srv
}

func get(t *testing.T, url string, hdr ...string) (int, string) {
	t.Helper()
	req, err := http.NewRequest("GET", url, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i+1 < len(hdr); i += 2 {
		req.Header.Set(hdr[i], hdr[i+1])
	}
	res, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	body, err := io.ReadAll(res.Body)
	if err != nil {
		t.Fatal(err)
	}
	return res.StatusCode, string(body)
}

func TestMetricsPromEndpoint(t *testing.T) {
	_, _, srv := testPlane(t)
	code, body := get(t, srv.URL+"/metrics.prom")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	if err := prom.ValidateExposition(body); err != nil {
		t.Fatalf("invalid exposition from /metrics.prom: %v\n%s", err, body)
	}
	if !strings.Contains(body, "crawl_visits_ok 90") {
		t.Fatalf("missing counter:\n%s", body)
	}
}

func TestREDEndpoint(t *testing.T) {
	tel, view, srv := testPlane(t)
	t0 := time.Unix(1000, 0)
	view.SampleAt(t0)
	tel.Metrics.Counter("crawl.visits.ok").Add(10)
	view.SampleAt(t0.Add(10 * time.Second))

	code, body := get(t, srv.URL+"/red")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var red window.Snapshot
	if err := json.Unmarshal([]byte(body), &red); err != nil {
		t.Fatalf("bad /red JSON: %v\n%s", err, body)
	}
	if red.Rates["crawl.visits.ok"] != 1 {
		t.Fatalf("rate = %v, want 1/s\n%s", red.Rates["crawl.visits.ok"], body)
	}
}

func TestREDDisabled(t *testing.T) {
	tel := obs.NewTelemetry()
	srv := httptest.NewServer(NewMux(tel, false, nil, nil))
	defer srv.Close()
	if code, _ := get(t, srv.URL+"/red"); code != 404 {
		t.Fatalf("nil view /red status %d, want 404", code)
	}
}

func TestStatuszJSONWithETA(t *testing.T) {
	tel, view, srv := testPlane(t)
	tel.Status.MarkRunning()
	tel.Status.CrawlProgress("control", 100, 200, false)
	// Window shows 10 visits/s → ETA (200-100)/10 = 10s.
	t0 := time.Unix(1000, 0)
	view.SampleAt(t0)
	tel.Metrics.Counter("crawl.visits.ok").Add(100)
	view.SampleAt(t0.Add(10 * time.Second))

	sp := tel.Tracer.Start("crawl")
	defer sp.End()

	code, body := get(t, srv.URL+"/statusz")
	if code != 200 {
		t.Fatalf("status %d", code)
	}
	var st Statusz
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("bad /statusz JSON: %v\n%s", err, body)
	}
	if st.State != obs.StateRunning {
		t.Fatalf("state = %q", st.State)
	}
	if len(st.Crawls) != 1 || st.Crawls[0].Frontier != 100 {
		t.Fatalf("crawls = %+v", st.Crawls)
	}
	if st.VisitRatePerSec != 10 {
		t.Fatalf("visit rate = %v", st.VisitRatePerSec)
	}
	if st.ETACondition != "control" || st.ETASeconds != 10 {
		t.Fatalf("ETA = %q %v, want control 10s", st.ETACondition, st.ETASeconds)
	}
	found := false
	for _, s := range st.ActiveSpans {
		if s.Name == "crawl" {
			found = true
		}
	}
	if !found {
		t.Fatalf("open span missing from ActiveSpans: %+v", st.ActiveSpans)
	}
	// Phase ledger fed by the span observer: the open root span appears.
	running := false
	for _, p := range st.Phases {
		if p.Name == "crawl" && p.State == "running" {
			running = true
		}
	}
	if !running {
		t.Fatalf("phase ledger = %+v, want crawl running", st.Phases)
	}
}

func TestStatuszHTML(t *testing.T) {
	tel, _, srv := testPlane(t)
	tel.Status.MarkRunning()
	tel.Status.CrawlProgress("control", 5, 10, false)
	code, body := get(t, srv.URL+"/statusz", "Accept", "text/html")
	if code != 200 || !strings.Contains(body, "<html>") || !strings.Contains(body, "control") {
		t.Fatalf("statusz HTML: status %d\n%s", code, body)
	}
}

// TestHealthReadyTransitions walks the full lifecycle through the
// probe endpoints: init → 503, running → 200, done → 200, failed → 503.
// /healthz answers 200 throughout.
func TestHealthReadyTransitions(t *testing.T) {
	tel, _, srv := testPlane(t)
	check := func(wantReady int, state string) {
		t.Helper()
		if code, _ := get(t, srv.URL+"/healthz"); code != 200 {
			t.Fatalf("[%s] healthz = %d, want 200", state, code)
		}
		code, body := get(t, srv.URL+"/readyz")
		if code != wantReady {
			t.Fatalf("[%s] readyz = %d (%q), want %d", state, code, strings.TrimSpace(body), wantReady)
		}
	}
	check(503, "init")
	tel.Status.MarkRunning()
	check(200, "running")
	tel.Status.MarkDone()
	check(200, "done")
	tel.Status.MarkFailed()
	check(503, "failed")
}

// TestIndexListsOpsRoutes: the root page advertises the ops extras.
func TestIndexListsOpsRoutes(t *testing.T) {
	_, _, srv := testPlane(t)
	code, body := get(t, srv.URL+"/")
	if code != 200 {
		t.Fatalf("index status %d", code)
	}
	for _, want := range []string{"/metrics.prom", "/red", "/statusz", "/healthz", "/readyz", "/metrics"} {
		if !strings.Contains(body, want) {
			t.Fatalf("index missing %s:\n%s", want, body)
		}
	}
	if code, _ := get(t, srv.URL+"/no-such-endpoint"); code != 404 {
		t.Fatalf("unknown path status %d, want 404", code)
	}
}

// TestServeLifecycle starts a real plane on :0, hits it, and shuts it
// down gracefully.
func TestServeLifecycle(t *testing.T) {
	tel := obs.NewTelemetry()
	plane, err := Serve("127.0.0.1:0", tel, false, time.Second, nil)
	if err != nil {
		t.Fatal(err)
	}
	if plane.Addr() == "" || strings.HasSuffix(plane.Addr(), ":0") {
		t.Fatalf("bound addr = %q, want a real port", plane.Addr())
	}
	if code, _ := get(t, plane.URL()+"/healthz"); code != 200 {
		t.Fatalf("healthz over real listener = %d", code)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if err := plane.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get(plane.URL() + "/healthz"); err == nil {
		t.Fatal("server still answering after Shutdown")
	}
}

// TestStartRespectsFlags covers ops.Start: no flags → nil plane
// (whose methods are no-ops); -status → plane without pprof; -pprof
// wins over -status and adds /debug/pprof.
func TestStartRespectsFlags(t *testing.T) {
	tel := obs.NewTelemetry()

	plane, err := Start(&obs.CLI{}, tel, nil)
	if err != nil || plane != nil {
		t.Fatalf("no-flag Start = %v, %v", plane, err)
	}
	if plane.Addr() != "" || plane.Close() != nil || plane.Shutdown(context.Background()) != nil {
		t.Fatal("nil plane methods must no-op")
	}

	plane, err = Start(&obs.CLI{Status: "127.0.0.1:0", Window: time.Second}, tel, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer plane.Close()
	if code, _ := get(t, plane.URL()+"/statusz"); code != 200 {
		t.Fatal("statusz not served under -status")
	}
	if code, _ := get(t, plane.URL()+"/debug/pprof/cmdline"); code != 404 {
		t.Fatal("-status must not expose pprof")
	}

	pp, err := Start(&obs.CLI{Status: "ignored", Pprof: "127.0.0.1:0"}, tel, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer pp.Close()
	if code, _ := get(t, pp.URL()+"/debug/pprof/cmdline"); code != 200 {
		t.Fatal("-pprof must expose pprof")
	}
	if code, _ := get(t, pp.URL()+"/statusz"); code != 200 {
		t.Fatal("-pprof must still serve the ops plane")
	}
}
