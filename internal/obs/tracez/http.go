package tracez

import (
	"encoding/json"
	"fmt"
	"net/http"

	"canvassing/internal/obs"
)

// Payload is the /tracez JSON payload: the live phase-level
// critical-path report plus the exemplar reservoir snapshot.
type Payload struct {
	CriticalPath Report          `json:"critical_path"`
	Conditions   []CondExemplars `json:"conditions,omitempty"`
}

// Handler serves the live trace-analytics view — JSON by default, an
// HTML slowest-visits dashboard for browsers. A nil reservoir (visit
// tracing disabled) answers 404 so probes can tell the feature is
// off, matching the /red convention.
func Handler(tel *obs.Telemetry, r *Reservoir) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if r == nil {
			http.Error(w, "visit tracing disabled (run with -tracez)", http.StatusNotFound)
			return
		}
		p := Payload{
			CriticalPath: Analyze(BuildForest(tel.Tracer.Records())),
			Conditions:   r.Snapshot(),
		}
		if obs.WantsHTML(req) {
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			writeTracezHTML(w, p)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
}

func writeTracezHTML(w http.ResponseWriter, p Payload) {
	fmt.Fprint(w, "<!DOCTYPE html><html><head><title>canvassing /tracez</title></head><body>")
	fmt.Fprint(w, "<h1>trace analytics</h1>")
	fmt.Fprintf(w, "<p>%d phase roots · total wall %s · critical root %s</p>",
		p.CriticalPath.Roots, fmtDur(p.CriticalPath.TotalWall), fmtDur(p.CriticalPath.CriticalWall))
	if len(p.CriticalPath.CriticalPath) > 0 {
		fmt.Fprint(w, "<h2>critical path</h2><ol>")
		for _, st := range p.CriticalPath.CriticalPath {
			fmt.Fprintf(w, "<li><code>%s</code> %s (self %s)</li>", st.Name, fmtDur(st.Wall), fmtDur(st.Self))
		}
		fmt.Fprint(w, "</ol>")
	}
	if len(p.CriticalPath.Phases) > 0 {
		fmt.Fprint(w, "<h2>phase attribution</h2><table border=1 cellpadding=4><tr><th>phase</th><th>count</th><th>wall</th><th>self</th><th>child-par</th></tr>")
		for _, ph := range p.CriticalPath.Phases {
			par := "-"
			if ph.ChildUnion > 0 {
				par = fmt.Sprintf("%.2f", ph.Parallelism())
			}
			fmt.Fprintf(w, "<tr><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>",
				ph.Name, ph.Count, fmtDur(ph.Wall), fmtDur(ph.Self), par)
		}
		fmt.Fprint(w, "</table>")
	}
	if len(p.Conditions) > 0 {
		fmt.Fprint(w, "<h2>exemplar reservoir</h2><table border=1 cellpadding=4><tr><th>condition</th><th>kind</th><th>offered</th><th>kept</th><th>max cost</th></tr>")
		for _, ce := range p.Conditions {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%d</td><td>%d</td></tr>",
				ce.Condition, ce.Kind, ce.Offered, len(ce.Slow)+len(ce.Head), ce.MaxCost)
		}
		fmt.Fprint(w, "</table>")
	}
	if slow := slowestOf(p.Conditions, 20); len(slow) > 0 {
		fmt.Fprint(w, "<h2>slowest visits</h2><table border=1 cellpadding=4><tr><th>condition</th><th>domain</th><th>idx</th><th>outcome</th><th>cost</th><th>wall</th><th>dominant</th><th>flags</th></tr>")
		for _, vt := range slow {
			fmt.Fprintf(w, "<tr><td>%s</td><td>%s</td><td>%d</td><td>%s</td><td>%d</td><td>%s</td><td>%s</td><td>%s</td></tr>",
				vt.Condition, vt.Domain, vt.Index, vt.Outcome, vt.Cost, fmtDur(vt.Wall), dominant(vt), flags(vt))
		}
		fmt.Fprint(w, "</table>")
	}
	fmt.Fprint(w, "</body></html>")
}
