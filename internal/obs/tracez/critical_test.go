package tracez

import (
	"bytes"
	"testing"
	"time"

	"canvassing/internal/obs"
)

const ms = time.Millisecond

// span is a test shorthand for a literal tree node.
func span(name string, off, wall time.Duration, children ...*Span) *Span {
	return &Span{Name: name, Off: off, Wall: wall, Children: children}
}

func phaseByName(rep Report, name string) PhaseStat {
	for _, p := range rep.Phases {
		if p.Name == name {
			return p
		}
	}
	return PhaseStat{}
}

// TestAnalyzeSelfTime: self-time is wall minus the union of child
// intervals, so gaps the children don't cover land on the parent.
func TestAnalyzeSelfTime(t *testing.T) {
	// visit [0,100): connect [0,10), script [10,90) — the last 10ms is
	// the visit's own bookkeeping.
	root := span("visit", 0, 100*ms,
		span("connect", 0, 10*ms),
		span("script", 10*ms, 80*ms,
			span("fetch", 10*ms, 20*ms),
			span("parse", 30*ms, 10*ms),
			span("exec", 40*ms, 50*ms),
		),
	)
	rep := Analyze([]*Span{root})
	if rep.Roots != 1 || rep.TotalWall != 100*ms || rep.CriticalWall != 100*ms {
		t.Fatalf("totals wrong: %+v", rep)
	}
	if got := phaseByName(rep, "visit").Self; got != 10*ms {
		t.Fatalf("visit self = %v, want 10ms", got)
	}
	// script's children cover [10,90) completely — zero self.
	if got := phaseByName(rep, "script").Self; got != 0 {
		t.Fatalf("script self = %v, want 0", got)
	}
	if got := phaseByName(rep, "exec").Self; got != 50*ms {
		t.Fatalf("leaf self = %v, want its wall", got)
	}
	// Phases sort wall-descending: visit first.
	if rep.Phases[0].Name != "visit" {
		t.Fatalf("phase order: %+v", rep.Phases)
	}
}

// TestAnalyzeParallelism: overlapping children push ChildSum past
// ChildUnion; serial children keep the ratio at 1.
func TestAnalyzeParallelism(t *testing.T) {
	par := span("batch", 0, 100*ms,
		span("work", 0, 60*ms),
		span("work", 30*ms, 60*ms), // overlaps [30,60)
	)
	rep := Analyze([]*Span{par})
	p := phaseByName(rep, "batch")
	if p.ChildSum != 120*ms || p.ChildUnion != 90*ms {
		t.Fatalf("child sum/union = %v/%v", p.ChildSum, p.ChildUnion)
	}
	if got := p.Parallelism(); got < 1.33 || got > 1.34 {
		t.Fatalf("parallelism = %v, want ~1.333", got)
	}
	// batch self: 100 - union(0,90) = 10ms.
	if p.Self != 10*ms {
		t.Fatalf("batch self = %v", p.Self)
	}

	serial := span("batch", 0, 100*ms,
		span("work", 0, 50*ms),
		span("work", 50*ms, 50*ms),
	)
	if got := phaseByName(Analyze([]*Span{serial}), "batch").Parallelism(); got != 1 {
		t.Fatalf("serial parallelism = %v, want 1", got)
	}
}

// TestCriticalPathDescent: the path walks from the longest root through
// the child that finishes last at each level — the chain gating the
// end-to-end wall.
func TestCriticalPathDescent(t *testing.T) {
	short := span("visit", 0, 20*ms)
	long := span("visit", 0, 100*ms,
		span("connect", 0, 30*ms), // ends 30
		span("script", 10*ms, 85*ms, // ends 95 — gates the visit
			span("exec", 20*ms, 70*ms), // ends 90
		),
	)
	rep := Analyze([]*Span{short, long})
	if rep.CriticalWall != 100*ms {
		t.Fatalf("critical wall = %v", rep.CriticalWall)
	}
	want := []string{"visit", "script", "exec"}
	if len(rep.CriticalPath) != len(want) {
		t.Fatalf("path = %+v", rep.CriticalPath)
	}
	for i, step := range rep.CriticalPath {
		if step.Name != want[i] {
			t.Fatalf("path[%d] = %q, want %q", i, step.Name, want[i])
		}
	}
	if rep.CriticalPath[1].Wall != 85*ms {
		t.Fatalf("path step wall = %v", rep.CriticalPath[1].Wall)
	}
}

func TestAnalyzeEmptyForest(t *testing.T) {
	rep := Analyze(nil)
	if rep.Roots != 0 || rep.TotalWall != 0 || len(rep.CriticalPath) != 0 {
		t.Fatalf("empty forest report = %+v", rep)
	}
}

// TestBuildForest reconstructs parent/child structure and root-relative
// offsets from flat tracer records.
func TestBuildForest(t *testing.T) {
	base := time.Unix(1000, 0)
	recs := []obs.SpanRecord{
		{ID: 2, ParentID: 1, Name: "crawl", Start: base.Add(10 * ms), Duration: 50 * ms},
		{ID: 1, Name: "run", Start: base, Duration: 100 * ms},
		{ID: 4, Name: "report", Start: base.Add(100 * ms), Duration: 5 * ms},
		{ID: 3, ParentID: 1, Name: "analyze", Start: base.Add(60 * ms), Duration: 30 * ms},
	}
	forest := BuildForest(recs)
	if len(forest) != 2 || forest[0].Name != "run" || forest[1].Name != "report" {
		t.Fatalf("roots = %+v", forest)
	}
	run := forest[0]
	if len(run.Children) != 2 || run.Children[0].Name != "crawl" || run.Children[1].Name != "analyze" {
		t.Fatalf("children = %+v", run.Children)
	}
	if run.Children[0].Off != 10*ms || run.Children[1].Off != 60*ms {
		t.Fatalf("offsets = %v, %v", run.Children[0].Off, run.Children[1].Off)
	}
	if run.Off != 0 || forest[1].Off != 0 {
		t.Fatal("roots must sit at offset zero")
	}
	// An orphan (parent id never finished) becomes its own root.
	orphan := BuildForest([]obs.SpanRecord{{ID: 9, ParentID: 5, Name: "stray", Start: base, Duration: ms}})
	if len(orphan) != 1 || orphan[0].Name != "stray" {
		t.Fatalf("orphan handling = %+v", orphan)
	}
}

// TestWriteFolded pins the folded-stack format: summed identical
// stacks, sorted lines, self-time (not wall) as the value, and the
// optional condition prefix frame.
func TestWriteFolded(t *testing.T) {
	forest := []*Span{
		span("visit", 0, 100*ms,
			span("script", 0, 90*ms,
				span("exec", 0, 40*ms),
				span("exec", 40*ms, 40*ms), // same stack — must sum
			),
		),
	}
	var buf bytes.Buffer
	if err := WriteFolded(&buf, forest, ""); err != nil {
		t.Fatal(err)
	}
	want := "visit 10000000\nvisit;script 10000000\nvisit;script;exec 80000000\n"
	if buf.String() != want {
		t.Fatalf("folded output:\n%q\nwant:\n%q", buf.String(), want)
	}

	buf.Reset()
	if err := WriteFolded(&buf, forest, "visits;control"); err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(buf.Bytes(), []byte("visits;control;visit ")) {
		t.Fatalf("prefix frame missing:\n%s", buf.String())
	}
}
