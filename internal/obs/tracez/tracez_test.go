package tracez

import (
	"bytes"
	"fmt"
	"testing"
	"time"
)

// mkVisit builds a synthetic visit exemplar the way the crawler's
// committer would hand one over.
func mkVisit(cond, domain string, index int, cost int64) *VisitTrace {
	return &VisitTrace{
		Kind: KindVisit, Condition: cond, Domain: domain, Index: index,
		Outcome: "ok", Cost: cost,
		Wall: time.Duration(index) * time.Millisecond,
		Root: &Span{Name: "visit", Wall: time.Duration(index) * time.Millisecond, Cost: cost},
	}
}

func TestReservoirKeepsSlowestByCost(t *testing.T) {
	r := NewReservoir(1, 5, 4)
	// A permutation of 0..99 as costs, so the slowest are scattered
	// through the stream rather than clustered at either end.
	for i := 0; i < 100; i++ {
		r.Offer(mkVisit("control", fmt.Sprintf("site-%03d.com", i), i, int64((i*37)%100)))
	}
	snap := r.Snapshot()
	if len(snap) != 1 {
		t.Fatalf("conditions = %d, want 1", len(snap))
	}
	ce := snap[0]
	if ce.Offered != 100 || ce.MaxCost != 99 {
		t.Fatalf("stream summary wrong: %+v", ce)
	}
	if len(ce.Slow) != 5 {
		t.Fatalf("slow = %d exemplars, want 5", len(ce.Slow))
	}
	for i, want := range []int64{99, 98, 97, 96, 95} {
		if ce.Slow[i].Cost != want {
			t.Fatalf("slow[%d].Cost = %d, want %d", i, ce.Slow[i].Cost, want)
		}
	}
}

func TestReservoirTieBreakByIndex(t *testing.T) {
	r := NewReservoir(1, 3, 1)
	// Equal costs: the earliest page indexes must win, regardless of
	// offer order.
	for _, idx := range []int{9, 3, 7, 1, 5} {
		r.Offer(mkVisit("control", fmt.Sprintf("site-%d.com", idx), idx, 50))
	}
	ce := r.Snapshot()[0]
	got := []int{ce.Slow[0].Index, ce.Slow[1].Index, ce.Slow[2].Index}
	if got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("tie-break indexes = %v, want [1 3 5]", got)
	}
}

func TestReservoirBoundsAndDefaults(t *testing.T) {
	r := NewReservoir(7, 0, 0) // zero → defaults
	for i := 0; i < 10_000; i++ {
		r.Offer(mkVisit("control", fmt.Sprintf("site-%05d.com", i), i, int64(i%977)))
	}
	ce := r.Snapshot()[0]
	if len(ce.Slow) > DefaultSlowN {
		t.Fatalf("slow bound violated: %d > %d", len(ce.Slow), DefaultSlowN)
	}
	// Head is reported minus trees already kept as slow, so only the
	// upper bound is meaningful.
	if len(ce.Head) > DefaultHeadN {
		t.Fatalf("head bound violated: %d > %d", len(ce.Head), DefaultHeadN)
	}
	if len(ce.Head) == 0 {
		t.Fatal("head sample empty over a 10k stream")
	}
	if ce.Offered != 10_000 {
		t.Fatalf("offered = %d", ce.Offered)
	}
}

// TestSelectionKeyDeterministic: two reservoirs fed the same stream
// produce byte-identical selection keys — the property the study-level
// width-invariance oracle rests on.
func TestSelectionKeyDeterministic(t *testing.T) {
	mk := func() *Reservoir {
		r := NewReservoir(42, 8, 8)
		for _, cond := range []string{"control", "abp"} {
			for i := 0; i < 500; i++ {
				r.Offer(mkVisit(cond, fmt.Sprintf("site-%04d.com", i), i, int64((i*7919)%512)))
			}
		}
		return r
	}
	a, b := mk().SelectionKey(), mk().SelectionKey()
	if len(a) == 0 {
		t.Fatal("selection key empty")
	}
	if !bytes.Equal(a, b) {
		t.Fatalf("selection keys diverge:\n%s\nvs\n%s", a, b)
	}
	if !bytes.Contains(a, []byte("cond=control")) || !bytes.Contains(a, []byte("cond=abp")) {
		t.Fatalf("conditions missing from key:\n%s", a)
	}
	if bytes.Contains(a, []byte("wall")) {
		t.Fatalf("wall-clock field leaked into the selection key:\n%s", a)
	}
}

// TestSelectionKeyExcludesBatches: batch exemplars describe the actual
// shard fan-out (worker-count dependent), so they must not appear in
// the deterministic projection.
func TestSelectionKeyExcludesBatches(t *testing.T) {
	r := NewReservoir(1, 4, 4)
	r.Offer(mkVisit("control", "site-a.com", 0, 10))
	bt := mkVisit("analyze.control", "shard-0001", 1, 99)
	bt.Kind = KindBatch
	r.Offer(bt)
	key := r.SelectionKey()
	if bytes.Contains(key, []byte("analyze.control")) || bytes.Contains(key, []byte("shard-")) {
		t.Fatalf("batch exemplar leaked into selection key:\n%s", key)
	}
	if !bytes.Contains(key, []byte("site-a.com")) {
		t.Fatalf("visit exemplar missing from selection key:\n%s", key)
	}
	// The batch still shows up in the snapshot for humans.
	if len(r.Snapshot()) != 2 {
		t.Fatal("batch condition missing from snapshot")
	}
}

func TestReservoirNilSafety(t *testing.T) {
	var r *Reservoir
	r.Offer(mkVisit("control", "x.com", 0, 1)) // must not panic
	if r.Snapshot() != nil || r.SelectionKey() != nil {
		t.Fatal("nil reservoir must answer empty")
	}
	nr := NewReservoir(1, 2, 2)
	nr.Offer(nil) // must not panic
	if len(nr.Snapshot()) != 0 {
		t.Fatal("nil offer must be ignored")
	}
}

// TestHeadSampleIgnoresOfferInterleaving: the head sample keys on the
// seeded identity hash, not arrival order, so the same stream offered
// in page order always fills the same bucket.
func TestHeadSampleIgnoresOfferInterleaving(t *testing.T) {
	offer := func(r *Reservoir) {
		for i := 0; i < 300; i++ {
			r.Offer(mkVisit("control", fmt.Sprintf("d%03d.net", i), i, 0))
		}
	}
	a := NewReservoir(9, 1, 16)
	b := NewReservoir(9, 1, 16)
	offer(a)
	offer(b)
	ha, hb := a.Snapshot()[0].Head, b.Snapshot()[0].Head
	if len(ha) == 0 || len(ha) != len(hb) {
		t.Fatalf("head lengths: %d vs %d", len(ha), len(hb))
	}
	for i := range ha {
		if ha[i].Domain != hb[i].Domain {
			t.Fatalf("head[%d]: %s vs %s", i, ha[i].Domain, hb[i].Domain)
		}
	}
}

// TestBuilderTree drives the Builder with a fake clock and checks the
// assembled tree: offsets from root start, wall durations from Close,
// total cost summed over the tree, and the root wall stamped by Finish.
func TestBuilderTree(t *testing.T) {
	b := NewVisit("control", "example.com", 42, 7)
	t0 := time.Unix(1_700_000_000, 0)
	tick := 0
	b.now = func() time.Time {
		tick++
		return t0.Add(time.Duration(tick) * 10 * time.Millisecond)
	}
	b.start = t0

	conn := b.Open(b.Root(), "connect") // now = +10ms offset from start
	conn.Cost = 3
	b.Close(conn) // now = +20ms → wall 10ms
	sc := b.Open(b.Root(), "script")
	ex := b.Open(sc, "exec")
	ex.Cost = 1000
	b.Close(ex)
	b.Close(sc)
	vt := b.Finish("ok")

	if vt.Condition != "control" || vt.Domain != "example.com" || vt.Rank != 42 || vt.Index != 7 {
		t.Fatalf("identity wrong: %+v", vt)
	}
	if vt.Outcome != "ok" {
		t.Fatalf("outcome = %q", vt.Outcome)
	}
	if vt.Cost != 1003 {
		t.Fatalf("total cost = %d, want 1003", vt.Cost)
	}
	if vt.Wall != vt.Root.Wall || vt.Wall <= 0 {
		t.Fatalf("root wall not stamped: %v vs %v", vt.Wall, vt.Root.Wall)
	}
	if len(vt.Root.Children) != 2 {
		t.Fatalf("children = %d", len(vt.Root.Children))
	}
	if conn.Wall != 10*time.Millisecond {
		t.Fatalf("connect wall = %v", conn.Wall)
	}
	if ex.Off <= sc.Off {
		t.Fatal("child offset must follow parent offset")
	}
}
