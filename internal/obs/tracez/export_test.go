package tracez

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
	"time"

	"canvassing/internal/obs"
)

// testPhaseRecords builds a small deterministic phase-span set the way
// the main tracer would.
func testPhaseRecords() []obs.SpanRecord {
	base := time.Unix(2000, 0)
	return []obs.SpanRecord{
		{ID: 1, Name: "crawl.control", Start: base, Duration: 400 * ms},
		{ID: 2, ParentID: 1, Name: "webgen", Start: base, Duration: 100 * ms},
		{ID: 3, Name: "analyze", Start: base.Add(400 * ms), Duration: 200 * ms},
	}
}

// TestExportRoundTrip: write → read preserves the stream summaries,
// the retained trees (structure and labels included), the picked
// classification, and the phase-level critical-path report.
func TestExportRoundTrip(t *testing.T) {
	r := NewReservoir(3, 4, 4)
	for i := 0; i < 50; i++ {
		vt := mkVisit("control", domainOf(i), i, int64((i*13)%40))
		vt.Root.Children = []*Span{{Name: "connect", Wall: ms, Labels: map[string]string{"fault": "outage"}}}
		r.Offer(vt)
	}
	bt := mkVisit("analyze.control", "shard-0000", 0, 7)
	bt.Kind = KindBatch
	r.Offer(bt)

	dir := t.TempDir()
	path := filepath.Join(dir, ExemplarsFile)
	if err := WriteExemplars(path, r, testPhaseRecords()); err != nil {
		t.Fatal(err)
	}
	ex, err := ReadExemplars(path)
	if err != nil {
		t.Fatal(err)
	}
	if ex.Schema != SchemaVersion {
		t.Fatalf("schema = %d", ex.Schema)
	}
	if len(ex.Conditions) != 2 {
		t.Fatalf("conditions = %+v", ex.Conditions)
	}
	want := r.Snapshot()
	for i, ce := range ex.Conditions {
		w := want[i]
		if ce.Condition != w.Condition || ce.Kind != w.Kind || ce.Offered != w.Offered ||
			ce.CostSum != w.CostSum || ce.MaxCost != w.MaxCost {
			t.Fatalf("condition %d summary: %+v vs %+v", i, ce, w)
		}
		if len(ce.Slow) != len(w.Slow) || len(ce.Head) != len(w.Head) {
			t.Fatalf("condition %d exemplar counts: %d/%d vs %d/%d",
				i, len(ce.Slow), len(ce.Head), len(w.Slow), len(w.Head))
		}
		for j := range ce.Slow {
			if ce.Slow[j].Domain != w.Slow[j].Domain || ce.Slow[j].Cost != w.Slow[j].Cost {
				t.Fatalf("slow[%d] diverged: %+v vs %+v", j, ce.Slow[j], w.Slow[j])
			}
		}
	}
	// Tree structure and labels survive the round trip.
	ctl := ex.Conditions[0]
	if len(ctl.Slow[0].Root.Children) != 1 || ctl.Slow[0].Root.Children[0].Labels["fault"] != "outage" {
		t.Fatalf("tree lost in round trip: %+v", ctl.Slow[0].Root)
	}
	// The trailer report reflects the phase forest.
	if ex.Report == nil || ex.Report.Roots != 2 {
		t.Fatalf("report = %+v", ex.Report)
	}
	if ex.Report.CriticalWall != 400*ms {
		t.Fatalf("critical wall = %v", ex.Report.CriticalWall)
	}

	// Selection-relevant views over the decoded export.
	if got := ex.Slowest(3); len(got) != 3 || got[0].Cost < got[1].Cost {
		t.Fatalf("Slowest = %+v", got)
	}
	if forest := ex.VisitForest(); len(forest) != len(ctl.Slow)+len(ctl.Head) {
		t.Fatalf("visit forest = %d trees", len(forest))
	}
}

func domainOf(i int) string {
	return string(rune('a'+i%26)) + "-site.com"
}

// TestWriteExemplarsNilReservoir: the nil path is how every binary
// calls WriteExemplars when -tracez is off — no file, no error.
func TestWriteExemplarsNilReservoir(t *testing.T) {
	path := filepath.Join(t.TempDir(), ExemplarsFile)
	if err := WriteExemplars(path, nil, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatal("nil reservoir must not create the sidecar")
	}
}

func TestReadExemplarsSchemaGate(t *testing.T) {
	path := filepath.Join(t.TempDir(), ExemplarsFile)
	if err := os.WriteFile(path, []byte(`{"tracez_schema":999,"conditions":[]}`+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadExemplars(path); err == nil {
		t.Fatal("future schema must be rejected")
	}
}

// TestLoadRunDir: trace.jsonl is required, the sidecar optional — the
// exact contract tracescope depends on for runs made without -tracez.
func TestLoadRunDir(t *testing.T) {
	dir := t.TempDir()
	if _, err := LoadRunDir(dir); err == nil {
		t.Fatal("missing trace.jsonl must error")
	}
	var buf bytes.Buffer
	tr := obs.NewTracer()
	tr.Start("crawl.control").End()
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, TraceFile), buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	rd, err := LoadRunDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rd.Phases) != 1 || rd.Export != nil {
		t.Fatalf("rundir = %+v", rd)
	}

	r := NewReservoir(1, 2, 2)
	r.Offer(mkVisit("control", "x.com", 0, 5))
	if err := WriteExemplars(filepath.Join(dir, ExemplarsFile), r, nil); err != nil {
		t.Fatal(err)
	}
	rd, err = LoadRunDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if rd.Export == nil || len(rd.Export.Conditions) != 1 {
		t.Fatalf("sidecar not loaded: %+v", rd.Export)
	}
}
