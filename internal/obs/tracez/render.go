package tracez

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"canvassing/internal/report"
)

func fmtDur(d time.Duration) string {
	return d.Round(time.Microsecond).String()
}

func fmtShare(part, total time.Duration) string {
	if total <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

// flagKeys are the exemplar labels worth surfacing in the slow-visit
// table — the fault/degradation annotations.
var flagKeys = []string{"fault", "retries", "degraded", "truncated", "blocked", "snapshot", "cache", "error", "consent"}

// flags collects notable labels across a tree as "k=v" pairs in
// flagKeys order (first value seen per key wins).
func flags(vt *VisitTrace) string {
	seen := map[string]string{}
	var walk func(sp *Span)
	walk = func(sp *Span) {
		for k, v := range sp.Labels {
			if _, ok := seen[k]; !ok {
				seen[k] = v
			}
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	walk(vt.Root)
	var out []string
	for _, k := range flagKeys {
		if v, ok := seen[k]; ok {
			out = append(out, k+"="+v)
		}
	}
	if len(out) == 0 {
		return "-"
	}
	return strings.Join(out, " ")
}

// dominant names the root's direct child with the most wall time.
func dominant(vt *VisitTrace) string {
	var best *Span
	for _, c := range vt.Root.Children {
		if best == nil || c.Wall > best.Wall {
			best = c
		}
	}
	if best == nil {
		return "-"
	}
	return best.Name
}

func phaseTable(title string, rep Report) string {
	tbl := report.NewTable(title, "phase", "count", "wall", "self", "share", "child-par")
	for _, p := range rep.Phases {
		par := "-"
		if p.ChildUnion > 0 {
			par = fmt.Sprintf("%.2f", p.Parallelism())
		}
		tbl.AddRow(p.Name, p.Count, fmtDur(p.Wall), fmtDur(p.Self), fmtShare(p.Wall, rep.TotalWall), par)
	}
	return tbl.String()
}

func pathLine(rep Report) string {
	if len(rep.CriticalPath) == 0 {
		return "(no spans)"
	}
	parts := make([]string, len(rep.CriticalPath))
	for i, st := range rep.CriticalPath {
		parts[i] = fmt.Sprintf("%s %s (self %s)", st.Name, fmtDur(st.Wall), fmtDur(st.Self))
	}
	return strings.Join(parts, " > ")
}

// RenderReport formats the tracescope single-run report: phase-level
// critical path and attribution, then — when the run captured
// exemplars — the reservoir summary, the slowest visits, and
// visit-level phase attribution.
func RenderReport(rd *RunDir, top int) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Trace analytics — %s\n\n", rd.Dir)
	rep := Analyze(rd.Phases)
	fmt.Fprintf(&sb, "Roots: %d   Total wall: %s   Critical root wall: %s\n",
		rep.Roots, fmtDur(rep.TotalWall), fmtDur(rep.CriticalWall))
	fmt.Fprintf(&sb, "Critical path: %s\n\n", pathLine(rep))
	sb.WriteString(phaseTable("Phase attribution (phase spans)", rep))

	if rd.Export == nil {
		sb.WriteString("\nNo exemplar sidecar (run without -tracez); phase-level view only.\n")
		return sb.String()
	}

	sb.WriteString("\n")
	tbl := report.NewTable("Exemplar reservoir", "condition", "kind", "offered", "kept", "cost-sum", "max-cost")
	for _, ce := range rd.Export.Conditions {
		tbl.AddRow(ce.Condition, ce.Kind, ce.Offered, len(ce.Slow)+len(ce.Head), ce.CostSum, ce.MaxCost)
	}
	sb.WriteString(tbl.String())

	slow := rd.Export.Slowest(top)
	if len(slow) > 0 {
		sb.WriteString("\n")
		st := report.NewTable(fmt.Sprintf("Slowest visits (top %d by deterministic cost)", len(slow)),
			"condition", "domain", "idx", "outcome", "cost", "wall", "dominant", "flags")
		for _, vt := range slow {
			st.AddRow(vt.Condition, vt.Domain, vt.Index, vt.Outcome, vt.Cost, fmtDur(vt.Wall), dominant(vt), flags(vt))
		}
		sb.WriteString(st.String())
	}

	if vf := rd.Export.VisitForest(); len(vf) > 0 {
		vrep := Analyze(vf)
		sb.WriteString("\n")
		sb.WriteString(phaseTable(fmt.Sprintf("Visit phase attribution (%d exemplar trees)", len(vf)), vrep))
	}
	return sb.String()
}

// fmtDeltaPP formats a share delta in percentage points.
func fmtDeltaPP(d float64) string {
	return fmt.Sprintf("%+.1fpp", d)
}

// RenderDiff formats the latency-profile diff between two run dirs:
// which phase's wall attribution moved, by how much, plus the two
// critical paths and — when both runs captured exemplars — the
// visit-level attribution shift and per-condition cost deltas.
func RenderDiff(a, b *RunDir) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "Trace diff — A: %s   B: %s\n\n", a.Dir, b.Dir)
	ra, rb := Analyze(a.Phases), Analyze(b.Phases)
	sb.WriteString(diffPhaseTable("Phase attribution delta (phase spans)", ra, rb))
	fmt.Fprintf(&sb, "\nCritical path A: %s\n", pathLine(ra))
	fmt.Fprintf(&sb, "Critical path B: %s\n", pathLine(rb))

	if a.Export != nil && b.Export != nil {
		va, vb := Analyze(a.Export.VisitForest()), Analyze(b.Export.VisitForest())
		sb.WriteString("\n")
		sb.WriteString(diffPhaseTable("Visit phase attribution delta (exemplars)", va, vb))
		sb.WriteString("\n")
		sb.WriteString(diffCondTable(a.Export, b.Export))
	}
	return sb.String()
}

type phaseDelta struct {
	name           string
	wallA, wallB   time.Duration
	shareA, shareB float64 // percent
}

func shares(rep Report) map[string]phaseDelta {
	out := map[string]phaseDelta{}
	for _, p := range rep.Phases {
		sh := 0.0
		if rep.TotalWall > 0 {
			sh = 100 * float64(p.Wall) / float64(rep.TotalWall)
		}
		out[p.Name] = phaseDelta{name: p.Name, wallA: p.Wall, shareA: sh}
	}
	return out
}

func diffPhaseTable(title string, ra, rb Report) string {
	merged := shares(ra)
	for name, d := range shares(rb) {
		m := merged[name]
		m.name = name
		m.wallB, m.shareB = d.wallA, d.shareA
		merged[name] = m
	}
	rows := make([]phaseDelta, 0, len(merged))
	for _, d := range merged {
		rows = append(rows, d)
	}
	sort.SliceStable(rows, func(i, j int) bool {
		di := rows[i].shareB - rows[i].shareA
		dj := rows[j].shareB - rows[j].shareA
		ai, aj := di, dj
		if ai < 0 {
			ai = -ai
		}
		if aj < 0 {
			aj = -aj
		}
		if ai != aj {
			return ai > aj
		}
		return rows[i].name < rows[j].name
	})
	tbl := report.NewTable(title, "phase", "wall A", "wall B", "share A", "share B", "Δshare")
	for _, d := range rows {
		tbl.AddRow(d.name, fmtDur(d.wallA), fmtDur(d.wallB),
			fmt.Sprintf("%.1f%%", d.shareA), fmt.Sprintf("%.1f%%", d.shareB),
			fmtDeltaPP(d.shareB-d.shareA))
	}
	out := tbl.String()
	if len(rows) > 0 {
		top := rows[0]
		out += fmt.Sprintf("Largest attribution shift: %s (%s)\n", top.name, fmtDeltaPP(top.shareB-top.shareA))
	}
	return out
}

func diffCondTable(ea, eb *Export) string {
	type cond struct {
		offered         int64
		meanCost, meanB float64
		offeredB        int64
		present, presB  bool
		kind            string
	}
	merged := map[string]*cond{}
	var order []string
	add := func(ex *Export, second bool) {
		for _, ce := range ex.Conditions {
			c := merged[ce.Condition]
			if c == nil {
				c = &cond{kind: ce.Kind}
				merged[ce.Condition] = c
				order = append(order, ce.Condition)
			}
			mean := 0.0
			if ce.Offered > 0 {
				mean = float64(ce.CostSum) / float64(ce.Offered)
			}
			if second {
				c.offeredB, c.meanB, c.presB = ce.Offered, mean, true
			} else {
				c.offered, c.meanCost, c.present = ce.Offered, mean, true
			}
		}
	}
	add(ea, false)
	add(eb, true)
	tbl := report.NewTable("Condition stream delta", "condition", "offered A", "offered B", "mean cost A", "mean cost B", "Δcost")
	for _, name := range order {
		c := merged[name]
		dc := "-"
		if c.present && c.presB && c.meanCost > 0 {
			dc = fmt.Sprintf("%+.1f%%", 100*(c.meanB-c.meanCost)/c.meanCost)
		}
		tbl.AddRow(name, c.offered, c.offeredB,
			fmt.Sprintf("%.1f", c.meanCost), fmt.Sprintf("%.1f", c.meanB), dc)
	}
	return tbl.String()
}
