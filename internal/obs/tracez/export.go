package tracez

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"canvassing/internal/obs"
)

// ExemplarsFile is the sidecar written next to the bundle. It is
// deliberately NOT a bundle artifact: exemplar wall times are
// volatile, so the file lives outside the byte-stability contract
// (runsdiff and the determinism oracle never read it).
const ExemplarsFile = "trace_exemplars.jsonl"

// TraceFile is the phase-span export the -trace flag writes.
const TraceFile = "trace.jsonl"

// header is the first line of trace_exemplars.jsonl.
type header struct {
	Schema     int           `json:"tracez_schema"`
	Conditions []condSummary `json:"conditions"`
}

type condSummary struct {
	Condition string `json:"condition"`
	Kind      string `json:"kind"`
	Offered   int64  `json:"offered"`
	KeptSlow  int    `json:"kept_slow"`
	KeptHead  int    `json:"kept_head"`
	CostSum   int64  `json:"cost_sum"`
	MaxCost   int64  `json:"max_cost"`
}

// exemplarLine is one exemplar row of trace_exemplars.jsonl.
type exemplarLine struct {
	// Picked records why the reservoir kept this tree: "slow" or
	// "head".
	Picked   string      `json:"picked"`
	Exemplar *VisitTrace `json:"exemplar"`
}

// reportLine is the trailer row carrying the phase-level
// critical-path report.
type reportLine struct {
	CriticalPath *Report `json:"critical_path"`
}

// Export is a decoded trace_exemplars.jsonl.
type Export struct {
	Schema     int             `json:"tracez_schema"`
	Conditions []CondExemplars `json:"conditions"`
	// Report is the phase-level critical-path report computed at
	// write time (nil in files written before a report existed).
	Report *Report `json:"critical_path,omitempty"`
}

// WriteExemplars writes the reservoir and the phase-level
// critical-path report (from the tracer's finished spans) as
// trace_exemplars.jsonl at path. A nil reservoir writes nothing and
// returns nil.
func WriteExemplars(path string, r *Reservoir, phases []obs.SpanRecord) error {
	if r == nil {
		return nil
	}
	snap := r.Snapshot()
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriter(f)
	enc := json.NewEncoder(w)
	hdr := header{Schema: SchemaVersion}
	for _, ce := range snap {
		hdr.Conditions = append(hdr.Conditions, condSummary{
			Condition: ce.Condition, Kind: ce.Kind, Offered: ce.Offered,
			KeptSlow: len(ce.Slow), KeptHead: len(ce.Head),
			CostSum: ce.CostSum, MaxCost: ce.MaxCost,
		})
	}
	if err := enc.Encode(hdr); err != nil {
		return err
	}
	for _, ce := range snap {
		for _, vt := range ce.Slow {
			if err := enc.Encode(exemplarLine{Picked: "slow", Exemplar: vt}); err != nil {
				return err
			}
		}
		for _, vt := range ce.Head {
			if err := enc.Encode(exemplarLine{Picked: "head", Exemplar: vt}); err != nil {
				return err
			}
		}
	}
	rep := Analyze(BuildForest(phases))
	if err := enc.Encode(reportLine{CriticalPath: &rep}); err != nil {
		return err
	}
	return w.Flush()
}

// ReadExemplars decodes a trace_exemplars.jsonl written by
// WriteExemplars, rebuilding per-condition exemplar groups in file
// order.
func ReadExemplars(path string) (*Export, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	if !sc.Scan() {
		return nil, fmt.Errorf("tracez: %s: empty file", path)
	}
	var hdr header
	if err := json.Unmarshal(sc.Bytes(), &hdr); err != nil {
		return nil, fmt.Errorf("tracez: %s: bad header: %w", path, err)
	}
	if hdr.Schema != SchemaVersion {
		return nil, fmt.Errorf("tracez: %s: schema %d, want %d", path, hdr.Schema, SchemaVersion)
	}
	ex := &Export{Schema: hdr.Schema}
	byCond := map[string]*CondExemplars{}
	for _, cs := range hdr.Conditions {
		ce := &CondExemplars{
			Condition: cs.Condition, Kind: cs.Kind, Offered: cs.Offered,
			CostSum: cs.CostSum, MaxCost: cs.MaxCost,
		}
		byCond[cs.Condition] = ce
		ex.Conditions = append(ex.Conditions, *ce) // placeholder; rewritten below
	}
	for sc.Scan() {
		line := sc.Bytes()
		var el exemplarLine
		if err := json.Unmarshal(line, &el); err == nil && el.Exemplar != nil {
			ce := byCond[el.Exemplar.Condition]
			if ce == nil {
				ce = &CondExemplars{Condition: el.Exemplar.Condition, Kind: el.Exemplar.Kind}
				byCond[el.Exemplar.Condition] = ce
				ex.Conditions = append(ex.Conditions, *ce)
			}
			if el.Picked == "head" {
				ce.Head = append(ce.Head, el.Exemplar)
			} else {
				ce.Slow = append(ce.Slow, el.Exemplar)
			}
			continue
		}
		var rl reportLine
		if err := json.Unmarshal(line, &rl); err == nil && rl.CriticalPath != nil {
			ex.Report = rl.CriticalPath
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	// The loop above appended placeholder copies; re-materialize from
	// the live pointers so the exemplar slices land in the result.
	for i := range ex.Conditions {
		ex.Conditions[i] = *byCond[ex.Conditions[i].Condition]
	}
	return ex, nil
}

// RunDir is the trace-analytics view of one run directory: the phase
// spans from trace.jsonl plus, when present, the exemplar sidecar.
type RunDir struct {
	Dir string
	// Phases is the phase-span forest from trace.jsonl.
	Phases []*Span
	// Export is the decoded exemplar sidecar; nil when the run was
	// made without -tracez.
	Export *Export
}

// LoadRunDir reads dir's trace.jsonl (required) and
// trace_exemplars.jsonl (optional).
func LoadRunDir(dir string) (*RunDir, error) {
	recs, err := readSpanRecords(filepath.Join(dir, TraceFile))
	if err != nil {
		return nil, err
	}
	rd := &RunDir{Dir: dir, Phases: BuildForest(recs)}
	exPath := filepath.Join(dir, ExemplarsFile)
	if _, err := os.Stat(exPath); err == nil {
		ex, err := ReadExemplars(exPath)
		if err != nil {
			return nil, err
		}
		rd.Export = ex
	}
	return rd, nil
}

func readSpanRecords(path string) ([]obs.SpanRecord, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var recs []obs.SpanRecord
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<26)
	for sc.Scan() {
		if len(sc.Bytes()) == 0 {
			continue
		}
		var r obs.SpanRecord
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return nil, fmt.Errorf("tracez: %s: %w", path, err)
		}
		recs = append(recs, r)
	}
	return recs, sc.Err()
}

// VisitForest gathers every retained visit-kind exemplar tree across
// conditions. Batch exemplars are skipped.
func (ex *Export) VisitForest() []*Span {
	if ex == nil {
		return nil
	}
	return visitForest(ex.Conditions)
}

func visitForest(conds []CondExemplars) []*Span {
	var out []*Span
	for _, ce := range conds {
		if ce.Kind != KindVisit {
			continue
		}
		for _, vt := range append(append([]*VisitTrace{}, ce.Slow...), ce.Head...) {
			out = append(out, vt.Root)
		}
	}
	return out
}

// Slowest returns the top-n retained visit exemplars across all
// conditions, cost-descending (ties by condition then index).
func (ex *Export) Slowest(n int) []*VisitTrace {
	if ex == nil {
		return nil
	}
	return slowestOf(ex.Conditions, n)
}

func slowestOf(conds []CondExemplars, n int) []*VisitTrace {
	var all []*VisitTrace
	for _, ce := range conds {
		if ce.Kind != KindVisit {
			continue
		}
		all = append(all, ce.Slow...)
		all = append(all, ce.Head...)
	}
	sort.SliceStable(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Cost != b.Cost {
			return a.Cost > b.Cost
		}
		if a.Condition != b.Condition {
			return a.Condition < b.Condition
		}
		return a.Index < b.Index
	})
	if n > 0 && len(all) > n {
		all = all[:n]
	}
	return all
}
