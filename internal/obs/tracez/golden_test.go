package tracez

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"canvassing/internal/obs"
)

var update = flag.Bool("update", false, "regenerate the tracescope fixtures and golden files")

// goldenPhases is the phase-span forest of a small fixture study.
// Variant "b" is the same study after a perf shift: the control crawl
// slowed down and the analysis sped up, so the diff shows wall
// attribution moving between phases.
func goldenPhases(variant string) []obs.SpanRecord {
	base := time.Unix(3000, 0)
	sec := func(s float64) time.Duration { return time.Duration(s * float64(time.Second)) }
	crawlDur, analyzeStart, analyzeDur := sec(5), sec(5), sec(2)
	if variant == "b" {
		crawlDur, analyzeStart, analyzeDur = sec(8), sec(8), sec(1)
	}
	return []obs.SpanRecord{
		{ID: 1, Name: "crawl.control", Start: base, Duration: crawlDur,
			Labels: map[string]string{"machine": "intel"}},
		{ID: 2, ParentID: 1, Name: "webgen", Start: base, Duration: sec(1)},
		{ID: 3, Name: "analyze", Start: base.Add(analyzeStart), Duration: analyzeDur},
		{ID: 4, Name: "crawl.abp", Start: base.Add(analyzeStart + analyzeDur), Duration: sec(4)},
	}
}

// goldenVisit builds one deterministic exemplar tree the shape the
// crawler emits: connect, then a script with fetch/parse/exec (and a
// canvas accounting child). Every i*... wall below is a fixed function
// of the index, so the fixture bytes never drift.
func goldenVisit(cond string, i int, faulted bool) *VisitTrace {
	w := func(n int) time.Duration { return time.Duration(n) * time.Millisecond }
	connect := &Span{Name: "connect", Off: 0, Wall: w(5 + i%3), Cost: 1}
	if faulted {
		connect.Cost = 3
		connect.Labels = map[string]string{"fault": "flaky", "retries": "2"}
		connect.Wall = w(40)
	}
	exec := &Span{Name: "exec", Off: connect.Wall + w(15), Wall: w(20 + 5*(i%4)), Cost: int64(1000 * (i + 1)),
		Children: []*Span{{Name: "canvas", Off: connect.Wall + w(15), Cost: int64(i % 5)}}}
	script := &Span{Name: "script", Off: connect.Wall, Wall: exec.Off + exec.Wall - connect.Wall,
		Labels: map[string]string{"url": fmt.Sprintf("https://cdn%d.example/fp.js", i%3)},
		Children: []*Span{
			{Name: "fetch", Off: connect.Wall, Wall: w(8), Cost: int64(2048 + 100*i)},
			{Name: "parse", Off: connect.Wall + w(8), Wall: w(7), Cost: int64(2048 + 100*i), Labels: map[string]string{"cache": "miss"}},
			exec,
		}}
	root := &Span{Name: "visit", Wall: script.End() + w(2), Children: []*Span{connect, script}}
	outcome := "ok"
	if faulted {
		outcome = "degraded"
		root.Labels = map[string]string{"degraded": "fault"}
	}
	vt := &VisitTrace{
		Kind: KindVisit, Condition: cond, Domain: fmt.Sprintf("site-%04d.example", i),
		Rank: i + 1, Index: i, Outcome: outcome, Cost: root.TotalCost(), Wall: root.Wall, Root: root,
	}
	return vt
}

// goldenReservoir fills a reservoir the way a run would: visits in page
// order per condition, then the analysis batch spans. Variant "b"
// doubles the exec cost of the tail visits so the slow set and the cost
// means shift.
func goldenReservoir(variant string) *Reservoir {
	r := NewReservoir(1, 4, 4)
	for _, cond := range []string{"control", "abp"} {
		for i := 0; i < 12; i++ {
			vt := goldenVisit(cond, i, i == 11 && cond == "control")
			if variant == "b" && i >= 8 {
				vt.Root.Children[1].Children[2].Cost *= 2
				vt.Cost = vt.Root.TotalCost()
			}
			r.Offer(vt)
		}
	}
	bt := &VisitTrace{
		Kind: KindBatch, Condition: "analyze.control", Domain: "shard-0000", Index: 0,
		Outcome: "ok", Cost: 37, Wall: 12 * time.Millisecond,
		Root: &Span{Name: "batch", Wall: 12 * time.Millisecond, Cost: 37,
			Labels: map[string]string{"pages": "12"}},
	}
	r.Offer(bt)
	return r
}

func writeFixture(t *testing.T, dir, variant string) {
	t.Helper()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	f, err := os.Create(filepath.Join(dir, TraceFile))
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	for _, rec := range goldenPhases(variant) {
		if err := enc.Encode(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := WriteExemplars(filepath.Join(dir, ExemplarsFile), goldenReservoir(variant), goldenPhases(variant)); err != nil {
		t.Fatal(err)
	}
}

func checkGolden(t *testing.T, path, got string) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if got != string(want) {
		t.Fatalf("%s drifted (got %d bytes, want %d).\n--- got ---\n%s\nRe-run with -update if the change is intentional.",
			path, len(got), len(want), got)
	}
}

// TestTracescopeGolden pins the tracescope single-run report and the
// two-run diff against committed fixtures: a fault-injected study
// (run_a carries a degraded, retried visit) and a perf-shifted variant
// (run_b). Every wall time in the fixtures is a fixed constant, so the
// rendered bytes are fully deterministic — no masking needed.
func TestTracescopeGolden(t *testing.T) {
	fixA := filepath.Join("testdata", "run_a")
	fixB := filepath.Join("testdata", "run_b")

	if *update {
		writeFixture(t, fixA, "a")
		writeFixture(t, fixB, "b")
	}

	a, err := LoadRunDir(fixA)
	if err != nil {
		t.Fatalf("%v (run with -update to create the fixtures)", err)
	}
	b, err := LoadRunDir(fixB)
	if err != nil {
		t.Fatal(err)
	}

	report := RenderReport(a, 6)
	checkGolden(t, filepath.Join("testdata", "report.golden"), report)
	// The fault-injected visit must surface with its flags in the slow
	// table — the acceptance check golden bytes alone wouldn't explain.
	for _, want := range []string{"fault=flaky", "retries=2", "degraded", "crawl.control"} {
		if !strings.Contains(report, want) {
			t.Errorf("report missing %q:\n%s", want, report)
		}
	}

	diff := RenderDiff(a, b)
	checkGolden(t, filepath.Join("testdata", "diff.golden"), diff)
	for _, want := range []string{"Largest attribution shift", "Critical path A", "Condition stream delta"} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff missing %q:\n%s", want, diff)
		}
	}
}
