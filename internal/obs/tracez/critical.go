package tracez

import (
	"fmt"
	"io"
	"sort"
	"time"

	"canvassing/internal/obs"
)

// PhaseStat aggregates every span with one name across a forest.
// Self-time is wall minus the union of child intervals: the part of
// the span no child accounts for. ChildSum over ChildUnion measures
// serial-vs-parallel overlap — 1.0 means children ran strictly
// serially, higher means they overlapped.
type PhaseStat struct {
	Name       string        `json:"name"`
	Count      int           `json:"count"`
	Wall       time.Duration `json:"wall_ns"`
	Self       time.Duration `json:"self_ns"`
	ChildSum   time.Duration `json:"child_sum_ns"`
	ChildUnion time.Duration `json:"child_union_ns"`
	Cost       int64         `json:"cost,omitempty"`
}

// Parallelism is ChildSum/ChildUnion, or 0 when the phase has no
// child time.
func (p PhaseStat) Parallelism() float64 {
	if p.ChildUnion <= 0 {
		return 0
	}
	return float64(p.ChildSum) / float64(p.ChildUnion)
}

// PathStep is one hop of a critical path.
type PathStep struct {
	Name string        `json:"name"`
	Wall time.Duration `json:"wall_ns"`
	Self time.Duration `json:"self_ns"`
}

// Report is the critical-path analysis of one span forest.
type Report struct {
	Roots     int           `json:"roots"`
	TotalWall time.Duration `json:"total_wall_ns"`
	// CriticalWall is the wall time of the longest root — the chain
	// the CriticalPath walks.
	CriticalWall time.Duration `json:"critical_wall_ns"`
	// Phases aggregates spans by name, wall-descending.
	Phases []PhaseStat `json:"phases"`
	// CriticalPath descends from the longest root through the child
	// that finishes last at each level.
	CriticalPath []PathStep `json:"critical_path"`
}

// BuildForest converts finished tracer records into tracez span
// trees: children attach under their parents in start order, and
// offsets are relative to each tree's root start.
func BuildForest(recs []obs.SpanRecord) []*Span {
	byID := make(map[int64]*Span, len(recs))
	starts := make(map[int64]time.Time, len(recs))
	for _, r := range recs {
		byID[r.ID] = &Span{Name: r.Name, Wall: r.Duration, Labels: r.Labels}
		starts[r.ID] = r.Start
	}
	type edge struct {
		id     int64
		parent int64
	}
	edges := make([]edge, 0, len(recs))
	for _, r := range recs {
		edges = append(edges, edge{r.ID, r.ParentID})
	}
	sort.SliceStable(edges, func(i, j int) bool {
		si, sj := starts[edges[i].id], starts[edges[j].id]
		if !si.Equal(sj) {
			return si.Before(sj)
		}
		return edges[i].id < edges[j].id
	})
	var roots []*Span
	var rootIDs []int64
	for _, e := range edges {
		if p := byID[e.parent]; p != nil {
			p.Children = append(p.Children, byID[e.id])
		} else {
			roots = append(roots, byID[e.id])
			rootIDs = append(rootIDs, e.id)
		}
	}
	// Offsets relative to the owning root.
	var stamp func(sp *Span, id int64, rootStart time.Time)
	ids := map[*Span]int64{}
	for id, sp := range byID {
		ids[sp] = id
	}
	stamp = func(sp *Span, id int64, rootStart time.Time) {
		sp.Off = starts[id].Sub(rootStart)
		for _, c := range sp.Children {
			stamp(c, ids[c], rootStart)
		}
	}
	for i, root := range roots {
		stamp(root, rootIDs[i], starts[rootIDs[i]])
	}
	return roots
}

// interval is a half-open [start, end) wall window.
type interval struct{ start, end time.Duration }

// unionLen merges overlapping intervals and returns the covered
// length.
func unionLen(ivs []interval) time.Duration {
	if len(ivs) == 0 {
		return 0
	}
	sort.Slice(ivs, func(i, j int) bool { return ivs[i].start < ivs[j].start })
	var total time.Duration
	cur := ivs[0]
	for _, iv := range ivs[1:] {
		if iv.start > cur.end {
			total += cur.end - cur.start
			cur = iv
			continue
		}
		if iv.end > cur.end {
			cur.end = iv.end
		}
	}
	total += cur.end - cur.start
	return total
}

// selfTime is sp's wall minus the union of its children's intervals
// (clipped to sp's own window), floored at zero.
func selfTime(sp *Span) time.Duration {
	if len(sp.Children) == 0 {
		return sp.Wall
	}
	ivs := make([]interval, 0, len(sp.Children))
	lo, hi := sp.Off, sp.End()
	for _, c := range sp.Children {
		s, e := c.Off, c.End()
		if s < lo {
			s = lo
		}
		if e > hi {
			e = hi
		}
		if e > s {
			ivs = append(ivs, interval{s, e})
		}
	}
	self := sp.Wall - unionLen(ivs)
	if self < 0 {
		self = 0
	}
	return self
}

// Analyze computes the critical-path report for a span forest (tracer
// phase trees or exemplar visit trees alike).
func Analyze(forest []*Span) Report {
	rep := Report{Roots: len(forest)}
	agg := map[string]*PhaseStat{}
	var order []string
	var walk func(sp *Span)
	walk = func(sp *Span) {
		p := agg[sp.Name]
		if p == nil {
			p = &PhaseStat{Name: sp.Name}
			agg[sp.Name] = p
			order = append(order, sp.Name)
		}
		p.Count++
		p.Wall += sp.Wall
		p.Self += selfTime(sp)
		p.Cost += sp.Cost
		if len(sp.Children) > 0 {
			ivs := make([]interval, 0, len(sp.Children))
			for _, c := range sp.Children {
				p.ChildSum += c.Wall
				if c.End() > c.Off {
					ivs = append(ivs, interval{c.Off, c.End()})
				}
			}
			p.ChildUnion += unionLen(ivs)
		}
		for _, c := range sp.Children {
			walk(c)
		}
	}
	var longest *Span
	for _, root := range forest {
		rep.TotalWall += root.Wall
		if longest == nil || root.Wall > longest.Wall {
			longest = root
		}
		walk(root)
	}
	for _, name := range order {
		rep.Phases = append(rep.Phases, *agg[name])
	}
	sort.SliceStable(rep.Phases, func(i, j int) bool { return rep.Phases[i].Wall > rep.Phases[j].Wall })
	if longest != nil {
		rep.CriticalWall = longest.Wall
		for sp := longest; sp != nil; {
			rep.CriticalPath = append(rep.CriticalPath, PathStep{
				Name: sp.Name, Wall: sp.Wall, Self: selfTime(sp),
			})
			// Descend through the child that finishes last — the one
			// gating this span's end.
			var next *Span
			for _, c := range sp.Children {
				if next == nil || c.End() > next.End() {
					next = c
				}
			}
			sp = next
		}
	}
	return rep
}

// WriteFolded writes the forest as collapsed stack lines
// ("root;child;leaf <self-ns>") — the folded format flamegraph.pl and
// pprof-style viewers consume. Identical stacks are summed; lines are
// sorted for deterministic output. prefix, when non-empty, becomes
// the outermost frame of every stack (used to group exemplar visit
// trees by condition).
func WriteFolded(w io.Writer, forest []*Span, prefix string) error {
	lines := map[string]int64{}
	var walk func(sp *Span, stack string)
	walk = func(sp *Span, stack string) {
		if stack == "" {
			stack = sp.Name
		} else {
			stack += ";" + sp.Name
		}
		if self := selfTime(sp); self > 0 {
			lines[stack] += int64(self)
		}
		for _, c := range sp.Children {
			walk(c, stack)
		}
	}
	for _, root := range forest {
		walk(root, prefix)
	}
	keys := make([]string, 0, len(lines))
	for k := range lines {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		if _, err := fmt.Fprintf(w, "%s %d\n", k, lines[k]); err != nil {
			return err
		}
	}
	return nil
}
