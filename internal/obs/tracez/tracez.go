// Package tracez is the trace-analytics layer: fine-grained per-visit
// span trees captured by the crawler, per-batch spans from the
// analysis executor, a bounded deterministic exemplar reservoir, and a
// critical-path analyzer over span forests.
//
// The main obs.Tracer records pipeline *phases* — tens of spans per
// study. Per-visit trees would be millions at paper scale, so they
// never enter the tracer or the metrics registry: the Reservoir keeps
// only the slowest-N trees per condition plus a seeded head sample,
// and everything it retains lives outside the run bundle (the exemplar
// export is a sidecar file, like the checkpoint and snapshot store),
// so enabling visit tracing changes zero bundle bytes.
//
// Determinism: exemplar *selection* keys on Cost — a deterministic
// work measure (connect attempts, body bytes, interpreter steps,
// canvas calls) that is a pure function of the study seed — never on
// wall time, and visits are offered from the crawler's ordered-commit
// point in page order. SelectionKey() projects the selection down to
// its deterministic fields; that projection is byte-identical across
// worker widths. Wall-clock durations ride along on the exemplars as
// volatile annotations for humans and flamegraphs.
package tracez

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"canvassing/internal/stats"
)

// SchemaVersion gates the trace_exemplars.jsonl format.
const SchemaVersion = 1

// Exemplar kinds.
const (
	// KindVisit is a per-visit span tree from the crawler. Visit
	// exemplars are deterministic across worker widths.
	KindVisit = "visit"
	// KindBatch is a per-shard span from the analysis executor. The
	// shard fan-out depends on the worker count, so batch exemplars
	// describe the actual execution and are excluded from
	// SelectionKey.
	KindBatch = "batch"
)

// Span is one node of an exemplar span tree. Off and Wall are real
// wall-clock measurements (volatile across runs); Cost is the node's
// own deterministic work measure, excluding children.
type Span struct {
	Name string `json:"name"`
	// Off is the offset from the tree root's start.
	Off time.Duration `json:"off_ns"`
	// Wall is the measured wall duration. Virtual spans (e.g. canvas
	// call accounting) may leave it zero.
	Wall     time.Duration     `json:"wall_ns"`
	Cost     int64             `json:"cost,omitempty"`
	Labels   map[string]string `json:"labels,omitempty"`
	Children []*Span           `json:"children,omitempty"`
}

// TotalCost sums the span's own cost and all descendants'.
func (sp *Span) TotalCost() int64 {
	if sp == nil {
		return 0
	}
	total := sp.Cost
	for _, c := range sp.Children {
		total += c.TotalCost()
	}
	return total
}

// End is the span's finish offset from the tree root's start.
func (sp *Span) End() time.Duration { return sp.Off + sp.Wall }

// SetLabel attaches or overwrites one label.
func (sp *Span) SetLabel(k, v string) {
	if sp.Labels == nil {
		sp.Labels = map[string]string{}
	}
	sp.Labels[k] = v
}

// VisitTrace is one complete exemplar: a visit (or analysis batch)
// span tree plus the identity and totals the reservoir selects on.
type VisitTrace struct {
	Kind      string `json:"kind"`
	Condition string `json:"condition"`
	// Domain identifies the visited site (or the batch id for
	// KindBatch exemplars).
	Domain string `json:"domain"`
	Rank   int    `json:"rank,omitempty"`
	// Index is the page index within the condition's crawl (or the
	// shard index for batches) — the deterministic tie-breaker.
	Index   int    `json:"index"`
	Outcome string `json:"outcome,omitempty"`
	// Cost is the tree's total deterministic work measure.
	Cost int64 `json:"cost"`
	// Wall is the root span's wall duration (volatile).
	Wall time.Duration `json:"wall_ns"`
	Root *Span         `json:"root"`
}

// Builder assembles one exemplar span tree with real wall offsets. It
// is not safe for concurrent use: one visit is built by exactly one
// worker goroutine, then handed to the committer.
type Builder struct {
	vt    *VisitTrace
	start time.Time
	now   func() time.Time // test seam
}

// NewVisit starts a per-visit trace rooted at a "visit" span.
func NewVisit(condition, domain string, rank, index int) *Builder {
	return newBuilder(&VisitTrace{
		Kind: KindVisit, Condition: condition, Domain: domain,
		Rank: rank, Index: index, Root: &Span{Name: "visit"},
	})
}

// NewBatch starts a per-shard analysis batch trace rooted at a
// "batch" span.
func NewBatch(condition, id string, shard int) *Builder {
	return newBuilder(&VisitTrace{
		Kind: KindBatch, Condition: condition, Domain: id,
		Index: shard, Root: &Span{Name: "batch"},
	})
}

func newBuilder(vt *VisitTrace) *Builder {
	b := &Builder{vt: vt, now: time.Now}
	b.start = b.now()
	return b
}

// Root is the tree's root span (for labeling and as the top-level
// Open parent).
func (b *Builder) Root() *Span { return b.vt.Root }

// Open starts a child span under parent (use b.Root() for a top-level
// phase) at the current wall offset. Close it with Close; spans left
// open keep Wall zero.
func (b *Builder) Open(parent *Span, name string) *Span {
	sp := &Span{Name: name, Off: b.now().Sub(b.start)}
	parent.Children = append(parent.Children, sp)
	return sp
}

// Close stamps sp's wall duration from its offset to now.
func (b *Builder) Close(sp *Span) {
	sp.Wall = b.now().Sub(b.start) - sp.Off
}

// Finish seals the trace with its outcome and returns it. The root
// wall becomes the total elapsed time; Cost is summed over the tree.
func (b *Builder) Finish(outcome string) *VisitTrace {
	b.vt.Root.Wall = b.now().Sub(b.start)
	b.vt.Outcome = outcome
	b.vt.Wall = b.vt.Root.Wall
	b.vt.Cost = b.vt.Root.TotalCost()
	return b.vt
}

// Reservoir defaults.
const (
	DefaultSlowN = 16
	DefaultHeadN = 32
	// headSampleMod is the seeded head-sample rate: roughly 1 in
	// headSampleMod offered visits is eligible until HeadN are kept.
	headSampleMod = 4
)

// condRes is one condition's reservoir state.
type condRes struct {
	kind    string
	offered int64
	costSum int64
	maxCost int64
	slow    []*VisitTrace // bounded slowN, unsorted
	head    []*VisitTrace // bounded headN, offer order
}

// Reservoir is the bounded, deterministic exemplar store. Offer it
// every committed visit (in page order) and every analysis batch; it
// keeps the slowest-N per condition by deterministic Cost plus a
// seeded head sample, and discards the rest. All methods are nil-safe
// and concurrency-safe.
type Reservoir struct {
	seed  uint64
	slowN int
	headN int

	mu    sync.Mutex
	conds map[string]*condRes
	order []string // condition first-offer order
}

// NewReservoir returns a reservoir seeded for head sampling. slowN
// and headN bound the per-condition exemplar counts; zero or negative
// values take the defaults.
func NewReservoir(seed uint64, slowN, headN int) *Reservoir {
	if slowN <= 0 {
		slowN = DefaultSlowN
	}
	if headN <= 0 {
		headN = DefaultHeadN
	}
	return &Reservoir{seed: seed, slowN: slowN, headN: headN, conds: map[string]*condRes{}}
}

// outranks reports whether a beats b for a slowest-N slot: higher
// deterministic cost wins, and on ties the earlier page index wins so
// the selection is a total order independent of offer interleaving.
func outranks(a, b *VisitTrace) bool {
	if a.Cost != b.Cost {
		return a.Cost > b.Cost
	}
	return a.Index < b.Index
}

// Offer submits one finished exemplar. Call it from a deterministic
// sequencing point (the crawler's ordered committer; the executor's
// post-merge shard loop) — the reservoir itself is order-sensitive
// only through the head sample's fill order.
func (r *Reservoir) Offer(vt *VisitTrace) {
	if r == nil || vt == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.condFor(vt.Condition, vt.Kind)
	c.offered++
	c.costSum += vt.Cost
	if vt.Cost > c.maxCost {
		c.maxCost = vt.Cost
	}
	r.keep(c, vt)
}

// condFor returns (creating on first sight, which fixes the condition's
// position in first-offer order) the per-condition state. Callers hold
// r.mu.
func (r *Reservoir) condFor(cond, kind string) *condRes {
	c := r.conds[cond]
	if c == nil {
		c = &condRes{kind: kind}
		r.conds[cond] = c
		r.order = append(r.order, cond)
	}
	return c
}

// keep is the retention half of Offer: the seeded head sample and the
// slowest-N selection, with stream totals left alone. Callers hold
// r.mu.
func (r *Reservoir) keep(c *condRes, vt *VisitTrace) {
	// Head sample: a seeded hash of the exemplar's identity picks
	// ~1/headSampleMod of the stream until the bucket fills. The hash
	// depends only on (seed, condition, domain, index), so the same
	// visits are sampled at any worker width.
	if len(c.head) < r.headN && r.sampled(vt) {
		c.head = append(c.head, vt)
	}
	// Slowest-N by deterministic cost.
	if len(c.slow) < r.slowN {
		c.slow = append(c.slow, vt)
		return
	}
	min := 0
	for i := 1; i < len(c.slow); i++ {
		if outranks(c.slow[min], c.slow[i]) {
			min = i
		}
	}
	if outranks(vt, c.slow[min]) {
		c.slow[min] = vt
	}
}

// Absorb merges partial-reservoir views — per-condition snapshots
// captured over disjoint slices of a crawl's page stream, as emitted by
// distributed work-units — into the reservoir. Stream totals (offered,
// cost sum, max cost) are summed, and every part's retained exemplars
// are re-offered to the selection in ascending page-index order.
//
// This reproduces the single-process reservoir exactly: a slice's
// slowest-N retains a superset of the slice's contribution to the full
// stream's slowest-N, and a slice's head sample retains every sampled
// tree that could sit among the full stream's first headN samples, so
// re-selecting over the union in index order converges to the same
// exemplar set, in the same order, as offering the full stream.
func (r *Reservoir) Absorb(parts []CondExemplars) {
	if r == nil || len(parts) == 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var conds []string
	byCond := map[string][]*VisitTrace{}
	for _, p := range parts {
		c := r.condFor(p.Condition, p.Kind)
		c.offered += p.Offered
		c.costSum += p.CostSum
		if p.MaxCost > c.maxCost {
			c.maxCost = p.MaxCost
		}
		if _, ok := byCond[p.Condition]; !ok {
			conds = append(conds, p.Condition)
		}
		// Slow and Head are disjoint in a snapshot (Head is deduped
		// against Slow), so the union below never double-offers a tree.
		byCond[p.Condition] = append(byCond[p.Condition], p.Slow...)
		byCond[p.Condition] = append(byCond[p.Condition], p.Head...)
	}
	for _, cond := range conds {
		all := byCond[cond]
		sort.Slice(all, func(i, j int) bool { return all[i].Index < all[j].Index })
		c := r.conds[cond]
		for _, vt := range all {
			r.keep(c, vt)
		}
	}
}

func (r *Reservoir) sampled(vt *VisitTrace) bool {
	h := stats.HashString(fmt.Sprintf("tracez:%d:%s:%s:%d", r.seed, vt.Condition, vt.Domain, vt.Index))
	// FNV-1a's low bits echo the last input byte; fold the high half
	// down so the modulus sees mixed bits.
	h ^= h >> 33
	return h%headSampleMod == 0
}

// CondExemplars is one condition's reservoir view: stream summary
// plus the retained exemplars. Slow is cost-descending; Head is in
// offer order with any tree already present in Slow removed.
type CondExemplars struct {
	Condition string        `json:"condition"`
	Kind      string        `json:"kind"`
	Offered   int64         `json:"offered"`
	CostSum   int64         `json:"cost_sum"`
	MaxCost   int64         `json:"max_cost"`
	Slow      []*VisitTrace `json:"slow,omitempty"`
	Head      []*VisitTrace `json:"head,omitempty"`
}

// Snapshot returns every condition's exemplars in condition
// first-offer order. The returned trees are shared, not copied —
// treat them as read-only.
func (r *Reservoir) Snapshot() []CondExemplars {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]CondExemplars, 0, len(r.order))
	for _, cond := range r.order {
		c := r.conds[cond]
		slow := make([]*VisitTrace, len(c.slow))
		copy(slow, c.slow)
		sort.SliceStable(slow, func(i, j int) bool { return outranks(slow[i], slow[j]) })
		inSlow := make(map[*VisitTrace]bool, len(slow))
		for _, vt := range slow {
			inSlow[vt] = true
		}
		var head []*VisitTrace
		for _, vt := range c.head {
			if !inSlow[vt] {
				head = append(head, vt)
			}
		}
		out = append(out, CondExemplars{
			Condition: cond, Kind: c.kind,
			Offered: c.offered, CostSum: c.costSum, MaxCost: c.maxCost,
			Slow: slow, Head: head,
		})
	}
	return out
}

// SelectionKey serializes which visits the reservoir selected —
// condition, stream totals, and each kept exemplar's (index, domain,
// cost, outcome) — with every wall-clock field stripped. Costs and
// outcomes are deterministic functions of the study seed and visits
// are offered in page order, so this projection is byte-identical
// across worker widths and runs. Batch exemplars describe the actual
// shard fan-out (a function of the worker count) and are excluded.
func (r *Reservoir) SelectionKey() []byte {
	var out []byte
	for _, ce := range r.Snapshot() {
		if ce.Kind != KindVisit {
			continue
		}
		out = fmt.Appendf(out, "cond=%s offered=%d cost_sum=%d max_cost=%d\n",
			ce.Condition, ce.Offered, ce.CostSum, ce.MaxCost)
		for _, vt := range ce.Slow {
			out = appendKeyLine(out, "slow", vt)
		}
		for _, vt := range ce.Head {
			out = appendKeyLine(out, "head", vt)
		}
	}
	return out
}

func appendKeyLine(out []byte, pick string, vt *VisitTrace) []byte {
	return fmt.Appendf(out, "  %s idx=%d domain=%s cost=%d outcome=%s\n",
		pick, vt.Index, vt.Domain, vt.Cost, vt.Outcome)
}
