package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative deltas are ignored; counters only go up).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value (can go up and down).
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts by delta.
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram. Bounds are inclusive upper
// bounds; one implicit overflow bucket catches everything above the
// last bound. Observations, the running sum, and min/max are all
// atomic, so Observe is safe (and cheap) from many goroutines.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Int64 // len(bounds)+1, last is overflow
	count   atomic.Int64
	sum     atomicFloat
	min     atomicFloat
	max     atomicFloat
}

// atomicFloat is a float64 with atomic load/store/add via CAS on bits.
type atomicFloat struct {
	bits atomic.Uint64
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

func (f *atomicFloat) store(v float64) { f.bits.Store(math.Float64bits(v)) }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		nw := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, nw) {
			return
		}
	}
}

// casMin/casMax fold v into the running extreme.
func (f *atomicFloat) casMin(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) <= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func (f *atomicFloat) casMax(v float64) {
	for {
		old := f.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if f.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

func newHistogram(bounds []float64) *Histogram {
	b := make([]float64, len(bounds))
	copy(b, bounds)
	sort.Float64s(b)
	h := &Histogram{bounds: b, buckets: make([]atomic.Int64, len(b)+1)}
	h.min.store(math.Inf(1))
	h.max.store(math.Inf(-1))
	return h
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.add(v)
	h.min.casMin(v)
	h.max.casMax(v)
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations so far.
func (h *Histogram) Count() int64 { return h.count.Load() }

// LatencyBuckets returns the default bounds for wall-time histograms:
// exponential from 50µs to ~26s, wide enough for a whole-phase span
// and fine enough for a single page visit.
func LatencyBuckets() []float64 {
	out := make([]float64, 0, 20)
	for v := 50e-6; v < 30; v *= 2 {
		out = append(out, v)
	}
	return out
}

// StepBuckets returns bounds for jsvm interpreter-step histograms,
// exponential from 256 steps to beyond the 20M crawl budget.
func StepBuckets() []float64 {
	out := make([]float64, 0, 18)
	for v := 256.0; v < 33_000_000; v *= 4 {
		out = append(out, v)
	}
	return out
}

// RatioBuckets returns ten equal-width bounds on [0,1], for
// utilization- and hit-rate-style histograms.
func RatioBuckets() []float64 {
	out := make([]float64, 10)
	for i := range out {
		out[i] = float64(i+1) / 10
	}
	return out
}

// Registry holds named metrics. Metric handles are get-or-create:
// two callers asking for the same name share the same metric, so the
// registry can be threaded through a pipeline without coordination.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the counter registered under name, creating it on
// first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first
// use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the histogram registered under name, creating it
// with the given bucket bounds on first use. Later calls reuse the
// existing histogram regardless of bounds, so callers agree on bounds
// by construction (first writer wins).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// BucketSnapshot is one histogram bucket in a snapshot.
type BucketSnapshot struct {
	// UpperBound is the inclusive upper bound; +Inf for the overflow
	// bucket.
	UpperBound float64 `json:"le"`
	Count      int64   `json:"count"`
}

// bucketJSON is the wire form: encoding/json rejects +Inf, so the
// overflow bound travels as the string "+Inf" (Prometheus convention).
type bucketJSON struct {
	LE    string `json:"le"`
	Count int64  `json:"count"`
}

// MarshalJSON encodes the bound as a string so +Inf survives.
func (b BucketSnapshot) MarshalJSON() ([]byte, error) {
	le := "+Inf"
	if !math.IsInf(b.UpperBound, 1) {
		le = strconv.FormatFloat(b.UpperBound, 'g', -1, 64)
	}
	return json.Marshal(bucketJSON{LE: le, Count: b.Count})
}

// UnmarshalJSON is the inverse of MarshalJSON.
func (b *BucketSnapshot) UnmarshalJSON(data []byte) error {
	var w bucketJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.LE == "+Inf" {
		b.UpperBound = math.Inf(1)
	} else {
		v, err := strconv.ParseFloat(w.LE, 64)
		if err != nil {
			return err
		}
		b.UpperBound = v
	}
	b.Count = w.Count
	return nil
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Count   int64            `json:"count"`
	Sum     float64          `json:"sum"`
	Min     float64          `json:"min"`
	Max     float64          `json:"max"`
	Buckets []BucketSnapshot `json:"buckets"`
}

// Mean returns the arithmetic mean of all observations (0 when empty).
func (h HistogramSnapshot) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return h.Sum / float64(h.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the bucket holding the target rank. The
// overflow bucket reports its lower bound (the estimate is a floor
// there, matching Prometheus semantics). Out-of-range q is clamped:
// q > 1 behaves like 1, and q <= 0 (or NaN) returns 0, matching the
// empty-histogram answer.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	// NaN fails every comparison, so `q <= 0` alone would let it
	// through to the rank arithmetic and walk off the bucket list;
	// the inverted guard catches it alongside the legitimate zeros.
	if h.Count == 0 || !(q > 0) {
		return 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var seen int64
	lower := 0.0
	for _, b := range h.Buckets {
		if float64(seen+b.Count) >= rank {
			if math.IsInf(b.UpperBound, 1) {
				return lower
			}
			if b.Count == 0 {
				// The rank landed on this bucket's boundary but the bucket
				// itself is empty (rank == seen exactly). Every real
				// observation at that rank sits in an earlier bucket, so
				// the estimate must not overshoot to this bucket's upper
				// bound — the previous bound is the ceiling.
				return lower
			}
			frac := (rank - float64(seen)) / float64(b.Count)
			return lower + frac*(b.UpperBound-lower)
		}
		seen += b.Count
		if !math.IsInf(b.UpperBound, 1) {
			lower = b.UpperBound
		}
	}
	return lower
}

// Snapshot is a point-in-time copy of the whole registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]int64             `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot copies every metric. Each individual value is read
// atomically; the snapshot as a whole is a consistent listing of all
// metrics that existed when it was taken.
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]int64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.hists)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.hists {
		hs := HistogramSnapshot{
			Count:   h.count.Load(),
			Sum:     h.sum.load(),
			Buckets: make([]BucketSnapshot, len(h.buckets)),
		}
		if hs.Count > 0 {
			hs.Min = h.min.load()
			hs.Max = h.max.load()
		}
		for i := range h.buckets {
			ub := math.Inf(1)
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			hs.Buckets[i] = BucketSnapshot{UpperBound: ub, Count: h.buckets[i].Load()}
		}
		s.Histograms[name] = hs
	}
	return s
}

// RenderText formats the snapshot as an aligned terminal listing:
// counters and gauges first, then one summary line per histogram with
// count/mean/p50/p95/max.
func (s Snapshot) RenderText() string {
	var sb strings.Builder
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	width := 0
	for _, n := range names {
		if len(n) > width {
			width = len(n)
		}
	}
	for n := range s.Histograms {
		if len(n) > width {
			width = len(n)
		}
	}
	for _, n := range names {
		v, isCounter := s.Counters[n]
		if !isCounter {
			v = s.Gauges[n]
		}
		fmt.Fprintf(&sb, "%-*s  %d\n", width, n, v)
	}
	hnames := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		hnames = append(hnames, n)
	}
	sort.Strings(hnames)
	for _, n := range hnames {
		h := s.Histograms[n]
		f := h.sampleFormatter()
		fmt.Fprintf(&sb, "%-*s  n=%d mean=%s p50=%s p95=%s max=%s\n",
			width, n, h.Count,
			f(h.Mean()), f(h.Quantile(0.5)), f(h.Quantile(0.95)), f(h.Max))
	}
	return sb.String()
}

// sampleFormatter picks a value renderer from the bucket layout:
// ratio-shaped histograms (all bounds within [0,1]) print scalars,
// wide-range histograms (steps) print integers, and everything else is
// treated as seconds and printed as a duration.
func (h HistogramSnapshot) sampleFormatter() func(float64) string {
	maxBound := 0.0
	for _, b := range h.Buckets {
		if !math.IsInf(b.UpperBound, 1) && b.UpperBound > maxBound {
			maxBound = b.UpperBound
		}
	}
	switch {
	case maxBound <= 1:
		return func(v float64) string { return fmt.Sprintf("%.3f", v) }
	case maxBound > 1000:
		return func(v float64) string { return fmt.Sprintf("%.0f", v) }
	default:
		return func(v float64) string {
			if v == 0 {
				return "0"
			}
			return time.Duration(v * float64(time.Second)).Round(time.Microsecond).String()
		}
	}
}

// Restore loads a snapshot back into the registry — the checkpoint
// half of crash recovery. Counters are topped up to the snapshot value
// (they only go up, so restoring into a fresh registry is exact),
// gauges are set, and histograms are recreated with the snapshot's
// bucket bounds, counts, sum, and extremes. Restore into a non-empty
// registry is additive for counters and destructive for gauges and
// histograms; the resume path always restores into a registry that
// has not observed anything yet.
func (r *Registry) Restore(s Snapshot) {
	for name, v := range s.Counters {
		c := r.Counter(name)
		c.Add(v - c.Value())
	}
	for name, v := range s.Gauges {
		r.Gauge(name).Set(v)
	}
	for name, hs := range s.Histograms {
		bounds := make([]float64, 0, len(hs.Buckets))
		for _, b := range hs.Buckets {
			if !math.IsInf(b.UpperBound, 1) {
				bounds = append(bounds, b.UpperBound)
			}
		}
		h := r.Histogram(name, bounds)
		// First writer wins on bounds; a pre-existing histogram with a
		// different layout cannot hold the snapshot's buckets, and the
		// resume contract (fresh registry) rules that out.
		if len(h.buckets) != len(hs.Buckets) {
			continue
		}
		for i, b := range hs.Buckets {
			h.buckets[i].Store(b.Count)
		}
		h.count.Store(hs.Count)
		h.sum.store(hs.Sum)
		if hs.Count > 0 {
			h.min.store(hs.Min)
			h.max.store(hs.Max)
		} else {
			h.min.store(math.Inf(1))
			h.max.store(math.Inf(-1))
		}
	}
}

// Merge folds another registry's snapshot into this one additively —
// the recombination half of a distributed run, where each work-unit
// crawled with its own registry and the coordinator sums them back
// together. Counters are added (and created when absent, so a zero
// counter still appears in later snapshots), histograms are merged
// bucket-wise with count/sum accumulated and min/max folded, and
// gauges are deliberately skipped: they are instantaneous values the
// merging process owns (e.g. crawl.workers is the coordinator's
// configured width, not a sum over shards). Histograms must agree on
// bucket layout; a mismatch is an error and nothing of that histogram
// is applied.
func (r *Registry) Merge(s Snapshot) error {
	for name, v := range s.Counters {
		r.Counter(name).Add(v)
	}
	for name, hs := range s.Histograms {
		if err := r.MergeHistogram(name, hs); err != nil {
			return err
		}
	}
	return nil
}

// MergeHistogram adds one histogram snapshot's observations into the
// named histogram, creating it with the snapshot's bounds when absent.
func (r *Registry) MergeHistogram(name string, hs HistogramSnapshot) error {
	bounds := make([]float64, 0, len(hs.Buckets))
	for _, b := range hs.Buckets {
		if !math.IsInf(b.UpperBound, 1) {
			bounds = append(bounds, b.UpperBound)
		}
	}
	h := r.Histogram(name, bounds)
	if len(h.buckets) != len(hs.Buckets) {
		return fmt.Errorf("obs: merge %s: bucket count %d != %d", name, len(h.buckets), len(hs.Buckets))
	}
	for i, b := range bounds {
		if h.bounds[i] != b {
			return fmt.Errorf("obs: merge %s: bucket bound %g != %g", name, h.bounds[i], b)
		}
	}
	for i, b := range hs.Buckets {
		h.buckets[i].Add(b.Count)
	}
	h.count.Add(hs.Count)
	h.sum.add(hs.Sum)
	if hs.Count > 0 {
		h.min.casMin(hs.Min)
		h.max.casMax(hs.Max)
	}
	return nil
}

// RenderText snapshots the registry and renders it.
func (r *Registry) RenderText() string { return r.Snapshot().RenderText() }

// WriteJSON writes the snapshot as one indented JSON object.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}
