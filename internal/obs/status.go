package obs

import (
	"sync"
	"time"
)

// RunState is the coarse lifecycle of an instrumented run, driving the
// /readyz answer: a process is ready once its study is constructed and
// stays ready through completion.
type RunState string

const (
	// StateInit is the pre-study state: telemetry exists but nothing is
	// generated or crawling yet. /readyz answers 503.
	StateInit RunState = "init"
	// StateRunning means the study is constructed and its pipeline is
	// executing (or waiting to). /readyz answers 200.
	StateRunning RunState = "running"
	// StateDone means the pipeline finished. Still ready: the ops plane
	// keeps serving final state until the process exits.
	StateDone RunState = "done"
	// StateFailed means the run aborted. /readyz answers 503.
	StateFailed RunState = "failed"
)

// PhaseStatus is one entry of the live phase ledger. Entries are keyed
// by root-span name in first-start order, so the ledger mirrors the
// phase-timing table while the run is still in flight.
type PhaseStatus struct {
	Name string `json:"name"`
	// State is "running" while any span of this phase is open, "done"
	// once every one has ended.
	State string `json:"state"`
	// Runs counts completed spans of this phase (analyze.* phases run
	// once per condition; re-entrant phases count each entry).
	Runs int `json:"runs"`
	// Seconds is the accumulated wall time of completed runs.
	Seconds float64 `json:"seconds"`
}

// CrawlStatus is one condition's committed-frontier progress, updated
// by the crawler's ordered committer as pages commit.
type CrawlStatus struct {
	Condition string `json:"condition"`
	// Frontier counts committed leading pages; Total is the site count.
	Frontier int `json:"frontier"`
	Total    int `json:"total"`
	Done     bool `json:"done"`
}

// AnalysisStatus is one completed analysis-executor invocation.
type AnalysisStatus struct {
	Crawl    string `json:"crawl"`
	Pages    int    `json:"pages"`
	Canvases int    `json:"canvases"`
	Shards   int    `json:"shards"`
	Workers  int    `json:"workers"`
}

// CheckpointStatus reports the checkpoint sidecar's live state.
type CheckpointStatus struct {
	Dir    string `json:"dir"`
	Writes int    `json:"writes"`
	// Stopped reports that the writer's StopAfter lever fired.
	Stopped   bool      `json:"stopped,omitempty"`
	LastWrite time.Time `json:"last_write"`
}

// StatusSnapshot is a point-in-time copy of the whole tracker —
// the /statusz payload's deterministic half (the ops handler adds
// windowed rates, ETA, and active spans on top).
type StatusSnapshot struct {
	State         RunState          `json:"state"`
	StartedAt     time.Time         `json:"started_at"`
	UptimeSeconds float64           `json:"uptime_seconds"`
	Phases        []PhaseStatus     `json:"phases,omitempty"`
	Crawls        []CrawlStatus     `json:"crawls,omitempty"`
	Analyses      []AnalysisStatus  `json:"analyses,omitempty"`
	Checkpoint    *CheckpointStatus `json:"checkpoint,omitempty"`
}

// Status is the live run-progress tracker behind /healthz, /readyz,
// and /statusz. It is fed from three places: the tracer's root spans
// (phase ledger), the crawler's ordered-commit point (per-condition
// frontier), and the analysis executor (per-condition run stats).
//
// Status lives entirely OUTSIDE the metrics registry: nothing here is
// snapshotted into bundles or checkpoints, so enabling the ops plane
// can never change a deterministic artifact byte — the same discipline
// the snapshot store's counters follow. All methods are safe on a nil
// receiver (they no-op), so bare Telemetry literals keep working.
type Status struct {
	mu        sync.Mutex
	state     RunState
	startedAt time.Time
	phases    []PhaseStatus
	phaseIdx  map[string]int
	open      map[string]int // phase name → currently open span count
	crawls    []CrawlStatus
	crawlIdx  map[string]int
	analyses  []AnalysisStatus
	ckpt      *CheckpointStatus
	now       func() time.Time // test seam
}

// NewStatus returns a tracker in StateInit.
func NewStatus() *Status {
	return &Status{
		state:     StateInit,
		startedAt: time.Now(),
		phaseIdx:  map[string]int{},
		open:      map[string]int{},
		crawlIdx:  map[string]int{},
		now:       time.Now,
	}
}

// MarkRunning transitions to StateRunning (study constructed).
func (s *Status) MarkRunning() { s.setState(StateRunning) }

// MarkDone transitions to StateDone (pipeline finished).
func (s *Status) MarkDone() { s.setState(StateDone) }

// MarkFailed transitions to StateFailed (run aborted).
func (s *Status) MarkFailed() { s.setState(StateFailed) }

func (s *Status) setState(st RunState) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.state = st
	s.mu.Unlock()
}

// State returns the current lifecycle state (StateInit for nil).
func (s *Status) State() RunState {
	if s == nil {
		return StateInit
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.state
}

// Ready reports whether /readyz should answer 200: the study exists
// and has not failed.
func (s *Status) Ready() bool {
	st := s.State()
	return st == StateRunning || st == StateDone
}

// SpanStarted implements SpanObserver: each root span opens (or
// re-opens) a phase-ledger entry.
func (s *Status) SpanStarted(name string, root bool) {
	if s == nil || !root {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.phaseIdx[name]
	if !ok {
		i = len(s.phases)
		s.phaseIdx[name] = i
		s.phases = append(s.phases, PhaseStatus{Name: name})
	}
	s.open[name]++
	s.phases[i].State = "running"
}

// SpanEnded implements SpanObserver: the last open span of a phase
// marks its ledger entry done.
func (s *Status) SpanEnded(name string, root bool, d time.Duration) {
	if s == nil || !root {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.phaseIdx[name]
	if !ok {
		return
	}
	if s.open[name] > 0 {
		s.open[name]--
	}
	s.phases[i].Runs++
	s.phases[i].Seconds += d.Seconds()
	if s.open[name] == 0 {
		s.phases[i].State = "done"
	}
}

// CrawlProgress records one condition's committed frontier. The
// crawler's committer calls it at every page commit, so /statusz shows
// exactly the committed prefix — the same cut a checkpoint would take.
func (s *Status) CrawlProgress(condition string, frontier, total int, done bool) {
	if s == nil || condition == "" {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.crawlIdx[condition]
	if !ok {
		i = len(s.crawls)
		s.crawlIdx[condition] = i
		s.crawls = append(s.crawls, CrawlStatus{Condition: condition})
	}
	s.crawls[i].Frontier = frontier
	s.crawls[i].Total = total
	s.crawls[i].Done = done
}

// ActiveCrawl returns the first registered crawl that is still
// incomplete — the one an ETA applies to — and whether one exists.
func (s *Status) ActiveCrawl() (CrawlStatus, bool) {
	if s == nil {
		return CrawlStatus{}, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range s.crawls {
		if !c.Done && c.Frontier < c.Total {
			return c, true
		}
	}
	return CrawlStatus{}, false
}

// RecordAnalysis appends one completed executor run.
func (s *Status) RecordAnalysis(crawl string, pages, canvases, shards, workers int) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.analyses = append(s.analyses, AnalysisStatus{
		Crawl: crawl, Pages: pages, Canvases: canvases, Shards: shards, Workers: workers,
	})
	s.mu.Unlock()
}

// CheckpointWrite records a successful sidecar write.
func (s *Status) CheckpointWrite(dir string, writes int, stopped bool) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.ckpt = &CheckpointStatus{Dir: dir, Writes: writes, Stopped: stopped, LastWrite: s.now()}
	s.mu.Unlock()
}

// Snapshot copies the tracker.
func (s *Status) Snapshot() StatusSnapshot {
	if s == nil {
		return StatusSnapshot{State: StateInit}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := StatusSnapshot{
		State:         s.state,
		StartedAt:     s.startedAt,
		UptimeSeconds: s.now().Sub(s.startedAt).Seconds(),
		Phases:        append([]PhaseStatus(nil), s.phases...),
		Crawls:        append([]CrawlStatus(nil), s.crawls...),
		Analyses:      append([]AnalysisStatus(nil), s.analyses...),
	}
	if s.ckpt != nil {
		cp := *s.ckpt
		out.Checkpoint = &cp
	}
	return out
}
