package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("visits")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotonic
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if r.Counter("visits") != c {
		t.Fatal("same name must return same counter")
	}
	g := r.Gauge("workers")
	g.Set(8)
	g.Add(-2)
	if got := g.Value(); got != 6 {
		t.Fatalf("gauge = %d, want 6", got)
	}
}

func TestHistogramBucketsAndStats(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	s := r.Snapshot().Histograms["lat"]
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
	if got := s.Sum; math.Abs(got-106.5) > 1e-9 {
		t.Fatalf("sum = %v, want 106.5", got)
	}
	wantCounts := []int64{1, 2, 1, 1} // ≤1, ≤2, ≤4, overflow
	for i, b := range s.Buckets {
		if b.Count != wantCounts[i] {
			t.Fatalf("bucket %d count = %d, want %d", i, b.Count, wantCounts[i])
		}
	}
	if !math.IsInf(s.Buckets[3].UpperBound, 1) {
		t.Fatal("last bucket must be the overflow bucket")
	}
	if mean := s.Mean(); math.Abs(mean-21.3) > 1e-9 {
		t.Fatalf("mean = %v, want 21.3", mean)
	}
	// p50 lands in the (1,2] bucket: 2 of 5 ranks in, interpolated.
	if q := s.Quantile(0.5); q < 1 || q > 2 {
		t.Fatalf("p50 = %v, want within (1,2]", q)
	}
	// p99 lands in the overflow bucket and floors at its lower bound.
	if q := s.Quantile(0.99); q != 4 {
		t.Fatalf("p99 = %v, want overflow floor 4", q)
	}
}

func TestQuantileEmpty(t *testing.T) {
	var s HistogramSnapshot
	if s.Quantile(0.5) != 0 || s.Mean() != 0 {
		t.Fatal("empty histogram must report zeros")
	}
}

// TestConcurrentExactness hammers counters, gauges, histograms, and
// spans from many goroutines and verifies snapshot totals are exact —
// no lost increments. Run under -race.
func TestConcurrentExactness(t *testing.T) {
	const goroutines = 16
	const perG = 10_000
	r := NewRegistry()
	tr := NewTracer()
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				// Metric handles are fetched inside the loop on purpose:
				// get-or-create must also be contention-safe.
				r.Counter("hits").Inc()
				r.Gauge("depth").Add(1)
				r.Histogram("lat", []float64{0.25, 0.5, 0.75}).Observe(float64(i%100) / 100)
				if i%1000 == 0 {
					sp := tr.Start("work")
					sp.StartChild("inner").End()
					sp.End()
				}
			}
		}(g)
	}
	wg.Wait()
	s := r.Snapshot()
	const want = goroutines * perG
	if got := s.Counters["hits"]; got != want {
		t.Fatalf("counter lost increments: %d, want %d", got, want)
	}
	if got := s.Gauges["depth"]; got != want {
		t.Fatalf("gauge lost adds: %d, want %d", got, want)
	}
	h := s.Histograms["lat"]
	if h.Count != want {
		t.Fatalf("histogram lost observations: %d, want %d", h.Count, want)
	}
	var bucketSum int64
	for _, b := range h.Buckets {
		bucketSum += b.Count
	}
	if bucketSum != want {
		t.Fatalf("bucket counts sum to %d, want %d", bucketSum, want)
	}
	wantSpans := goroutines * (perG / 1000) * 2
	if got := len(tr.Records()); got != wantSpans {
		t.Fatalf("spans lost: %d, want %d", got, wantSpans)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("a").Add(3)
	r.Gauge("b").Set(-7)
	r.Histogram("h", LatencyBuckets()).Observe(0.01)
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if back.Counters["a"] != 3 || back.Gauges["b"] != -7 {
		t.Fatal("scalar values lost in round trip")
	}
	h := back.Histograms["h"]
	if h.Count != 1 {
		t.Fatalf("histogram count = %d, want 1", h.Count)
	}
	if !math.IsInf(h.Buckets[len(h.Buckets)-1].UpperBound, 1) {
		t.Fatal("overflow bound must survive the round trip as +Inf")
	}
}

func TestRenderText(t *testing.T) {
	r := NewRegistry()
	r.Counter("crawl.visits").Add(42)
	r.Histogram("crawl.visit.latency", LatencyBuckets()).ObserveDuration(30 * time.Millisecond)
	text := r.RenderText()
	if !strings.Contains(text, "crawl.visits") || !strings.Contains(text, "42") {
		t.Fatalf("counter missing from render:\n%s", text)
	}
	if !strings.Contains(text, "crawl.visit.latency") || !strings.Contains(text, "n=1") {
		t.Fatalf("histogram missing from render:\n%s", text)
	}
}

func TestDefaultBucketShapes(t *testing.T) {
	for _, bounds := range [][]float64{LatencyBuckets(), StepBuckets(), RatioBuckets()} {
		if len(bounds) < 4 {
			t.Fatalf("bucket helper too coarse: %v", bounds)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("bounds not increasing: %v", bounds)
			}
		}
	}
}

// TestQuantileEdgeCases pins the Quantile corner behavior the
// telemetry report tables depend on: empty histograms and degenerate
// q values answer 0 (never NaN), q is clamped to 1, a rank landing
// exactly on a bucket boundary reports that bucket's upper bound
// without overshooting into the next bucket, and the overflow bucket
// floors at its lower bound.
func TestQuantileEdgeCases(t *testing.T) {
	var empty HistogramSnapshot
	for _, q := range []float64{-1, 0, 0.5, 1, 2, math.NaN()} {
		if got := empty.Quantile(q); got != 0 {
			t.Fatalf("empty.Quantile(%v) = %v, want 0", q, got)
		}
	}

	r := NewRegistry()
	h := r.Histogram("edge", []float64{1, 2, 4})
	// Four observations in (0,1], four in (1,2], none beyond.
	for i := 0; i < 4; i++ {
		h.Observe(0.5)
		h.Observe(1.5)
	}
	s := r.Snapshot().Histograms["edge"]

	// q = 0.5 → rank 4, exactly the (0,1] bucket's cumulative count:
	// the answer is that bucket's upper bound, not a value from the
	// next bucket.
	if got := s.Quantile(0.5); got != 1 {
		t.Fatalf("boundary quantile = %v, want exactly 1", got)
	}
	// Values must never exceed the largest populated bound.
	for _, q := range []float64{0.75, 0.999, 1} {
		if got := s.Quantile(q); got > 2 {
			t.Fatalf("Quantile(%v) = %v overshoots the populated range (max bound 2)", q, got)
		}
	}
	// NaN and negative q on a populated histogram still answer 0.
	if got := s.Quantile(math.NaN()); got != 0 {
		t.Fatalf("Quantile(NaN) = %v, want 0", got)
	}
	if got := s.Quantile(-0.5); got != 0 {
		t.Fatalf("Quantile(-0.5) = %v, want 0", got)
	}
	// q > 1 clamps to 1 rather than running past the last rank.
	if got, want := s.Quantile(5), s.Quantile(1); got != want {
		t.Fatalf("Quantile(5) = %v, want the q=1 answer %v", got, want)
	}
}

// TestRegistryRestore pins the checkpoint contract: Snapshot →
// Restore into a fresh registry → Snapshot must be a fixed point, and
// continued observation after Restore behaves as if the registry had
// never been serialized.
func TestRegistryRestore(t *testing.T) {
	src := NewRegistry()
	src.Counter("visits").Add(42)
	src.Gauge("workers").Set(8)
	h := src.Histogram("lat", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		h.Observe(v)
	}
	src.Histogram("never", []float64{1}) // registered, zero observations
	snap := src.Snapshot()

	dst := NewRegistry()
	dst.Restore(snap)
	got, err := json.Marshal(dst.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("restore is not a fixed point\n got: %s\nwant: %s", got, want)
	}

	// Observing after restore continues the original stream: min/max
	// fold against the restored extremes, counts accumulate.
	dst.Histogram("lat", []float64{1, 2, 4}).Observe(0.25)
	src.Histogram("lat", []float64{1, 2, 4}).Observe(0.25)
	a := dst.Snapshot().Histograms["lat"]
	b := src.Snapshot().Histograms["lat"]
	if a.Count != b.Count || a.Min != b.Min || a.Max != b.Max || a.Sum != b.Sum {
		t.Fatalf("post-restore observation diverged: %+v vs %+v", a, b)
	}
	// The never-observed histogram restored with clean extremes.
	dst.Histogram("never", []float64{1}).Observe(0.5)
	if s := dst.Snapshot().Histograms["never"]; s.Min != 0.5 || s.Max != 0.5 {
		t.Fatalf("restored empty histogram has polluted extremes: %+v", s)
	}
}
