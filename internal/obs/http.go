package obs

import (
	"net/http"
	"net/http/pprof"
)

// Handler serves the registry snapshot as JSON — an expvar-style
// endpoint for live inspection of a running crawl.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// Handler serves finished spans as JSON lines.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = t.WriteJSONL(w)
	})
}

// NewMux builds the debug mux for a telemetry bundle: /metrics
// (registry JSON), /metrics.txt (terminal rendering), /spans (JSONL),
// /events (decision-event JSONL), and, when withPprof is set, the
// standard net/http/pprof endpoints under /debug/pprof/. The pprof
// handlers are registered explicitly so importing this package never
// pollutes http.DefaultServeMux.
func NewMux(tel *Telemetry, withPprof bool) *http.ServeMux {
	mux := http.NewServeMux()
	mux.Handle("/metrics", tel.Metrics.Handler())
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_, _ = w.Write([]byte(tel.Metrics.RenderText()))
	})
	mux.Handle("/spans", tel.Tracer.Handler())
	mux.HandleFunc("/events", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = tel.Events.WriteJSONL(w)
	})
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Serve starts the debug mux on addr in a background goroutine and
// returns immediately. Errors (e.g. a taken port) are reported on the
// returned channel; the server runs for the life of the process, which
// is the intended scope of a crawl debug endpoint.
func Serve(addr string, tel *Telemetry, withPprof bool) <-chan error {
	errc := make(chan error, 1)
	srv := &http.Server{Addr: addr, Handler: NewMux(tel, withPprof)}
	go func() { errc <- srv.ListenAndServe() }()
	return errc
}
