package obs

import (
	"fmt"
	"net/http"
	"net/http/pprof"
	"sort"
	"strings"
)

// Handler serves the registry snapshot as JSON — an expvar-style
// endpoint for live inspection of a running crawl.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = r.WriteJSON(w)
	})
}

// Handler serves finished spans as JSON lines.
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		_ = t.WriteJSONL(w)
	})
}

// Route is one endpoint on the debug/ops mux. Extras passed to NewMux
// are registered alongside the built-in endpoints and listed on the
// root index page, so subpackages (prom exposition, windowed RED
// views, /statusz) can extend the surface without obs importing them.
type Route struct {
	// Pattern is the mux pattern ("/metrics.prom").
	Pattern string
	// Desc is the one-line description the index page shows.
	Desc string
	// Handler answers the route.
	Handler http.Handler
}

// NewMux builds the debug mux for a telemetry bundle: a root index
// listing every endpoint, /metrics (registry JSON), /metrics.txt
// (terminal rendering), /spans (JSONL), /events (decision-event
// JSONL), /healthz, /readyz, any extra routes, and, when withPprof is
// set, the standard net/http/pprof endpoints under /debug/pprof/. The
// pprof handlers are registered explicitly so importing this package
// never pollutes http.DefaultServeMux.
func NewMux(tel *Telemetry, withPprof bool, extras ...Route) *http.ServeMux {
	routes := []Route{
		{Pattern: "/metrics", Desc: "metrics registry snapshot (JSON)", Handler: tel.Metrics.Handler()},
		{Pattern: "/metrics.txt", Desc: "metrics registry snapshot (terminal rendering)",
			Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				_, _ = w.Write([]byte(tel.Metrics.RenderText()))
			})},
		{Pattern: "/spans", Desc: "finished span trace (JSON lines)", Handler: tel.Tracer.Handler()},
		{Pattern: "/events", Desc: "decision-evidence event log (JSON lines)",
			Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "application/x-ndjson")
				_ = tel.Events.WriteJSONL(w)
			})},
		{Pattern: "/healthz", Desc: "liveness probe (always 200 while the process serves)",
			Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				fmt.Fprintln(w, "ok")
			})},
		{Pattern: "/readyz", Desc: "readiness probe (200 once the study is constructed)",
			Handler: http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				w.Header().Set("Content-Type", "text/plain; charset=utf-8")
				if tel.Status.Ready() {
					fmt.Fprintln(w, "ready")
					return
				}
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprintf(w, "not ready: %s\n", tel.Status.State())
			})},
	}
	routes = append(routes, extras...)

	mux := http.NewServeMux()
	for _, r := range routes {
		mux.Handle(r.Pattern, r.Handler)
	}
	if withPprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		routes = append(routes, Route{Pattern: "/debug/pprof/", Desc: "net/http/pprof profiling endpoints"})
	}
	mux.Handle("/", indexHandler(routes))
	return mux
}

// indexHandler serves the root discovery page: every registered
// endpoint with its description, as HTML (or plain text for curl-ish
// clients that don't ask for HTML). Unknown paths still 404.
func indexHandler(routes []Route) http.Handler {
	sorted := append([]Route(nil), routes...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Pattern < sorted[j].Pattern })
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/" {
			http.NotFound(w, r)
			return
		}
		if !WantsHTML(r) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			for _, rt := range sorted {
				fmt.Fprintf(w, "%-16s %s\n", rt.Pattern, rt.Desc)
			}
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		fmt.Fprint(w, "<!DOCTYPE html><html><head><title>canvassing ops plane</title></head><body>")
		fmt.Fprint(w, "<h1>canvassing ops plane</h1><ul>")
		for _, rt := range sorted {
			fmt.Fprintf(w, `<li><a href="%s"><code>%s</code></a> — %s</li>`, rt.Pattern, rt.Pattern, rt.Desc)
		}
		fmt.Fprint(w, "</ul></body></html>")
	})
}

// WantsHTML sniffs the Accept header (browsers ask for text/html;
// curl and probes do not). Exported for subpackage handlers that offer
// the same dual rendering.
func WantsHTML(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/html")
}
