package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one finished span. Records form a forest: a span
// started from the tracer is a root phase; a span started from
// another span is its child.
type SpanRecord struct {
	ID       int64             `json:"id"`
	ParentID int64             `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Labels   map[string]string `json:"labels,omitempty"`
	Start    time.Time         `json:"start"`
	// Duration is the wall time between Start() and End().
	Duration time.Duration `json:"duration_ns"`
}

// Span is an in-flight trace region. End it exactly once; child spans
// started from it nest under it in the exported records.
type Span struct {
	tr     *Tracer
	id     int64
	parent int64
	name   string
	labels map[string]string
	start  time.Time
	ended  atomic.Bool
}

// SpanObserver receives span lifecycle notifications — the hook that
// feeds the live phase ledger (obs.Status) without the tracer knowing
// about it. root is true for spans started directly from the tracer
// (pipeline phases). Callbacks run outside the tracer's lock but may
// be invoked concurrently; implementations synchronize themselves.
type SpanObserver interface {
	SpanStarted(name string, root bool)
	SpanEnded(name string, root bool, d time.Duration)
}

// Tracer collects spans. It is safe for concurrent use. Finished
// spans accumulate in memory: a study's pipeline phases number in the
// tens (per-visit span trees live in internal/obs/tracez's bounded
// reservoir, never here), but a long-running service that opens phase
// spans forever should either bound the buffer with SetRetention or
// periodically Drain it.
type Tracer struct {
	// Observer, when non-nil, is notified as spans start and end. Set
	// it before the first span starts (NewTelemetry does); it must not
	// be mutated afterwards.
	Observer SpanObserver

	mu      sync.Mutex
	nextID  int64
	done    []SpanRecord
	limit   int    // max retained finished spans; 0 = unbounded
	dropped uint64 // finished spans discarded by the retention bound
	active  map[int64]*Span
	now     func() time.Time // test seam
}

// NewTracer returns an empty tracer.
func NewTracer() *Tracer {
	return &Tracer{now: time.Now, active: map[int64]*Span{}}
}

// Start opens a root span (a pipeline phase). Labels are alternating
// key/value pairs; a trailing odd key is dropped.
func (t *Tracer) Start(name string, labels ...string) *Span {
	return t.start(0, name, labels)
}

func (t *Tracer) start(parent int64, name string, labels []string) *Span {
	sp := &Span{
		tr:     t,
		parent: parent,
		name:   name,
		labels: labelMap(labels),
	}
	t.mu.Lock()
	t.nextID++
	sp.id = t.nextID
	sp.start = t.now()
	t.active[sp.id] = sp
	t.mu.Unlock()
	if t.Observer != nil {
		t.Observer.SpanStarted(name, parent == 0)
	}
	return sp
}

func labelMap(kv []string) map[string]string {
	if len(kv) < 2 {
		return nil
	}
	m := make(map[string]string, len(kv)/2)
	for i := 0; i+1 < len(kv); i += 2 {
		m[kv[i]] = kv[i+1]
	}
	return m
}

// StartChild opens a span nested under sp.
func (sp *Span) StartChild(name string, labels ...string) *Span {
	return sp.tr.start(sp.id, name, labels)
}

// SetLabel attaches or overwrites one label on an un-ended span.
func (sp *Span) SetLabel(k, v string) {
	if sp.labels == nil {
		sp.labels = map[string]string{}
	}
	sp.labels[k] = v
}

// End closes the span and files its record. It returns the span's
// wall duration; second and later calls are no-ops returning 0.
func (sp *Span) End() time.Duration {
	if !sp.ended.CompareAndSwap(false, true) {
		return 0
	}
	t := sp.tr
	t.mu.Lock()
	d := t.now().Sub(sp.start)
	t.done = append(t.done, SpanRecord{
		ID:       sp.id,
		ParentID: sp.parent,
		Name:     sp.name,
		Labels:   sp.labels,
		Start:    sp.start,
		Duration: d,
	})
	if t.limit > 0 && len(t.done) > t.limit {
		over := len(t.done) - t.limit
		t.dropped += uint64(over)
		t.done = append(t.done[:0], t.done[over:]...)
	}
	delete(t.active, sp.id)
	t.mu.Unlock()
	if t.Observer != nil {
		t.Observer.SpanEnded(sp.name, sp.parent == 0, d)
	}
	return d
}

// Active returns the spans started but not yet ended, in start order,
// with Duration set to the time elapsed so far. A span still listed
// here after its phase finished is a leak: it would otherwise silently
// vanish from Records and the JSONL export.
func (t *Tracer) Active() []SpanRecord {
	t.mu.Lock()
	now := t.now()
	out := make([]SpanRecord, 0, len(t.active))
	for _, sp := range t.active {
		out = append(out, SpanRecord{
			ID:       sp.id,
			ParentID: sp.parent,
			Name:     sp.name,
			Labels:   sp.labels,
			Start:    sp.start,
			Duration: now.Sub(sp.start),
		})
	}
	t.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Records returns a copy of all finished spans in end order.
func (t *Tracer) Records() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.done))
	copy(out, t.done)
	return out
}

// SetRetention bounds the finished-span buffer to the most recent n
// records; older records are discarded oldest-first as new spans end
// and counted in DroppedSpans. n <= 0 restores unbounded retention.
// An already-oversized buffer is trimmed immediately.
func (t *Tracer) SetRetention(n int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if n <= 0 {
		t.limit = 0
		return
	}
	t.limit = n
	if over := len(t.done) - n; over > 0 {
		t.dropped += uint64(over)
		t.done = append(t.done[:0], t.done[over:]...)
	}
}

// DroppedSpans reports how many finished spans the retention bound has
// discarded since the tracer was created.
func (t *Tracer) DroppedSpans() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Drain returns all finished spans in end order and removes them from
// the tracer, so a long-running process can ship spans elsewhere
// (export, aggregation) without the buffer growing forever. In-flight
// spans are untouched and will land in the next Drain.
func (t *Tracer) Drain() []SpanRecord {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := t.done
	t.done = nil
	return out
}

// WriteJSONL writes one JSON object per finished span, in end order —
// the trace export format (-trace flag).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, r := range t.Records() {
		if err := enc.Encode(r); err != nil {
			return err
		}
	}
	return nil
}

// Phase is one aggregated root-span name in a phase summary.
type Phase struct {
	Name  string
	Count int
	Total time.Duration
	// Children aggregates nested spans by name, depth-first.
	Children []Phase
}

// PhaseSummary aggregates finished spans by name into a forest ordered
// by first start time: each root phase with its total wall time, call
// count, and aggregated children. This is what the phase-timing table
// renders.
func (t *Tracer) PhaseSummary() []Phase {
	recs := t.Records()
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Start.Before(recs[j].Start) })
	children := map[int64][]SpanRecord{}
	for _, r := range recs {
		children[r.ParentID] = append(children[r.ParentID], r)
	}
	idName := map[int64]string{}
	for _, r := range recs {
		idName[r.ID] = r.Name
	}
	var build func(parentIDs []int64) []Phase
	build = func(parentIDs []int64) []Phase {
		// Aggregate all children of the given parents by span name,
		// keeping first-start order.
		var order []string
		agg := map[string]*Phase{}
		ids := map[string][]int64{}
		for _, pid := range parentIDs {
			for _, r := range children[pid] {
				p := agg[r.Name]
				if p == nil {
					p = &Phase{Name: r.Name}
					agg[r.Name] = p
					order = append(order, r.Name)
				}
				p.Count++
				p.Total += r.Duration
				ids[r.Name] = append(ids[r.Name], r.ID)
			}
		}
		out := make([]Phase, 0, len(order))
		for _, name := range order {
			p := agg[name]
			p.Children = build(ids[name])
			out = append(out, *p)
		}
		return out
	}
	return build([]int64{0})
}

// TotalWall sums root-phase durations — the pipeline's instrumented
// wall time (phases that ran concurrently count separately).
func (t *Tracer) TotalWall() time.Duration {
	var total time.Duration
	for _, r := range t.Records() {
		if r.ParentID == 0 {
			total += r.Duration
		}
	}
	return total
}

// RenderPhases formats the phase summary as an indented two-column
// listing with per-phase share of total root wall time.
func (t *Tracer) RenderPhases() string {
	phases := t.PhaseSummary()
	total := t.TotalWall()
	var sb strings.Builder
	var walk func(ps []Phase, depth int)
	walk = func(ps []Phase, depth int) {
		for _, p := range ps {
			name := strings.Repeat("  ", depth) + p.Name
			share := ""
			if depth == 0 && total > 0 {
				share = fmt.Sprintf("  %5.1f%%", 100*float64(p.Total)/float64(total))
			}
			fmt.Fprintf(&sb, "%-28s %12s%s\n", name, p.Total.Round(time.Microsecond), share)
			walk(p.Children, depth+1)
		}
	}
	walk(phases, 0)
	return sb.String()
}
