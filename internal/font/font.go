// Package font implements the embedded stroke font used by the canvas
// layer: CSS-ish font-string parsing, glyph layout, and text measurement.
//
// Real canvas fingerprinting leans on the enormous diversity of installed
// fonts and text rasterizers. Here that diversity is modeled in two ways:
// glyph skeletons are deterministic, and the *family* requested by the
// draw call perturbs widths and slants slightly (as two real fonts would),
// while per-machine rendering perturbation is layered on top by the canvas
// package using machine profiles.
package font

import (
	"math"
	"strconv"
	"strings"
	"sync"

	"canvassing/internal/geom"
	"canvassing/internal/stats"
)

// unitsPerEm relates glyph-grid units to font pixels: a glyph grid spans
// 18 units from descender (-4) to cap (14); we map size px to 20 units so
// a 20px font has a 14px cap height, close to common latin fonts.
const unitsPerEm = 20.0

// Font is a parsed canvas font specification.
type Font struct {
	SizePx float64
	Family string
	Bold   bool
	Italic bool
}

// DefaultFont is the Canvas default "10px sans-serif".
func DefaultFont() Font { return Font{SizePx: 10, Family: "sans-serif"} }

// ParseFont parses a CSS-like canvas font string: optional "italic" and
// "bold"/numeric weight tokens, a size with px or pt units, then the
// family (possibly quoted, possibly multi-word). It reports whether the
// string was well-formed; on failure the default font is returned,
// matching browsers which ignore invalid assignments to ctx.font.
func ParseFont(s string) (Font, bool) {
	f := DefaultFont()
	fields := strings.Fields(strings.TrimSpace(s))
	if len(fields) == 0 {
		return f, false
	}
	i := 0
	for i < len(fields) {
		tok := strings.ToLower(fields[i])
		switch {
		case tok == "italic" || tok == "oblique":
			f.Italic = true
			i++
		case tok == "bold" || tok == "bolder":
			f.Bold = true
			i++
		case tok == "normal":
			i++
		case isNumericWeight(tok):
			if w, _ := strconv.Atoi(tok); w >= 600 {
				f.Bold = true
			}
			i++
		default:
			goto size
		}
	}
size:
	if i >= len(fields) {
		return DefaultFont(), false
	}
	sz, ok := parseSize(fields[i])
	if !ok {
		return DefaultFont(), false
	}
	f.SizePx = sz
	i++
	if i >= len(fields) {
		return DefaultFont(), false
	}
	fam := strings.Join(fields[i:], " ")
	fam = strings.Trim(fam, `'"`)
	// Multi-family lists: first family wins (we "have" every font).
	if idx := strings.IndexByte(fam, ','); idx >= 0 {
		fam = strings.Trim(strings.TrimSpace(fam[:idx]), `'"`)
	}
	if fam == "" {
		return DefaultFont(), false
	}
	f.Family = fam
	return f, true
}

func isNumericWeight(s string) bool {
	if len(s) != 3 {
		return false
	}
	n, err := strconv.Atoi(s)
	return err == nil && n >= 100 && n <= 900 && n%100 == 0
}

func parseSize(s string) (float64, bool) {
	switch {
	case strings.HasSuffix(s, "px"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "px"), 64)
		return v, err == nil && v > 0
	case strings.HasSuffix(s, "pt"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "pt"), 64)
		return v * 4 / 3, err == nil && v > 0
	case strings.HasSuffix(s, "em"):
		v, err := strconv.ParseFloat(strings.TrimSuffix(s, "em"), 64)
		return v * 16, err == nil && v > 0
	}
	return 0, false
}

// Glyph is one laid-out glyph: its rune, stroke polylines positioned in
// user space (y grows DOWN, matching canvas device coordinates), the pen
// advance it consumed, and whether it is an emoji (color glyph).
type Glyph struct {
	Rune    rune
	Strokes [][]geom.Point
	Advance float64
	Emoji   bool
}

// parsedGlyph is the decoded, cached form of a glyphData entry.
type parsedGlyph struct {
	adv     float64
	strokes [][]geom.Point // grid units, y-up
}

var (
	glyphCacheMu sync.RWMutex
	glyphCache   = make(map[rune]*parsedGlyph)
)

func lookupGlyph(r rune) *parsedGlyph {
	glyphCacheMu.RLock()
	g, ok := glyphCache[r]
	glyphCacheMu.RUnlock()
	if ok {
		return g
	}
	src, ok := glyphData[r]
	if !ok {
		src = notdefGlyph
	}
	g = parseGlyphSource(src)
	glyphCacheMu.Lock()
	glyphCache[r] = g
	glyphCacheMu.Unlock()
	return g
}

func parseGlyphSource(src string) *parsedGlyph {
	colon := strings.IndexByte(src, ':')
	adv, _ := strconv.ParseFloat(src[:colon], 64)
	g := &parsedGlyph{adv: adv}
	body := src[colon+1:]
	if body == "" {
		return g
	}
	for _, poly := range strings.Split(body, ";") {
		var pts []geom.Point
		for _, pair := range strings.Fields(poly) {
			comma := strings.IndexByte(pair, ',')
			x, _ := strconv.ParseFloat(pair[:comma], 64)
			y, _ := strconv.ParseFloat(pair[comma+1:], 64)
			pts = append(pts, geom.Point{X: x, Y: y})
		}
		if len(pts) >= 2 {
			g.strokes = append(g.strokes, pts)
		}
	}
	return g
}

// FamilyMetrics captures how a requested font family perturbs rendering
// relative to the base design, standing in for real inter-font diversity.
type FamilyMetrics struct {
	WidthFactor float64 // advance-width multiplier, ~0.93..1.07
	SlantRad    float64 // inherent slant, tiny for most families
	WeightBoost float64 // extra stroke weight fraction
}

// Metrics returns the deterministic metrics for a family name.
// Identical names always map to identical metrics; the canonical
// "sans-serif" default is the neutral reference.
func Metrics(family string) FamilyMetrics {
	fam := strings.ToLower(strings.TrimSpace(family))
	if fam == "sans-serif" || fam == "" {
		return FamilyMetrics{WidthFactor: 1}
	}
	h := stats.HashString("font-family:" + fam)
	m := FamilyMetrics{
		WidthFactor: 0.93 + float64(h%1400)/10000.0,       // 0.93 .. 1.07
		SlantRad:    (float64((h>>16)%100) - 50) / 5000.0, // ±0.01 rad
		WeightBoost: float64((h>>32)%20) / 100.0,          // 0 .. 0.19
	}
	if strings.Contains(fam, "mono") || strings.Contains(fam, "courier") {
		m.WidthFactor = 1.1 // monospace reads wider in this design
	}
	if strings.Contains(fam, "serif") && !strings.Contains(fam, "sans") {
		m.WeightBoost += 0.05
	}
	return m
}

// LineWidth returns the stroke width used to draw text of this font.
func LineWidth(f Font) float64 {
	w := math.Max(0.8, f.SizePx/14)
	if f.Bold {
		w *= 1.6
	}
	return w * (1 + Metrics(f.Family).WeightBoost)
}

// Layout positions the glyphs of text starting at pen position (x, y) in
// user space, where y is the text BASELINE and the y axis grows down
// (canvas convention). It returns the laid-out glyphs and the total
// advance width.
func Layout(text string, f Font, x, y float64) ([]Glyph, float64) {
	scale := f.SizePx / unitsPerEm
	fm := Metrics(f.Family)
	slant := fm.SlantRad
	if f.Italic {
		slant += 0.21
	}
	pen := x
	var out []Glyph
	for _, r := range text {
		if isEmoji(r) {
			g := emojiGlyph(r, scale, pen, y)
			out = append(out, g)
			pen += g.Advance
			continue
		}
		pg := lookupGlyph(r)
		adv := pg.adv * scale * fm.WidthFactor
		g := Glyph{Rune: r, Advance: adv}
		for _, poly := range pg.strokes {
			pts := make([]geom.Point, len(poly))
			for i, p := range poly {
				// Flip y (grid is y-up), apply slant shear then pen offset.
				gy := -p.Y * scale
				gx := p.X*scale*fm.WidthFactor - gy*slant
				pts[i] = geom.Point{X: pen + gx, Y: y + gy}
			}
			g.Strokes = append(g.Strokes, pts)
		}
		out = append(out, g)
		pen += adv
	}
	return out, pen - x
}

// Measure returns the advance width of text in f, matching
// ctx.measureText().width.
func Measure(text string, f Font) float64 {
	scale := f.SizePx / unitsPerEm
	fm := Metrics(f.Family)
	w := 0.0
	for _, r := range text {
		if isEmoji(r) {
			w += emojiAdvance * scale
			continue
		}
		w += lookupGlyph(r).adv * scale * fm.WidthFactor
	}
	return w
}

// Ascent returns the distance from baseline to the top of capitals.
func Ascent(f Font) float64 { return 14 * f.SizePx / unitsPerEm }

// Descent returns the distance from baseline to the lowest descender.
func Descent(f Font) float64 { return 4 * f.SizePx / unitsPerEm }

const emojiAdvance = 18.0

// isEmoji reports whether the rune is rendered as a color emoji glyph.
// The ranges cover the emoticon and misc-symbol blocks that fingerprint
// scripts commonly draw (e.g. U+1F603 in FingerprintJS's canvas).
func isEmoji(r rune) bool {
	switch {
	case r >= 0x1F300 && r <= 0x1FAFF:
		return true
	case r >= 0x2600 && r <= 0x27BF:
		return true
	case r == 0x263A || r == 0x2764:
		return true
	}
	return false
}

// emojiGlyph builds the color-emoji placeholder: a face outline with
// rune-dependent features, so distinct emoji produce distinct pixels.
// The canvas layer detects Emoji glyphs and fills rather than strokes the
// first (face) polyline.
func emojiGlyph(r rune, scale, pen, baseline float64) Glyph {
	radius := emojiAdvance / 2 * scale * 0.9
	cx := pen + emojiAdvance/2*scale
	cy := baseline - 7*scale // optical center above baseline

	// Face circle (32-gon).
	face := make([]geom.Point, 0, 32)
	for i := 0; i < 32; i++ {
		a := 2 * math.Pi * float64(i) / 32
		s, c := math.Sincos(a)
		face = append(face, geom.Point{X: cx + radius*c, Y: cy + radius*s})
	}
	// Eyes.
	eyeDY := -radius * 0.3
	eyeDX := radius * 0.35
	eyeR := radius * (0.10 + float64(uint32(r)%5)*0.02)
	mkEye := func(ex float64) []geom.Point {
		pts := make([]geom.Point, 0, 8)
		for i := 0; i < 8; i++ {
			a := 2 * math.Pi * float64(i) / 8
			s, c := math.Sincos(a)
			pts = append(pts, geom.Point{X: ex + eyeR*c, Y: cy + eyeDY + eyeR*s})
		}
		return pts
	}
	// Mouth arc: curvature varies by rune so 😀 and 😜 differ.
	mouth := make([]geom.Point, 0, 9)
	curve := 0.3 + float64(uint32(r)%7)*0.06
	for i := 0; i <= 8; i++ {
		t := float64(i)/8*2 - 1 // -1..1
		mouth = append(mouth, geom.Point{
			X: cx + t*radius*0.55,
			Y: cy + radius*0.35 + (1-t*t)*radius*curve*0.5,
		})
	}
	return Glyph{
		Rune:    r,
		Emoji:   true,
		Advance: emojiAdvance * scale,
		Strokes: [][]geom.Point{face, mkEye(cx - eyeDX), mkEye(cx + eyeDX), mouth},
	}
}
