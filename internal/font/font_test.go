package font

import (
	"testing"
	"testing/quick"
)

func TestParseFontBasic(t *testing.T) {
	f, ok := ParseFont("16px Arial")
	if !ok || f.SizePx != 16 || f.Family != "Arial" || f.Bold || f.Italic {
		t.Fatalf("parse: %+v ok=%v", f, ok)
	}
}

func TestParseFontPt(t *testing.T) {
	f, ok := ParseFont("11pt no-real-font-123")
	if !ok {
		t.Fatal("should parse")
	}
	want := 11.0 * 4 / 3
	if f.SizePx < want-0.01 || f.SizePx > want+0.01 {
		t.Fatalf("pt conversion: %v", f.SizePx)
	}
	if f.Family != "no-real-font-123" {
		t.Fatalf("family: %q", f.Family)
	}
}

func TestParseFontStyleWeight(t *testing.T) {
	f, ok := ParseFont("italic bold 20px Georgia")
	if !ok || !f.Italic || !f.Bold || f.SizePx != 20 {
		t.Fatalf("%+v", f)
	}
	f, ok = ParseFont("700 14px Verdana")
	if !ok || !f.Bold {
		t.Fatalf("numeric weight: %+v", f)
	}
	f, ok = ParseFont("300 14px Verdana")
	if !ok || f.Bold {
		t.Fatalf("light weight should not be bold: %+v", f)
	}
}

func TestParseFontQuotedFamily(t *testing.T) {
	f, ok := ParseFont(`18px 'Courier New'`)
	if !ok || f.Family != "Courier New" {
		t.Fatalf("%+v ok=%v", f, ok)
	}
	f, ok = ParseFont(`18px "Times New Roman", serif`)
	if !ok || f.Family != "Times New Roman" {
		t.Fatalf("family list: %+v", f)
	}
}

func TestParseFontInvalid(t *testing.T) {
	for _, bad := range []string{"", "Arial", "px Arial", "0px Arial", "-5px Arial", "16px"} {
		if _, ok := ParseFont(bad); ok {
			t.Fatalf("%q should not parse", bad)
		}
	}
}

func TestParseFontEm(t *testing.T) {
	f, ok := ParseFont("2em serif")
	if !ok || f.SizePx != 32 {
		t.Fatalf("em: %+v", f)
	}
}

func TestMeasurePositive(t *testing.T) {
	f := Font{SizePx: 16, Family: "Arial"}
	w := Measure("Hello, world!", f)
	if w <= 0 {
		t.Fatal("width must be positive")
	}
	if Measure("", f) != 0 {
		t.Fatal("empty string measures 0")
	}
	if Measure("iii", f) >= Measure("WWW", f) {
		t.Fatal("narrow glyphs should measure less than wide ones")
	}
}

func TestMeasureScalesWithSize(t *testing.T) {
	small := Measure("abc", Font{SizePx: 10, Family: "x"})
	big := Measure("abc", Font{SizePx: 20, Family: "x"})
	if big < small*1.99 || big > small*2.01 {
		t.Fatalf("measure should scale linearly: %v vs %v", small, big)
	}
}

func TestFamilyChangesMetrics(t *testing.T) {
	a := Measure("fingerprint", Font{SizePx: 16, Family: "Arial"})
	b := Measure("fingerprint", Font{SizePx: 16, Family: "Georgia"})
	if a == b {
		t.Fatal("different families should measure differently")
	}
	// Same family always identical.
	if a != Measure("fingerprint", Font{SizePx: 16, Family: "Arial"}) {
		t.Fatal("same family must be deterministic")
	}
}

func TestMetricsNeutralDefault(t *testing.T) {
	m := Metrics("sans-serif")
	if m.WidthFactor != 1 || m.SlantRad != 0 || m.WeightBoost != 0 {
		t.Fatalf("default family should be neutral: %+v", m)
	}
	m2 := Metrics("  SANS-SERIF ")
	if m2 != m {
		t.Fatal("family normalization")
	}
}

func TestMetricsRanges(t *testing.T) {
	f := func(fam string) bool {
		m := Metrics(fam)
		return m.WidthFactor > 0.5 && m.WidthFactor < 1.5 &&
			m.SlantRad > -0.1 && m.SlantRad < 0.1 &&
			m.WeightBoost >= 0 && m.WeightBoost < 0.5
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLayoutAdvances(t *testing.T) {
	glyphs, width := Layout("AB", Font{SizePx: 20, Family: "sans-serif"}, 10, 50)
	if len(glyphs) != 2 {
		t.Fatalf("glyph count = %d", len(glyphs))
	}
	if width <= 0 {
		t.Fatal("layout width")
	}
	// Second glyph should start right of the first.
	if len(glyphs[0].Strokes) == 0 || len(glyphs[1].Strokes) == 0 {
		t.Fatal("letters should have strokes")
	}
	maxX0 := 0.0
	for _, s := range glyphs[0].Strokes {
		for _, p := range s {
			if p.X > maxX0 {
				maxX0 = p.X
			}
		}
	}
	minX1 := 1e9
	for _, s := range glyphs[1].Strokes {
		for _, p := range s {
			if p.X < minX1 {
				minX1 = p.X
			}
		}
	}
	if minX1 <= maxX0-1 {
		t.Fatalf("glyphs overlap badly: %v vs %v", maxX0, minX1)
	}
}

func TestLayoutBaseline(t *testing.T) {
	glyphs, _ := Layout("A", Font{SizePx: 20, Family: "sans-serif"}, 0, 100)
	for _, s := range glyphs[0].Strokes {
		for _, p := range s {
			if p.Y > 100.001 {
				t.Fatalf("capital A should sit on the baseline, got y=%v", p.Y)
			}
			if p.Y < 100-15 {
				t.Fatalf("A exceeds cap height: y=%v", p.Y)
			}
		}
	}
	// Descender letter dips below baseline.
	glyphs, _ = Layout("g", Font{SizePx: 20, Family: "sans-serif"}, 0, 100)
	below := false
	for _, s := range glyphs[0].Strokes {
		for _, p := range s {
			if p.Y > 100.5 {
				below = true
			}
		}
	}
	if !below {
		t.Fatal("g should descend below the baseline")
	}
}

func TestLayoutSpace(t *testing.T) {
	glyphs, width := Layout(" ", Font{SizePx: 16, Family: "sans-serif"}, 0, 0)
	if len(glyphs) != 1 || len(glyphs[0].Strokes) != 0 {
		t.Fatal("space should lay out with no strokes")
	}
	if width <= 0 {
		t.Fatal("space should advance")
	}
}

func TestNotdefFallback(t *testing.T) {
	glyphs, _ := Layout("ف", Font{SizePx: 16, Family: "x"}, 0, 0) // Arabic letter, uncovered
	if len(glyphs) != 1 || len(glyphs[0].Strokes) == 0 {
		t.Fatal("uncovered rune should render the notdef box")
	}
}

func TestEmojiGlyph(t *testing.T) {
	glyphs, _ := Layout("\U0001F603", Font{SizePx: 20, Family: "x"}, 0, 50)
	if len(glyphs) != 1 || !glyphs[0].Emoji {
		t.Fatal("emoji should be flagged")
	}
	if len(glyphs[0].Strokes) < 4 {
		t.Fatal("emoji should have face, eyes and mouth")
	}
	// Two different emoji render differently.
	a, _ := Layout("\U0001F603", Font{SizePx: 20, Family: "x"}, 0, 50)
	b, _ := Layout("\U0001F61C", Font{SizePx: 20, Family: "x"}, 0, 50)
	same := true
	for i := range a[0].Strokes {
		if len(a[0].Strokes[i]) != len(b[0].Strokes[i]) {
			same = false
			break
		}
		for j := range a[0].Strokes[i] {
			if a[0].Strokes[i][j] != b[0].Strokes[i][j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("distinct emoji must produce distinct geometry")
	}
}

func TestItalicSlants(t *testing.T) {
	up, _ := Layout("l", Font{SizePx: 40, Family: "sans-serif"}, 0, 100)
	it, _ := Layout("l", Font{SizePx: 40, Family: "sans-serif", Italic: true}, 0, 100)
	// The top of an italic 'l' should lean right of the upright one.
	topUp := up[0].Strokes[0][1]
	topIt := it[0].Strokes[0][1]
	if topIt.X <= topUp.X {
		t.Fatalf("italic should slant right: %v vs %v", topIt.X, topUp.X)
	}
}

func TestLineWidth(t *testing.T) {
	normal := LineWidth(Font{SizePx: 16, Family: "sans-serif"})
	bold := LineWidth(Font{SizePx: 16, Family: "sans-serif", Bold: true})
	if bold <= normal {
		t.Fatal("bold should be heavier")
	}
	tiny := LineWidth(Font{SizePx: 1, Family: "sans-serif"})
	if tiny < 0.8 {
		t.Fatal("line width should be floored")
	}
}

func TestAscentDescent(t *testing.T) {
	f := Font{SizePx: 20, Family: "x"}
	if Ascent(f) != 14 || Descent(f) != 4 {
		t.Fatalf("ascent=%v descent=%v", Ascent(f), Descent(f))
	}
}

func TestAllASCIIGlyphsPresent(t *testing.T) {
	for r := rune(32); r < 127; r++ {
		if _, ok := glyphData[r]; !ok {
			t.Fatalf("missing glyph for %q", r)
		}
	}
}

func TestGlyphDataParses(t *testing.T) {
	for r := range glyphData {
		g := lookupGlyph(r)
		if g.adv <= 0 {
			t.Fatalf("glyph %q has non-positive advance", r)
		}
		for _, s := range g.strokes {
			if len(s) < 2 {
				t.Fatalf("glyph %q has degenerate stroke", r)
			}
			for _, p := range s {
				if p.X < 0 || p.X > 12 || p.Y < -4 || p.Y > 14 {
					t.Fatalf("glyph %q point %v outside grid", r, p)
				}
			}
		}
	}
}

// Property: Measure is additive over concatenation.
func TestMeasureAdditiveProperty(t *testing.T) {
	f := func(a, b string) bool {
		ft := Font{SizePx: 16, Family: "Arial"}
		sum := Measure(a, ft) + Measure(b, ft)
		got := Measure(a+b, ft)
		diff := sum - got
		if diff < 0 {
			diff = -diff
		}
		return diff < 1e-9*(1+sum)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkLayoutPangram(b *testing.B) {
	f := Font{SizePx: 16, Family: "Arial"}
	for i := 0; i < b.N; i++ {
		Layout("Cwm fjordbank glyphs vext quiz, \U0001F603", f, 2, 15)
	}
}
