package canvas

import (
	"strconv"
	"strings"

	"canvassing/internal/raster"
)

// namedColors is the subset of CSS named colors that appear in real
// fingerprinting scripts and common page scripts.
var namedColors = map[string]raster.RGBA{
	"black":       {R: 0, G: 0, B: 0, A: 255},
	"white":       {R: 255, G: 255, B: 255, A: 255},
	"red":         {R: 255, G: 0, B: 0, A: 255},
	"green":       {R: 0, G: 128, B: 0, A: 255},
	"lime":        {R: 0, G: 255, B: 0, A: 255},
	"blue":        {R: 0, G: 0, B: 255, A: 255},
	"yellow":      {R: 255, G: 255, B: 0, A: 255},
	"orange":      {R: 255, G: 165, B: 0, A: 255},
	"purple":      {R: 128, G: 0, B: 128, A: 255},
	"magenta":     {R: 255, G: 0, B: 255, A: 255},
	"fuchsia":     {R: 255, G: 0, B: 255, A: 255},
	"cyan":        {R: 0, G: 255, B: 255, A: 255},
	"aqua":        {R: 0, G: 255, B: 255, A: 255},
	"gray":        {R: 128, G: 128, B: 128, A: 255},
	"grey":        {R: 128, G: 128, B: 128, A: 255},
	"silver":      {R: 192, G: 192, B: 192, A: 255},
	"maroon":      {R: 128, G: 0, B: 0, A: 255},
	"navy":        {R: 0, G: 0, B: 128, A: 255},
	"teal":        {R: 0, G: 128, B: 128, A: 255},
	"olive":       {R: 128, G: 128, B: 0, A: 255},
	"pink":        {R: 255, G: 192, B: 203, A: 255},
	"gold":        {R: 255, G: 215, B: 0, A: 255},
	"tomato":      {R: 255, G: 99, B: 71, A: 255},
	"orchid":      {R: 218, G: 112, B: 214, A: 255},
	"coral":       {R: 255, G: 127, B: 80, A: 255},
	"salmon":      {R: 250, G: 128, B: 114, A: 255},
	"khaki":       {R: 240, G: 230, B: 140, A: 255},
	"indigo":      {R: 75, G: 0, B: 130, A: 255},
	"violet":      {R: 238, G: 130, B: 238, A: 255},
	"brown":       {R: 165, G: 42, B: 42, A: 255},
	"transparent": {},
}

// ParseColor parses a CSS color string: named colors, #rgb, #rgba,
// #rrggbb, #rrggbbaa, rgb(...) and rgba(...). It reports whether the
// string was understood; callers keep the previous style on failure, as
// browsers do for invalid fillStyle assignments.
func ParseColor(s string) (raster.RGBA, bool) {
	s = strings.ToLower(strings.TrimSpace(s))
	if c, ok := namedColors[s]; ok {
		return c, true
	}
	if strings.HasPrefix(s, "#") {
		return parseHexColor(s[1:])
	}
	if strings.HasPrefix(s, "rgb(") && strings.HasSuffix(s, ")") {
		return parseRGBFunc(s[4:len(s)-1], false)
	}
	if strings.HasPrefix(s, "rgba(") && strings.HasSuffix(s, ")") {
		return parseRGBFunc(s[5:len(s)-1], true)
	}
	if strings.HasPrefix(s, "hsl(") && strings.HasSuffix(s, ")") {
		return parseHSLFunc(s[4 : len(s)-1])
	}
	return raster.RGBA{}, false
}

func parseHexColor(h string) (raster.RGBA, bool) {
	nib := func(c byte) (uint8, bool) {
		switch {
		case c >= '0' && c <= '9':
			return c - '0', true
		case c >= 'a' && c <= 'f':
			return c - 'a' + 10, true
		}
		return 0, false
	}
	byteAt := func(i int) (uint8, bool) {
		hi, ok1 := nib(h[i])
		lo, ok2 := nib(h[i+1])
		return hi<<4 | lo, ok1 && ok2
	}
	switch len(h) {
	case 3, 4:
		var v [4]uint8
		v[3] = 255
		for i := 0; i < len(h); i++ {
			n, ok := nib(h[i])
			if !ok {
				return raster.RGBA{}, false
			}
			v[i] = n<<4 | n
		}
		return raster.RGBA{R: v[0], G: v[1], B: v[2], A: v[3]}, true
	case 6, 8:
		var v [4]uint8
		v[3] = 255
		for i := 0; i*2 < len(h); i++ {
			b, ok := byteAt(i * 2)
			if !ok {
				return raster.RGBA{}, false
			}
			v[i] = b
		}
		return raster.RGBA{R: v[0], G: v[1], B: v[2], A: v[3]}, true
	}
	return raster.RGBA{}, false
}

func parseRGBFunc(body string, hasAlpha bool) (raster.RGBA, bool) {
	parts := strings.Split(body, ",")
	want := 3
	if hasAlpha {
		want = 4
	}
	// rgb() also tolerates a 4th component in browsers.
	if len(parts) != want && !(len(parts) == 4 && !hasAlpha) {
		return raster.RGBA{}, false
	}
	var ch [3]uint8
	for i := 0; i < 3; i++ {
		v, err := strconv.ParseFloat(strings.TrimSpace(parts[i]), 64)
		if err != nil {
			return raster.RGBA{}, false
		}
		ch[i] = clampChan(v)
	}
	a := uint8(255)
	if len(parts) == 4 {
		av, err := strconv.ParseFloat(strings.TrimSpace(parts[3]), 64)
		if err != nil {
			return raster.RGBA{}, false
		}
		if av < 0 {
			av = 0
		}
		if av > 1 {
			av = 1
		}
		a = uint8(av*255 + 0.5)
	}
	return raster.RGBA{R: ch[0], G: ch[1], B: ch[2], A: a}, true
}

func parseHSLFunc(body string) (raster.RGBA, bool) {
	parts := strings.Split(body, ",")
	if len(parts) != 3 {
		return raster.RGBA{}, false
	}
	h, err1 := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
	sStr := strings.TrimSpace(parts[1])
	lStr := strings.TrimSpace(parts[2])
	if !strings.HasSuffix(sStr, "%") || !strings.HasSuffix(lStr, "%") || err1 != nil {
		return raster.RGBA{}, false
	}
	s, err2 := strconv.ParseFloat(strings.TrimSuffix(sStr, "%"), 64)
	l, err3 := strconv.ParseFloat(strings.TrimSuffix(lStr, "%"), 64)
	if err2 != nil || err3 != nil {
		return raster.RGBA{}, false
	}
	r, g, b := hslToRGB(h, s/100, l/100)
	return raster.RGBA{R: r, G: g, B: b, A: 255}, true
}

func hslToRGB(h, s, l float64) (uint8, uint8, uint8) {
	h = h - 360*float64(int(h/360))
	if h < 0 {
		h += 360
	}
	c := (1 - abs(2*l-1)) * s
	x := c * (1 - abs(mod2(h/60)-1))
	m := l - c/2
	var r, g, b float64
	switch {
	case h < 60:
		r, g, b = c, x, 0
	case h < 120:
		r, g, b = x, c, 0
	case h < 180:
		r, g, b = 0, c, x
	case h < 240:
		r, g, b = 0, x, c
	case h < 300:
		r, g, b = x, 0, c
	default:
		r, g, b = c, 0, x
	}
	return clampChan((r + m) * 255), clampChan((g + m) * 255), clampChan((b + m) * 255)
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

func mod2(v float64) float64 {
	for v >= 2 {
		v -= 2
	}
	for v < 0 {
		v += 2
	}
	return v
}

func clampChan(v float64) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v + 0.5)
}
