package canvas

import (
	"strings"
	"testing"
	"testing/quick"

	"canvassing/internal/imaging"
	"canvassing/internal/machine"
	"canvassing/internal/raster"
)

func TestParseColorHex(t *testing.T) {
	cases := map[string]raster.RGBA{
		"#000":      {A: 255},
		"#fff":      {R: 255, G: 255, B: 255, A: 255},
		"#f00":      {R: 255, A: 255},
		"#ff0000":   {R: 255, A: 255},
		"#00ff007f": {G: 255, A: 127},
		"#1a2b3c":   {R: 0x1a, G: 0x2b, B: 0x3c, A: 255},
	}
	for in, want := range cases {
		got, ok := ParseColor(in)
		if !ok || got != want {
			t.Fatalf("ParseColor(%q) = %v, %v; want %v", in, got, ok, want)
		}
	}
}

func TestParseColorFunctions(t *testing.T) {
	c, ok := ParseColor("rgb(10, 20, 30)")
	if !ok || c != (raster.RGBA{R: 10, G: 20, B: 30, A: 255}) {
		t.Fatalf("rgb: %v %v", c, ok)
	}
	c, ok = ParseColor("rgba(10,20,30,0.5)")
	if !ok || c.A < 126 || c.A > 129 {
		t.Fatalf("rgba alpha: %v", c)
	}
	c, ok = ParseColor("hsl(120, 100%, 50%)")
	if !ok || c.G != 255 || c.R != 0 {
		t.Fatalf("hsl green: %v", c)
	}
	c, ok = ParseColor("ORANGE")
	if !ok || c.R != 255 || c.G != 165 {
		t.Fatalf("named: %v", c)
	}
}

func TestParseColorInvalid(t *testing.T) {
	for _, bad := range []string{"", "#12", "#xyz123", "rgb(1,2)", "rgba(a,b,c,d)", "blurple", "hsl(1,2,3)"} {
		if _, ok := ParseColor(bad); ok {
			t.Fatalf("%q should not parse", bad)
		}
	}
}

func TestDefaultSize(t *testing.T) {
	e := New(nil)
	if e.Width() != 300 || e.Height() != 150 {
		t.Fatal("default canvas must be 300x150")
	}
}

func TestSetWidthResetsBitmap(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#f00")
	ctx.FillRect(0, 0, 50, 50)
	if e.Image().At(10, 10).A == 0 {
		t.Fatal("rect should have painted")
	}
	e.SetWidth(200)
	if e.Image().At(10, 10).A != 0 {
		t.Fatal("setting width must clear the bitmap")
	}
	if e.Image().W != 200 {
		t.Fatal("new width")
	}
	e.SetHeight(-5)
	if e.Image().H != 150 {
		t.Fatal("non-positive height selects default")
	}
}

func TestGetContextKinds(t *testing.T) {
	e := New(nil)
	if e.GetContext("webgl") != nil {
		t.Fatal("only 2d supported")
	}
	a := e.GetContext("2d")
	b := e.GetContext("2D")
	if a == nil || a != b {
		t.Fatal("same context object must be returned")
	}
}

func TestFillRectPixels(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#00ff00")
	ctx.FillRect(10, 10, 20, 20)
	if got := e.Image().At(20, 20); got.G != 255 || got.R != 0 {
		t.Fatalf("interior: %v", got)
	}
	if e.Image().At(5, 5).A != 0 {
		t.Fatal("exterior must be transparent")
	}
}

func TestInvalidStyleKeepsPrevious(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#0000ff")
	ctx.SetFillStyle("not-a-color")
	ctx.FillRect(0, 0, 10, 10)
	if got := e.Image().At(5, 5); got.B != 255 {
		t.Fatalf("invalid style should be ignored: %v", got)
	}
	if ctx.FillStyle() != "#0000ff" {
		t.Fatal("fillStyle getter should report last valid value")
	}
}

func TestTransformAffectsDrawing(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.Translate(100, 0)
	ctx.SetFillStyle("#f00")
	ctx.FillRect(0, 0, 10, 10)
	if e.Image().At(105, 5).R != 255 {
		t.Fatal("translate should shift the rect")
	}
	if e.Image().At(5, 5).A != 0 {
		t.Fatal("origin should be empty")
	}
}

func TestSaveRestore(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#ff0000")
	ctx.Save()
	ctx.SetFillStyle("#0000ff")
	ctx.Translate(50, 0)
	ctx.Restore()
	ctx.FillRect(0, 0, 10, 10)
	got := e.Image().At(5, 5)
	if got.R != 255 || got.B != 0 {
		t.Fatalf("restore should bring back red fill at origin: %v", got)
	}
	// Restore on empty stack is a no-op.
	ctx.Restore()
	ctx.Restore()
}

func TestPathFillTriangle(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.MoveTo(50, 10)
	ctx.LineTo(90, 90)
	ctx.LineTo(10, 90)
	ctx.ClosePath()
	ctx.SetFillStyle("#000")
	ctx.Fill("")
	if e.Image().At(50, 60).A == 0 {
		t.Fatal("triangle interior should fill")
	}
	if e.Image().At(10, 20).A != 0 {
		t.Fatal("triangle exterior should be empty")
	}
}

func TestArcFill(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.Arc(100, 75, 40, 0, 6.2832, false)
	ctx.SetFillStyle("blue")
	ctx.Fill("")
	if e.Image().At(100, 75).B != 255 {
		t.Fatal("circle center")
	}
	if e.Image().At(100, 75-39).B == 0 {
		t.Fatal("near top of circle")
	}
	if e.Image().At(100, 75-45).A != 0 {
		t.Fatal("outside circle")
	}
}

func TestEvenOddFill(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.Rect(10, 10, 80, 80)
	ctx.Rect(30, 30, 40, 40)
	ctx.SetFillStyle("#000")
	ctx.Fill("evenodd")
	if e.Image().At(50, 50).A != 0 {
		t.Fatal("evenodd hole")
	}
	if e.Image().At(15, 50).A == 0 {
		t.Fatal("evenodd ring")
	}
}

func TestStrokePath(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.MoveTo(10, 75)
	ctx.LineTo(200, 75)
	ctx.SetStrokeStyle("#f0f")
	ctx.SetLineWidth(5)
	ctx.Stroke()
	if got := e.Image().At(100, 75); got.R != 255 || got.B != 255 {
		t.Fatalf("stroke center: %v", got)
	}
	if e.Image().At(100, 65).A != 0 {
		t.Fatal("outside stroke width")
	}
}

func TestFillTextPaintsAndMeasures(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFont("16px Arial")
	m := ctx.MeasureText("Hello")
	if m.Width <= 0 {
		t.Fatal("measureText")
	}
	ctx.SetFillStyle("#000")
	ctx.FillText("Hello", 10, 100)
	painted := 0
	for y := 80; y < 105; y++ {
		for x := 10; x < 80; x++ {
			if e.Image().At(x, y).A > 0 {
				painted++
			}
		}
	}
	if painted < 30 {
		t.Fatalf("text should paint a reasonable number of pixels, got %d", painted)
	}
}

func TestTextAlignAndBaseline(t *testing.T) {
	leftmost := func(align, baseline string) (int, int) {
		e := New(nil)
		ctx := e.GetContext("2d")
		ctx.SetFont("20px Arial")
		ctx.SetTextAlign(align)
		ctx.SetTextBaseline(baseline)
		ctx.SetFillStyle("#000")
		ctx.FillText("M", 150, 75)
		minX, minY := 999, 999
		for y := 0; y < 150; y++ {
			for x := 0; x < 300; x++ {
				if e.Image().At(x, y).A > 0 {
					if x < minX {
						minX = x
					}
					if y < minY {
						minY = y
					}
				}
			}
		}
		return minX, minY
	}
	lx, _ := leftmost("left", "alphabetic")
	cx, _ := leftmost("center", "alphabetic")
	rx, _ := leftmost("right", "alphabetic")
	if !(rx < cx && cx < lx) {
		t.Fatalf("align ordering: left=%d center=%d right=%d", lx, cx, rx)
	}
	_, yAlpha := leftmost("left", "alphabetic")
	_, yTop := leftmost("left", "top")
	if yTop <= yAlpha {
		t.Fatalf("top baseline should draw lower: %d vs %d", yTop, yAlpha)
	}
}

func TestEmojiRendersInColor(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFont("30px Arial")
	ctx.SetFillStyle("#000")
	ctx.FillText("\U0001F603", 100, 100)
	yellow := 0
	for y := 0; y < 150; y++ {
		for x := 0; x < 300; x++ {
			px := e.Image().At(x, y)
			if px.R > 200 && px.G > 150 && px.B < 120 && px.A > 0 {
				yellow++
			}
		}
	}
	if yellow < 20 {
		t.Fatalf("emoji face should be yellow, got %d yellow px", yellow)
	}
}

func TestGradientFill(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	g := ctx.CreateLinearGradient(0, 0, 300, 0)
	g.AddColorStop(0, "#000000")
	g.AddColorStop(1, "#ffffff")
	ctx.SetFillGradient(g.Paint())
	ctx.FillRect(0, 0, 300, 150)
	l, r := e.Image().At(10, 75), e.Image().At(290, 75)
	if l.R >= r.R {
		t.Fatalf("gradient should brighten: %v -> %v", l, r)
	}
}

func TestGlobalAlphaAndComposite(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#ffffff")
	ctx.FillRect(0, 0, 300, 150)
	ctx.SetGlobalAlpha(0.5)
	ctx.SetFillStyle("#000000")
	ctx.FillRect(0, 0, 300, 150)
	mid := e.Image().At(150, 75)
	if mid.R < 110 || mid.R > 145 {
		t.Fatalf("half-alpha black over white: %v", mid)
	}
	if ctx.GlobalCompositeOperation() != "source-over" {
		t.Fatal("default op")
	}
	ctx.SetGlobalCompositeOperation("multiply")
	if ctx.GlobalCompositeOperation() != "multiply" {
		t.Fatal("op setter")
	}
	ctx.SetGlobalCompositeOperation("no-such-op")
	if ctx.GlobalCompositeOperation() != "multiply" {
		t.Fatal("invalid op should be ignored")
	}
}

func TestClipRestrictsPainting(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.Rect(50, 50, 40, 40)
	ctx.Clip()
	ctx.SetFillStyle("#f00")
	ctx.FillRect(0, 0, 300, 150)
	if e.Image().At(60, 60).R != 255 {
		t.Fatal("inside clip")
	}
	if e.Image().At(10, 10).A != 0 {
		t.Fatal("outside clip")
	}
}

func TestClearRect(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#00f")
	ctx.FillRect(0, 0, 100, 100)
	ctx.ClearRect(20, 20, 30, 30)
	if e.Image().At(30, 30).A != 0 {
		t.Fatal("cleared region")
	}
	if e.Image().At(10, 10).B != 255 {
		t.Fatal("outside clear untouched")
	}
}

func TestImageDataRoundtrip(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#ff0000")
	ctx.FillRect(0, 0, 10, 10)
	d := ctx.GetImageData(0, 0, 10, 10)
	if d.W != 10 || d.H != 10 || len(d.Pix) != 400 {
		t.Fatal("image data shape")
	}
	if d.Pix[0] != 255 || d.Pix[3] != 255 {
		t.Fatalf("pixel content: %v", d.Pix[:4])
	}
	blank := ctx.CreateImageData(10, 10)
	ctx.PutImageData(blank, 0, 0)
	if e.Image().At(5, 5).A != 0 {
		t.Fatal("putImageData should overwrite without blending")
	}
	if z := ctx.GetImageData(0, 0, 0, 0); z.W != 0 {
		t.Fatal("degenerate getImageData")
	}
}

func TestDrawImageBlit(t *testing.T) {
	src := New(nil)
	sctx := src.GetContext("2d")
	sctx.SetFillStyle("#0f0")
	sctx.FillRect(0, 0, 20, 20)

	dst := New(nil)
	dctx := dst.GetContext("2d")
	dctx.DrawImage(src, 30, 30)
	if dst.Image().At(35, 35).G != 255 {
		t.Fatal("blit should copy pixels")
	}
	dctx.DrawImage(nil, 0, 0) // must not panic
}

func TestToDataURLFormats(t *testing.T) {
	e := New(nil)
	u := e.ToDataURL("", 0)
	if !strings.HasPrefix(u, "data:image/png;base64,") {
		t.Fatalf("default format: %.40s", u)
	}
	if !strings.HasPrefix(e.ToDataURL("image/webp", 0.9), "data:image/webp;base64,") {
		t.Fatal("webp")
	}
	if !strings.HasPrefix(e.ToDataURL("image/jpeg", 0.5), "data:image/jpeg;base64,") {
		t.Fatal("jpeg")
	}
}

func TestDeterministicFingerprint(t *testing.T) {
	render := func(p *machine.Profile) string {
		e := New(p)
		ctx := e.GetContext("2d")
		ctx.SetFillStyle("#f60")
		ctx.FillRect(125, 1, 62, 20)
		ctx.SetFillStyle("#069")
		ctx.SetFont("11pt Arial")
		ctx.FillText("Cwm fjordbank glyphs vext quiz, \U0001F603", 2, 15)
		ctx.SetGlobalCompositeOperation("multiply")
		ctx.SetFillStyle("rgb(255,0,255)")
		ctx.BeginPath()
		ctx.Arc(50, 50, 50, 0, 6.2832, false)
		ctx.Fill("")
		return e.ToDataURL("", 0)
	}
	intel1 := render(machine.Intel())
	intel2 := render(machine.Intel())
	if intel1 != intel2 {
		t.Fatal("same machine must produce identical canvases")
	}
	m1 := render(machine.AppleM1())
	if m1 == intel1 {
		t.Fatal("different machines must produce different canvases")
	}
	m1again := render(machine.AppleM1())
	if m1 != m1again {
		t.Fatal("M1 rendering must also be deterministic")
	}
}

func TestExtractHookApplies(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#123456")
	ctx.FillRect(0, 0, 300, 150)
	base := e.ToDataURL("", 0)
	e.SetExtractHook(func(img *raster.Image) *raster.Image {
		out := img.Clone()
		out.Set(0, 0, raster.RGBA{R: 1, G: 2, B: 3, A: 255})
		return out
	})
	noised := e.ToDataURL("", 0)
	if base == noised {
		t.Fatal("extract hook should change output")
	}
	// The backing image must be untouched.
	if got := e.Image().At(0, 0); got == (raster.RGBA{R: 1, G: 2, B: 3, A: 255}) {
		t.Fatal("hook must not mutate the canvas")
	}
	d := ctx.GetImageData(0, 0, 1, 1)
	if d.Pix[0] != 1 || d.Pix[1] != 2 {
		t.Fatal("hook should apply to getImageData too")
	}
}

type recordingTracer struct {
	calls []string
	rets  map[string]string
}

func (r *recordingTracer) Trace(iface, member string, args []string, ret string) {
	r.calls = append(r.calls, iface+"."+member)
	if r.rets == nil {
		r.rets = map[string]string{}
	}
	r.rets[iface+"."+member] = ret
}

func TestTracerSeesCalls(t *testing.T) {
	e := New(nil)
	tr := &recordingTracer{}
	e.SetTracer(tr)
	ctx := e.GetContext("2d")
	ctx.SetFillStyle("#f00")
	ctx.FillRect(0, 0, 10, 10)
	ctx.Save()
	ctx.Restore()
	u := e.ToDataURL("", 0)

	want := []string{
		"HTMLCanvasElement.getContext",
		"CanvasRenderingContext2D.fillStyle=",
		"CanvasRenderingContext2D.fillRect",
		"CanvasRenderingContext2D.save",
		"CanvasRenderingContext2D.restore",
		"HTMLCanvasElement.toDataURL",
	}
	for _, w := range want {
		found := false
		for _, c := range tr.calls {
			if c == w {
				found = true
			}
		}
		if !found {
			t.Fatalf("missing traced call %s in %v", w, tr.calls)
		}
	}
	if tr.rets["HTMLCanvasElement.toDataURL"] != u {
		t.Fatal("toDataURL return value must be recorded verbatim")
	}
}

func TestToDataURLPNGDimensions(t *testing.T) {
	e := New(nil)
	e.SetWidth(64)
	e.SetHeight(32)
	u := e.ToDataURL("", 0)
	_, data, err := imaging.ParseDataURL(u)
	if err != nil {
		t.Fatal(err)
	}
	w, h, err := imaging.PNGSize(data)
	if err != nil || w != 64 || h != 32 {
		t.Fatalf("png size %dx%d err=%v", w, h, err)
	}
}

func TestShadow(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetShadow("#00f", 10, 10, 0)
	ctx.SetFillStyle("#f00")
	ctx.FillRect(50, 50, 20, 20)
	// Shadow region to the lower-right should carry blue.
	found := false
	for y := 68; y < 82; y++ {
		for x := 68; x < 82; x++ {
			if px := e.Image().At(x, y); px.B > 100 && px.R < 100 {
				found = true
			}
		}
	}
	if !found {
		t.Fatal("shadow silhouette should paint offset blue")
	}
}

func TestBezierAndQuadraticPath(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.MoveTo(20, 100)
	ctx.BezierCurveTo(60, 10, 140, 10, 180, 100)
	ctx.QuadraticCurveTo(200, 120, 220, 100)
	ctx.ClosePath()
	ctx.SetFillStyle("#000")
	ctx.Fill("")
	if e.Image().At(100, 80).A == 0 {
		t.Fatal("curved region should fill")
	}
}

func TestEllipse(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.Ellipse(150, 75, 60, 30, 0, 0, 6.2832, false)
	ctx.SetFillStyle("#0a0")
	ctx.Fill("")
	if e.Image().At(150, 75).G == 0 {
		t.Fatal("ellipse center")
	}
	if e.Image().At(150+55, 75).G == 0 {
		t.Fatal("wide axis inside")
	}
	if e.Image().At(150, 75-35).A != 0 {
		t.Fatal("short axis outside")
	}
}

// Property: for any synthetic machine label, rendering the same command
// stream twice is byte-identical, and (almost always) differs from the
// Intel reference — the §3.1 stability/discrimination invariant that the
// entire clustering methodology rests on.
func TestFingerprintInvariantProperty(t *testing.T) {
	render := func(p *machine.Profile, text string) string {
		e := New(p)
		ctx := e.GetContext("2d")
		ctx.SetFont("13px Arial")
		ctx.SetFillStyle("#345")
		ctx.FillText(text, 3, 30)
		ctx.BeginPath()
		ctx.Arc(200, 75, 40.5, 0.3, 5.9, false)
		ctx.Stroke()
		return e.ToDataURL("", 0)
	}
	intelRef := render(machine.Intel(), "probe text 123")
	f := func(label string) bool {
		if label == "" {
			return true
		}
		p := machine.Synthetic(label)
		a := render(p, "probe text 123")
		b := render(p, "probe text 123")
		if a != b {
			return false // stability violated
		}
		// Discrimination: a synthetic machine whose parameters happen to
		// coincide with Intel's is astronomically unlikely but allowed.
		return a != intelRef || p.Seed == machine.Intel().Seed
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFingerprintCanvas(b *testing.B) {
	p := machine.Intel()
	for i := 0; i < b.N; i++ {
		e := New(p)
		ctx := e.GetContext("2d")
		ctx.SetFont("11pt Arial")
		ctx.SetFillStyle("#f60")
		ctx.FillRect(125, 1, 62, 20)
		ctx.SetFillStyle("#069")
		ctx.FillText("Cwm fjordbank glyphs vext quiz", 2, 15)
		_ = e.ToDataURL("", 0)
	}
}
