package canvas

import (
	"canvassing/internal/font"
	"canvassing/internal/geom"
	"canvassing/internal/raster"
)

// SetFont assigns ctx.font from a CSS font string; invalid values are
// ignored per spec.
func (c *Context2D) SetFont(s string) {
	c.trace("font=", []string{s}, "")
	if f, ok := font.ParseFont(s); ok {
		c.state.font = f
		c.state.fontStr = s
	}
}

// Font returns the current ctx.font string.
func (c *Context2D) Font() string {
	c.trace("font", nil, c.state.fontStr)
	return c.state.fontStr
}

// SetTextAlign assigns ctx.textAlign.
func (c *Context2D) SetTextAlign(s string) {
	c.trace("textAlign=", []string{s}, "")
	switch s {
	case "start", "end", "left", "right", "center":
		c.state.textAlign = s
	}
}

// SetTextBaseline assigns ctx.textBaseline.
func (c *Context2D) SetTextBaseline(s string) {
	c.trace("textBaseline=", []string{s}, "")
	switch s {
	case "alphabetic", "top", "middle", "bottom", "hanging", "ideographic":
		c.state.textBaseline = s
	}
}

// TextMetrics is the object returned by measureText.
type TextMetrics struct {
	Width float64
}

// MeasureText implements ctx.measureText.
func (c *Context2D) MeasureText(text string) TextMetrics {
	w := font.Measure(text, c.state.font)
	c.trace("measureText", []string{text}, fstr(w))
	return TextMetrics{Width: w}
}

// FillText draws filled text at (x, y), as ctx.fillText.
func (c *Context2D) FillText(text string, x, y float64) {
	c.trace("fillText", []string{text, fstr(x), fstr(y)}, "")
	c.drawText(text, x, y, c.state.fillPaint, false)
}

// StrokeText draws outlined text, as ctx.strokeText.
func (c *Context2D) StrokeText(text string, x, y float64) {
	c.trace("strokeText", []string{text, fstr(x), fstr(y)}, "")
	c.drawText(text, x, y, c.state.strokePaint, true)
}

// emojiFace is the fill color of the emoji placeholder face.
var emojiFace = raster.RGBA{R: 255, G: 204, B: 51, A: 255}

// drawText lays out text, applies alignment/baseline adjustments and the
// machine profile's per-glyph subpixel offsets, then paints every glyph
// stroke through the prevailing transform. The subpixel offsets are the
// text-specific machine entropy: two profiles place the same glyphs a
// fraction of a pixel apart, changing anti-aliased edge pixels only.
func (c *Context2D) drawText(text string, x, y float64, paint raster.Paint, outline bool) {
	f := c.state.font
	switch c.state.textBaseline {
	case "top", "hanging":
		y += font.Ascent(f)
	case "middle":
		y += (font.Ascent(f) - font.Descent(f)) / 2
	case "bottom", "ideographic":
		y -= font.Descent(f)
	}
	switch c.state.textAlign {
	case "center":
		x -= font.Measure(text, f) / 2
	case "right", "end":
		x -= font.Measure(text, f)
	}
	glyphs, _ := font.Layout(text, f, x, y)
	m := c.state.transform
	prof := c.el.profile

	textWidth := raster.StrokeStyle{
		Width:      font.LineWidth(f),
		Cap:        raster.CapRound,
		Join:       raster.JoinRound,
		MiterLimit: 10,
	}
	if outline {
		textWidth.Width = c.state.lineWidth
	}

	penX := x
	for _, g := range glyphs {
		dx, dy := prof.GlyphOffset(g.Rune, penX)
		penX += g.Advance
		if g.Emoji && !outline {
			c.drawEmoji(g, dx, dy, m)
			continue
		}
		r := raster.NewRasterizer()
		for _, stroke := range g.Strokes {
			pts := make([]geom.Point, len(stroke))
			for i, p := range stroke {
				pts[i] = m.Apply(geom.Pt(p.X+dx, p.Y+dy))
			}
			r.Stroke(pts, false, textWidth)
		}
		c.rasterize(r, paint)
	}
}

// drawEmoji paints the color-emoji placeholder: filled face disc, then
// stroked features in a dark ink, ignoring the current fill paint the way
// real color-emoji glyphs ignore CSS color.
func (c *Context2D) drawEmoji(g font.Glyph, dx, dy float64, m geom.Matrix) {
	move := func(stroke []geom.Point) []geom.Point {
		pts := make([]geom.Point, len(stroke))
		for i, p := range stroke {
			pts[i] = m.Apply(geom.Pt(p.X+dx, p.Y+dy))
		}
		return pts
	}
	if len(g.Strokes) == 0 {
		return
	}
	face := raster.NewRasterizer()
	face.AddPolygon(move(g.Strokes[0]))
	c.rasterize(face, raster.Solid{C: emojiFace})

	ink := raster.Solid{C: raster.RGBA{R: 60, G: 40, B: 20, A: 255}}
	features := raster.NewRasterizer()
	for _, s := range g.Strokes[1:] {
		features.Stroke(move(s), false, raster.StrokeStyle{
			Width: 1.2, Cap: raster.CapRound, Join: raster.JoinRound, MiterLimit: 10,
		})
	}
	c.rasterize(features, ink)
}
