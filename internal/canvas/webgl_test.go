package canvas

import (
	"strings"
	"testing"

	"canvassing/internal/machine"
)

func TestWebGLGetParameter(t *testing.T) {
	e := New(machine.Intel())
	gl := e.GetWebGL()
	if got := gl.GetParameter(GLUnmaskedRendererWebGL); !strings.Contains(got, "Intel") {
		t.Fatalf("renderer: %q", got)
	}
	if got := gl.GetParameter(GLUnmaskedVendorWebGL); got == "" {
		t.Fatal("vendor")
	}
	if gl.GetParameter(0xDEAD) != "" {
		t.Fatal("unknown parameter should be empty")
	}
	// Same context object on repeat calls.
	if e.GetWebGL() != gl {
		t.Fatal("context identity")
	}
}

func TestWebGLParametersDifferAcrossMachines(t *testing.T) {
	a := New(machine.Intel()).GetWebGL().GetParameter(GLUnmaskedRendererWebGL)
	b := New(machine.AppleM1()).GetWebGL().GetParameter(GLUnmaskedRendererWebGL)
	if a == b {
		t.Fatal("GPU strings must differ")
	}
}

func TestWebGLClear(t *testing.T) {
	e := New(nil)
	gl := e.GetWebGL()
	gl.ClearColor(1, 0, 0, 1)
	gl.Clear(GLColorBufferBit)
	if px := e.Image().At(10, 10); px.R != 255 || px.A != 255 {
		t.Fatalf("clear color: %v", px)
	}
	// Depth-only clear leaves pixels alone.
	gl.ClearColor(0, 1, 0, 1)
	gl.Clear(GLDepthBufferBit)
	if e.Image().At(10, 10).R != 255 {
		t.Fatal("depth clear must not touch color")
	}
	// Out-of-range clear colors clamp.
	gl.ClearColor(-5, 7, 0.5, 2)
	gl.Clear(GLColorBufferBit)
	px := e.Image().At(0, 0)
	if px.R != 0 || px.G != 255 || px.A != 255 {
		t.Fatalf("clamped clear: %v", px)
	}
}

func TestWebGLDrawArraysTriangle(t *testing.T) {
	e := New(nil)
	e.SetWidth(100)
	e.SetHeight(100)
	gl := e.GetWebGL()
	gl.BufferData([]float64{-0.8, -0.8, 0.8, -0.8, 0, 0.8})
	gl.DrawArrays(GLTriangles, 0, 3)
	if e.Image().At(50, 50).A == 0 {
		t.Fatal("triangle centroid should be painted")
	}
	if e.Image().At(3, 3).A != 0 {
		t.Fatal("outside the triangle must stay empty")
	}
	// Clip-space y is up: the apex (0, 0.8) lands near the TOP.
	if e.Image().At(50, 15).A == 0 {
		t.Fatal("apex should be near the top of the canvas")
	}
	if e.Image().At(50, 95).A != 0 {
		t.Fatal("below the base must be empty")
	}
}

func TestWebGLTriangleStrip(t *testing.T) {
	e := New(nil)
	e.SetWidth(80)
	e.SetHeight(80)
	gl := e.GetWebGL()
	// Full-screen quad as a strip.
	gl.BufferData([]float64{-1, -1, 1, -1, -1, 1, 1, 1})
	gl.DrawArrays(GLTriangleStrip, 0, 4)
	for _, p := range [][2]int{{5, 5}, {75, 5}, {5, 75}, {75, 75}, {40, 40}} {
		if e.Image().At(p[0], p[1]).A == 0 {
			t.Fatalf("quad should cover (%d,%d)", p[0], p[1])
		}
	}
}

func TestWebGLDegenerateDraws(t *testing.T) {
	e := New(nil)
	gl := e.GetWebGL()
	gl.DrawArrays(GLTriangles, 0, 3) // empty buffer
	gl.BufferData([]float64{0, 0, 1, 1})
	gl.DrawArrays(GLTriangles, 0, 3) // too few vertices
	gl.DrawArrays(0x9999, 0, 3)      // unknown mode
	for i := range e.Image().Pix {
		if e.Image().Pix[i] != 0 {
			t.Fatal("degenerate draws must paint nothing")
		}
	}
}

func TestWebGLHandlesDistinct(t *testing.T) {
	gl := New(nil).GetWebGL()
	a := gl.CreateHandle("Shader")
	b := gl.CreateHandle("Program")
	if a == b || a == 0 || b == 0 {
		t.Fatal("handles must be distinct and truthy")
	}
}

func TestWebGLExtensionsVaryByMachine(t *testing.T) {
	seen := map[int]bool{}
	for i := 0; i < 6; i++ {
		p := machine.Synthetic(string(rune('a' + i)))
		seen[len(New(p).GetWebGL().GetSupportedExtensions())] = true
	}
	if len(seen) < 2 {
		t.Fatal("extension list length should vary across machines")
	}
}

func TestWebGLTraced(t *testing.T) {
	e := New(nil)
	tr := &recordingTracer{}
	e.SetTracer(tr)
	gl := e.GetWebGL()
	gl.GetParameter(GLRenderer)
	gl.DrawArrays(GLTriangles, 0, 0)
	want := map[string]bool{}
	for _, c := range tr.calls {
		want[c] = true
	}
	if !want["WebGLRenderingContext.getParameter"] || !want["WebGLRenderingContext.drawArrays"] {
		t.Fatalf("traced calls: %v", tr.calls)
	}
}
