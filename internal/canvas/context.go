package canvas

import (
	"fmt"
	"math"
	"strconv"

	"canvassing/internal/font"
	"canvassing/internal/geom"
	"canvassing/internal/raster"
)

// drawState is the saveable part of a 2D context (the save/restore stack).
type drawState struct {
	fillPaint    raster.Paint
	fillStyleStr string
	strokePaint  raster.Paint
	strokeStyle  string
	lineWidth    float64
	lineCap      raster.LineCap
	lineJoin     raster.LineJoin
	miterLimit   float64
	globalAlpha  float64
	compositeOp  raster.CompositeOp
	font         font.Font
	fontStr      string
	textAlign    string
	textBaseline string
	transform    geom.Matrix
	clip         *geom.Rect
	shadowColor  raster.RGBA
	shadowOX     float64
	shadowOY     float64
	shadowBlur   float64
	lineDash     []float64
	dashOffset   float64
}

func defaultState() drawState {
	return drawState{
		fillPaint:    raster.Solid{C: raster.RGBA{A: 255}},
		fillStyleStr: "#000000",
		strokePaint:  raster.Solid{C: raster.RGBA{A: 255}},
		strokeStyle:  "#000000",
		lineWidth:    1,
		miterLimit:   10,
		globalAlpha:  1,
		font:         font.DefaultFont(),
		fontStr:      "10px sans-serif",
		textAlign:    "start",
		textBaseline: "alphabetic",
		transform:    geom.Identity(),
	}
}

// subpath is a sequence of already-transformed device-space points.
type subpath struct {
	pts    []geom.Point
	closed bool
}

// Context2D is a CanvasRenderingContext2D.
type Context2D struct {
	el    *Element
	state drawState
	stack []drawState
	path  []subpath
	cur   geom.Point // current point (device space)
	began bool
}

func newContext2D(e *Element) *Context2D {
	return &Context2D{el: e, state: defaultState()}
}

func (c *Context2D) resetState() {
	c.state = defaultState()
	c.stack = nil
	c.path = nil
	c.began = false
}

func (c *Context2D) trace(member string, args []string, ret string) {
	if c.el.tracer != nil {
		c.el.tracer.Trace("CanvasRenderingContext2D", member, args, ret)
	}
}

func fstr(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Canvas returns the owning element, like the ctx.canvas property.
func (c *Context2D) Canvas() *Element { return c.el }

// --- state save/restore -------------------------------------------------

// Save pushes the current drawing state, as ctx.save().
func (c *Context2D) Save() {
	c.trace("save", nil, "")
	c.stack = append(c.stack, c.state)
}

// Restore pops the drawing state, as ctx.restore(). Popping an empty stack
// is a no-op, matching the spec.
func (c *Context2D) Restore() {
	c.trace("restore", nil, "")
	if n := len(c.stack); n > 0 {
		c.state = c.stack[n-1]
		c.stack = c.stack[:n-1]
	}
}

// --- transforms ----------------------------------------------------------

// Translate applies ctx.translate(x, y).
func (c *Context2D) Translate(x, y float64) {
	c.trace("translate", []string{fstr(x), fstr(y)}, "")
	c.state.transform = c.state.transform.Translate(x, y)
}

// Scale applies ctx.scale(sx, sy).
func (c *Context2D) Scale(sx, sy float64) {
	c.trace("scale", []string{fstr(sx), fstr(sy)}, "")
	c.state.transform = c.state.transform.Scale(sx, sy)
}

// Rotate applies ctx.rotate(theta).
func (c *Context2D) Rotate(theta float64) {
	c.trace("rotate", []string{fstr(theta)}, "")
	c.state.transform = c.state.transform.Rotate(theta)
}

// Transform applies ctx.transform(a, b, c, d, e, f).
func (c *Context2D) Transform(a, b, cc, d, e, f float64) {
	c.trace("transform", []string{fstr(a), fstr(b), fstr(cc), fstr(d), fstr(e), fstr(f)}, "")
	c.state.transform = c.state.transform.Mul(geom.Matrix{A: a, B: b, C: cc, D: d, E: e, F: f})
}

// SetTransform applies ctx.setTransform(a, b, c, d, e, f).
func (c *Context2D) SetTransform(a, b, cc, d, e, f float64) {
	c.trace("setTransform", []string{fstr(a), fstr(b), fstr(cc), fstr(d), fstr(e), fstr(f)}, "")
	c.state.transform = geom.Matrix{A: a, B: b, C: cc, D: d, E: e, F: f}
}

// ResetTransform applies ctx.resetTransform().
func (c *Context2D) ResetTransform() {
	c.trace("resetTransform", nil, "")
	c.state.transform = geom.Identity()
}

// --- style properties ------------------------------------------------------

// SetFillStyle assigns ctx.fillStyle from a CSS color string. Invalid
// colors are ignored, as in browsers.
func (c *Context2D) SetFillStyle(style string) {
	c.trace("fillStyle=", []string{style}, "")
	if col, ok := ParseColor(style); ok {
		c.state.fillPaint = raster.Solid{C: col}
		c.state.fillStyleStr = style
	}
}

// SetFillGradient assigns a gradient to ctx.fillStyle.
func (c *Context2D) SetFillGradient(g raster.Paint) {
	c.trace("fillStyle=", []string{"[object CanvasGradient]"}, "")
	if g != nil {
		c.state.fillPaint = g
		c.state.fillStyleStr = "[object CanvasGradient]"
	}
}

// FillStyle returns the current fillStyle string.
func (c *Context2D) FillStyle() string {
	c.trace("fillStyle", nil, c.state.fillStyleStr)
	return c.state.fillStyleStr
}

// SetStrokeStyle assigns ctx.strokeStyle from a CSS color string.
func (c *Context2D) SetStrokeStyle(style string) {
	c.trace("strokeStyle=", []string{style}, "")
	if col, ok := ParseColor(style); ok {
		c.state.strokePaint = raster.Solid{C: col}
		c.state.strokeStyle = style
	}
}

// SetStrokeGradient assigns a gradient to ctx.strokeStyle.
func (c *Context2D) SetStrokeGradient(g raster.Paint) {
	c.trace("strokeStyle=", []string{"[object CanvasGradient]"}, "")
	if g != nil {
		c.state.strokePaint = g
		c.state.strokeStyle = "[object CanvasGradient]"
	}
}

// SetLineWidth assigns ctx.lineWidth; non-positive and non-finite values
// are ignored per spec.
func (c *Context2D) SetLineWidth(w float64) {
	c.trace("lineWidth=", []string{fstr(w)}, "")
	if w > 0 && !math.IsInf(w, 0) && !math.IsNaN(w) {
		c.state.lineWidth = w
	}
}

// SetLineCap assigns ctx.lineCap.
func (c *Context2D) SetLineCap(s string) {
	c.trace("lineCap=", []string{s}, "")
	if v, ok := raster.ParseLineCap(s); ok {
		c.state.lineCap = v
	}
}

// SetLineJoin assigns ctx.lineJoin.
func (c *Context2D) SetLineJoin(s string) {
	c.trace("lineJoin=", []string{s}, "")
	if v, ok := raster.ParseLineJoin(s); ok {
		c.state.lineJoin = v
	}
}

// SetMiterLimit assigns ctx.miterLimit.
func (c *Context2D) SetMiterLimit(v float64) {
	c.trace("miterLimit=", []string{fstr(v)}, "")
	if v > 0 {
		c.state.miterLimit = v
	}
}

// SetLineDash assigns ctx.setLineDash(segments). Negative entries make
// the call a no-op, per spec.
func (c *Context2D) SetLineDash(segments []float64) {
	args := make([]string, len(segments))
	for i, s := range segments {
		args[i] = fstr(s)
	}
	c.trace("setLineDash", args, "")
	for _, s := range segments {
		if s < 0 || math.IsNaN(s) || math.IsInf(s, 0) {
			return
		}
	}
	c.state.lineDash = append([]float64(nil), segments...)
}

// GetLineDash returns a copy of the current dash pattern.
func (c *Context2D) GetLineDash() []float64 {
	c.trace("getLineDash", nil, "")
	return append([]float64(nil), c.state.lineDash...)
}

// SetLineDashOffset assigns ctx.lineDashOffset.
func (c *Context2D) SetLineDashOffset(v float64) {
	c.trace("lineDashOffset=", []string{fstr(v)}, "")
	if !math.IsNaN(v) && !math.IsInf(v, 0) {
		c.state.dashOffset = v
	}
}

// SetGlobalAlpha assigns ctx.globalAlpha; out-of-range values ignored.
func (c *Context2D) SetGlobalAlpha(a float64) {
	c.trace("globalAlpha=", []string{fstr(a)}, "")
	if a >= 0 && a <= 1 {
		c.state.globalAlpha = a
	}
}

// SetGlobalCompositeOperation assigns ctx.globalCompositeOperation.
func (c *Context2D) SetGlobalCompositeOperation(s string) {
	c.trace("globalCompositeOperation=", []string{s}, "")
	if op, ok := raster.ParseCompositeOp(s); ok {
		c.state.compositeOp = op
	}
}

// GlobalCompositeOperation returns the current operator keyword.
func (c *Context2D) GlobalCompositeOperation() string {
	s := c.state.compositeOp.String()
	c.trace("globalCompositeOperation", nil, s)
	return s
}

// SetShadow configures the shadow properties in one call (the script layer
// maps shadowColor/shadowOffsetX/... assignments onto it).
func (c *Context2D) SetShadow(colorStr string, ox, oy, blur float64) {
	c.trace("shadowColor=", []string{colorStr, fstr(ox), fstr(oy), fstr(blur)}, "")
	if col, ok := ParseColor(colorStr); ok {
		c.state.shadowColor = col
	}
	c.state.shadowOX, c.state.shadowOY = ox, oy
	if blur >= 0 {
		c.state.shadowBlur = blur
	}
}

// --- rectangles ------------------------------------------------------------

// FillRect draws a filled rectangle, as ctx.fillRect.
func (c *Context2D) FillRect(x, y, w, h float64) {
	c.trace("fillRect", []string{fstr(x), fstr(y), fstr(w), fstr(h)}, "")
	poly := c.transformedRect(x, y, w, h)
	if c.hasShadow() {
		c.paintShadow([][]geom.Point{poly})
	}
	c.fillPolys([][]geom.Point{poly}, raster.NonZero)
}

// StrokeRect draws a rectangle outline, as ctx.strokeRect.
func (c *Context2D) StrokeRect(x, y, w, h float64) {
	c.trace("strokeRect", []string{fstr(x), fstr(y), fstr(w), fstr(h)}, "")
	poly := c.transformedRect(x, y, w, h)
	r := raster.NewRasterizer()
	r.Stroke(poly, true, c.strokeStyleNow())
	c.rasterize(r, c.state.strokePaint)
}

// ClearRect clears a rectangle to transparent black, as ctx.clearRect.
// Only axis-aligned clears are modeled (the transform's translation and
// scale are honored; rotation falls back to the bounding box).
func (c *Context2D) ClearRect(x, y, w, h float64) {
	c.trace("clearRect", []string{fstr(x), fstr(y), fstr(w), fstr(h)}, "")
	poly := c.transformedRect(x, y, w, h)
	bounds := geom.Rect{}
	for _, p := range poly {
		bounds = bounds.ExpandToInclude(p)
	}
	c.el.img.ClearRect(
		int(math.Floor(bounds.Min.X)), int(math.Floor(bounds.Min.Y)),
		int(math.Ceil(bounds.Max.X)), int(math.Ceil(bounds.Max.Y)))
}

func (c *Context2D) transformedRect(x, y, w, h float64) []geom.Point {
	m := c.state.transform
	return []geom.Point{
		m.Apply(geom.Pt(x, y)),
		m.Apply(geom.Pt(x+w, y)),
		m.Apply(geom.Pt(x+w, y+h)),
		m.Apply(geom.Pt(x, y+h)),
	}
}

// --- path construction -------------------------------------------------------

// BeginPath starts a new path, as ctx.beginPath().
func (c *Context2D) BeginPath() {
	c.trace("beginPath", nil, "")
	c.path = c.path[:0]
	c.began = true
}

// ClosePath closes the current subpath, as ctx.closePath().
func (c *Context2D) ClosePath() {
	c.trace("closePath", nil, "")
	if n := len(c.path); n > 0 && len(c.path[n-1].pts) > 0 {
		c.path[n-1].closed = true
		c.cur = c.path[n-1].pts[0]
	}
}

// MoveTo starts a new subpath at (x, y), as ctx.moveTo.
func (c *Context2D) MoveTo(x, y float64) {
	c.trace("moveTo", []string{fstr(x), fstr(y)}, "")
	p := c.state.transform.Apply(geom.Pt(x, y))
	c.path = append(c.path, subpath{pts: []geom.Point{p}})
	c.cur = p
}

// LineTo appends a line segment, as ctx.lineTo.
func (c *Context2D) LineTo(x, y float64) {
	c.trace("lineTo", []string{fstr(x), fstr(y)}, "")
	p := c.state.transform.Apply(geom.Pt(x, y))
	c.appendPoint(p)
}

// appendPoint adds p to the last subpath, starting one implicitly if none
// exists (the spec's "ensure there is a subpath" step).
func (c *Context2D) appendPoint(p geom.Point) {
	if len(c.path) == 0 {
		c.path = append(c.path, subpath{pts: []geom.Point{p}})
	} else {
		last := &c.path[len(c.path)-1]
		last.pts = append(last.pts, p)
	}
	c.cur = p
}

// QuadraticCurveTo appends a quadratic Bézier, as ctx.quadraticCurveTo.
func (c *Context2D) QuadraticCurveTo(cpx, cpy, x, y float64) {
	c.trace("quadraticCurveTo", []string{fstr(cpx), fstr(cpy), fstr(x), fstr(y)}, "")
	m := c.state.transform
	cp := m.Apply(geom.Pt(cpx, cpy))
	end := m.Apply(geom.Pt(x, y))
	start := c.ensureStart(cp)
	for _, p := range geom.FlattenQuad(nil, start, cp, end, 0.2) {
		c.appendPoint(p)
	}
}

// BezierCurveTo appends a cubic Bézier, as ctx.bezierCurveTo.
func (c *Context2D) BezierCurveTo(c1x, c1y, c2x, c2y, x, y float64) {
	c.trace("bezierCurveTo", []string{fstr(c1x), fstr(c1y), fstr(c2x), fstr(c2y), fstr(x), fstr(y)}, "")
	m := c.state.transform
	c1 := m.Apply(geom.Pt(c1x, c1y))
	c2 := m.Apply(geom.Pt(c2x, c2y))
	end := m.Apply(geom.Pt(x, y))
	start := c.ensureStart(c1)
	for _, p := range geom.FlattenCubic(nil, start, c1, c2, end, 0.2) {
		c.appendPoint(p)
	}
}

// ensureStart returns the current point, creating a subpath at fallback if
// there is none yet.
func (c *Context2D) ensureStart(fallback geom.Point) geom.Point {
	if len(c.path) == 0 || len(c.path[len(c.path)-1].pts) == 0 {
		c.path = append(c.path, subpath{pts: []geom.Point{fallback}})
		c.cur = fallback
	}
	return c.cur
}

// Arc appends a circular arc, as ctx.arc(x, y, r, a0, a1, ccw).
func (c *Context2D) Arc(x, y, radius, a0, a1 float64, ccw bool) {
	c.trace("arc", []string{fstr(x), fstr(y), fstr(radius), fstr(a0), fstr(a1), fmt.Sprint(ccw)}, "")
	pts := geom.FlattenArc(nil, geom.Pt(x, y), radius, a0, a1, ccw, 0.2)
	m := c.state.transform
	for i, p := range pts {
		dp := m.Apply(p)
		if i == 0 && (len(c.path) == 0 || len(c.path[len(c.path)-1].pts) == 0) {
			c.path = append(c.path, subpath{pts: []geom.Point{dp}})
			c.cur = dp
			continue
		}
		c.appendPoint(dp)
	}
}

// ArcTo appends a tangent arc between the current point and (x2, y2)
// touching the control point (x1, y1), as ctx.arcTo. Degenerate inputs
// (zero radius, collinear points, no current point) reduce to lineTo, as
// the spec requires.
func (c *Context2D) ArcTo(x1, y1, x2, y2, radius float64) {
	c.trace("arcTo", []string{fstr(x1), fstr(y1), fstr(x2), fstr(y2), fstr(radius)}, "")
	m := c.state.transform
	p1 := geom.Pt(x1, y1)
	p2 := geom.Pt(x2, y2)
	if len(c.path) == 0 || len(c.path[len(c.path)-1].pts) == 0 {
		// No current point: behave like moveTo(x1, y1).
		dp := m.Apply(p1)
		c.path = append(c.path, subpath{pts: []geom.Point{dp}})
		c.cur = dp
		return
	}
	// Work in user space: invert the CTM for the current point.
	inv, ok := m.Invert()
	if !ok {
		return
	}
	p0 := inv.Apply(c.cur)
	d0 := p0.Sub(p1)
	d2 := p2.Sub(p1)
	cross := d0.Cross(d2)
	if radius <= 0 || d0.Len() == 0 || d2.Len() == 0 || math.Abs(cross) < 1e-9 {
		c.LineTo(x1, y1)
		return
	}
	u0 := d0.Normalize()
	u2 := d2.Normalize()
	// Half-angle between the two rays; tangent distance from p1.
	cosA := u0.Dot(u2)
	halfAngle := math.Acos(clampUnit(cosA)) / 2
	tanDist := radius / math.Tan(halfAngle)
	t0 := p1.Add(u0.Mul(tanDist)) // tangent point on incoming ray
	t2 := p1.Add(u2.Mul(tanDist)) // tangent point on outgoing ray
	// Arc center: offset from p1 along the angle bisector.
	bis := u0.Add(u2).Normalize()
	centerDist := radius / math.Sin(halfAngle)
	center := p1.Add(bis.Mul(centerDist))
	a0 := math.Atan2(t0.Y-center.Y, t0.X-center.X)
	a1 := math.Atan2(t2.Y-center.Y, t2.X-center.X)
	// arcTo always takes the minor arc between the tangent points.
	delta := math.Mod(a1-a0, 2*math.Pi)
	if delta > math.Pi {
		delta -= 2 * math.Pi
	}
	if delta < -math.Pi {
		delta += 2 * math.Pi
	}
	ccw := delta < 0
	c.LineTo(t0.X, t0.Y)
	pts := geom.FlattenArc(nil, center, radius, a0, a1, ccw, 0.2)
	for _, p := range pts[1:] {
		dp := m.Apply(p)
		c.appendPoint(dp)
	}
}

func clampUnit(v float64) float64 {
	if v < -1 {
		return -1
	}
	if v > 1 {
		return 1
	}
	return v
}

// IsPointInPath reports whether the device-space point (x, y) lies inside
// the current path under the given fill rule, as ctx.isPointInPath.
func (c *Context2D) IsPointInPath(x, y float64, rule string) bool {
	winding := 0
	crossings := 0
	for _, sp := range c.path {
		if len(sp.pts) < 3 {
			continue
		}
		n := len(sp.pts)
		for i := 0; i < n; i++ {
			a, b := sp.pts[i], sp.pts[(i+1)%n]
			if a.Y == b.Y {
				continue
			}
			lo, hi, dir := a, b, 1
			if a.Y > b.Y {
				lo, hi, dir = b, a, -1
			}
			if y < lo.Y || y >= hi.Y {
				continue
			}
			cx := lo.X + (y-lo.Y)*(hi.X-lo.X)/(hi.Y-lo.Y)
			if cx > x {
				winding += dir
				crossings++
			}
		}
	}
	inside := winding != 0
	if rule == "evenodd" {
		inside = crossings%2 == 1
	}
	c.trace("isPointInPath", []string{fstr(x), fstr(y), rule}, fmt.Sprint(inside))
	return inside
}

// Ellipse appends an axis-aligned ellipse arc, as ctx.ellipse (rotation is
// honored via the path transform).
func (c *Context2D) Ellipse(x, y, rx, ry, rotation, a0, a1 float64, ccw bool) {
	c.trace("ellipse", []string{fstr(x), fstr(y), fstr(rx), fstr(ry), fstr(rotation), fstr(a0), fstr(a1), fmt.Sprint(ccw)}, "")
	if rx < 0 || ry < 0 {
		return
	}
	// Unit-circle arc scaled and rotated into place.
	unit := geom.FlattenArc(nil, geom.Pt(0, 0), 1, a0, a1, ccw, 0.2/math.Max(1, math.Max(rx, ry)))
	em := geom.Identity().Translate(x, y).Rotate(rotation).Scale(rx, ry)
	m := c.state.transform.Mul(em)
	for i, p := range unit {
		dp := m.Apply(p)
		if i == 0 && (len(c.path) == 0 || len(c.path[len(c.path)-1].pts) == 0) {
			c.path = append(c.path, subpath{pts: []geom.Point{dp}})
			c.cur = dp
			continue
		}
		c.appendPoint(dp)
	}
}

// Rect appends a closed rectangle subpath, as ctx.rect.
func (c *Context2D) Rect(x, y, w, h float64) {
	c.trace("rect", []string{fstr(x), fstr(y), fstr(w), fstr(h)}, "")
	poly := c.transformedRect(x, y, w, h)
	c.path = append(c.path, subpath{pts: poly, closed: true})
	c.cur = poly[0]
}

// --- painting ------------------------------------------------------------------

// Fill fills the current path, as ctx.fill(rule).
func (c *Context2D) Fill(rule string) {
	c.trace("fill", []string{rule}, "")
	fr := raster.NonZero
	if rule == "evenodd" {
		fr = raster.EvenOdd
	}
	polys := make([][]geom.Point, 0, len(c.path))
	for _, sp := range c.path {
		if len(sp.pts) >= 3 {
			polys = append(polys, sp.pts)
		}
	}
	if c.hasShadow() {
		c.paintShadow(polys)
	}
	c.fillPolys(polys, fr)
}

// Stroke strokes the current path, as ctx.stroke().
func (c *Context2D) Stroke() {
	c.trace("stroke", nil, "")
	r := raster.NewRasterizer()
	st := c.strokeStyleNow()
	for _, sp := range c.path {
		if len(sp.pts) >= 1 {
			r.Stroke(sp.pts, sp.closed, st)
		}
	}
	c.rasterize(r, c.state.strokePaint)
}

// Clip intersects the clip region with the current path's bounding box.
// Full path clipping is approximated by its rectangular bounds, which is
// exact for the rect() clips page scripts overwhelmingly use.
func (c *Context2D) Clip() {
	c.trace("clip", nil, "")
	bounds := geom.Rect{}
	for _, sp := range c.path {
		for _, p := range sp.pts {
			bounds = bounds.ExpandToInclude(p)
		}
	}
	if bounds.Empty() {
		empty := geom.Rect{}
		c.state.clip = &empty
		return
	}
	if c.state.clip != nil {
		bounds = bounds.Intersect(*c.state.clip)
	}
	c.state.clip = &bounds
}

func (c *Context2D) strokeStyleNow() raster.StrokeStyle {
	// Approximate transformed stroke width by the sqrt of the CTM's
	// area scale, exact for uniform scales.
	scale := math.Sqrt(math.Abs(c.state.transform.Det()))
	if scale == 0 {
		scale = 1
	}
	dash := c.state.lineDash
	if len(dash) > 0 && scale != 1 {
		scaled := make([]float64, len(dash))
		for i, d := range dash {
			scaled[i] = d * scale
		}
		dash = scaled
	}
	return raster.StrokeStyle{
		Width:      c.state.lineWidth * scale,
		Cap:        c.state.lineCap,
		Join:       c.state.lineJoin,
		MiterLimit: c.state.miterLimit,
		Dash:       dash,
		DashOffset: c.state.dashOffset * scale,
	}
}

func (c *Context2D) fillPolys(polys [][]geom.Point, rule raster.FillRule) {
	if len(polys) == 0 {
		return
	}
	r := raster.NewRasterizer()
	for _, p := range polys {
		r.AddPolygon(p)
	}
	c.rasterizeRule(r, c.state.fillPaint, rule)
}

func (c *Context2D) rasterize(r *raster.Rasterizer, paint raster.Paint) {
	c.rasterizeRule(r, paint, raster.NonZero)
}

func (c *Context2D) rasterizeRule(r *raster.Rasterizer, paint raster.Paint, rule raster.FillRule) {
	r.Rasterize(c.el.img, paint, raster.Options{
		Rule:        rule,
		Op:          c.state.compositeOp,
		Alpha:       uint8(c.state.globalAlpha*255 + 0.5),
		CoverageLUT: c.el.profile.CoverageLUT(),
		Clip:        c.state.clip,
	})
}

func (c *Context2D) hasShadow() bool {
	return c.state.shadowColor.A > 0 && (c.state.shadowOX != 0 || c.state.shadowOY != 0 || c.state.shadowBlur > 0)
}

// paintShadow draws an offset silhouette of polys in the shadow color.
// Blur is modeled as reduced alpha rather than a true Gaussian: it keeps
// rendering deterministic and cheap while still being machine- and
// geometry-dependent.
func (c *Context2D) paintShadow(polys [][]geom.Point) {
	r := raster.NewRasterizer()
	for _, poly := range polys {
		moved := make([]geom.Point, len(poly))
		for i, p := range poly {
			moved[i] = geom.Pt(p.X+c.state.shadowOX, p.Y+c.state.shadowOY)
		}
		r.AddPolygon(moved)
	}
	col := c.state.shadowColor
	if c.state.shadowBlur > 0 {
		f := 1 / (1 + c.state.shadowBlur/4)
		col.A = uint8(float64(col.A) * f)
	}
	r.Rasterize(c.el.img, raster.Solid{C: col}, raster.Options{
		Op:          c.state.compositeOp,
		Alpha:       uint8(c.state.globalAlpha*255 + 0.5),
		CoverageLUT: c.el.profile.CoverageLUT(),
		Clip:        c.state.clip,
	})
}

// --- gradients -------------------------------------------------------------------

// Gradient is the object returned by createLinearGradient and
// createRadialGradient, mirroring CanvasGradient.
type Gradient struct {
	ctx *Context2D
	lin *raster.LinearGradient
	rad *raster.RadialGradient
}

// AddColorStop adds a color stop, as gradient.addColorStop(pos, color).
// Invalid colors are ignored.
func (g *Gradient) AddColorStop(pos float64, colorStr string) {
	g.ctx.trace("addColorStop", []string{fstr(pos), colorStr}, "")
	col, ok := ParseColor(colorStr)
	if !ok {
		return
	}
	if g.lin != nil {
		g.lin.AddStop(pos, col)
	} else if g.rad != nil {
		g.rad.AddStop(pos, col)
	}
}

// Paint returns the underlying paint for fillStyle assignment.
func (g *Gradient) Paint() raster.Paint {
	if g.lin != nil {
		return g.lin
	}
	return g.rad
}

// CreateLinearGradient implements ctx.createLinearGradient. Coordinates
// are device-space (the prevailing transform is applied).
func (c *Context2D) CreateLinearGradient(x0, y0, x1, y1 float64) *Gradient {
	c.trace("createLinearGradient", []string{fstr(x0), fstr(y0), fstr(x1), fstr(y1)}, "")
	m := c.state.transform
	p0 := m.Apply(geom.Pt(x0, y0))
	p1 := m.Apply(geom.Pt(x1, y1))
	return &Gradient{ctx: c, lin: raster.NewLinearGradient(p0.X, p0.Y, p1.X, p1.Y)}
}

// CreateRadialGradient implements a simplified ctx.createRadialGradient
// using the outer circle.
func (c *Context2D) CreateRadialGradient(x0, y0, r0, x1, y1, r1 float64) *Gradient {
	c.trace("createRadialGradient", []string{fstr(x0), fstr(y0), fstr(r0), fstr(x1), fstr(y1), fstr(r1)}, "")
	m := c.state.transform
	p1 := m.Apply(geom.Pt(x1, y1))
	scale := math.Sqrt(math.Abs(m.Det()))
	if scale == 0 {
		scale = 1
	}
	return &Gradient{ctx: c, rad: raster.NewRadialGradient(p1.X, p1.Y, r1*scale)}
}

// --- pixel access -------------------------------------------------------------------

// ImageData mirrors the ImageData object: RGBA bytes, row-major.
type ImageData struct {
	W, H int
	Pix  []uint8
}

// GetImageData copies pixels out of the canvas, as ctx.getImageData.
// The element's extraction hook (randomization defense) applies.
func (c *Context2D) GetImageData(x, y, w, h int) *ImageData {
	c.trace("getImageData", []string{fmt.Sprint(x), fmt.Sprint(y), fmt.Sprint(w), fmt.Sprint(h)}, "")
	if w <= 0 || h <= 0 {
		return &ImageData{}
	}
	src := c.el.img
	if c.el.extractHook != nil {
		src = c.el.extractHook(src)
	}
	out := &ImageData{W: w, H: h, Pix: make([]uint8, w*h*4)}
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			px := src.At(x+col, y+row)
			i := (row*w + col) * 4
			out.Pix[i], out.Pix[i+1], out.Pix[i+2], out.Pix[i+3] = px.R, px.G, px.B, px.A
		}
	}
	return out
}

// PutImageData writes pixels back, as ctx.putImageData (no blending).
func (c *Context2D) PutImageData(d *ImageData, x, y int) {
	c.trace("putImageData", []string{fmt.Sprint(x), fmt.Sprint(y)}, "")
	if d == nil {
		return
	}
	for row := 0; row < d.H; row++ {
		for col := 0; col < d.W; col++ {
			i := (row*d.W + col) * 4
			c.el.img.Set(x+col, y+row, raster.RGBA{
				R: d.Pix[i], G: d.Pix[i+1], B: d.Pix[i+2], A: d.Pix[i+3],
			})
		}
	}
}

// CreateImageData returns a blank ImageData, as ctx.createImageData.
func (c *Context2D) CreateImageData(w, h int) *ImageData {
	c.trace("createImageData", []string{fmt.Sprint(w), fmt.Sprint(h)}, "")
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	return &ImageData{W: w, H: h, Pix: make([]uint8, w*h*4)}
}

// DrawImage blits another canvas onto this one at (dx, dy), the
// 3-argument ctx.drawImage(canvas, dx, dy) form.
func (c *Context2D) DrawImage(src *Element, dx, dy float64) {
	c.trace("drawImage", []string{"[object HTMLCanvasElement]", fstr(dx), fstr(dy)}, "")
	if src == nil {
		return
	}
	origin := c.state.transform.Apply(geom.Pt(dx, dy))
	ox, oy := int(math.Floor(origin.X+0.5)), int(math.Floor(origin.Y+0.5))
	alpha := uint8(c.state.globalAlpha*255 + 0.5)
	for y := 0; y < src.img.H; y++ {
		for x := 0; x < src.img.W; x++ {
			px := src.img.At(x, y)
			if px.A == 0 {
				continue
			}
			c.el.img.BlendPixel(ox+x, oy+y, px, alpha, c.state.compositeOp)
		}
	}
}
