package canvas

import (
	"testing"
)

func TestSetLineDashDraws(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetLineDash([]float64{10, 10})
	ctx.SetStrokeStyle("#f00")
	ctx.SetLineWidth(4)
	ctx.BeginPath()
	ctx.MoveTo(0, 75)
	ctx.LineTo(300, 75)
	ctx.Stroke()
	// On pixels inside the first dash, off pixels inside the first gap.
	if e.Image().At(5, 75).A == 0 {
		t.Fatal("first dash should paint")
	}
	if e.Image().At(15, 75).A != 0 {
		t.Fatal("first gap must stay empty")
	}
	if e.Image().At(25, 75).A == 0 {
		t.Fatal("second dash should paint")
	}
}

func TestLineDashOffsetShiftsPattern(t *testing.T) {
	render := func(offset float64) *Element {
		e := New(nil)
		ctx := e.GetContext("2d")
		ctx.SetLineDash([]float64{10, 10})
		ctx.SetLineDashOffset(offset)
		ctx.SetStrokeStyle("#00f")
		ctx.SetLineWidth(4)
		ctx.BeginPath()
		ctx.MoveTo(0, 75)
		ctx.LineTo(300, 75)
		ctx.Stroke()
		return e
	}
	plain := render(0)
	shifted := render(10)
	// With offset 10 the pattern starts in the gap.
	if plain.Image().At(5, 75).A == 0 {
		t.Fatal("offset 0: dash at origin")
	}
	if shifted.Image().At(5, 75).A != 0 {
		t.Fatal("offset 10: gap at origin")
	}
}

func TestGetLineDashCopies(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetLineDash([]float64{4, 2})
	got := ctx.GetLineDash()
	if len(got) != 2 || got[0] != 4 || got[1] != 2 {
		t.Fatalf("dash = %v", got)
	}
	got[0] = 99
	if ctx.GetLineDash()[0] != 4 {
		t.Fatal("GetLineDash must return a copy")
	}
	// Negative entries ignore the whole call.
	ctx.SetLineDash([]float64{5, -1})
	if ctx.GetLineDash()[0] != 4 {
		t.Fatal("negative dash entries must be ignored")
	}
}

func TestOddDashPatternRepeatsDoubled(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.SetLineDash([]float64{10}) // => 10 on, 10 off
	ctx.SetStrokeStyle("#0f0")
	ctx.SetLineWidth(4)
	ctx.BeginPath()
	ctx.MoveTo(0, 75)
	ctx.LineTo(100, 75)
	ctx.Stroke()
	if e.Image().At(5, 75).A == 0 || e.Image().At(15, 75).A != 0 {
		t.Fatal("odd pattern should alternate 10/10")
	}
}

func TestArcToRoundsCorner(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.MoveTo(20, 20)
	ctx.ArcTo(150, 20, 150, 70, 30) // rounded top-right corner
	ctx.LineTo(150, 120)
	ctx.SetStrokeStyle("#000")
	ctx.SetLineWidth(3)
	ctx.Stroke()
	img := e.Image()
	// The horizontal run is painted.
	if img.At(60, 20).A == 0 {
		t.Fatal("horizontal leg missing")
	}
	// The sharp corner point must NOT be painted (it is rounded off).
	if img.At(150, 20).A != 0 {
		t.Fatal("corner should be rounded away")
	}
	// The vertical leg is painted below the arc.
	if img.At(150, 100).A == 0 {
		t.Fatal("vertical leg missing")
	}
	// Some arc pixel between the tangent points exists (x≈141, y≈29 for
	// r=30 at 45°).
	found := false
	for y := 21; y < 35 && !found; y++ {
		for x := 135; x < 150; x++ {
			if img.At(x, y).A > 0 {
				found = true
				break
			}
		}
	}
	if !found {
		t.Fatal("arc segment missing")
	}
}

func TestArcToDegenerateFallsBackToLine(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.MoveTo(10, 10)
	ctx.ArcTo(100, 10, 200, 10, 20) // collinear → lineTo(100,10)
	ctx.SetStrokeStyle("#f0f")
	ctx.SetLineWidth(3)
	ctx.Stroke()
	if e.Image().At(50, 10).A == 0 {
		t.Fatal("collinear arcTo should draw the line to p1")
	}
	// Zero radius also degrades to lineTo.
	e2 := New(nil)
	ctx2 := e2.GetContext("2d")
	ctx2.BeginPath()
	ctx2.MoveTo(10, 10)
	ctx2.ArcTo(100, 60, 10, 110, 0)
	ctx2.SetStrokeStyle("#f0f")
	ctx2.Stroke()
	if e2.Image().At(55, 35).A == 0 {
		t.Fatal("zero-radius arcTo should draw the line")
	}
}

func TestIsPointInPath(t *testing.T) {
	e := New(nil)
	ctx := e.GetContext("2d")
	ctx.BeginPath()
	ctx.Rect(10, 10, 50, 50)
	if !ctx.IsPointInPath(30, 30, "") {
		t.Fatal("inside")
	}
	if ctx.IsPointInPath(5, 5, "") || ctx.IsPointInPath(70, 30, "") {
		t.Fatal("outside")
	}
	// Even-odd with nested rects: hole in the middle.
	ctx.Rect(20, 20, 30, 30)
	if ctx.IsPointInPath(35, 35, "evenodd") {
		t.Fatal("evenodd hole")
	}
	if !ctx.IsPointInPath(35, 35, "") {
		t.Fatal("nonzero fills nested rects")
	}
	if !ctx.IsPointInPath(12, 35, "evenodd") {
		t.Fatal("evenodd ring")
	}
}

func TestDashedStrokeIsMachineStable(t *testing.T) {
	render := func() string {
		e := New(nil)
		ctx := e.GetContext("2d")
		ctx.SetLineDash([]float64{7, 3, 2, 3})
		ctx.SetStrokeStyle("#123")
		ctx.SetLineWidth(2)
		ctx.BeginPath()
		ctx.MoveTo(5, 10)
		ctx.QuadraticCurveTo(150, 140, 295, 10)
		ctx.Stroke()
		return e.ToDataURL("", 0)
	}
	if render() != render() {
		t.Fatal("dashed strokes must stay deterministic")
	}
}
