package canvas

import (
	"fmt"
	"math"

	"canvassing/internal/geom"
	"canvassing/internal/raster"
)

// WebGL-lite: the minimal WebGL1 surface canvas fingerprinting scripts
// touch (§2 mentions "the same text or WebGL scene"). It is NOT a GL
// implementation — shaders are accepted and ignored, and the fixed
// pipeline renders buffered TRIANGLE/TRIANGLE_STRIP vertices in clip
// space with a machine-perturbed shading gradient. What matters for the
// study holds: getParameter exposes the machine's GPU strings, and the
// rendered scene is deterministic per machine and different across
// machines.

// GL constants (the real enum values, so scripts can use literals).
const (
	GLVendor                = 0x1F00
	GLRenderer              = 0x1F01
	GLVersion               = 0x1F02
	GLShadingLanguage       = 0x8B8C
	GLUnmaskedVendorWebGL   = 0x9245
	GLUnmaskedRendererWebGL = 0x9246
	GLMaxTextureSize        = 0x0D33
	GLColorBufferBit        = 0x00004000
	GLDepthBufferBit        = 0x00000100
	GLTriangles             = 0x0004
	GLTriangleStrip         = 0x0005
	GLVertexShader          = 0x8B31
	GLFragmentShader        = 0x8B30
	GLArrayBuffer           = 0x8892
)

// WebGLContext is the "webgl" context of an Element.
type WebGLContext struct {
	el         *Element
	clearR     float64
	clearG     float64
	clearB     float64
	clearA     float64
	buffer     []float64 // bound ARRAY_BUFFER contents
	vertexSize int       // floats per vertex (default 2)
	handleSeq  int
}

func newWebGLContext(e *Element) *WebGLContext {
	return &WebGLContext{el: e, vertexSize: 2, clearA: 1}
}

func (g *WebGLContext) trace(member string, args []string, ret string) {
	if g.el.tracer != nil {
		g.el.tracer.Trace("WebGLRenderingContext", member, args, ret)
	}
}

// GetParameter implements gl.getParameter for the fingerprint-relevant
// names; unknown parameters return "".
func (g *WebGLContext) GetParameter(pname int) string {
	p := g.el.profile
	var out string
	switch pname {
	case GLVendor:
		out = "WebKit"
	case GLRenderer:
		out = "WebKit WebGL"
	case GLVersion:
		out = "WebGL 1.0 (OpenGL ES 2.0 " + p.Name + ")"
	case GLShadingLanguage:
		out = "WebGL GLSL ES 1.0"
	case GLUnmaskedVendorWebGL:
		out = p.OS
	case GLUnmaskedRendererWebGL:
		out = p.GPU
	case GLMaxTextureSize:
		out = fmt.Sprint(4096 + int(p.Seed%3)*4096)
	}
	g.trace("getParameter", []string{fmt.Sprint(pname)}, out)
	return out
}

// GetSupportedExtensions lists extensions; the set varies per machine,
// another classic fingerprinting surface.
func (g *WebGLContext) GetSupportedExtensions() []string {
	base := []string{
		"ANGLE_instanced_arrays",
		"EXT_blend_minmax",
		"OES_element_index_uint",
		"OES_standard_derivatives",
		"WEBGL_debug_renderer_info",
		"WEBGL_lose_context",
	}
	if g.el.profile.Seed%2 == 0 {
		base = append(base, "EXT_texture_filter_anisotropic")
	}
	if g.el.profile.Seed%3 == 0 {
		base = append(base, "OES_texture_float")
	}
	g.trace("getSupportedExtensions", nil, fmt.Sprint(len(base)))
	return base
}

// ClearColor implements gl.clearColor.
func (g *WebGLContext) ClearColor(r, gr, b, a float64) {
	g.trace("clearColor", []string{fstr(r), fstr(gr), fstr(b), fstr(a)}, "")
	g.clearR, g.clearG, g.clearB, g.clearA = clamp01(r), clamp01(gr), clamp01(b), clamp01(a)
}

func clamp01(v float64) float64 {
	if v < 0 || math.IsNaN(v) {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Clear implements gl.clear(mask): COLOR_BUFFER_BIT fills the canvas with
// the clear color.
func (g *WebGLContext) Clear(mask int) {
	g.trace("clear", []string{fmt.Sprint(mask)}, "")
	if mask&GLColorBufferBit == 0 {
		return
	}
	g.el.img.Clear(raster.RGBA{
		R: uint8(g.clearR*255 + 0.5),
		G: uint8(g.clearG*255 + 0.5),
		B: uint8(g.clearB*255 + 0.5),
		A: uint8(g.clearA*255 + 0.5),
	})
}

// CreateHandle backs createShader/createProgram/createBuffer: scripts
// only need distinct truthy handles.
func (g *WebGLContext) CreateHandle(kind string) int {
	g.handleSeq++
	g.trace("create"+kind, nil, fmt.Sprint(g.handleSeq))
	return g.handleSeq
}

// NoopCall records shader-pipeline calls that the fixed pipeline ignores
// (shaderSource, compileShader, attachShader, linkProgram, useProgram,
// vertexAttribPointer, enableVertexAttribArray, bindBuffer).
func (g *WebGLContext) NoopCall(member string, args ...string) {
	g.trace(member, args, "")
}

// BufferData stores vertex data (floats) into the bound ARRAY_BUFFER.
func (g *WebGLContext) BufferData(data []float64) {
	g.trace("bufferData", []string{fmt.Sprintf("[%d floats]", len(data))}, "")
	g.buffer = append(g.buffer[:0], data...)
}

// SetVertexSize configures floats-per-vertex (vertexAttribPointer's size
// argument); only 2 and 3 are meaningful here.
func (g *WebGLContext) SetVertexSize(n int) {
	if n >= 2 && n <= 4 {
		g.vertexSize = n
	}
}

// DrawArrays implements gl.drawArrays for TRIANGLES and TRIANGLE_STRIP
// over the buffered vertices. Vertices are clip-space (x, y in [-1, 1]);
// the fixed "shader" colors fragments with a position-dependent gradient
// whose anti-aliased edges carry the machine's coverage perturbation.
func (g *WebGLContext) DrawArrays(mode, first, count int) {
	g.trace("drawArrays", []string{fmt.Sprint(mode), fmt.Sprint(first), fmt.Sprint(count)}, "")
	verts := g.vertices(first, count)
	if len(verts) < 3 {
		return
	}
	var tris [][3]geom.Point
	switch mode {
	case GLTriangles:
		for i := 0; i+2 < len(verts); i += 3 {
			tris = append(tris, [3]geom.Point{verts[i], verts[i+1], verts[i+2]})
		}
	case GLTriangleStrip:
		for i := 0; i+2 < len(verts); i++ {
			tris = append(tris, [3]geom.Point{verts[i], verts[i+1], verts[i+2]})
		}
	default:
		return
	}
	w, h := float64(g.el.img.W), float64(g.el.img.H)
	paint := raster.NewLinearGradient(0, 0, w, h)
	paint.AddStop(0, raster.RGBA{R: 255, G: 102, B: 0, A: 255})
	paint.AddStop(0.5, raster.RGBA{R: 0, G: 102, B: 153, A: 255})
	paint.AddStop(1, raster.RGBA{R: 102, G: 204, B: 0, A: 255})
	for _, tri := range tris {
		r := raster.NewRasterizer()
		device := make([]geom.Point, 3)
		for i, v := range tri {
			// Clip space → device space (y flips, as GL's does).
			device[i] = geom.Pt((v.X+1)/2*w, (1-(v.Y+1)/2)*h)
		}
		r.AddPolygon(device)
		r.Rasterize(g.el.img, paint, raster.Options{
			Alpha:       255,
			CoverageLUT: g.el.profile.CoverageLUT(),
		})
	}
}

func (g *WebGLContext) vertices(first, count int) []geom.Point {
	var out []geom.Point
	for i := first; i < first+count; i++ {
		base := i * g.vertexSize
		if base+1 >= len(g.buffer) {
			break
		}
		out = append(out, geom.Pt(g.buffer[base], g.buffer[base+1]))
	}
	return out
}
