// Package canvas emulates the HTML <canvas> element and its 2D rendering
// context on top of the software rasterizer, with full call tracing.
//
// The package exists to be *instrumented*: like the paper's modified
// Tracker Radar Collector, every API call and property access can be
// recorded (interface, member, arguments, return value) through a Tracer.
// Rendering is deterministic per machine profile, which is what makes
// canvas fingerprints stable and cross-site grouping sound.
package canvas

import (
	"fmt"
	"strings"

	"canvassing/internal/imaging"
	"canvassing/internal/machine"
	"canvassing/internal/raster"
)

// Tracer receives one record per observed Canvas API interaction.
// Implementations must be cheap; the crawler installs one per page visit.
type Tracer interface {
	// Trace is called with the interface name ("HTMLCanvasElement" or
	// "CanvasRenderingContext2D"), the member invoked, stringified
	// arguments, and the stringified return value ("" for void).
	Trace(iface, member string, args []string, ret string)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(iface, member string, args []string, ret string)

// Trace implements Tracer.
func (f TracerFunc) Trace(iface, member string, args []string, ret string) {
	f(iface, member, args, ret)
}

// ExtractHook transforms pixels at extraction time (toDataURL and
// getImageData). Canvas-randomization defenses install hooks here; a nil
// hook returns pixels unchanged.
type ExtractHook func(img *raster.Image) *raster.Image

// Element is an HTMLCanvasElement.
type Element struct {
	width, height int
	img           *raster.Image
	ctx           *Context2D
	glctx         *WebGLContext
	profile       *machine.Profile
	tracer        Tracer
	extractHook   ExtractHook
}

// defaultW and defaultH are the spec-mandated default canvas size.
const (
	defaultW = 300
	defaultH = 150
)

// New returns a canvas of the HTML default size (300×150) rendered on the
// given machine profile. A nil profile uses the Intel reference machine.
func New(profile *machine.Profile) *Element {
	if profile == nil {
		profile = machine.Intel()
	}
	return &Element{
		width:   defaultW,
		height:  defaultH,
		img:     raster.NewImage(defaultW, defaultH),
		profile: profile,
	}
}

// SetTracer installs t for this element and its context. Passing nil
// disables tracing.
func (e *Element) SetTracer(t Tracer) { e.tracer = t }

// SetExtractHook installs a pixel-extraction hook (randomization defense).
func (e *Element) SetExtractHook(h ExtractHook) { e.extractHook = h }

// Profile returns the machine profile this element renders on.
func (e *Element) Profile() *machine.Profile { return e.profile }

func (e *Element) trace(member string, args []string, ret string) {
	if e.tracer != nil {
		e.tracer.Trace("HTMLCanvasElement", member, args, ret)
	}
}

// Width returns the canvas width attribute.
func (e *Element) Width() int {
	e.trace("width", nil, fmt.Sprint(e.width))
	return e.width
}

// Height returns the canvas height attribute.
func (e *Element) Height() int {
	e.trace("height", nil, fmt.Sprint(e.height))
	return e.height
}

// SetWidth sets the width attribute. Per the HTML spec, assigning either
// dimension resets the bitmap to transparent black and the context state
// to defaults. Non-positive values select the default dimension.
func (e *Element) SetWidth(w int) {
	e.trace("width=", []string{fmt.Sprint(w)}, "")
	if w <= 0 {
		w = defaultW
	}
	e.width = w
	e.resetBitmap()
}

// SetHeight sets the height attribute; see SetWidth.
func (e *Element) SetHeight(h int) {
	e.trace("height=", []string{fmt.Sprint(h)}, "")
	if h <= 0 {
		h = defaultH
	}
	e.height = h
	e.resetBitmap()
}

func (e *Element) resetBitmap() {
	e.img = raster.NewImage(e.width, e.height)
	if e.ctx != nil {
		e.ctx.resetState()
	}
}

// GetContext returns the 2D rendering context, creating it on first use.
// Non-"2d" kinds return nil; use GetWebGL for the WebGL-lite context.
func (e *Element) GetContext(kind string) *Context2D {
	e.trace("getContext", []string{kind}, "")
	if strings.ToLower(kind) != "2d" {
		return nil
	}
	if e.ctx == nil {
		e.ctx = newContext2D(e)
	}
	return e.ctx
}

// GetWebGL returns the element's WebGL-lite context, creating it on
// first use. A canvas may hold both contexts here (real browsers bind
// one kind per canvas; scripts in this corpus never mix them).
func (e *Element) GetWebGL() *WebGLContext {
	e.trace("getContext", []string{"webgl"}, "")
	if e.glctx == nil {
		e.glctx = newWebGLContext(e)
	}
	return e.glctx
}

// Image exposes the backing pixels (no extraction hook applied). Analysis
// code uses it; page scripts must go through ToDataURL/GetImageData.
func (e *Element) Image() *raster.Image { return e.img }

// ToDataURL encodes the current bitmap as a data: URL. The format string
// follows toDataURL's first argument ("" means PNG); quality applies to
// lossy formats with <=0 selecting the 0.92 default.
func (e *Element) ToDataURL(format string, quality float64) string {
	f := imaging.ParseFormat(format)
	img := e.img
	if e.extractHook != nil {
		img = e.extractHook(img)
	}
	data, err := imaging.EncodeCached(img, f, quality)
	if err != nil {
		// Encoding a valid in-memory image cannot fail with stdlib
		// codecs; keep the API total anyway.
		data = nil
	}
	u := imaging.DataURL(f, data)
	e.trace("toDataURL", []string{format}, u)
	return u
}
