// Deferred-fingerprinting vendors ("Beyond the Crawl", Annamalai & De
// Cristofaro): services that do not fingerprint at load time but wait
// for a user signal — a click, a scroll, or an idle period — before
// rendering and extracting their test canvas. A load-time crawl
// structurally misses them; the interaction engine exists to surface
// them.
//
// They live in their own registry, not Registry(): the baseline web is
// generated without them, so studies with the interaction engine off
// produce byte-identical bundles to builds that predate this file.
package services

// Deferred is the ordered registry of interaction-gated vendors. The
// web generator plants them only when interaction studies are enabled.
func Deferred() []*Vendor {
	return []*Vendor{
		dataDome(),
		moat(),
		threatMetrix(),
		forter(),
	}
}

// DeferredBySlug returns the deferred vendor with the given slug, or
// nil.
func DeferredBySlug(slug string) *Vendor {
	for _, v := range Deferred() {
		if v.Slug == slug {
			return v
		}
	}
	return nil
}

// dataDome gates its canvas behind the first user gesture: the sensor
// registers a click listener, fingerprints once on the first click,
// and unregisters itself — the remove path real sensors use to avoid
// double-billing events.
func dataDome() *Vendor {
	v := &Vendor{
		Name:       "DataDome",
		Slug:       "datadome",
		Category:   CategorySecurity,
		ScriptHost: "js.datadome.co",
		ScriptPath: "/tags.js",
		URLPattern: "datadome.co",
		KnownCustomers: []string{
			"ticket-resale.example", "sneaker-drop.example",
		},
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.74,
			ServeSubdomain:  0.16,
			ServeFirstParty: 0.10,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("DataDome Bot Protection") + jsHashHelper + `
function __ddRender() {
	var c = document.createElement('canvas');
	c.width = 260; c.height = 60;
	var x = c.getContext('2d');
	x.textBaseline = 'top';
	x.font = '13px Arial';
	x.fillStyle = '#1b2a4e';
	x.fillRect(0, 0, 260, 24);
	x.fillStyle = '#33ccff';
	x.fillText('DataDome interstitial probe', 4, 5);
	x.globalCompositeOperation = 'multiply';
	x.fillStyle = 'rgb(255,128,0)';
	x.beginPath(); x.arc(210, 30, 18, 0, Math.PI * 2, true); x.closePath(); x.fill();
	return c.toDataURL();
}
// Fingerprint on the first real gesture only: bots that never click
// never pay the probe, and crawlers that never click never see it.
var __ddOnGesture = function() {
	window.removeEventListener('click', __ddOnGesture);
	window.__dd_signal = __fpHash(__ddRender());
};
window.addEventListener('click', __ddOnGesture);
`
	}
	return v
}

// moat ties its canvas probe to attention measurement: nothing happens
// until the page actually scrolls.
func moat() *Vendor {
	v := &Vendor{
		Name:       "Moat Analytics",
		Slug:       "moat",
		Category:   CategoryMarketing,
		ScriptHost: "z.moatads.com",
		ScriptPath: "/viewability/moatad.js",
		URLPattern: "moatads.com",
		KnownCustomers: []string{
			"news-portal.example",
		},
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.86,
			ServeCDN:        0.14,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Moat Analytics") + jsHashHelper + `
function __moatRender() {
	var c = document.createElement('canvas');
	c.width = 220; c.height = 48;
	var x = c.getContext('2d');
	x.textBaseline = 'alphabetic';
	x.font = '12pt Helvetica';
	x.fillStyle = '#e8590c';
	x.fillText('moat attention px', 3, 20);
	x.fillStyle = 'rgba(34, 139, 230, 0.6)';
	x.fillRect(60, 8, 80, 26);
	return c.toDataURL();
}
var __moatSeen = false;
window.addEventListener('scroll', function() {
	if (__moatSeen) { return; }
	__moatSeen = true;
	window.__moat_vw = __fpHash(__moatRender());
});
`
	}
	return v
}

// threatMetrix defers its behavioural profiling to an idle callback:
// the probe runs when the user pauses, which a crawl that snapshots at
// settle and leaves never reaches.
func threatMetrix() *Vendor {
	v := &Vendor{
		Name:       "LexisNexis ThreatMetrix",
		Slug:       "threatmetrix",
		Category:   CategorySecurity,
		ScriptHost: "h.online-metrix.net",
		ScriptPath: "/fp/tags.js",
		URLPattern: "online-metrix.net",
		KnownCustomers: []string{
			"bank-login.example", "loan-origination.example",
		},
		InconsistencyCheck: true,
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.58,
			ServeCNAME:      0.30,
			ServeSubdomain:  0.12,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("ThreatMetrix") + jsHashHelper + `
function __tmxRender() {
	var c = document.createElement('canvas');
	c.width = 300; c.height = 64;
	var x = c.getContext('2d');
	x.textBaseline = 'top';
	x.font = '14px "Courier New"';
	x.fillStyle = '#0b7285';
	x.fillRect(110, 2, 70, 22);
	x.fillStyle = '#fab005';
	x.fillText('tmx profiling session', 2, 14);
	x.globalCompositeOperation = 'screen';
	x.fillStyle = 'rgb(120,0,200)';
	x.beginPath(); x.arc(250, 36, 22, 0, Math.PI * 2, true); x.closePath(); x.fill();
	return c.toDataURL();
}
window.requestIdleCallback(function() {
	var __tmxSignal = 0;
` + jsConsistencyCheck("__tmxRender", "__tmxSignal") + `
	window.__tmx_profile = __tmxSignal;
});
`
	}
	return v
}

// forter defers by timer, not by user signal: the probe arms a
// setTimeout at load. The settle-time timer drain catches it, so —
// unlike the three vendors above — load-time crawls still see Forter.
// It exists to separate "deferred" from "interaction-gated" in the
// prevalence experiment.
func forter() *Vendor {
	v := &Vendor{
		Name:       "Forter",
		Slug:       "forter",
		Category:   CategorySecurity,
		ScriptHost: "cdn4.forter.com",
		ScriptPath: "/ft.js",
		URLPattern: "forter.com",
		KnownCustomers: []string{
			"flash-sale.example",
		},
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.70,
			ServeFirstParty: 0.30,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Forter Fraud Prevention") + jsHashHelper + `
function __ftRender() {
	var c = document.createElement('canvas');
	c.width = 240; c.height = 50;
	var x = c.getContext('2d');
	x.textBaseline = 'top';
	x.font = '12px Verdana';
	x.fillStyle = '#2b8a3e';
	x.fillText('forter decision beacon', 2, 6);
	x.fillStyle = 'rgba(255, 0, 102, 0.5)';
	x.fillRect(30, 18, 120, 24);
	return c.toDataURL();
}
// Deferred off the critical path, but only by a tick: any crawler
// that waits for the page to settle still observes it.
window.setTimeout(function() {
	window.__ftr_beacon = __fpHash(__ftRender());
}, 250);
`
	}
	return v
}
