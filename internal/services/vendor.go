// Package services is the registry of the fingerprinting vendors the
// paper attributes canvases to (Table 1 / Table 3): for each service it
// holds the script source actually executed by the jsvm, the hosts and
// URL patterns it serves from, how it is categorized (security vs
// marketing), whether a public demo exists, and how its customers deploy
// it (third-party include, first-party bundle, customer subdomain, CNAME
// cloak, or shared CDN).
package services

import (
	"fmt"
	"strings"
)

// Category is the public representation of a vendor's business, the
// paper's first intent proxy (§6).
type Category uint8

// Vendor business categories.
const (
	CategorySecurity  Category = iota // bot/fraud detection
	CategoryMarketing                 // advertising, attribution, analytics
	CategoryHosting                   // platform/perf monitoring (Shopify)
	CategoryMixed                     // advertised both ways (FingerprintJS)
)

// String returns the category label used in reports.
func (c Category) String() string {
	switch c {
	case CategorySecurity:
		return "security"
	case CategoryMarketing:
		return "marketing"
	case CategoryHosting:
		return "hosting"
	case CategoryMixed:
		return "mixed"
	}
	return "unknown"
}

// ServingMode is how a customer deployment delivers the vendor script.
type ServingMode uint8

// Deployment serving modes (§5.2's evasion taxonomy).
const (
	// ServeThirdParty loads the script from the vendor's own domain.
	ServeThirdParty ServingMode = iota
	// ServeFirstParty bundles the vendor code into the site's own
	// first-party JavaScript (single-page-app bundles).
	ServeFirstParty
	// ServeSubdomain serves from a customer subdomain (fp.customer.com)
	// that the vendor instructs the customer to create.
	ServeSubdomain
	// ServeCNAME serves from a customer subdomain that is CNAME-aliased
	// to the vendor's infrastructure.
	ServeCNAME
	// ServeCDN serves from a popular shared CDN.
	ServeCDN
)

// String names the serving mode.
func (m ServingMode) String() string {
	switch m {
	case ServeThirdParty:
		return "third-party"
	case ServeFirstParty:
		return "first-party"
	case ServeSubdomain:
		return "subdomain"
	case ServeCNAME:
		return "cname-cloak"
	case ServeCDN:
		return "cdn"
	}
	return "unknown"
}

// ScriptParams parameterizes script generation for one deployment.
type ScriptParams struct {
	// SiteDomain is the customer site the script runs on. Only
	// Imperva-style vendors bake it into the rendered canvas.
	SiteDomain string
}

// Vendor describes one fingerprinting service.
type Vendor struct {
	// Name is the display name used in Table 1.
	Name string
	// Slug is the stable machine identifier.
	Slug string
	// Category is the public representation of the service.
	Category Category
	// ScriptHost and ScriptPath locate the canonical third-party copy.
	ScriptHost string
	ScriptPath string
	// URLPattern is the Table 3 attribution substring found in script
	// URLs of this vendor ("" when only grouping identifies it).
	URLPattern string
	// PerSiteCanvas marks Imperva-style vendors whose test canvas is
	// unique per customer site (so cross-site grouping cannot link them).
	PerSiteCanvas bool
	// HasDemo indicates a public demo page exists for ground truth.
	HasDemo bool
	// DemoDomain hosts the demo when HasDemo.
	DemoDomain string
	// KnownCustomers are sites advertised as customers (attribution
	// ground truth when no demo exists).
	KnownCustomers []string
	// InconsistencyCheck marks scripts that render the test canvas twice
	// and compare (the §5.3 randomization probe).
	InconsistencyCheck bool
	// Source generates the deployment's script text.
	Source func(p ScriptParams) string
	// ServingWeights gives the relative frequency of each serving mode
	// among this vendor's customers; missing modes have weight 0.
	ServingWeights map[ServingMode]float64
}

// ScriptURLFor returns the canonical third-party URL of this vendor's
// script.
func (v *Vendor) ScriptURLFor() string {
	return "https://" + v.ScriptHost + v.ScriptPath
}

// MatchURL reports whether a script URL matches this vendor's Table 3
// pattern. Imperva's special regexp is handled by the attrib package;
// here "" never matches.
func (v *Vendor) MatchURL(url string) bool {
	return v.URLPattern != "" && strings.Contains(url, v.URLPattern)
}

// Registry is the ordered vendor list. Order matches Table 1.
func Registry() []*Vendor {
	return []*Vendor{
		akamai(),
		fingerprintJS(),
		mailRU(),
		fingerprintJSLegacy(),
		imperva(),
		awsFirewall(),
		insurAds(),
		signifyd(),
		perimeterX(),
		siftScience(),
		shopify(),
		adscore(),
		geeTest(),
	}
}

// BySlug returns the vendor with the given slug, or nil.
func BySlug(slug string) *Vendor {
	for _, v := range Registry() {
		if v.Slug == slug {
			return v
		}
	}
	return nil
}

// Rebrander is a company shipping the open-source FingerprintJS canvas
// under its own brand and script URL (§4.3.1): advertising and analytics
// firms whose canvases group with FingerprintJS's.
type Rebrander struct {
	Name       string
	Slug       string
	ScriptHost string
	Category   Category
}

// Rebranders lists the FingerprintJS-OSS rebranders the paper names.
func Rebranders() []Rebrander {
	return []Rebrander{
		{Name: "Aidata", Slug: "aidata", ScriptHost: "aidata.io", Category: CategoryMarketing},
		{Name: "adskeeper", Slug: "adskeeper", ScriptHost: "adskeeper.com", Category: CategoryMarketing},
		{Name: "trafficjunky", Slug: "trafficjunky", ScriptHost: "trafficjunky.net", Category: CategoryMarketing},
		{Name: "MGID", Slug: "mgid", ScriptHost: "mgid.com", Category: CategoryMarketing},
		{Name: "acint.net", Slug: "acint", ScriptHost: "acint.net", Category: CategoryMarketing},
	}
}

// header renders the copyright banner that content-based attribution
// looks for inside scripts.
func header(name string) string {
	return fmt.Sprintf("/*! %s device intelligence | (c) %s | all rights reserved */\n", name, name)
}
