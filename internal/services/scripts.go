package services

import "fmt"

// jsHashHelper is the hashing routine shared (copy-pasted, as vendors do)
// across fingerprinting scripts: djb2 over the data URL.
const jsHashHelper = `
function __fpHash(s) {
	var h = 5381;
	for (var i = 0; i < s.length; i++) {
		h = ((h << 5) + h + s.charCodeAt(i)) & 0x7fffffff;
	}
	return h;
}
`

// jsConsistencyCheck renders the same canvas twice and compares the
// extractions — Algorithm 1 from the paper's appendix. renderFn must be
// the name of a zero-argument function returning a data URL.
func jsConsistencyCheck(renderFn, resultVar string) string {
	return fmt.Sprintf(`
var __first = %[1]s();
var __second = %[1]s();
if (__first === __second) {
	%[2]s = __fpHash(__first);
} else {
	// Canvas randomization detected: disregard the canvas component.
	%[2]s = 0;
}
`, renderFn, resultVar)
}

func akamai() *Vendor {
	v := &Vendor{
		Name:               "Akamai",
		Slug:               "akamai",
		Category:           CategorySecurity,
		ScriptHost:         "", // served from the customer's own origin
		ScriptPath:         "/akam/13/5ab2ec9e",
		URLPattern:         "/akam/",
		HasDemo:            true,
		DemoDomain:         "bot-demo.akamai.com",
		InconsistencyCheck: true,
		ServingWeights: map[ServingMode]float64{
			// Akamai fronts the site itself, so its sensor script is
			// always same-origin (footnote 5: first-party exception).
			ServeFirstParty: 1,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Akamai Bot Manager") + jsHashHelper + `
function __akamRender() {
	var c = document.createElement('canvas');
	c.width = 280; c.height = 60;
	var x = c.getContext('2d');
	x.textBaseline = 'top';
	x.font = '14px Arial';
	x.fillStyle = '#f60';
	x.fillRect(125, 1, 62, 20);
	x.fillStyle = '#069';
	x.fillText('BotMan,sensor <canvas> 1.0', 2, 15);
	x.fillStyle = 'rgba(102, 204, 0, 0.7)';
	x.fillText('BotMan,sensor <canvas> 1.0', 4, 17);
	x.globalCompositeOperation = 'multiply';
	x.fillStyle = 'rgb(255,0,255)';
	x.beginPath(); x.arc(225, 35, 20, 0, Math.PI * 2, true); x.closePath(); x.fill();
	return c.toDataURL();
}
var __akamSignal = 0;
` + jsConsistencyCheck("__akamRender", "__akamSignal") + `
window.__akam_bm = __akamSignal;
`
	}
	return v
}

func fingerprintJS() *Vendor {
	v := &Vendor{
		Name:       "FingerprintJS",
		Slug:       "fingerprintjs",
		Category:   CategoryMixed,
		ScriptHost: "fpnpmcdn.net",
		ScriptPath: "/v3/fp.min.js",
		URLPattern: "fpnpmcdn.net",
		HasDemo:    true,
		DemoDomain: "demo.fingerprint.com",
		KnownCustomers: []string{
			"checkout-flow.example", "travel-fare.example",
		},
		InconsistencyCheck: true,
		ServingWeights: map[ServingMode]float64{
			// Mostly the OSS library bundled into first-party JS; the
			// commercial tier uses fpnpmcdn.net or a Cloudflare worker.
			ServeFirstParty: 0.62,
			ServeThirdParty: 0.28,
			ServeCDN:        0.06,
			ServeCNAME:      0.04,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("FingerprintJS") + jsHashHelper + `
function __fpjsWinding() {
	var c = document.createElement('canvas');
	c.width = 1; c.height = 1;
	var x = c.getContext('2d');
	x.rect(0, 0, 10, 10);
	x.rect(2, 2, 6, 6);
	return x.globalCompositeOperation;
}
function __fpjsText() {
	var c = document.createElement('canvas');
	c.width = 240; c.height = 60;
	var x = c.getContext('2d');
	x.textBaseline = 'alphabetic';
	x.fillStyle = '#f60';
	x.fillRect(100, 1, 62, 20);
	x.fillStyle = '#069';
	x.font = '11pt "Times New Roman"';
	var printedText = 'Cwm fjordbank gly 😃';
	x.fillText(printedText, 2, 15);
	x.fillStyle = 'rgba(102, 204, 0, 0.2)';
	x.font = '18pt Arial';
	x.fillText(printedText, 4, 45);
	return c.toDataURL();
}
function __fpjsGeometry() {
	var c = document.createElement('canvas');
	c.width = 122; c.height = 110;
	var x = c.getContext('2d');
	x.globalCompositeOperation = 'multiply';
	var colors = ['#f2f', '#2ff', '#ff2'];
	var offsets = [[40, 40], [80, 40], [60, 80]];
	for (var i = 0; i < 3; i++) {
		x.fillStyle = colors[i];
		x.beginPath();
		x.arc(offsets[i][0], offsets[i][1], 40, 0, Math.PI * 2, true);
		x.closePath();
		x.fill();
	}
	x.fillStyle = '#f9c';
	x.arc(60, 60, 60, Math.PI * 1.5, Math.PI, false);
	x.fill();
	return c.toDataURL();
}
var __fpjsTextSignal = 0;
` + jsConsistencyCheck("__fpjsText", "__fpjsTextSignal") + `
// The library never lets a canvas failure break the host page.
var __fpjsGeomSignal = 0;
try {
	__fpjsGeomSignal = __fpHash(__fpjsGeometry()) ^ __fpHash(__fpjsWinding());
} catch (e) {
	__fpjsGeomSignal = -1; // "unsupported" marker, as fpjs reports
}
window.__fpjs_visitor = __fpjsTextSignal ^ __fpjsGeomSignal;
`
	}
	return v
}

func fingerprintJSLegacy() *Vendor {
	v := &Vendor{
		Name:       "FingerprintJS (legacy)",
		Slug:       "fingerprintjs-legacy",
		Category:   CategoryMixed,
		ScriptHost: "fpnpmcdn.net",
		ScriptPath: "/v2/fp2.js",
		URLPattern: "fpnpmcdn.net/v2",
		HasDemo:    false,
		KnownCustomers: []string{
			"forum-archive.example",
		},
		InconsistencyCheck: false,
		ServingWeights: map[ServingMode]float64{
			ServeFirstParty: 0.75,
			ServeThirdParty: 0.25,
		},
	}
	v.Source = func(p ScriptParams) string {
		// The ~2020 library draws a different layout — one canvas, no
		// emoji, no double-render check — so it clusters separately from
		// the modern script (§4.3.1).
		return header("fingerprintjs2") + jsHashHelper + `
function __fp2Canvas() {
	var c = document.createElement('canvas');
	c.width = 2000; c.height = 200;
	var x = c.getContext('2d');
	x.rect(0, 0, 10, 10);
	x.rect(2, 2, 6, 6);
	x.textBaseline = 'alphabetic';
	x.fillStyle = '#f60';
	x.fillRect(125, 1, 62, 20);
	x.fillStyle = '#069';
	x.font = '11pt no-real-font-123';
	x.fillText('Cwm fjordbank glyphs vext quiz,', 2, 15);
	x.fillStyle = 'rgba(102, 204, 0, 0.2)';
	x.font = '18pt Arial';
	x.fillText('Cwm fjordbank glyphs vext quiz,', 4, 45);
	return c.toDataURL();
}
window.__fp2_murmur = __fpHash(__fp2Canvas());
`
	}
	return v
}

func mailRU() *Vendor {
	v := &Vendor{
		Name:       "mail.ru",
		Slug:       "mailru",
		Category:   CategoryMarketing,
		ScriptHost: "privacy-cs.mail.ru",
		ScriptPath: "/top/counter.js",
		URLPattern: "privacy-cs.mail.ru",
		HasDemo:    false,
		KnownCustomers: []string{
			"news-portal.example.ru",
		},
		InconsistencyCheck: false,
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.9,
			ServeFirstParty: 0.1,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Mail.Ru Group Top100") + jsHashHelper + `
function __mrCanvas() {
	var c = document.createElement('canvas');
	c.width = 300; c.height = 40;
	var x = c.getContext('2d');
	x.font = '13px Tahoma';
	x.fillStyle = '#36c';
	x.fillText('Top100 mail.ru schetchik 9', 5, 18);
	x.strokeStyle = '#c63';
	x.lineWidth = 2;
	x.beginPath();
	x.moveTo(5, 28); x.lineTo(140, 24); x.lineTo(260, 33);
	x.stroke();
	x.globalAlpha = 0.6;
	x.fillStyle = '#693';
	x.fillRect(180, 4, 80, 12);
	return c.toDataURL();
}
function __mrProbe() {
	var c = document.createElement('canvas');
	c.width = 120; c.height = 30;
	var x = c.getContext('2d');
	x.font = 'bold 11px Arial';
	x.fillStyle = '#168de2';
	x.fillText('VK (R) top.mail.ru', 3, 20);
	x.strokeStyle = '#f60';
	x.beginPath();
	x.arc(100, 14, 9, 0.4, 5.2, false);
	x.stroke();
	return c.toDataURL();
}
window.__tns_counter = __fpHash(__mrCanvas()) ^ __fpHash(__mrProbe());
`
	}
	return v
}

func imperva() *Vendor {
	v := &Vendor{
		Name:       "Imperva",
		Slug:       "imperva",
		Category:   CategorySecurity,
		ScriptHost: "", // first-party path with a site-specific name
		ScriptPath: "/Advanced-Protection",
		URLPattern: "", // identified via the A.3 regexp, not a substring
		// Imperva's defining property: each deployment renders a canvas
		// unique to that site, so grouping cannot link its customers.
		PerSiteCanvas:      true,
		HasDemo:            false,
		InconsistencyCheck: false,
		ServingWeights: map[ServingMode]float64{
			ServeFirstParty: 1,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Imperva Advanced Bot Protection") + jsHashHelper + fmt.Sprintf(`
var __impervaSiteTag = %q;
function __impvRender() {
	var c = document.createElement('canvas');
	c.width = 260; c.height = 48;
	var x = c.getContext('2d');
	x.font = '12px Courier';
	x.fillStyle = '#222';
	// The per-deployment token makes this canvas unique to the site.
	x.fillText('abp:' + __impervaSiteTag, 4, 14);
	x.fillStyle = '#b00';
	x.fillRect(4, 20, (__fpHash(__impervaSiteTag) %% 180) + 20, 8);
	x.beginPath();
	x.arc(220, 30, 12, 0, Math.PI * 2, false);
	x.fillStyle = '#07a';
	x.fill();
	return c.toDataURL();
}
window.__impv_abp = __fpHash(__impvRender());
`, p.SiteDomain)
	}
	return v
}

func awsFirewall() *Vendor {
	v := &Vendor{
		Name:       "AWS Firewall",
		Slug:       "aws-waf",
		Category:   CategorySecurity,
		ScriptHost: "token.awswaf.com",
		ScriptPath: "/challenge.js",
		URLPattern: "awswaf.com",
		HasDemo:    false,
		KnownCustomers: []string{
			"aws-shop.example",
		},
		InconsistencyCheck: false,
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 1,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("AWS WAF JavaScript SDK") + jsHashHelper + `
function __wafCanvas() {
	var c = document.createElement('canvas');
	c.width = 200; c.height = 50;
	var x = c.getContext('2d');
	x.fillStyle = '#f90';
	x.beginPath();
	x.moveTo(10, 40); x.lineTo(50, 8); x.lineTo(90, 40);
	x.closePath(); x.fill();
	x.strokeStyle = '#146eb4';
	x.lineWidth = 3;
	x.strokeRect(100, 8, 80, 32);
	x.font = '10px Verdana';
	x.fillStyle = '#146eb4';
	x.fillText('awswaf integrity 2.1', 104, 28);
	return c.toDataURL();
}
window.__aws_waf_token = __fpHash(__wafCanvas());
`
	}
	return v
}

func insurAds() *Vendor {
	v := &Vendor{
		Name:       "InsurAds",
		Slug:       "insurads",
		Category:   CategoryMarketing,
		ScriptHost: "cdn.insurads.com",
		ScriptPath: "/bootstrap.js",
		URLPattern: "insurads.com",
		HasDemo:    true,
		DemoDomain: "demo.insurads.com",
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 1,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("InsurAds Attention") + jsHashHelper + `
function __insCanvas() {
	var c = document.createElement('canvas');
	c.width = 180; c.height = 44;
	var x = c.getContext('2d');
	var g = x.createLinearGradient(0, 0, 180, 0);
	g.addColorStop(0, '#0c6');
	g.addColorStop(0.5, '#fc0');
	g.addColorStop(1, '#c06');
	x.fillStyle = g;
	x.fillRect(0, 0, 180, 24);
	x.font = '11px Helvetica';
	x.fillStyle = '#124';
	x.fillText('attention-rtuo 360', 8, 38);
	return c.toDataURL();
}
window.__insurads_att = __fpHash(__insCanvas());
`
	}
	return v
}

func signifyd() *Vendor {
	v := &Vendor{
		Name:       "Signifyd",
		Slug:       "signifyd",
		Category:   CategorySecurity,
		ScriptHost: "cdn-scripts.signifyd.com",
		ScriptPath: "/api/script-tag.js",
		URLPattern: "signifyd.com",
		HasDemo:    true,
		DemoDomain: "demo.signifyd.com",
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.85,
			ServeSubdomain:  0.15,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Signifyd Fraud Protection") + jsHashHelper + `
function __sgfCanvas() {
	var c = document.createElement('canvas');
	c.width = 220; c.height = 40;
	var x = c.getContext('2d');
	x.font = 'italic 12px Georgia';
	x.fillStyle = '#401';
	x.fillText('Signifyd guaranteed, fraud 0', 4, 16);
	x.transform(1, 0.12, -0.12, 1, 120, 28);
	x.fillStyle = 'rgba(20, 110, 180, 0.8)';
	x.fillRect(-60, -6, 120, 10);
	x.setTransform(1, 0, 0, 1, 0, 0);
	return c.toDataURL();
}
window.__sgf_device = __fpHash(__sgfCanvas());
`
	}
	return v
}

func perimeterX() *Vendor {
	v := &Vendor{
		Name:               "PerimeterX",
		Slug:               "perimeterx",
		Category:           CategorySecurity,
		ScriptHost:         "client.px-cloud.net",
		ScriptPath:         "/main.min.js",
		URLPattern:         "px-cloud.net",
		HasDemo:            true,
		DemoDomain:         "demo.perimeterx.com",
		InconsistencyCheck: true,
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.7,
			ServeCNAME:      0.3,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("HUMAN / PerimeterX Bot Defender") + jsHashHelper + `
function __pxRender() {
	var c = document.createElement('canvas');
	c.width = 190; c.height = 60;
	var x = c.getContext('2d');
	x.fillStyle = '#e8e8e8';
	x.fillRect(0, 0, 190, 60);
	x.font = '16px Arial';
	x.fillStyle = '#d5007f';
	x.fillText('PX7!? <|> mosaic', 8, 22);
	x.globalCompositeOperation = 'xor';
	x.beginPath();
	x.ellipse(120, 38, 40, 14, 0.5, 0, Math.PI * 2, false);
	x.fillStyle = '#00b3a4';
	x.fill();
	return c.toDataURL();
}
var __pxSignal = 0;
` + jsConsistencyCheck("__pxRender", "__pxSignal") + `
window.__px_vid = __pxSignal;
`
	}
	return v
}

func siftScience() *Vendor {
	v := &Vendor{
		Name:               "Sift Science",
		Slug:               "sift",
		Category:           CategorySecurity,
		ScriptHost:         "cdn.sift.com",
		ScriptPath:         "/s.js",
		URLPattern:         "sift.com",
		HasDemo:            true,
		DemoDomain:         "demo.sift.com",
		InconsistencyCheck: false,
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 1,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Sift Digital Trust & Safety") + jsHashHelper + `
function __siftRender() {
	var c = document.createElement('canvas');
	c.width = 210; c.height = 48;
	var x = c.getContext('2d');
	x.font = '13px "Courier New"';
	x.fillStyle = '#325';
	x.fillText('sift trust{&}safety 🔒', 4, 18);
	x.lineCap = 'round';
	x.lineWidth = 5;
	x.strokeStyle = '#fa0';
	x.beginPath();
	x.moveTo(10, 36);
	x.quadraticCurveTo(100, 18, 200, 38);
	x.stroke();
	return c.toDataURL();
}
window.__sift_beacon = __fpHash(__siftRender());
`
	}
	return v
}

func shopify() *Vendor {
	v := &Vendor{
		Name:       "Shopify",
		Slug:       "shopify",
		Category:   CategoryHosting,
		ScriptHost: "cdn.shopifycloud.com",
		ScriptPath: "/perf-kit/shopify-perf-kit.min.js",
		URLPattern: "shopifycloud",
		HasDemo:    true,
		DemoDomain: "perf.shopify.dev",
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 1,
		},
	}
	v.Source = func(p ScriptParams) string {
		// Storefront "performance monitoring" canvas (§4.2's tail-site
		// outlier): one benchmark-style canvas per storefront page load.
		return header("Shopify Storefront Renderer perf-kit") + jsHashHelper + `
function __spkCanvas() {
	var c = document.createElement('canvas');
	c.width = 257; c.height = 60;
	var x = c.getContext('2d');
	for (var i = 0; i < 8; i++) {
		x.fillStyle = i % 2 === 0 ? '#95bf47' : '#5e8e3e';
		x.fillRect(i * 32, 40 - i * 3, 28, 16 + i * 3);
	}
	x.font = '12px Futura';
	x.fillStyle = '#212326';
	x.fillText('storefront-renderer p75', 6, 14);
	return c.toDataURL();
}
function __spkTextBench() {
	var c = document.createElement('canvas');
	c.width = 180; c.height = 32;
	var x = c.getContext('2d');
	x.font = 'italic 13px Futura';
	x.fillStyle = '#5e8e3e';
	x.fillText('LCP paint budget 2.5s', 4, 21);
	return c.toDataURL();
}
window.__spk_metric = __fpHash(__spkCanvas()) ^ __fpHash(__spkTextBench());
`
	}
	return v
}

func adscore() *Vendor {
	v := &Vendor{
		Name:               "Adscore",
		Slug:               "adscore",
		Category:           CategorySecurity,
		ScriptHost:         "c.adsco.re",
		ScriptPath:         "/detect.js",
		URLPattern:         "adsco.re",
		HasDemo:            true,
		DemoDomain:         "demo.adsco.re",
		InconsistencyCheck: true,
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 0.8,
			ServeSubdomain:  0.2,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("Adscore Invalid Traffic Detection") + jsHashHelper + `
function __adsRender() {
	var c = document.createElement('canvas');
	c.width = 160; c.height = 36;
	var x = c.getContext('2d');
	x.font = 'bold 14px Arial';
	x.fillStyle = '#0a5';
	x.fillText('AdScore/9000 ivt', 4, 22);
	x.globalAlpha = 0.4;
	x.fillStyle = '#50a';
	x.beginPath();
	x.arc(130, 18, 14, 0, Math.PI * 1.4, false);
	x.fill();
	return c.toDataURL();
}
var __adsSignal = 0;
` + jsConsistencyCheck("__adsRender", "__adsSignal") + `
window.__adsco_re = __adsSignal;
`
	}
	return v
}

func geeTest() *Vendor {
	v := &Vendor{
		Name:       "GeeTest",
		Slug:       "geetest",
		Category:   CategorySecurity,
		ScriptHost: "static.geetest.com",
		ScriptPath: "/v4/gt4.js",
		URLPattern: "geetest.com",
		HasDemo:    true,
		DemoDomain: "demo.geetest.com",
		ServingWeights: map[ServingMode]float64{
			ServeThirdParty: 1,
		},
	}
	v.Source = func(p ScriptParams) string {
		return header("GeeTest Adaptive CAPTCHA") + jsHashHelper + `
function __gtCanvas() {
	var c = document.createElement('canvas');
	c.width = 120; c.height = 48;
	var x = c.getContext('2d');
	// Puzzle-piece silhouette.
	x.fillStyle = '#3c6ff0';
	x.beginPath();
	x.moveTo(10, 12); x.lineTo(50, 12);
	x.arc(60, 12, 10, Math.PI, 0, true);
	x.lineTo(110, 12); x.lineTo(110, 40); x.lineTo(10, 40);
	x.closePath(); x.fill();
	x.font = '9px monospace';
	x.fillStyle = '#fff';
	x.fillText('gt4 slide 2 verify', 18, 30);
	return c.toDataURL();
}
window.__geetest_probe = __fpHash(__gtCanvas());
`
	}
	return v
}

// RebranderSource wraps the open-source FingerprintJS canvas in a
// rebrander's own banner and bootstrap — the canvas bytes group with
// FingerprintJS while the script URL and copyright point elsewhere.
func RebranderSource(r Rebrander) string {
	base := fingerprintJS().Source(ScriptParams{})
	// Strip the FingerprintJS banner (first line) and substitute the
	// rebrander's own, exactly like a vendor bundling the OSS library.
	i := 0
	for i < len(base) && base[i] != '\n' {
		i++
	}
	return header(r.Name) + "/* bundled fingerprintjs oss */" + base[i:] +
		fmt.Sprintf("\nwindow.__%s_uid = window.__fpjs_visitor;\n", r.Slug)
}
