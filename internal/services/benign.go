package services

// Benign canvas scripts: toDataURL users that are NOT fingerprinting.
// The detection heuristics (§3.2) must exclude all of these; the E10
// experiment audits exactly that.

// BenignKind identifies a benign canvas-usage pattern.
type BenignKind string

// Benign script kinds observed in the paper's appendix A.2.
const (
	// BenignWebP probes webp encoding support via a tiny canvas
	// (dailynews.com, smule.com, tinder.com, nj.gov do this).
	BenignWebP BenignKind = "webp-check"
	// BenignEmoji probes emoji rendering support on a small canvas.
	BenignEmoji BenignKind = "emoji-check"
	// BenignSmall extracts a tiny (< 16x16) canvas, typically uniform
	// color (lacounty.gov's 12x12, betus.com.pa's 5x5).
	BenignSmall BenignKind = "small-canvas"
	// BenignEditor is an image-manipulation tool exporting JPEG and
	// using animation-style save/restore sequences.
	BenignEditor BenignKind = "image-editor"
	// BenignChart draws a chart but never extracts pixels.
	BenignChart BenignKind = "chart"
)

// BenignKinds lists all benign script kinds.
func BenignKinds() []BenignKind {
	return []BenignKind{BenignWebP, BenignEmoji, BenignSmall, BenignEditor, BenignChart}
}

// BenignSource returns the script text for a benign canvas user.
func BenignSource(kind BenignKind) string {
	switch kind {
	case BenignWebP:
		return `
// Feature detection: can this browser encode webp?
var __wpc = document.createElement('canvas');
__wpc.width = 1; __wpc.height = 1;
var __wpu = __wpc.toDataURL('image/webp');
window.__supportsWebP = __wpu.indexOf('data:image/webp') === 0;
`
	case BenignEmoji:
		return `
// Feature detection: does this platform render emoji glyphs?
var __emc = document.createElement('canvas');
__emc.width = 12; __emc.height = 12;
var __emx = __emc.getContext('2d');
__emx.textBaseline = 'top';
__emx.font = '10px Arial';
__emx.fillText('😃', 0, 0);
var __emd = __emx.getImageData(0, 0, 12, 12).data;
var __emSum = 0;
for (var i = 0; i < __emd.length; i += 4) { __emSum += __emd[i + 3]; }
window.__supportsEmoji = __emSum > 0;
__emc.toDataURL();
`
	case BenignSmall:
		return `
// Tiny uniform canvas extraction (purpose unclear in the wild, but
// far too small to fingerprint).
var __smc = document.createElement('canvas');
__smc.width = 5; __smc.height = 5;
var __smx = __smc.getContext('2d');
__smx.fillStyle = '#dddddd';
__smx.fillRect(0, 0, 5, 5);
window.__smPixel = __smc.toDataURL();
`
	case BenignEditor:
		return `
// In-browser image editor: draws layers with save/restore and exports
// the composition — animation-shaped (save/restore), so excluded.
var __edc = document.createElement('canvas');
__edc.width = 320; __edc.height = 240;
var __edx = __edc.getContext('2d');
__edx.fillStyle = '#87ceeb';
__edx.fillRect(0, 0, 320, 240);
for (var frame = 0; frame < 4; frame++) {
	__edx.save();
	__edx.translate(40 + frame * 20, 120);
	__edx.rotate(frame * 0.2);
	__edx.fillStyle = 'rgba(200, 80, 40, 0.8)';
	__edx.fillRect(-15, -15, 30, 30);
	__edx.restore();
}
window.__editorExport = __edc.toDataURL();
`
	case BenignChart:
		return `
// Charting library: heavy canvas use, zero extraction.
var __chc = document.createElement('canvas');
__chc.width = 400; __chc.height = 200;
var __chx = __chc.getContext('2d');
__chx.strokeStyle = '#4682b4';
__chx.lineWidth = 2;
__chx.beginPath();
__chx.moveTo(10, 180);
var vals = [120, 80, 140, 60, 100, 40, 90];
for (var i = 0; i < vals.length; i++) {
	__chx.lineTo(40 + i * 50, vals[i]);
}
__chx.stroke();
__chx.font = '10px Arial';
__chx.fillStyle = '#333';
__chx.fillText('weekly sessions', 10, 14);
`
	}
	return ""
}
