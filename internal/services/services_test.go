package services

import (
	"strings"
	"testing"

	"canvassing/internal/dom"
	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
)

// runScript executes src on a fresh page and returns the toDataURL values
// extracted, in order.
func runScript(t *testing.T, src, domain string, prof *machine.Profile) []string {
	t.Helper()
	in := jsvm.New(jsvm.Options{RandSeed: 7})
	doc := dom.NewDocument(prof, domain)
	var extractions []string
	doc.Tracer = tracerFunc(func(iface, member string, args []string, ret string) {
		if member == "toDataURL" {
			extractions = append(extractions, ret)
		}
	})
	doc.Install(in)
	if _, err := in.RunSource(src); err != nil {
		t.Fatalf("script error: %v\n--- source ---\n%s", err, src)
	}
	return extractions
}

type tracerFunc func(iface, member string, args []string, ret string)

func (f tracerFunc) Trace(iface, member string, args []string, ret string) {
	f(iface, member, args, ret)
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 13 {
		t.Fatalf("registry size = %d, want 13 (Table 1)", len(reg))
	}
	seen := map[string]bool{}
	for _, v := range reg {
		if v.Slug == "" || v.Name == "" {
			t.Fatalf("incomplete vendor: %+v", v)
		}
		if seen[v.Slug] {
			t.Fatalf("duplicate slug %s", v.Slug)
		}
		seen[v.Slug] = true
		if v.Source == nil {
			t.Fatalf("%s has no script source", v.Slug)
		}
		if len(v.ServingWeights) == 0 {
			t.Fatalf("%s has no serving weights", v.Slug)
		}
	}
}

func TestBySlug(t *testing.T) {
	if BySlug("akamai") == nil || BySlug("akamai").Name != "Akamai" {
		t.Fatal("BySlug akamai")
	}
	if BySlug("nope") != nil {
		t.Fatal("unknown slug should be nil")
	}
}

func TestEveryVendorScriptRuns(t *testing.T) {
	for _, v := range Registry() {
		v := v
		t.Run(v.Slug, func(t *testing.T) {
			src := v.Source(ScriptParams{SiteDomain: "customer.example"})
			ex := runScript(t, src, "customer.example", machine.Intel())
			if len(ex) == 0 {
				t.Fatalf("%s extracted no canvases", v.Slug)
			}
			for _, u := range ex {
				if !strings.HasPrefix(u, "data:image/png;base64,") {
					t.Fatalf("%s extracted non-png: %.40s", v.Slug, u)
				}
			}
		})
	}
}

func TestVendorCanvasesAreStableAcrossSites(t *testing.T) {
	for _, v := range Registry() {
		if v.PerSiteCanvas {
			continue
		}
		a := runScript(t, v.Source(ScriptParams{SiteDomain: "site-a.com"}), "site-a.com", machine.Intel())
		b := runScript(t, v.Source(ScriptParams{SiteDomain: "site-b.com"}), "site-b.com", machine.Intel())
		if len(a) != len(b) {
			t.Fatalf("%s: extraction count differs across sites", v.Slug)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s: canvas %d differs across sites — grouping would break", v.Slug, i)
			}
		}
	}
}

func TestImpervaCanvasIsPerSite(t *testing.T) {
	v := BySlug("imperva")
	a := runScript(t, v.Source(ScriptParams{SiteDomain: "site-a.com"}), "site-a.com", machine.Intel())
	b := runScript(t, v.Source(ScriptParams{SiteDomain: "site-b.com"}), "site-b.com", machine.Intel())
	if a[0] == b[0] {
		t.Fatal("Imperva canvases must differ per customer site")
	}
}

func TestVendorCanvasesAreDistinct(t *testing.T) {
	// The core premise: each vendor's test canvas set identifies it.
	seen := map[string]string{}
	for _, v := range Registry() {
		ex := runScript(t, v.Source(ScriptParams{SiteDomain: "x.com"}), "x.com", machine.Intel())
		for _, u := range ex {
			if prev, ok := seen[u]; ok && prev != v.Slug {
				// FingerprintJS legacy and modern intentionally share
				// nothing; no two vendors may collide.
				t.Fatalf("canvas collision between %s and %s", prev, v.Slug)
			}
			seen[u] = v.Slug
		}
	}
}

func TestVendorCanvasesDifferAcrossMachines(t *testing.T) {
	for _, v := range Registry() {
		src := v.Source(ScriptParams{SiteDomain: "x.com"})
		intel := runScript(t, src, "x.com", machine.Intel())
		m1 := runScript(t, src, "x.com", machine.AppleM1())
		anyDiff := false
		for i := range intel {
			if i < len(m1) && intel[i] != m1[i] {
				anyDiff = true
			}
		}
		if !anyDiff {
			t.Fatalf("%s renders identically on Intel and M1 — no machine entropy", v.Slug)
		}
	}
}

func TestInconsistencyCheckersExtractTwice(t *testing.T) {
	for _, v := range Registry() {
		src := v.Source(ScriptParams{SiteDomain: "x.com"})
		ex := runScript(t, src, "x.com", machine.Intel())
		// Count duplicate extractions (same bytes twice = double render).
		counts := map[string]int{}
		for _, u := range ex {
			counts[u]++
		}
		hasDouble := false
		for _, c := range counts {
			if c >= 2 {
				hasDouble = true
			}
		}
		if v.InconsistencyCheck && !hasDouble {
			t.Fatalf("%s should double-render its test canvas", v.Slug)
		}
		if !v.InconsistencyCheck && hasDouble {
			t.Fatalf("%s unexpectedly double-renders", v.Slug)
		}
	}
}

func TestScriptsCarryCopyrightBanner(t *testing.T) {
	for _, v := range Registry() {
		src := v.Source(ScriptParams{SiteDomain: "x.com"})
		if !strings.HasPrefix(src, "/*!") {
			t.Fatalf("%s missing banner", v.Slug)
		}
	}
}

func TestSecurityCategorization(t *testing.T) {
	// Table 1's bold (security) set.
	security := map[string]bool{
		"akamai": true, "imperva": true, "aws-waf": true, "signifyd": true,
		"perimeterx": true, "sift": true, "adscore": true, "geetest": true,
	}
	for _, v := range Registry() {
		if security[v.Slug] && v.Category != CategorySecurity {
			t.Fatalf("%s should be security, got %v", v.Slug, v.Category)
		}
		if !security[v.Slug] && v.Category == CategorySecurity {
			t.Fatalf("%s should not be security", v.Slug)
		}
	}
	if CategorySecurity.String() != "security" || CategoryMixed.String() != "mixed" {
		t.Fatal("category strings")
	}
}

func TestTable3Patterns(t *testing.T) {
	// Spot-check the Table 3 script patterns.
	pat := map[string]string{
		"akamai":        "/akam/",
		"fingerprintjs": "fpnpmcdn.net",
		"mailru":        "privacy-cs.mail.ru",
		"aws-waf":       "awswaf.com",
		"insurads":      "insurads.com",
		"signifyd":      "signifyd.com",
		"perimeterx":    "px-cloud.net",
		"sift":          "sift.com",
		"shopify":       "shopifycloud",
		"adscore":       "adsco.re",
		"geetest":       "geetest.com",
	}
	for slug, want := range pat {
		v := BySlug(slug)
		if v == nil || v.URLPattern != want {
			t.Fatalf("%s pattern = %q, want %q", slug, v.URLPattern, want)
		}
	}
	if BySlug("imperva").URLPattern != "" {
		t.Fatal("imperva must have no substring pattern (regexp-based)")
	}
}

func TestMatchURL(t *testing.T) {
	ak := BySlug("akamai")
	if !ak.MatchURL("https://www.bank.com/akam/13/5ab2ec9e") {
		t.Fatal("akamai pattern should match first-party path")
	}
	if ak.MatchURL("https://www.bank.com/js/app.js") {
		t.Fatal("should not match")
	}
	if BySlug("imperva").MatchURL("https://x.com/anything") {
		t.Fatal("empty pattern never matches")
	}
}

func TestRebranders(t *testing.T) {
	rs := Rebranders()
	if len(rs) != 5 {
		t.Fatalf("rebrander count = %d, want 5", len(rs))
	}
	fpjs := runScript(t, BySlug("fingerprintjs").Source(ScriptParams{}), "x.com", machine.Intel())
	for _, r := range rs {
		src := RebranderSource(r)
		if !strings.Contains(src, r.Name) {
			t.Fatalf("%s banner missing", r.Slug)
		}
		ex := runScript(t, src, "x.com", machine.Intel())
		// The rebrander's canvases group with FingerprintJS's.
		match := 0
		for _, u := range ex {
			for _, f := range fpjs {
				if u == f {
					match++
					break
				}
			}
		}
		if match == 0 {
			t.Fatalf("%s canvases should group with FingerprintJS", r.Slug)
		}
	}
}

func TestBenignScriptsRun(t *testing.T) {
	for _, kind := range BenignKinds() {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			src := BenignSource(kind)
			if src == "" {
				t.Fatal("empty source")
			}
			ex := runScript(t, src, "x.com", machine.Intel())
			switch kind {
			case BenignChart:
				if len(ex) != 0 {
					t.Fatal("chart must not extract")
				}
			case BenignWebP:
				if len(ex) != 1 || !strings.HasPrefix(ex[0], "data:image/webp") {
					t.Fatalf("webp check should extract webp: %v", ex)
				}
			case BenignEditor:
				if len(ex) != 1 || !strings.HasPrefix(ex[0], "data:image/png") {
					t.Fatalf("editor should export png: %v", ex)
				}
			default:
				if len(ex) == 0 {
					t.Fatal("should extract")
				}
			}
		})
	}
	if BenignSource(BenignKind("nope")) != "" {
		t.Fatal("unknown kind should be empty")
	}
}

func TestWebPProbeSetsGlobal(t *testing.T) {
	in := jsvm.New(jsvm.Options{})
	doc := dom.NewDocument(machine.Intel(), "x.com")
	doc.Install(in)
	if _, err := in.RunSource(BenignSource(BenignWebP)); err != nil {
		t.Fatal(err)
	}
	v, err := in.RunSource("window.__supportsWebP")
	if err != nil {
		t.Fatal(err)
	}
	if !v.Bool() {
		t.Fatal("webp support probe should succeed against our canvas")
	}
}
