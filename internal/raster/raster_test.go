package raster

import (
	"testing"
	"testing/quick"

	"canvassing/internal/geom"
)

var (
	red   = RGBA{255, 0, 0, 255}
	green = RGBA{0, 255, 0, 255}
	blue  = RGBA{0, 0, 255, 255}
	white = RGBA{255, 255, 255, 255}
)

func fillRect(img *Image, x, y, w, h float64, c RGBA) {
	r := NewRasterizer()
	r.AddPolygon([]geom.Point{
		{X: x, Y: y}, {X: x + w, Y: y}, {X: x + w, Y: y + h}, {X: x, Y: y + h},
	})
	r.Rasterize(img, Solid{c}, Options{Alpha: 255})
}

func TestImageBasics(t *testing.T) {
	img := NewImage(10, 8)
	if img.W != 10 || img.H != 8 || len(img.Pix) != 10*8*4 {
		t.Fatal("dimensions")
	}
	img.Set(3, 2, red)
	if img.At(3, 2) != red {
		t.Fatal("set/get")
	}
	if img.At(-1, 0) != (RGBA{}) || img.At(10, 0) != (RGBA{}) {
		t.Fatal("out of bounds reads should be zero")
	}
	img.Set(-5, -5, red) // must not panic
	cp := img.Clone()
	if !img.Equal(cp) {
		t.Fatal("clone must be equal")
	}
	cp.Set(0, 0, blue)
	if img.Equal(cp) {
		t.Fatal("clone must be independent")
	}
}

func TestNegativeDimensions(t *testing.T) {
	img := NewImage(-3, -4)
	if img.W != 0 || img.H != 0 {
		t.Fatal("negative dims should clamp to zero")
	}
}

func TestClearRect(t *testing.T) {
	img := NewImage(10, 10)
	img.Clear(red)
	img.ClearRect(2, 2, 5, 5)
	if img.At(3, 3) != (RGBA{}) {
		t.Fatal("inside should be transparent")
	}
	if img.At(6, 6) != red {
		t.Fatal("outside should be untouched")
	}
	img.ClearRect(-10, -10, 100, 100) // clipped, must not panic
	if img.At(9, 9) != (RGBA{}) {
		t.Fatal("full clear")
	}
}

func TestFillRectInterior(t *testing.T) {
	img := NewImage(20, 20)
	fillRect(img, 5, 5, 10, 10, red)
	if img.At(10, 10) != red {
		t.Fatalf("interior pixel = %v", img.At(10, 10))
	}
	if img.At(2, 2) != (RGBA{}) {
		t.Fatal("exterior must stay transparent")
	}
	// Pixel-aligned edges should be fully covered.
	if img.At(5, 5) != red || img.At(14, 14) != red {
		t.Fatalf("aligned edges: %v %v", img.At(5, 5), img.At(14, 14))
	}
	if img.At(15, 15) != (RGBA{}) {
		t.Fatal("outside right/bottom edge must be empty")
	}
}

func TestFillFractionalCoverage(t *testing.T) {
	img := NewImage(10, 10)
	fillRect(img, 2.5, 2, 5, 5, red)
	left := img.At(2, 4)
	if left.A == 0 || left.A == 255 {
		t.Fatalf("half-covered pixel should be partially opaque, alpha=%d", left.A)
	}
	if a := img.At(4, 4).A; a != 255 {
		t.Fatalf("interior alpha=%d", a)
	}
}

func TestFillDeterminism(t *testing.T) {
	render := func() *Image {
		img := NewImage(50, 40)
		r := NewRasterizer()
		r.AddPolygon([]geom.Point{{X: 3.7, Y: 2.2}, {X: 45.1, Y: 8.8}, {X: 20.5, Y: 35.9}})
		r.Rasterize(img, Solid{green}, Options{Alpha: 255})
		return img
	}
	a, b := render(), render()
	if !a.Equal(b) {
		t.Fatal("identical input must produce identical pixels")
	}
}

func TestNonZeroVsEvenOdd(t *testing.T) {
	// Two nested same-direction squares: nonzero fills both, evenodd
	// leaves a hole.
	outer := []geom.Point{{X: 2, Y: 2}, {X: 18, Y: 2}, {X: 18, Y: 18}, {X: 2, Y: 18}}
	inner := []geom.Point{{X: 6, Y: 6}, {X: 14, Y: 6}, {X: 14, Y: 14}, {X: 6, Y: 14}}

	nz := NewImage(20, 20)
	r := NewRasterizer()
	r.AddPolygon(outer)
	r.AddPolygon(inner)
	r.Rasterize(nz, Solid{red}, Options{Rule: NonZero, Alpha: 255})
	if nz.At(10, 10) != red {
		t.Fatal("nonzero should fill nested interior")
	}

	eo := NewImage(20, 20)
	r2 := NewRasterizer()
	r2.AddPolygon(outer)
	r2.AddPolygon(inner)
	r2.Rasterize(eo, Solid{red}, Options{Rule: EvenOdd, Alpha: 255})
	if eo.At(10, 10) == red {
		t.Fatal("evenodd should leave a hole")
	}
	if eo.At(4, 10) != red {
		t.Fatal("evenodd ring must be filled")
	}
}

func TestSourceOverBlending(t *testing.T) {
	img := NewImage(4, 4)
	img.Clear(white)
	img.BlendPixel(1, 1, RGBA{0, 0, 0, 128}, 255, OpSourceOver)
	got := img.At(1, 1)
	if got.A != 255 {
		t.Fatalf("alpha = %d", got.A)
	}
	if got.R < 120 || got.R > 135 {
		t.Fatalf("50%% black over white should be mid gray, got %v", got)
	}
}

func TestCompositeCopy(t *testing.T) {
	img := NewImage(2, 2)
	img.Clear(white)
	img.BlendPixel(0, 0, RGBA{10, 20, 30, 40}, 255, OpCopy)
	if img.At(0, 0) != (RGBA{10, 20, 30, 40}) {
		t.Fatalf("copy should replace: %v", img.At(0, 0))
	}
}

func TestCompositeLighter(t *testing.T) {
	img := NewImage(2, 2)
	img.Clear(RGBA{100, 100, 100, 255})
	img.BlendPixel(0, 0, RGBA{100, 100, 100, 255}, 255, OpLighter)
	got := img.At(0, 0)
	if got.R != 200 {
		t.Fatalf("lighter should add channels: %v", got)
	}
	img.BlendPixel(0, 0, RGBA{100, 100, 100, 255}, 255, OpLighter)
	if img.At(0, 0).R != 255 {
		t.Fatalf("lighter should clamp: %v", img.At(0, 0))
	}
}

func TestCompositeMultiply(t *testing.T) {
	img := NewImage(2, 2)
	img.Clear(RGBA{200, 100, 50, 255})
	img.BlendPixel(0, 0, RGBA{128, 128, 128, 255}, 255, OpMultiply)
	got := img.At(0, 0)
	if got.R < 98 || got.R > 102 {
		t.Fatalf("multiply red ≈ 100, got %v", got)
	}
}

func TestCompositeMultiplyOnTransparent(t *testing.T) {
	// CSS compositing: multiply over an uncovered backdrop shows the
	// source color, not black.
	img := NewImage(2, 2)
	img.BlendPixel(0, 0, RGBA{R: 255, G: 0, B: 255, A: 255}, 255, OpMultiply)
	got := img.At(0, 0)
	if got.R != 255 || got.B != 255 || got.A != 255 {
		t.Fatalf("multiply on transparent should show source: %v", got)
	}
}

func TestCompositeDestinationOver(t *testing.T) {
	img := NewImage(2, 2)
	img.Clear(red)
	img.BlendPixel(0, 0, blue, 255, OpDestinationOver)
	if img.At(0, 0) != red {
		t.Fatal("opaque destination should win under destination-over")
	}
	img2 := NewImage(2, 2)
	img2.BlendPixel(0, 0, blue, 255, OpDestinationOver)
	if img2.At(0, 0).B != 255 {
		t.Fatal("transparent destination should show source")
	}
}

func TestCompositeXOR(t *testing.T) {
	img := NewImage(2, 2)
	img.Clear(red)
	img.BlendPixel(0, 0, blue, 255, OpXOR)
	if img.At(0, 0).A != 0 {
		t.Fatalf("opaque xor opaque should vanish, got %v", img.At(0, 0))
	}
}

func TestParseCompositeOp(t *testing.T) {
	for _, name := range []string{"source-over", "destination-over", "copy", "lighter", "multiply", "xor"} {
		op, ok := ParseCompositeOp(name)
		if !ok {
			t.Fatalf("parse %q", name)
		}
		if op.String() != name {
			t.Fatalf("roundtrip %q -> %q", name, op.String())
		}
	}
	if _, ok := ParseCompositeOp("bogus"); ok {
		t.Fatal("bogus op should not parse")
	}
}

func TestGlobalAlpha(t *testing.T) {
	img := NewImage(10, 10)
	r := NewRasterizer()
	r.AddPolygon([]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}, {X: 0, Y: 10}})
	r.Rasterize(img, Solid{red}, Options{Alpha: 128})
	a := img.At(5, 5).A
	if a < 125 || a > 131 {
		t.Fatalf("global alpha should be ~128, got %d", a)
	}
}

func TestCoverageLUTChangesEdgesOnly(t *testing.T) {
	render := func(lut *[256]uint8) *Image {
		img := NewImage(20, 20)
		r := NewRasterizer()
		r.AddPolygon([]geom.Point{{X: 2.3, Y: 2.3}, {X: 17.6, Y: 4.1}, {X: 9.2, Y: 17.8}})
		r.Rasterize(img, Solid{red}, Options{Alpha: 255, CoverageLUT: lut})
		return img
	}
	var lut [256]uint8
	for i := range lut {
		v := int(i) + int(i)/8 // mild monotone gamma-ish skew
		if v > 255 {
			v = 255
		}
		lut[i] = uint8(v)
	}
	lut[255] = 255
	lut[0] = 0
	plain := render(nil)
	skewed := render(&lut)
	if plain.Equal(skewed) {
		t.Fatal("LUT should perturb anti-aliased edges")
	}
	// Interior pixels (full coverage) must be identical.
	if plain.At(9, 9) != skewed.At(9, 9) {
		t.Fatal("full-coverage interior must not change")
	}
}

func TestClipRect(t *testing.T) {
	img := NewImage(20, 20)
	clip := geom.RectWH(5, 5, 5, 5)
	r := NewRasterizer()
	r.AddPolygon([]geom.Point{{X: 0, Y: 0}, {X: 20, Y: 0}, {X: 20, Y: 20}, {X: 0, Y: 20}})
	r.Rasterize(img, Solid{red}, Options{Alpha: 255, Clip: &clip})
	if img.At(7, 7) != red {
		t.Fatal("inside clip should paint")
	}
	if img.At(2, 2) != (RGBA{}) || img.At(12, 12) != (RGBA{}) {
		t.Fatal("outside clip must stay empty")
	}
}

func TestStrokeHorizontalLine(t *testing.T) {
	img := NewImage(30, 20)
	r := NewRasterizer()
	r.Stroke([]geom.Point{{X: 5, Y: 10}, {X: 25, Y: 10}}, false, StrokeStyle{Width: 4})
	r.Rasterize(img, Solid{blue}, Options{Alpha: 255})
	if img.At(15, 10) != blue {
		t.Fatal("line center should be painted")
	}
	if img.At(15, 9) != blue || img.At(15, 11) != blue {
		t.Fatal("line width should cover ±2 px")
	}
	if img.At(15, 5) != (RGBA{}) {
		t.Fatal("outside width must be empty")
	}
	if img.At(3, 10) != (RGBA{}) {
		t.Fatal("butt cap should not extend past the endpoint")
	}
}

func TestStrokeCaps(t *testing.T) {
	renderCap := func(c LineCap) *Image {
		img := NewImage(30, 20)
		r := NewRasterizer()
		r.Stroke([]geom.Point{{X: 10, Y: 10}, {X: 20, Y: 10}}, false, StrokeStyle{Width: 6, Cap: c})
		r.Rasterize(img, Solid{blue}, Options{Alpha: 255})
		return img
	}
	butt := renderCap(CapButt)
	round := renderCap(CapRound)
	square := renderCap(CapSquare)
	if butt.At(8, 10).A != 0 {
		t.Fatal("butt cap must stop at endpoint")
	}
	if round.At(8, 10).A == 0 {
		t.Fatal("round cap should extend past endpoint")
	}
	if square.At(8, 10).A == 0 {
		t.Fatal("square cap should extend past endpoint")
	}
	if square.At(7, 7).A == 0 {
		t.Fatal("square cap corner should be filled")
	}
}

func TestStrokeJoinStyles(t *testing.T) {
	render := func(j LineJoin) *Image {
		img := NewImage(40, 40)
		r := NewRasterizer()
		r.Stroke([]geom.Point{{X: 5, Y: 35}, {X: 20, Y: 10}, {X: 35, Y: 35}}, false,
			StrokeStyle{Width: 8, Join: j, MiterLimit: 10})
		r.Rasterize(img, Solid{green}, Options{Alpha: 255})
		return img
	}
	miter := render(JoinMiter)
	bevel := render(JoinBevel)
	round := render(JoinRound)
	// The miter tip extends higher than the bevel at the apex.
	miterTop, bevelTop := 40, 40
	for y := 0; y < 40; y++ {
		if miterTop == 40 && miter.At(20, y).A > 0 {
			miterTop = y
		}
		if bevelTop == 40 && bevel.At(20, y).A > 0 {
			bevelTop = y
		}
	}
	if miterTop >= bevelTop {
		t.Fatalf("miter apex (%d) should be above bevel apex (%d)", miterTop, bevelTop)
	}
	if round.At(20, 12).A == 0 {
		t.Fatal("round join should cover the corner region")
	}
}

func TestStrokeClosedPolygon(t *testing.T) {
	img := NewImage(30, 30)
	r := NewRasterizer()
	r.Stroke([]geom.Point{{X: 5, Y: 5}, {X: 25, Y: 5}, {X: 25, Y: 25}, {X: 5, Y: 25}}, true,
		StrokeStyle{Width: 2})
	r.Rasterize(img, Solid{red}, Options{Alpha: 255})
	if img.At(15, 5).A == 0 || img.At(5, 15).A == 0 || img.At(25, 15).A == 0 || img.At(15, 25).A == 0 {
		t.Fatal("all four sides should be stroked")
	}
	if img.At(15, 15).A != 0 {
		t.Fatal("interior must stay empty")
	}
}

func TestStrokeSinglePointDot(t *testing.T) {
	img := NewImage(20, 20)
	r := NewRasterizer()
	r.Stroke([]geom.Point{{X: 10, Y: 10}}, false, StrokeStyle{Width: 6, Cap: CapRound})
	r.Rasterize(img, Solid{red}, Options{Alpha: 255})
	if img.At(10, 10).A == 0 {
		t.Fatal("round-cap dot should paint")
	}
	img2 := NewImage(20, 20)
	r2 := NewRasterizer()
	r2.Stroke([]geom.Point{{X: 10, Y: 10}}, false, StrokeStyle{Width: 6, Cap: CapButt})
	r2.Rasterize(img2, Solid{red}, Options{Alpha: 255})
	if img2.At(10, 10).A != 0 {
		t.Fatal("butt-cap dot should paint nothing")
	}
}

func TestStrokeDuplicatePoints(t *testing.T) {
	img := NewImage(20, 20)
	r := NewRasterizer()
	r.Stroke([]geom.Point{{X: 5, Y: 10}, {X: 5, Y: 10}, {X: 15, Y: 10}}, false, StrokeStyle{Width: 2})
	r.Rasterize(img, Solid{red}, Options{Alpha: 255})
	if img.At(10, 10).A == 0 {
		t.Fatal("deduped polyline should still stroke")
	}
}

func TestLinearGradient(t *testing.T) {
	g := NewLinearGradient(0, 0, 10, 0)
	g.AddStop(0, RGBA{0, 0, 0, 255})
	g.AddStop(1, RGBA{255, 255, 255, 255})
	left := g.ColorAt(0, 5)
	mid := g.ColorAt(5, 5)
	right := g.ColorAt(9, 5)
	if left.R >= mid.R || mid.R >= right.R {
		t.Fatalf("gradient should increase: %d %d %d", left.R, mid.R, right.R)
	}
	// Clamping beyond the ends.
	if g.ColorAt(-100, 0).R != g.ColorAt(0, 0).R && g.ColorAt(-100, 0).R > 20 {
		t.Fatal("gradient should clamp before start")
	}
	if got := g.ColorAt(1000, 0); got.R != 255 {
		t.Fatalf("gradient should clamp after end: %v", got)
	}
}

func TestGradientNoStops(t *testing.T) {
	g := NewLinearGradient(0, 0, 10, 0)
	if g.ColorAt(5, 5) != (RGBA{}) {
		t.Fatal("no stops should paint transparent black")
	}
	rg := NewRadialGradient(5, 5, 10)
	if rg.ColorAt(5, 5) != (RGBA{}) {
		t.Fatal("no stops should paint transparent black")
	}
}

func TestGradientStopOrdering(t *testing.T) {
	g := NewLinearGradient(0, 0, 100, 0)
	g.AddStop(1, white)
	g.AddStop(0, RGBA{0, 0, 0, 255})
	g.AddStop(0.5, red)
	c := g.ColorAt(50, 0)
	if c.R < 250 || c.G > 5 {
		t.Fatalf("mid stop should be red: %v", c)
	}
	// Out-of-range positions clamp.
	g2 := NewLinearGradient(0, 0, 10, 0)
	g2.AddStop(-5, red)
	g2.AddStop(7, blue)
	if c := g2.ColorAt(0, 0); c.R < 230 {
		t.Fatalf("near-start pixel should be nearly the clamped red stop: %v", c)
	}
}

func TestRadialGradient(t *testing.T) {
	g := NewRadialGradient(10, 10, 8)
	g.AddStop(0, white)
	g.AddStop(1, RGBA{0, 0, 0, 255})
	center := g.ColorAt(10, 10)
	edge := g.ColorAt(17, 10)
	if center.R <= edge.R {
		t.Fatalf("radial center should be brighter: %d vs %d", center.R, edge.R)
	}
}

func TestDegenerateGradient(t *testing.T) {
	g := NewLinearGradient(5, 5, 5, 5) // zero-length axis
	g.AddStop(0, red)
	g.AddStop(1, blue)
	_ = g.ColorAt(3, 3) // must not panic or divide by zero
}

func TestRasterizerReset(t *testing.T) {
	r := NewRasterizer()
	r.AddPolygon([]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 10, Y: 10}})
	r.Reset()
	img := NewImage(10, 10)
	r.Rasterize(img, Solid{red}, Options{Alpha: 255})
	for i := range img.Pix {
		if img.Pix[i] != 0 {
			t.Fatal("reset rasterizer should paint nothing")
		}
	}
}

func TestDegeneratePolygonIgnored(t *testing.T) {
	r := NewRasterizer()
	r.AddPolygon([]geom.Point{{X: 0, Y: 0}, {X: 10, Y: 10}}) // 2 points
	img := NewImage(10, 10)
	r.Rasterize(img, Solid{red}, Options{Alpha: 255})
	if img.At(5, 5).A != 0 {
		t.Fatal("degenerate polygon should be ignored")
	}
}

func TestDiffCount(t *testing.T) {
	a := NewImage(4, 4)
	b := NewImage(4, 4)
	if a.DiffCount(b) != 0 {
		t.Fatal("identical images should diff 0")
	}
	b.Set(0, 0, red)
	if a.DiffCount(b) != 2 { // R byte and A byte differ
		t.Fatalf("diff = %d", a.DiffCount(b))
	}
	if a.DiffCount(NewImage(3, 3)) != -1 {
		t.Fatal("dimension mismatch should return -1")
	}
}

func TestToStdImage(t *testing.T) {
	img := NewImage(2, 1)
	img.Set(0, 0, RGBA{255, 0, 0, 128})
	std := img.ToStdImage()
	r, _, _, a := std.At(0, 0).RGBA()
	if a == 0 || r == 0 {
		t.Fatal("premultiplied conversion lost the pixel")
	}
	if std.Bounds().Dx() != 2 || std.Bounds().Dy() != 1 {
		t.Fatal("bounds")
	}
}

// Property: blending any color with any op never panics and yields
// in-range channel values (uint8 arithmetic guards).
func TestBlendProperty(t *testing.T) {
	f := func(sr, sg, sb, sa, dr, dg, db, da, cov uint8, opRaw uint8) bool {
		img := NewImage(1, 1)
		img.Set(0, 0, RGBA{dr, dg, db, da})
		op := CompositeOp(opRaw % 6)
		img.BlendPixel(0, 0, RGBA{sr, sg, sb, sa}, cov, op)
		return true // reaching here without panic is the property
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 5000}); err != nil {
		t.Fatal(err)
	}
}

// Property: source-over with zero source alpha never changes the pixel.
func TestSourceOverZeroAlphaProperty(t *testing.T) {
	f := func(dr, dg, db, da uint8) bool {
		img := NewImage(1, 1)
		img.Set(0, 0, RGBA{dr, dg, db, da})
		before := img.At(0, 0)
		img.BlendPixel(0, 0, RGBA{1, 2, 3, 0}, 255, OpSourceOver)
		return img.At(0, 0) == before
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestDashSegmentsBasic(t *testing.T) {
	line := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}
	segs := dashSegments(line, false, []float64{10, 10}, 0)
	if len(segs) != 5 {
		t.Fatalf("10/10 over 100px should yield 5 dashes, got %d", len(segs))
	}
	if segs[0][0].X != 0 || segs[0][len(segs[0])-1].X != 10 {
		t.Fatalf("first dash span: %v", segs[0])
	}
	if segs[1][0].X != 20 {
		t.Fatalf("second dash start: %v", segs[1][0])
	}
}

func TestDashSegmentsOffset(t *testing.T) {
	line := []geom.Point{{X: 0, Y: 0}, {X: 100, Y: 0}}
	segs := dashSegments(line, false, []float64{10, 10}, 10)
	// Starts in the gap; first dash begins at x=10.
	if segs[0][0].X != 10 {
		t.Fatalf("offset start: %v", segs[0][0])
	}
	// Negative offsets wrap.
	segsNeg := dashSegments(line, false, []float64{10, 10}, -10)
	if segsNeg[0][0].X != 10 {
		t.Fatalf("negative offset: %v", segsNeg[0][0])
	}
	// Offsets beyond one pattern period wrap too.
	segsBig := dashSegments(line, false, []float64{10, 10}, 30)
	if segsBig[0][0].X != 10 {
		t.Fatalf("wrapped offset: %v", segsBig[0][0])
	}
}

func TestDashSegmentsDegenerate(t *testing.T) {
	line := []geom.Point{{X: 0, Y: 0}, {X: 50, Y: 0}}
	// All-zero pattern: solid line.
	segs := dashSegments(line, false, []float64{0, 0}, 0)
	if len(segs) != 1 || len(segs[0]) != 2 {
		t.Fatalf("zero pattern should stay solid: %v", segs)
	}
	// Negative entry: solid line.
	if got := dashSegments(line, false, []float64{5, -1}, 0); len(got) != 1 {
		t.Fatal("negative pattern should stay solid")
	}
}

func TestDashSegmentsClosedPolyline(t *testing.T) {
	square := []geom.Point{{X: 0, Y: 0}, {X: 40, Y: 0}, {X: 40, Y: 40}, {X: 0, Y: 40}}
	segs := dashSegments(square, true, []float64{20, 20}, 0)
	// Perimeter 160 → 4 dashes of 20.
	if len(segs) != 4 {
		t.Fatalf("dash count on closed square: %d", len(segs))
	}
	// Dashes follow corners: the second dash spans the first corner.
	second := segs[1]
	hasCorner := false
	for _, p := range second {
		if p.X == 40 && p.Y == 0 {
			hasCorner = true
		}
	}
	if !hasCorner {
		t.Fatalf("dash should bend around the corner: %v", second)
	}
}

func TestDashedStrokePaintsGaps(t *testing.T) {
	img := NewImage(120, 20)
	r := NewRasterizer()
	r.Stroke([]geom.Point{{X: 0, Y: 10}, {X: 120, Y: 10}}, false,
		StrokeStyle{Width: 4, Dash: []float64{12, 12}})
	r.Rasterize(img, Solid{red}, Options{Alpha: 255})
	if img.At(6, 10).A == 0 {
		t.Fatal("dash painted")
	}
	if img.At(18, 10).A != 0 {
		t.Fatal("gap empty")
	}
}

func BenchmarkFillTriangle(b *testing.B) {
	img := NewImage(300, 150)
	for i := 0; i < b.N; i++ {
		r := NewRasterizer()
		r.AddPolygon([]geom.Point{{X: 10, Y: 10}, {X: 290, Y: 40}, {X: 100, Y: 140}})
		r.Rasterize(img, Solid{red}, Options{Alpha: 255})
	}
}

func BenchmarkStroke(b *testing.B) {
	img := NewImage(300, 150)
	pts := []geom.Point{{X: 10, Y: 75}, {X: 80, Y: 20}, {X: 160, Y: 120}, {X: 290, Y: 60}}
	for i := 0; i < b.N; i++ {
		r := NewRasterizer()
		r.Stroke(pts, false, StrokeStyle{Width: 5, Join: JoinRound, Cap: CapRound})
		r.Rasterize(img, Solid{blue}, Options{Alpha: 255})
	}
}
