// Package raster implements a deterministic software rasterizer: an RGBA
// pixel buffer, scanline polygon filling with supersampled anti-aliasing,
// stroking, and a small set of Porter-Duff style composite operators.
//
// Determinism is the load-bearing property. Canvas fingerprinting works
// because rendering the same draw-command stream on the same machine always
// produces the same bytes, while different machines differ subtly. All
// arithmetic here is integer or strictly-ordered float64, so a given
// (commands, coverage-LUT) pair produces identical pixels on every run.
package raster

import (
	"fmt"
	"image"
	"image/color"
)

// RGBA is a non-premultiplied 8-bit color.
type RGBA struct {
	R, G, B, A uint8
}

// Opaque reports whether the color is fully opaque.
func (c RGBA) Opaque() bool { return c.A == 0xFF }

// String implements fmt.Stringer in CSS-like #RRGGBBAA form.
func (c RGBA) String() string {
	return fmt.Sprintf("#%02x%02x%02x%02x", c.R, c.G, c.B, c.A)
}

// Image is a W×H RGBA pixel buffer with non-premultiplied storage.
type Image struct {
	W, H int
	// Pix holds pixels in R,G,B,A order, row-major, 4 bytes per pixel.
	Pix []uint8
}

// NewImage returns a fully transparent image of the given size.
// Dimensions are clamped to at least 0.
func NewImage(w, h int) *Image {
	if w < 0 {
		w = 0
	}
	if h < 0 {
		h = 0
	}
	return &Image{W: w, H: h, Pix: make([]uint8, w*h*4)}
}

// Clone returns a deep copy of m.
func (m *Image) Clone() *Image {
	cp := &Image{W: m.W, H: m.H, Pix: make([]uint8, len(m.Pix))}
	copy(cp.Pix, m.Pix)
	return cp
}

// InBounds reports whether (x, y) is a valid pixel coordinate.
func (m *Image) InBounds(x, y int) bool {
	return x >= 0 && x < m.W && y >= 0 && y < m.H
}

// At returns the pixel at (x, y), or the zero color when out of bounds.
func (m *Image) At(x, y int) RGBA {
	if !m.InBounds(x, y) {
		return RGBA{}
	}
	i := (y*m.W + x) * 4
	return RGBA{m.Pix[i], m.Pix[i+1], m.Pix[i+2], m.Pix[i+3]}
}

// Set writes the pixel at (x, y); out-of-bounds writes are ignored.
func (m *Image) Set(x, y int, c RGBA) {
	if !m.InBounds(x, y) {
		return
	}
	i := (y*m.W + x) * 4
	m.Pix[i], m.Pix[i+1], m.Pix[i+2], m.Pix[i+3] = c.R, c.G, c.B, c.A
}

// Clear fills the whole image with c (no blending).
func (m *Image) Clear(c RGBA) {
	for i := 0; i < len(m.Pix); i += 4 {
		m.Pix[i], m.Pix[i+1], m.Pix[i+2], m.Pix[i+3] = c.R, c.G, c.B, c.A
	}
}

// ClearRect makes the given rectangle fully transparent, matching the
// Canvas clearRect semantics. Coordinates are clipped to the image.
func (m *Image) ClearRect(x0, y0, x1, y1 int) {
	if x0 < 0 {
		x0 = 0
	}
	if y0 < 0 {
		y0 = 0
	}
	if x1 > m.W {
		x1 = m.W
	}
	if y1 > m.H {
		y1 = m.H
	}
	for y := y0; y < y1; y++ {
		base := (y*m.W + x0) * 4
		for x := x0; x < x1; x++ {
			m.Pix[base] = 0
			m.Pix[base+1] = 0
			m.Pix[base+2] = 0
			m.Pix[base+3] = 0
			base += 4
		}
	}
}

// Equal reports whether two images have identical dimensions and pixels.
func (m *Image) Equal(o *Image) bool {
	if m.W != o.W || m.H != o.H {
		return false
	}
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			return false
		}
	}
	return true
}

// DiffCount returns the number of byte positions at which the two images
// differ, or -1 when the dimensions differ.
func (m *Image) DiffCount(o *Image) int {
	if m.W != o.W || m.H != o.H {
		return -1
	}
	n := 0
	for i := range m.Pix {
		if m.Pix[i] != o.Pix[i] {
			n++
		}
	}
	return n
}

// ToStdImage converts to a stdlib *image.RGBA (non-premultiplied values are
// converted to the premultiplied form image.RGBA expects).
func (m *Image) ToStdImage() *image.RGBA {
	out := image.NewRGBA(image.Rect(0, 0, m.W, m.H))
	for y := 0; y < m.H; y++ {
		for x := 0; x < m.W; x++ {
			c := m.At(x, y)
			out.SetRGBA(x, y, color.RGBA{
				R: mul255(c.R, c.A),
				G: mul255(c.G, c.A),
				B: mul255(c.B, c.A),
				A: c.A,
			})
		}
	}
	return out
}

// mul255 computes round(a*b/255) exactly.
func mul255(a, b uint8) uint8 {
	t := uint32(a)*uint32(b) + 128
	return uint8((t + t>>8) >> 8)
}

// CompositeOp selects how source pixels combine with the destination,
// mirroring the subset of globalCompositeOperation values the Canvas API
// exposes that fingerprinting scripts actually use.
type CompositeOp uint8

// Supported composite operators.
const (
	OpSourceOver CompositeOp = iota // default Canvas operator
	OpDestinationOver
	OpCopy
	OpLighter
	OpMultiply
	OpXOR
)

// ParseCompositeOp maps a Canvas globalCompositeOperation string to an
// operator. Unknown values return OpSourceOver and false, matching browsers
// which ignore invalid assignments.
func ParseCompositeOp(s string) (CompositeOp, bool) {
	switch s {
	case "source-over":
		return OpSourceOver, true
	case "destination-over":
		return OpDestinationOver, true
	case "copy":
		return OpCopy, true
	case "lighter":
		return OpLighter, true
	case "multiply":
		return OpMultiply, true
	case "xor":
		return OpXOR, true
	}
	return OpSourceOver, false
}

// String returns the Canvas name of the operator.
func (op CompositeOp) String() string {
	switch op {
	case OpSourceOver:
		return "source-over"
	case OpDestinationOver:
		return "destination-over"
	case OpCopy:
		return "copy"
	case OpLighter:
		return "lighter"
	case OpMultiply:
		return "multiply"
	case OpXOR:
		return "xor"
	}
	return "source-over"
}

// BlendPixel composites src (with an extra coverage factor 0..255) onto the
// pixel at (x, y) using op. All arithmetic is integer and deterministic.
func (m *Image) BlendPixel(x, y int, src RGBA, cov uint8, op CompositeOp) {
	if !m.InBounds(x, y) || cov == 0 {
		return
	}
	sa := uint32(mul255(src.A, cov))
	if sa == 0 && op != OpCopy {
		return
	}
	i := (y*m.W + x) * 4
	dr, dg, db, da := uint32(m.Pix[i]), uint32(m.Pix[i+1]), uint32(m.Pix[i+2]), uint32(m.Pix[i+3])
	sr, sg, sb := uint32(src.R), uint32(src.G), uint32(src.B)

	var r, g, b, a uint32
	switch op {
	case OpCopy:
		r, g, b, a = sr, sg, sb, sa
	case OpDestinationOver:
		// dst over src: result alpha = da + sa*(1-da)
		ia := 255 - da
		a = da + div255(sa*ia)
		if a == 0 {
			r, g, b = 0, 0, 0
		} else {
			// Weighted by alpha contributions (non-premultiplied storage).
			wd := da * 255
			ws := div255(sa*ia) * 255
			r = (dr*wd + sr*ws) / (wd + ws)
			g = (dg*wd + sg*ws) / (wd + ws)
			b = (db*wd + sb*ws) / (wd + ws)
		}
	case OpLighter:
		a = clamp255(da + sa)
		r = clamp255(premulDiv(dr, da) + premulDiv(sr, sa))
		g = clamp255(premulDiv(dg, da) + premulDiv(sg, sa))
		b = clamp255(premulDiv(db, da) + premulDiv(sb, sa))
		if a > 0 {
			r = clamp255(r * 255 / a)
			g = clamp255(g * 255 / a)
			b = clamp255(b * 255 / a)
		}
	case OpMultiply:
		// Separable blend mode over source-over compositing (CSS
		// compositing spec): where only the source covers, the source
		// color shows; where both cover, the channel product does.
		ws := div255(sa * (255 - da)) // source-only coverage
		wd := div255(da * (255 - sa)) // destination-only coverage
		wb := div255(sa * da)         // overlapping coverage
		a = ws + wd + wb
		if a == 0 {
			r, g, b = 0, 0, 0
		} else {
			r = (sr*ws + dr*wd + div255(sr*dr)*wb) / a
			g = (sg*ws + dg*wd + div255(sg*dg)*wb) / a
			b = (sb*ws + db*wd + div255(sb*db)*wb) / a
		}
	case OpXOR:
		isa := 255 - sa
		ida := 255 - da
		a = div255(sa*ida) + div255(da*isa)
		if a == 0 {
			r, g, b = 0, 0, 0
		} else {
			ws := div255(sa * ida)
			wd := div255(da * isa)
			r = (sr*ws + dr*wd) / (ws + wd)
			g = (sg*ws + dg*wd) / (ws + wd)
			b = (sb*ws + db*wd) / (ws + wd)
		}
	default: // OpSourceOver
		ia := 255 - sa
		a = sa + div255(da*ia)
		if a == 0 {
			r, g, b = 0, 0, 0
		} else {
			// out = (src*sa + dst*da*(1-sa)) / out_a, all channels 0..255.
			wd := div255(da * ia)
			r = (sr*sa + dr*wd) / a
			g = (sg*sa + dg*wd) / a
			b = (sb*sa + db*wd) / a
		}
	}
	m.Pix[i] = uint8(r)
	m.Pix[i+1] = uint8(g)
	m.Pix[i+2] = uint8(b)
	m.Pix[i+3] = uint8(a)
}

func div255(v uint32) uint32 {
	return (v + 128 + ((v + 128) >> 8)) >> 8
}

func clamp255(v uint32) uint32 {
	if v > 255 {
		return 255
	}
	return v
}

func premulDiv(c, a uint32) uint32 { return div255(c * a) }
