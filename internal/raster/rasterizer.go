package raster

import (
	"math"
	"sort"

	"canvassing/internal/geom"
)

// FillRule selects the polygon interior test.
type FillRule uint8

// Fill rules matching the Canvas API "nonzero" and "evenodd" keywords.
const (
	NonZero FillRule = iota
	EvenOdd
)

// subSamples is the number of vertical subsample rows per pixel. Horizontal
// coverage is computed analytically per span, so total coverage resolution
// is 4 rows × exact span overlap.
const subSamples = 4

// edge is a directed polygon edge in device space.
type edge struct {
	x0, y0, x1, y1 float64
	dir            int8 // +1 downward, -1 upward
}

// Rasterizer accumulates polygon outlines and renders them with
// anti-aliased coverage into an Image. A Rasterizer may be reused by
// calling Reset.
type Rasterizer struct {
	edges        []edge
	minY, maxY   float64
	covRow       []float64
	crossings    []crossing
	haveGeometry bool
}

type crossing struct {
	x   float64
	dir int8
}

// NewRasterizer returns an empty rasterizer.
func NewRasterizer() *Rasterizer {
	return &Rasterizer{minY: math.Inf(1), maxY: math.Inf(-1)}
}

// Reset discards accumulated geometry, retaining buffers.
func (r *Rasterizer) Reset() {
	r.edges = r.edges[:0]
	r.minY, r.maxY = math.Inf(1), math.Inf(-1)
	r.haveGeometry = false
}

// AddPolygon adds a closed polygon outline given by pts (the closing edge
// from the last to the first point is implicit). Degenerate inputs with
// fewer than three points are ignored.
func (r *Rasterizer) AddPolygon(pts []geom.Point) {
	if len(pts) < 3 {
		return
	}
	for i := 0; i < len(pts); i++ {
		j := (i + 1) % len(pts)
		r.addEdge(pts[i], pts[j])
	}
}

func (r *Rasterizer) addEdge(a, b geom.Point) {
	if a.Y == b.Y {
		return // horizontal edges never cross a scanline
	}
	e := edge{x0: a.X, y0: a.Y, x1: b.X, y1: b.Y, dir: 1}
	if a.Y > b.Y {
		e = edge{x0: b.X, y0: b.Y, x1: a.X, y1: a.Y, dir: -1}
	}
	r.edges = append(r.edges, e)
	r.minY = math.Min(r.minY, e.y0)
	r.maxY = math.Max(r.maxY, e.y1)
	r.haveGeometry = true
}

// Options configures a Rasterize call.
type Options struct {
	Rule  FillRule
	Op    CompositeOp
	Alpha uint8 // global alpha 0..255 applied on top of paint alpha
	// CoverageLUT optionally remaps the 0..255 anti-aliasing coverage
	// before blending. Machine profiles use this to model GPU/driver
	// differences in anti-aliasing: the LUT must be monotone with
	// LUT[0]==0 so geometry is unchanged while edge pixels differ.
	CoverageLUT *[256]uint8
	// Clip, when non-nil, restricts rendering to the given device-space
	// rectangle (used for ctx.clip with rectangular clips).
	Clip *geom.Rect
}

// Rasterize renders the accumulated geometry into img with paint.
func (r *Rasterizer) Rasterize(img *Image, paint Paint, opt Options) {
	if !r.haveGeometry || img.W == 0 || img.H == 0 {
		return
	}
	y0 := int(math.Floor(r.minY))
	y1 := int(math.Ceil(r.maxY))
	if y0 < 0 {
		y0 = 0
	}
	if y1 > img.H {
		y1 = img.H
	}
	clipX0, clipX1 := 0.0, float64(img.W)
	if opt.Clip != nil {
		clipX0 = math.Max(clipX0, opt.Clip.Min.X)
		clipX1 = math.Min(clipX1, opt.Clip.Max.X)
		if cy0 := int(math.Floor(opt.Clip.Min.Y)); cy0 > y0 {
			y0 = cy0
		}
		if cy1 := int(math.Ceil(opt.Clip.Max.Y)); cy1 < y1 {
			y1 = cy1
		}
		if clipX0 >= clipX1 || y0 >= y1 {
			return
		}
	}
	if cap(r.covRow) < img.W {
		r.covRow = make([]float64, img.W)
	}
	cov := r.covRow[:img.W]

	for y := y0; y < y1; y++ {
		for i := range cov {
			cov[i] = 0
		}
		rowHasCoverage := false
		for sub := 0; sub < subSamples; sub++ {
			sy := float64(y) + (float64(sub)+0.5)/subSamples
			r.crossings = r.crossings[:0]
			for _, e := range r.edges {
				if sy < e.y0 || sy >= e.y1 {
					continue
				}
				x := e.x0 + (sy-e.y0)*(e.x1-e.x0)/(e.y1-e.y0)
				r.crossings = append(r.crossings, crossing{x: x, dir: e.dir})
			}
			if len(r.crossings) < 2 {
				continue
			}
			sort.Slice(r.crossings, func(i, j int) bool {
				return r.crossings[i].x < r.crossings[j].x
			})
			winding := 0
			for i := 0; i < len(r.crossings)-1; i++ {
				winding += int(r.crossings[i].dir)
				inside := winding != 0
				if opt.Rule == EvenOdd {
					inside = (i % 2) == 0
				}
				if !inside {
					continue
				}
				xa := math.Max(r.crossings[i].x, clipX0)
				xb := math.Min(r.crossings[i+1].x, clipX1)
				if xb <= xa {
					continue
				}
				accumulateSpan(cov, xa, xb, 1.0/subSamples)
				rowHasCoverage = true
			}
		}
		if !rowHasCoverage {
			continue
		}
		for x := 0; x < img.W; x++ {
			c := cov[x]
			if c <= 0 {
				continue
			}
			if c > 1 {
				c = 1
			}
			cv := uint8(math.Floor(c*255 + 0.5))
			if opt.CoverageLUT != nil {
				cv = opt.CoverageLUT[cv]
			}
			if cv == 0 {
				continue
			}
			src := paint.ColorAt(x, y)
			if opt.Alpha != 0xFF {
				src.A = mul255(src.A, opt.Alpha)
			}
			img.BlendPixel(x, y, src, cv, opt.Op)
		}
	}
}

// accumulateSpan adds weight×overlap coverage for the horizontal span
// [xa, xb) into cov, handling fractional pixel boundaries.
func accumulateSpan(cov []float64, xa, xb, weight float64) {
	if xa < 0 {
		xa = 0
	}
	if xb > float64(len(cov)) {
		xb = float64(len(cov))
	}
	if xb <= xa {
		return
	}
	ix0 := int(math.Floor(xa))
	ix1 := int(math.Ceil(xb)) - 1
	if ix0 == ix1 {
		cov[ix0] += (xb - xa) * weight
		return
	}
	cov[ix0] += (float64(ix0+1) - xa) * weight
	for x := ix0 + 1; x < ix1; x++ {
		cov[x] += weight
	}
	if ix1 < len(cov) {
		cov[ix1] += (xb - float64(ix1)) * weight
	}
}
