package raster

import (
	"math"

	"canvassing/internal/geom"
)

// LineCap selects stroke end-cap geometry (Canvas lineCap).
type LineCap uint8

// Cap styles.
const (
	CapButt LineCap = iota
	CapRound
	CapSquare
)

// ParseLineCap maps a Canvas lineCap keyword; unknown values keep butt.
func ParseLineCap(s string) (LineCap, bool) {
	switch s {
	case "butt":
		return CapButt, true
	case "round":
		return CapRound, true
	case "square":
		return CapSquare, true
	}
	return CapButt, false
}

// LineJoin selects stroke corner geometry (Canvas lineJoin).
type LineJoin uint8

// Join styles.
const (
	JoinMiter LineJoin = iota
	JoinRound
	JoinBevel
)

// ParseLineJoin maps a Canvas lineJoin keyword; unknown values keep miter.
func ParseLineJoin(s string) (LineJoin, bool) {
	switch s {
	case "miter":
		return JoinMiter, true
	case "round":
		return JoinRound, true
	case "bevel":
		return JoinBevel, true
	}
	return JoinMiter, false
}

// StrokeStyle configures Stroke.
type StrokeStyle struct {
	Width      float64
	Cap        LineCap
	Join       LineJoin
	MiterLimit float64
	// Dash is the on/off segment-length pattern (ctx.setLineDash); empty
	// means solid. DashOffset shifts the pattern start (ctx.lineDashOffset).
	Dash       []float64
	DashOffset float64
}

// Stroke converts a polyline (closed if closed is true) into a set of
// polygons whose non-zero-winding union is the stroked outline, and adds
// them to r. All polygons are emitted with counter-clockwise orientation in
// a y-down coordinate system so overlaps accumulate same-sign winding.
func (r *Rasterizer) Stroke(pts []geom.Point, closed bool, st StrokeStyle) {
	pts = dedupePoints(pts)
	if len(pts) == 0 || st.Width <= 0 {
		return
	}
	if len(st.Dash) > 0 {
		solid := st
		solid.Dash = nil
		solid.DashOffset = 0
		for _, seg := range dashSegments(pts, closed, st.Dash, st.DashOffset) {
			r.Stroke(seg, false, solid)
		}
		return
	}
	hw := st.Width / 2
	if len(pts) == 1 {
		// A zero-length subpath paints nothing with butt caps, a dot with
		// round/square caps, matching browser behavior closely enough.
		switch st.Cap {
		case CapRound:
			r.AddPolygon(circlePolygon(pts[0], hw))
		case CapSquare:
			p := pts[0]
			r.AddPolygon([]geom.Point{
				{X: p.X - hw, Y: p.Y - hw}, {X: p.X + hw, Y: p.Y - hw},
				{X: p.X + hw, Y: p.Y + hw}, {X: p.X - hw, Y: p.Y + hw},
			})
		}
		return
	}
	n := len(pts)
	segCount := n - 1
	if closed {
		segCount = n
	}
	for i := 0; i < segCount; i++ {
		a := pts[i]
		b := pts[(i+1)%n]
		r.AddPolygon(segmentQuad(a, b, hw))
	}
	// Joins at interior vertices.
	firstJoint, lastJoint := 1, n-1
	if closed {
		firstJoint, lastJoint = 0, n
	}
	for i := firstJoint; i < lastJoint; i++ {
		prev := pts[(i-1+n)%n]
		cur := pts[i]
		next := pts[(i+1)%n]
		r.addJoin(prev, cur, next, hw, st)
	}
	if !closed {
		r.addCap(pts[1], pts[0], hw, st.Cap)
		r.addCap(pts[n-2], pts[n-1], hw, st.Cap)
	}
}

// dedupePoints removes consecutive duplicates which would produce
// degenerate zero-length segments.
func dedupePoints(pts []geom.Point) []geom.Point {
	out := pts[:0:0]
	for _, p := range pts {
		if len(out) > 0 && out[len(out)-1] == p {
			continue
		}
		out = append(out, p)
	}
	return out
}

// segmentQuad returns the CCW rectangle covering segment a-b widened by hw.
func segmentQuad(a, b geom.Point, hw float64) []geom.Point {
	d := b.Sub(a).Normalize()
	nrm := d.Perp().Mul(hw)
	return []geom.Point{
		a.Add(nrm), b.Add(nrm), b.Sub(nrm), a.Sub(nrm),
	}
}

func (r *Rasterizer) addJoin(prev, cur, next geom.Point, hw float64, st StrokeStyle) {
	d0 := cur.Sub(prev).Normalize()
	d1 := next.Sub(cur).Normalize()
	cross := d0.Cross(d1)
	if math.Abs(cross) < 1e-12 {
		return // collinear: segment quads already overlap cleanly
	}
	switch st.Join {
	case JoinRound:
		r.AddPolygon(circlePolygon(cur, hw))
	case JoinBevel:
		r.addBevel(cur, d0, d1, hw, cross)
	default: // miter, falling back to bevel past the miter limit
		limit := st.MiterLimit
		if limit <= 0 {
			limit = 10
		}
		// Angle between segments; miter length ratio = 1/sin(theta/2).
		cosTheta := -d0.Dot(d1)
		theta := math.Acos(clampF(cosTheta, -1, 1))
		sinHalf := math.Sin(theta / 2)
		if sinHalf < 1e-9 || 1/sinHalf > limit {
			r.addBevel(cur, d0, d1, hw, cross)
			return
		}
		// Miter tip along the bisector of the outer corner.
		n0 := outerNormal(d0, cross).Mul(hw)
		n1 := outerNormal(d1, cross).Mul(hw)
		bis := n0.Add(n1).Normalize().Mul(hw / sinHalf)
		r.AddPolygon(orientCCW([]geom.Point{
			cur, cur.Add(n0), cur.Add(bis), cur.Add(n1),
		}))
	}
}

// outerNormal returns the unit normal of direction d on the outside of the
// turn indicated by cross (the z cross product of incoming and outgoing
// directions, y-down coordinates).
func outerNormal(d geom.Point, cross float64) geom.Point {
	n := d.Perp()
	if cross > 0 {
		return n.Mul(-1)
	}
	return n
}

func (r *Rasterizer) addBevel(cur, d0, d1 geom.Point, hw, cross float64) {
	n0 := outerNormal(d0, cross).Mul(hw)
	n1 := outerNormal(d1, cross).Mul(hw)
	r.AddPolygon(orientCCW([]geom.Point{cur, cur.Add(n0), cur.Add(n1)}))
}

func (r *Rasterizer) addCap(from, end geom.Point, hw float64, cap LineCap) {
	switch cap {
	case CapRound:
		r.AddPolygon(circlePolygon(end, hw))
	case CapSquare:
		d := end.Sub(from).Normalize()
		nrm := d.Perp().Mul(hw)
		ext := d.Mul(hw)
		r.AddPolygon(orientCCW([]geom.Point{
			end.Add(nrm), end.Add(nrm).Add(ext), end.Sub(nrm).Add(ext), end.Sub(nrm),
		}))
	}
}

// circlePolygon returns a CCW 24-gon approximating a circle.
func circlePolygon(c geom.Point, radius float64) []geom.Point {
	const sides = 24
	pts := make([]geom.Point, 0, sides)
	for i := 0; i < sides; i++ {
		a := 2 * math.Pi * float64(i) / sides
		s, co := math.Sincos(a)
		pts = append(pts, geom.Point{X: c.X + radius*co, Y: c.Y + radius*s})
	}
	return orientCCW(pts)
}

// orientCCW returns pts ordered counter-clockwise in a y-down coordinate
// system (negative signed area), reversing if needed.
func orientCCW(pts []geom.Point) []geom.Point {
	area := 0.0
	for i := range pts {
		j := (i + 1) % len(pts)
		area += pts[i].Cross(pts[j])
	}
	// In y-down device space a CCW-on-screen polygon has negative
	// shoelace area; what matters here is only that all emitted polygons
	// share a sign, so normalize to negative.
	if area > 0 {
		for i, j := 0, len(pts)-1; i < j; i, j = i+1, j-1 {
			pts[i], pts[j] = pts[j], pts[i]
		}
	}
	return pts
}

// dashSegments splits a polyline into the "on" sub-polylines of a dash
// pattern. Odd-length patterns repeat doubled, as the Canvas spec says.
// A pattern with no positive entries yields the original line (drawing
// nothing would hide author mistakes; browsers treat it as solid).
func dashSegments(pts []geom.Point, closed bool, dash []float64, offset float64) [][]geom.Point {
	pattern := make([]float64, 0, len(dash)*2)
	total := 0.0
	for _, d := range dash {
		if d < 0 {
			return [][]geom.Point{pts}
		}
		total += d
	}
	if total <= 0 {
		return [][]geom.Point{pts}
	}
	pattern = append(pattern, dash...)
	if len(pattern)%2 == 1 {
		pattern = append(pattern, dash...)
	}

	walk := pts
	if closed {
		walk = append(append([]geom.Point{}, pts...), pts[0])
	}
	// Position within the repeating pattern.
	patLen := 0.0
	for _, d := range pattern {
		patLen += d
	}
	pos := offset
	for pos < 0 {
		pos += patLen
	}
	for pos >= patLen {
		pos -= patLen
	}
	idx := 0
	for pos >= pattern[idx] {
		pos -= pattern[idx]
		idx = (idx + 1) % len(pattern)
	}
	remain := pattern[idx] - pos
	on := idx%2 == 0

	var out [][]geom.Point
	var cur []geom.Point
	flush := func() {
		if len(cur) >= 2 {
			out = append(out, cur)
		}
		cur = nil
	}
	if on {
		cur = append(cur, walk[0])
	}
	for i := 0; i+1 < len(walk); i++ {
		a, b := walk[i], walk[i+1]
		segLen := b.Sub(a).Len()
		t := 0.0
		for segLen-t > remain {
			t += remain
			p := geom.Lerp(a, b, t/segLen)
			if on {
				cur = append(cur, p)
				flush()
			} else {
				cur = append(cur, p)
			}
			on = !on
			idx = (idx + 1) % len(pattern)
			remain = pattern[idx]
		}
		remain -= segLen - t
		if on {
			cur = append(cur, b)
		}
	}
	flush()
	return out
}

func clampF(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
