package raster

import (
	"math"
	"sort"
)

// Paint produces a source color for a device-space pixel. Implementations
// must be deterministic functions of their configuration and the pixel
// coordinate.
type Paint interface {
	// ColorAt returns the source color for pixel center (x+0.5, y+0.5).
	ColorAt(x, y int) RGBA
}

// Solid is a uniform-color paint.
type Solid struct {
	C RGBA
}

// ColorAt implements Paint.
func (s Solid) ColorAt(x, y int) RGBA { return s.C }

// Stop is a gradient color stop at offset Pos in [0, 1].
type Stop struct {
	Pos float64
	C   RGBA
}

// LinearGradient interpolates color stops along the segment (X0,Y0)-(X1,Y1)
// in device space, clamping beyond the ends, mirroring
// ctx.createLinearGradient.
type LinearGradient struct {
	X0, Y0, X1, Y1 float64
	stops          []Stop
}

// NewLinearGradient returns a gradient along the given segment with no
// stops; with no stops it paints transparent black, as the Canvas spec says.
func NewLinearGradient(x0, y0, x1, y1 float64) *LinearGradient {
	return &LinearGradient{X0: x0, Y0: y0, X1: x1, Y1: y1}
}

// AddStop inserts a color stop, keeping stops sorted by position.
// Positions are clamped to [0, 1].
func (g *LinearGradient) AddStop(pos float64, c RGBA) {
	if pos < 0 {
		pos = 0
	}
	if pos > 1 {
		pos = 1
	}
	g.stops = append(g.stops, Stop{pos, c})
	sort.SliceStable(g.stops, func(i, j int) bool { return g.stops[i].Pos < g.stops[j].Pos })
}

// ColorAt implements Paint.
func (g *LinearGradient) ColorAt(x, y int) RGBA {
	if len(g.stops) == 0 {
		return RGBA{}
	}
	dx, dy := g.X1-g.X0, g.Y1-g.Y0
	den := dx*dx + dy*dy
	var t float64
	if den > 0 {
		t = ((float64(x)+0.5-g.X0)*dx + (float64(y)+0.5-g.Y0)*dy) / den
	}
	return evalStops(g.stops, t)
}

// RadialGradient interpolates stops by distance from a center point out to
// radius R, a simplified ctx.createRadialGradient with concentric circles.
type RadialGradient struct {
	CX, CY, R float64
	stops     []Stop
}

// NewRadialGradient returns a radial gradient centered at (cx, cy).
func NewRadialGradient(cx, cy, r float64) *RadialGradient {
	return &RadialGradient{CX: cx, CY: cy, R: r}
}

// AddStop inserts a color stop as for LinearGradient.
func (g *RadialGradient) AddStop(pos float64, c RGBA) {
	if pos < 0 {
		pos = 0
	}
	if pos > 1 {
		pos = 1
	}
	g.stops = append(g.stops, Stop{pos, c})
	sort.SliceStable(g.stops, func(i, j int) bool { return g.stops[i].Pos < g.stops[j].Pos })
}

// ColorAt implements Paint.
func (g *RadialGradient) ColorAt(x, y int) RGBA {
	if len(g.stops) == 0 {
		return RGBA{}
	}
	var t float64
	if g.R > 0 {
		t = math.Hypot(float64(x)+0.5-g.CX, float64(y)+0.5-g.CY) / g.R
	}
	return evalStops(g.stops, t)
}

// evalStops interpolates sorted stops at parameter t, clamped.
func evalStops(stops []Stop, t float64) RGBA {
	if t <= stops[0].Pos {
		return stops[0].C
	}
	last := stops[len(stops)-1]
	if t >= last.Pos {
		return last.C
	}
	for i := 1; i < len(stops); i++ {
		if t <= stops[i].Pos {
			a, b := stops[i-1], stops[i]
			span := b.Pos - a.Pos
			if span <= 0 {
				return b.C
			}
			f := (t - a.Pos) / span
			return lerpColor(a.C, b.C, f)
		}
	}
	return last.C
}

// lerpColor interpolates channel-wise with round-half-up, deterministic.
func lerpColor(a, b RGBA, t float64) RGBA {
	li := func(x, y uint8) uint8 {
		return uint8(math.Floor(float64(x) + (float64(y)-float64(x))*t + 0.5))
	}
	return RGBA{li(a.R, b.R), li(a.G, b.G), li(a.B, b.B), li(a.A, b.A)}
}
