// Package checkpoint persists crawl/study progress so a killed run
// resumes instead of restarting. A checkpoint is a versioned JSON
// sidecar (checkpoint.json) written atomically next to the run bundle;
// it captures, at a committed crawl frontier:
//
//   - the completed page prefix per crawl condition (the PageResults
//     themselves — replayable verbatim);
//   - the parse-cache accounting cursor (first-seen body hashes in
//     page order);
//   - the full metrics-registry snapshot and evidence-event log with
//     their high-water marks (event seq, dropped count);
//   - the fault model's cursor (seed + rate + forced plans — PlanFor
//     is a pure function of those, so nothing else is needed);
//   - the list of pipeline phases already finished.
//
// The crawler's ordered-commit pipeline guarantees the cut is exact:
// when Config.OnCommit runs, the registry and sink contain writes for
// pages [0, Frontier) — all of them, and nothing beyond — so the
// checkpoint equals the state a fresh run would have after crawling
// exactly that prefix. That equality is what makes interrupted-then-
// resumed bundles byte-identical to uninterrupted ones (the resume
// oracle in resume_test.go enforces it at several widths and cut
// points).
package checkpoint

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"canvassing/internal/crawler"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/snapshot"
)

// SchemaVersion is the checkpoint.json format version. Bump on any
// shape change; Load rejects newer schemas rather than misreading.
const SchemaVersion = 1

// FileName is the sidecar file a Writer maintains under its directory.
const FileName = "checkpoint.json"

// SnapshotDirName is the snapshot-store subdirectory Save uses.
const SnapshotDirName = "snapshots"

// CrawlState is one crawl condition's committed progress.
type CrawlState struct {
	// Condition labels the crawl ("control", "abp", ...).
	Condition string `json:"condition"`
	// Total is the site count; Frontier the committed prefix length.
	Total    int `json:"total"`
	Frontier int `json:"frontier"`
	// Done marks a crawl that ran to completion.
	Done bool `json:"done,omitempty"`
	// Machine and Extension mirror crawler.Result for reconstruction.
	Machine   string `json:"machine,omitempty"`
	Extension string `json:"extension,omitempty"`
	// Pages is the committed page prefix, verbatim.
	Pages []*crawler.PageResult `json:"pages"`
	// ParseSeen is the parse-cache first-seen cursor at the frontier.
	ParseSeen []uint64 `json:"parse_seen,omitempty"`
}

// Checkpoint is the whole sidecar document.
type Checkpoint struct {
	Schema int `json:"schema"`
	// Sequence counts checkpoint writes, monotonically across resumes.
	Sequence int `json:"seq"`
	// Opts is the run configuration as the caller serialized it; Resume
	// uses it to verify it is continuing the same study.
	Opts json.RawMessage `json:"opts,omitempty"`
	// Phases lists pipeline phases that finished, in completion order.
	Phases []string `json:"phases,omitempty"`
	// Crawls holds per-condition progress, in start order.
	Crawls []*CrawlState `json:"crawls,omitempty"`
	// Metrics is the full registry snapshot at the cut.
	Metrics obs.Snapshot `json:"metrics"`
	// Events is the retained evidence log with its high-water marks.
	Events        []event.Event `json:"events,omitempty"`
	EventsSeq     uint64        `json:"events_seq"`
	EventsDropped uint64        `json:"events_dropped,omitempty"`
	// Faults is the fault model's cursor (nil for fault-free runs).
	Faults *netsim.FaultState `json:"faults,omitempty"`
	// HasSnapshots marks a saved snapshot store under SnapshotDirName.
	HasSnapshots bool `json:"has_snapshots,omitempty"`
}

// Crawl returns the state recorded for condition (nil if none).
func (cp *Checkpoint) Crawl(condition string) *CrawlState {
	for _, c := range cp.Crawls {
		if c.Condition == condition {
			return c
		}
	}
	return nil
}

// PhaseDone reports whether name is in the finished-phase list.
func (cp *Checkpoint) PhaseDone(name string) bool {
	for _, p := range cp.Phases {
		if p == name {
			return true
		}
	}
	return false
}

// Writer maintains the checkpoint sidecar for one run. It is driven
// from two places: the crawler's committer goroutine (via Hook) and
// the study's phase boundaries (via FinishPhase). A mutex serializes
// them; in practice they never overlap, since phases and crawls are
// sequential.
type Writer struct {
	// Metrics, Events, Faults, Snapshots are the live state sources the
	// writer captures at each cut. Set them before the first write.
	Metrics   *obs.Registry
	Events    *event.Sink
	Faults    *netsim.FaultModel
	Snapshots *snapshot.Store
	// StopAfter, when positive, makes the Hook request a crawl stop
	// after that many checkpoint writes — the interruption lever the
	// resume oracle and `make resume-smoke` pull. 0 never stops.
	StopAfter int
	// Status, when set, is told about every successful sidecar write so
	// /statusz can report live checkpoint state. It is an observer only:
	// nothing from it enters the checkpoint document.
	Status *obs.Status

	dir   string
	every int

	mu      sync.Mutex
	cp      *Checkpoint
	writes  int
	stopped bool
}

// NewWriter returns a writer that checkpoints into dir every `every`
// committed pages (<=0 selects 256). Pass Every() as the crawl
// config's CommitEvery.
func NewWriter(dir string, every int) *Writer {
	if every <= 0 {
		every = 256
	}
	return &Writer{
		dir:   dir,
		every: every,
		cp:    &Checkpoint{Schema: SchemaVersion},
	}
}

// Every returns the checkpoint cadence in committed pages.
func (w *Writer) Every() int { return w.every }

// Dir returns the checkpoint directory.
func (w *Writer) Dir() string { return w.dir }

// Writes returns how many checkpoints this writer has written.
func (w *Writer) Writes() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.writes
}

// Stopped reports whether the Hook requested a stop (StopAfter hit).
func (w *Writer) Stopped() bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.stopped
}

// SetOpts records the run configuration in the sidecar.
func (w *Writer) SetOpts(v any) error {
	data, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("checkpoint: opts: %w", err)
	}
	w.mu.Lock()
	w.cp.Opts = data
	w.mu.Unlock()
	return nil
}

// Adopt continues a loaded checkpoint: sequence numbering and finished
// phases carry over, so a resumed run's sidecar is a continuation, not
// a restart.
func (w *Writer) Adopt(cp *Checkpoint) {
	w.mu.Lock()
	w.cp = cp
	w.mu.Unlock()
}

// Hook returns the crawler OnCommit callback for one crawl. Each
// invocation snapshots the live sources, updates the condition's
// CrawlState, and rewrites the sidecar atomically.
func (w *Writer) Hook(machine, extension string) func(crawler.CommitState) bool {
	return func(st crawler.CommitState) bool {
		return w.commit(st, machine, extension)
	}
}

func (w *Writer) commit(st crawler.CommitState, machine, extension string) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	cs := w.cp.Crawl(st.Condition)
	if cs == nil {
		cs = &CrawlState{Condition: st.Condition}
		w.cp.Crawls = append(w.cp.Crawls, cs)
	}
	cs.Total = st.Total
	cs.Frontier = st.Frontier
	cs.Done = st.Final
	cs.Machine = machine
	cs.Extension = extension
	cs.Pages = append(cs.Pages[:0], st.Pages...)
	cs.ParseSeen = append(cs.ParseSeen[:0], st.ParseSeen...)
	if err := w.writeLocked(); err != nil {
		// A failed checkpoint write must not corrupt the crawl; the run
		// continues and the next cut retries. Surface it on stderr —
		// there is no error channel through the crawler hook.
		fmt.Fprintf(os.Stderr, "checkpoint: %v\n", err)
		return false
	}
	if w.StopAfter > 0 && w.writes >= w.StopAfter && !st.Final {
		w.stopped = true
		return true
	}
	return false
}

// FinishPhase records a completed pipeline phase and checkpoints.
func (w *Writer) FinishPhase(name string) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	if !w.cp.PhaseDone(name) {
		w.cp.Phases = append(w.cp.Phases, name)
	}
	return w.writeLocked()
}

// writeLocked captures the live sources into the document and writes
// the sidecar. Callers hold w.mu.
func (w *Writer) writeLocked() error {
	if w.Metrics != nil {
		w.cp.Metrics = w.Metrics.Snapshot()
	}
	if w.Events != nil {
		w.cp.Events = w.Events.Events()
		w.cp.EventsSeq = w.Events.Total()
		w.cp.EventsDropped = w.Events.Dropped()
	}
	if w.Faults != nil {
		st := w.Faults.Export()
		w.cp.Faults = &st
	}
	w.cp.HasSnapshots = w.Snapshots != nil
	if err := os.MkdirAll(w.dir, 0o755); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if w.Snapshots != nil {
		if err := w.Snapshots.Save(filepath.Join(w.dir, SnapshotDirName)); err != nil {
			return err
		}
	}
	w.cp.Sequence++
	data, err := json.MarshalIndent(w.cp, "", "  ")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := atomicWrite(filepath.Join(w.dir, FileName), append(data, '\n')); err != nil {
		return err
	}
	w.writes++
	w.Status.CheckpointWrite(w.dir, w.writes, w.stopped)
	return nil
}

// Load reads and validates a checkpoint sidecar from dir.
func Load(dir string) (*Checkpoint, error) {
	data, err := os.ReadFile(filepath.Join(dir, FileName))
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	var cp Checkpoint
	if err := json.Unmarshal(data, &cp); err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	if cp.Schema > SchemaVersion {
		return nil, fmt.Errorf("checkpoint: schema v%d is newer than supported v%d", cp.Schema, SchemaVersion)
	}
	return &cp, nil
}

// LoadSnapshots reads the snapshot store saved next to a checkpoint.
func LoadSnapshots(dir string) (*snapshot.Store, error) {
	return snapshot.Load(filepath.Join(dir, SnapshotDirName))
}

// atomicWrite writes data to path via a same-directory temp file and
// rename, so a crash mid-checkpoint leaves the previous sidecar valid.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("checkpoint: %w", err)
	}
	return nil
}
