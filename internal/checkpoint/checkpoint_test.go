package checkpoint

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"canvassing/internal/crawler"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/snapshot"
)

// testWriter builds a writer with live telemetry sources and a few
// recorded observations, so checkpoints carry real state.
func testWriter(t *testing.T, dir string) (*Writer, *obs.Telemetry) {
	t.Helper()
	tel := obs.NewTelemetry()
	tel.Metrics.Counter("crawl.visits.ok").Add(7)
	tel.Metrics.Histogram("crawl.visit.seconds", obs.LatencyBuckets()).Observe(0.25)
	tel.Events.Record(event.Event{Kind: event.VisitOutcome, Crawl: "control", Site: "a.example", Verdict: "ok"})
	w := NewWriter(dir, 64)
	w.Metrics = tel.Metrics
	w.Events = tel.Events
	return w, tel
}

// commitState fabricates a crawler commit at the given frontier.
func commitState(frontier, total int, final bool) crawler.CommitState {
	pages := make([]*crawler.PageResult, frontier)
	for i := range pages {
		pages[i] = &crawler.PageResult{Domain: "site.example", OK: true}
	}
	return crawler.CommitState{
		Condition: "control",
		Frontier:  frontier,
		Total:     total,
		Pages:     pages,
		ParseSeen: []uint64{11, 22, 33},
		Final:     final,
	}
}

func TestWriteLoadRoundtrip(t *testing.T) {
	dir := t.TempDir()
	w, tel := testWriter(t, dir)
	w.Faults = netsim.NewFaultModel(9, 0.2)
	w.Faults.Force("down.example", netsim.FaultPlan{Kind: netsim.FaultOutage, Truncate: 1})
	if err := w.SetOpts(map[string]any{"seed": 9, "scale": 0.05}); err != nil {
		t.Fatal(err)
	}

	hook := w.Hook("intel-mac", "abp-sim")
	if hook(commitState(128, 600, false)) {
		t.Fatal("hook with StopAfter=0 requested a stop")
	}
	if err := w.FinishPhase("crawl.control"); err != nil {
		t.Fatal(err)
	}

	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Schema != SchemaVersion {
		t.Fatalf("schema = %d, want %d", cp.Schema, SchemaVersion)
	}
	if cp.Sequence != 2 {
		t.Fatalf("sequence = %d after two writes, want 2", cp.Sequence)
	}
	if !cp.PhaseDone("crawl.control") || cp.PhaseDone("analyze") {
		t.Fatalf("phases = %v", cp.Phases)
	}
	cs := cp.Crawl("control")
	if cs == nil {
		t.Fatal("control crawl state missing")
	}
	if cs.Frontier != 128 || cs.Total != 600 || cs.Done {
		t.Fatalf("crawl state = %+v", cs)
	}
	if cs.Machine != "intel-mac" || cs.Extension != "abp-sim" {
		t.Fatalf("machine/extension = %q/%q", cs.Machine, cs.Extension)
	}
	if len(cs.Pages) != 128 || len(cs.ParseSeen) != 3 {
		t.Fatalf("pages/parse cursor = %d/%d", len(cs.Pages), len(cs.ParseSeen))
	}
	if cp.Metrics.Counters["crawl.visits.ok"] != 7 {
		t.Fatalf("metrics snapshot lost counters: %v", cp.Metrics.Counters)
	}
	if len(cp.Events) != 1 || cp.EventsSeq != tel.Events.Total() {
		t.Fatalf("events = %d seq = %d", len(cp.Events), cp.EventsSeq)
	}
	if cp.Faults == nil || cp.Faults.Seed != 9 || cp.Faults.Rate != 0.2 {
		t.Fatalf("fault cursor = %+v", cp.Faults)
	}
	restored := netsim.RestoreFaultModel(*cp.Faults)
	if restored.PlanFor("down.example").Kind != netsim.FaultOutage {
		t.Fatal("forced fault plan lost in the cursor roundtrip")
	}
	if cp.Crawl("abp") != nil {
		t.Fatal("phantom crawl state")
	}
}

// TestHookStopAfter: the interruption lever. The stopping write must
// land on disk BEFORE the stop is requested, and a Final commit is
// never stopped (there is nothing left to interrupt).
func TestHookStopAfter(t *testing.T) {
	dir := t.TempDir()
	w, _ := testWriter(t, dir)
	w.StopAfter = 2
	hook := w.Hook("intel-mac", "")
	if hook(commitState(64, 600, false)) {
		t.Fatal("stopped before StopAfter writes")
	}
	if !hook(commitState(128, 600, false)) {
		t.Fatal("did not stop at StopAfter writes")
	}
	if !w.Stopped() {
		t.Fatal("Stopped() false after a stop")
	}
	// The checkpoint on disk reflects the stopping commit.
	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cs := cp.Crawl("control"); cs == nil || cs.Frontier != 128 {
		t.Fatalf("stopping write not on disk: %+v", cp.Crawls)
	}

	w2, _ := testWriter(t, t.TempDir())
	w2.StopAfter = 1
	if w2.Hook("intel-mac", "")(commitState(600, 600, true)) {
		t.Fatal("a Final commit must never be stopped")
	}
}

// TestAdoptContinuesSequence: a resumed run's writer inherits the
// loaded document, so sequence numbers and finished phases continue
// instead of restarting.
func TestAdoptContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	w, _ := testWriter(t, dir)
	hook := w.Hook("intel-mac", "")
	hook(commitState(64, 600, false))
	if err := w.FinishPhase("crawl.control"); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}

	w2, _ := testWriter(t, dir)
	w2.Adopt(cp)
	wantSeq := cp.Sequence + 1 // Adopt shares the document, so read before writing
	if err := w2.FinishPhase("analyze"); err != nil {
		t.Fatal(err)
	}
	cp2, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp2.Sequence != wantSeq {
		t.Fatalf("sequence = %d, want %d (continuation, not restart)", cp2.Sequence, wantSeq)
	}
	if !cp2.PhaseDone("crawl.control") || !cp2.PhaseDone("analyze") {
		t.Fatalf("phases lost across Adopt: %v", cp2.Phases)
	}
	if cp2.Crawl("control") == nil {
		t.Fatal("crawl state lost across Adopt")
	}
	// Finishing an already-finished phase must not duplicate it.
	if err := w2.FinishPhase("analyze"); err != nil {
		t.Fatal(err)
	}
	cp3, _ := Load(dir)
	count := 0
	for _, p := range cp3.Phases {
		if p == "analyze" {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("phase recorded %d times", count)
	}
}

// TestAtomicSidecar: the sidecar is replaced via temp-file + rename, so
// no write ever leaves a torn file and no temp files linger.
func TestAtomicSidecar(t *testing.T) {
	dir := t.TempDir()
	w, _ := testWriter(t, dir)
	hook := w.Hook("intel-mac", "")
	for i := 1; i <= 5; i++ {
		hook(commitState(i*64, 600, false))
		if _, err := Load(dir); err != nil {
			t.Fatalf("write %d left an unreadable sidecar: %v", i, err)
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp") {
			t.Fatalf("leftover temp file %s", e.Name())
		}
	}
	if len(entries) != 1 || entries[0].Name() != FileName {
		t.Fatalf("dir contents = %v, want just %s", entries, FileName)
	}
}

// TestSnapshotSidecar: a writer with a snapshot store saves it next to
// the sidecar and flags it, and LoadSnapshots gets it back.
func TestSnapshotSidecar(t *testing.T) {
	dir := t.TempDir()
	w, _ := testWriter(t, dir)
	w.Snapshots = snapshot.New()
	u, err := netsim.ParseURL("https://cdn.example/fp.js")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Snapshots.Fetch(u, func() (string, error) { return "var x;", nil }); err != nil {
		t.Fatal(err)
	}
	w.Snapshots.Account([]string{u.String()})
	w.Hook("intel-mac", "")(commitState(64, 600, false))

	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if !cp.HasSnapshots {
		t.Fatal("HasSnapshots not flagged")
	}
	snaps, err := LoadSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if snaps.Len() != 1 {
		t.Fatalf("loaded snapshot store has %d blobs, want 1", snaps.Len())
	}
	hits, misses := snaps.Counts()
	if hits != 0 || misses != 1 {
		t.Fatalf("accounting cursor = %d/%d, want 0/1", hits, misses)
	}
	if _, err := os.Stat(filepath.Join(dir, SnapshotDirName, "index.json")); err != nil {
		t.Fatal(err)
	}
}

func TestLoadRejectsNewerSchema(t *testing.T) {
	dir := t.TempDir()
	data := []byte(fmt.Sprintf(`{"schema": %d, "seq": 1, "metrics": {}}`, SchemaVersion+1))
	if err := os.WriteFile(filepath.Join(dir, FileName), data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(dir); err == nil {
		t.Fatal("Load accepted a newer-schema checkpoint")
	}
	if _, err := Load(t.TempDir()); err == nil {
		t.Fatal("Load invented a checkpoint in an empty directory")
	}
}

// TestCheckpointJSONSafe guards the marshal path against the +Inf
// histogram-bound hazard: a registry with populated histograms (whose
// top bucket bound is +Inf) must checkpoint and reload cleanly.
func TestCheckpointJSONSafe(t *testing.T) {
	dir := t.TempDir()
	tel := obs.NewTelemetry()
	h := tel.Metrics.Histogram("crawl.visit.seconds", obs.LatencyBuckets())
	h.Observe(0.1)
	h.Observe(1e9) // lands in the +Inf bucket
	tel.Metrics.Histogram("empty.histogram", obs.LatencyBuckets())
	w := NewWriter(dir, 0)
	if w.Every() != 256 {
		t.Fatalf("default cadence = %d, want 256", w.Every())
	}
	w.Metrics = tel.Metrics
	w.Events = tel.Events
	if err := w.FinishPhase("analyze"); err != nil {
		t.Fatal(err)
	}
	cp, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if cp.Metrics.Histograms["crawl.visit.seconds"].Count != 2 {
		t.Fatal("histogram lost in roundtrip")
	}
	reg := obs.NewRegistry()
	reg.Restore(cp.Metrics)
	if got := reg.Snapshot().Histograms["crawl.visit.seconds"].Count; got != 2 {
		t.Fatalf("restored histogram count = %d, want 2", got)
	}
}
