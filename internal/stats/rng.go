// Package stats provides deterministic pseudo-randomness and small
// statistical helpers used throughout the simulator.
//
// Everything in this repository must be reproducible from a single seed:
// the synthetic web, machine profiles, crawl jitter and workload generators
// all draw from RNGs created here. The generator is SplitMix64, which is
// fast, passes BigCrush, and — unlike math/rand's global state — lets us
// derive independent, stable substreams from string labels so that adding
// a new consumer never perturbs existing streams.
package stats

import "math"

// RNG is a deterministic SplitMix64 pseudo-random number generator.
// The zero value is a valid generator seeded with 0.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Fork derives an independent substream identified by label.
// Forking is stable: the same (parent seed, label) pair always yields the
// same substream, and forking does not advance the parent.
func (r *RNG) Fork(label string) *RNG {
	return &RNG{state: mix64(r.state ^ HashString(label))}
}

// Uint64 returns the next value in the stream.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	return mix64(r.state)
}

// mix64 is the SplitMix64 output function.
func mix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63 returns a non-negative int64.
func (r *RNG) Int63() int64 {
	return int64(r.Uint64() >> 1)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// NormFloat64 returns a normally distributed float64 with mean 0 and
// standard deviation 1, using the Box–Muller transform.
func (r *RNG) NormFloat64() float64 {
	// Avoid log(0) by nudging u1 away from zero.
	u1 := r.Float64()
	if u1 < 1e-300 {
		u1 = 1e-300
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomly reorders the first n elements using swap.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Pick returns a uniformly chosen element of xs. It panics on empty input.
func Pick[T any](r *RNG, xs []T) T {
	if len(xs) == 0 {
		panic("stats: Pick from empty slice")
	}
	return xs[r.Intn(len(xs))]
}

// Sample returns k distinct elements drawn without replacement from xs,
// in pseudo-random order. If k >= len(xs) a shuffled copy is returned.
func Sample[T any](r *RNG, xs []T, k int) []T {
	cp := make([]T, len(xs))
	copy(cp, xs)
	r.Shuffle(len(cp), func(i, j int) { cp[i], cp[j] = cp[j], cp[i] })
	if k >= len(cp) {
		return cp
	}
	return cp[:k]
}

// HashString returns a stable 64-bit FNV-1a hash of s.
// It is used to derive substream seeds and deterministic per-entity noise.
func HashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	return h
}

// HashBytes returns a stable 64-bit FNV-1a hash of b.
func HashBytes(b []byte) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for _, c := range b {
		h ^= uint64(c)
		h *= prime
	}
	return h
}
