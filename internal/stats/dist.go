package stats

import (
	"math"
	"sort"
)

// Zipf samples ranks from a bounded Zipf distribution over [1, n] with
// exponent s. Web popularity (both site traffic and vendor deployment
// frequency) is famously heavy-tailed, and the paper's Figure 1 shows the
// same long-tailed shape for canvas sharing, so the synthetic web uses
// Zipf-distributed popularity throughout.
type Zipf struct {
	n   int
	cdf []float64
}

// NewZipf builds a sampler over ranks 1..n with exponent s > 0.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("stats: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 1; i <= n; i++ {
		sum += 1 / math.Pow(float64(i), s)
		cdf[i-1] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{n: n, cdf: cdf}
}

// Rank draws a rank in [1, n].
func (z *Zipf) Rank(r *RNG) int {
	u := r.Float64()
	i := sort.SearchFloat64s(z.cdf, u)
	if i >= z.n {
		i = z.n - 1
	}
	return i + 1
}

// WeightedChoice selects an index in [0, len(weights)) with probability
// proportional to its weight. Zero-weight entries are never chosen.
// It panics if weights is empty or sums to zero.
func WeightedChoice(r *RNG, weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: negative weight")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("stats: WeightedChoice with no mass")
	}
	u := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if u < acc {
			return i
		}
	}
	return len(weights) - 1
}

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Median float64
	P90    float64
	P99    float64
	Stddev float64
}

// Summarize computes descriptive statistics. It returns a zero Summary for
// empty input.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	cp := make([]float64, len(xs))
	copy(cp, xs)
	sort.Float64s(cp)
	sum, sq := 0.0, 0.0
	for _, x := range cp {
		sum += x
		sq += x * x
	}
	n := float64(len(cp))
	mean := sum / n
	variance := sq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Summary{
		N:      len(cp),
		Min:    cp[0],
		Max:    cp[len(cp)-1],
		Mean:   mean,
		Median: Percentile(cp, 50),
		P90:    Percentile(cp, 90),
		P99:    Percentile(cp, 99),
		Stddev: math.Sqrt(variance),
	}
}

// Percentile returns the p-th percentile (0..100) of sorted input using
// nearest-rank interpolation. The input must already be sorted ascending.
func Percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 100 {
		return sorted[len(sorted)-1]
	}
	pos := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Histogram counts observations into integer-keyed buckets.
type Histogram struct {
	counts map[int]int
	total  int
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make(map[int]int)}
}

// Add records one observation of bucket b.
func (h *Histogram) Add(b int) {
	h.counts[b]++
	h.total++
}

// Count returns the number of observations in bucket b.
func (h *Histogram) Count(b int) int { return h.counts[b] }

// Total returns the number of observations across all buckets.
func (h *Histogram) Total() int { return h.total }

// Buckets returns the observed bucket keys in ascending order.
func (h *Histogram) Buckets() []int {
	keys := make([]int, 0, len(h.counts))
	for k := range h.counts {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// TopK returns the k buckets with the highest counts, ties broken by the
// smaller bucket key, as (bucket, count) pairs in descending count order.
func (h *Histogram) TopK(k int) [][2]int {
	pairs := make([][2]int, 0, len(h.counts))
	for b, c := range h.counts {
		pairs = append(pairs, [2]int{b, c})
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][1] != pairs[j][1] {
			return pairs[i][1] > pairs[j][1]
		}
		return pairs[i][0] < pairs[j][0]
	})
	if k < len(pairs) {
		pairs = pairs[:k]
	}
	return pairs
}
