package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different seeds produced %d identical outputs", same)
	}
}

func TestForkStable(t *testing.T) {
	parent := NewRNG(7)
	f1 := parent.Fork("web")
	f2 := parent.Fork("web")
	if f1.Uint64() != f2.Uint64() {
		t.Fatal("same label fork must yield identical stream")
	}
	f3 := parent.Fork("crawler")
	f4 := parent.Fork("web")
	if f3.Uint64() == f4.Uint64() {
		t.Fatal("different labels should yield different streams")
	}
}

func TestForkDoesNotAdvanceParent(t *testing.T) {
	a := NewRNG(9)
	b := NewRNG(9)
	_ = a.Fork("x")
	if a.Uint64() != b.Uint64() {
		t.Fatal("Fork advanced parent state")
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(4)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(7)
		if v < 0 || v >= 7 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 7 {
		t.Fatalf("Intn(7) only produced %d distinct values", len(seen))
	}
}

func TestIntnPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(5)
	n, hits := 100000, 0
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / float64(n)
	if math.Abs(got-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v", got)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(6)
	n := 100000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := r.NormFloat64()
		sum += x
		sq += x * x
	}
	mean := sum / float64(n)
	variance := sq/float64(n) - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("normal variance = %v", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(8)
	p := r.Perm(50)
	seen := make([]bool, 50)
	for _, v := range p {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestPickAndSample(t *testing.T) {
	r := NewRNG(10)
	xs := []string{"a", "b", "c", "d"}
	got := Pick(r, xs)
	found := false
	for _, x := range xs {
		if x == got {
			found = true
		}
	}
	if !found {
		t.Fatalf("Pick returned foreign element %q", got)
	}
	s := Sample(r, xs, 2)
	if len(s) != 2 {
		t.Fatalf("Sample size = %d", len(s))
	}
	if s[0] == s[1] {
		t.Fatal("Sample returned duplicate")
	}
	all := Sample(r, xs, 10)
	if len(all) != 4 {
		t.Fatalf("oversized Sample should return all elements, got %d", len(all))
	}
}

func TestHashStringStable(t *testing.T) {
	if HashString("akamai") != HashString("akamai") {
		t.Fatal("hash not stable")
	}
	if HashString("akamai") == HashString("akamaj") {
		t.Fatal("trivial collision")
	}
	if HashString("") == 0 {
		t.Fatal("empty hash should be FNV offset, not 0")
	}
}

func TestHashBytesMatchesHashString(t *testing.T) {
	if HashBytes([]byte("xyz")) != HashString("xyz") {
		t.Fatal("HashBytes and HashString disagree")
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRNG(11)
	z := NewZipf(1000, 1.0)
	h := NewHistogram()
	for i := 0; i < 50000; i++ {
		h.Add(z.Rank(r))
	}
	if h.Count(1) <= h.Count(100) {
		t.Fatalf("rank 1 (%d) should dominate rank 100 (%d)", h.Count(1), h.Count(100))
	}
	// Rank-1 mass for s=1, n=1000 is 1/H(1000) ≈ 0.133.
	frac := float64(h.Count(1)) / 50000
	if frac < 0.10 || frac > 0.17 {
		t.Fatalf("rank-1 mass = %v, want ≈0.133", frac)
	}
}

func TestZipfRankBounds(t *testing.T) {
	r := NewRNG(12)
	z := NewZipf(10, 1.2)
	for i := 0; i < 10000; i++ {
		rank := z.Rank(r)
		if rank < 1 || rank > 10 {
			t.Fatalf("rank out of bounds: %d", rank)
		}
	}
}

func TestWeightedChoice(t *testing.T) {
	r := NewRNG(13)
	counts := [3]int{}
	for i := 0; i < 30000; i++ {
		counts[WeightedChoice(r, []float64{1, 2, 0})]++
	}
	if counts[2] != 0 {
		t.Fatal("zero-weight entry was chosen")
	}
	ratio := float64(counts[1]) / float64(counts[0])
	if ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("weight ratio = %v, want ≈2", ratio)
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.Median != 3 {
		t.Fatalf("bad summary: %+v", s)
	}
	if Summarize(nil).N != 0 {
		t.Fatal("empty summary should be zero")
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Percentile(xs, 0); got != 10 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 100); got != 40 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 50); got != 25 {
		t.Fatalf("p50 = %v", got)
	}
}

func TestHistogramTopK(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 5; i++ {
		h.Add(1)
	}
	for i := 0; i < 3; i++ {
		h.Add(2)
	}
	h.Add(3)
	top := h.TopK(2)
	if len(top) != 2 || top[0] != [2]int{1, 5} || top[1] != [2]int{2, 3} {
		t.Fatalf("TopK = %v", top)
	}
	if h.Total() != 9 {
		t.Fatalf("Total = %d", h.Total())
	}
	if got := h.Buckets(); len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("Buckets = %v", got)
	}
}

// Property: Perm always returns a valid permutation for any size/seed.
func TestPermProperty(t *testing.T) {
	f := func(seed uint64, n uint8) bool {
		size := int(n%64) + 1
		p := NewRNG(seed).Perm(size)
		seen := make([]bool, size)
		for _, v := range p {
			if v < 0 || v >= size || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Fork substreams with distinct labels are distinct.
func TestForkProperty(t *testing.T) {
	f := func(seed uint64, a, b string) bool {
		r := NewRNG(seed)
		if a == b {
			return r.Fork(a).Uint64() == r.Fork(b).Uint64()
		}
		return r.Fork(a).Uint64() != r.Fork(b).Uint64()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Summarize min <= median <= max and min <= mean <= max.
func TestSummarizeProperty(t *testing.T) {
	f := func(xs []float64) bool {
		clean := xs[:0]
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e100 {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.Median+1e-9 && s.Median <= s.Max+1e-9 &&
			s.Min <= s.Mean+1e-9 && s.Mean <= s.Max+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkZipfRank(b *testing.B) {
	r := NewRNG(1)
	z := NewZipf(1_000_000, 1.0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = z.Rank(r)
	}
}
