package imaging

import (
	"bytes"
	"image/png"
	"strings"
	"testing"
	"testing/quick"

	"canvassing/internal/raster"
)

func testImage() *raster.Image {
	img := raster.NewImage(20, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 20; x++ {
			img.Set(x, y, raster.RGBA{R: uint8(x * 12), G: uint8(y * 25), B: 77, A: 255})
		}
	}
	return img
}

func TestParseFormat(t *testing.T) {
	cases := map[string]Format{
		"image/png":  PNG,
		"image/jpeg": JPEG,
		"image/jpg":  JPEG,
		"image/webp": WebP,
		"":           PNG,
		"image/gif":  PNG, // unsupported falls back to png per spec
		"IMAGE/WEBP": WebP,
	}
	for in, want := range cases {
		if got := ParseFormat(in); got != want {
			t.Fatalf("ParseFormat(%q) = %v, want %v", in, got, want)
		}
	}
}

func TestLossy(t *testing.T) {
	if PNG.Lossy() {
		t.Fatal("png is lossless")
	}
	if !JPEG.Lossy() || !WebP.Lossy() {
		t.Fatal("jpeg and webp are lossy")
	}
}

func TestEncodePNGRoundtrip(t *testing.T) {
	img := testImage()
	data, err := Encode(img, PNG, 0)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := png.Decode(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	if decoded.Bounds().Dx() != 20 || decoded.Bounds().Dy() != 10 {
		t.Fatal("dimension mismatch")
	}
	r, g, _, _ := decoded.At(5, 2).RGBA()
	if uint8(r>>8) != 60 || uint8(g>>8) != 50 {
		t.Fatalf("pixel mismatch: r=%d g=%d", r>>8, g>>8)
	}
}

func TestEncodeDeterministic(t *testing.T) {
	img := testImage()
	for _, f := range []Format{PNG, JPEG, WebP} {
		a, err := Encode(img, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Encode(img, f, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s encoding must be deterministic", f)
		}
	}
}

func TestJPEGIsLossyInPractice(t *testing.T) {
	img := testImage()
	data, err := Encode(img, JPEG, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 || bytes.Equal(data[:4], []byte("\x89PNG")) {
		t.Fatal("should be jpeg bytes")
	}
}

func TestWebPSimRoundtrip(t *testing.T) {
	img := testImage()
	data, err := Encode(img, WebP, 0.92)
	if err != nil {
		t.Fatal(err)
	}
	if string(data[0:4]) != "RIFF" || string(data[8:12]) != "WEBP" {
		t.Fatal("container tags missing")
	}
	back, err := DecodeWebPSim(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.W != img.W || back.H != img.H {
		t.Fatal("dimensions lost")
	}
	// Lossy: quantization must have destroyed some low bits.
	if back.Equal(img) {
		t.Fatal("webp-sim should be lossy")
	}
	// But it should be close (quality 0.92 → small step).
	c0, c1 := img.At(3, 3), back.At(3, 3)
	if int(c0.R)-int(c1.R) > 4 || int(c1.R) > int(c0.R) {
		t.Fatalf("quantization too aggressive: %v vs %v", c0, c1)
	}
}

func TestWebPSimQualityAffectsLoss(t *testing.T) {
	img := testImage()
	hi, _ := Encode(img, WebP, 0.95)
	lo, _ := Encode(img, WebP, 0.10)
	hiImg, _ := DecodeWebPSim(hi)
	loImg, _ := DecodeWebPSim(lo)
	if hiImg.DiffCount(img) >= loImg.DiffCount(img) {
		t.Fatal("lower quality should lose more detail")
	}
}

func TestDecodeWebPSimRejectsGarbage(t *testing.T) {
	if _, err := DecodeWebPSim([]byte("not webp at all")); err == nil {
		t.Fatal("should reject")
	}
	if _, err := DecodeWebPSim(nil); err == nil {
		t.Fatal("should reject empty")
	}
	// Valid header but truncated payload.
	img := testImage()
	data, _ := Encode(img, WebP, 0.9)
	if _, err := DecodeWebPSim(data[:30]); err == nil {
		t.Fatal("should reject truncated")
	}
}

func TestDataURLRoundtrip(t *testing.T) {
	img := testImage()
	data, _ := Encode(img, PNG, 0)
	u := DataURL(PNG, data)
	if !strings.HasPrefix(u, "data:image/png;base64,") {
		t.Fatalf("prefix: %s", u[:40])
	}
	f, back, err := ParseDataURL(u)
	if err != nil {
		t.Fatal(err)
	}
	if f != PNG || !bytes.Equal(back, data) {
		t.Fatal("roundtrip mismatch")
	}
}

func TestParseDataURLErrors(t *testing.T) {
	if _, _, err := ParseDataURL("http://example.com/x.png"); err == nil {
		t.Fatal("non-data URL should fail")
	}
	if _, _, err := ParseDataURL("data:image/png,rawdata"); err == nil {
		t.Fatal("missing base64 marker should fail")
	}
	if _, _, err := ParseDataURL("data:image/png;base64,!!!"); err == nil {
		t.Fatal("bad base64 should fail")
	}
}

func TestPNGSize(t *testing.T) {
	img := testImage()
	data, _ := Encode(img, PNG, 0)
	w, h, err := PNGSize(data)
	if err != nil || w != 20 || h != 10 {
		t.Fatalf("w=%d h=%d err=%v", w, h, err)
	}
	if _, _, err := PNGSize([]byte("short")); err == nil {
		t.Fatal("should reject non-png")
	}
}

// Property: data URL roundtrip is lossless for arbitrary payloads.
func TestDataURLProperty(t *testing.T) {
	f := func(payload []byte) bool {
		u := DataURL(PNG, payload)
		fmtGot, back, err := ParseDataURL(u)
		return err == nil && fmtGot == PNG && bytes.Equal(back, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: webp-sim roundtrip preserves dimensions and never increases
// channel values (quantization only truncates).
func TestWebPSimProperty(t *testing.T) {
	f := func(w, h uint8, seed uint8) bool {
		img := raster.NewImage(int(w%32)+1, int(h%32)+1)
		for i := range img.Pix {
			img.Pix[i] = uint8(int(seed) + i*7)
		}
		data := encodeWebPSim(img, 0.8)
		back, err := DecodeWebPSim(data)
		if err != nil || back.W != img.W || back.H != img.H {
			return false
		}
		for i := range img.Pix {
			if back.Pix[i] > img.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkEncodePNG(b *testing.B) {
	img := testImage()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Encode(img, PNG, 0); err != nil {
			b.Fatal(err)
		}
	}
}
