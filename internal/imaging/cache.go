package imaging

import (
	"canvassing/internal/raster"

	"crypto/sha256"
	"encoding/binary"
	"sync"
	"sync/atomic"
)

// Encoding the same pixels to PNG thousands of times dominates crawl
// cost: a vendor's test canvas is byte-identical on every customer site,
// so its encoded form can be computed once. The cache is content
// addressed (SHA-256 over pixels + format + quality), which makes a
// false hit cryptographically implausible, and bounded by wholesale
// eviction — the working set of distinct canvases in a crawl is small.

var (
	encodeCacheOn atomic.Bool
	encodeMu      sync.RWMutex
	encodeCache   = map[[32]byte][]byte{}
)

// encodeCacheLimit bounds the number of cached encodings.
const encodeCacheLimit = 8192

func init() { encodeCacheOn.Store(true) }

// SetEncodeCacheEnabled toggles the content-addressed encode cache
// (the render-cache ablation). It returns the previous setting.
func SetEncodeCacheEnabled(on bool) bool {
	prev := encodeCacheOn.Swap(on)
	if !on {
		encodeMu.Lock()
		encodeCache = map[[32]byte][]byte{}
		encodeMu.Unlock()
	}
	return prev
}

// EncodeCached is Encode with the content-addressed cache applied.
// Callers must not mutate the returned slice.
func EncodeCached(img *raster.Image, f Format, quality float64) ([]byte, error) {
	if !encodeCacheOn.Load() {
		return Encode(img, f, quality)
	}
	key := encodeKey(img, f, quality)
	encodeMu.RLock()
	data, ok := encodeCache[key]
	encodeMu.RUnlock()
	if ok {
		return data, nil
	}
	data, err := Encode(img, f, quality)
	if err != nil {
		return nil, err
	}
	encodeMu.Lock()
	if len(encodeCache) >= encodeCacheLimit {
		encodeCache = map[[32]byte][]byte{}
	}
	encodeCache[key] = data
	encodeMu.Unlock()
	return data, nil
}

func encodeKey(img *raster.Image, f Format, quality float64) [32]byte {
	h := sha256.New()
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], uint64(img.W))
	binary.LittleEndian.PutUint64(hdr[8:], uint64(img.H))
	binary.LittleEndian.PutUint64(hdr[16:], uint64(int64(quality*10000)))
	h.Write(hdr[:])
	h.Write([]byte(f))
	h.Write(img.Pix)
	var key [32]byte
	h.Sum(key[:0])
	return key
}
