// Package imaging converts raster images to the encoded forms the Canvas
// toDataURL API exposes, and parses them back for analysis.
//
// PNG and JPEG use the standard library codecs. WebP has no stdlib encoder,
// so a stand-in lossy codec is provided: it chroma-quantizes pixels and
// wraps them in a RIFF/WEBP-tagged container. For this study only two
// properties of webp matter — that it is recognizably a distinct MIME type
// (webp-support probes are a benign toDataURL use the detector must
// exclude) and that it is lossy (compression destroys the sub-pixel detail
// fingerprinting needs, which is why the paper excludes lossy formats).
// The stand-in preserves both.
package imaging

import (
	"bytes"
	"encoding/base64"
	"encoding/binary"
	"errors"
	"fmt"
	"image/jpeg"
	"image/png"
	"strings"

	"canvassing/internal/raster"
)

// Format identifies an encoding for canvas extraction.
type Format string

// Formats accepted by toDataURL in this implementation.
const (
	PNG  Format = "image/png"
	JPEG Format = "image/jpeg"
	WebP Format = "image/webp"
)

// ParseFormat normalizes a toDataURL type argument. Unknown or empty types
// fall back to PNG, as the Canvas spec requires.
func ParseFormat(s string) Format {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "image/jpeg", "image/jpg":
		return JPEG
	case "image/webp":
		return WebP
	default:
		return PNG
	}
}

// Lossy reports whether the format discards pixel detail.
func (f Format) Lossy() bool { return f == JPEG || f == WebP }

// Encode serializes img in the given format. Quality (0..1) applies to
// lossy formats only; values <= 0 select the Canvas default of 0.92.
func Encode(img *raster.Image, f Format, quality float64) ([]byte, error) {
	switch f {
	case JPEG:
		q := int(qualityOrDefault(quality) * 100)
		var buf bytes.Buffer
		if err := jpeg.Encode(&buf, img.ToStdImage(), &jpeg.Options{Quality: q}); err != nil {
			return nil, fmt.Errorf("imaging: jpeg encode: %w", err)
		}
		return buf.Bytes(), nil
	case WebP:
		return encodeWebPSim(img, qualityOrDefault(quality)), nil
	default:
		var buf bytes.Buffer
		if err := png.Encode(&buf, img.ToStdImage()); err != nil {
			return nil, fmt.Errorf("imaging: png encode: %w", err)
		}
		return buf.Bytes(), nil
	}
}

func qualityOrDefault(q float64) float64 {
	if q <= 0 || q > 1 {
		return 0.92
	}
	return q
}

// encodeWebPSim produces the stand-in lossy webp container: RIFF header,
// "WEBP" tag, dimensions, and pixel data quantized per channel. The
// quantization step grows as quality drops.
func encodeWebPSim(img *raster.Image, quality float64) []byte {
	step := uint8(1 + (1-quality)*24) // q=0.92 → step 2
	var buf bytes.Buffer
	buf.WriteString("RIFF")
	sizePos := buf.Len()
	buf.Write(make([]byte, 4))  // patched below
	buf.WriteString("WEBPVP8S") // "VP8S": simulated bitstream chunk tag
	var dims [8]byte
	binary.LittleEndian.PutUint32(dims[0:], uint32(img.W))
	binary.LittleEndian.PutUint32(dims[4:], uint32(img.H))
	buf.Write(dims[:])
	buf.WriteByte(step)
	for _, p := range img.Pix {
		buf.WriteByte(p - p%step)
	}
	out := buf.Bytes()
	binary.LittleEndian.PutUint32(out[sizePos:], uint32(len(out)-8))
	return out
}

// DecodeWebPSim recovers the (quantized) image from the stand-in codec.
func DecodeWebPSim(data []byte) (*raster.Image, error) {
	const hdr = 4 + 4 + 8 + 8 + 1
	if len(data) < hdr || string(data[0:4]) != "RIFF" || string(data[8:16]) != "WEBPVP8S" {
		return nil, errors.New("imaging: not a simulated webp stream")
	}
	w := int(binary.LittleEndian.Uint32(data[16:]))
	h := int(binary.LittleEndian.Uint32(data[20:]))
	if w < 0 || h < 0 || w*h*4 != len(data)-hdr {
		return nil, errors.New("imaging: corrupt simulated webp stream")
	}
	img := raster.NewImage(w, h)
	copy(img.Pix, data[hdr:])
	return img, nil
}

// DataURL wraps encoded bytes in the data: URL form toDataURL returns.
func DataURL(f Format, data []byte) string {
	return "data:" + string(f) + ";base64," + base64.StdEncoding.EncodeToString(data)
}

// ParseDataURL splits a data: URL into its format and decoded payload.
func ParseDataURL(u string) (Format, []byte, error) {
	rest, ok := strings.CutPrefix(u, "data:")
	if !ok {
		return "", nil, errors.New("imaging: not a data URL")
	}
	mime, payload, ok := strings.Cut(rest, ";base64,")
	if !ok {
		return "", nil, errors.New("imaging: missing base64 marker")
	}
	data, err := base64.StdEncoding.DecodeString(payload)
	if err != nil {
		return "", nil, fmt.Errorf("imaging: base64: %w", err)
	}
	return Format(mime), data, nil
}

// PNGSize reads the dimensions from an encoded PNG without a full decode.
func PNGSize(data []byte) (w, h int, err error) {
	// 8-byte signature, 4-byte length, "IHDR", then width/height.
	if len(data) < 24 || string(data[12:16]) != "IHDR" {
		return 0, 0, errors.New("imaging: not a PNG")
	}
	w = int(binary.BigEndian.Uint32(data[16:20]))
	h = int(binary.BigEndian.Uint32(data[20:24]))
	return w, h, nil
}
