package imaging

import (
	"bytes"
	"testing"

	"canvassing/internal/raster"
)

func cacheTestImage(fill uint8) *raster.Image {
	img := raster.NewImage(64, 32)
	for i := range img.Pix {
		img.Pix[i] = fill + uint8(i%7)
	}
	return img
}

func TestEncodeCachedMatchesEncode(t *testing.T) {
	defer SetEncodeCacheEnabled(SetEncodeCacheEnabled(true))
	img := cacheTestImage(10)
	for _, f := range []Format{PNG, JPEG, WebP} {
		want, err := Encode(img, f, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		got, err := EncodeCached(img, f, 0.9)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("%s: cached encode differs", f)
		}
		// Second call hits the cache and must return identical bytes.
		got2, _ := EncodeCached(img, f, 0.9)
		if !bytes.Equal(want, got2) {
			t.Fatalf("%s: cache hit differs", f)
		}
	}
}

func TestEncodeCachedKeySensitivity(t *testing.T) {
	defer SetEncodeCacheEnabled(SetEncodeCacheEnabled(true))
	a, _ := EncodeCached(cacheTestImage(1), PNG, 0)
	b, _ := EncodeCached(cacheTestImage(2), PNG, 0)
	if bytes.Equal(a, b) {
		t.Fatal("different pixels must not collide")
	}
	png, _ := EncodeCached(cacheTestImage(3), PNG, 0)
	webp, _ := EncodeCached(cacheTestImage(3), WebP, 0)
	if bytes.Equal(png, webp) {
		t.Fatal("different formats must not collide")
	}
	q1, _ := EncodeCached(cacheTestImage(4), WebP, 0.9)
	q2, _ := EncodeCached(cacheTestImage(4), WebP, 0.2)
	if bytes.Equal(q1, q2) {
		t.Fatal("different qualities must not collide")
	}
}

func TestEncodeCacheDisable(t *testing.T) {
	prev := SetEncodeCacheEnabled(false)
	defer SetEncodeCacheEnabled(prev)
	img := cacheTestImage(9)
	a, err := EncodeCached(img, PNG, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Encode(img, PNG, 0)
	if !bytes.Equal(a, b) {
		t.Fatal("disabled cache must fall through to Encode")
	}
}

func TestEncodeCacheEviction(t *testing.T) {
	defer SetEncodeCacheEnabled(SetEncodeCacheEnabled(true))
	// Fill past the limit; the map must be bounded, not grow forever.
	for i := 0; i < encodeCacheLimit+10; i++ {
		img := raster.NewImage(2, 2)
		img.Pix[0] = uint8(i)
		img.Pix[1] = uint8(i >> 8)
		if _, err := EncodeCached(img, PNG, 0); err != nil {
			t.Fatal(err)
		}
	}
	encodeMu.RLock()
	n := len(encodeCache)
	encodeMu.RUnlock()
	if n > encodeCacheLimit {
		t.Fatalf("cache grew past limit: %d", n)
	}
}

func BenchmarkEncodeCacheHit(b *testing.B) {
	defer SetEncodeCacheEnabled(SetEncodeCacheEnabled(true))
	img := cacheTestImage(42)
	if _, err := EncodeCached(img, PNG, 0); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCached(img, PNG, 0); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeCacheMissVsRaw(b *testing.B) {
	img := cacheTestImage(42)
	b.Run("raw-encode", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Encode(img, PNG, 0); err != nil {
				b.Fatal(err)
			}
		}
	})
}
