// Package geom provides the 2-D geometric primitives used by the software
// rasterizer and the Canvas API layer: points, rectangles, affine
// transforms, and Bézier-curve flattening.
//
// All coordinates are float64 in user space; the rasterizer converts to
// device pixels at scanline time. The affine transform follows the HTML
// Canvas convention [a b c d e f]:
//
//	x' = a*x + c*y + e
//	y' = b*x + d*y + f
package geom

import "math"

// Point is a position or vector in user space.
type Point struct {
	X, Y float64
}

// Pt is shorthand for Point{x, y}.
func Pt(x, y float64) Point { return Point{x, y} }

// Add returns p + q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// Sub returns p - q.
func (p Point) Sub(q Point) Point { return Point{p.X - q.X, p.Y - q.Y} }

// Mul returns p scaled by k.
func (p Point) Mul(k float64) Point { return Point{p.X * k, p.Y * k} }

// Dot returns the dot product p · q.
func (p Point) Dot(q Point) float64 { return p.X*q.X + p.Y*q.Y }

// Cross returns the z-component of the cross product p × q.
func (p Point) Cross(q Point) float64 { return p.X*q.Y - p.Y*q.X }

// Len returns the Euclidean length of p as a vector.
func (p Point) Len() float64 { return math.Hypot(p.X, p.Y) }

// Normalize returns p scaled to unit length, or the zero point if p is zero.
func (p Point) Normalize() Point {
	l := p.Len()
	if l == 0 {
		return Point{}
	}
	return Point{p.X / l, p.Y / l}
}

// Perp returns p rotated 90 degrees counter-clockwise.
func (p Point) Perp() Point { return Point{-p.Y, p.X} }

// Lerp returns the linear interpolation between p and q at parameter t.
func Lerp(p, q Point, t float64) Point {
	return Point{p.X + (q.X-p.X)*t, p.Y + (q.Y-p.Y)*t}
}

// Rect is an axis-aligned rectangle. Min is inclusive, Max exclusive.
type Rect struct {
	Min, Max Point
}

// RectWH returns the rectangle with origin (x, y) and the given size.
// Negative sizes are normalized so Min <= Max holds.
func RectWH(x, y, w, h float64) Rect {
	r := Rect{Point{x, y}, Point{x + w, y + h}}
	return r.Canon()
}

// Canon returns r with Min and Max swapped per axis as needed.
func (r Rect) Canon() Rect {
	if r.Min.X > r.Max.X {
		r.Min.X, r.Max.X = r.Max.X, r.Min.X
	}
	if r.Min.Y > r.Max.Y {
		r.Min.Y, r.Max.Y = r.Max.Y, r.Min.Y
	}
	return r
}

// W returns the width of r.
func (r Rect) W() float64 { return r.Max.X - r.Min.X }

// H returns the height of r.
func (r Rect) H() float64 { return r.Max.Y - r.Min.Y }

// Empty reports whether r encloses no area.
func (r Rect) Empty() bool { return r.Min.X >= r.Max.X || r.Min.Y >= r.Max.Y }

// Contains reports whether p lies inside r.
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Min.X && p.X < r.Max.X && p.Y >= r.Min.Y && p.Y < r.Max.Y
}

// Union returns the smallest rectangle containing both r and s.
// If either is empty, the other is returned.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		Point{math.Min(r.Min.X, s.Min.X), math.Min(r.Min.Y, s.Min.Y)},
		Point{math.Max(r.Max.X, s.Max.X), math.Max(r.Max.Y, s.Max.Y)},
	}
}

// Intersect returns the overlap of r and s, which may be empty.
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{
		Point{math.Max(r.Min.X, s.Min.X), math.Max(r.Min.Y, s.Min.Y)},
		Point{math.Min(r.Max.X, s.Max.X), math.Min(r.Max.Y, s.Max.Y)},
	}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// ExpandToInclude grows r to include p.
func (r Rect) ExpandToInclude(p Point) Rect {
	if r.Empty() {
		return Rect{p, Point{p.X + 1e-12, p.Y + 1e-12}}
	}
	if p.X < r.Min.X {
		r.Min.X = p.X
	}
	if p.Y < r.Min.Y {
		r.Min.Y = p.Y
	}
	if p.X > r.Max.X {
		r.Max.X = p.X
	}
	if p.Y > r.Max.Y {
		r.Max.Y = p.Y
	}
	return r
}

// Matrix is a 2-D affine transform in HTML Canvas [a b c d e f] form.
type Matrix struct {
	A, B, C, D, E, F float64
}

// Identity returns the identity transform.
func Identity() Matrix { return Matrix{A: 1, D: 1} }

// Translate returns m composed with a translation by (tx, ty), matching
// the Canvas ctx.translate semantics (new transform applied first).
func (m Matrix) Translate(tx, ty float64) Matrix {
	return m.Mul(Matrix{A: 1, D: 1, E: tx, F: ty})
}

// Scale returns m composed with a scale by (sx, sy).
func (m Matrix) Scale(sx, sy float64) Matrix {
	return m.Mul(Matrix{A: sx, D: sy})
}

// Rotate returns m composed with a rotation by theta radians.
func (m Matrix) Rotate(theta float64) Matrix {
	s, c := math.Sincos(theta)
	return m.Mul(Matrix{A: c, B: s, C: -s, D: c})
}

// Mul returns the composition m ∘ n: applying the result is equivalent to
// applying n first, then m.
func (m Matrix) Mul(n Matrix) Matrix {
	return Matrix{
		A: m.A*n.A + m.C*n.B,
		B: m.B*n.A + m.D*n.B,
		C: m.A*n.C + m.C*n.D,
		D: m.B*n.C + m.D*n.D,
		E: m.A*n.E + m.C*n.F + m.E,
		F: m.B*n.E + m.D*n.F + m.F,
	}
}

// Apply transforms p by m.
func (m Matrix) Apply(p Point) Point {
	return Point{
		X: m.A*p.X + m.C*p.Y + m.E,
		Y: m.B*p.X + m.D*p.Y + m.F,
	}
}

// IsIdentity reports whether m is exactly the identity transform.
func (m Matrix) IsIdentity() bool {
	return m == Matrix{A: 1, D: 1}
}

// Det returns the determinant of the linear part of m.
func (m Matrix) Det() float64 { return m.A*m.D - m.B*m.C }

// Invert returns the inverse transform and whether m is invertible.
func (m Matrix) Invert() (Matrix, bool) {
	det := m.Det()
	if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) {
		return Matrix{}, false
	}
	inv := 1 / det
	return Matrix{
		A: m.D * inv,
		B: -m.B * inv,
		C: -m.C * inv,
		D: m.A * inv,
		E: (m.C*m.F - m.D*m.E) * inv,
		F: (m.B*m.E - m.A*m.F) * inv,
	}, true
}
