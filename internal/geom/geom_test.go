package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func pointsClose(a, b Point, eps float64) bool {
	return math.Abs(a.X-b.X) < eps && math.Abs(a.Y-b.Y) < eps
}

func TestPointArithmetic(t *testing.T) {
	p := Pt(3, 4)
	q := Pt(1, 2)
	if p.Add(q) != Pt(4, 6) {
		t.Fatal("Add")
	}
	if p.Sub(q) != Pt(2, 2) {
		t.Fatal("Sub")
	}
	if p.Mul(2) != Pt(6, 8) {
		t.Fatal("Mul")
	}
	if !almostEq(p.Len(), 5) {
		t.Fatal("Len")
	}
	if !almostEq(p.Dot(q), 11) {
		t.Fatal("Dot")
	}
	if !almostEq(p.Cross(q), 2) {
		t.Fatal("Cross")
	}
	if p.Perp() != Pt(-4, 3) {
		t.Fatal("Perp")
	}
}

func TestNormalize(t *testing.T) {
	n := Pt(3, 4).Normalize()
	if !almostEq(n.Len(), 1) {
		t.Fatalf("unit length, got %v", n.Len())
	}
	if (Point{}).Normalize() != (Point{}) {
		t.Fatal("zero vector should normalize to zero")
	}
}

func TestLerp(t *testing.T) {
	if Lerp(Pt(0, 0), Pt(10, 20), 0.5) != Pt(5, 10) {
		t.Fatal("midpoint")
	}
	if Lerp(Pt(1, 1), Pt(2, 2), 0) != Pt(1, 1) {
		t.Fatal("t=0")
	}
	if Lerp(Pt(1, 1), Pt(2, 2), 1) != Pt(2, 2) {
		t.Fatal("t=1")
	}
}

func TestRectBasics(t *testing.T) {
	r := RectWH(10, 20, 30, 40)
	if r.W() != 30 || r.H() != 40 {
		t.Fatalf("size: %v x %v", r.W(), r.H())
	}
	if !r.Contains(Pt(10, 20)) || r.Contains(Pt(40, 60)) {
		t.Fatal("containment half-open semantics")
	}
	neg := RectWH(10, 10, -5, -5)
	if neg.Min != Pt(5, 5) || neg.Max != Pt(10, 10) {
		t.Fatalf("negative size not canonicalized: %+v", neg)
	}
	if !(Rect{}).Empty() {
		t.Fatal("zero rect should be empty")
	}
}

func TestRectUnionIntersect(t *testing.T) {
	a := RectWH(0, 0, 10, 10)
	b := RectWH(5, 5, 10, 10)
	u := a.Union(b)
	if u != RectWH(0, 0, 15, 15) {
		t.Fatalf("union = %+v", u)
	}
	i := a.Intersect(b)
	if i != RectWH(5, 5, 5, 5) {
		t.Fatalf("intersect = %+v", i)
	}
	if !a.Intersect(RectWH(20, 20, 5, 5)).Empty() {
		t.Fatal("disjoint intersect should be empty")
	}
	if a.Union(Rect{}) != a {
		t.Fatal("union with empty")
	}
}

func TestExpandToInclude(t *testing.T) {
	r := Rect{}
	r = r.ExpandToInclude(Pt(5, 5))
	r = r.ExpandToInclude(Pt(-1, 10))
	if !r.Contains(Pt(5, 5)) && r.Max.X < 5 {
		t.Fatalf("expand failed: %+v", r)
	}
	if r.Min.X != -1 || r.Max.Y != 10 {
		t.Fatalf("expand bounds: %+v", r)
	}
}

func TestMatrixIdentity(t *testing.T) {
	m := Identity()
	if !m.IsIdentity() {
		t.Fatal("IsIdentity")
	}
	p := Pt(7, -3)
	if m.Apply(p) != p {
		t.Fatal("identity apply")
	}
}

func TestMatrixTranslateScaleRotate(t *testing.T) {
	m := Identity().Translate(10, 20)
	if m.Apply(Pt(1, 1)) != Pt(11, 21) {
		t.Fatal("translate")
	}
	m = Identity().Scale(2, 3)
	if m.Apply(Pt(1, 1)) != Pt(2, 3) {
		t.Fatal("scale")
	}
	m = Identity().Rotate(math.Pi / 2)
	got := m.Apply(Pt(1, 0))
	if !pointsClose(got, Pt(0, 1), 1e-12) {
		t.Fatalf("rotate: %+v", got)
	}
}

func TestMatrixCompositionOrder(t *testing.T) {
	// Canvas semantics: translate then scale means scale is applied to
	// points first.
	m := Identity().Translate(10, 0).Scale(2, 2)
	if m.Apply(Pt(1, 1)) != Pt(12, 2) {
		t.Fatalf("composition order: %+v", m.Apply(Pt(1, 1)))
	}
}

func TestMatrixInvert(t *testing.T) {
	m := Identity().Translate(3, 4).Rotate(0.7).Scale(2, 5)
	inv, ok := m.Invert()
	if !ok {
		t.Fatal("should be invertible")
	}
	p := Pt(11, -2)
	back := inv.Apply(m.Apply(p))
	if !pointsClose(back, p, 1e-9) {
		t.Fatalf("roundtrip: %+v", back)
	}
	if _, ok := (Matrix{}).Invert(); ok {
		t.Fatal("singular matrix should not invert")
	}
}

func TestMatrixInvertProperty(t *testing.T) {
	f := func(a, b, c, d, e, fv float64) bool {
		clamp := func(x float64) float64 {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return 1
			}
			return math.Mod(x, 100)
		}
		m := Matrix{clamp(a), clamp(b), clamp(c), clamp(d), clamp(e), clamp(fv)}
		if math.Abs(m.Det()) < 1e-6 {
			return true
		}
		inv, ok := m.Invert()
		if !ok {
			return false
		}
		p := Pt(3, -7)
		return pointsClose(inv.Apply(m.Apply(p)), p, 1e-6*(1+math.Abs(1/m.Det())))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlattenQuadEndpoints(t *testing.T) {
	pts := FlattenQuad(nil, Pt(0, 0), Pt(5, 10), Pt(10, 0), 0.1)
	if len(pts) == 0 {
		t.Fatal("no points")
	}
	last := pts[len(pts)-1]
	if !pointsClose(last, Pt(10, 0), 1e-9) {
		t.Fatalf("must end at p2, got %+v", last)
	}
	// Straight "curve" should need only one segment.
	straight := FlattenQuad(nil, Pt(0, 0), Pt(5, 0), Pt(10, 0), 0.1)
	if len(straight) != 1 {
		t.Fatalf("straight quad should be 1 segment, got %d", len(straight))
	}
}

func TestFlattenQuadAccuracy(t *testing.T) {
	p0, p1, p2 := Pt(0, 0), Pt(50, 100), Pt(100, 0)
	pts := FlattenQuad(nil, p0, p1, p2, 0.1)
	// Every flattened point must be close to some exact curve point.
	for _, fp := range pts {
		best := math.Inf(1)
		for i := 0; i <= 1000; i++ {
			tt := float64(i) / 1000
			a := Lerp(p0, p1, tt)
			b := Lerp(p1, p2, tt)
			d := Lerp(a, b, tt).Sub(fp).Len()
			if d < best {
				best = d
			}
		}
		if best > 0.5 {
			t.Fatalf("flattened point %v deviates %v from curve", fp, best)
		}
	}
}

func TestFlattenCubicEndpoints(t *testing.T) {
	pts := FlattenCubic(nil, Pt(0, 0), Pt(0, 10), Pt(10, 10), Pt(10, 0), 0.1)
	last := pts[len(pts)-1]
	if !pointsClose(last, Pt(10, 0), 1e-9) {
		t.Fatalf("must end at p3, got %+v", last)
	}
	if len(pts) < 4 {
		t.Fatalf("curved cubic should flatten to several segments, got %d", len(pts))
	}
}

func TestFlattenArcFullCircle(t *testing.T) {
	pts := FlattenArc(nil, Pt(0, 0), 10, 0, 2*math.Pi, false, 0.05)
	for _, p := range pts {
		if !almostEq2(p.Len(), 10, 1e-6) {
			t.Fatalf("arc point off circle: %v (r=%v)", p, p.Len())
		}
	}
	first, last := pts[0], pts[len(pts)-1]
	if !pointsClose(first, last, 1e-6) {
		t.Fatalf("full circle should close: %v vs %v", first, last)
	}
}

func almostEq2(a, b, eps float64) bool { return math.Abs(a-b) < eps }

func TestFlattenArcDirections(t *testing.T) {
	// Clockwise (canvas default, ccw=false) quarter arc from 0 to π/2.
	cw := FlattenArc(nil, Pt(0, 0), 1, 0, math.Pi/2, false, 0.01)
	if !pointsClose(cw[0], Pt(1, 0), 1e-9) {
		t.Fatalf("arc start: %v", cw[0])
	}
	if !pointsClose(cw[len(cw)-1], Pt(0, 1), 1e-9) {
		t.Fatalf("arc end: %v", cw[len(cw)-1])
	}
	// Counter-clockwise from 0 to π/2 should sweep the long way (3π/2).
	ccw := FlattenArc(nil, Pt(0, 0), 1, 0, math.Pi/2, true, 0.01)
	if len(ccw) < len(cw) {
		t.Fatal("ccw long-way arc should have more segments")
	}
}

func TestNormalizeSweep(t *testing.T) {
	if got := normalizeSweep(0, 2*math.Pi, false); !almostEq(got, 2*math.Pi) {
		t.Fatalf("full cw sweep: %v", got)
	}
	if got := normalizeSweep(0, -math.Pi/2, false); !almostEq(got, 3*math.Pi/2) {
		t.Fatalf("cw wrap: %v", got)
	}
	if got := normalizeSweep(0, math.Pi/2, true); !almostEq(got, -3*math.Pi/2) {
		t.Fatalf("ccw wrap: %v", got)
	}
	if got := normalizeSweep(0, -2*math.Pi, true); !almostEq(got, -2*math.Pi) {
		t.Fatalf("full ccw sweep: %v", got)
	}
}

func TestFlattenArcNegativeRadius(t *testing.T) {
	pts := FlattenArc(nil, Pt(5, 5), -3, 0, 1, false, 0.1)
	for _, p := range pts {
		if !pointsClose(p, Pt(5, 5), 1e-9) {
			t.Fatalf("negative radius should clamp to center: %v", p)
		}
	}
}

func BenchmarkFlattenCubic(b *testing.B) {
	var buf []Point
	for i := 0; i < b.N; i++ {
		buf = FlattenCubic(buf[:0], Pt(0, 0), Pt(30, 90), Pt(70, 90), Pt(100, 0), 0.25)
	}
}

func BenchmarkMatrixApply(b *testing.B) {
	m := Identity().Translate(3, 4).Rotate(0.5).Scale(2, 2)
	p := Pt(10, 20)
	for i := 0; i < b.N; i++ {
		p = m.Apply(p)
		if p.X > 1e9 {
			p = Pt(10, 20)
		}
	}
}
