package geom

import "math"

// FlattenQuad appends a polyline approximation of the quadratic Bézier
// curve (p0, p1, p2) to dst, excluding p0 and including p2. The tolerance
// tol is the maximum allowed deviation in user-space units; smaller values
// produce more segments.
func FlattenQuad(dst []Point, p0, p1, p2 Point, tol float64) []Point {
	n := quadSegments(p0, p1, p2, tol)
	for i := 1; i <= n; i++ {
		t := float64(i) / float64(n)
		a := Lerp(p0, p1, t)
		b := Lerp(p1, p2, t)
		dst = append(dst, Lerp(a, b, t))
	}
	return dst
}

// quadSegments estimates the number of line segments needed to keep the
// flattening error of a quadratic curve under tol.
func quadSegments(p0, p1, p2 Point, tol float64) int {
	// The max deviation of a quadratic from its chord is |d|/4 where d is
	// the distance from the control point to the chord midpoint direction.
	d := p1.Sub(Lerp(p0, p2, 0.5)).Len() / 4
	return segmentsForError(d, tol)
}

// FlattenCubic appends a polyline approximation of the cubic Bézier curve
// (p0, p1, p2, p3) to dst, excluding p0 and including p3.
func FlattenCubic(dst []Point, p0, p1, p2, p3 Point, tol float64) []Point {
	// Error bound via control-polygon deviation from the chord.
	d1 := p1.Sub(Lerp(p0, p3, 1.0/3)).Len()
	d2 := p2.Sub(Lerp(p0, p3, 2.0/3)).Len()
	n := segmentsForError(3*math.Max(d1, d2)/4, tol)
	for i := 1; i <= n; i++ {
		t := float64(i) / float64(n)
		a := Lerp(p0, p1, t)
		b := Lerp(p1, p2, t)
		c := Lerp(p2, p3, t)
		ab := Lerp(a, b, t)
		bc := Lerp(b, c, t)
		dst = append(dst, Lerp(ab, bc, t))
	}
	return dst
}

// segmentsForError converts a deviation estimate into a segment count,
// clamped to [1, 128].
func segmentsForError(dev, tol float64) int {
	if tol <= 0 {
		tol = 0.25
	}
	if dev <= tol {
		return 1
	}
	n := int(math.Ceil(math.Sqrt(dev / tol * 4)))
	if n < 1 {
		n = 1
	}
	if n > 128 {
		n = 128
	}
	return n
}

// FlattenArc appends a polyline approximation of a circular arc centered at
// c with the given radius from angle a0 to a1 (radians) to dst. If ccw is
// true the arc runs counter-clockwise. The first point of the arc IS
// appended, matching the Canvas arc() semantics where a line connects the
// current point to the arc start.
func FlattenArc(dst []Point, c Point, radius, a0, a1 float64, ccw bool, tol float64) []Point {
	if radius < 0 {
		radius = 0
	}
	sweep := normalizeSweep(a0, a1, ccw)
	// Segment count from sagitta error: err = r(1-cos(step/2)) <= tol.
	n := 4
	if radius > 0 {
		if tol <= 0 {
			tol = 0.25
		}
		maxStep := 2 * math.Acos(math.Max(0, 1-tol/radius))
		if maxStep > 0 {
			n = int(math.Ceil(math.Abs(sweep) / maxStep))
		}
	}
	if n < 2 {
		n = 2
	}
	if n > 256 {
		n = 256
	}
	for i := 0; i <= n; i++ {
		t := a0 + sweep*float64(i)/float64(n)
		s, co := math.Sincos(t)
		dst = append(dst, Point{c.X + radius*co, c.Y + radius*s})
	}
	return dst
}

// normalizeSweep returns the signed sweep angle from a0 to a1 honoring the
// Canvas arc direction rules: a full circle is produced when the angular
// distance meets or exceeds 2π, otherwise angles are normalized into a
// single revolution in the requested direction.
func normalizeSweep(a0, a1 float64, ccw bool) float64 {
	const tau = 2 * math.Pi
	d := a1 - a0
	if !ccw {
		if d >= tau {
			return tau
		}
		d = math.Mod(d, tau)
		if d < 0 {
			d += tau
		}
		return d
	}
	if d <= -tau {
		return -tau
	}
	d = math.Mod(d, tau)
	if d > 0 {
		d -= tau
	}
	return d
}
