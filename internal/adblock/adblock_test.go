package adblock

import (
	"testing"

	"canvassing/internal/blocklist"
)

func req(url, pageHost string, third bool) blocklist.Request {
	return blocklist.Request{
		URL: url, Type: blocklist.TypeScript,
		PageHost: pageHost, ThirdParty: third,
	}
}

func TestFirstPartyException(t *testing.T) {
	lists := blocklist.NewStandardLists(1)
	abp := NewAdblockPlus(lists)
	ubo := NewUBlockOrigin(lists)
	// Akamai's sensor URL matches an EasyList rule, but it is served
	// first-party — neither extension blocks it (footnote 5).
	r := req("https://bank.com/akam/13/abcd1234", "bank.com", false)
	if abp.BlockScript(r) || ubo.BlockScript(r) {
		t.Fatal("first-party loads must never be blocked")
	}
}

func TestThirdPartyTrackerBlocked(t *testing.T) {
	lists := blocklist.NewStandardLists(1)
	abp := NewAdblockPlus(lists)
	ubo := NewUBlockOrigin(lists)
	r := req("https://cdn.insurads.com/bootstrap.js", "news.com", true)
	if !abp.BlockScript(r) {
		t.Fatal("ABP should block insurads third-party")
	}
	if !ubo.BlockScript(r) {
		t.Fatal("uBO should block insurads third-party")
	}
}

func TestMgidDocumentRuleMissesScripts(t *testing.T) {
	lists := blocklist.NewStandardLists(1)
	abp := NewAdblockPlus(lists)
	// A.6: the only EasyList mgid rule is $document-scoped.
	r := req("https://mgid.com/uid/fp.js", "news.com", true)
	if abp.BlockScript(r) {
		t.Fatal("mgid fingerprinting script must slip through")
	}
}

func TestCDNExemptionDiffersBetweenExtensions(t *testing.T) {
	lists := blocklist.NewStandardLists(1)
	abp := NewAdblockPlus(lists)
	ubo := NewUBlockOrigin(lists)
	// fpnpmcdn has an EasyList rule; serve a copy via cloudfront with a
	// URL that still matches a pattern: craft a list hit via
	// aidata path on a CDN host. The aidata rule is a domain anchor so a
	// CDN URL does NOT match it — use the akamai path rule instead,
	// which is a plain pattern.
	r := req("https://d1234.cloudfront.net/akam/13/x", "shop.com", true)
	if abp.BlockScript(r) {
		t.Fatal("ABP exempts popular CDNs")
	}
	if !ubo.BlockScript(r) {
		t.Fatal("uBO applies rules to CDN hosts")
	}
}

func TestCNAMECloakLooksFirstParty(t *testing.T) {
	lists := blocklist.NewStandardLists(1)
	abp := NewAdblockPlus(lists)
	// The extension sees metrics.shop.com (the alias), same-site with the
	// page: first-party, never blocked — even though DNS points at a
	// tracker. This is the §5.2 CNAME-cloaking gap.
	r := req("https://metrics.shop.com/sdk.js", "shop.com", false)
	if abp.BlockScript(r) {
		t.Fatal("cloaked alias must look first-party to the extension")
	}
}

func TestNames(t *testing.T) {
	lists := blocklist.NewStandardLists(1)
	if NewAdblockPlus(lists).Name() != "Adblock Plus" {
		t.Fatal("abp name")
	}
	if NewUBlockOrigin(lists).Name() != "uBlock Origin" {
		t.Fatal("ubo name")
	}
}

func TestHostOf(t *testing.T) {
	if hostOf("https://a.b.c/x") != "a.b.c" {
		t.Fatal("hostOf")
	}
	if hostOf("garbage") != "" {
		t.Fatal("hostOf garbage")
	}
}
