// Package adblock implements the two ad-blocker extensions the paper
// re-crawled with (§5.2): Adblock Plus and uBlock Origin, both driven by
// EasyList rules. The interesting part is what they DON'T block:
//
//   - first-party requests (both extensions exempt same-site loads to
//     avoid breaking sites — the exception Akamai's /akam/ sensor and
//     every bundled library ride on);
//   - popular shared CDNs (Adblock Plus additionally avoids rules on
//     infrastructure CDNs);
//   - anything whose rule is mis-scoped (the $document mgid rule).
//
// CNAME-cloaked hosts are invisible to both: extensions see the alias
// URL, which carries the customer's domain and therefore looks
// first-party.
package adblock

import (
	"canvassing/internal/blocklist"
	"canvassing/internal/netsim"
)

// AdblockPlus models the ABP extension with EasyList installed.
type AdblockPlus struct {
	lists *blocklist.StandardLists
}

// NewAdblockPlus returns the extension using the given lists.
func NewAdblockPlus(lists *blocklist.StandardLists) *AdblockPlus {
	return &AdblockPlus{lists: lists}
}

// Name implements crawler.Extension.
func (a *AdblockPlus) Name() string { return "Adblock Plus" }

// BlockScript implements crawler.Extension.
func (a *AdblockPlus) BlockScript(req blocklist.Request) bool {
	if !req.ThirdParty {
		return false // first-party exception
	}
	host := hostOf(req.URL)
	if netsim.ServedFromPopularCDN(host) {
		return false // infrastructure CDNs are exempted to avoid breakage
	}
	return a.lists.EasyList.ShouldBlock(req)
}

// UBlockOrigin models the uBO extension with EasyList installed. uBO is
// slightly stricter: it applies rules to shared-CDN hosts too.
type UBlockOrigin struct {
	lists *blocklist.StandardLists
}

// NewUBlockOrigin returns the extension using the given lists.
func NewUBlockOrigin(lists *blocklist.StandardLists) *UBlockOrigin {
	return &UBlockOrigin{lists: lists}
}

// Name implements crawler.Extension.
func (u *UBlockOrigin) Name() string { return "uBlock Origin" }

// BlockScript implements crawler.Extension.
func (u *UBlockOrigin) BlockScript(req blocklist.Request) bool {
	if !req.ThirdParty {
		return false // first-party exception
	}
	return u.lists.EasyList.ShouldBlock(req)
}

// hostOf extracts the hostname from a URL string without failing.
func hostOf(rawURL string) string {
	u, err := netsim.ParseURL(rawURL)
	if err != nil {
		return ""
	}
	return u.Host
}
