// Package adblock implements the two ad-blocker extensions the paper
// re-crawled with (§5.2): Adblock Plus and uBlock Origin, both driven by
// EasyList rules. The interesting part is what they DON'T block:
//
//   - first-party requests (both extensions exempt same-site loads to
//     avoid breaking sites — the exception Akamai's /akam/ sensor and
//     every bundled library ride on);
//   - popular shared CDNs (Adblock Plus additionally avoids rules on
//     infrastructure CDNs);
//   - anything whose rule is mis-scoped (the $document mgid rule).
//
// CNAME-cloaked hosts are invisible to both: extensions see the alias
// URL, which carries the customer's domain and therefore looks
// first-party.
package adblock

import (
	"canvassing/internal/blocklist"
	"canvassing/internal/netsim"
)

// AdblockPlus models the ABP extension with EasyList installed.
type AdblockPlus struct {
	lists *blocklist.StandardLists
}

// NewAdblockPlus returns the extension using the given lists.
func NewAdblockPlus(lists *blocklist.StandardLists) *AdblockPlus {
	return &AdblockPlus{lists: lists}
}

// Name implements crawler.Extension.
func (a *AdblockPlus) Name() string { return "Adblock Plus" }

// ExplainBlock implements crawler.BlockExplainer: it names the list
// and the matching rule behind a BlockScript verdict.
func (a *AdblockPlus) ExplainBlock(req blocklist.Request) (list, rule string) {
	return explain(a.lists.EasyList, req)
}

// BlockScript implements crawler.Extension.
func (a *AdblockPlus) BlockScript(req blocklist.Request) bool {
	if !req.ThirdParty {
		return false // first-party exception
	}
	host := hostOf(req.URL)
	if netsim.ServedFromPopularCDN(host) {
		return false // infrastructure CDNs are exempted to avoid breakage
	}
	return a.lists.EasyList.ShouldBlock(req)
}

// UBlockOrigin models the uBO extension with EasyList installed. uBO is
// slightly stricter: it applies rules to shared-CDN hosts too.
type UBlockOrigin struct {
	lists *blocklist.StandardLists
}

// NewUBlockOrigin returns the extension using the given lists.
func NewUBlockOrigin(lists *blocklist.StandardLists) *UBlockOrigin {
	return &UBlockOrigin{lists: lists}
}

// Name implements crawler.Extension.
func (u *UBlockOrigin) Name() string { return "uBlock Origin" }

// BlockScript implements crawler.Extension.
func (u *UBlockOrigin) BlockScript(req blocklist.Request) bool {
	if !req.ThirdParty {
		return false // first-party exception
	}
	return u.lists.EasyList.ShouldBlock(req)
}

// ExplainBlock implements crawler.BlockExplainer.
func (u *UBlockOrigin) ExplainBlock(req blocklist.Request) (list, rule string) {
	return explain(u.lists.EasyList, req)
}

// explain names the block rule matching req on l (empty when none —
// callers only ask after a positive BlockScript, so that is rare).
func explain(l *blocklist.List, req blocklist.Request) (list, rule string) {
	if r := l.Match(req); r != nil {
		return l.Name, r.Raw
	}
	return l.Name, ""
}

// hostOf extracts the hostname from a URL string without failing.
func hostOf(rawURL string) string {
	u, err := netsim.ParseURL(rawURL)
	if err != nil {
		return ""
	}
	return u.Host
}
