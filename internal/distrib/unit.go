package distrib

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"canvassing/internal/checkpoint"
	"canvassing/internal/crawler"
	"canvassing/internal/machine"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/snapshot"
	"canvassing/internal/web"
)

// Env is everything a work-unit needs from its study that is not in
// the UnitSpec: the generated world and the condition's base crawl
// configuration. The caller (the root package's study glue, or a
// worker process that rebuilt the study from the spec) supplies it;
// distrib itself never constructs webs or extensions, which keeps the
// package below the study in the dependency order.
type Env struct {
	// Web is the generated world shared by every condition.
	Web *web.Web
	// Sites is the condition's FULL site frontier in crawl order; the
	// unit crawls Sites[Start:End].
	Sites []*web.Site
	// Config is the exact crawler configuration the single-process study
	// would use for this condition (profile, extension, consent, faults,
	// seed). RunUnit overrides the distribution-specific fields:
	// telemetry, snapshots, exemplar reservoir, commit cadence, resume
	// state, and the page-index offset.
	Config crawler.Config
}

// RunUnit executes one work-unit inside dir as a normal checkpointed
// crawl slice and, on completion, writes the partial bundle and
// removes the checkpoint sidecar (in that order — the sidecar's
// presence is what marks the partial unusable). A sidecar already in
// dir resumes the unit from its committed frontier; resumed reports
// that. stopAfter > 0 arms the checkpoint writer's interruption lever:
// the unit stops (exit for reassignment, interrupted == true) after
// that many checkpoint writes — the fault-injection hook the chaos
// tests pull.
func RunUnit(dir string, spec UnitSpec, env Env, stopAfter int) (interrupted, resumed bool, err error) {
	if err := spec.validate(); err != nil {
		return false, false, err
	}
	if len(env.Sites) != spec.Total {
		return false, false, fmt.Errorf("distrib: unit %s expects a %d-site frontier, env holds %d", spec.ID, spec.Total, len(env.Sites))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return false, false, fmt.Errorf("distrib: %w", err)
	}

	tel := obs.NewTelemetry()
	cfg := env.Config
	cfg.Telemetry = tel
	cfg.Workers = spec.Study.Workers
	cfg.Seed = spec.Study.Seed
	cfg.Condition = spec.Condition
	cfg.PageIndexOffset = spec.Start
	if cfg.Profile == nil {
		cfg.Profile = machine.Intel()
	}

	var visits *tracez.Reservoir
	cfg.Visits = nil
	if spec.Study.TraceVisits {
		// Same construction as the study's reservoir, so per-unit
		// selection uses the same sampling hash.
		visits = tracez.NewReservoir(spec.Study.Seed, 0, 0)
		cfg.Visits = visits
	}
	var snaps *snapshot.Store
	cfg.Snapshots = nil
	if spec.Study.SnapshotReuse {
		snaps = snapshot.New()
	}

	ckpt := checkpoint.NewWriter(dir, spec.Study.CheckpointEvery)
	ckpt.StopAfter = stopAfter
	if err := ckpt.SetOpts(spec); err != nil {
		return false, false, fmt.Errorf("distrib: %w", err)
	}

	var rs *crawler.ResumeState
	cp, lerr := checkpoint.Load(dir)
	switch {
	case lerr == nil:
		resumed = true
		var ckptSpec UnitSpec
		if merr := json.Unmarshal(cp.Opts, &ckptSpec); merr != nil {
			return false, true, fmt.Errorf("distrib: %s checkpoint options: %w", dir, merr)
		}
		if ckptSpec != spec {
			return false, true, fmt.Errorf("distrib: %s holds a checkpoint for a different unit spec", dir)
		}
		tel.Metrics.Restore(cp.Metrics)
		tel.Events.Restore(cp.Events, cp.EventsSeq, cp.EventsDropped)
		if cp.Faults != nil && cfg.Faults != nil {
			// Restore the fault cursor so forced plans survive the resume;
			// seeded plans are pure functions of (seed, site) either way.
			cfg.Faults = netsim.RestoreFaultModel(*cp.Faults)
		}
		if snaps != nil {
			if !cp.HasSnapshots {
				return false, true, fmt.Errorf("distrib: unit %s checkpoint has no snapshot store but the study reuses snapshots", spec.ID)
			}
			if snaps, err = checkpoint.LoadSnapshots(dir); err != nil {
				return false, true, err
			}
		}
		if cs := cp.Crawl(spec.Condition); cs != nil {
			rs = &crawler.ResumeState{Pages: cs.Pages, ParseSeen: cs.ParseSeen}
		}
		ckpt.Adopt(cp)
	case errors.Is(lerr, os.ErrNotExist):
		// Fresh unit.
	default:
		return false, false, lerr
	}
	if snaps != nil {
		cfg.Snapshots = snaps
	}
	ckpt.Metrics = tel.Metrics
	ckpt.Events = tel.Events
	ckpt.Faults = cfg.Faults
	ckpt.Snapshots = snaps
	cfg.CommitEvery = ckpt.Every()
	cfg.Resume = rs

	ext := ""
	if cfg.Extension != nil {
		ext = cfg.Extension.Name()
	}
	hook := ckpt.Hook(cfg.Profile.Name, ext)
	// The crawl hands its parse-cache cursor only to OnCommit; capture
	// the last committed cursor so the partial can carry it to the merge.
	var finalSeen []uint64
	cfg.OnCommit = func(st crawler.CommitState) bool {
		stop := hook(st)
		if !stop {
			finalSeen = append(finalSeen[:0], st.ParseSeen...)
		}
		return stop
	}

	res := crawler.Crawl(env.Web, env.Sites[spec.Start:spec.End], cfg)
	if res.Interrupted {
		return true, resumed, nil
	}
	if dropped := tel.Events.Dropped(); dropped != 0 {
		return false, resumed, fmt.Errorf("distrib: unit %s overflowed its event ring (%d dropped); a lossy partial cannot merge deterministically", spec.ID, dropped)
	}
	p := &Partial{
		Spec:      spec,
		Metrics:   tel.Metrics.Snapshot(),
		Events:    tel.Events.Events(),
		Pages:     res.Pages,
		ParseSeen: finalSeen,
		Machine:   res.Machine,
		Extension: res.Extension,
	}
	if err := WritePartial(dir, p); err != nil {
		return false, resumed, err
	}
	if visits != nil {
		if err := tracez.WriteExemplars(filepath.Join(dir, tracez.ExemplarsFile), visits, nil); err != nil {
			return false, resumed, fmt.Errorf("distrib: unit %s: %w", spec.ID, err)
		}
	}
	if snaps != nil {
		if err := snaps.Save(filepath.Join(dir, checkpoint.SnapshotDirName)); err != nil {
			return false, resumed, err
		}
	}
	// Only now is the partial complete: drop the sidecar so merges stop
	// refusing the directory. A crash between WritePartial and this
	// remove re-runs a no-op resume (full prefix) and rewrites the same
	// bytes — completion is idempotent.
	if err := os.Remove(filepath.Join(dir, checkpoint.FileName)); err != nil {
		return false, resumed, fmt.Errorf("distrib: %w", err)
	}
	return false, resumed, nil
}
