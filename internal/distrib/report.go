package distrib

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// RenderLedger formats the coordinator's end-of-run summary: the unit
// ledger in partition order followed by per-worker wall/retry stats.
// Output is a pure function of the records, so the golden-file test
// pins it exactly (tests construct records with fixed wall times).
func RenderLedger(records []UnitRecord) string {
	var b strings.Builder
	done, failed, retries, resumed := 0, 0, 0, 0
	for _, r := range records {
		switch r.Status {
		case UnitDone:
			done++
		case UnitFailed:
			failed++
		}
		if r.Attempts > 1 {
			retries += r.Attempts - 1
		}
		if r.Resumed {
			resumed++
		}
	}
	fmt.Fprintf(&b, "distributed run: %d units, %d done, %d failed, %d retries, %d resumed\n",
		len(records), done, failed, retries, resumed)
	b.WriteString("\nunit ledger:\n")
	fmt.Fprintf(&b, "  %-12s %-9s %-14s %-8s %-8s %8s %10s\n",
		"unit", "cond", "range", "status", "worker", "attempts", "wall")
	for _, r := range records {
		worker := r.Worker
		if worker == "" {
			worker = "-"
		}
		fmt.Fprintf(&b, "  %-12s %-9s %-14s %-8s %-8s %8d %10s\n",
			r.ID, r.Condition, fmt.Sprintf("[%d,%d)", r.Start, r.End),
			r.Status, worker, r.Attempts, renderWall(r.WallMS))
		for _, f := range r.Failures {
			fmt.Fprintf(&b, "    ! %s\n", f)
		}
	}

	type workerStat struct {
		units   int
		retries int
		wallMS  int64
	}
	stats := map[string]*workerStat{}
	var names []string
	for _, r := range records {
		if r.Worker == "" {
			continue
		}
		ws := stats[r.Worker]
		if ws == nil {
			ws = &workerStat{}
			stats[r.Worker] = ws
			names = append(names, r.Worker)
		}
		ws.units++
		if r.Attempts > 1 {
			ws.retries += r.Attempts - 1
		}
		ws.wallMS += r.WallMS
	}
	sort.Strings(names)
	if len(names) > 0 {
		b.WriteString("\nper-worker:\n")
		for _, name := range names {
			ws := stats[name]
			fmt.Fprintf(&b, "  %-8s units=%-3d retries=%-3d wall=%s\n",
				name, ws.units, ws.retries, renderWall(ws.wallMS))
		}
	}
	return b.String()
}

// renderWall formats cumulative milliseconds with a stable unit.
func renderWall(ms int64) string {
	d := time.Duration(ms) * time.Millisecond
	return d.String()
}
