package distrib

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"canvassing/internal/bundle"
	"canvassing/internal/checkpoint"
	"canvassing/internal/crawler"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
)

// mkPartial builds one synthetic completed unit: `forced` parse misses
// that re-occur inside the unit (cache-invisible to other units) plus
// one first-seen miss per hash in `seen`.
func mkPartial(cond string, k, start, end, total int, hits, forced int64, seen []uint64) *Partial {
	spec := UnitSpec{
		Schema: SchemaVersion, ID: fmt.Sprintf("%s-%02d", cond, k),
		Condition: cond, Start: start, End: end, Total: total,
		Study: testStudy(),
	}
	reg := obs.NewRegistry()
	misses := forced + int64(len(seen))
	if hits > 0 {
		reg.Counter(parseCacheHits).Add(hits)
	}
	if misses > 0 {
		reg.Counter(parseCacheMisses).Add(misses)
	}
	reg.Counter("crawl.pages").Add(int64(end - start))
	h := reg.Histogram("crawl.scripts.per_page", []float64{1, 4, 16})
	for i := start; i < end; i++ {
		h.Observe(float64(i % 5))
	}
	pages := make([]*crawler.PageResult, end-start)
	events := make([]event.Event, 0, end-start)
	for i := range pages {
		pages[i] = &crawler.PageResult{Domain: fmt.Sprintf("site-%04d.example", start+i)}
		events = append(events, event.Event{
			Kind: event.DetectClassify, Crawl: cond,
			Site: pages[i].Domain, Verdict: "fingerprintable",
		})
	}
	return &Partial{
		Spec: spec, Metrics: reg.Snapshot(), Events: events, Pages: pages,
		ParseSeen: seen, Machine: "intel-chrome", Extension: "",
	}
}

func TestMergeCrawlRecombines(t *testing.T) {
	// Three units of a 10-page frontier. Hash 100 is first seen by unit
	// 0 and again by units 1 and 2 — in the unified stream those two
	// are hits, not misses; hash 200 is unit 1's own discovery.
	parts := []*Partial{
		mkPartial("control", 0, 0, 4, 10, 3, 1, []uint64{100}),
		mkPartial("control", 1, 4, 7, 10, 2, 0, []uint64{100, 200}),
		mkPartial("control", 2, 7, 10, 10, 0, 2, []uint64{100}),
	}
	// Merge must not depend on input order: feed it scrambled.
	m, err := MergeCrawl([]*Partial{parts[2], parts[0], parts[1]})
	if err != nil {
		t.Fatal(err)
	}
	if m.Condition != "control" || m.Machine != "intel-chrome" {
		t.Fatalf("merged identity wrong: %+v", m)
	}
	if len(m.Pages) != 10 || len(m.Events) != 10 {
		t.Fatalf("merged %d pages, %d events; want 10 each", len(m.Pages), len(m.Events))
	}
	for i, p := range m.Pages {
		if want := fmt.Sprintf("site-%04d.example", i); p.Domain != want {
			t.Fatalf("page %d is %s, want %s — range order lost", i, p.Domain, want)
		}
	}
	// Per-unit: hits 3+2+0=5, misses 2+2+3=7. Unified stream: misses =
	// forced(1+0+2) + distinct first-seen{100,200} = 5; hits absorb the
	// difference: 5+7-5 = 7. Totals conserved.
	if got := m.Metrics.Counters[parseCacheMisses]; got != 5 {
		t.Fatalf("merged misses = %d, want 5", got)
	}
	if got := m.Metrics.Counters[parseCacheHits]; got != 7 {
		t.Fatalf("merged hits = %d, want 7", got)
	}
	if got := m.Metrics.Counters["crawl.pages"]; got != 10 {
		t.Fatalf("merged crawl.pages = %d, want 10", got)
	}
	hs, ok := m.Metrics.Histograms["crawl.scripts.per_page"]
	if !ok {
		t.Fatal("merged snapshot lost the histogram")
	}
	var histCount int64
	for _, b := range hs.Buckets {
		histCount += b.Count
	}
	if histCount != 10 {
		t.Fatalf("merged histogram holds %d observations, want 10", histCount)
	}
}

func TestMergeCrawlRefusesBadTilings(t *testing.T) {
	base := func() []*Partial {
		return []*Partial{
			mkPartial("control", 0, 0, 5, 10, 0, 0, nil),
			mkPartial("control", 1, 5, 10, 10, 0, 0, nil),
		}
	}
	cases := map[string]func() []*Partial{
		"zero partials": func() []*Partial { return nil },
		"gap": func() []*Partial {
			p := base()
			return p[:1]
		},
		"interior gap": func() []*Partial {
			p := base()
			p[1].Spec.Start, p[1].Spec.End = 6, 10
			p[1].Pages = p[1].Pages[:4]
			return p
		},
		"overlap": func() []*Partial {
			p := base()
			p[1].Spec.Start = 4
			p[1].Pages = append([]*crawler.PageResult{{}}, p[1].Pages...)
			return p
		},
		"duplicate unit": func() []*Partial {
			p := base()
			return append(p, p[0])
		},
		"mixed conditions": func() []*Partial {
			p := base()
			p[1].Spec.Condition = "abp"
			return p
		},
		"mixed totals": func() []*Partial {
			p := base()
			p[1].Spec.Total = 12
			return p
		},
		"mixed study specs": func() []*Partial {
			p := base()
			p[1].Spec.Study.Seed++
			return p
		},
		"mixed machines": func() []*Partial {
			p := base()
			p[1].Machine = "apple-m1"
			return p
		},
		"page count mismatch": func() []*Partial {
			p := base()
			p[1].Pages = p[1].Pages[:3]
			return p
		},
		"cursor longer than misses": func() []*Partial {
			p := base()
			p[1].ParseSeen = []uint64{1, 2, 3}
			return p
		},
		"histogram layout mismatch": func() []*Partial {
			p := base()
			reg := obs.NewRegistry()
			reg.Histogram("crawl.scripts.per_page", []float64{2, 8}).Observe(1)
			p[1].Metrics = reg.Snapshot()
			return p
		},
	}
	for name, build := range cases {
		if _, err := MergeCrawl(build()); err == nil {
			t.Errorf("%s: merge accepted a bad tiling", name)
		}
	}
	if _, err := MergeCrawl(base()); err != nil {
		t.Fatalf("clean tiling refused: %v", err)
	}
}

// The crash-tolerance contract: a unit directory still holding its
// checkpoint sidecar is a half-finished attempt, and the merge path
// must refuse it via the bundle layer's ErrCheckpointed guard.
func TestLoadPartialRefusesCheckpointedUnit(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "unit")
	p := mkPartial("control", 0, 0, 5, 5, 0, 0, nil)
	if err := WriteUnitSpec(dir, p.Spec); err != nil {
		t.Fatal(err)
	}
	if err := WritePartial(dir, p); err != nil {
		t.Fatal(err)
	}

	// Complete partial loads fine and survives a write/load roundtrip.
	got, err := LoadPartial(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Spec != p.Spec || len(got.Pages) != 5 || len(got.Events) != 5 || got.Machine != p.Machine {
		t.Fatalf("roundtrip changed the partial: %+v", got)
	}
	if _, err := MergeCrawl([]*Partial{got}); err != nil {
		t.Fatalf("roundtripped partial does not merge: %v", err)
	}

	// Drop a sidecar next to it: the same directory must now refuse.
	if err := os.WriteFile(filepath.Join(dir, checkpoint.FileName), []byte("{}"), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = LoadPartial(dir)
	if !errors.Is(err, bundle.ErrCheckpointed) {
		t.Fatalf("sidecar-holding unit loaded (err=%v), want ErrCheckpointed", err)
	}
}
