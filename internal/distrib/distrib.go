// Package distrib partitions a study's crawl across worker processes
// and deterministically recombines the partial results — the
// coordinator/worker split ROADMAP item 2 names, built on the
// primitives PRs 4–7 landed: the crawler's ordered-commit pipeline,
// the checkpoint sidecar, the content-addressed snapshot store, and
// the byte-stable bundle discipline.
//
// The shape of a distributed study:
//
//   - the coordinator partitions each crawl condition's site frontier
//     into contiguous work-units (Partition) and records them in a
//     file-based ledger (Ledger);
//   - N workers each run their unit as a normal checkpointed crawl
//     slice (RunUnit) and emit a partial bundle + snapshot delta
//     (WritePartial) into the unit directory;
//   - a deterministic merge (MergeCrawl) recombines the partials of
//     one condition: pages concatenated in range order, events
//     re-sequenced by page ordinal, counters summed with the
//     parse-cache first-seen correction, histograms added bucket-wise,
//     snapshot blobs deduped by content hash, and trace exemplar
//     reservoirs re-selected from the union.
//
// Partition-invariance is the package's contract, extending the
// width-invariance the commit-order rules already guarantee: the
// merged study's manifest, events.jsonl, report, and deterministic
// metrics projection are byte-identical to the single-process run at
// any partition count — TestDistribPartitionOracle enforces it, clean
// and fault-injected, including a kill-and-resume worker.
//
// Crash tolerance rides on the checkpoint sidecar: a unit's directory
// holds checkpoint.json while the unit runs, a dead worker's unit is
// reassigned and resumed from that sidecar, and the sidecar is removed
// only after the partial is fully written — so the merge's use of
// bundle.Load refuses half-finished partials via the existing
// ErrCheckpointed guard. Transport is local-process spawn with the
// file-based unit ledger; no network is involved.
package distrib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// SchemaVersion gates the unit.json / pages.json / ledger.json wire
// formats.
const SchemaVersion = 1

// Well-known file names inside a distributed run directory.
const (
	// UnitSpecFile describes one work-unit, written into its unit
	// directory at partition time so process workers are self-contained.
	UnitSpecFile = "unit.json"
	// PagesFile carries a unit's page results and parse-cache cursor
	// next to its partial bundle.
	PagesFile = "pages.json"
	// LedgerFile is the coordinator's unit ledger.
	LedgerFile = "ledger.json"
)

// StudySpec is the run-shape a work-unit needs to reproduce its slice
// of the study exactly: the same seed, scale, and crawl knobs the
// coordinator's single-process equivalent would use. It travels in
// unit.json, so a worker process rebuilds the same web, lists, and
// fault plans from it alone.
type StudySpec struct {
	Seed  uint64  `json:"seed"`
	Scale float64 `json:"scale"`
	// Workers is the per-unit crawler pool width (<=0 selects the
	// crawler default). Width does not affect bundle bytes — that is
	// the width-invariance the partition oracle builds on.
	Workers int `json:"workers"`
	// FaultRate / Retries / VisitTimeout mirror canvassing.Options; the
	// fault model is a pure function of (seed, rate), so every unit
	// regenerates identical per-site plans.
	FaultRate    float64       `json:"fault_rate,omitempty"`
	Retries      int           `json:"retries,omitempty"`
	VisitTimeout time.Duration `json:"visit_timeout,omitempty"`
	// SnapshotReuse gives each unit a private content-addressed body
	// store whose delta is merged back by content hash.
	SnapshotReuse bool `json:"snapshot_reuse,omitempty"`
	// TraceVisits captures per-visit exemplars into a per-unit
	// reservoir; the merge re-selects from the union of the partial
	// reservoirs.
	TraceVisits bool `json:"trace_visits,omitempty"`
	// CheckpointEvery is the unit-level checkpoint cadence in committed
	// pages (<=0 selects the checkpoint default).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
	// Interact plants the interaction-gated vendor deployments in the
	// worker's regenerated web. The distributable load-time crawls
	// never drive them, but the pages must carry the same script tags
	// as the coordinator's web or the partials diverge.
	Interact bool `json:"interact,omitempty"`
}

// UnitSpec is one work-unit: a contiguous range [Start, End) of one
// condition's site frontier (in crawl order), plus the study shape.
type UnitSpec struct {
	Schema int    `json:"schema"`
	ID     string `json:"id"`
	// Condition is the crawl condition this unit belongs to
	// ("control", "abp", "ubo", "m1").
	Condition string `json:"condition"`
	// Start and End bound the unit's half-open page range within the
	// condition's frontier; Total is the frontier length.
	Start int `json:"start"`
	End   int `json:"end"`
	Total int `json:"total"`
	// Study is the run shape shared by every unit of the study.
	Study StudySpec `json:"study"`
}

// Pages returns the unit's page count.
func (u UnitSpec) Pages() int { return u.End - u.Start }

// Partition splits each condition's frontier of `total` sites into
// `parts` contiguous units of near-equal size (sizes differ by at most
// one; leading units take the remainder). The split is a pure function
// of (total, parts): dispatch order may be shuffled, but the ranges —
// and therefore the merged bytes — never depend on scheduling. A parts
// value above total collapses to total units; below one, to one.
func Partition(conditions []string, total, parts int, study StudySpec) []UnitSpec {
	if parts < 1 {
		parts = 1
	}
	if parts > total && total > 0 {
		parts = total
	}
	var units []UnitSpec
	for _, cond := range conditions {
		base, rem := 0, 0
		if parts > 0 {
			base, rem = total/parts, total%parts
		}
		start := 0
		for k := 0; k < parts; k++ {
			n := base
			if k < rem {
				n++
			}
			units = append(units, UnitSpec{
				Schema:    SchemaVersion,
				ID:        fmt.Sprintf("%s-%02d", cond, k),
				Condition: cond,
				Start:     start,
				End:       start + n,
				Total:     total,
				Study:     study,
			})
			start += n
		}
	}
	return units
}

// WriteUnitSpec writes spec as unit.json under dir, creating dir.
func WriteUnitSpec(dir string, spec UnitSpec) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	data, err := json.MarshalIndent(spec, "", "  ")
	if err != nil {
		return fmt.Errorf("distrib: unit spec: %w", err)
	}
	return atomicWrite(filepath.Join(dir, UnitSpecFile), append(data, '\n'))
}

// ReadUnitSpec reads and validates dir's unit.json.
func ReadUnitSpec(dir string) (UnitSpec, error) {
	var spec UnitSpec
	data, err := os.ReadFile(filepath.Join(dir, UnitSpecFile))
	if err != nil {
		return spec, fmt.Errorf("distrib: %w", err)
	}
	if err := json.Unmarshal(data, &spec); err != nil {
		return spec, fmt.Errorf("distrib: unit spec: %w", err)
	}
	if spec.Schema > SchemaVersion {
		return spec, fmt.Errorf("distrib: unit spec schema v%d is newer than supported v%d", spec.Schema, SchemaVersion)
	}
	if err := spec.validate(); err != nil {
		return spec, err
	}
	return spec, nil
}

// validate checks a spec's internal consistency.
func (u UnitSpec) validate() error {
	switch {
	case u.ID == "":
		return fmt.Errorf("distrib: unit without id")
	case u.Condition == "":
		return fmt.Errorf("distrib: unit %s without condition", u.ID)
	case u.Start < 0 || u.End < u.Start || u.End > u.Total:
		return fmt.Errorf("distrib: unit %s has bad range [%d,%d) of %d", u.ID, u.Start, u.End, u.Total)
	}
	return nil
}

// atomicWrite writes data to path via a same-directory temp file and
// rename, so concurrent readers never see a torn file.
func atomicWrite(path string, data []byte) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	name := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(name)
		return fmt.Errorf("distrib: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(name)
		return fmt.Errorf("distrib: %w", err)
	}
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return fmt.Errorf("distrib: %w", err)
	}
	return nil
}
