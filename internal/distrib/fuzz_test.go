package distrib

import (
	"fmt"
	"sort"
	"testing"
)

// FuzzMergePartialBundles throws corrupted partial sets at MergeCrawl —
// truncated, reordered, duplicated, condition-swapped, total-skewed,
// cursor-corrupted, or dropped units — and holds the merge to its
// contract: it either errors cleanly (no panic) or the accepted set
// provably tiled the frontier exactly, with page order and counter
// conservation intact. A silent partial merge is the failure mode this
// fuzzer exists to rule out.
//
// The input is an op stream over a canonical 4-unit tiling of a
// 40-page frontier: byte pairs (unit, mutation) select a unit and
// corrupt its copy before it joins the merge input.
func FuzzMergePartialBundles(f *testing.F) {
	f.Add([]byte{})                       // empty input → canonical tiling
	f.Add([]byte{0, 0, 1, 0, 2, 0, 3, 0}) // clean, in order
	f.Add([]byte{3, 0, 1, 0, 0, 0, 2, 0}) // clean, reordered
	f.Add([]byte{0, 0, 1, 0, 1, 0, 2, 0}) // duplicated unit
	f.Add([]byte{0, 0, 2, 0, 3, 0})       // missing unit
	f.Add([]byte{0, 0, 1, 1, 2, 0, 3, 0}) // shifted start (overlap)
	f.Add([]byte{0, 0, 1, 2, 2, 0, 3, 0}) // truncated tail (gap)
	f.Add([]byte{0, 0, 1, 3, 2, 0, 3, 0}) // page-count mismatch
	f.Add([]byte{0, 4, 1, 0, 2, 0, 3, 0}) // condition swap
	f.Add([]byte{0, 5, 1, 5, 2, 5, 3, 5}) // skewed totals, consistently
	f.Add([]byte{0, 0, 1, 6, 2, 0, 3, 0}) // corrupted parse cursor
	f.Add([]byte{0, 7, 1, 0, 2, 0, 3, 0}) // dropped op
	f.Fuzz(func(t *testing.T, ops []byte) {
		const total = 40
		base := []*Partial{
			mkPartial("control", 0, 0, 10, total, 2, 1, []uint64{1}),
			mkPartial("control", 1, 10, 20, total, 0, 0, []uint64{1, 2}),
			mkPartial("control", 2, 20, 30, total, 1, 0, []uint64{2}),
			mkPartial("control", 3, 30, 40, total, 0, 1, nil),
		}
		var sel []*Partial
		if len(ops) == 0 {
			sel = base
		}
		for i := 0; i+1 < len(ops); i += 2 {
			cp := *base[int(ops[i])%len(base)]
			switch ops[i+1] % 8 {
			case 0:
				// As-is.
			case 1:
				// Shift the range forward one page, keeping the partial
				// internally consistent — a sneaky overlap/gap.
				if cp.Spec.Start+1 <= cp.Spec.End {
					cp.Spec.Start++
					cp.Pages = cp.Pages[1:]
				}
			case 2:
				// Truncate the tail consistently — a sneaky gap.
				if cp.Spec.End-1 >= cp.Spec.Start {
					cp.Spec.End--
					cp.Pages = cp.Pages[:len(cp.Pages)-1]
				}
			case 3:
				// Drop pages without touching the spec: blunt truncation.
				if len(cp.Pages) > 0 {
					cp.Pages = cp.Pages[:len(cp.Pages)-1]
				}
			case 4:
				cp.Spec.Condition = "abp"
			case 5:
				cp.Spec.Total += 10
			case 6:
				// A first-seen cursor longer than the unit's miss count is
				// impossible output; the merge must refuse it.
				cp.ParseSeen = []uint64{9, 8, 7, 6, 5, 4, 3, 2, 1}
			case 7:
				continue // dropped unit
			}
			sel = append(sel, &cp)
		}

		m, err := MergeCrawl(sel)
		if err != nil {
			if m != nil {
				t.Fatal("merge returned both a result and an error")
			}
			return
		}
		// The merge accepted: the selected specs must tile [0,total')
		// exactly — recomputed here independently of merge.go's walk.
		specs := make([]UnitSpec, len(sel))
		for i, p := range sel {
			specs[i] = p.Spec
		}
		sort.Slice(specs, func(i, j int) bool { return specs[i].Start < specs[j].Start })
		next := 0
		var sumHM int64
		for i, s := range specs {
			if s.Condition != specs[0].Condition || s.Total != specs[0].Total || s.Start != next {
				t.Fatalf("merge accepted a non-tiling: spec %d = %+v (next=%d)", i, s, next)
			}
			next = s.End
		}
		if next != specs[0].Total {
			t.Fatalf("merge accepted coverage ending at %d of %d", next, specs[0].Total)
		}
		for _, p := range sel {
			if len(p.Pages) != p.Spec.Pages() {
				t.Fatalf("merge accepted unit %s with %d pages for range [%d,%d)",
					p.Spec.ID, len(p.Pages), p.Spec.Start, p.Spec.End)
			}
			sumHM += p.Metrics.Counters[parseCacheHits] + p.Metrics.Counters[parseCacheMisses]
		}
		if len(m.Pages) != specs[0].Total {
			t.Fatalf("merged %d pages of %d", len(m.Pages), specs[0].Total)
		}
		for i, p := range m.Pages {
			if want := fmt.Sprintf("site-%04d.example", i); p.Domain != want {
				t.Fatalf("merged page %d is %s, want %s — range order lost", i, p.Domain, want)
			}
		}
		if got := m.Metrics.Counters[parseCacheHits] + m.Metrics.Counters[parseCacheMisses]; got != sumHM {
			t.Fatalf("parse-cache totals not conserved: merged %d, parts %d", got, sumHM)
		}
	})
}
