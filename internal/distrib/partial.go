package distrib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"

	"canvassing/internal/bundle"
	"canvassing/internal/crawler"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/snapshot"
)

// Partial is one work-unit's completed output: a partial bundle
// (manifest, metrics snapshot, events) plus the crawl payload the
// merge needs (pages, parse-cache cursor) and the optional sidecars
// (exemplar reservoir view, snapshot-store delta).
type Partial struct {
	Dir      string
	Spec     UnitSpec
	Manifest bundle.Manifest
	// Metrics is the unit registry's snapshot: counters and histograms
	// covering exactly the unit's pages.
	Metrics obs.Snapshot
	// Events are the unit's evidence events in commit order. Seq is
	// unit-local; the merge re-records them, which re-stamps Seq.
	Events []event.Event
	// Pages are the unit's page results, Pages[i] being global page
	// Spec.Start+i of the condition's frontier.
	Pages []*crawler.PageResult
	// ParseSeen is the unit's parse-cache first-seen cursor (script-body
	// hashes in first-seen page order), from which the merge reconstructs
	// the single-process hit/miss totals.
	ParseSeen []uint64
	// Machine and Extension identify the profile the unit crawled on.
	Machine   string
	Extension string
	// Exemplars is the unit reservoir's per-condition view (nil unless
	// the study traces visits).
	Exemplars []tracez.CondExemplars
	// Snapshots is the unit's content-addressed store delta (nil unless
	// the study reuses snapshots).
	Snapshots *snapshot.Store
}

// unitPages is the pages.json wire form.
type unitPages struct {
	Schema    int                   `json:"schema"`
	Unit      string                `json:"unit"`
	Machine   string                `json:"machine"`
	Extension string                `json:"extension,omitempty"`
	ParseSeen []uint64              `json:"parse_seen,omitempty"`
	Pages     []*crawler.PageResult `json:"pages"`
}

// WritePartial writes p's bundle files into dir: manifest.json,
// metrics.json, events.jsonl, and pages.json. Exemplar and snapshot
// sidecars are written by the unit runner (they have their own
// writers); the checkpoint sidecar, if any, must be removed by the
// caller AFTER this returns — its presence is what marks the partial
// half-finished.
func WritePartial(dir string, p *Partial) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("distrib: %w", err)
	}
	if got, want := len(p.Pages), p.Spec.Pages(); got != want {
		return fmt.Errorf("distrib: unit %s partial has %d pages, range holds %d", p.Spec.ID, got, want)
	}
	m := bundle.Manifest{
		BundleSchema:  bundle.SchemaVersion,
		EventSchema:   event.SchemaVersion,
		GoVersion:     runtime.Version(),
		Seed:          p.Spec.Study.Seed,
		Scale:         p.Spec.Study.Scale,
		Workers:       p.Spec.Study.Workers,
		Conditions:    []string{p.Spec.Condition},
		Events:        len(p.Events),
		EventsTotal:   uint64(len(p.Events)),
		EventsDropped: 0,
		Notes:         fmt.Sprintf("distrib unit %s: %s[%d,%d) of %d", p.Spec.ID, p.Spec.Condition, p.Spec.Start, p.Spec.End, p.Spec.Total),
	}
	mdata, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("distrib: manifest: %w", err)
	}
	if err := atomicWrite(filepath.Join(dir, bundle.ManifestFile), append(mdata, '\n')); err != nil {
		return err
	}
	xdata, err := json.MarshalIndent(p.Metrics, "", "  ")
	if err != nil {
		return fmt.Errorf("distrib: metrics: %w", err)
	}
	if err := atomicWrite(filepath.Join(dir, bundle.MetricsFile), append(xdata, '\n')); err != nil {
		return err
	}
	var events []byte
	for i := range p.Events {
		line, err := json.Marshal(p.Events[i])
		if err != nil {
			return fmt.Errorf("distrib: events: %w", err)
		}
		events = append(events, line...)
		events = append(events, '\n')
	}
	if err := atomicWrite(filepath.Join(dir, bundle.EventsFile), events); err != nil {
		return err
	}
	pg := unitPages{
		Schema:    SchemaVersion,
		Unit:      p.Spec.ID,
		Machine:   p.Machine,
		Extension: p.Extension,
		ParseSeen: p.ParseSeen,
		Pages:     p.Pages,
	}
	pdata, err := json.MarshalIndent(pg, "", "  ")
	if err != nil {
		return fmt.Errorf("distrib: pages: %w", err)
	}
	return atomicWrite(filepath.Join(dir, PagesFile), append(pdata, '\n'))
}

// LoadPartial loads and validates one completed unit directory. A
// directory still holding a checkpoint sidecar is refused via
// bundle.ErrCheckpointed — that unit is half-finished; resume it, do
// not merge it.
func LoadPartial(dir string) (*Partial, error) {
	spec, err := ReadUnitSpec(dir)
	if err != nil {
		return nil, err
	}
	b, err := bundle.Load(dir)
	if err != nil {
		return nil, fmt.Errorf("distrib: unit %s: %w", spec.ID, err)
	}
	p := &Partial{Dir: dir, Spec: spec, Manifest: b.Manifest, Metrics: b.Metrics, Events: b.Events}
	switch {
	case b.Manifest.EventsDropped != 0:
		return nil, fmt.Errorf("distrib: unit %s dropped %d events; its partial is lossy and cannot merge deterministically", spec.ID, b.Manifest.EventsDropped)
	case b.Manifest.Events != len(b.Events):
		return nil, fmt.Errorf("distrib: unit %s manifest counts %d events, log holds %d", spec.ID, b.Manifest.Events, len(b.Events))
	case b.Manifest.Seed != spec.Study.Seed || b.Manifest.Scale != spec.Study.Scale:
		return nil, fmt.Errorf("distrib: unit %s manifest (seed %d, scale %g) does not match its spec (seed %d, scale %g)",
			spec.ID, b.Manifest.Seed, b.Manifest.Scale, spec.Study.Seed, spec.Study.Scale)
	}
	for i := range p.Events {
		if p.Events[i].Crawl != "" && p.Events[i].Crawl != spec.Condition {
			return nil, fmt.Errorf("distrib: unit %s event %d belongs to crawl %q, not %q", spec.ID, i, p.Events[i].Crawl, spec.Condition)
		}
	}
	pdata, err := os.ReadFile(filepath.Join(dir, PagesFile))
	if err != nil {
		return nil, fmt.Errorf("distrib: unit %s: %w", spec.ID, err)
	}
	var pg unitPages
	if err := json.Unmarshal(pdata, &pg); err != nil {
		return nil, fmt.Errorf("distrib: unit %s pages: %w", spec.ID, err)
	}
	if pg.Schema > SchemaVersion {
		return nil, fmt.Errorf("distrib: unit %s pages schema v%d is newer than supported v%d", spec.ID, pg.Schema, SchemaVersion)
	}
	if pg.Unit != spec.ID {
		return nil, fmt.Errorf("distrib: pages file in %s belongs to unit %s, not %s", dir, pg.Unit, spec.ID)
	}
	if got, want := len(pg.Pages), spec.Pages(); got != want {
		return nil, fmt.Errorf("distrib: unit %s holds %d pages, range [%d,%d) wants %d", spec.ID, got, spec.Start, spec.End, want)
	}
	for i, page := range pg.Pages {
		if page == nil {
			return nil, fmt.Errorf("distrib: unit %s page %d is missing", spec.ID, i)
		}
	}
	p.Pages, p.ParseSeen = pg.Pages, pg.ParseSeen
	p.Machine, p.Extension = pg.Machine, pg.Extension
	if spec.Study.TraceVisits {
		ex, err := tracez.ReadExemplars(filepath.Join(dir, tracez.ExemplarsFile))
		if err != nil {
			return nil, fmt.Errorf("distrib: unit %s: %w", spec.ID, err)
		}
		p.Exemplars = ex.Conditions
	}
	if spec.Study.SnapshotReuse {
		st, err := snapshot.Load(filepath.Join(dir, "snapshots"))
		if err != nil {
			return nil, fmt.Errorf("distrib: unit %s: %w", spec.ID, err)
		}
		p.Snapshots = st
	}
	return p, nil
}
