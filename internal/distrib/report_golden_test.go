package distrib

import (
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "regenerate golden files")

// TestRenderLedgerGolden pins the coordinator's end-of-run summary
// exactly: header tallies, the unit-ledger table (including failure
// notes under a retried unit and an aborted one), and the per-worker
// section. RenderLedger is a pure function of the records, so the
// fixture uses fixed wall times and the comparison is byte-for-byte.
// Run with -update after an intentional format change.
func TestRenderLedgerGolden(t *testing.T) {
	records := []UnitRecord{
		{ID: "control-00", Condition: "control", Start: 0, End: 200, Status: UnitDone,
			Worker: "w0", Attempts: 1, WallMS: 1500},
		{ID: "control-01", Condition: "control", Start: 200, End: 400, Status: UnitDone,
			Worker: "w2", Attempts: 2, Resumed: true, WallMS: 2250,
			Failures: []string{"worker died mid-unit"}},
		{ID: "abp-00", Condition: "abp", Start: 0, End: 200, Status: UnitDone,
			Worker: "w1", Attempts: 1, WallMS: 1750},
		{ID: "abp-01", Condition: "abp", Start: 200, End: 400, Status: UnitFailed,
			Worker: "w0", Attempts: 3, WallMS: 900,
			Failures: []string{"worker died mid-unit", "worker died mid-unit", "attempt budget (3) exhausted"}},
		{ID: "ubo-00", Condition: "ubo", Start: 0, End: 400, Status: UnitPending},
	}
	got := RenderLedger(records)

	goldenPath := filepath.Join("testdata", "ledger_report.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/distrib -run RenderLedgerGolden -update` to create it)", err)
	}
	if got != string(want) {
		t.Errorf("ledger report drifted from golden; run with -update if intentional\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
