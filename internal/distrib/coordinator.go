package distrib

import (
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"sync"
	"time"

	"canvassing/internal/bundle"
)

// ExitInterrupted is the exit code a worker process uses to report a
// mid-unit stop (same convention as cmd/repro's -interrupt-after).
const ExitInterrupted = 3

// Spawner runs one attempt of a work-unit. Implementations: the root
// package's in-process runner (unit crawls share the study's generated
// web) and ProcessSpawner (each attempt is a spawned worker process
// that rebuilds the world from the unit spec).
type Spawner interface {
	// Run executes the unit in dir. stopAfter > 0 arms the checkpoint
	// interruption lever for chaos testing. interrupted reports a
	// mid-unit stop (the unit stays resumable), resumed that the attempt
	// picked up an existing checkpoint sidecar.
	Run(dir string, spec UnitSpec, stopAfter int) (interrupted, resumed bool, err error)
}

// UnitDir returns the directory of one unit under a distributed run's
// root.
func UnitDir(runDir, unitID string) string {
	return filepath.Join(runDir, "units", unitID)
}

// Coordinator drives a distributed run: it writes every unit spec,
// dispatches units to a fixed pool of worker slots, reassigns a failed
// or interrupted unit to the next free slot (where it resumes from its
// checkpoint sidecar), and keeps the ledger current throughout.
type Coordinator struct {
	// Dir is the run root; units live under Dir/units/<id>.
	Dir string
	// Units is the partition (see Partition).
	Units []UnitSpec
	// Spawn runs unit attempts.
	Spawn Spawner
	// Slots is the number of concurrent workers (<=0 selects 4).
	Slots int
	// MaxAttempts bounds attempts per unit (<=0 selects 3). A unit that
	// exhausts it aborts the run — a half-finished partial must never
	// slip into a merge.
	MaxAttempts int
	// Arm maps unit ID → checkpoint-writes-before-stop, armed on that
	// unit's FIRST attempt only — the chaos lever: the armed attempt
	// dies mid-unit and the reassigned attempt resumes it.
	Arm map[string]int
}

// Run executes the distributed crawl phase and returns the final
// ledger. The returned error (if any) is the first unit abort; the
// ledger is returned alongside it for post-mortems.
func (c *Coordinator) Run() (*Ledger, error) {
	if len(c.Units) == 0 {
		return nil, fmt.Errorf("distrib: no units to run")
	}
	if c.Spawn == nil {
		return nil, fmt.Errorf("distrib: coordinator without a spawner")
	}
	slots := c.Slots
	if slots <= 0 {
		slots = 4
	}
	maxAttempts := c.MaxAttempts
	if maxAttempts <= 0 {
		maxAttempts = 3
	}
	byID := make(map[string]UnitSpec, len(c.Units))
	for _, u := range c.Units {
		dir := UnitDir(c.Dir, u.ID)
		if err := WriteUnitSpec(dir, u); err != nil {
			return nil, err
		}
		byID[u.ID] = u
	}
	ledger, err := NewLedger(c.Dir, c.Units)
	if err != nil {
		return nil, err
	}

	// Dispatch order is a seeded shuffle — scheduling must not matter,
	// and shuffling makes sure the oracle would catch it if it did. The
	// partition itself (the ranges) is never shuffled.
	order := make([]string, len(c.Units))
	for i, u := range c.Units {
		order[i] = u.ID
	}
	rng := rand.New(rand.NewSource(int64(c.Units[0].Study.Seed)))
	rng.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

	// Every unit is either queued or owned by exactly one slot, so a
	// requeue can never race the close: close fires only when all units
	// reached a terminal state, at which point no slot holds one.
	jobs := make(chan string, len(c.Units)*maxAttempts)
	for _, id := range order {
		jobs <- id
	}
	var mu sync.Mutex
	remaining := len(c.Units)
	var firstErr error
	finish := func(abort error) {
		mu.Lock()
		defer mu.Unlock()
		if abort != nil && firstErr == nil {
			firstErr = abort
		}
		remaining--
		if remaining == 0 {
			close(jobs)
		}
	}

	var wg sync.WaitGroup
	for k := 0; k < slots; k++ {
		wg.Add(1)
		go func(worker string) {
			defer wg.Done()
			for id := range jobs {
				spec := byID[id]
				attempt, err := ledger.Assign(id, worker)
				if err != nil {
					finish(err)
					continue
				}
				stopAfter := 0
				if attempt == 1 {
					stopAfter = c.Arm[id]
				}
				start := time.Now()
				interrupted, resumed, rerr := c.Spawn.Run(UnitDir(c.Dir, id), spec, stopAfter)
				wall := time.Since(start)
				if rerr == nil && !interrupted {
					if derr := ledger.Done(id, wall, resumed); derr != nil {
						finish(derr)
						continue
					}
					finish(nil)
					continue
				}
				note := "worker died mid-unit"
				if rerr != nil {
					note = rerr.Error()
				}
				if lerr := ledger.Release(id, note, wall); lerr != nil {
					finish(lerr)
					continue
				}
				if attempt >= maxAttempts {
					abortErr := fmt.Errorf("distrib: unit %s failed %d of %d attempts: %s", id, attempt, maxAttempts, note)
					if aerr := ledger.Abort(id, fmt.Sprintf("attempt budget (%d) exhausted", maxAttempts)); aerr != nil {
						abortErr = aerr
					}
					finish(abortErr)
					continue
				}
				jobs <- id // reassign: the next free slot resumes it
			}
		}(fmt.Sprintf("w%d", k))
	}
	wg.Wait()
	return ledger, firstErr
}

// ProcessSpawner runs each unit attempt as a spawned worker process —
// the local-process transport: no network, just the unit directory as
// the hand-off. The worker is expected to exit 0 on unit completion,
// ExitInterrupted on a mid-unit stop, and anything else on failure.
type ProcessSpawner struct {
	// Binary is the worker executable (e.g. a crawl binary with a
	// -distrib-unit mode).
	Binary string
	// Args are the flag arguments placed before the unit directory
	// (which is appended last, after any -interrupt-after flag).
	Args []string
	// Stderr receives worker stderr (nil discards it).
	Stderr io.Writer
}

// Run spawns one worker attempt and maps its exit code back to the
// Spawner contract.
func (p *ProcessSpawner) Run(dir string, spec UnitSpec, stopAfter int) (interrupted, resumed bool, err error) {
	// A sidecar on disk before the attempt means this attempt resumes.
	_, serr := os.Stat(filepath.Join(dir, bundle.CheckpointSidecar))
	resumed = serr == nil
	args := append([]string(nil), p.Args...)
	if stopAfter > 0 {
		args = append(args, "-interrupt-after", strconv.Itoa(stopAfter))
	}
	args = append(args, dir)
	cmd := exec.Command(p.Binary, args...)
	cmd.Stderr = p.Stderr
	runErr := cmd.Run()
	if runErr == nil {
		return false, resumed, nil
	}
	var ee *exec.ExitError
	if errors.As(runErr, &ee) && ee.ExitCode() == ExitInterrupted {
		return true, resumed, nil
	}
	return false, resumed, fmt.Errorf("distrib: worker %s: %w", filepath.Base(dir), runErr)
}
