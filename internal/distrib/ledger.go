package distrib

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// UnitStatus is a work-unit's lifecycle state in the ledger.
type UnitStatus string

const (
	// UnitPending: not yet assigned, or released for reassignment after
	// a worker died mid-unit.
	UnitPending UnitStatus = "pending"
	// UnitRunning: assigned to a worker.
	UnitRunning UnitStatus = "running"
	// UnitDone: partial bundle written, checkpoint sidecar removed.
	UnitDone UnitStatus = "done"
	// UnitFailed: exhausted its attempt budget; the run aborts.
	UnitFailed UnitStatus = "failed"
)

// UnitRecord is one ledger row. Wall time is cumulative across
// attempts and measured in milliseconds so the JSON form stays flat.
type UnitRecord struct {
	ID        string     `json:"id"`
	Condition string     `json:"condition"`
	Start     int        `json:"start"`
	End       int        `json:"end"`
	Status    UnitStatus `json:"status"`
	// Worker is the most recent assignee.
	Worker   string `json:"worker,omitempty"`
	Attempts int    `json:"attempts"`
	// Resumed reports that some attempt picked the unit up from its
	// checkpoint sidecar rather than starting fresh.
	Resumed bool  `json:"resumed,omitempty"`
	WallMS  int64 `json:"wall_ms"`
	// Failures holds one note per failed or interrupted attempt.
	Failures []string `json:"failures,omitempty"`
}

// ledgerState is the ledger.json wire form.
type ledgerState struct {
	Schema int          `json:"schema"`
	Units  []UnitRecord `json:"units"`
}

// Ledger tracks every work-unit's assignment, retries, and outcome. It
// is safe for concurrent use by the coordinator's worker slots; every
// mutation atomically rewrites ledger.json (when the ledger is backed
// by a directory), so an outside observer — or a post-mortem — always
// sees a consistent snapshot.
type Ledger struct {
	mu      sync.Mutex
	path    string // "" for in-memory ledgers (tests, fuzzing)
	records []*UnitRecord
	index   map[string]*UnitRecord
}

// NewLedger builds a ledger over units, in order. A non-empty dir
// makes the ledger durable as dir/ledger.json.
func NewLedger(dir string, units []UnitSpec) (*Ledger, error) {
	l := &Ledger{index: make(map[string]*UnitRecord, len(units))}
	if dir != "" {
		l.path = filepath.Join(dir, LedgerFile)
	}
	for _, u := range units {
		if _, dup := l.index[u.ID]; dup {
			return nil, fmt.Errorf("distrib: duplicate unit id %s", u.ID)
		}
		rec := &UnitRecord{ID: u.ID, Condition: u.Condition, Start: u.Start, End: u.End, Status: UnitPending}
		l.records = append(l.records, rec)
		l.index[u.ID] = rec
	}
	if err := l.saveLocked(); err != nil {
		return nil, err
	}
	return l, nil
}

// Assign marks a pending unit as running on worker and returns the
// attempt number (1 for the first try).
func (l *Ledger) Assign(id, worker string) (int, error) {
	attempt := 0
	err := l.update(id, func(r *UnitRecord) error {
		if r.Status != UnitPending {
			return fmt.Errorf("distrib: assign %s: unit is %s", id, r.Status)
		}
		r.Status = UnitRunning
		r.Worker = worker
		r.Attempts++
		attempt = r.Attempts
		return nil
	})
	return attempt, err
}

// Done marks a running unit complete. resumed reports whether this
// attempt restarted from a checkpoint sidecar.
func (l *Ledger) Done(id string, wall time.Duration, resumed bool) error {
	return l.update(id, func(r *UnitRecord) error {
		if r.Status != UnitRunning {
			return fmt.Errorf("distrib: done %s: unit is %s", id, r.Status)
		}
		r.Status = UnitDone
		r.WallMS += wall.Milliseconds()
		r.Resumed = r.Resumed || resumed
		return nil
	})
}

// Release returns a running unit to the pending queue after a failed
// or killed attempt, recording the failure note. The next assignment —
// on any worker slot — resumes from the unit's checkpoint sidecar.
func (l *Ledger) Release(id, note string, wall time.Duration) error {
	return l.update(id, func(r *UnitRecord) error {
		if r.Status != UnitRunning {
			return fmt.Errorf("distrib: release %s: unit is %s", id, r.Status)
		}
		r.Status = UnitPending
		r.WallMS += wall.Milliseconds()
		r.Failures = append(r.Failures, note)
		return nil
	})
}

// Abort marks a unit permanently failed (attempt budget exhausted).
func (l *Ledger) Abort(id, note string) error {
	return l.update(id, func(r *UnitRecord) error {
		r.Status = UnitFailed
		if note != "" {
			r.Failures = append(r.Failures, note)
		}
		return nil
	})
}

// Records returns a copy of every ledger row, in partition order.
func (l *Ledger) Records() []UnitRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]UnitRecord, len(l.records))
	for i, r := range l.records {
		out[i] = *r
		out[i].Failures = append([]string(nil), r.Failures...)
	}
	return out
}

// update applies fn to the record for id under the lock and persists.
func (l *Ledger) update(id string, fn func(*UnitRecord) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	r, ok := l.index[id]
	if !ok {
		return fmt.Errorf("distrib: unknown unit %s", id)
	}
	if err := fn(r); err != nil {
		return err
	}
	return l.saveLocked()
}

// saveLocked persists the ledger if it is directory-backed.
func (l *Ledger) saveLocked() error {
	if l.path == "" {
		return nil
	}
	st := ledgerState{Schema: SchemaVersion, Units: make([]UnitRecord, len(l.records))}
	for i, r := range l.records {
		st.Units[i] = *r
	}
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return fmt.Errorf("distrib: ledger: %w", err)
	}
	return atomicWrite(l.path, append(data, '\n'))
}

// LoadLedgerRecords reads dir/ledger.json — the post-mortem entry
// point; the live coordinator never reloads its own ledger.
func LoadLedgerRecords(dir string) ([]UnitRecord, error) {
	data, err := os.ReadFile(filepath.Join(dir, LedgerFile))
	if err != nil {
		return nil, fmt.Errorf("distrib: %w", err)
	}
	var st ledgerState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("distrib: ledger: %w", err)
	}
	if st.Schema > SchemaVersion {
		return nil, fmt.Errorf("distrib: ledger schema v%d is newer than supported v%d", st.Schema, SchemaVersion)
	}
	return st.Units, nil
}
