package distrib

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

func testUnits(n int) []UnitSpec {
	return Partition([]string{"control"}, n*10, n, testStudy())
}

func TestLedgerLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, err := NewLedger(dir, testUnits(3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := l.Assign("control-00", "w0"); err != nil {
		t.Fatal(err)
	}
	// Running units cannot be re-assigned or completed twice.
	if _, err := l.Assign("control-00", "w1"); err == nil {
		t.Fatal("double assignment accepted")
	}
	if err := l.Done("control-01", time.Second, false); err == nil {
		t.Fatal("Done on a pending unit accepted")
	}
	if err := l.Release("control-00", "worker died mid-unit", 250*time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if att, err := l.Assign("control-00", "w2"); err != nil || att != 2 {
		t.Fatalf("reassignment: attempt=%d err=%v, want attempt 2", att, err)
	}
	if err := l.Done("control-00", 500*time.Millisecond, true); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Assign("control-01", "w0"); err != nil {
		t.Fatal(err)
	}
	if err := l.Abort("control-02", "attempt budget exhausted"); err != nil {
		t.Fatal(err)
	}

	// The on-disk ledger must agree with the in-memory view at every
	// point an outside observer could read it.
	got, err := LoadLedgerRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	want := l.Records()
	if len(got) != len(want) {
		t.Fatalf("disk ledger holds %d records, memory %d", len(got), len(want))
	}
	r := got[0]
	if r.Status != UnitDone || r.Attempts != 2 || !r.Resumed || r.WallMS != 750 || len(r.Failures) != 1 {
		t.Fatalf("control-00 record wrong: %+v", r)
	}
	if got[1].Status != UnitRunning || got[1].Worker != "w0" {
		t.Fatalf("control-01 record wrong: %+v", got[1])
	}
	if got[2].Status != UnitFailed {
		t.Fatalf("control-02 record wrong: %+v", got[2])
	}

	if _, err := l.Assign("nope", "w0"); err == nil {
		t.Fatal("unknown unit accepted")
	}
	if _, err := NewLedger(t.TempDir(), append(testUnits(1), testUnits(1)...)); err == nil {
		t.Fatal("duplicate unit IDs accepted")
	}
}

// Records must return copies: mutating a returned row cannot corrupt
// the ledger.
func TestLedgerRecordsAreCopies(t *testing.T) {
	l, err := NewLedger("", testUnits(1))
	if err != nil {
		t.Fatal(err)
	}
	recs := l.Records()
	recs[0].Status = UnitFailed
	recs[0].Failures = append(recs[0].Failures, "synthetic")
	if fresh := l.Records()[0]; fresh.Status != UnitPending || len(fresh.Failures) != 0 {
		t.Fatalf("mutating a Records() row leaked into the ledger: %+v", fresh)
	}
}

// Churn the ledger from many goroutines playing worker slots — the
// -race half of the chaos satellite. Every unit goes through
// assign → release → assign → done concurrently, and the final state
// must be fully done with exactly two attempts each.
func TestLedgerConcurrentChurn(t *testing.T) {
	const units = 24
	dir := t.TempDir()
	l, err := NewLedger(dir, testUnits(units))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < units; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("control-%02d", i)
			w := fmt.Sprintf("w%d", i%4)
			if _, err := l.Assign(id, w); err != nil {
				t.Error(err)
				return
			}
			if err := l.Release(id, "killed", time.Millisecond); err != nil {
				t.Error(err)
				return
			}
			if _, err := l.Assign(id, w); err != nil {
				t.Error(err)
				return
			}
			if err := l.Done(id, time.Millisecond, true); err != nil {
				t.Error(err)
			}
		}(i)
		// Concurrent readers race the writers over the copy-out path and
		// the atomic file rewrite.
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = l.Records()
			_, _ = LoadLedgerRecords(dir)
		}()
	}
	wg.Wait()
	for _, r := range l.Records() {
		if r.Status != UnitDone || r.Attempts != 2 || !r.Resumed {
			t.Fatalf("after churn, unit %s is %+v", r.ID, r)
		}
	}
	disk, err := LoadLedgerRecords(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range disk {
		if r.Status != UnitDone {
			t.Fatalf("disk ledger disagrees after churn: %+v", r)
		}
	}
}
