package distrib

import (
	"path/filepath"
	"reflect"
	"testing"
)

func testStudy() StudySpec {
	return StudySpec{Seed: 11, Scale: 0.02, Workers: 2, FaultRate: 0.25, CheckpointEvery: 64}
}

// A partition must tile every condition's frontier exactly with
// contiguous near-equal ranges, whatever the divisibility.
func TestPartitionTilesFrontier(t *testing.T) {
	conds := []string{"control", "abp"}
	for _, tc := range []struct{ total, parts int }{
		{800, 1}, {800, 4}, {800, 16}, {801, 4}, {7, 3}, {5, 8}, {1, 1}, {800, 0},
	} {
		units := Partition(conds, tc.total, tc.parts, testStudy())
		want := tc.parts
		if want < 1 {
			want = 1
		}
		if want > tc.total {
			want = tc.total
		}
		if len(units) != want*len(conds) {
			t.Fatalf("total=%d parts=%d: got %d units, want %d per condition", tc.total, tc.parts, len(units), want)
		}
		perCond := map[string][]UnitSpec{}
		for _, u := range units {
			if err := u.validate(); err != nil {
				t.Fatalf("total=%d parts=%d: invalid unit: %v", tc.total, tc.parts, err)
			}
			if u.Study != testStudy() {
				t.Fatalf("unit %s lost the study spec", u.ID)
			}
			perCond[u.Condition] = append(perCond[u.Condition], u)
		}
		for cond, us := range perCond {
			next, min, max := 0, tc.total+1, -1
			for _, u := range us {
				if u.Start != next {
					t.Fatalf("total=%d parts=%d cond=%s: unit %s starts at %d, want %d", tc.total, tc.parts, cond, u.ID, u.Start, next)
				}
				next = u.End
				n := u.Pages()
				if n < min {
					min = n
				}
				if n > max {
					max = n
				}
			}
			if next != tc.total {
				t.Fatalf("total=%d parts=%d cond=%s: tiling ends at %d", tc.total, tc.parts, cond, next)
			}
			if max-min > 1 {
				t.Fatalf("total=%d parts=%d cond=%s: unit sizes spread %d..%d, want near-equal", tc.total, tc.parts, cond, min, max)
			}
		}
	}
}

// The split is a pure function of (total, parts): two calls agree, so
// coordinator and workers can never disagree about ranges.
func TestPartitionIsPure(t *testing.T) {
	a := Partition([]string{"control"}, 801, 16, testStudy())
	b := Partition([]string{"control"}, 801, 16, testStudy())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two identical Partition calls disagree")
	}
}

func TestUnitSpecRoundtrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "unit")
	spec := Partition([]string{"ubo"}, 101, 4, testStudy())[2]
	if err := WriteUnitSpec(dir, spec); err != nil {
		t.Fatal(err)
	}
	got, err := ReadUnitSpec(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got != spec {
		t.Fatalf("roundtrip changed the spec:\n got %+v\nwant %+v", got, spec)
	}
}

func TestUnitSpecValidation(t *testing.T) {
	base := UnitSpec{Schema: SchemaVersion, ID: "control-00", Condition: "control", Start: 0, End: 10, Total: 20}
	for name, mut := range map[string]func(*UnitSpec){
		"missing id":        func(u *UnitSpec) { u.ID = "" },
		"missing condition": func(u *UnitSpec) { u.Condition = "" },
		"negative start":    func(u *UnitSpec) { u.Start = -1 },
		"inverted range":    func(u *UnitSpec) { u.End = u.Start - 1 },
		"range past total":  func(u *UnitSpec) { u.End = u.Total + 1 },
	} {
		u := base
		mut(&u)
		if err := u.validate(); err == nil {
			t.Errorf("%s: validate accepted %+v", name, u)
		}
	}
	if err := base.validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	// A spec from a future schema must be refused on read.
	dir := filepath.Join(t.TempDir(), "unit")
	future := base
	future.Schema = SchemaVersion + 1
	if err := WriteUnitSpec(dir, future); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadUnitSpec(dir); err == nil {
		t.Fatal("future-schema unit spec accepted")
	}
}
