package distrib

import (
	"fmt"
	"sort"

	"canvassing/internal/crawler"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/snapshot"
)

// Parse-cache counter names the merge corrects (shared with
// internal/crawler's metric registration).
const (
	parseCacheHits   = "crawl.parsecache.hits"
	parseCacheMisses = "crawl.parsecache.misses"
)

// MergedCrawl is one condition's recombined crawl: exactly what the
// single-process crawl of the full frontier would have produced.
type MergedCrawl struct {
	Condition string
	Machine   string
	Extension string
	// Pages is the full frontier's page results in page order.
	Pages []*crawler.PageResult
	// Events are every unit's evidence events concatenated in page-range
	// order; re-recording them into a sink re-stamps Seq, reproducing
	// the serial event stream.
	Events []event.Event
	// Metrics is the summed metrics snapshot with the parse-cache
	// first-seen correction applied. Gauges are absent — they are
	// instantaneous values the adopting process owns.
	Metrics obs.Snapshot
	// Exemplars holds every unit's reservoir view in page-range order,
	// ready for Reservoir.Absorb.
	Exemplars []tracez.CondExemplars
	// Snapshots holds each unit's store delta in page-range order, ready
	// for Store.Merge.
	Snapshots []*snapshot.Store
}

// MergeCrawl recombines one condition's unit partials. It refuses —
// with an error, never a panic or a silent partial merge — any input
// set that does not tile the condition's frontier exactly: overlaps,
// gaps, duplicates, mixed conditions, or mismatched study specs. When
// it returns nil error, every page of the frontier is covered exactly
// once.
//
// The merge rules, each preserving the single-process bytes:
//
//   - pages concatenate in range order (each unit's Pages[i] is global
//     page Start+i);
//   - events concatenate in range order (unit-local order is already
//     page order, thanks to the crawler's ordered committer);
//   - counters sum, then the parse-cache pair is corrected: a body
//     hash first seen by unit k is a miss there, but in the unified
//     stream it is a miss only at its globally first-seen page and a
//     hit everywhere later. merged_misses = Σ forced_k + |∪ ParseSeen|
//     (first-seen union in range order) and the hit total absorbs the
//     difference, so hits+misses is conserved;
//   - histograms add bucket-wise (layout mismatches are errors);
//   - exemplar views and snapshot deltas are collected in range order
//     for the caller to Absorb/Merge, which re-selects and re-accounts
//     exactly as the unified stream would.
func MergeCrawl(parts []*Partial) (*MergedCrawl, error) {
	if len(parts) == 0 {
		return nil, fmt.Errorf("distrib: merge of zero partials")
	}
	ordered := make([]*Partial, len(parts))
	copy(ordered, parts)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Spec.Start < ordered[j].Spec.Start })

	first := ordered[0].Spec
	m := &MergedCrawl{Condition: first.Condition}
	next := 0
	for _, p := range ordered {
		s := p.Spec
		if err := s.validate(); err != nil {
			return nil, err
		}
		switch {
		case s.Condition != first.Condition:
			return nil, fmt.Errorf("distrib: merge mixes conditions %q and %q", first.Condition, s.Condition)
		case s.Total != first.Total:
			return nil, fmt.Errorf("distrib: unit %s frontier total %d != %d", s.ID, s.Total, first.Total)
		case s.Study != first.Study:
			return nil, fmt.Errorf("distrib: unit %s study spec differs from unit %s", s.ID, first.ID)
		case s.Start < next:
			return nil, fmt.Errorf("distrib: unit %s range [%d,%d) overlaps or duplicates pages before %d", s.ID, s.Start, s.End, next)
		case s.Start > next:
			return nil, fmt.Errorf("distrib: pages [%d,%d) are covered by no unit", next, s.Start)
		case len(p.Pages) != s.Pages():
			return nil, fmt.Errorf("distrib: unit %s carries %d pages for range [%d,%d)", s.ID, len(p.Pages), s.Start, s.End)
		}
		next = s.End
	}
	if next != first.Total {
		return nil, fmt.Errorf("distrib: pages [%d,%d) are covered by no unit", next, first.Total)
	}
	for _, p := range ordered {
		if p.Machine != ordered[0].Machine || p.Extension != ordered[0].Extension {
			return nil, fmt.Errorf("distrib: unit %s crawled on %s/%s, unit %s on %s/%s",
				p.Spec.ID, p.Machine, p.Extension, ordered[0].Spec.ID, ordered[0].Machine, ordered[0].Extension)
		}
	}
	m.Machine, m.Extension = ordered[0].Machine, ordered[0].Extension

	// Counters and histograms: sum through a scratch registry (which
	// validates histogram bucket layouts), then correct the parse-cache
	// pair from the per-unit first-seen cursors.
	scratch := obs.NewRegistry()
	var sumHits, sumMisses int64
	seen := map[uint64]bool{}
	union := 0
	var forced int64
	for _, p := range ordered {
		if err := scratch.Merge(p.Metrics); err != nil {
			return nil, fmt.Errorf("distrib: unit %s: %w", p.Spec.ID, err)
		}
		hits := p.Metrics.Counters[parseCacheHits]
		misses := p.Metrics.Counters[parseCacheMisses]
		if misses < int64(len(p.ParseSeen)) {
			return nil, fmt.Errorf("distrib: unit %s counts %d parse misses but its cursor holds %d first-seen hashes",
				p.Spec.ID, misses, len(p.ParseSeen))
		}
		sumHits += hits
		sumMisses += misses
		forced += misses - int64(len(p.ParseSeen))
		for _, k := range p.ParseSeen {
			if !seen[k] {
				seen[k] = true
				union++
			}
		}
		m.Pages = append(m.Pages, p.Pages...)
		m.Events = append(m.Events, p.Events...)
		m.Exemplars = append(m.Exemplars, p.Exemplars...)
		if p.Snapshots != nil {
			m.Snapshots = append(m.Snapshots, p.Snapshots)
		}
	}
	m.Metrics = scratch.Snapshot()
	if sumHits+sumMisses > 0 {
		mergedMisses := forced + int64(union)
		m.Metrics.Counters[parseCacheMisses] = mergedMisses
		m.Metrics.Counters[parseCacheHits] = sumHits + sumMisses - mergedMisses
	}
	return m, nil
}
