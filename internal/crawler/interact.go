// The interaction engine. A load-time crawl only sees what scripts do
// before the page settles; Annamalai & De Cristofaro ("Beyond the
// Crawl") show real users' clicks, scrolls and idle periods surface
// fingerprinting that crawls structurally miss. This file drives those
// interactions against the dom event loop: each site gets a
// user-behaviour profile that is a pure function of (seed, domain), so
// the dispatch schedule — and therefore every extraction, metric,
// event and traced cost it produces — is identical at any worker width
// and on every run.
package crawler

import (
	"fmt"
	"strings"

	"canvassing/internal/dom"
	"canvassing/internal/jsvm"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/stats"
	"canvassing/internal/web"
)

// ActionKind is one kind of simulated user action.
type ActionKind string

// The action vocabulary. Click/scroll/focus dispatch DOM events to the
// page's registered handlers; idle drains the requestIdleCallback
// queue (a crawl that never idles never reaches those callbacks).
const (
	ActionClick  ActionKind = "click"
	ActionScroll ActionKind = "scroll"
	ActionFocus  ActionKind = "focus"
	ActionIdle   ActionKind = "idle"
)

// MaxProfileActions bounds a behaviour profile's length; ParseProfile
// rejects longer inputs.
const MaxProfileActions = 32

// Action is one step of a behaviour profile.
type Action struct {
	Kind ActionKind
}

// BehaviorProfile is the ordered action script the interaction engine
// drives on one page.
type BehaviorProfile struct {
	Actions []Action
}

// String encodes the profile as a comma-separated action list
// ("click,scroll,idle"); ParseProfile inverts it.
func (p BehaviorProfile) String() string {
	parts := make([]string, len(p.Actions))
	for i, a := range p.Actions {
		parts[i] = string(a.Kind)
	}
	return strings.Join(parts, ",")
}

// ParseProfile parses the String encoding: comma-separated action
// kinds, spaces around tokens tolerated. It rejects empty profiles,
// empty tokens, unknown kinds, and profiles longer than
// MaxProfileActions.
func ParseProfile(s string) (BehaviorProfile, error) {
	var p BehaviorProfile
	if strings.TrimSpace(s) == "" {
		return p, fmt.Errorf("interact: empty behaviour profile")
	}
	tokens := strings.Split(s, ",")
	if len(tokens) > MaxProfileActions {
		return p, fmt.Errorf("interact: profile has %d actions, max %d", len(tokens), MaxProfileActions)
	}
	for _, tok := range tokens {
		kind := ActionKind(strings.TrimSpace(tok))
		switch kind {
		case ActionClick, ActionScroll, ActionFocus, ActionIdle:
			p.Actions = append(p.Actions, Action{Kind: kind})
		default:
			return BehaviorProfile{}, fmt.Errorf("interact: unknown action %q", tok)
		}
	}
	return p, nil
}

// ProfileFor derives the site's behaviour profile from (seed, domain)
// alone — the same determinism contract as the page RNG seed and the
// per-page defense hooks. Profiles are 3–6 actions drawn from a
// click-heavy distribution, always include at least one click, and
// always end with an idle period (users pause; that is when
// requestIdleCallback work runs).
func ProfileFor(seed uint64, domain string) BehaviorProfile {
	rng := stats.NewRNG(seed ^ stats.HashString("interact:"+domain))
	n := 3 + rng.Intn(4)
	kinds := []ActionKind{ActionClick, ActionScroll, ActionFocus, ActionIdle}
	weights := []float64{0.40, 0.30, 0.15, 0.15}
	var p BehaviorProfile
	clicked := false
	for i := 0; i < n; i++ {
		k := kinds[stats.WeightedChoice(rng, weights)]
		if k == ActionClick {
			clicked = true
		}
		p.Actions = append(p.Actions, Action{Kind: k})
	}
	if !clicked {
		p.Actions[rng.Intn(len(p.Actions))] = Action{Kind: ActionClick}
	}
	if p.Actions[len(p.Actions)-1].Kind != ActionIdle {
		p.Actions = append(p.Actions, Action{Kind: ActionIdle})
	}
	return p
}

// interactMetrics are the interaction-engine counters. Like
// faultMetrics they are registered only when the feature is on, so
// Interact=false runs leave the registry — and the bundle — untouched.
type interactMetrics struct {
	actions, dispatched *obs.Counter
	timers, idles       *obs.Counter
	handlers            *obs.Counter
}

func newInteractMetrics(reg *obs.Registry) *interactMetrics {
	return &interactMetrics{
		actions:    reg.Counter("crawl.interact.actions"),
		dispatched: reg.Counter("crawl.interact.dispatched"),
		timers:     reg.Counter("crawl.interact.timers"),
		idles:      reg.Counter("crawl.interact.idle"),
		handlers:   reg.Counter("crawl.interact.handlers"),
	}
}

// settlePage runs the page-settle half of the event loop and, when the
// interaction engine is on, the site's behaviour profile.
//
// The timer drain is unconditional: setTimeout callbacks queued during
// load run at settle in every crawl, interaction or not — that is the
// dropped-callback bugfix, and it mirrors a crawler that waits a few
// seconds before snapshotting the page. Event dispatch and idle
// callbacks run only under Config.Interact: a load-time crawl never
// clicks and never goes idle.
//
// setScript repoints extraction attribution at the script that owns
// each firing callback, so deferred fingerprinting attributes to the
// vendor script that registered the handler, not to whichever script
// happened to run last.
func settlePage(doc *dom.Document, in *jsvm.Interp, site *web.Site, cfg *Config, d *pageDelta, evs *event.Sink, imx *interactMetrics, setScript func(string)) (callbacks int) {
	before := func(owner string) { setScript(owner) }
	defer setScript("")
	// Fresh step budget for the callback phase: the last load-time
	// script's spent steps must not starve the drains.
	in.ResetSteps()
	settled := doc.Loop.RunTimers(before)
	callbacks = settled
	if !cfg.Interact {
		return callbacks
	}
	prof := cfg.Behavior
	if prof == nil {
		p := ProfileFor(cfg.Seed, site.Domain)
		prof = &p
	}
	if imx != nil {
		d.add(imx.timers, int64(settled))
		d.add(imx.handlers, int64(len(doc.Loop.Handlers())))
	}
	for _, act := range prof.Actions {
		var ran int
		if act.Kind == ActionIdle {
			ran = doc.Loop.RunIdle(before)
			if imx != nil {
				d.add(imx.idles, int64(ran))
			}
		} else {
			ran = doc.Loop.Dispatch(string(act.Kind), before)
			if imx != nil {
				d.add(imx.dispatched, int64(ran))
			}
		}
		// Handlers arm timers of their own; each action's aftermath
		// drains before the next action fires, like a real event loop
		// turn.
		armed := doc.Loop.RunTimers(before)
		if imx != nil {
			d.inc(imx.actions)
			d.add(imx.timers, int64(armed))
		}
		callbacks += ran + armed
		if evs != nil {
			d.record(event.Event{
				Kind:     event.InteractDispatch,
				Crawl:    cfg.Condition,
				Site:     site.Domain,
				Subject:  string(act.Kind),
				Verdict:  fmt.Sprintf("ran=%d", ran),
				Evidence: prof.String(),
				Detail:   fmt.Sprintf("handlers=%d", len(doc.Loop.Handlers())),
			})
		}
	}
	return callbacks
}
