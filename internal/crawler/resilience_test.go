package crawler

import (
	"testing"
	"time"

	"canvassing/internal/stats"
)

func TestBackoffDelayBounds(t *testing.T) {
	base, cap := 500*time.Millisecond, 8*time.Second
	b := backoff{base: base, cap: cap, rng: stats.NewRNG(9).Fork("backoff:test")}
	for n := 0; n < 40; n++ {
		want := cap
		if n < 5 { // 500ms<<5 = 16s > cap
			if exp := base << uint(n); exp < cap {
				want = exp
			}
		}
		d := b.delay(n)
		if d < want/2 || d > want {
			t.Fatalf("delay(%d) = %v outside [%v, %v]", n, d, want/2, want)
		}
	}
}

func TestBackoffDeterministic(t *testing.T) {
	mk := func() *backoff {
		return &backoff{base: time.Second, cap: 30 * time.Second,
			rng: stats.NewRNG(4).Fork("backoff:site.example")}
	}
	a, b := mk(), mk()
	for n := 0; n < 10; n++ {
		if da, db := a.delay(n), b.delay(n); da != db {
			t.Fatalf("delay(%d): %v != %v", n, da, db)
		}
	}
}

func TestBackoffDisabled(t *testing.T) {
	b := backoff{base: 0, cap: time.Second, rng: stats.NewRNG(1).Fork("x")}
	if d := b.delay(3); d != 0 {
		t.Fatalf("zero base should mean zero delay, got %v", d)
	}
}

func TestBreaker(t *testing.T) {
	br := breaker{threshold: 3}
	if br.open() {
		t.Fatal("fresh breaker open")
	}
	br.fail()
	br.fail()
	if br.open() {
		t.Fatal("open below threshold")
	}
	br.fail()
	if !br.open() {
		t.Fatal("closed at threshold")
	}
	br.ok()
	if br.open() {
		t.Fatal("success should reset the consecutive count")
	}
	// Threshold 0 disables the breaker entirely.
	off := breaker{}
	for i := 0; i < 100; i++ {
		off.fail()
	}
	if off.open() {
		t.Fatal("disabled breaker opened")
	}
}
