// Package crawler is the instrumented crawler (the Tracker Radar
// Collector analog, §3.1): it visits pages with a worker pool, executes
// their scripts in the jsvm against an instrumented DOM, simulates
// consent-banner acceptance and scrolling, supports ad-blocker
// extensions, and records every Canvas API interaction with script
// attribution.
package crawler

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"canvassing/internal/blocklist"
	"canvassing/internal/canvas"
	"canvassing/internal/dom"
	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/obs/tracez"
	"canvassing/internal/stats"
	"canvassing/internal/web"
)

// Extraction is one canvas extraction event (a toDataURL return).
type Extraction struct {
	// ScriptURL is the page script whose execution produced the
	// extraction (a first-party bundle attributes to the bundle URL,
	// exactly as a real crawler would see it).
	ScriptURL string
	// DataURL is the full extracted value.
	DataURL string
	// Seq orders events within the page visit.
	Seq int
}

// Record is one raw Canvas API call record (optional, Config.KeepRecords).
type Record struct {
	ScriptURL string
	Iface     string
	Member    string
	Args      []string
	Ret       string
	Seq       int
}

// PageResult is the outcome of one page visit.
type PageResult struct {
	Domain string
	Rank   int
	Cohort web.Cohort
	// OK is false when the site could not be crawled.
	OK bool
	// FailReason explains OK == false: "unreachable" (the site was
	// never servable), "refused", "timeout", or "circuit-open" (see the
	// Fail* constants). Empty for successful visits.
	FailReason string `json:",omitempty"`
	// Degraded marks a partially loaded page: fault injection truncated
	// the resource stream, but the canvas calls the surviving scripts
	// made are still recorded instead of the page being dropped.
	Degraded bool `json:",omitempty"`
	// Extractions lists canvas extraction events in order.
	Extractions []Extraction
	// ScriptMethods maps script URL → set of context/canvas members the
	// script invoked (the detection heuristics consume this).
	ScriptMethods map[string]map[string]bool
	// BlockedScripts lists script URLs an extension blocked.
	BlockedScripts []string
	// ScriptErrors maps script URL → error text for scripts that failed.
	ScriptErrors map[string]string
	// Records holds raw API records when Config.KeepRecords is set.
	Records []Record
}

// Result is a whole crawl.
type Result struct {
	// Pages are per-site results in input order. For an interrupted
	// crawl only Pages[:Frontier] are populated; the rest are nil.
	Pages []*PageResult
	// Machine names the profile the crawl ran on.
	Machine string
	// Extension names the ad blocker in use ("" for control).
	Extension string
	// Frontier is the number of leading pages the crawl committed
	// (== len(Pages) for a completed crawl).
	Frontier int `json:",omitempty"`
	// Interrupted reports that Config.OnCommit stopped the crawl early;
	// the checkpoint written by the final commit hook is the authority
	// on what completed.
	Interrupted bool `json:",omitempty"`
}

// SuccessfulPages returns pages that crawled OK. Uncommitted (nil)
// pages of an interrupted crawl are skipped.
func (r *Result) SuccessfulPages() []*PageResult {
	var out []*PageResult
	for _, p := range r.Pages {
		if p != nil && p.OK {
			out = append(out, p)
		}
	}
	return out
}

// Extension is an ad-blocker browser extension observing requests.
type Extension interface {
	// Name identifies the extension for reports.
	Name() string
	// BlockScript decides whether a script request is blocked. The
	// extension sees the request URL as the page references it (CNAME
	// cloaking is invisible here, as in a real browser).
	BlockScript(req blocklist.Request) bool
}

// BlockExplainer is an optional Extension capability: after BlockScript
// returns true, ExplainBlock names the filter list and the matching
// rule so block decisions carry evidence in the event log. Extensions
// without it still work; their block events just lack the rule.
type BlockExplainer interface {
	ExplainBlock(req blocklist.Request) (list, rule string)
}

// Config controls a crawl.
type Config struct {
	// Workers sets the worker-pool width; <=0 selects 8.
	Workers int
	// Profile is the machine the crawl renders on (nil → Intel).
	Profile *machine.Profile
	// Extension is the installed ad blocker (nil → control crawl).
	Extension Extension
	// ExtractHook, when non-nil, installs a canvas-randomization defense
	// on every page (§5.3 experiments).
	ExtractHook canvas.ExtractHook
	// ExtractHookFor, when non-nil, builds a page-scoped defense hook
	// per visited domain and takes precedence over ExtractHook. Page
	// scoping keeps per-render noise a pure function of (seed, domain),
	// independent of worker scheduling, so traced visit costs stay
	// width- and run-invariant under a defense.
	ExtractHookFor func(domain string) canvas.ExtractHook
	// AutoConsent opts into consent banners, as the paper's crawler does
	// with the autoconsent library. When false, consent-gated scripts
	// never run.
	AutoConsent bool
	// Scroll simulates scrolling, triggering lazy scripts. The paper's
	// crawler scrolls and waits five seconds.
	Scroll bool
	// VisitInnerPages also follows the site's /login inner page after
	// the homepage — the paper's crawler deliberately does NOT (§3.2
	// limitation); the EX2 extension experiment flips this on.
	VisitInnerPages bool
	// Interact turns on the interaction engine: after the page settles,
	// the crawler drives a seeded per-site user-behaviour profile
	// (click/scroll/focus/idle) against the page's event-handler
	// registry, surfacing fingerprinting deferred behind handlers and
	// idle callbacks ("Beyond the Crawl"). Off, the crawl sees only
	// load-time behaviour plus the settle-time timer drain.
	Interact bool
	// Behavior, when non-nil with Interact, replaces the seeded
	// per-site profile with a fixed action script for every page.
	Behavior *BehaviorProfile
	// KeepRecords retains raw API call records (memory-heavy).
	KeepRecords bool
	// MaxStepsPerScript bounds each script's execution; <=0 → 20M
	// (hashing sixty data URLs in script, as the heaviest audit pages
	// do, costs several million interpreter steps).
	MaxStepsPerScript int
	// Seed decorrelates Math.random across crawls.
	Seed uint64
	// DisableParseCache forces re-parsing every script body on every
	// page (ablation benchmark).
	DisableParseCache bool
	// Telemetry, when non-nil, receives crawl metrics: visit latency,
	// queue wait, worker utilization, script outcome counters,
	// parse-cache effectiveness, and jsvm step usage. Nil runs the
	// bare, uninstrumented path.
	Telemetry *obs.Telemetry
	// Condition labels this crawl in the evidence event log ("control",
	// "abp", "demo", ...) so bundle diffs can align per-condition
	// decisions across runs. Empty is fine for unlabeled crawls.
	Condition string
	// Faults injects deterministic network failures into every visit
	// (nil disables injection; the crawl then behaves exactly as it did
	// before the resilience engine existed).
	Faults *netsim.FaultModel
	// Retries caps re-attempts after a failed visit attempt
	// (<=0 selects 3 when Faults is set).
	Retries int
	// VisitTimeout is the virtual per-attempt deadline an attempt's
	// simulated latency is compared against (<=0 selects 5s).
	VisitTimeout time.Duration
	// BackoffBase and BackoffCap bound the exponential retry backoff
	// (<=0 selects 500ms and 8s).
	BackoffBase, BackoffCap time.Duration
	// BreakerThreshold opens the per-site circuit after that many
	// consecutive failed attempts (<=0 selects 3; set above Retries to
	// effectively disable the breaker).
	BreakerThreshold int
	// Sleep, when non-nil, receives each computed backoff delay. The
	// simulation keeps time virtual by default (nil: delays are only
	// recorded, never slept), so faulted crawls run at full speed; a
	// real deployment would pass time.Sleep.
	Sleep func(time.Duration)
	// Snapshots, when non-nil, is the content-addressed snapshot store
	// page resources are fetched through: the first crawl to see a URL
	// populates it, later crawls (ABP/uBO/M1 re-crawls of the same web)
	// reuse the stored body instead of re-fetching. Hit/miss accounting
	// happens at commit time, in page order, so the counters are
	// independent of worker scheduling.
	Snapshots SnapshotStore
	// CommitEvery is how many committed pages separate OnCommit calls
	// (<=0 selects 64). The final commit always fires regardless.
	CommitEvery int
	// Visits, when non-nil, receives one per-visit span tree per
	// committed page — connect/fetch/parse/exec/canvas children with
	// retry/fault/degraded/snapshot-hit labels. Trees are offered from
	// the committer in page order, so the reservoir's deterministic
	// selection is identical at any worker width. Lives entirely
	// outside the metrics registry and event sink: enabling it changes
	// zero bundle bytes.
	Visits *tracez.Reservoir
	// OnCommit, when non-nil, observes the crawl's committed frontier:
	// it is called from the committer goroutine every CommitEvery pages
	// and once more when the crawl completes. All metric and event
	// writes for pages [0, Frontier) — and nothing beyond — have been
	// applied when it runs, so a checkpoint taken inside the hook is an
	// exact cut. Returning true stops the crawl: in-flight pages are
	// discarded uncommitted and Result.Interrupted is set.
	OnCommit func(CommitState) (stop bool)
	// Resume continues a previous crawl from checkpoint state: the
	// committed page prefix is replayed into the result verbatim and
	// the worker pool starts at the frontier. Metrics and events for
	// the prefix are NOT re-applied — the caller restores those from
	// the same checkpoint.
	Resume *ResumeState
	// PageIndexOffset shifts the page-index identity handed to exemplar
	// span trees (tracez.NewVisit). A distributed work-unit crawling
	// sites [Start, End) of a larger frontier passes Start here, so its
	// visit traces carry the same global page ordinal — and therefore
	// the same deterministic sampling hash and tie-break rank — as the
	// single-process crawl. Zero for ordinary crawls.
	PageIndexOffset int
}

// SnapshotStore is the content-addressed body cache a crawl reads
// page resources through (implemented by internal/snapshot.Store).
type SnapshotStore interface {
	// Fetch returns the body stored for u, reading through to fetch on
	// first sight.
	Fetch(u netsim.URL, fetch func() (string, error)) (string, error)
	// Account records one page's fetched URLs in commit order; the
	// store's hit/miss counters move here, not in Fetch, so they are
	// deterministic under any worker interleaving.
	Account(urls []string)
}

// CommitState is the snapshot-able progress of a crawl, handed to
// Config.OnCommit from the committer goroutine.
type CommitState struct {
	// Condition is Config.Condition, for hooks shared across crawls.
	Condition string
	// Frontier counts committed leading pages; Total is len(sites).
	Frontier, Total int
	// Pages is the committed prefix (aliases the result slice — copy
	// before retaining past the hook call).
	Pages []*PageResult
	// ParseSeen lists the distinct script-body hashes counted as
	// parse-cache misses so far, in first-seen page order — the
	// accounting cursor a resumed crawl needs to keep hit/miss totals
	// identical to an uninterrupted run.
	ParseSeen []uint64
	// Final marks the crawl-completion commit.
	Final bool
}

// ResumeState is the crawl-continuation half of a checkpoint.
type ResumeState struct {
	// Pages is the committed prefix (indices [0, len(Pages))).
	Pages []*PageResult
	// ParseSeen is CommitState.ParseSeen from the checkpoint.
	ParseSeen []uint64
}

// DefaultConfig returns the paper's crawl configuration: consent
// acceptance, scrolling, no extension, Intel machine.
func DefaultConfig() Config {
	return Config{
		Workers:     8,
		Profile:     machine.Intel(),
		AutoConsent: true,
		Scroll:      true,
		Seed:        1,
	}
}

// progCache memoizes parsed programs across page visits. Vendor scripts
// are byte-identical across thousands of sites, so parsing each body once
// cuts crawl time severalfold; execution state lives entirely in the
// per-page interpreter, so sharing the AST is safe.
type progCache struct {
	mu    sync.RWMutex
	progs map[uint64]*jsvm.Program
}

// get returns the parsed program for body, the body's cache key, and
// whether the program was already cached. Hit/miss accounting does not
// happen here — the committer decides it from the key stream in page
// order, so the counters are scheduling-independent (two workers
// racing to parse the same body both insert; the accounting still sees
// exactly one first occurrence). The hit flag is likewise a
// scheduling-dependent observation: it only annotates exemplar spans,
// never metrics.
func (c *progCache) get(body string) (*jsvm.Program, uint64, bool, error) {
	key := stats.HashString(body)
	c.mu.RLock()
	p, ok := c.progs[key]
	c.mu.RUnlock()
	if ok {
		return p, key, true, nil
	}
	p, err := jsvm.Parse(body)
	if err != nil {
		return nil, key, false, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, key, false, nil
}

// crawlMetrics holds the pre-resolved metric handles for one crawl.
// A nil *crawlMetrics is the uninstrumented path; every use is
// guarded, so the bare crawl pays nothing.
type crawlMetrics struct {
	visitsOK, visitsFailed     *obs.Counter
	extractions                *obs.Counter
	scriptsRun, scriptsBlocked *obs.Counter
	scriptErrors, consentSkip  *obs.Counter
	cacheHits, cacheMisses     *obs.Counter
	visitLatency, queueWait    *obs.Histogram
	parseTime, vmSteps         *obs.Histogram
	workerUtil                 *obs.Histogram
	workers                    *obs.Gauge
	// faults holds the resilience-engine metrics; nil unless the crawl
	// runs with a FaultModel, so fault-free runs leave the registry —
	// and therefore run bundles — byte-identical to earlier builds.
	faults *faultMetrics
	// interact holds the interaction-engine counters; nil unless the
	// crawl runs with Config.Interact, under the same bundle-stability
	// contract as faults.
	interact *interactMetrics
}

// faultMetrics are the retry/timeout/circuit-breaker counters the
// resilience engine emits (crawl.retry, crawl.timeout, ...).
type faultMetrics struct {
	retries, timeouts, refused *obs.Counter
	circuitOpen, degraded      *obs.Counter
	backoff, virtual           *obs.Histogram
}

func newFaultMetrics(reg *obs.Registry) *faultMetrics {
	return &faultMetrics{
		retries:     reg.Counter("crawl.retry"),
		timeouts:    reg.Counter("crawl.timeout"),
		refused:     reg.Counter("crawl.refused"),
		circuitOpen: reg.Counter("crawl.circuit-open"),
		degraded:    reg.Counter("crawl.visits.degraded"),
		backoff:     reg.Histogram("crawl.backoff.seconds", obs.LatencyBuckets()),
		virtual:     reg.Histogram("crawl.visit.virtual.seconds", obs.LatencyBuckets()),
	}
}

func newCrawlMetrics(reg *obs.Registry) *crawlMetrics {
	return &crawlMetrics{
		visitsOK:       reg.Counter("crawl.visits.ok"),
		visitsFailed:   reg.Counter("crawl.visits.failed"),
		extractions:    reg.Counter("crawl.extractions"),
		scriptsRun:     reg.Counter("crawl.scripts.executed"),
		scriptsBlocked: reg.Counter("crawl.scripts.blocked"),
		scriptErrors:   reg.Counter("crawl.scripts.errors"),
		consentSkip:    reg.Counter("crawl.scripts.consent_skipped"),
		cacheHits:      reg.Counter("crawl.parsecache.hits"),
		cacheMisses:    reg.Counter("crawl.parsecache.misses"),
		visitLatency:   reg.Histogram("crawl.visit.seconds", obs.LatencyBuckets()),
		queueWait:      reg.Histogram("crawl.queue.wait.seconds", obs.LatencyBuckets()),
		parseTime:      reg.Histogram("crawl.parse.seconds", obs.LatencyBuckets()),
		vmSteps:        reg.Histogram("jsvm.script.steps", obs.StepBuckets()),
		workerUtil:     reg.Histogram("crawl.worker.utilization", obs.RatioBuckets()),
		workers:        reg.Gauge("crawl.workers"),
	}
}

// CacheHitRate returns the parse-cache hit rate over the whole
// registry lifetime and whether any lookups happened. The boolean is
// what separates "0% hit rate" (every lookup missed — the ablation
// path) from "no observations" (nothing ever consulted the cache);
// reports render the latter as n/a, never 0.00. Reading goes through
// a snapshot so asking never registers the counters as a side effect.
func CacheHitRate(reg *obs.Registry) (rate float64, ok bool) {
	snap := reg.Snapshot()
	hits := snap.Counters["crawl.parsecache.hits"]
	misses := snap.Counters["crawl.parsecache.misses"]
	if hits+misses == 0 {
		return 0, false
	}
	return float64(hits) / float64(hits+misses), true
}

// pageDelta is everything one page visit wants to write to shared
// telemetry, buffered privately in the visiting worker and applied by
// the committer in page-index order. The indirection is what makes
// crawl-side metrics, evidence events, and cache accounting byte-
// identical at any worker width — and gives checkpoints an exact cut:
// at a commit boundary the registry and sink contain page [0, n)'s
// writes, all of them, and nothing else.
type pageDelta struct {
	counts []counterDelta
	obsv   []histObs
	events []event.Event
	// parseKeys are the page's parse-cache lookup keys in lookup
	// order; the committer turns them into hit/miss counts against a
	// crawl-global first-seen set.
	parseKeys []uint64
	// forcedMisses counts parses under DisableParseCache (every parse
	// is a miss by definition; no seen-set involved).
	forcedMisses int64
	// snapURLs are the URLs fetched through the snapshot store, for
	// commit-time hit/miss accounting.
	snapURLs []string
	// trace is the visit's span tree when Config.Visits is set; the
	// committer offers it to the reservoir in page order.
	trace *tracez.VisitTrace
}

type counterDelta struct {
	c *obs.Counter
	n int64
}

type histObs struct {
	h *obs.Histogram
	v float64
}

func (d *pageDelta) inc(c *obs.Counter) { d.counts = append(d.counts, counterDelta{c, 1}) }

func (d *pageDelta) add(c *obs.Counter, n int64) {
	if n > 0 {
		d.counts = append(d.counts, counterDelta{c, n})
	}
}

func (d *pageDelta) observe(h *obs.Histogram, v float64) {
	d.obsv = append(d.obsv, histObs{h, v})
}

func (d *pageDelta) observeDuration(h *obs.Histogram, dur time.Duration) {
	d.observe(h, dur.Seconds())
}

func (d *pageDelta) record(e event.Event) { d.events = append(d.events, e) }

// apply replays the delta into the shared telemetry. Runs only on the
// committer goroutine, one page at a time, in page order.
func (d *pageDelta) apply(mx *crawlMetrics, evs *event.Sink, snaps SnapshotStore, seen map[uint64]bool, seenOrder *[]uint64) {
	for _, cd := range d.counts {
		cd.c.Add(cd.n)
	}
	for _, ob := range d.obsv {
		ob.h.Observe(ob.v)
	}
	if mx != nil {
		for _, k := range d.parseKeys {
			if seen[k] {
				mx.cacheHits.Inc()
			} else {
				seen[k] = true
				*seenOrder = append(*seenOrder, k)
				mx.cacheMisses.Inc()
			}
		}
		mx.cacheMisses.Add(d.forcedMisses)
	}
	for _, e := range d.events {
		evs.Record(e)
	}
	if snaps != nil && len(d.snapURLs) > 0 {
		snaps.Account(d.snapURLs)
	}
}

// job is one queued page visit; At carries the enqueue time when the
// crawl is instrumented (zero otherwise).
type job struct {
	i  int
	at time.Time
}

// visitDone carries one finished visit from a worker to the committer.
type visitDone struct {
	i  int
	pr *PageResult
	d  *pageDelta
}

// Crawl visits the given sites of w and returns per-page results.
//
// Workers only compute: each visit buffers its telemetry into a
// private pageDelta. A single committer goroutine applies results in
// page-index order — metrics, evidence events, parse-cache and
// snapshot accounting all land as if the crawl had run serially, at
// any pool width. Config.OnCommit observes the committed frontier for
// checkpointing and may stop the crawl; Config.Resume restarts one
// from a committed prefix.
func Crawl(w *web.Web, sites []*web.Site, cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Profile == nil {
		cfg.Profile = machine.Intel()
	}
	if cfg.MaxStepsPerScript <= 0 {
		cfg.MaxStepsPerScript = 20_000_000
	}
	if cfg.CommitEvery <= 0 {
		cfg.CommitEvery = 64
	}
	if cfg.Faults != nil {
		if cfg.Retries <= 0 {
			cfg.Retries = 3
		}
		if cfg.VisitTimeout <= 0 {
			cfg.VisitTimeout = 5 * time.Second
		}
		if cfg.BackoffBase <= 0 {
			cfg.BackoffBase = 500 * time.Millisecond
		}
		if cfg.BackoffCap <= 0 {
			cfg.BackoffCap = 8 * time.Second
		}
		if cfg.BreakerThreshold <= 0 {
			cfg.BreakerThreshold = 3
		}
	}
	res := &Result{
		Pages:   make([]*PageResult, len(sites)),
		Machine: cfg.Profile.Name,
	}
	if cfg.Extension != nil {
		res.Extension = cfg.Extension.Name()
	}
	var mx *crawlMetrics
	var evs *event.Sink
	var st *obs.Status // live frontier for /statusz; nil-safe, outside the registry
	if cfg.Telemetry != nil {
		mx = newCrawlMetrics(cfg.Telemetry.Metrics)
		mx.workers.Set(int64(cfg.Workers))
		if cfg.Faults != nil {
			mx.faults = newFaultMetrics(cfg.Telemetry.Metrics)
		}
		if cfg.Interact {
			mx.interact = newInteractMetrics(cfg.Telemetry.Metrics)
		}
		evs = cfg.Telemetry.Events
		st = cfg.Telemetry.Status
	}

	// Resume: replay the committed prefix verbatim and start the pool
	// at the frontier. The prefix's metrics/events live in the
	// checkpoint the caller restored; only the parse-cache seen-set
	// cursor transfers here.
	frontier := 0
	var resumeSeen []uint64
	if cfg.Resume != nil {
		frontier = len(cfg.Resume.Pages)
		if frontier > len(sites) {
			frontier = len(sites)
		}
		copy(res.Pages, cfg.Resume.Pages[:frontier])
		resumeSeen = cfg.Resume.ParseSeen
	}
	st.CrawlProgress(cfg.Condition, frontier, len(sites), false)

	cache := &progCache{progs: map[uint64]*jsvm.Program{}}
	jobs := make(chan job)
	results := make(chan visitDone, cfg.Workers)
	// stop is closed by the committer when OnCommit asks to halt; the
	// feeder drains out and the pool winds down normally.
	stop := make(chan struct{})

	var commitWG sync.WaitGroup
	commitWG.Add(1)
	go func() {
		defer commitWG.Done()
		pending := map[int]visitDone{}
		next := frontier
		seen := make(map[uint64]bool, len(resumeSeen))
		seenOrder := append([]uint64(nil), resumeSeen...)
		for _, k := range resumeSeen {
			seen[k] = true
		}
		sinceCommit := 0
		stopped := false
		commitState := func(final bool) CommitState {
			return CommitState{
				Condition: cfg.Condition,
				Frontier:  next,
				Total:     len(sites),
				Pages:     res.Pages[:next],
				ParseSeen: seenOrder,
				Final:     final,
			}
		}
		for r := range results {
			if stopped {
				continue // drain; post-stop pages are discarded uncommitted
			}
			pending[r.i] = r
			for {
				nr, ok := pending[next]
				if !ok {
					break
				}
				delete(pending, next)
				res.Pages[next] = nr.pr
				nr.d.apply(mx, evs, cfg.Snapshots, seen, &seenOrder)
				// Exemplar offers ride the ordered-commit point too, so
				// the reservoir sees visits in page order at any width.
				if cfg.Visits != nil && nr.d.trace != nil {
					cfg.Visits.Offer(nr.d.trace)
				}
				next++
				sinceCommit++
				st.CrawlProgress(cfg.Condition, next, len(sites), false)
				if cfg.OnCommit != nil && sinceCommit >= cfg.CommitEvery && next < len(sites) {
					sinceCommit = 0
					if cfg.OnCommit(commitState(false)) {
						stopped = true
						close(stop)
						break
					}
				}
			}
		}
		res.Frontier = next
		res.Interrupted = stopped
		st.CrawlProgress(cfg.Condition, next, len(sites), !stopped)
		if cfg.OnCommit != nil && !stopped {
			// The completion commit runs after every worker has exited
			// (results is closed post wg.Wait), so pool-level metrics
			// like worker utilization are in the registry by now.
			cfg.OnCommit(commitState(next == len(sites)))
		}
	}()

	var wg sync.WaitGroup
	crawlStart := time.Now()
	for k := 0; k < cfg.Workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var busy time.Duration
			for j := range jobs {
				var t0 time.Time
				if mx != nil {
					t0 = time.Now()
				}
				pr, d := visit(w, sites[j.i], j.i+cfg.PageIndexOffset, cfg, cache, mx, evs)
				if mx != nil {
					el := time.Since(t0)
					busy += el
					d.observe(mx.queueWait, t0.Sub(j.at).Seconds())
					d.observeDuration(mx.visitLatency, el)
				}
				results <- visitDone{i: j.i, pr: pr, d: d}
			}
			if mx != nil {
				// Utilization is observed directly: its sample count is
				// deterministic (one per worker) and it must not wait on
				// the page-commit order — a worker's last page may still
				// be pending when the worker exits.
				if wall := time.Since(crawlStart); wall > 0 {
					mx.workerUtil.Observe(busy.Seconds() / wall.Seconds())
				}
			}
		}()
	}
feed:
	for i := frontier; i < len(sites); i++ {
		j := job{i: i}
		if mx != nil {
			j.at = time.Now()
		}
		select {
		case jobs <- j:
		case <-stop:
			break feed
		}
	}
	close(jobs)
	wg.Wait()
	close(results)
	commitWG.Wait()
	return res
}

// visit performs one page load. All shared-telemetry writes are
// buffered into the returned pageDelta; the committer applies them in
// page-index order. idx is the page index within the crawl — the
// deterministic identity exemplar span trees carry.
func visit(w *web.Web, site *web.Site, idx int, cfg Config, cache *progCache, mx *crawlMetrics, evs *event.Sink) (*PageResult, *pageDelta) {
	d := &pageDelta{}
	pr := &PageResult{
		Domain:        site.Domain,
		Rank:          site.Rank,
		Cohort:        site.Cohort,
		OK:            site.CrawlOK,
		ScriptMethods: map[string]map[string]bool{},
		ScriptErrors:  map[string]string{},
	}
	// vb builds the visit's span tree when exemplar capture is on. It
	// buffers into the delta like everything else a worker observes;
	// the committer offers the finished tree in page order.
	var vb *tracez.Builder
	finishTrace := func(outcome string) {
		if vb != nil {
			d.trace = vb.Finish(outcome)
		}
	}
	if cfg.Visits != nil {
		vb = tracez.NewVisit(cfg.Condition, site.Domain, site.Rank, idx)
	}
	if !site.CrawlOK {
		pr.FailReason = FailUnreachable
		if mx != nil {
			d.inc(mx.visitsFailed)
		}
		if cfg.Faults != nil {
			recordVisitOutcome(d, evs, &cfg, site, FailUnreachable, netsim.FaultNone, 0)
		}
		finishTrace(FailUnreachable)
		return pr, d
	}
	// The connection phase: under fault injection the visit must first
	// survive the network — retries, timeouts, and the circuit breaker
	// all happen here, before any script runs.
	truncate := 1.0
	attempts := 1
	planKind := netsim.FaultNone
	if cfg.Faults != nil {
		planKind = cfg.Faults.PlanFor(site.Domain).Kind
		var connSp *tracez.Span
		if vb != nil {
			connSp = vb.Open(vb.Root(), "connect")
		}
		var reason string
		truncate, reason, attempts = connect(site.Domain, &cfg, mx, d)
		if connSp != nil {
			// Attempts are the connection phase's deterministic cost:
			// a function of (seed, site), never of scheduling.
			connSp.Cost = int64(attempts)
			if planKind != netsim.FaultNone {
				connSp.SetLabel("fault", planKind.String())
			}
			if attempts > 1 {
				connSp.SetLabel("retries", fmt.Sprint(attempts-1))
			}
			vb.Close(connSp)
		}
		if reason != "" {
			pr.OK = false
			pr.FailReason = reason
			if mx != nil {
				d.inc(mx.visitsFailed)
			}
			recordVisitOutcome(d, evs, &cfg, site, reason, planKind, attempts)
			finishTrace(reason)
			return pr, d
		}
	}
	if mx != nil {
		d.inc(mx.visitsOK)
	}
	in := jsvm.New(jsvm.Options{
		MaxSteps: cfg.MaxStepsPerScript,
		RandSeed: cfg.Seed ^ stats.HashString("page:"+site.Domain),
	})
	doc := dom.NewDocument(cfg.Profile, site.Domain)
	if cfg.ExtractHookFor != nil {
		doc.ExtractHook = cfg.ExtractHookFor(site.Domain)
	} else if cfg.ExtractHook != nil {
		doc.ExtractHook = cfg.ExtractHook
	}

	seq := 0
	currentScript := ""
	doc.Tracer = canvas.TracerFunc(func(iface, member string, args []string, ret string) {
		seq++
		ms := pr.ScriptMethods[currentScript]
		if ms == nil {
			ms = map[string]bool{}
			pr.ScriptMethods[currentScript] = ms
		}
		ms[member] = true
		if member == "toDataURL" && ret != "" {
			pr.Extractions = append(pr.Extractions, Extraction{
				ScriptURL: currentScript,
				DataURL:   ret,
				Seq:       seq,
			})
		}
		if cfg.KeepRecords {
			pr.Records = append(pr.Records, Record{
				ScriptURL: currentScript,
				Iface:     iface,
				Member:    member,
				Args:      args,
				Ret:       ret,
				Seq:       seq,
			})
		}
	})
	doc.Install(in)

	// A truncated load serves only the first `served` of the page's
	// script tags; the rest never arrive. The page is NOT dropped — the
	// canvas calls its surviving scripts make are recorded as usual
	// (graceful degradation), with the missing tags noted as errors.
	served := len(site.Scripts)
	if truncate < 1 {
		served = int(math.Ceil(truncate * float64(len(site.Scripts))))
		if served < len(site.Scripts) {
			pr.Degraded = true
		}
	}

	runScript := func(ps web.PageScript, truncated bool) {
		// Per-script span: fetch → parse → exec children, with a
		// virtual canvas child accounting the script's canvas calls.
		var ssp *tracez.Span
		closeScript := func() {
			if ssp != nil {
				vb.Close(ssp)
			}
		}
		if vb != nil {
			ssp = vb.Open(vb.Root(), "script")
			ssp.SetLabel("url", ps.URL.String())
		}
		if truncated {
			pr.ScriptErrors[ps.URL.String()] = "fetch: truncated response"
			if mx != nil {
				d.inc(mx.scriptErrors)
			}
			if ssp != nil {
				ssp.SetLabel("truncated", "true")
			}
			closeScript()
			return
		}
		if ps.NeedsConsent && !cfg.AutoConsent {
			if mx != nil {
				d.inc(mx.consentSkip)
			}
			if ssp != nil {
				ssp.SetLabel("consent", "skipped")
			}
			closeScript()
			return // banner never accepted: gated tag stays dormant
		}
		req := blocklist.Request{
			URL:        ps.URL.String(),
			Type:       blocklist.TypeScript,
			PageHost:   site.Domain,
			ThirdParty: !netsim.SameSite(ps.URL.Host, site.Domain),
		}
		if cfg.Extension != nil && cfg.Extension.BlockScript(req) {
			pr.BlockedScripts = append(pr.BlockedScripts, req.URL)
			if mx != nil {
				d.inc(mx.scriptsBlocked)
			}
			if evs != nil {
				list, rule := "", ""
				if ex, ok := cfg.Extension.(BlockExplainer); ok {
					list, rule = ex.ExplainBlock(req)
				}
				d.record(event.Event{
					Kind:     event.BlocklistMatch,
					Crawl:    cfg.Condition,
					Site:     site.Domain,
					Subject:  req.URL,
					Verdict:  "blocked",
					Evidence: rule,
					Detail:   list,
				})
			}
			if ssp != nil {
				ssp.SetLabel("blocked", "true")
			}
			closeScript()
			return
		}
		var fetchSp *tracez.Span
		if ssp != nil {
			fetchSp = vb.Open(ssp, "fetch")
		}
		body, snapHit, err := fetchBody(w, ps.URL, cfg.Snapshots, d)
		if fetchSp != nil {
			// Body bytes are the fetch's deterministic cost.
			fetchSp.Cost = int64(len(body))
			if cfg.Snapshots != nil && err == nil {
				// Whether THIS crawl's worker hit the snapshot store is
				// scheduling-dependent: label only, never selection.
				fetchSp.SetLabel("snapshot", map[bool]string{true: "hit", false: "miss"}[snapHit])
			}
			vb.Close(fetchSp)
		}
		if err != nil {
			pr.ScriptErrors[req.URL] = fmt.Sprintf("fetch: %v", err)
			if mx != nil {
				d.inc(mx.scriptErrors)
			}
			if ssp != nil {
				ssp.SetLabel("error", "fetch")
			}
			closeScript()
			return
		}
		var prog *jsvm.Program
		var parseStart time.Time
		if mx != nil {
			parseStart = time.Now()
		}
		var parseSp *tracez.Span
		if ssp != nil {
			parseSp = vb.Open(ssp, "parse")
			parseSp.Cost = int64(len(body))
		}
		if cfg.DisableParseCache {
			prog, err = jsvm.Parse(body)
			if mx != nil {
				// Ablation parses bypass the cache: a miss every time.
				d.forcedMisses++
			}
			if parseSp != nil {
				parseSp.SetLabel("cache", "off")
			}
		} else {
			var key uint64
			var cached bool
			prog, key, cached, err = cache.get(body)
			if mx != nil {
				if err != nil {
					// Parse errors are never cached, so every lookup of an
					// unparseable body misses — keep them out of the
					// seen-set or repeats would count as hits.
					d.forcedMisses++
				} else {
					d.parseKeys = append(d.parseKeys, key)
				}
			}
			if parseSp != nil {
				// Which worker parses first races across widths: exemplar
				// annotation only, excluded from selection.
				parseSp.SetLabel("cache", map[bool]string{true: "hit", false: "miss"}[cached])
			}
		}
		if parseSp != nil {
			vb.Close(parseSp)
		}
		if mx != nil {
			d.observeDuration(mx.parseTime, time.Since(parseStart))
		}
		if err != nil {
			pr.ScriptErrors[req.URL] = err.Error()
			if ssp != nil {
				ssp.SetLabel("error", "parse")
			}
			closeScript()
			return
		}
		prev := currentScript
		currentScript = req.URL
		// Handlers and timers this script registers attribute back to
		// it when they fire at settle or under interaction.
		doc.SetScriptOwner(req.URL)
		in.ResetSteps()
		seqBefore := seq
		var execSp *tracez.Span
		if ssp != nil {
			execSp = vb.Open(ssp, "exec")
		}
		if _, err := in.Run(prog); err != nil {
			pr.ScriptErrors[req.URL] = err.Error()
			if mx != nil {
				d.inc(mx.scriptErrors)
			}
			if execSp != nil {
				execSp.SetLabel("error", "exec")
			}
		}
		if execSp != nil {
			// Interpreter steps are the dominant deterministic cost.
			execSp.Cost = int64(in.Steps())
			vb.Close(execSp)
			if calls := seq - seqBefore; calls > 0 {
				// Virtual child: canvas-call accounting. Wall stays zero
				// (calls happen inside exec); cost carries the weight.
				canvasSp := vb.Open(execSp, "canvas")
				canvasSp.Cost = int64(calls)
				canvasSp.Off = execSp.Off
			}
		}
		if mx != nil {
			d.inc(mx.scriptsRun)
			d.observe(mx.vmSteps, float64(in.Steps()))
		}
		currentScript = prev
		doc.SetScriptOwner(prev)
		closeScript()
	}

	// First pass: immediate scripts; second pass: scroll-gated scripts.
	for i, ps := range site.Scripts {
		if !ps.OnScroll {
			runScript(ps, i >= served)
		}
	}
	if cfg.Scroll {
		for i, ps := range site.Scripts {
			if ps.OnScroll {
				runScript(ps, i >= served)
			}
		}
	}
	if cfg.VisitInnerPages {
		for _, ps := range site.InnerScripts {
			runScript(ps, false)
		}
	}
	// Page-settle: drain queued timers (always), then drive the site's
	// behaviour profile against the handler registry (Interact only).
	var interactSp *tracez.Span
	if vb != nil && cfg.Interact {
		interactSp = vb.Open(vb.Root(), "interact")
	}
	var imx *interactMetrics
	if mx != nil {
		imx = mx.interact
	}
	callbacks := settlePage(doc, in, site, &cfg, d, evs, imx, func(u string) { currentScript = u })
	if interactSp != nil {
		// Callback count is the phase's deterministic cost: a function
		// of (seed, site, web), never of scheduling.
		interactSp.Cost = int64(callbacks)
		interactSp.SetLabel("callbacks", fmt.Sprint(callbacks))
		vb.Close(interactSp)
	}
	sort.Slice(pr.Extractions, func(i, j int) bool { return pr.Extractions[i].Seq < pr.Extractions[j].Seq })
	if mx != nil {
		d.add(mx.extractions, int64(len(pr.Extractions)))
	}
	outcome := "ok"
	if pr.Degraded {
		outcome = "degraded"
	}
	if cfg.Faults != nil {
		if pr.Degraded && mx != nil && mx.faults != nil {
			d.inc(mx.faults.degraded)
		}
		recordVisitOutcome(d, evs, &cfg, site, outcome, planKind, attempts)
	}
	if vb != nil {
		root := vb.Root()
		if pr.Degraded {
			root.SetLabel("degraded", "true")
		}
		if n := len(pr.Extractions); n > 0 {
			root.SetLabel("extractions", fmt.Sprint(n))
		}
		root.SetLabel("scripts", fmt.Sprint(len(site.Scripts)))
	}
	finishTrace(outcome)
	return pr, d
}

// fetchBody retrieves one script body, through the snapshot store when
// one is configured. Successful snapshot reads are noted in the delta
// so the committer can account hits/misses in page order. The hit flag
// reports whether the store already held the body (always false
// without a store); it annotates exemplar spans only — commit-time
// accounting stays the deterministic authority.
func fetchBody(w *web.Web, u netsim.URL, snaps SnapshotStore, d *pageDelta) (string, bool, error) {
	if snaps == nil {
		r, err := w.Store.Fetch(u)
		if err != nil {
			return "", false, err
		}
		return r.Body, false, nil
	}
	fetched := false
	body, err := snaps.Fetch(u, func() (string, error) {
		fetched = true
		r, err := w.Store.Fetch(u)
		if err != nil {
			return "", err
		}
		return r.Body, nil
	})
	if err != nil {
		return "", false, err
	}
	d.snapURLs = append(d.snapURLs, u.String())
	return body, !fetched, nil
}

// recordVisitOutcome buffers the visit.outcome evidence event: how the
// visit ended, under which fault plan, after how many attempts. The
// attempts value counts tries, not retries: a first-try success is
// attempts=1, and attempts=0 appears only when no connection was ever
// tried (unreachable site, or a circuit that was already open). Only
// fault-injected crawls record these, so fault-free bundles stay
// identical to pre-resilience builds.
func recordVisitOutcome(d *pageDelta, evs *event.Sink, cfg *Config, site *web.Site, verdict string, kind netsim.FaultKind, attempts int) {
	if evs == nil {
		return
	}
	d.record(event.Event{
		Kind:     event.VisitOutcome,
		Crawl:    cfg.Condition,
		Site:     site.Domain,
		Verdict:  verdict,
		Evidence: kind.String(),
		Detail:   fmt.Sprintf("attempts=%d", attempts),
	})
}
