// Package crawler is the instrumented crawler (the Tracker Radar
// Collector analog, §3.1): it visits pages with a worker pool, executes
// their scripts in the jsvm against an instrumented DOM, simulates
// consent-banner acceptance and scrolling, supports ad-blocker
// extensions, and records every Canvas API interaction with script
// attribution.
package crawler

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"canvassing/internal/blocklist"
	"canvassing/internal/canvas"
	"canvassing/internal/dom"
	"canvassing/internal/jsvm"
	"canvassing/internal/machine"
	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/stats"
	"canvassing/internal/web"
)

// Extraction is one canvas extraction event (a toDataURL return).
type Extraction struct {
	// ScriptURL is the page script whose execution produced the
	// extraction (a first-party bundle attributes to the bundle URL,
	// exactly as a real crawler would see it).
	ScriptURL string
	// DataURL is the full extracted value.
	DataURL string
	// Seq orders events within the page visit.
	Seq int
}

// Record is one raw Canvas API call record (optional, Config.KeepRecords).
type Record struct {
	ScriptURL string
	Iface     string
	Member    string
	Args      []string
	Ret       string
	Seq       int
}

// PageResult is the outcome of one page visit.
type PageResult struct {
	Domain string
	Rank   int
	Cohort web.Cohort
	// OK is false when the site could not be crawled.
	OK bool
	// FailReason explains OK == false: "unreachable" (the site was
	// never servable), "refused", "timeout", or "circuit-open" (see the
	// Fail* constants). Empty for successful visits.
	FailReason string `json:",omitempty"`
	// Degraded marks a partially loaded page: fault injection truncated
	// the resource stream, but the canvas calls the surviving scripts
	// made are still recorded instead of the page being dropped.
	Degraded bool `json:",omitempty"`
	// Extractions lists canvas extraction events in order.
	Extractions []Extraction
	// ScriptMethods maps script URL → set of context/canvas members the
	// script invoked (the detection heuristics consume this).
	ScriptMethods map[string]map[string]bool
	// BlockedScripts lists script URLs an extension blocked.
	BlockedScripts []string
	// ScriptErrors maps script URL → error text for scripts that failed.
	ScriptErrors map[string]string
	// Records holds raw API records when Config.KeepRecords is set.
	Records []Record
}

// Result is a whole crawl.
type Result struct {
	// Pages are per-site results in input order.
	Pages []*PageResult
	// Machine names the profile the crawl ran on.
	Machine string
	// Extension names the ad blocker in use ("" for control).
	Extension string
}

// SuccessfulPages returns pages that crawled OK.
func (r *Result) SuccessfulPages() []*PageResult {
	var out []*PageResult
	for _, p := range r.Pages {
		if p.OK {
			out = append(out, p)
		}
	}
	return out
}

// Extension is an ad-blocker browser extension observing requests.
type Extension interface {
	// Name identifies the extension for reports.
	Name() string
	// BlockScript decides whether a script request is blocked. The
	// extension sees the request URL as the page references it (CNAME
	// cloaking is invisible here, as in a real browser).
	BlockScript(req blocklist.Request) bool
}

// BlockExplainer is an optional Extension capability: after BlockScript
// returns true, ExplainBlock names the filter list and the matching
// rule so block decisions carry evidence in the event log. Extensions
// without it still work; their block events just lack the rule.
type BlockExplainer interface {
	ExplainBlock(req blocklist.Request) (list, rule string)
}

// Config controls a crawl.
type Config struct {
	// Workers sets the worker-pool width; <=0 selects 8.
	Workers int
	// Profile is the machine the crawl renders on (nil → Intel).
	Profile *machine.Profile
	// Extension is the installed ad blocker (nil → control crawl).
	Extension Extension
	// ExtractHook, when non-nil, installs a canvas-randomization defense
	// on every page (§5.3 experiments).
	ExtractHook canvas.ExtractHook
	// AutoConsent opts into consent banners, as the paper's crawler does
	// with the autoconsent library. When false, consent-gated scripts
	// never run.
	AutoConsent bool
	// Scroll simulates scrolling, triggering lazy scripts. The paper's
	// crawler scrolls and waits five seconds.
	Scroll bool
	// VisitInnerPages also follows the site's /login inner page after
	// the homepage — the paper's crawler deliberately does NOT (§3.2
	// limitation); the EX2 extension experiment flips this on.
	VisitInnerPages bool
	// KeepRecords retains raw API call records (memory-heavy).
	KeepRecords bool
	// MaxStepsPerScript bounds each script's execution; <=0 → 20M
	// (hashing sixty data URLs in script, as the heaviest audit pages
	// do, costs several million interpreter steps).
	MaxStepsPerScript int
	// Seed decorrelates Math.random across crawls.
	Seed uint64
	// DisableParseCache forces re-parsing every script body on every
	// page (ablation benchmark).
	DisableParseCache bool
	// Telemetry, when non-nil, receives crawl metrics: visit latency,
	// queue wait, worker utilization, script outcome counters,
	// parse-cache effectiveness, and jsvm step usage. Nil runs the
	// bare, uninstrumented path.
	Telemetry *obs.Telemetry
	// Condition labels this crawl in the evidence event log ("control",
	// "abp", "demo", ...) so bundle diffs can align per-condition
	// decisions across runs. Empty is fine for unlabeled crawls.
	Condition string
	// Faults injects deterministic network failures into every visit
	// (nil disables injection; the crawl then behaves exactly as it did
	// before the resilience engine existed).
	Faults *netsim.FaultModel
	// Retries caps re-attempts after a failed visit attempt
	// (<=0 selects 3 when Faults is set).
	Retries int
	// VisitTimeout is the virtual per-attempt deadline an attempt's
	// simulated latency is compared against (<=0 selects 5s).
	VisitTimeout time.Duration
	// BackoffBase and BackoffCap bound the exponential retry backoff
	// (<=0 selects 500ms and 8s).
	BackoffBase, BackoffCap time.Duration
	// BreakerThreshold opens the per-site circuit after that many
	// consecutive failed attempts (<=0 selects 3; set above Retries to
	// effectively disable the breaker).
	BreakerThreshold int
	// Sleep, when non-nil, receives each computed backoff delay. The
	// simulation keeps time virtual by default (nil: delays are only
	// recorded, never slept), so faulted crawls run at full speed; a
	// real deployment would pass time.Sleep.
	Sleep func(time.Duration)
}

// DefaultConfig returns the paper's crawl configuration: consent
// acceptance, scrolling, no extension, Intel machine.
func DefaultConfig() Config {
	return Config{
		Workers:     8,
		Profile:     machine.Intel(),
		AutoConsent: true,
		Scroll:      true,
		Seed:        1,
	}
}

// progCache memoizes parsed programs across page visits. Vendor scripts
// are byte-identical across thousands of sites, so parsing each body once
// cuts crawl time severalfold; execution state lives entirely in the
// per-page interpreter, so sharing the AST is safe.
type progCache struct {
	mu    sync.RWMutex
	progs map[uint64]*jsvm.Program
}

// get returns the parsed program for body and whether it was a cache
// hit.
func (c *progCache) get(body string) (*jsvm.Program, bool, error) {
	key := stats.HashString(body)
	c.mu.RLock()
	p, ok := c.progs[key]
	c.mu.RUnlock()
	if ok {
		return p, true, nil
	}
	p, err := jsvm.Parse(body)
	if err != nil {
		return nil, false, err
	}
	c.mu.Lock()
	c.progs[key] = p
	c.mu.Unlock()
	return p, false, nil
}

// crawlMetrics holds the pre-resolved metric handles for one crawl.
// A nil *crawlMetrics is the uninstrumented path; every use is
// guarded, so the bare crawl pays nothing.
type crawlMetrics struct {
	visitsOK, visitsFailed     *obs.Counter
	extractions                *obs.Counter
	scriptsRun, scriptsBlocked *obs.Counter
	scriptErrors, consentSkip  *obs.Counter
	cacheHits, cacheMisses     *obs.Counter
	visitLatency, queueWait    *obs.Histogram
	parseTime, vmSteps         *obs.Histogram
	workerUtil                 *obs.Histogram
	workers                    *obs.Gauge
	// faults holds the resilience-engine metrics; nil unless the crawl
	// runs with a FaultModel, so fault-free runs leave the registry —
	// and therefore run bundles — byte-identical to earlier builds.
	faults *faultMetrics
}

// faultMetrics are the retry/timeout/circuit-breaker counters the
// resilience engine emits (crawl.retry, crawl.timeout, ...).
type faultMetrics struct {
	retries, timeouts, refused *obs.Counter
	circuitOpen, degraded      *obs.Counter
	backoff, virtual           *obs.Histogram
}

func newFaultMetrics(reg *obs.Registry) *faultMetrics {
	return &faultMetrics{
		retries:     reg.Counter("crawl.retry"),
		timeouts:    reg.Counter("crawl.timeout"),
		refused:     reg.Counter("crawl.refused"),
		circuitOpen: reg.Counter("crawl.circuit-open"),
		degraded:    reg.Counter("crawl.visits.degraded"),
		backoff:     reg.Histogram("crawl.backoff.seconds", obs.LatencyBuckets()),
		virtual:     reg.Histogram("crawl.visit.virtual.seconds", obs.LatencyBuckets()),
	}
}

func newCrawlMetrics(reg *obs.Registry) *crawlMetrics {
	return &crawlMetrics{
		visitsOK:       reg.Counter("crawl.visits.ok"),
		visitsFailed:   reg.Counter("crawl.visits.failed"),
		extractions:    reg.Counter("crawl.extractions"),
		scriptsRun:     reg.Counter("crawl.scripts.executed"),
		scriptsBlocked: reg.Counter("crawl.scripts.blocked"),
		scriptErrors:   reg.Counter("crawl.scripts.errors"),
		consentSkip:    reg.Counter("crawl.scripts.consent_skipped"),
		cacheHits:      reg.Counter("crawl.parsecache.hits"),
		cacheMisses:    reg.Counter("crawl.parsecache.misses"),
		visitLatency:   reg.Histogram("crawl.visit.seconds", obs.LatencyBuckets()),
		queueWait:      reg.Histogram("crawl.queue.wait.seconds", obs.LatencyBuckets()),
		parseTime:      reg.Histogram("crawl.parse.seconds", obs.LatencyBuckets()),
		vmSteps:        reg.Histogram("jsvm.script.steps", obs.StepBuckets()),
		workerUtil:     reg.Histogram("crawl.worker.utilization", obs.RatioBuckets()),
		workers:        reg.Gauge("crawl.workers"),
	}
}

// CacheHitRate returns the parse-cache hit rate over the whole
// registry lifetime (0 when no lookups happened).
func CacheHitRate(reg *obs.Registry) float64 {
	hits := reg.Counter("crawl.parsecache.hits").Value()
	misses := reg.Counter("crawl.parsecache.misses").Value()
	if hits+misses == 0 {
		return 0
	}
	return float64(hits) / float64(hits+misses)
}

// job is one queued page visit; At carries the enqueue time when the
// crawl is instrumented (zero otherwise).
type job struct {
	i  int
	at time.Time
}

// Crawl visits the given sites of w and returns per-page results.
func Crawl(w *web.Web, sites []*web.Site, cfg Config) *Result {
	if cfg.Workers <= 0 {
		cfg.Workers = 8
	}
	if cfg.Profile == nil {
		cfg.Profile = machine.Intel()
	}
	if cfg.MaxStepsPerScript <= 0 {
		cfg.MaxStepsPerScript = 20_000_000
	}
	if cfg.Faults != nil {
		if cfg.Retries <= 0 {
			cfg.Retries = 3
		}
		if cfg.VisitTimeout <= 0 {
			cfg.VisitTimeout = 5 * time.Second
		}
		if cfg.BackoffBase <= 0 {
			cfg.BackoffBase = 500 * time.Millisecond
		}
		if cfg.BackoffCap <= 0 {
			cfg.BackoffCap = 8 * time.Second
		}
		if cfg.BreakerThreshold <= 0 {
			cfg.BreakerThreshold = 3
		}
	}
	res := &Result{
		Pages:   make([]*PageResult, len(sites)),
		Machine: cfg.Profile.Name,
	}
	if cfg.Extension != nil {
		res.Extension = cfg.Extension.Name()
	}
	var mx *crawlMetrics
	var evs *event.Sink
	if cfg.Telemetry != nil {
		mx = newCrawlMetrics(cfg.Telemetry.Metrics)
		mx.workers.Set(int64(cfg.Workers))
		if cfg.Faults != nil {
			mx.faults = newFaultMetrics(cfg.Telemetry.Metrics)
		}
		evs = cfg.Telemetry.Events
	}
	cache := &progCache{progs: map[uint64]*jsvm.Program{}}
	var wg sync.WaitGroup
	jobs := make(chan job)
	crawlStart := time.Now()
	for k := 0; k < cfg.Workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var busy time.Duration
			for j := range jobs {
				var t0 time.Time
				if mx != nil {
					t0 = time.Now()
					mx.queueWait.ObserveDuration(t0.Sub(j.at))
				}
				res.Pages[j.i] = visit(w, sites[j.i], cfg, cache, mx, evs)
				if mx != nil {
					d := time.Since(t0)
					busy += d
					mx.visitLatency.ObserveDuration(d)
				}
			}
			if mx != nil {
				if wall := time.Since(crawlStart); wall > 0 {
					mx.workerUtil.Observe(busy.Seconds() / wall.Seconds())
				}
			}
		}()
	}
	for i := range sites {
		j := job{i: i}
		if mx != nil {
			j.at = time.Now()
		}
		jobs <- j
	}
	close(jobs)
	wg.Wait()
	return res
}

// visit performs one page load.
func visit(w *web.Web, site *web.Site, cfg Config, cache *progCache, mx *crawlMetrics, evs *event.Sink) *PageResult {
	pr := &PageResult{
		Domain:        site.Domain,
		Rank:          site.Rank,
		Cohort:        site.Cohort,
		OK:            site.CrawlOK,
		ScriptMethods: map[string]map[string]bool{},
		ScriptErrors:  map[string]string{},
	}
	if !site.CrawlOK {
		pr.FailReason = FailUnreachable
		if mx != nil {
			mx.visitsFailed.Inc()
		}
		if cfg.Faults != nil {
			recordVisitOutcome(evs, &cfg, site, FailUnreachable, netsim.FaultNone, 0)
		}
		return pr
	}
	// The connection phase: under fault injection the visit must first
	// survive the network — retries, timeouts, and the circuit breaker
	// all happen here, before any script runs.
	truncate := 1.0
	attempts := 1
	planKind := netsim.FaultNone
	if cfg.Faults != nil {
		planKind = cfg.Faults.PlanFor(site.Domain).Kind
		var reason string
		truncate, reason, attempts = connect(site.Domain, &cfg, mx)
		if reason != "" {
			pr.OK = false
			pr.FailReason = reason
			if mx != nil {
				mx.visitsFailed.Inc()
			}
			recordVisitOutcome(evs, &cfg, site, reason, planKind, attempts)
			return pr
		}
	}
	if mx != nil {
		mx.visitsOK.Inc()
	}
	in := jsvm.New(jsvm.Options{
		MaxSteps: cfg.MaxStepsPerScript,
		RandSeed: cfg.Seed ^ stats.HashString("page:"+site.Domain),
	})
	doc := dom.NewDocument(cfg.Profile, site.Domain)
	if cfg.ExtractHook != nil {
		doc.ExtractHook = cfg.ExtractHook
	}

	seq := 0
	currentScript := ""
	doc.Tracer = canvas.TracerFunc(func(iface, member string, args []string, ret string) {
		seq++
		ms := pr.ScriptMethods[currentScript]
		if ms == nil {
			ms = map[string]bool{}
			pr.ScriptMethods[currentScript] = ms
		}
		ms[member] = true
		if member == "toDataURL" && ret != "" {
			pr.Extractions = append(pr.Extractions, Extraction{
				ScriptURL: currentScript,
				DataURL:   ret,
				Seq:       seq,
			})
		}
		if cfg.KeepRecords {
			pr.Records = append(pr.Records, Record{
				ScriptURL: currentScript,
				Iface:     iface,
				Member:    member,
				Args:      args,
				Ret:       ret,
				Seq:       seq,
			})
		}
	})
	doc.Install(in)

	// A truncated load serves only the first `served` of the page's
	// script tags; the rest never arrive. The page is NOT dropped — the
	// canvas calls its surviving scripts make are recorded as usual
	// (graceful degradation), with the missing tags noted as errors.
	served := len(site.Scripts)
	if truncate < 1 {
		served = int(math.Ceil(truncate * float64(len(site.Scripts))))
		if served < len(site.Scripts) {
			pr.Degraded = true
		}
	}

	runScript := func(ps web.PageScript, truncated bool) {
		if truncated {
			pr.ScriptErrors[ps.URL.String()] = "fetch: truncated response"
			if mx != nil {
				mx.scriptErrors.Inc()
			}
			return
		}
		if ps.NeedsConsent && !cfg.AutoConsent {
			if mx != nil {
				mx.consentSkip.Inc()
			}
			return // banner never accepted: gated tag stays dormant
		}
		req := blocklist.Request{
			URL:        ps.URL.String(),
			Type:       blocklist.TypeScript,
			PageHost:   site.Domain,
			ThirdParty: !netsim.SameSite(ps.URL.Host, site.Domain),
		}
		if cfg.Extension != nil && cfg.Extension.BlockScript(req) {
			pr.BlockedScripts = append(pr.BlockedScripts, req.URL)
			if mx != nil {
				mx.scriptsBlocked.Inc()
			}
			if evs != nil {
				list, rule := "", ""
				if ex, ok := cfg.Extension.(BlockExplainer); ok {
					list, rule = ex.ExplainBlock(req)
				}
				evs.Record(event.Event{
					Kind:     event.BlocklistMatch,
					Crawl:    cfg.Condition,
					Site:     site.Domain,
					Subject:  req.URL,
					Verdict:  "blocked",
					Evidence: rule,
					Detail:   list,
				})
			}
			return
		}
		body, err := w.Store.Fetch(ps.URL)
		if err != nil {
			pr.ScriptErrors[req.URL] = fmt.Sprintf("fetch: %v", err)
			if mx != nil {
				mx.scriptErrors.Inc()
			}
			return
		}
		var prog *jsvm.Program
		var parseStart time.Time
		if mx != nil {
			parseStart = time.Now()
		}
		hit := false
		if cfg.DisableParseCache {
			prog, err = jsvm.Parse(body.Body)
		} else {
			prog, hit, err = cache.get(body.Body)
		}
		if mx != nil {
			mx.parseTime.ObserveDuration(time.Since(parseStart))
			if hit {
				mx.cacheHits.Inc()
			} else {
				mx.cacheMisses.Inc()
			}
		}
		if err != nil {
			pr.ScriptErrors[req.URL] = err.Error()
			return
		}
		prev := currentScript
		currentScript = req.URL
		in.ResetSteps()
		if _, err := in.Run(prog); err != nil {
			pr.ScriptErrors[req.URL] = err.Error()
			if mx != nil {
				mx.scriptErrors.Inc()
			}
		}
		if mx != nil {
			mx.scriptsRun.Inc()
			mx.vmSteps.Observe(float64(in.Steps()))
		}
		currentScript = prev
	}

	// First pass: immediate scripts; second pass: scroll-gated scripts.
	for i, ps := range site.Scripts {
		if !ps.OnScroll {
			runScript(ps, i >= served)
		}
	}
	if cfg.Scroll {
		for i, ps := range site.Scripts {
			if ps.OnScroll {
				runScript(ps, i >= served)
			}
		}
	}
	if cfg.VisitInnerPages {
		for _, ps := range site.InnerScripts {
			runScript(ps, false)
		}
	}
	sort.Slice(pr.Extractions, func(i, j int) bool { return pr.Extractions[i].Seq < pr.Extractions[j].Seq })
	if mx != nil {
		mx.extractions.Add(int64(len(pr.Extractions)))
	}
	if cfg.Faults != nil {
		verdict := "ok"
		if pr.Degraded {
			verdict = "degraded"
			if mx != nil && mx.faults != nil {
				mx.faults.degraded.Inc()
			}
		}
		recordVisitOutcome(evs, &cfg, site, verdict, planKind, attempts)
	}
	return pr
}

// recordVisitOutcome files the visit.outcome evidence event: how the
// visit ended, under which fault plan, after how many attempts. Only
// fault-injected crawls record these, so fault-free bundles stay
// identical to pre-resilience builds.
func recordVisitOutcome(evs *event.Sink, cfg *Config, site *web.Site, verdict string, kind netsim.FaultKind, attempts int) {
	if evs == nil {
		return
	}
	evs.Record(event.Event{
		Kind:     event.VisitOutcome,
		Crawl:    cfg.Condition,
		Site:     site.Domain,
		Verdict:  verdict,
		Evidence: kind.String(),
		Detail:   fmt.Sprintf("attempts=%d", attempts),
	})
}
