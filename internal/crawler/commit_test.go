package crawler

import (
	"encoding/json"
	"testing"
	"time"

	"canvassing/internal/netsim"
	"canvassing/internal/obs"
	"canvassing/internal/obs/event"
	"canvassing/internal/snapshot"
	"canvassing/internal/web"
)

// deterministicTelemetry projects a registry snapshot down to its
// scheduling-independent parts: counters, gauges (minus the pool-size
// gauge), and histogram observation counts (minus worker utilization,
// whose sample count is one per worker by design). Histogram sums and
// extremes carry wall-clock timings and differ between any two runs.
func deterministicTelemetry(t *testing.T, tel *obs.Telemetry) []byte {
	t.Helper()
	snap := tel.Metrics.Snapshot()
	proj := struct {
		Counters   map[string]int64 `json:"counters"`
		Gauges     map[string]int64 `json:"gauges"`
		HistCounts map[string]int64 `json:"hist_counts"`
	}{snap.Counters, map[string]int64{}, map[string]int64{}}
	for n, g := range snap.Gauges {
		if n != "crawl.workers" {
			proj.Gauges[n] = g
		}
	}
	for n, h := range snap.Histograms {
		if n != "crawl.worker.utilization" {
			proj.HistCounts[n] = h.Count
		}
	}
	b, err := json.Marshal(proj)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestCrawlTelemetryWidthInvariant is the crawl-side determinism
// oracle: the ordered-commit pipeline must make every deterministic
// telemetry artifact — counters (parse-cache hits/misses above all),
// evidence events with their sequence numbers, snapshot-store
// accounting, and the page results themselves — byte-identical at any
// worker-pool width. The golden telemetry report and the resume
// machinery both lean on this invariance.
func TestCrawlTelemetryWidthInvariant(t *testing.T) {
	w := testWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)

	type run struct {
		pages, telemetry, events []byte
		snapHits, snapMisses     int64
	}
	exec := func(workers int) run {
		tel := obs.NewTelemetry()
		snaps := snapshot.New()
		cfg := DefaultConfig()
		cfg.Workers = workers
		cfg.Telemetry = tel
		cfg.Condition = "control"
		cfg.Faults = netsim.NewFaultModel(5, 0.25)
		cfg.Snapshots = snaps
		res := Crawl(w, sites, cfg)
		evs, err := json.Marshal(tel.Events.Events())
		if err != nil {
			t.Fatal(err)
		}
		hits, misses := snaps.Counts()
		return run{
			pages:      marshalPages(t, res),
			telemetry:  deterministicTelemetry(t, tel),
			events:     evs,
			snapHits:   hits,
			snapMisses: misses,
		}
	}

	ref := exec(1)
	for _, workers := range []int{8, 32} {
		got := exec(workers)
		if string(got.pages) != string(ref.pages) {
			t.Errorf("width %d: page results differ from serial", workers)
		}
		if string(got.telemetry) != string(ref.telemetry) {
			t.Errorf("width %d: deterministic telemetry differs from serial\n got: %s\nwant: %s",
				workers, got.telemetry, ref.telemetry)
		}
		if string(got.events) != string(ref.events) {
			t.Errorf("width %d: evidence events differ from serial", workers)
		}
		if got.snapHits != ref.snapHits || got.snapMisses != ref.snapMisses {
			t.Errorf("width %d: snapshot accounting %d/%d differs from serial %d/%d",
				workers, got.snapHits, got.snapMisses, ref.snapHits, ref.snapMisses)
		}
	}
	if ref.snapMisses == 0 {
		t.Fatal("snapshot store never accounted a miss; the invariance check is vacuous")
	}
}

// connectMetrics builds a live metric set and a delta buffer for
// driving connect directly.
func connectMetrics() (*crawlMetrics, *pageDelta, *obs.Registry) {
	reg := obs.NewRegistry()
	mx := newCrawlMetrics(reg)
	mx.faults = newFaultMetrics(reg)
	return mx, &pageDelta{}, reg
}

// TestConnectAttemptSemantics pins the tries-vs-retries contract the
// visit.outcome evidence and the crawl.retry counter rely on (see the
// connect doc comment): attempts counts TRIES — a success on the n-th
// 0-based try is n+1, an exhausted budget is Retries+1, a circuit
// opening before the n-th try is n — while crawl.retry counts RETRIES,
// which is attempts-1 for every connect outcome, because a visit's
// first try is never a retry.
func TestConnectAttemptSemantics(t *testing.T) {
	const site = "pinned.example"
	cases := []struct {
		name         string
		plan         netsim.FaultPlan
		breaker      int // breaker threshold; connect sees it verbatim
		wantReason   string
		wantAttempts int
	}{
		{name: "first-try success",
			plan:         netsim.FaultPlan{Kind: netsim.FaultNone, Truncate: 1},
			breaker:      3,
			wantAttempts: 1},
		{name: "second-try success after one refusal",
			plan:         netsim.FaultPlan{Kind: netsim.FaultFlaky, FailCount: 1, Truncate: 1},
			breaker:      3,
			wantAttempts: 2},
		{name: "last-try success uses the whole budget",
			plan:         netsim.FaultPlan{Kind: netsim.FaultFlaky, FailCount: 3, Truncate: 1},
			breaker:      100,
			wantAttempts: 4}, // Retries+1 tries, the final one succeeds
		{name: "latency spikes retry like refusals",
			plan:         netsim.FaultPlan{Kind: netsim.FaultLatency, FailCount: 2, Truncate: 1},
			breaker:      3,
			wantAttempts: 3},
		{name: "exhausted budget reports Retries+1",
			plan:         netsim.FaultPlan{Kind: netsim.FaultOutage, Truncate: 1},
			breaker:      100,
			wantReason:   FailRefused,
			wantAttempts: 4},
		{name: "circuit opens before the fourth try",
			plan:         netsim.FaultPlan{Kind: netsim.FaultOutage, Truncate: 1},
			breaker:      3,
			wantReason:   FailCircuitOpen,
			wantAttempts: 3}, // three tries made; the skipped one is not counted
		{name: "circuit beats a would-be recovery",
			plan:         netsim.FaultPlan{Kind: netsim.FaultFlaky, FailCount: 3, Truncate: 1},
			breaker:      3,
			wantReason:   FailCircuitOpen,
			wantAttempts: 3}, // the site would recover on try 3, but the breaker is already open
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := DefaultConfig()
			cfg.Faults = netsim.NewFaultModel(cfg.Seed, 0)
			cfg.Faults.Force(site, tc.plan)
			cfg.Retries = 3
			cfg.VisitTimeout = 5 * time.Second
			cfg.BackoffBase = 500 * time.Millisecond
			cfg.BackoffCap = 8 * time.Second
			cfg.BreakerThreshold = tc.breaker

			mx, pd, reg := connectMetrics()
			_, reason, attempts := connect(site, &cfg, mx, pd)
			if reason != tc.wantReason {
				t.Fatalf("reason = %q, want %q", reason, tc.wantReason)
			}
			if attempts != tc.wantAttempts {
				t.Fatalf("attempts = %d, want %d", attempts, tc.wantAttempts)
			}
			// Apply the buffered delta and check the retry counter obeys
			// retries == attempts-1 in every row of the table.
			seen := map[uint64]bool{}
			var order []uint64
			pd.apply(mx, nil, nil, seen, &order)
			if got, want := reg.Counter("crawl.retry").Value(), int64(attempts-1); got != want {
				t.Fatalf("crawl.retry = %d, want attempts-1 = %d", got, want)
			}
		})
	}
}

// TestCommitCadenceAndStop pins the OnCommit contract: the hook fires
// every CommitEvery committed pages with an exact, strictly growing
// frontier, fires exactly once more with Final when the crawl
// completes, and stops the crawl when it returns true — leaving the
// uncommitted tail nil and the result marked Interrupted.
func TestCommitCadenceAndStop(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)

	var frontiers []int
	finals := 0
	cfg := DefaultConfig()
	cfg.CommitEvery = 10
	cfg.OnCommit = func(st CommitState) bool {
		if st.Final {
			finals++
			if st.Frontier != len(sites) {
				t.Errorf("final commit frontier = %d, want %d", st.Frontier, len(sites))
			}
			return false
		}
		frontiers = append(frontiers, st.Frontier)
		return false
	}
	res := Crawl(w, sites, cfg)
	if res.Interrupted {
		t.Fatal("uninterrupted crawl marked Interrupted")
	}
	if res.Frontier != len(sites) {
		t.Fatalf("frontier = %d, want %d", res.Frontier, len(sites))
	}
	if finals != 1 {
		t.Fatalf("final commits = %d, want 1", finals)
	}
	if len(frontiers) == 0 {
		t.Fatal("no periodic commits at CommitEvery=10")
	}
	for i, f := range frontiers {
		if f != (i+1)*cfg.CommitEvery {
			t.Fatalf("commit %d at frontier %d, want %d", i, f, (i+1)*cfg.CommitEvery)
		}
	}

	// Stop at the third periodic commit.
	stopAt := 3 * cfg.CommitEvery
	cfg.OnCommit = func(st CommitState) bool { return !st.Final && st.Frontier >= stopAt }
	res = Crawl(w, sites, cfg)
	if !res.Interrupted {
		t.Fatal("stop request did not mark the crawl Interrupted")
	}
	if res.Frontier != stopAt {
		t.Fatalf("interrupted frontier = %d, want %d", res.Frontier, stopAt)
	}
	for i, p := range res.Pages {
		if i < stopAt && p == nil {
			t.Fatalf("committed page %d is nil", i)
		}
		if i >= stopAt && p != nil {
			t.Fatalf("uncommitted page %d leaked into the result", i)
		}
	}
	// Stats must tolerate the nil tail of an interrupted crawl.
	if st := res.Stats(); st.Total.Visited != stopAt {
		t.Fatalf("interrupted Stats().Visited = %d, want %d", st.Total.Visited, stopAt)
	}
}

// TestCrawlResumePrefixReplay is the crawler-level resume contract: an
// interrupted crawl continued via Config.Resume must end with the same
// pages as an uninterrupted run, and the two halves' telemetry must
// ADD UP to the uninterrupted run's — counters (parse-cache hits and
// misses above all) and evidence events split exactly at the cut,
// because the committer applies nothing beyond the frontier.
func TestCrawlResumePrefixReplay(t *testing.T) {
	w := testWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)

	mkCfg := func(tel *obs.Telemetry) Config {
		cfg := DefaultConfig()
		cfg.Workers = 4
		cfg.Telemetry = tel
		cfg.Condition = "control"
		cfg.Faults = netsim.NewFaultModel(5, 0.25)
		return cfg
	}

	// Reference: one uninterrupted run.
	refTel := obs.NewTelemetry()
	refRes := Crawl(w, sites, mkCfg(refTel))
	refSnap := refTel.Metrics.Snapshot()
	refEvents := refTel.Events.Events()

	// Interrupted run: stop at the fourth commit and capture the cut.
	var cut CommitState
	tel1 := obs.NewTelemetry()
	cfg := mkCfg(tel1)
	cfg.CommitEvery = 64
	cfg.OnCommit = func(st CommitState) bool {
		if st.Final || st.Frontier < 4*64 {
			return false
		}
		cut = CommitState{
			Frontier:  st.Frontier,
			Pages:     append([]*PageResult(nil), st.Pages...),
			ParseSeen: append([]uint64(nil), st.ParseSeen...),
		}
		return true
	}
	res1 := Crawl(w, sites, cfg)
	if !res1.Interrupted || res1.Frontier != cut.Frontier {
		t.Fatalf("interrupt malfunction: interrupted=%v frontier=%d cut=%d",
			res1.Interrupted, res1.Frontier, cut.Frontier)
	}

	// Resumed run: fresh telemetry, continue from the cut.
	tel2 := obs.NewTelemetry()
	cfg2 := mkCfg(tel2)
	cfg2.Resume = &ResumeState{Pages: cut.Pages, ParseSeen: cut.ParseSeen}
	res2 := Crawl(w, sites, cfg2)
	if res2.Interrupted {
		t.Fatal("resumed crawl reported Interrupted")
	}
	if string(marshalPages(t, res2)) != string(marshalPages(t, refRes)) {
		t.Fatal("resumed pages differ from the uninterrupted run")
	}

	// The halves' counters must sum to the reference exactly.
	snap1, snap2 := tel1.Metrics.Snapshot(), tel2.Metrics.Snapshot()
	names := map[string]bool{}
	for n := range refSnap.Counters {
		names[n] = true
	}
	for n := range snap1.Counters {
		names[n] = true
	}
	for n := range snap2.Counters {
		names[n] = true
	}
	for n := range names {
		if got, want := snap1.Counters[n]+snap2.Counters[n], refSnap.Counters[n]; got != want {
			t.Errorf("counter %s: prefix %d + continuation %d = %d, want %d",
				n, snap1.Counters[n], snap2.Counters[n], got, want)
		}
	}

	// And the event streams must concatenate to the reference stream
	// (ignoring Seq, which each sink numbers from zero).
	evs := append(append([]eventKey(nil), eventKeys(tel1.Events.Events())...), eventKeys(tel2.Events.Events())...)
	want := eventKeys(refEvents)
	if len(evs) != len(want) {
		t.Fatalf("event count: prefix+continuation = %d, want %d", len(evs), len(want))
	}
	for i := range evs {
		if evs[i] != want[i] {
			t.Fatalf("event %d differs: got %+v, want %+v", i, evs[i], want[i])
		}
	}
}

// eventKey is an event minus its sink-assigned sequence number.
type eventKey struct {
	Kind, Crawl, Site, Subject, Verdict, Evidence, Detail string
}

func eventKeys(evs []event.Event) []eventKey {
	out := make([]eventKey, len(evs))
	for i, e := range evs {
		out[i] = eventKey{string(e.Kind), e.Crawl, e.Site, e.Subject, e.Verdict, e.Evidence, e.Detail}
	}
	return out
}
