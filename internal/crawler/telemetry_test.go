package crawler

import (
	"testing"

	"canvassing/internal/obs"
	"canvassing/internal/web"
)

// TestParseCacheHitRate is the parse-cache effectiveness contract:
// vendor scripts are byte-identical across sites, so a multi-site
// crawl must mostly hit the cache, and the ablation path must never
// hit it.
func TestParseCacheHitRate(t *testing.T) {
	w := testWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)

	cfg := DefaultConfig()
	cfg.Telemetry = obs.NewTelemetry()
	Crawl(w, sites, cfg)
	reg := cfg.Telemetry.Metrics
	hits := reg.Counter("crawl.parsecache.hits").Value()
	misses := reg.Counter("crawl.parsecache.misses").Value()
	if hits+misses == 0 {
		t.Fatal("no parse-cache lookups recorded")
	}
	if rate, ok := CacheHitRate(reg); !ok || rate <= 0.5 {
		t.Fatalf("hit rate = %.2f ok=%v (hits %d, misses %d), want ok and > 0.5", rate, ok, hits, misses)
	}

	cfg = DefaultConfig()
	cfg.Telemetry = obs.NewTelemetry()
	cfg.DisableParseCache = true
	Crawl(w, sites, cfg)
	// The ablation is a true 0% hit rate — lookups happened, all missed
	// — which must stay distinguishable from "no lookups at all".
	if rate, ok := CacheHitRate(cfg.Telemetry.Metrics); !ok || rate != 0 {
		t.Fatalf("ablation hit rate = %.2f ok=%v, want ok and 0", rate, ok)
	}
	if parsed := cfg.Telemetry.Metrics.Counter("crawl.parsecache.misses").Value(); parsed == 0 {
		t.Fatal("ablation crawl must still account every parse as a miss")
	}
	if _, ok := CacheHitRate(obs.NewRegistry()); ok {
		t.Fatal("a registry with no lookups must report ok=false, not a 0%% rate")
	}
}

// TestCrawlTelemetry checks the instrumented crawl reports consistent
// totals: every page lands in a latency bucket, counters match the
// result, and step usage is visible.
func TestCrawlTelemetry(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)
	cfg := DefaultConfig()
	cfg.Telemetry = obs.NewTelemetry()
	res := Crawl(w, sites, cfg)

	snap := cfg.Telemetry.Metrics.Snapshot()
	st := res.Stats()
	lat := snap.Histograms["crawl.visit.seconds"]
	if lat.Count != int64(len(sites)) {
		t.Fatalf("visit latency count = %d, want %d", lat.Count, len(sites))
	}
	if snap.Histograms["crawl.queue.wait.seconds"].Count != int64(len(sites)) {
		t.Fatal("every job must record its queue wait")
	}
	if got := snap.Counters["crawl.visits.ok"]; got != int64(st.Total.OK) {
		t.Fatalf("visits.ok = %d, want %d", got, st.Total.OK)
	}
	if got := snap.Counters["crawl.visits.failed"]; got != int64(st.Total.Failed) {
		t.Fatalf("visits.failed = %d, want %d", got, st.Total.Failed)
	}
	if got := snap.Counters["crawl.extractions"]; got != int64(st.Total.Extractions) {
		t.Fatalf("extractions = %d, want %d", got, st.Total.Extractions)
	}
	if snap.Counters["crawl.scripts.executed"] == 0 {
		t.Fatal("no script executions recorded")
	}
	steps := snap.Histograms["jsvm.script.steps"]
	if steps.Count == 0 || steps.Max <= 0 {
		t.Fatal("jsvm step usage must be recorded per script")
	}
	util := snap.Histograms["crawl.worker.utilization"]
	if util.Count != int64(cfg.Workers) {
		t.Fatalf("worker utilization samples = %d, want %d", util.Count, cfg.Workers)
	}
	if snap.Gauges["crawl.workers"] != int64(cfg.Workers) {
		t.Fatal("worker gauge not set")
	}
}

// TestCrawlTelemetryOptional: the bare path must not require a
// registry and must produce identical results.
func TestCrawlTelemetryOptional(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)[:60]
	bare := Crawl(w, sites, DefaultConfig())
	cfg := DefaultConfig()
	cfg.Telemetry = obs.NewTelemetry()
	instr := Crawl(w, sites, cfg)
	for i := range bare.Pages {
		a, b := bare.Pages[i], instr.Pages[i]
		if len(a.Extractions) != len(b.Extractions) {
			t.Fatalf("page %s: telemetry changed crawl behavior", a.Domain)
		}
		for j := range a.Extractions {
			if a.Extractions[j].DataURL != b.Extractions[j].DataURL {
				t.Fatalf("page %s extraction %d differs under telemetry", a.Domain, j)
			}
		}
	}
}

func TestResultStats(t *testing.T) {
	w := testWeb(t)
	sites := append(w.CohortSites(web.Popular), w.CohortSites(web.Tail)...)
	res := Crawl(w, sites, DefaultConfig())
	st := res.Stats()
	if st.Total.Visited != len(sites) {
		t.Fatalf("visited = %d, want %d", st.Total.Visited, len(sites))
	}
	if st.Total.OK != len(res.SuccessfulPages()) {
		t.Fatal("OK count disagrees with SuccessfulPages")
	}
	if st.Total.OK+st.Total.Failed != st.Total.Visited {
		t.Fatal("ok+failed must equal visited")
	}
	pop, tail := st.PerCohort[web.Popular], st.PerCohort[web.Tail]
	if pop.Visited+tail.Visited != st.Total.Visited {
		t.Fatal("cohorts must partition the crawl")
	}
	if pop.Extractions+tail.Extractions != st.Total.Extractions {
		t.Fatal("extraction totals must agree")
	}
	if s := st.String(); s == "" {
		t.Fatal("summary must render")
	}
}
