package crawler

import (
	"encoding/json"
	"strings"
	"testing"

	"canvassing/internal/adblock"
	"canvassing/internal/blocklist"
	"canvassing/internal/machine"
	"canvassing/internal/netsim"
	"canvassing/internal/randomize"
	"canvassing/internal/web"
)

func testWeb(t *testing.T) *web.Web {
	t.Helper()
	return web.Generate(web.Config{Seed: 21, Scale: 0.03, TrancoMax: 1_000_000})
}

func TestCrawlBasics(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)
	res := Crawl(w, sites, DefaultConfig())
	if len(res.Pages) != len(sites) {
		t.Fatalf("pages = %d, want %d", len(res.Pages), len(sites))
	}
	okCount := len(res.SuccessfulPages())
	if okCount == 0 || okCount == len(sites) {
		t.Fatalf("success count should reflect crawl failures: %d/%d", okCount, len(sites))
	}
	// Pages stay aligned with their input sites.
	for i, p := range res.Pages {
		if p.Domain != sites[i].Domain {
			t.Fatalf("page %d misaligned", i)
		}
	}
}

func TestCrawlFindsExtractions(t *testing.T) {
	w := testWeb(t)
	res := Crawl(w, w.CohortSites(web.Popular), DefaultConfig())
	total := 0
	sitesWith := 0
	for _, p := range res.SuccessfulPages() {
		if len(p.Extractions) > 0 {
			sitesWith++
			total += len(p.Extractions)
		}
		for _, e := range p.Extractions {
			if !strings.HasPrefix(e.DataURL, "data:image/") {
				t.Fatalf("bad extraction: %.40s", e.DataURL)
			}
			if e.ScriptURL == "" {
				t.Fatal("extraction lacks script attribution")
			}
		}
	}
	if sitesWith == 0 || total == 0 {
		t.Fatal("crawl should observe extractions")
	}
}

func TestCrawlDeterministic(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)[:120]
	a := Crawl(w, sites, DefaultConfig())
	b := Crawl(w, sites, DefaultConfig())
	for i := range a.Pages {
		pa, pb := a.Pages[i], b.Pages[i]
		if len(pa.Extractions) != len(pb.Extractions) {
			t.Fatalf("page %s extraction counts differ", pa.Domain)
		}
		for j := range pa.Extractions {
			if pa.Extractions[j].DataURL != pb.Extractions[j].DataURL {
				t.Fatalf("page %s extraction %d differs", pa.Domain, j)
			}
		}
	}
}

func TestScriptErrorsAreIsolated(t *testing.T) {
	w := testWeb(t)
	res := Crawl(w, w.CohortSites(web.Popular), DefaultConfig())
	// No page visit should be lost to a script error; errors are recorded.
	for _, p := range res.Pages {
		if p.OK {
			continue
		}
		site := w.SiteByDomain(p.Domain)
		if site != nil && site.CrawlOK {
			t.Fatalf("crawlable page %s reported not OK", p.Domain)
		}
	}
	// The vendor scripts in this corpus are all valid; no errors expected.
	for _, p := range res.SuccessfulPages() {
		for url, msg := range p.ScriptErrors {
			t.Fatalf("unexpected script error %s: %s", url, msg)
		}
	}
}

func TestScriptMethodsRecorded(t *testing.T) {
	w := testWeb(t)
	res := Crawl(w, w.CohortSites(web.Popular), DefaultConfig())
	foundFillText := false
	for _, p := range res.SuccessfulPages() {
		for _, methods := range p.ScriptMethods {
			if methods["fillText"] {
				foundFillText = true
			}
		}
	}
	if !foundFillText {
		t.Fatal("method sets should record fillText")
	}
}

func TestMachineProfileChangesBytesNotStructure(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)[:150]
	cfgIntel := DefaultConfig()
	cfgM1 := DefaultConfig()
	cfgM1.Profile = machine.AppleM1()
	intel := Crawl(w, sites, cfgIntel)
	m1 := Crawl(w, sites, cfgM1)
	diffs, sameCounts := 0, true
	for i := range intel.Pages {
		if len(intel.Pages[i].Extractions) != len(m1.Pages[i].Extractions) {
			sameCounts = false
			continue
		}
		for j := range intel.Pages[i].Extractions {
			if intel.Pages[i].Extractions[j].DataURL != m1.Pages[i].Extractions[j].DataURL {
				diffs++
			}
		}
	}
	if !sameCounts {
		t.Fatal("machines must agree on extraction structure")
	}
	if diffs == 0 {
		t.Fatal("machines must disagree on extraction bytes")
	}
}

func TestNoConsentSuppressesGatedScripts(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)
	withConsent := Crawl(w, sites, DefaultConfig())
	noCfg := DefaultConfig()
	noCfg.AutoConsent = false
	without := Crawl(w, sites, noCfg)
	countEx := func(r *Result) int {
		n := 0
		for _, p := range r.Pages {
			n += len(p.Extractions)
		}
		return n
	}
	if countEx(without) >= countEx(withConsent) {
		t.Fatalf("consent refusal should reduce extractions: %d vs %d",
			countEx(without), countEx(withConsent))
	}
}

func TestNoScrollSuppressesLazyScripts(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)
	scroll := Crawl(w, sites, DefaultConfig())
	noCfg := DefaultConfig()
	noCfg.Scroll = false
	noScroll := Crawl(w, sites, noCfg)
	countEx := func(r *Result) int {
		n := 0
		for _, p := range r.Pages {
			n += len(p.Extractions)
		}
		return n
	}
	if countEx(noScroll) >= countEx(scroll) {
		t.Fatal("skipping scroll should miss lazy scripts")
	}
}

func TestAdblockReducesSlightly(t *testing.T) {
	w := testWeb(t)
	lists := blocklist.NewStandardLists(21)
	sites := w.CohortSites(web.Popular)

	control := Crawl(w, sites, DefaultConfig())
	abpCfg := DefaultConfig()
	abpCfg.Extension = adblock.NewAdblockPlus(lists)
	abp := Crawl(w, sites, abpCfg)

	count := func(r *Result) (canvases, fpSites int) {
		for _, p := range r.SuccessfulPages() {
			canvases += len(p.Extractions)
			if len(p.Extractions) > 0 {
				fpSites++
			}
		}
		return
	}
	cCan, cSites := count(control)
	aCan, aSites := count(abp)
	if aCan >= cCan {
		t.Fatalf("ad blocker should block something: %d vs %d", aCan, cCan)
	}
	// §5.2: the drop is small — well under 20% even at tiny scale.
	if float64(cCan-aCan)/float64(cCan) > 0.25 {
		t.Fatalf("ad blocker blocked too much: %d → %d", cCan, aCan)
	}
	if aSites > cSites {
		t.Fatal("site count cannot grow under blocking")
	}
	if abp.Extension != "Adblock Plus" {
		t.Fatal("extension name")
	}
	// Blocked scripts were recorded somewhere.
	blocked := 0
	for _, p := range abp.Pages {
		blocked += len(p.BlockedScripts)
	}
	if blocked == 0 {
		t.Fatal("no scripts were blocked at all")
	}
}

func TestFirstPartyExemptFromBlocking(t *testing.T) {
	w := testWeb(t)
	lists := blocklist.NewStandardLists(21)
	abpCfg := DefaultConfig()
	abpCfg.Extension = adblock.NewAdblockPlus(lists)
	res := Crawl(w, w.CohortSites(web.Popular), abpCfg)
	for _, p := range res.Pages {
		for _, b := range p.BlockedScripts {
			if strings.Contains(b, p.Domain) {
				t.Fatalf("first-party script blocked: %s on %s", b, p.Domain)
			}
		}
	}
	// Akamai sensors (first-party /akam/ URLs) must survive despite the
	// EasyList rule (footnote 5).
	akamaiSeen := false
	for _, p := range res.SuccessfulPages() {
		for _, e := range p.Extractions {
			if strings.Contains(e.ScriptURL, "/akam/") {
				akamaiSeen = true
			}
		}
	}
	if !akamaiSeen {
		t.Fatal("akamai canvases should survive ad blocking")
	}
}

func TestPerRenderDefenseChangesExtractions(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)[:200]
	cfg := DefaultConfig()
	cfg.ExtractHook = randomize.NewDefense(randomize.PerRender, 7).Hook()
	res := Crawl(w, sites, cfg)
	// Under per-render noise, double-rendered canvases now differ, so
	// scripts see inconsistency. Confirm some site extracted two
	// different data URLs from the same script where the control crawl
	// had identical pairs.
	control := Crawl(w, sites, DefaultConfig())
	hadIdenticalPair := false
	for _, p := range control.SuccessfulPages() {
		seen := map[string]int{}
		for _, e := range p.Extractions {
			seen[e.DataURL]++
		}
		for _, c := range seen {
			if c >= 2 {
				hadIdenticalPair = true
			}
		}
	}
	if !hadIdenticalPair {
		t.Skip("no double-rendering site in sample")
	}
	brokenPairs := false
	for _, p := range res.SuccessfulPages() {
		seen := map[string]int{}
		for _, e := range p.Extractions {
			seen[e.DataURL]++
		}
		allUnique := true
		for _, c := range seen {
			if c >= 2 {
				allUnique = false
			}
		}
		if allUnique && len(p.Extractions) >= 2 {
			brokenPairs = true
		}
	}
	if !brokenPairs {
		t.Fatal("per-render noise should break double-render identity")
	}
}

func TestKeepRecords(t *testing.T) {
	w := testWeb(t)
	cfg := DefaultConfig()
	cfg.KeepRecords = true
	res := Crawl(w, w.CohortSites(web.Popular)[:100], cfg)
	got := 0
	for _, p := range res.SuccessfulPages() {
		got += len(p.Records)
	}
	if got == 0 {
		t.Fatal("records should be kept when requested")
	}
	cfg.KeepRecords = false
	res2 := Crawl(w, w.CohortSites(web.Popular)[:100], cfg)
	for _, p := range res2.SuccessfulPages() {
		if len(p.Records) != 0 {
			t.Fatal("records kept despite KeepRecords=false")
		}
	}
}

func TestWorkerPoolWidths(t *testing.T) {
	w := testWeb(t)
	sites := w.CohortSites(web.Popular)[:60]
	cfg1 := DefaultConfig()
	cfg1.Workers = 1
	cfg16 := DefaultConfig()
	cfg16.Workers = 16
	a := Crawl(w, sites, cfg1)
	b := Crawl(w, sites, cfg16)
	for i := range a.Pages {
		if len(a.Pages[i].Extractions) != len(b.Pages[i].Extractions) {
			t.Fatal("worker width must not change results")
		}
	}
}

func TestFailureInjectionBrokenScript(t *testing.T) {
	w := testWeb(t)
	// Inject a syntactically broken script and a dead URL into a healthy
	// page; the visit must record both failures and still run the rest.
	var victim *web.Site
	for _, s := range w.CohortSites(web.Popular) {
		if s.CrawlOK && len(s.Scripts) > 0 {
			victim = s
			break
		}
	}
	if victim == nil {
		t.Fatal("no crawlable site")
	}
	brokenURL := netsimURL("https://" + victim.Domain + "/js/broken.js")
	w.Store.Host(brokenURL, "text/javascript", "function ( { nope")
	deadURL := netsimURL("https://gone.example.net/missing.js")
	victim.Scripts = append([]web.PageScript{{URL: brokenURL}, {URL: deadURL}}, victim.Scripts...)

	res := Crawl(w, []*web.Site{victim}, DefaultConfig())
	p := res.Pages[0]
	if !p.OK {
		t.Fatal("page must still count as crawled")
	}
	if _, ok := p.ScriptErrors[brokenURL.String()]; !ok {
		t.Fatalf("broken script error not recorded: %v", p.ScriptErrors)
	}
	if msg, ok := p.ScriptErrors[deadURL.String()]; !ok || !strings.Contains(msg, "fetch") {
		t.Fatalf("dead URL error not recorded: %v", p.ScriptErrors)
	}
	// The page's legitimate scripts still executed.
	if len(p.ScriptMethods) == 0 && len(p.Extractions) == 0 {
		t.Fatal("remaining scripts should still run")
	}
}

func TestRunawayScriptBounded(t *testing.T) {
	w := testWeb(t)
	var victim *web.Site
	for _, s := range w.CohortSites(web.Popular) {
		if s.CrawlOK {
			victim = s
			break
		}
	}
	loopURL := netsimURL("https://" + victim.Domain + "/js/loop.js")
	w.Store.Host(loopURL, "text/javascript", "while (true) { var x = 1; }")
	victim.Scripts = append(victim.Scripts, web.PageScript{URL: loopURL})

	cfg := DefaultConfig()
	cfg.MaxStepsPerScript = 50_000
	res := Crawl(w, []*web.Site{victim}, cfg)
	msg, ok := res.Pages[0].ScriptErrors[loopURL.String()]
	if !ok || !strings.Contains(msg, "step limit") {
		t.Fatalf("runaway script must hit the step limit: %v", res.Pages[0].ScriptErrors)
	}
}

func netsimURL(s string) netsim.URL { return netsim.MustParseURL(s) }

func TestPageResultJSONRoundtrip(t *testing.T) {
	// cmd/crawl writes PageResults as JSONL and cmd/analyze reads them
	// back; the types must survive the trip.
	w := testWeb(t)
	cfg := DefaultConfig()
	res := Crawl(w, w.CohortSites(web.Popular)[:80], cfg)
	var withData *PageResult
	for _, p := range res.SuccessfulPages() {
		if len(p.Extractions) > 0 {
			withData = p
			break
		}
	}
	if withData == nil {
		t.Skip("no extracting page in sample")
	}
	data, err := json.Marshal(withData)
	if err != nil {
		t.Fatal(err)
	}
	var back PageResult
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Domain != withData.Domain || back.Cohort != withData.Cohort {
		t.Fatal("identity fields lost")
	}
	if len(back.Extractions) != len(withData.Extractions) {
		t.Fatal("extractions lost")
	}
	if back.Extractions[0].DataURL != withData.Extractions[0].DataURL {
		t.Fatal("data URL corrupted")
	}
	if len(back.ScriptMethods) != len(withData.ScriptMethods) {
		t.Fatal("script methods lost")
	}
}

func BenchmarkCrawlPopular(b *testing.B) {
	w := web.Generate(web.Config{Seed: 21, Scale: 0.01, TrancoMax: 1_000_000})
	sites := w.CohortSites(web.Popular)
	cfg := DefaultConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Crawl(w, sites, cfg)
	}
}
