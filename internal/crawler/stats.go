package crawler

import (
	"fmt"
	"sort"
	"strings"

	"canvassing/internal/web"
)

// CohortStats summarizes one cohort's (or the whole crawl's) pages.
type CohortStats struct {
	// Visited counts all pages attempted, OK/Failed split them.
	Visited, OK, Failed int
	// Extractions totals canvas extraction events on OK pages.
	Extractions int
	// BlockedScripts totals extension-blocked script loads.
	BlockedScripts int
	// ScriptErrors totals scripts that failed to fetch, parse, or run.
	ScriptErrors int
}

func (c *CohortStats) add(p *PageResult) {
	c.Visited++
	if p.OK {
		c.OK++
	} else {
		c.Failed++
	}
	c.Extractions += len(p.Extractions)
	c.BlockedScripts += len(p.BlockedScripts)
	c.ScriptErrors += len(p.ScriptErrors)
}

// ResultStats is the crawl-wide failure and yield accounting that
// reports previously recomputed ad hoc.
type ResultStats struct {
	Total     CohortStats
	PerCohort map[web.Cohort]CohortStats
}

// Stats tallies per-cohort and total page outcomes in one pass.
func (r *Result) Stats() ResultStats {
	st := ResultStats{PerCohort: map[web.Cohort]CohortStats{}}
	for _, p := range r.Pages {
		st.Total.add(p)
		cs := st.PerCohort[p.Cohort]
		cs.add(p)
		st.PerCohort[p.Cohort] = cs
	}
	return st
}

// String renders a one-line-per-cohort crawl summary.
func (s ResultStats) String() string {
	var sb strings.Builder
	cohorts := make([]web.Cohort, 0, len(s.PerCohort))
	for c := range s.PerCohort {
		cohorts = append(cohorts, c)
	}
	sort.Slice(cohorts, func(i, j int) bool { return cohorts[i] < cohorts[j] })
	for _, c := range cohorts {
		cs := s.PerCohort[c]
		fmt.Fprintf(&sb, "%s: ok %d/%d, extractions %d, blocked %d, script-errors %d\n",
			c, cs.OK, cs.Visited, cs.Extractions, cs.BlockedScripts, cs.ScriptErrors)
	}
	fmt.Fprintf(&sb, "total: ok %d/%d, extractions %d, blocked %d, script-errors %d",
		s.Total.OK, s.Total.Visited, s.Total.Extractions, s.Total.BlockedScripts, s.Total.ScriptErrors)
	return sb.String()
}
