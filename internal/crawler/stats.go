package crawler

import (
	"fmt"
	"sort"
	"strings"

	"canvassing/internal/web"
)

// CohortStats summarizes one cohort's (or the whole crawl's) pages.
type CohortStats struct {
	// Visited counts all pages attempted, OK/Failed split them.
	Visited, OK, Failed int
	// Degraded counts OK pages that loaded partially under fault
	// injection but still yielded their recorded canvas calls.
	Degraded int
	// Extractions totals canvas extraction events on OK pages.
	Extractions int
	// BlockedScripts totals extension-blocked script loads.
	BlockedScripts int
	// ScriptErrors totals scripts that failed to fetch, parse, or run.
	ScriptErrors int
	// FailReasons breaks Failed down by PageResult.FailReason
	// ("unreachable", "refused", "timeout", "circuit-open").
	FailReasons map[string]int
}

func (c *CohortStats) add(p *PageResult) {
	c.Visited++
	if p.OK {
		c.OK++
		if p.Degraded {
			c.Degraded++
		}
	} else {
		c.Failed++
		if p.FailReason != "" {
			if c.FailReasons == nil {
				c.FailReasons = map[string]int{}
			}
			c.FailReasons[p.FailReason]++
		}
	}
	c.Extractions += len(p.Extractions)
	c.BlockedScripts += len(p.BlockedScripts)
	c.ScriptErrors += len(p.ScriptErrors)
}

// suffix renders the degradation and failure-reason tail of a summary
// line ("" when the cohort saw neither).
func (c CohortStats) suffix() string {
	var sb strings.Builder
	if c.Degraded > 0 {
		fmt.Fprintf(&sb, ", degraded %d", c.Degraded)
	}
	if len(c.FailReasons) > 0 {
		reasons := make([]string, 0, len(c.FailReasons))
		for r := range c.FailReasons {
			reasons = append(reasons, r)
		}
		sort.Strings(reasons)
		parts := make([]string, 0, len(reasons))
		for _, r := range reasons {
			parts = append(parts, fmt.Sprintf("%s %d", r, c.FailReasons[r]))
		}
		fmt.Fprintf(&sb, ", failures(%s)", strings.Join(parts, ", "))
	}
	return sb.String()
}

// ResultStats is the crawl-wide failure and yield accounting that
// reports previously recomputed ad hoc.
type ResultStats struct {
	Total     CohortStats
	PerCohort map[web.Cohort]CohortStats
}

// Stats tallies per-cohort and total page outcomes in one pass,
// including the failure-reason breakdown the resilience engine records.
func (r *Result) Stats() ResultStats {
	st := ResultStats{PerCohort: map[web.Cohort]CohortStats{}}
	for _, p := range r.Pages {
		if p == nil {
			continue // uncommitted tail of an interrupted crawl
		}
		st.Total.add(p)
		cs := st.PerCohort[p.Cohort]
		cs.add(p)
		st.PerCohort[p.Cohort] = cs
	}
	return st
}

// String renders a one-line-per-cohort crawl summary.
func (s ResultStats) String() string {
	var sb strings.Builder
	cohorts := make([]web.Cohort, 0, len(s.PerCohort))
	for c := range s.PerCohort {
		cohorts = append(cohorts, c)
	}
	sort.Slice(cohorts, func(i, j int) bool { return cohorts[i] < cohorts[j] })
	for _, c := range cohorts {
		cs := s.PerCohort[c]
		fmt.Fprintf(&sb, "%s: ok %d/%d, extractions %d, blocked %d, script-errors %d%s\n",
			c, cs.OK, cs.Visited, cs.Extractions, cs.BlockedScripts, cs.ScriptErrors, cs.suffix())
	}
	fmt.Fprintf(&sb, "total: ok %d/%d, extractions %d, blocked %d, script-errors %d%s",
		s.Total.OK, s.Total.Visited, s.Total.Extractions, s.Total.BlockedScripts, s.Total.ScriptErrors, s.Total.suffix())
	return sb.String()
}
